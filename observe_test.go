package repro_test

import (
	"testing"

	"repro"
)

// TestObserveSeesWireTraffic: the programmatic metrics surface reads
// the process-global registry, so a distributed run must be visible in
// the wire counters it returns — and the counters only move forward.
func TestObserveSeesWireTraffic(t *testing.T) {
	before := repro.Observe()

	shards := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if _, err := repro.DistributedSum(shards, 2, repro.Binomial); err != nil {
		t.Fatalf("DistributedSum: %v", err)
	}

	after := repro.Observe()
	moved := after["repro_dist_chan_frames_total"] - before["repro_dist_chan_frames_total"]
	if moved <= 0 {
		t.Fatalf("chan frame counter moved by %v after a distributed run, want > 0", moved)
	}
	for name, v := range before {
		if after[name] < v {
			t.Fatalf("metric %s went backwards: %v -> %v", name, v, after[name])
		}
	}
}
