package repro_test

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/workload"
)

func clusterQuiet() repro.ClusterSpec {
	return repro.ClusterSpec{JoinTimeout: 30 * time.Second}
}

// TestClusterFacadeSumCompat: the one-shot DistributedSum with
// WithProcessCluster and the long-lived Cluster API produce identical
// bits — the wrappers really are thin.
func TestClusterFacadeSumCompat(t *testing.T) {
	const n = 8000
	vals := workload.Values64(53, n, workload.MixedMag)
	shards := make([][]float64, 3)
	for i, v := range vals {
		shards[i%3] = append(shards[i%3], v)
	}

	old, err := repro.DistributedSum(shards, 2, repro.Chain, repro.WithProcessCluster(3))
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}

	spec := clusterQuiet()
	spec.Nodes = 3
	c, err := repro.NewCluster(spec)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	res, err := c.Run(repro.Job{Topo: repro.Chain, Workers: 2, Source: repro.ValueShards(shards)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Float64bits(res.Sum) != math.Float64bits(old) {
		t.Errorf("cluster sum = %016x, one-shot = %016x", math.Float64bits(res.Sum), math.Float64bits(old))
	}
	if want := math.Float64bits(repro.Sum(vals)); math.Float64bits(res.Sum) != want {
		t.Errorf("cluster sum = %016x, local Sum = %016x", math.Float64bits(res.Sum), want)
	}
}

// TestClusterFacadeGroupByCompat: DistributedAggregateByKey and a
// Cluster GROUP BY job agree byte for byte on the canonical encoding,
// raw shards and declarative synthetic source alike.
func TestClusterFacadeGroupByCompat(t *testing.T) {
	synth := repro.SyntheticSpec{Rows: 8000, Groups: 512, KeySeed: 59,
		Cols: []repro.SyntheticColumn{{Seed: 61, Dist: repro.MixedMag}}}
	keys, cols, err := synth.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	specs := []repro.AggSpec{{Kind: repro.AggSum, Col: 0}, {Kind: repro.AggCount}}

	sk := make([][]uint32, 2)
	sc := make([][][]float64, 2)
	for i := range sk {
		sc[i] = make([][]float64, 1)
	}
	for i, k := range keys {
		sk[i%2] = append(sk[i%2], k)
		sc[i%2][0] = append(sc[i%2][0], cols[0][i])
	}
	old, err := repro.DistributedAggregateByKey(sk, sc, 2, specs, repro.WithProcessCluster(2))
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	want := dist.EncodeTupleGroups(old, len(specs))

	spec := clusterQuiet()
	spec.Nodes = 2
	c, err := repro.NewCluster(spec)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	res, err := c.Run(repro.Job{Workers: 2, Specs: specs, Source: repro.RowShards(sk, sc)})
	if err != nil {
		t.Fatalf("raw-shard run: %v", err)
	}
	if !bytes.Equal(res.Payload, want) {
		t.Error("raw-shard cluster payload differs from the one-shot wrapper's encoding")
	}

	res, err = c.Run(repro.Job{Workers: 2, Specs: specs, Source: repro.SyntheticSource(synth)})
	if err != nil {
		t.Fatalf("spec-ingest run: %v", err)
	}
	if !bytes.Equal(res.Payload, want) {
		t.Error("spec-ingest payload differs: shipping the generator spec changed the bits")
	}
}

// TestServeOverCluster: a server backed by a live Cluster handle
// serves byte-identical results to the local and in-process
// distributed backends.
func TestServeOverCluster(t *testing.T) {
	synth := repro.SyntheticSpec{Rows: 6000, Groups: 256, KeySeed: 67,
		Cols: []repro.SyntheticColumn{{Seed: 71, Dist: repro.MixedMag}, {Seed: 73, Dist: repro.Exp1}}}
	keys, cols, err := synth.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	ds, err := repro.NewServeDataset(keys, cols, repro.ServeDatasetOptions{Shards: 3})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	q := repro.GroupByQuery(
		repro.AggSpec{Kind: repro.AggSum, Col: 0},
		repro.AggSpec{Kind: repro.AggAvg, Col: 1},
		repro.AggSpec{Kind: repro.AggCount},
	)

	local, err := repro.NewServer(ds, repro.ServerOptions{})
	if err != nil {
		t.Fatalf("local server: %v", err)
	}
	defer local.Close()
	lres, err := local.Do(q)
	if err != nil {
		t.Fatalf("local query: %v", err)
	}

	spec := clusterQuiet()
	spec.Nodes = 3
	c, err := repro.NewCluster(spec)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	srv, err := repro.NewServer(ds, repro.ServerOptions{Cluster: c})
	if err != nil {
		t.Fatalf("cluster server: %v", err)
	}
	defer srv.Close()
	cres, err := srv.Do(q)
	if err != nil {
		t.Fatalf("cluster query: %v", err)
	}
	if !bytes.Equal(cres.Bytes, lres.Bytes) {
		t.Error("cluster-served bytes differ from the local engine's")
	}

	// The same cluster keeps serving: a second query (cache off-path
	// via different specs) still matches the local engine.
	q2 := repro.GroupByQuery(repro.AggSpec{Kind: repro.AggMax, Col: 1})
	lres2, err := local.Do(q2)
	if err != nil {
		t.Fatalf("local query 2: %v", err)
	}
	cres2, err := srv.Do(q2)
	if err != nil {
		t.Fatalf("cluster query 2: %v", err)
	}
	if !bytes.Equal(cres2.Bytes, lres2.Bytes) {
		t.Error("second cluster-served result differs from the local engine's")
	}

	// WithProcessCluster stays rejected — the serving layer borrows a
	// handle, it does not spawn.
	if _, err := repro.NewServer(ds, repro.ServerOptions{}, repro.WithProcessCluster(2)); err == nil {
		t.Error("NewServer accepted WithProcessCluster")
	}
}

// TestClusterFacadeValidation: ClusterSpec fields and the remaining
// DistOptions reject invalid values with ErrConfig naming the field.
func TestClusterFacadeValidation(t *testing.T) {
	specCases := []struct {
		name string
		mut  func(*repro.ClusterSpec)
		want string
	}{
		{"no nodes", func(s *repro.ClusterSpec) {}, "ClusterSpec.Nodes"},
		{"join exceeds nodes", func(s *repro.ClusterSpec) { s.Nodes, s.Join = 2, 3 }, "ClusterSpec.Join"},
		{"liveness without heartbeat", func(s *repro.ClusterSpec) { s.Nodes, s.Liveness = 1, time.Second }, "ClusterSpec.Heartbeat"},
		{"negative standby", func(s *repro.ClusterSpec) { s.Nodes, s.SpawnStandby = 1, -1 }, "ClusterSpec.SpawnStandby"},
	}
	for _, tc := range specCases {
		t.Run(tc.name, func(t *testing.T) {
			spec := clusterQuiet()
			tc.mut(&spec)
			_, err := repro.NewCluster(spec)
			if !errors.Is(err, repro.ErrConfig) {
				t.Fatalf("err = %v, want ErrConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name %q", err, tc.want)
			}
		})
	}

	optCases := []struct {
		name string
		opt  repro.DistOption
		want string
	}{
		{"negative straggler deadline", repro.WithStragglerDeadline(-time.Second), "WithStragglerDeadline"},
		{"drop probability over 1", repro.WithFaults(repro.FaultPlan{DropProb: 1.5}), "WithFaults"},
		{"negative dup probability", repro.WithFaults(repro.FaultPlan{DupProb: -0.1}), "WithFaults"},
		{"negative fault delay", repro.WithFaults(repro.FaultPlan{MaxDelay: -time.Millisecond}), "WithFaults"},
		{"poisoned chunk payload", repro.WithMaxChunkPayload(0), "WithMaxChunkPayload"},
		{"poisoned reassembly budget", repro.WithReassemblyBudget(-1), "WithReassemblyBudget"},
	}
	for _, tc := range optCases {
		t.Run(tc.name, func(t *testing.T) {
			// The same config validation runs in every entry point:
			// one-shot operators and cluster construction alike.
			if _, err := repro.DistributedSum([][]float64{{1}}, 1, repro.Binomial, tc.opt); !errors.Is(err, repro.ErrConfig) {
				t.Fatalf("DistributedSum: err = %v, want ErrConfig", err)
			}
			spec := clusterQuiet()
			spec.Nodes = 1
			_, err := repro.NewCluster(spec, tc.opt)
			if !errors.Is(err, repro.ErrConfig) {
				t.Fatalf("NewCluster: err = %v, want ErrConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name %q", err, tc.want)
			}
		})
	}
}
