package repro

import (
	"repro/internal/dist/proc"
	"repro/internal/workload"
)

// The cluster API: a long-lived handle over a real multi-process
// cluster that runs a sequence of typed aggregation jobs with
// bit-identical results to the in-process engine. The one-shot
// distributed operators (DistributedSum, DistributedGroupBySum,
// DistributedAggregateByKey with WithProcessCluster) are thin wrappers
// that form a cluster, run one job, and tear it down; this API keeps
// the cluster — its worker processes, sockets, and handshakes — alive
// across jobs, admits operator-started workers (reproworker -join),
// and with ClusterSpec.ReplaceDead survives worker death mid-run.

// ErrClusterClosed is returned by Cluster.Run on a closed cluster.
var ErrClusterClosed = proc.ErrClusterClosed

// ClusterSpec configures NewCluster: the cluster size, how many slots
// are left open for remote joiners, standby capacity for mid-run
// replacement, the control listen address, and liveness timing. Every
// field is validated at construction with a typed ErrConfig naming
// the field.
type ClusterSpec = proc.ClusterSpec

// ClusterOptions configures worker spawning: the reproworker binary
// (default: REPROWORKER_BIN, else the current binary re-executed —
// see InitWorkerProcess), extra environment, and stderr routing.
type ClusterOptions = proc.Options

// Cluster is a long-lived multi-process cluster accepting Jobs. It is
// safe for concurrent use; jobs submitted while one is running queue
// in arrival order. Construct with NewCluster, release with Close.
type Cluster = proc.Cluster

// Job is one unit of cluster work: a reduction (no Specs) or a
// multi-aggregate GROUP BY (one output column per AggSpec), over an
// input Source, with per-node engine parallelism Workers.
type Job = proc.Job

// JobResult is one finished Job: the canonical result bytes plus the
// decoded sum (reductions) or groups (GROUP BY), and how many workers
// had to be replaced mid-run to produce it (always with bit-identical
// results — that is the point).
type JobResult = proc.Result

// ClusterStats is a point-in-time snapshot of a cluster's membership
// counters.
type ClusterStats = proc.ClusterStats

// Source is a Job's input. Raw sources (ValueShards, RowShards) ship
// the rows inside the job dispatch; declarative sources
// (SyntheticSource, TPCHQ1Source) ship only a description — O(1)
// dispatch bytes regardless of data size — and every worker
// materializes its slice locally.
type Source = proc.Source

// ValueShards is a raw reduction input: one value slice per shard,
// re-dealt round-robin when the shard count differs from the cluster
// size (reproducibility makes re-dealing invisible in the bits).
func ValueShards(shards [][]float64) Source { return proc.ValueShards(shards) }

// RowShards is a raw GROUP BY input: shardKeys[i] holds shard i's keys
// and shardCols[i][c] its c-th value column.
func RowShards(shardKeys [][]uint32, shardCols [][][]float64) Source {
	return proc.RowShards(shardKeys, shardCols)
}

// SyntheticSource is a declarative generator input: each worker
// materializes the full deterministic dataset from the spec and keeps
// its round-robin slice of the rows.
func SyntheticSource(spec SyntheticSpec) Source { return proc.SyntheticSource(spec) }

// TPCHQ1Source is a declarative TPC-H input: each worker generates the
// seeded lineitem table, evaluates Q1's scan side, and keeps its slice.
// Pair it with Q1 aggregate specs (tpch.Q1Specs via cmd/reprobench, or
// your own catalog over the six Q1 columns).
func TPCHQ1Source(rows int, seed uint64) Source { return proc.TPCHQ1Source(rows, seed) }

// SyntheticSpec describes a deterministic synthetic dataset: row
// count, key domain (0 = keyless reduction input), and seeded value
// columns. Equal specs materialize equal datasets on every machine —
// which is what lets a job ship the spec instead of the rows.
type SyntheticSpec = workload.Spec

// SyntheticColumn is one value column of a SyntheticSpec.
type SyntheticColumn = workload.ColSpec

// ValueDist selects a SyntheticColumn's value distribution.
type ValueDist = workload.ValueDist

// Value distributions for SyntheticColumn.
const (
	Uniform12 = workload.Uniform12 // uniform in [1, 2): benign, equal magnitudes
	Exp1      = workload.Exp1      // exponential, mean 1
	MixedMag  = workload.MixedMag  // signed, spanning ~24 binades — cancellation-heavy
)

// NewCluster forms a cluster: spawns spec.Nodes−spec.Join local
// workers (plus spec.SpawnStandby standbys), listens on spec.Addr for
// remote joiners, and verifies every arrival's handshake (frame codec
// version, rsum level count, digested run configuration) before
// admission. The distributed interconnect options (WithMaxChunkPayload,
// WithFaults, WithStragglerDeadline, …) configure the data plane of
// every job the cluster runs; WithProcessCluster is meaningless here
// (the spec's Nodes rules) and WithTCPTransport/WithChanTransport are
// ignored (a process cluster always speaks real sockets).
func NewCluster(spec ClusterSpec, opts ...DistOption) (*Cluster, error) {
	for _, o := range opts {
		o(&spec.Config)
	}
	return proc.NewCluster(spec)
}
