// Benchmarks: one testing.B benchmark (family) per table and figure of
// the paper's evaluation. These are the unit-sized counterparts of the
// full sweeps in cmd/reprobench; EXPERIMENTS.md maps each to the paper.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/hashagg"
	"repro/internal/pagerank"
	"repro/internal/partition"
	"repro/internal/rsum"
	"repro/internal/sqlagg"
	"repro/internal/tpch"
	"repro/internal/workload"
)

const benchN = 1 << 18

var benchSink float64

type f64acc float64

func (f *f64acc) Add(v float64)       { *f += f64acc(v) }
func (f *f64acc) MergeFrom(o *f64acc) { *f += *o }

type f32acc float32

func (f *f32acc) Add(v float32)       { *f += f32acc(v) }
func (f *f32acc) MergeFrom(o *f32acc) { *f += *o }

type u32acc uint32

func (u *u32acc) Add(v uint32) { *u += u32acc(v) }

// BenchmarkFig4 — Figure 4: plain HASHAGGREGATION with 16 groups per
// data type; the repro types cost a growing multiple of the built-ins.
func BenchmarkFig4(b *testing.B) {
	keys := workload.Keys(1, benchN, 16)
	f64 := workload.Values64(2, benchN, workload.Uniform12)
	f32 := workload.Values32(2, benchN, workload.Uniform12)
	u32 := make([]uint32, benchN)
	for i := range u32 {
		u32[i] = uint32(f64[i] * 100)
	}
	b.Run("uint32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := hashagg.New[u32acc](16, hashagg.Identity, func() u32acc { return 0 })
			hashagg.Aggregate[uint32, u32acc](t, keys, u32)
		}
	})
	b.Run("double", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := hashagg.New[f64acc](16, hashagg.Identity, func() f64acc { return 0 })
			hashagg.Aggregate[float64, f64acc](t, keys, f64)
		}
	})
	for _, l := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("repro_double_%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := hashagg.New[core.Sum64](16, hashagg.Identity,
					func() core.Sum64 { return core.NewSum64(l) })
				hashagg.Aggregate[float64, core.Sum64](t, keys, f64)
			}
		})
	}
	b.Run("repro_float_2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := hashagg.New[core.Sum32](16, hashagg.Identity,
				func() core.Sum32 { return core.NewSum32(2) })
			hashagg.Aggregate[float32, core.Sum32](t, keys, f32)
		}
	})
}

// BenchmarkTab2 — Table II companion: throughput of the summation
// routines whose accuracy the table reports (accuracy itself is checked
// in the test suite and printed by `reprobench tab2`).
func BenchmarkTab2(b *testing.B) {
	xs := workload.Values64(3, benchN, workload.Exp1)
	b.Run("conventional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += exact.Naive64(xs)
		}
	})
	for _, l := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("rsum_L%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := rsum.NewState64(l)
				s.AddSlice(xs)
				benchSink += s.Value()
			}
		})
	}
}

// BenchmarkFig6 — Figure 6: chunked summation, scalar vs vectorized
// kernel vs conventional, for small and large chunk sizes.
func BenchmarkFig6(b *testing.B) {
	xs := workload.Values64(4, benchN, workload.Uniform12)
	for _, c := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("scalar_c%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := rsum.NewState64(2)
				for j := 0; j < len(xs); j += c {
					s.AddSlice(xs[j : j+c])
				}
				benchSink += s.Value()
			}
		})
		b.Run(fmt.Sprintf("simd_c%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := rsum.NewState64(2)
				for j := 0; j < len(xs); j += c {
					s.AddSliceVec(xs[j : j+c])
				}
				benchSink += s.Value()
			}
		})
	}
	b.Run("conv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += exact.Naive64(xs)
		}
	})
	b.Run("simd_cinf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := rsum.NewState64(2)
			s.AddSliceVec(xs)
			benchSink += s.Value()
		}
	})
}

func benchPAA[V any, A any, PA interface {
	*A
	hashagg.Adder[V]
	hashagg.Merger[A]
}](b *testing.B, keys []uint32, vals []V, newA func() A, depth, groups int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		entries := agg.PartitionAndAggregate[V, A, PA](keys, vals, newA,
			agg.Options{Depth: depth, GroupHint: groups})
		benchSink += float64(len(entries))
	}
}

// BenchmarkFig7 — Figure 7: unbuffered PARTITIONANDAGGREGATE per data
// type at small/medium/large group counts.
func BenchmarkFig7(b *testing.B) {
	for _, g := range []int{16, 4096, 1 << 16} {
		keys := workload.Keys(5, benchN, uint32(g))
		f64 := workload.Values64(6, benchN, workload.Uniform12)
		i64 := make([]int64, benchN)
		for i := range i64 {
			i64[i] = int64(f64[i] * 1e4)
		}
		depth := agg.ThresholdsReproUnbuffered.Depth(g)
		dBuiltin := agg.ThresholdsBuiltin.Depth(g)
		b.Run(fmt.Sprintf("float_g%d", g), func(b *testing.B) {
			benchPAA[float64, f64acc](b, keys, f64, func() f64acc { return 0 }, dBuiltin, g)
		})
		b.Run(fmt.Sprintf("decimal38_g%d", g), func(b *testing.B) {
			benchPAA[int64, agg.D38](b, keys, i64, func() agg.D38 { return agg.D38{} }, dBuiltin, g)
		})
		b.Run(fmt.Sprintf("repro_double2_g%d", g), func(b *testing.B) {
			benchPAA[float64, core.Sum64](b, keys, f64,
				func() core.Sum64 { return core.NewSum64(2) }, depth, g)
		})
	}
}

// BenchmarkFig8 — Figure 8: buffer-size impact at 1024 groups, d = 0.
func BenchmarkFig8(b *testing.B) {
	const g = 1024
	keys := workload.Keys(7, benchN, g)
	f64 := workload.Values64(8, benchN, workload.Uniform12)
	for _, bsz := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("bsz%d", bsz), func(b *testing.B) {
			benchPAA[float64, core.Buffered64](b, keys, f64,
				func() core.Buffered64 { return core.NewBuffered64(2, bsz) }, 0, g)
		})
	}
}

// BenchmarkFig9 — Figure 9: partitioning depth 0/1/2 at 2^12 groups.
func BenchmarkFig9(b *testing.B) {
	const g = 1 << 12
	keys := workload.Keys(9, benchN, g)
	f32 := workload.Values32(10, benchN, workload.Uniform12)
	for depth := 0; depth <= 2; depth++ {
		bsz := agg.BufferSize(g, pow(256, depth), 4)
		b.Run(fmt.Sprintf("d%d", depth), func(b *testing.B) {
			benchPAA[float32, core.Buffered32](b, keys, f32,
				func() core.Buffered32 { return core.NewBuffered32(2, bsz) }, depth, g)
		})
	}
}

func pow(base, exp int) int {
	p := 1
	for i := 0; i < exp; i++ {
		p *= base
	}
	return p
}

// BenchmarkFig10 — Figure 10: buffered vs unbuffered repro vs float at a
// medium group count (the full sweep is `reprobench fig10`).
func BenchmarkFig10(b *testing.B) {
	const g = 4096
	keys := workload.Keys(11, benchN, g)
	f64 := workload.Values64(12, benchN, workload.Uniform12)
	depth := agg.ThresholdsReproBuffered.Depth(g)
	bsz := agg.BufferSize(g, pow(256, depth), 8)
	b.Run("float", func(b *testing.B) {
		benchPAA[float64, f64acc](b, keys, f64, func() f64acc { return 0 }, 0, g)
	})
	b.Run("repro_double2_buffered", func(b *testing.B) {
		benchPAA[float64, core.Buffered64](b, keys, f64,
			func() core.Buffered64 { return core.NewBuffered64(2, bsz) }, depth, g)
	})
	b.Run("repro_double2_unbuffered", func(b *testing.B) {
		benchPAA[float64, core.Sum64](b, keys, f64,
			func() core.Sum64 { return core.NewSum64(2) },
			agg.ThresholdsReproUnbuffered.Depth(g), g)
	})
}

// BenchmarkTab3 — Table III companion: the buffered slowdown at one
// representative point per scalar type (geomean over the sweep is
// `reprobench tab3`).
func BenchmarkTab3(b *testing.B) {
	const g = 1024
	keys := workload.Keys(13, benchN, g)
	f64 := workload.Values64(14, benchN, workload.Uniform12)
	f32 := workload.Values32(14, benchN, workload.Uniform12)
	depth := agg.ThresholdsReproBuffered.Depth(g)
	for _, l := range []int{1, 4} {
		b.Run(fmt.Sprintf("buffered_float_L%d", l), func(b *testing.B) {
			benchPAA[float32, core.Buffered32](b, keys, f32,
				func() core.Buffered32 { return core.NewBuffered32(l, agg.BufferSize(g, pow(256, depth), 4)) }, depth, g)
		})
		b.Run(fmt.Sprintf("buffered_double_L%d", l), func(b *testing.B) {
			benchPAA[float64, core.Buffered64](b, keys, f64,
				func() core.Buffered64 { return core.NewBuffered64(l, agg.BufferSize(g, pow(256, depth), 8)) }, depth, g)
		})
	}
}

// BenchmarkTab4 — Table IV: TPC-H Q1 per SUM kernel.
func BenchmarkTab4(b *testing.B) {
	tbl := tpch.GenLineitem(0.005, 15) // ~30k rows
	for _, k := range []engine.GroupByConfig{
		{Kind: engine.SumPlain},
		{Kind: engine.SumRepro, Levels: 4},
		{Kind: engine.SumReproBuffered, Levels: 4},
		{Kind: engine.SumSorted},
	} {
		b.Run(k.Kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, _, err := tpch.RunQ1(tbl, k)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += rows[0].SumQty
			}
		})
	}
}

// BenchmarkFig11 — Figure 11: distinct-heavy data (n/ngroups < 2^6).
func BenchmarkFig11(b *testing.B) {
	for _, ratio := range []int{256, 16, 2} {
		g := benchN / ratio
		keys := workload.Keys(17, benchN, uint32(g))
		f32 := workload.Values32(18, benchN, workload.Uniform12)
		depth := agg.ThresholdsReproBuffered.Depth(g)
		b.Run(fmt.Sprintf("n_per_group_%d", ratio), func(b *testing.B) {
			benchPAA[float32, core.Buffered32](b, keys, f32,
				func() core.Buffered32 { return core.NewBuffered32(2, 256) }, depth, g)
		})
	}
}

// BenchmarkFig12 — Figure 12: buffer size with one partitioning pass.
func BenchmarkFig12(b *testing.B) {
	const g = 1 << 16
	keys := workload.Keys(19, benchN, g)
	f32 := workload.Values32(20, benchN, workload.Uniform12)
	for _, bsz := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("bsz%d", bsz), func(b *testing.B) {
			benchPAA[float32, core.Buffered32](b, keys, f32,
				func() core.Buffered32 { return core.NewBuffered32(2, bsz) }, 1, g)
		})
	}
}

// BenchmarkPageRank — the introduction's motivation experiment: cost of
// reproducible vs float per-page summation.
func BenchmarkPageRank(b *testing.B) {
	g := pagerank.NewScaleFree(20000, 4, 21)
	b.Run("float64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := pagerank.Run(g, pagerank.Config{Iterations: 5})
			benchSink += r[0]
		}
	})
	b.Run("reproducible", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := pagerank.Run(g, pagerank.Config{Iterations: 5, Reproducible: true})
			benchSink += r[0]
		}
	})
}

// BenchmarkAblations — design-choice ablations called out in DESIGN.md:
// identity vs multiplicative hashing, eager vs tiled propagation, lane
// kernel vs scalar kernel, sort baseline.
func BenchmarkAblations(b *testing.B) {
	keys := workload.Keys(23, benchN, 4096)
	f64 := workload.Values64(24, benchN, workload.Uniform12)
	b.Run("hash_identity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := hashagg.New[f64acc](4096, hashagg.Identity, func() f64acc { return 0 })
			hashagg.Aggregate[float64, f64acc](t, keys, f64)
		}
	})
	b.Run("hash_multiplicative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := hashagg.New[f64acc](4096, hashagg.Multiplicative, func() f64acc { return 0 })
			hashagg.Aggregate[float64, f64acc](t, keys, f64)
		}
	})
	b.Run("add_eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := rsum.NewState64(2)
			for _, v := range f64 {
				s.AddEager(v)
			}
			benchSink += s.Value()
		}
	})
	b.Run("add_tiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := rsum.NewState64(2)
			s.AddSlice(f64)
			benchSink += s.Value()
		}
	})
	b.Run("neumaier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += exact.Neumaier64(f64)
		}
	})
	b.Run("sort_aggregation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			entries := agg.SortAggregate64(keys, f64)
			benchSink += float64(len(entries))
		}
	})
}

// BenchmarkOperatorVariants — the operator strategies of the related
// work (Section VII): private tables + partitioning (Algorithm 4),
// SHAREDAGGREGATION (striped shared table), adaptive switching, and the
// two radix-partitioning scatter strategies.
func BenchmarkOperatorVariants(b *testing.B) {
	const g = 4096
	keys := workload.Keys(25, benchN, g)
	f64 := workload.Values64(26, benchN, workload.Uniform12)
	newSum := func() core.Sum64 { return core.NewSum64(2) }
	b.Run("partition_and_aggregate", func(b *testing.B) {
		benchPAA[float64, core.Sum64](b, keys, f64, newSum, 0, g)
	})
	b.Run("shared_aggregation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			entries := agg.SharedAggregate[float64, core.Sum64](keys, f64, newSum,
				agg.Options{GroupHint: g})
			benchSink += float64(len(entries))
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			entries := agg.AdaptiveAggregate[float64, core.Sum64](keys, f64, newSum,
				agg.AdaptiveOptions{})
			benchSink += float64(len(entries))
		}
	})
	b.Run("radix_scatter_plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := partition.Do(keys, f64, 0, 256, 0)
			benchSink += float64(out.Off[128])
		}
	})
	b.Run("radix_scatter_swwcb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := partition.DoBuffered(keys, f64, 0, 256, 0)
			benchSink += float64(out.Off[128])
		}
	})
}

// BenchmarkQ6 — TPC-H Q6: a single ungrouped SUM through the engine,
// per summation routine.
func BenchmarkQ6(b *testing.B) {
	tbl := tpch.GenLineitem(0.01, 27)
	for _, k := range []struct {
		name string
		kind tpch.Q6SumKind
	}{
		{"plain", tpch.Q6Plain},
		{"rsum_scalar_L3", tpch.Q6Scalar},
		{"rsum_vec_L3", tpch.Q6Vec},
		{"neumaier", tpch.Q6Neumaier},
	} {
		b.Run(k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rev, _, err := tpch.RunQ6(tbl, k.kind, 3)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += rev
			}
		})
	}
}

// BenchmarkSQLAggregates — the future-work extension: reproducible
// statistical aggregates built from SUM.
func BenchmarkSQLAggregates(b *testing.B) {
	xs := workload.Values64(28, benchN, workload.Exp1)
	ys := workload.Values64(29, benchN, workload.Exp1)
	b.Run("variance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := sqlagg.NewVariance(2)
			for _, x := range xs {
				v.Add(x)
			}
			benchSink += v.VarPop()
		}
	})
	b.Run("corr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := sqlagg.NewCovariance(2)
			for j := range xs {
				c.Add(xs[j], ys[j])
			}
			benchSink += c.Corr()
		}
	})
	b.Run("dot_product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += sqlagg.DotProduct(xs, ys, 2)
		}
	})
}
