package repro_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro"
	"repro/internal/workload"
)

func TestSumReproducible(t *testing.T) {
	vals := workload.Values64(1, 10000, workload.MixedMag)
	want := repro.Sum(vals)
	for seed := uint64(2); seed < 7; seed++ {
		p := append([]float64(nil), vals...)
		workload.Shuffle(seed, p)
		if got := repro.Sum(p); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Sum changed under permutation: %v vs %v", got, want)
		}
	}
}

func TestSumPaperExample(t *testing.T) {
	// Algorithm 1 of the paper.
	a := []float64{2.5e-16, 0.999999999999999, 2.5e-16}
	b := []float64{0.999999999999999, 2.5e-16, 2.5e-16}
	if (a[0]+a[1])+a[2] == (b[0]+b[1])+b[2] {
		t.Skip("premise broken")
	}
	if math.Float64bits(repro.Sum(a)) != math.Float64bits(repro.Sum(b)) {
		t.Error("repro.Sum is order-dependent")
	}
}

func TestSumLevelsAccuracy(t *testing.T) {
	vals := workload.Values64(3, 100000, workload.Exp1)
	exact := 0.0
	for _, v := range vals { // Exp(1) sums fit comfortably in float64 here
		exact += v
	}
	for l := 2; l <= 4; l++ {
		got := repro.SumLevels(vals, l)
		if math.Abs(got-exact) > 1e-3 {
			t.Errorf("L=%d: %v vs ≈%v", l, got, exact)
		}
	}
}

func TestSum32(t *testing.T) {
	vals := workload.Values32(5, 10000, workload.Uniform12)
	got := repro.Sum32(vals)
	if got < 10000 || got > 20000 {
		t.Errorf("Sum32 = %v", got)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	vals := workload.Values64(7, 5000, workload.MixedMag)
	whole := repro.NewAccumulator(repro.DefaultLevels)
	for _, v := range vals {
		whole.Add(v)
	}
	a := repro.NewAccumulator(repro.DefaultLevels)
	b := repro.NewAccumulator(repro.DefaultLevels)
	for i, v := range vals {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.MergeFrom(&b)
	if math.Float64bits(a.Value()) != math.Float64bits(whole.Value()) {
		t.Error("merge differs from sequential")
	}
}

func TestBufferedAccumulatorMatches(t *testing.T) {
	vals := workload.Values64(9, 5000, workload.Exp1)
	plain := repro.NewAccumulator(2)
	for _, v := range vals {
		plain.Add(v)
	}
	buf := repro.NewBufferedAccumulator(2, repro.BufferSizeFor(1))
	for _, v := range vals {
		buf.Add(v)
	}
	if math.Float64bits(buf.Value()) != math.Float64bits(plain.Value()) {
		t.Error("buffered accumulator differs")
	}
}

func TestGroupBySum(t *testing.T) {
	keys := workload.Keys(11, 50000, 100)
	vals := workload.Values64(12, 50000, workload.Uniform12)
	groups := repro.GroupBySum(keys, vals, nil)
	if len(groups) != 100 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Sorted by key.
	for i := 1; i < len(groups); i++ {
		if groups[i-1].Key >= groups[i].Key {
			t.Fatal("groups not sorted by key")
		}
	}
	// Matches a map-based reference within rounding.
	ref := make(map[uint32]float64)
	for i, k := range keys {
		ref[k] += vals[i]
	}
	for _, g := range groups {
		if math.Abs(g.Sum-ref[g.Key]) > 1e-6 {
			t.Errorf("group %d: %v vs %v", g.Key, g.Sum, ref[g.Key])
		}
	}
}

func TestGroupBySumReproducibleAcrossConfigs(t *testing.T) {
	keys := workload.Keys(13, 30000, 512)
	vals := workload.Values64(14, 30000, workload.MixedMag)
	ref := repro.GroupBySum(keys, vals, nil)
	configs := []*repro.GroupByOptions{
		{Workers: 1},
		{Workers: 4},
		{Groups: 512},
		{Groups: 1 << 20}, // forces different depth/buffer choices
		{Unbuffered: true},
		{Unbuffered: true, Workers: 3},
	}
	for ci, opt := range configs {
		got := repro.GroupBySum(keys, vals, opt)
		if len(got) != len(ref) {
			t.Fatalf("config %d: %d groups", ci, len(got))
		}
		for i := range got {
			if got[i].Key != ref[i].Key ||
				math.Float64bits(got[i].Sum) != math.Float64bits(ref[i].Sum) {
				t.Fatalf("config %d: group %d differs", ci, got[i].Key)
			}
		}
	}
	// And across permutations.
	pk := append([]uint32(nil), keys...)
	pv := append([]float64(nil), vals...)
	workload.ShufflePairs(99, pk, pv)
	got := repro.GroupBySum(pk, pv, nil)
	for i := range got {
		if math.Float64bits(got[i].Sum) != math.Float64bits(ref[i].Sum) {
			t.Fatal("permutation changed GroupBySum")
		}
	}
}

func TestGroupBySumProperty(t *testing.T) {
	f := func(seed uint64, rot uint16) bool {
		keys := workload.Keys(seed, 500, 17)
		vals := workload.Values64(seed+1, 500, workload.MixedMag)
		ref := repro.GroupBySum(keys, vals, nil)
		k := int(rot)%len(keys) + 1
		pk := append(append([]uint32(nil), keys[k:]...), keys[:k]...)
		pv := append(append([]float64(nil), vals[k:]...), vals[:k]...)
		got := repro.GroupBySum(pk, pv, nil)
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStateSerialization(t *testing.T) {
	acc := repro.NewAccumulator(2)
	acc.Add(1.5)
	acc.Add(2.5e-10)
	data, err := acc.State().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var st repro.State
	if err := st.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(st.Value()) != math.Float64bits(acc.Value()) {
		t.Error("serialized state value differs")
	}
}

func TestErrorBound(t *testing.T) {
	if repro.ErrorBound(1000, 2, 2) <= 0 {
		t.Error("bound not positive")
	}
	if repro.ErrorBound(1000, 3, 2) >= repro.ErrorBound(1000, 2, 2) {
		t.Error("bound not decreasing in L")
	}
}

func TestSpecialsThroughPublicAPI(t *testing.T) {
	if v := repro.Sum([]float64{1, math.Inf(1)}); !math.IsInf(v, 1) {
		t.Errorf("Sum with +Inf = %v", v)
	}
	if v := repro.Sum([]float64{math.Inf(1), math.Inf(-1)}); !math.IsNaN(v) {
		t.Errorf("Sum of ±Inf = %v", v)
	}
	if v := repro.Sum(nil); v != 0 {
		t.Errorf("Sum(nil) = %v", v)
	}
}

func TestDotProductPublic(t *testing.T) {
	if got := repro.DotProduct([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("DotProduct = %v", got)
	}
	x := workload.Values64(20, 1000, workload.MixedMag)
	y := workload.Values64(21, 1000, workload.MixedMag)
	want := repro.DotProduct(x, y)
	px := append([]float64(nil), x...)
	py := append([]float64(nil), y...)
	workload.ShufflePairs(22, px, py)
	if math.Float64bits(repro.DotProduct(px, py)) != math.Float64bits(want) {
		t.Error("public DotProduct not permutation-stable")
	}
}
