// Command reproworker is the spawnable cluster worker of the
// multi-process runtime (internal/dist/proc): one reproworker process
// is one node of a reproducible-aggregation cluster.
//
// Workers are normally spawned by a supervisor — the repro facade's
// WithProcessCluster option, proc.Reduce/AggregateByKey, or the
// `reprobench dist -procs` sweep — which passes each worker its
// control address, node id, and the hex-encoded run configuration:
//
//	reproworker -control 127.0.0.1:43117 -id 3 -conf 0102...
//
// On start a worker binds a data-plane TCP listener, dials the control
// address, and sends a KindHello join handshake carrying its frame
// codec version, rsum summation level count, and a digest of the run
// configuration it was started with. The supervisor rejects any
// mismatch with a typed wire error (ErrHandshake) before a byte of
// data moves — a stale binary or an edited config cannot silently
// join and diverge. Accepted workers receive the peer address table
// and their input shard, execute their node's role of the reduction
// or GROUP BY shuffle protocol over real sockets (reconnecting and
// serving per-chunk resends through any socket failure), and exit on
// the supervisor's shutdown frame.
//
// Point a supervisor at an explicitly built worker with the
// REPROWORKER_BIN environment variable (CI does, to prove the real
// binary path); without it, supervisors re-execute their own binary.
package main

import (
	"os"

	"repro/internal/dist/proc"
)

func main() {
	os.Exit(proc.WorkerMain(os.Args[1:]))
}
