// Command reproworker is the spawnable cluster worker of the
// multi-process runtime (internal/dist/proc): one reproworker process
// is one node of a reproducible-aggregation cluster.
//
// Workers are normally spawned by a supervisor — the repro facade's
// WithProcessCluster option, proc.Reduce/AggregateByKey, or the
// `reprobench dist -procs` sweep — which passes each worker its
// control address, node id, and the hex-encoded run configuration:
//
//	reproworker -control 127.0.0.1:43117 -id 3 -conf 0102...
//
// A worker can also join a cluster it was not spawned by. Join mode
// takes only the supervisor's control address:
//
//	reproworker -join 10.0.0.5:43117
//
// and is how an operator adds capacity from another shell or another
// machine: the joiner introduces itself with a config-less hello, the
// supervisor hands it the cluster configuration and a node id (or
// parks it as a standby when every slot is taken), and from there it
// is indistinguishable from a spawned worker. With replacement
// enabled, a parked joiner is the substitute the supervisor promotes
// when a member dies mid-run.
//
// Either way the worker dials the control address and sends a
// KindHello handshake carrying its frame codec version, rsum
// summation level count, and — once it holds the cluster config — a
// digest of that config. The supervisor rejects any mismatch with a
// typed wire error (ErrHandshake) before a byte of data moves — a
// stale binary or an edited config cannot silently join and diverge.
// Accepted workers receive job specs over the control plane,
// materialize their input locally (raw shards from the payload, or a
// declarative generator/TPC-H slice), bind a fresh data-plane
// listener per job, execute their node's role of the reduction or
// GROUP BY shuffle protocol over real sockets (reconnecting and
// serving per-chunk resends through any socket failure), and exit on
// the supervisor's shutdown frame.
//
// Exit codes: 0 on a clean shutdown (also -help), 1 on a runtime
// failure, 2 on flag misuse, and 3 when the supervisor rejects the
// handshake — scripts can tell "wrong build or config" (3) apart
// from "cluster fell over" (1) without parsing stderr.
//
// Point a supervisor at an explicitly built worker with the
// REPROWORKER_BIN environment variable (CI does, to prove the real
// binary path); without it, supervisors re-execute their own binary.
package main

import (
	"os"

	"repro/internal/dist/proc"
)

func main() {
	os.Exit(proc.WorkerMain(os.Args[1:]))
}
