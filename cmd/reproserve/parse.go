package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlagg"
)

// aggKinds maps the SQL-ish aggregate names of the /query endpoint to
// the sqlagg catalog.
var aggKinds = map[string]sqlagg.AggKind{
	"SUM":         sqlagg.AggSum,
	"COUNT":       sqlagg.AggCount,
	"AVG":         sqlagg.AggAvg,
	"VAR_POP":     sqlagg.AggVarPop,
	"VAR_SAMP":    sqlagg.AggVarSamp,
	"STDDEV_POP":  sqlagg.AggStddevPop,
	"STDDEV_SAMP": sqlagg.AggStddevSamp,
	"MIN":         sqlagg.AggMin,
	"MAX":         sqlagg.AggMax,
}

// parseAggList parses a compact aggregate list like "SUM(0),AVG(1)"
// into specs, applying levels to every spec (0 = default).
func parseAggList(s string, levels int) ([]sqlagg.AggSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty aggregate list (expected e.g. aggs=SUM(0),AVG(1))")
	}
	var specs []sqlagg.AggSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		open := strings.IndexByte(item, '(')
		if open < 0 || !strings.HasSuffix(item, ")") {
			return nil, fmt.Errorf("malformed aggregate %q (expected KIND(col))", item)
		}
		kind, ok := aggKinds[strings.ToUpper(strings.TrimSpace(item[:open]))]
		if !ok {
			return nil, fmt.Errorf("unknown aggregate kind %q", item[:open])
		}
		col, err := strconv.Atoi(strings.TrimSpace(item[open+1 : len(item)-1]))
		if err != nil || col < 0 {
			return nil, fmt.Errorf("bad column index in %q", item)
		}
		specs = append(specs, sqlagg.AggSpec{Kind: kind, Levels: levels, Col: col})
	}
	return specs, nil
}

// atoiDefault parses s as an int, returning def for empty or
// unparsable input (validation happens in the serving layer).
func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return v
}
