// Command reproserve runs the reproducible SQL serving layer as an
// HTTP server: it loads a resident dataset (synthetic workload rows or
// TPC-H Q1 input), then answers concurrent GROUP BY and window
// aggregate queries with canonical, bit-reproducible results. The same
// query always returns the same bytes — across requests, backends, and
// restarts on the same data — which is what makes the built-in result
// cache correct and the response digests comparable between machines.
//
// Endpoints:
//
//	GET /query?aggs=SUM(0),AVG(1)[&levels=L]   GROUP BY with the given
//	                                           aggregate list (kinds:
//	                                           SUM, COUNT, AVG, VAR_POP,
//	                                           VAR_SAMP, STDDEV_POP,
//	                                           STDDEV_SAMP, MIN, MAX;
//	                                           the argument is the value
//	                                           column index)
//	GET /window?col=C[&levels=L][&limit=N]     per-row window totals
//	                                           SUM(col) OVER (PARTITION
//	                                           BY key); limit caps the
//	                                           rows echoed back
//	GET /stats                                 serving counters, build
//	                                           and version info, uptime
//	GET /metrics                               Prometheus text: the
//	                                           server's registry plus
//	                                           the process-global wire
//	                                           and cluster counters
//	GET /trace/{id}                            one query's recorded
//	                                           trace (span names,
//	                                           timings, hop digests);
//	                                           ids come from query
//	                                           responses' trace_id
//	GET /healthz                               liveness probe
//
// Admission failures map to HTTP status codes: over budget → 413,
// overloaded / queue timeout → 503 (with Retry-After), bad query → 400.
//
// Flags:
//
//	-addr            listen address (default 127.0.0.1:8390)
//	-rows            synthetic dataset rows (default 1<<20)
//	-groups          synthetic distinct-key domain (default 4096)
//	-ncols           synthetic value columns (default 4)
//	-seed            workload seed (default 42)
//	-sf              load TPC-H Q1 input at this scale factor instead
//	                 of the synthetic dataset (0 disables)
//	-cluster         answer GROUP BY on the distributed backend
//	-shards          cluster size for -cluster (default 4)
//	-proc-nodes      answer GROUP BY on a spawned multi-process cluster
//	                 of this many workers (0 disables; implies -cluster
//	                 semantics over processes)
//	-journal         journal directory for the -proc-nodes supervisor:
//	                 the cluster's control-plane state is logged there,
//	                 and a restarted reproserve pointed at the same
//	                 directory recovers it — same control address, same
//	                 workers re-attached, same result bytes. While such
//	                 a recovery is in progress, cluster-bound queries
//	                 answer 503 + Retry-After (cache hits still serve).
//	-max-concurrent  executing-query cap (default 8)
//	-max-queue       admission queue depth (default 64)
//	-queue-timeout   queued-query wait bound (default 2s)
//	-budget          per-query memory budget in bytes (default 1 GiB)
//	-cache           result-cache entries (default 256; negative off)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/proc"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	// A -proc-nodes supervisor re-executes its own binary as the
	// workers (unless REPROWORKER_BIN points elsewhere); those child
	// processes divert here and never run the server.
	proc.MaybeWorkerMain()
	addr := flag.String("addr", "127.0.0.1:8390", "listen address")
	rows := flag.Int("rows", 1<<20, "synthetic dataset rows")
	groups := flag.Uint("groups", 4096, "synthetic distinct-key domain")
	ncols := flag.Int("ncols", 4, "synthetic value columns")
	seed := flag.Uint64("seed", 42, "workload seed")
	sf := flag.Float64("sf", 0, "load TPC-H Q1 input at this scale factor instead")
	cluster := flag.Bool("cluster", false, "answer GROUP BY on the distributed backend")
	shards := flag.Int("shards", 4, "cluster size for -cluster")
	procNodes := flag.Int("proc-nodes", 0, "answer GROUP BY on a spawned multi-process cluster of this many workers (0 disables)")
	journal := flag.String("journal", "", "journal directory for the -proc-nodes supervisor (enables crash-restart recovery)")
	maxConcurrent := flag.Int("max-concurrent", 8, "executing-query cap")
	maxQueue := flag.Int("max-queue", 64, "admission queue depth")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "queued-query wait bound")
	budget := flag.Int("budget", 1<<30, "per-query memory budget in bytes")
	cache := flag.Int("cache", 256, "result-cache entries (negative disables)")
	flag.Parse()

	dsOpts := serve.DatasetOptions{Shards: *shards}
	var (
		ds  *serve.Dataset
		err error
	)
	if *sf > 0 {
		ds, err = serve.Q1Dataset(*sf, *seed, dsOpts)
	} else {
		ds, err = serve.SyntheticDataset(*seed, *rows, uint32(*groups), *ncols, workload.MixedMag, dsOpts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproserve:", err)
		os.Exit(1)
	}

	var pc *proc.Cluster
	if *procNodes > 0 {
		pc, err = proc.NewCluster(proc.ClusterSpec{
			Nodes:       *procNodes,
			ReplaceDead: true,
			Journal:     *journal,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproserve:", err)
			os.Exit(1)
		}
		defer pc.Close()
		log.Printf("reproserve: %d-worker process cluster on %s (journal %q)",
			*procNodes, pc.Addr(), *journal)
	}

	srv, err := serve.NewServer(ds, serve.Options{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		QueueTimeout:  *queueTimeout,
		MemoryBudget:  *budget,
		CacheEntries:  *cache,
		Distributed:   *cluster,
		Cluster:       pc,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproserve:", err)
		os.Exit(1)
	}
	defer srv.Close()

	log.Printf("reproserve: %d rows × %d cols resident (version %016x), listening on %s",
		ds.Rows(), ds.Cols(), ds.Version(), *addr)
	log.Fatal(http.ListenAndServe(*addr, newHandler(srv, pc)))
}

// buildInfo is the version block /stats reports: which build answered,
// down to the wire and control-plane encodings it speaks — the first
// things to compare when two deployments disagree about bytes.
type buildInfo struct {
	GoVersion          string `json:"go_version"`
	ModuleVersion      string `json:"module_version"`
	WireFrameVersion   int    `json:"wire_frame_version"`
	ControlSpecVersion int    `json:"control_spec_version"`
	UptimeSeconds      int64  `json:"uptime_seconds"`
}

func newBuildInfo(start time.Time) buildInfo {
	b := buildInfo{
		GoVersion:          runtime.Version(),
		ModuleVersion:      "(devel)",
		WireFrameVersion:   int(dist.FrameVersion),
		ControlSpecVersion: proc.ControlSpecVersion,
		UptimeSeconds:      int64(time.Since(start).Seconds()),
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		b.ModuleVersion = bi.Main.Version
	}
	return b
}

// newHandler wires the serving endpoints onto srv. pc, when non-nil,
// is the backing process cluster whose durability counters ride along
// on /stats.
func newHandler(srv *serve.Server, pc *proc.Cluster) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		specs, err := parseAggList(r.URL.Query().Get("aggs"), atoiDefault(r.URL.Query().Get("levels"), 0))
		if err != nil {
			httpError(w, fmt.Errorf("%w: %v", serve.ErrBadQuery, err))
			return
		}
		res, err := srv.Do(serve.GroupBy(specs...))
		if err != nil {
			httpError(w, err)
			return
		}
		gs, err := res.Groups()
		if err != nil {
			httpError(w, err)
			return
		}
		type row struct {
			Key  uint32    `json:"key"`
			Aggs []float64 `json:"aggs"`
		}
		out := struct {
			Version  string `json:"data_version"`
			Digest   string `json:"result_digest"`
			CacheHit bool   `json:"cache_hit"`
			TraceID  uint64 `json:"trace_id,omitempty"`
			Groups   []row  `json:"groups"`
		}{
			Version:  fmt.Sprintf("%016x", res.Version),
			Digest:   resultDigest(res.Bytes),
			CacheHit: res.CacheHit,
			TraceID:  res.TraceID,
			Groups:   make([]row, len(gs)),
		}
		for i, g := range gs {
			out.Groups[i] = row{Key: g.Key, Aggs: g.Aggs}
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("GET /window", func(w http.ResponseWriter, r *http.Request) {
		col := atoiDefault(r.URL.Query().Get("col"), 0)
		levels := atoiDefault(r.URL.Query().Get("levels"), 0)
		res, err := srv.Do(serve.WindowTotals(col, levels))
		if err != nil {
			httpError(w, err)
			return
		}
		totals, err := res.Totals()
		if err != nil {
			httpError(w, err)
			return
		}
		limit := atoiDefault(r.URL.Query().Get("limit"), 16)
		shown := totals
		if limit >= 0 && limit < len(shown) {
			shown = shown[:limit]
		}
		writeJSON(w, struct {
			Version  string    `json:"data_version"`
			Digest   string    `json:"result_digest"`
			CacheHit bool      `json:"cache_hit"`
			TraceID  uint64    `json:"trace_id,omitempty"`
			Rows     int       `json:"rows"`
			Totals   []float64 `json:"totals"`
		}{fmt.Sprintf("%016x", res.Version), resultDigest(res.Bytes), res.CacheHit, res.TraceID, len(totals), shown})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		if pc == nil {
			writeJSON(w, struct {
				serve.Stats
				Build buildInfo `json:"build"`
			}{srv.Stats(), newBuildInfo(start)})
			return
		}
		cst := pc.Stats()
		writeJSON(w, struct {
			serve.Stats
			Cluster proc.ClusterStats `json:"cluster"`
			Ready   bool              `json:"cluster_ready"`
			Build   buildInfo         `json:"build"`
		}{srv.Stats(), cst, pc.Ready(), newBuildInfo(start)})
	})

	// /metrics unions the server's private registry with the
	// process-global one (data-plane wire counters, cluster control
	// plane) into a single Prometheus text exposition.
	mux.Handle("GET /metrics", obs.Handler(srv.Registry(), obs.Default))

	mux.HandleFunc("GET /trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "trace id must be a decimal integer", http.StatusBadRequest)
			return
		}
		tr := srv.Trace(id)
		if tr == nil {
			http.Error(w, "no such trace (never assigned, evicted, or tracing disabled)", http.StatusNotFound)
			return
		}
		writeJSON(w, tr.View())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError maps the serving layer's typed errors to HTTP statuses.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, serve.ErrBadQuery):
		status = http.StatusBadRequest
	case errors.Is(err, serve.ErrOverBudget):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrQueueTimeout):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, serve.ErrServerClosed):
		status = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), status)
}

// resultDigest is a short FNV-64a fingerprint of the canonical result
// bytes — equal digests across requests, backends, and machines are
// the observable face of bit-reproducibility.
func resultDigest(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
