package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/sqlagg"
	"repro/internal/workload"
)

func testServer(t *testing.T, opts serve.Options) *httptest.Server {
	t.Helper()
	ds, err := serve.SyntheticDataset(7, 1<<12, 256, 3, workload.MixedMag, serve.DatasetOptions{Shards: 2})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	srv, err := serve.NewServer(ds, opts)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	ts := httptest.NewServer(newHandler(srv, nil))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body
}

type queryResp struct {
	Version  string `json:"data_version"`
	Digest   string `json:"result_digest"`
	CacheHit bool   `json:"cache_hit"`
	Groups   []struct {
		Key  uint32    `json:"key"`
		Aggs []float64 `json:"aggs"`
	} `json:"groups"`
}

// TestConcurrentQueriesIdenticalDigests hammers one query endpoint
// from many goroutines (cold first, then warm) and requires every
// response to carry the same result digest — reproducibility observed
// end to end through the HTTP surface. Run under -race in CI.
func TestConcurrentQueriesIdenticalDigests(t *testing.T) {
	ts := testServer(t, serve.Options{MaxConcurrent: 16, MaxQueue: 256, QueueTimeout: 30 * time.Second})
	const clients = 24
	url := ts.URL + "/query?aggs=SUM(0),COUNT(0),AVG(1),MIN(2),MAX(2)&levels=2"

	digests := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := get(t, url)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			var qr queryResp
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			digests[i] = qr.Digest
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if digests[i] != digests[0] {
			t.Fatalf("client %d digest %s differs from client 0 digest %s", i, digests[i], digests[0])
		}
	}

	// A warm follow-up must hit the cache with the same digest.
	_, body := get(t, url)
	var qr queryResp
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !qr.CacheHit {
		t.Fatal("warm request missed the cache")
	}
	if qr.Digest != digests[0] {
		t.Fatal("warm digest differs from cold digests")
	}
}

func TestStatusCodeMapping(t *testing.T) {
	ts := testServer(t, serve.Options{MemoryBudget: 64}) // rejects every GROUP BY
	if status, _ := get(t, ts.URL+"/query?aggs=SUM(0)"); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over budget: status %d, want 413", status)
	}
	if status, _ := get(t, ts.URL+"/query?aggs=NOPE(0)"); status != http.StatusBadRequest {
		t.Fatalf("unknown aggregate: status %d, want 400", status)
	}
	if status, _ := get(t, ts.URL+"/query?aggs=SUM(99)"); status != http.StatusBadRequest {
		t.Fatalf("column out of range: status %d, want 400", status)
	}
	if status, _ := get(t, ts.URL+"/window?col=99"); status != http.StatusBadRequest {
		t.Fatalf("window column out of range: status %d, want 400", status)
	}
	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if status, _ := get(t, ts.URL+"/stats"); status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
}

func TestWindowEndpoint(t *testing.T) {
	ts := testServer(t, serve.Options{})
	status, body := get(t, ts.URL+"/window?col=1&limit=4")
	if status != http.StatusOK {
		t.Fatalf("window: status %d: %s", status, body)
	}
	var wr struct {
		Rows   int       `json:"rows"`
		Totals []float64 `json:"totals"`
	}
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if wr.Rows != 1<<12 {
		t.Fatalf("rows %d, want %d", wr.Rows, 1<<12)
	}
	if len(wr.Totals) != 4 {
		t.Fatalf("limit ignored: %d totals echoed", len(wr.Totals))
	}
}

func TestParseAggList(t *testing.T) {
	specs, err := parseAggList(" sum(0), STDDEV_SAMP(2) ", 3)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []sqlagg.AggSpec{
		{Kind: sqlagg.AggSum, Levels: 3, Col: 0},
		{Kind: sqlagg.AggStddevSamp, Levels: 3, Col: 2},
	}
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	for _, bad := range []string{"", "SUM", "SUM(", "SUM(x)", "SUM(-1)", "HUH(0)"} {
		if _, err := parseAggList(bad, 0); err == nil {
			t.Fatalf("parseAggList(%q) accepted malformed input", bad)
		}
	}
}
