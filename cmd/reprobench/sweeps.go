package main

import (
	"fmt"
	"os"

	"repro/internal/agg"
	"repro/internal/bench"
)

// groupSweep returns the group-count sweep, capped so ngroups ≤ n.
func groupSweep(cfg config, lo, hi int) []int {
	var out []int
	for _, g := range bench.Pow2Sweep(lo, hi) {
		if g <= cfg.n {
			out = append(out, g)
		}
	}
	if cfg.quick && len(out) > 5 {
		picked := []int{out[0], out[len(out)/4], out[len(out)/2], out[3*len(out)/4], out[len(out)-1]}
		out = picked
	}
	return out
}

// runFig7 — Figure 7: PARTITIONANDAGGREGATE *without* summation buffers
// on DECIMAL(9/18/38) and repro<ScalarT,L∈{2,3}>, absolute time and
// slowdown vs the same algorithm on float.
func runFig7(cfg config) {
	tTime := bench.NewTable("Figure 7 (top): unbuffered PartitionAndAggregate, ns/elem",
		"ngroups", "float", "DEC(9)", "DEC(18)", "DEC(38)",
		"repro<f,2>", "repro<f,3>", "repro<d,2>", "repro<d,3>")
	tSlow := bench.NewTable("Figure 7 (bottom): slowdown vs float",
		"ngroups", "DEC(9)", "DEC(18)", "DEC(38)",
		"repro<f,2>", "repro<f,3>", "repro<d,2>", "repro<d,3>")
	p := workers()
	for _, g := range groupSweep(cfg, 0, 24) {
		d := makeDatasets(cfg.seed, cfg.n, uint32(g))
		dBuiltin := agg.ThresholdsBuiltin.Depth(g)
		dRepro := agg.ThresholdsReproUnbuffered.Depth(g)
		ns := func(f func() (dur int64)) float64 { return float64(f()) }
		_ = ns
		base := bench.NsPerElem(runF64(d, dBuiltin, g), p, cfg.n)
		d9 := bench.NsPerElem(runD9(d, dBuiltin, g), p, cfg.n)
		d18 := bench.NsPerElem(runD18(d, dBuiltin, g), p, cfg.n)
		d38 := bench.NsPerElem(runD38(d, dBuiltin, g), p, cfg.n)
		rf2 := bench.NsPerElem(runSum32(d, 2, dRepro, g), p, cfg.n)
		rf3 := bench.NsPerElem(runSum32(d, 3, dRepro, g), p, cfg.n)
		rd2 := bench.NsPerElem(runSum64(d, 2, dRepro, g), p, cfg.n)
		rd3 := bench.NsPerElem(runSum64(d, 3, dRepro, g), p, cfg.n)
		tTime.AddRow(g, base, d9, d18, d38, rf2, rf3, rd2, rd3)
		tSlow.AddRow(g, bench.Ratio(d9/base), bench.Ratio(d18/base), bench.Ratio(d38/base),
			bench.Ratio(rf2/base), bench.Ratio(rf3/base),
			bench.Ratio(rd2/base), bench.Ratio(rd3/base))
	}
	tTime.Fprint(os.Stdout)
	tSlow.Fprint(os.Stdout)
}

// runFig8 — Figure 8: impact of the buffer size on
// PARTITIONANDAGGREGATE with d = 0. (a) 16 groups: bigger is better,
// with diminishing returns past 2^8; (b) 1024 groups: sharp drop once
// the working set leaves the cache; (c) per-buffer-size group sweep for
// repro<float,2>, with the Eq. 4 prediction.
func runFig8(cfg config) {
	bszs := []int{16, 32, 64, 128, 256, 512, 1024}
	if cfg.quick {
		bszs = []int{16, 256, 1024}
	}
	p := workers()
	for _, g := range []int{16, 1024} {
		d := makeDatasets(cfg.seed, cfg.n, uint32(g))
		t := bench.NewTable(
			fmt.Sprintf("Figure 8(%c): %d groups, d=0, ns/elem", 'a'+rune(b2i(g == 1024)), g),
			"bsz", "repro<f,2>", "repro<f,3>", "repro<d,2>", "repro<d,3>")
		for _, bsz := range bszs {
			t.AddRow(bsz,
				bench.NsPerElem(runBuf32(d, 2, 0, g, bsz), p, cfg.n),
				bench.NsPerElem(runBuf32(d, 3, 0, g, bsz), p, cfg.n),
				bench.NsPerElem(runBuf64(d, 2, 0, g, bsz), p, cfg.n),
				bench.NsPerElem(runBuf64(d, 3, 0, g, bsz), p, cfg.n))
		}
		t.Fprint(os.Stdout)
	}
	t := bench.NewTable("Figure 8(c): repro<float,2>, d=0, group sweep, ns/elem",
		"ngroups", "bsz=16", "bsz=64", "bsz=256", "bsz=1024", "bsz=Eq4", "Eq4 value")
	for _, g := range groupSweep(cfg, 4, 14) {
		d := makeDatasets(cfg.seed, cfg.n, uint32(g))
		pred := eq4(g, 0, 4, 256)
		t.AddRow(g,
			bench.NsPerElem(runBuf32(d, 2, 0, g, 16), p, cfg.n),
			bench.NsPerElem(runBuf32(d, 2, 0, g, 64), p, cfg.n),
			bench.NsPerElem(runBuf32(d, 2, 0, g, 256), p, cfg.n),
			bench.NsPerElem(runBuf32(d, 2, 0, g, 1024), p, cfg.n),
			bench.NsPerElem(runBuf32(d, 2, 0, g, pred), p, cfg.n),
			pred)
	}
	t.Fprint(os.Stdout)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runFig9 — Figure 9: HASHAGGREGATION variants with different amounts
// of partitioning (d = 0, 1, 2) on buffered repro<float,2>; each depth
// wins in a different group-count range.
func runFig9(cfg config) {
	t := bench.NewTable("Figure 9: repro<float,2> with buffers, ns/elem per depth",
		"ngroups", "d=0", "d=1", "d=2")
	p := workers()
	for _, g := range groupSweep(cfg, 0, 24) {
		d := makeDatasets(cfg.seed, cfg.n, uint32(g))
		row := []any{g}
		for depth := 0; depth <= 2; depth++ {
			bsz := eq4(g, depth, 4, 256)
			row = append(row, bench.NsPerElem(runBuf32(d, 2, depth, g, bsz), p, cfg.n))
		}
		t.AddRow(row...)
	}
	t.Fprint(os.Stdout)
}

// runFig10 — Figure 10: PARTITIONANDAGGREGATE *with* summation buffers:
// absolute time, slowdown vs float, and speedup vs the unbuffered
// algorithm of Figure 7.
func runFig10(cfg config) {
	tTime := bench.NewTable("Figure 10 (top): buffered PartitionAndAggregate, ns/elem",
		"ngroups", "float", "DEC(9)", "DEC(18)", "DEC(38)",
		"repro<f,2>", "repro<f,3>", "repro<d,2>", "repro<d,3>")
	tSlow := bench.NewTable("Figure 10 (middle): slowdown vs float",
		"ngroups", "repro<f,2>", "repro<f,3>", "repro<d,2>", "repro<d,3>")
	tSpeed := bench.NewTable("Figure 10 (bottom): speedup vs unbuffered",
		"ngroups", "repro<f,2>", "repro<f,3>", "repro<d,2>", "repro<d,3>")
	p := workers()
	for _, g := range groupSweep(cfg, 0, 24) {
		d := makeDatasets(cfg.seed, cfg.n, uint32(g))
		depth := agg.ThresholdsReproBuffered.Depth(g)
		dBuiltin := agg.ThresholdsBuiltin.Depth(g)
		dUnbuf := agg.ThresholdsReproUnbuffered.Depth(g)
		bsz32 := eq4(g, depth, 4, 256)
		bsz64 := eq4(g, depth, 8, 256)

		base := bench.NsPerElem(runF64(d, dBuiltin, g), p, cfg.n)
		d9 := bench.NsPerElem(runD9(d, dBuiltin, g), p, cfg.n)
		d18 := bench.NsPerElem(runD18(d, dBuiltin, g), p, cfg.n)
		d38 := bench.NsPerElem(runD38(d, dBuiltin, g), p, cfg.n)
		bf2 := bench.NsPerElem(runBuf32(d, 2, depth, g, bsz32), p, cfg.n)
		bf3 := bench.NsPerElem(runBuf32(d, 3, depth, g, bsz32), p, cfg.n)
		bd2 := bench.NsPerElem(runBuf64(d, 2, depth, g, bsz64), p, cfg.n)
		bd3 := bench.NsPerElem(runBuf64(d, 3, depth, g, bsz64), p, cfg.n)
		uf2 := bench.NsPerElem(runSum32(d, 2, dUnbuf, g), p, cfg.n)
		uf3 := bench.NsPerElem(runSum32(d, 3, dUnbuf, g), p, cfg.n)
		ud2 := bench.NsPerElem(runSum64(d, 2, dUnbuf, g), p, cfg.n)
		ud3 := bench.NsPerElem(runSum64(d, 3, dUnbuf, g), p, cfg.n)

		tTime.AddRow(g, base, d9, d18, d38, bf2, bf3, bd2, bd3)
		tSlow.AddRow(g, bench.Ratio(bf2/base), bench.Ratio(bf3/base),
			bench.Ratio(bd2/base), bench.Ratio(bd3/base))
		tSpeed.AddRow(g, bench.Ratio(uf2/bf2), bench.Ratio(uf3/bf3),
			bench.Ratio(ud2/bd2), bench.Ratio(ud3/bd3))
	}
	tTime.Fprint(os.Stdout)
	tSlow.Fprint(os.Stdout)
	tSpeed.Fprint(os.Stdout)
}

// runTab3 — Table III: geometric mean over the group sweep of the
// slowdown of buffered repro types vs float, for all eight
// repro<ScalarT,L> configurations.
func runTab3(cfg config) {
	sweep := groupSweep(cfg, 0, 24)
	p := workers()
	type series struct {
		name  string
		ratio []float64
	}
	all := []series{
		{name: "repro<float,1>"}, {name: "repro<float,2>"},
		{name: "repro<float,3>"}, {name: "repro<float,4>"},
		{name: "repro<double,1>"}, {name: "repro<double,2>"},
		{name: "repro<double,3>"}, {name: "repro<double,4>"},
	}
	for _, g := range sweep {
		d := makeDatasets(cfg.seed, cfg.n, uint32(g))
		depth := agg.ThresholdsReproBuffered.Depth(g)
		dBuiltin := agg.ThresholdsBuiltin.Depth(g)
		base := bench.NsPerElem(runF64(d, dBuiltin, g), p, cfg.n)
		for l := 1; l <= 4; l++ {
			bsz := eq4(g, depth, 4, 256)
			ns := bench.NsPerElem(runBuf32(d, l, depth, g, bsz), p, cfg.n)
			all[l-1].ratio = append(all[l-1].ratio, ns/base)
		}
		for l := 1; l <= 4; l++ {
			bsz := eq4(g, depth, 8, 256)
			ns := bench.NsPerElem(runBuf64(d, l, depth, g, bsz), p, cfg.n)
			all[4+l-1].ratio = append(all[4+l-1].ratio, ns/base)
		}
	}
	t := bench.NewTable("Table III: geomean slowdown of buffered repro vs float",
		"data type", "slowdown")
	for _, s := range all {
		t.AddRow(s.name, bench.Ratio(bench.Geomean(s.ratio)))
	}
	t.Fprint(os.Stdout)
}

// runFig11 — Figure 11 (appendix): performance on (almost) distinct
// data for several input sizes; the drop appears whenever
// n/ngroups < 2^6, independent of n.
func runFig11(cfg config) {
	t := bench.NewTable("Figure 11: repro<float,2> buffered (bsz=256), distinct data, ns/elem",
		"ngroups", "n", "n/ngroups", "ns/elem")
	p := workers()
	sizes := []int{cfg.n / 16, cfg.n / 4, cfg.n}
	for _, n := range sizes {
		if n < 1024 {
			continue
		}
		sub := cfg
		sub.n = n
		for _, g := range groupSweep(sub, pow2Floor(n)-10, pow2Floor(n)) {
			d := makeDatasets(cfg.seed, n, uint32(g))
			depth := agg.ThresholdsReproBuffered.Depth(g)
			t.AddRow(g, n, n/g, bench.NsPerElem(runBuf32(d, 2, depth, g, 256), p, n))
		}
	}
	t.Fprint(os.Stdout)
}

func pow2Floor(n int) int {
	e := 0
	for 1<<(e+1) <= n {
		e++
	}
	return e
}

// runFig12 — Figure 12 (appendix): buffer-size impact with one level of
// partitioning (fan-out 256): same shape as Figure 8, shifted by the
// fan-out.
func runFig12(cfg config) {
	bszs := []int{16, 32, 64, 128, 256, 512, 1024}
	if cfg.quick {
		bszs = []int{16, 256, 1024}
	}
	p := workers()
	for _, g := range []int{4096, 262144} {
		if g > cfg.n {
			continue
		}
		d := makeDatasets(cfg.seed, cfg.n, uint32(g))
		t := bench.NewTable(
			fmt.Sprintf("Figure 12: %d groups, d=1, ns/elem", g),
			"bsz", "repro<f,2>", "repro<f,3>", "repro<d,2>", "repro<d,3>")
		for _, bsz := range bszs {
			t.AddRow(bsz,
				bench.NsPerElem(runBuf32(d, 2, 1, g, bsz), p, cfg.n),
				bench.NsPerElem(runBuf32(d, 3, 1, g, bsz), p, cfg.n),
				bench.NsPerElem(runBuf64(d, 2, 1, g, bsz), p, cfg.n),
				bench.NsPerElem(runBuf64(d, 3, 1, g, bsz), p, cfg.n))
		}
		t.Fprint(os.Stdout)
	}
	t := bench.NewTable("Figure 12(c): repro<float,2>, d=1, group sweep, ns/elem",
		"ngroups", "bsz=16", "bsz=64", "bsz=256", "bsz=1024", "bsz=Eq4", "Eq4 value")
	for _, g := range groupSweep(cfg, 12, 22) {
		d := makeDatasets(cfg.seed, cfg.n, uint32(g))
		pred := eq4(g, 1, 4, 256)
		t.AddRow(g,
			bench.NsPerElem(runBuf32(d, 2, 1, g, 16), p, cfg.n),
			bench.NsPerElem(runBuf32(d, 2, 1, g, 64), p, cfg.n),
			bench.NsPerElem(runBuf32(d, 2, 1, g, 256), p, cfg.n),
			bench.NsPerElem(runBuf32(d, 2, 1, g, 1024), p, cfg.n),
			bench.NsPerElem(runBuf32(d, 2, 1, g, pred), p, cfg.n),
			pred)
	}
	t.Fprint(os.Stdout)
}
