package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rsum"
	"repro/internal/workload"
)

// runFig4 — Figure 4: HASHAGGREGATION with 16 groups on uint32, float,
// double, and repro<ScalarT,L> for L = 1..4; the repro types are 4×–12×
// slower than the built-in types.
func runFig4(cfg config) {
	const ngroups = 16
	keys := workload.Keys(cfg.seed, cfg.n, ngroups)
	f64 := workload.Values64(cfg.seed+1, cfg.n, workload.Uniform12)
	f32 := make([]float32, cfg.n)
	u32 := make([]uint32, cfg.n)
	for i, v := range f64 {
		f32[i] = float32(v)
		u32[i] = uint32(v * 1e4)
	}

	t := bench.NewTable("Figure 4: HashAggregation, 16 groups",
		"data type", "ns/elem", "slowdown vs uint32")
	base := hashAggTime[uint32, U32fig](keys, u32, func() U32fig { return 0 }, ngroups)
	baseNs := bench.NsPerElem(base, 1, cfg.n)
	add := func(name string, d time.Duration) {
		ns := bench.NsPerElem(d, 1, cfg.n)
		t.AddRow(name, ns, bench.Ratio(ns/baseNs))
	}
	add("uint32", base)
	add("float", hashAggTime[float32, F32fig](keys, f32, func() F32fig { return 0 }, ngroups))
	add("double", hashAggTime[float64, F64fig](keys, f64, func() F64fig { return 0 }, ngroups))
	for l := 1; l <= 4; l++ {
		add(fmt.Sprintf("repro<float,%d>", l),
			hashAggTime[float32, core.Sum32](keys, f32,
				func() core.Sum32 { return core.NewSum32(l) }, ngroups))
	}
	for l := 1; l <= 4; l++ {
		add(fmt.Sprintf("repro<double,%d>", l),
			hashAggTime[float64, core.Sum64](keys, f64,
				func() core.Sum64 { return core.NewSum64(l) }, ngroups))
	}
	t.Fprint(os.Stdout)
}

// Local scalar accumulators for Figure 4 (duplicated from internal/agg
// to keep the runner generic instantiation local).
type U32fig uint32

func (u *U32fig) Add(v uint32) { *u += U32fig(v) }

type F32fig float32

func (f *F32fig) Add(v float32) { *f += F32fig(v) }

type F64fig float64

func (f *F64fig) Add(v float64) { *f += F64fig(v) }

// runTab2 — Table II: maximum absolute error (bound and measured) of
// conventional summation vs RSUM with L = 1..3 for n = 10^3 and 10^6
// values from U[1,2) and Exp(1), double precision.
func runTab2(cfg config) {
	t := bench.NewTable("Table II: absolute error, double precision",
		"algorithm", "n", "dist", "bound", "measured")
	ns := []int{1000, 1000000}
	if cfg.quick {
		ns = []int{1000, 100000}
	}
	for _, n := range ns {
		for _, dist := range []workload.ValueDist{workload.Uniform12, workload.Exp1} {
			xs := workload.Values64(cfg.seed, n, dist)
			maxAbs := 0.0
			for _, x := range xs {
				if a := math.Abs(x); a > maxAbs {
					maxAbs = a
				}
			}
			ex := exact.Sum(xs)
			conv := exact.Naive64(xs)
			t.AddRow("conventional", n, dist.String(),
				exact.ConvBound(xs), exact.AbsError(conv, ex))
			for l := 1; l <= 3; l++ {
				s := rsum.NewState64(l)
				s.AddSlice(xs)
				t.AddRow(fmt.Sprintf("RSUM (L=%d)", l), n, dist.String(),
					exact.RSumBound(n, l, maxAbs), exact.AbsError(s.Value(), ex))
			}
		}
	}
	t.Fprint(os.Stdout)
}

// runFig6 — Figure 6: relative performance of RSUM SCALAR and RSUM SIMD
// vs conventional summation (CONV) when the input is summed in chunks
// of c values, mimicking the access pattern of GROUPBY. SIMD loses for
// small chunks (V× larger per-call state) and approaches SIMD(c=∞) for
// large ones.
func runFig6(cfg config) {
	n := cfg.n &^ 511 // multiple of all chunk sizes
	f64 := workload.Values64(cfg.seed, n, workload.Uniform12)
	f32 := workload.Values32(cfg.seed, n, workload.Uniform12)
	chunks := []int{2, 4, 8, 12, 16, 24, 32, 48, 64, 128, 256, 512}
	if cfg.quick {
		chunks = []int{2, 16, 64, 512}
	}
	reps := 3

	for _, levels := range []int{2, 3} {
		// Double precision.
		conv := bench.MeasureBest(reps, func() { sinkF64 += exact.Naive64(f64) })
		convNs := bench.NsPerElem(conv, 1, n)
		inf := bench.MeasureBest(reps, func() {
			s := rsum.NewState64(levels)
			s.AddSliceVec(f64)
			sinkF64 += s.Value()
		})
		t := bench.NewTable(
			fmt.Sprintf("Figure 6: double precision, %d levels (CONV = %.2f ns/elem, SIMD c=inf = %s)",
				levels, convNs, bench.Ratio(bench.NsPerElem(inf, 1, n)/convNs)),
			"chunk c", "scalar slowdown", "simd slowdown")
		for _, c := range chunks {
			sc := bench.MeasureBest(reps, func() {
				s := rsum.NewState64(levels)
				for i := 0; i < n; i += c {
					s.AddSlice(f64[i:min(i+c, n)])
				}
				sinkF64 += s.Value()
			})
			sv := bench.MeasureBest(reps, func() {
				s := rsum.NewState64(levels)
				for i := 0; i < n; i += c {
					s.AddSliceVec(f64[i:min(i+c, n)])
				}
				sinkF64 += s.Value()
			})
			t.AddRow(c,
				bench.Ratio(bench.NsPerElem(sc, 1, n)/convNs),
				bench.Ratio(bench.NsPerElem(sv, 1, n)/convNs))
		}
		t.Fprint(os.Stdout)

		// Single precision.
		conv32 := bench.MeasureBest(reps, func() { sinkF64 += float64(exact.Naive32(f32)) })
		convNs32 := bench.NsPerElem(conv32, 1, n)
		inf32 := bench.MeasureBest(reps, func() {
			s := rsum.NewState32(levels)
			s.AddSliceVec(f32)
			sinkF64 += float64(s.Value())
		})
		t32 := bench.NewTable(
			fmt.Sprintf("Figure 6: single precision, %d levels (CONV = %.2f ns/elem, SIMD c=inf = %s)",
				levels, convNs32, bench.Ratio(bench.NsPerElem(inf32, 1, n)/convNs32)),
			"chunk c", "scalar slowdown", "simd slowdown")
		for _, c := range chunks {
			sc := bench.MeasureBest(reps, func() {
				s := rsum.NewState32(levels)
				for i := 0; i < n; i += c {
					s.AddSlice(f32[i:min(i+c, n)])
				}
				sinkF64 += float64(s.Value())
			})
			sv := bench.MeasureBest(reps, func() {
				s := rsum.NewState32(levels)
				for i := 0; i < n; i += c {
					s.AddSliceVec(f32[i:min(i+c, n)])
				}
				sinkF64 += float64(s.Value())
			})
			t32.AddRow(c,
				bench.Ratio(bench.NsPerElem(sc, 1, n)/convNs32),
				bench.Ratio(bench.NsPerElem(sv, 1, n)/convNs32))
		}
		t32.Fprint(os.Stdout)
	}
}
