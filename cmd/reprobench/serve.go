package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/sqlagg"
	"repro/internal/workload"
)

// runServe — serving-layer throughput sweep (extension; not a paper
// figure): a query server over resident data, hammered by concurrent
// clients across backends (local partitioned engine vs distributed
// tuple plane) and cache temperatures. Reports sustained QPS and the
// cache-hit ratio per cell, and verifies that every cell's result
// digest is identical — the serving layer's reproducibility claim
// under real concurrency.
func runServe(cfg config) {
	rows := cfg.n
	if rows > 1<<20 {
		rows = 1 << 20
	}
	clientsSweep := []int{1, 8, 32}
	queriesPer := 64
	if cfg.quick {
		clientsSweep = []int{1, 8}
		queriesPer = 16
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "reprobench serve: "+format+"\n", args...)
		os.Exit(1)
	}
	ds, err := serve.SyntheticDataset(cfg.seed, rows, 4096, 2, workload.MixedMag, serve.DatasetOptions{})
	if err != nil {
		fail("dataset: %v", err)
	}
	query := serve.GroupBy(
		sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 0},
		sqlagg.AggSpec{Kind: sqlagg.AggAvg, Col: 1},
		sqlagg.AggSpec{Kind: sqlagg.AggCount},
	)

	backends := []struct {
		name string
		opts serve.Options
	}{
		{"local", serve.Options{}},
		{"cluster", serve.Options{Distributed: true}},
	}

	t := bench.NewTable("Serving sweep: GROUP BY QPS over resident rows (digests identical across all cells)",
		"backend", "cache", "clients", "qps", "hit ratio")
	var ref []byte
	for _, be := range backends {
		for _, temperature := range []string{"cold", "warm"} {
			for _, clients := range clientsSweep {
				opts := be.opts
				opts.MaxConcurrent = clients
				opts.MaxQueue = clients * queriesPer
				opts.QueueTimeout = time.Minute
				if temperature == "cold" {
					opts.CacheEntries = -1
				}
				srv, err := serve.NewServer(ds, opts)
				if err != nil {
					fail("server: %v", err)
				}
				if temperature == "warm" {
					if _, err := srv.Do(query); err != nil {
						fail("prewarm: %v", err)
					}
				}
				var bad atomic.Int64
				var wg sync.WaitGroup
				start := time.Now()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < queriesPer; i++ {
							r, err := srv.Do(query)
							if err != nil {
								fail("query: %v", err)
							}
							if ref == nil {
								ref = r.Bytes
							} else if string(r.Bytes) != string(ref) {
								bad.Add(1)
							}
						}
					}()
				}
				wg.Wait()
				elapsed := time.Since(start)
				if bad.Load() != 0 {
					fail("%s/%s/%d clients: %d responses diverged from the reference bytes",
						be.name, temperature, clients, bad.Load())
				}
				total := clients * queriesPer
				st := srv.Stats()
				hitRatio := 0.0
				if st.CacheHits+st.CacheMisses > 0 {
					hitRatio = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
				}
				t.AddRow(be.name, temperature, clients,
					float64(total)/elapsed.Seconds(), fmt.Sprintf("%.2f", hitRatio))
				srv.Close()
			}
		}
	}
	t.Fprint(os.Stdout)
	fmt.Printf("serving sweep: every response byte-identical across backends, temperatures, and client counts\n\n")
}
