package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/dist"
	"repro/internal/dist/proc"
	"repro/internal/workload"
)

// runDistProcs — cross-process equivalence matrix (`reprobench dist
// -procs`): the reduction and GROUP BY shuffle executed by clusters of
// genuinely separate reproworker OS processes, swept across topology ×
// cluster size × chunk regime, every cell compared bit-for-bit against
// the in-process ChanTransport reference. One additional cell forces a
// socket kill mid chunk stream (plus a hostile fault plan) and
// demands that reconnect-and-resend recovery leave the bits untouched.
// Any mismatch exits non-zero.
//
// Workers are spawned from REPROWORKER_BIN when set (CI builds
// cmd/reproworker and points there, proving the standalone binary);
// otherwise this binary re-executes itself — main calls
// proc.MaybeWorkerMain for exactly that.
func runDistProcs(cfg config) {
	rows := cfg.n
	if rows > 1<<17 {
		// Job specs ship whole shards over the control plane; announce
		// the cap so the log never claims a larger matrix than ran.
		rows = 1 << 17
		fmt.Printf("cross-process matrix: capping rows at %d (asked for %d)\n\n", rows, cfg.n)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "reprobench dist -procs: "+format+"\n", args...)
		os.Exit(1)
	}
	// MaxResend < 0: the matrix must never give up on a slow spawn —
	// genuine hangs fall to the supervisor's join timeout and the
	// harness timeout.
	pcfg := func() dist.Config {
		return dist.Config{ChildDeadline: 200 * time.Millisecond, MaxResend: -1}
	}
	opt := proc.Options{JoinTimeout: 60 * time.Second}

	vals := workload.Values64(cfg.seed, rows, workload.MixedMag)
	sizes := []int{2, 4, 8}
	if cfg.quick {
		sizes = []int{2, 4}
	}

	// Reduction: topology × cluster size, vs the in-process reference.
	refSum, err := dist.ReduceConfig([][]float64{vals}, 2, dist.Binomial, dist.Config{})
	if err != nil {
		fail("in-process reduce reference: %v", err)
	}
	refBits := math.Float64bits(refSum)
	t := bench.NewTable("Cross-process reduce: ms/run (bits identical to in-process reference)",
		"procs", "topology", "ms", "bits")
	for _, n := range sizes {
		shards := make([][]float64, n)
		for i, v := range vals {
			shards[i%n] = append(shards[i%n], v)
		}
		for _, topo := range []dist.Topology{dist.Binomial, dist.Chain, dist.Star} {
			var sum float64
			dur := bench.Measure(func() {
				var err error
				sum, err = proc.Reduce(shards, 2, topo, pcfg(), opt)
				if err != nil {
					fail("reduce %d procs, %s: %v", n, topo, err)
				}
			})
			if math.Float64bits(sum) != refBits {
				fail("reduce %d procs, %s: %016x, want %016x — cross-process run broke bit-reproducibility",
					n, topo, math.Float64bits(sum), refBits)
			}
			t.AddRow(n, topo.String(), float64(dur.Milliseconds()), fmt.Sprintf("%016x", math.Float64bits(sum)))
		}
	}
	t.Fprint(os.Stdout)

	// GROUP BY shuffle: cluster size × chunk regime, vs the in-process
	// reference for that regime's key distribution.
	regimes := []struct {
		name         string
		distinct     uint32
		chunkPayload int
	}{
		{"single", 256, 0},    // default 16 MiB chunk payload: one frame per (sender, owner)
		{"multi", 2048, 4096}, // forced multi-chunk shuffle streams through real sockets
	}
	tg := bench.NewTable("Cross-process AggregateByKey: ms/run (bits identical to in-process reference)",
		"procs", "chunks", "ms", "groups")
	for _, reg := range regimes {
		keys := workload.Keys(cfg.seed+2, rows, reg.distinct)
		ref, err := dist.AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, dist.Config{})
		if err != nil {
			fail("in-process groupby reference (%s): %v", reg.name, err)
		}
		for _, n := range sizes {
			lk := make([][]uint32, n)
			lv := make([][]float64, n)
			for i := range keys {
				d := i % n
				lk[d] = append(lk[d], keys[i])
				lv[d] = append(lv[d], vals[i])
			}
			dcfg := pcfg()
			dcfg.MaxChunkPayload = reg.chunkPayload
			var out []dist.Group
			dur := bench.Measure(func() {
				var err error
				out, err = proc.AggregateByKey(lk, lv, 2, dcfg, opt)
				if err != nil {
					fail("groupby %d procs, %s: %v", n, reg.name, err)
				}
			})
			compareGroups(fail, fmt.Sprintf("groupby %d procs, %s", n, reg.name), out, ref)
			tg.AddRow(n, reg.name, float64(dur.Milliseconds()), len(out))
		}
	}
	tg.Fprint(os.Stdout)

	// Forced socket-kill-and-reconnect: node 1 severs every outgoing
	// connection just before its 4th data frame, mid multi-chunk
	// shuffle, under a hostile fault plan on top. The per-chunk resend
	// path must recover over fresh connections with identical bits.
	keys := workload.Keys(cfg.seed+2, rows, 2048)
	ref, err := dist.AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, dist.Config{})
	if err != nil {
		fail("in-process kill reference: %v", err)
	}
	const killProcs = 4
	lk := make([][]uint32, killProcs)
	lv := make([][]float64, killProcs)
	for i := range keys {
		d := i % killProcs
		lk[d] = append(lk[d], keys[i])
		lv[d] = append(lv[d], vals[i])
	}
	dcfg := pcfg()
	dcfg.MaxChunkPayload = 4096
	dcfg.Faults = &dist.FaultPlan{Seed: cfg.seed, DropProb: 0.1, DupProb: 0.1, Reorder: true,
		MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond}
	kopt := opt
	kopt.KillConnNode = 1
	kopt.KillConnAfter = 4
	out, err := proc.AggregateByKey(lk, lv, 2, dcfg, kopt)
	if err != nil {
		fail("socket-kill scenario: %v", err)
	}
	compareGroups(fail, "socket-kill scenario", out, ref)
	fmt.Printf("socket-kill-and-reconnect (%d procs, multi-chunk, faults): recovered, %d groups bit-identical\n\n",
		killProcs, len(out))
	fmt.Printf("cross-process matrix: all cells bit-identical to the in-process reference\n\n")
}

func compareGroups(fail func(string, ...any), name string, got, want []dist.Group) {
	if len(got) != len(want) {
		fail("%s: %d groups, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || math.Float64bits(got[i].Sum) != math.Float64bits(want[i].Sum) {
			fail("%s: group %d broke bit-reproducibility", name, got[i].Key)
		}
	}
}
