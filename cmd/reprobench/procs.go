package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/dist"
	"repro/internal/dist/proc"
	"repro/internal/engine"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// runDistProcs — cross-process equivalence matrix (`reprobench dist
// -procs`): the reduction and GROUP BY shuffle executed by clusters of
// genuinely separate reproworker OS processes, swept across topology ×
// cluster size × chunk regime, every cell compared bit-for-bit against
// the in-process ChanTransport reference. One additional cell forces a
// socket kill mid chunk stream (plus a hostile fault plan) and
// demands that reconnect-and-resend recovery leave the bits untouched.
// Any mismatch exits non-zero.
//
// Workers are spawned from REPROWORKER_BIN when set (CI builds
// cmd/reproworker and points there, proving the standalone binary);
// otherwise this binary re-executes itself — main calls
// proc.MaybeWorkerMain for exactly that.
func runDistProcs(cfg config) {
	rows := cfg.n
	if rows > 1<<17 {
		// Job specs ship whole shards over the control plane; announce
		// the cap so the log never claims a larger matrix than ran.
		rows = 1 << 17
		fmt.Printf("cross-process matrix: capping rows at %d (asked for %d)\n\n", rows, cfg.n)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "reprobench dist -procs: "+format+"\n", args...)
		os.Exit(1)
	}
	// MaxResend < 0: the matrix must never give up on a slow spawn —
	// genuine hangs fall to the supervisor's join timeout and the
	// harness timeout.
	pcfg := func() dist.Config {
		return dist.Config{ChildDeadline: 200 * time.Millisecond, MaxResend: -1}
	}
	opt := proc.Options{JoinTimeout: 60 * time.Second}

	vals := workload.Values64(cfg.seed, rows, workload.MixedMag)
	sizes := []int{2, 4, 8}
	if cfg.quick {
		sizes = []int{2, 4}
	}

	// Reduction: topology × cluster size, vs the in-process reference.
	refSum, err := dist.ReduceConfig([][]float64{vals}, 2, dist.Binomial, dist.Config{})
	if err != nil {
		fail("in-process reduce reference: %v", err)
	}
	refBits := math.Float64bits(refSum)
	t := bench.NewTable("Cross-process reduce: ms/run (bits identical to in-process reference)",
		"procs", "topology", "ms", "bits")
	for _, n := range sizes {
		shards := make([][]float64, n)
		for i, v := range vals {
			shards[i%n] = append(shards[i%n], v)
		}
		for _, topo := range []dist.Topology{dist.Binomial, dist.Chain, dist.Star} {
			var sum float64
			dur := bench.Measure(func() {
				var err error
				sum, err = proc.Reduce(shards, 2, topo, pcfg(), opt)
				if err != nil {
					fail("reduce %d procs, %s: %v", n, topo, err)
				}
			})
			if math.Float64bits(sum) != refBits {
				fail("reduce %d procs, %s: %016x, want %016x — cross-process run broke bit-reproducibility",
					n, topo, math.Float64bits(sum), refBits)
			}
			t.AddRow(n, topo.String(), float64(dur.Milliseconds()), fmt.Sprintf("%016x", math.Float64bits(sum)))
		}
	}
	t.Fprint(os.Stdout)

	// GROUP BY shuffle: cluster size × chunk regime, vs the in-process
	// reference for that regime's key distribution.
	regimes := []struct {
		name         string
		distinct     uint32
		chunkPayload int
	}{
		{"single", 256, 0},    // default 16 MiB chunk payload: one frame per (sender, owner)
		{"multi", 2048, 4096}, // forced multi-chunk shuffle streams through real sockets
	}
	tg := bench.NewTable("Cross-process AggregateByKey: ms/run (bits identical to in-process reference)",
		"procs", "chunks", "ms", "groups")
	for _, reg := range regimes {
		keys := workload.Keys(cfg.seed+2, rows, reg.distinct)
		ref, err := dist.AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, dist.Config{})
		if err != nil {
			fail("in-process groupby reference (%s): %v", reg.name, err)
		}
		for _, n := range sizes {
			lk := make([][]uint32, n)
			lv := make([][]float64, n)
			for i := range keys {
				d := i % n
				lk[d] = append(lk[d], keys[i])
				lv[d] = append(lv[d], vals[i])
			}
			dcfg := pcfg()
			dcfg.MaxChunkPayload = reg.chunkPayload
			var out []dist.Group
			dur := bench.Measure(func() {
				var err error
				out, err = proc.AggregateByKey(lk, lv, 2, dcfg, opt)
				if err != nil {
					fail("groupby %d procs, %s: %v", n, reg.name, err)
				}
			})
			compareGroups(fail, fmt.Sprintf("groupby %d procs, %s", n, reg.name), out, ref)
			tg.AddRow(n, reg.name, float64(dur.Milliseconds()), len(out))
		}
	}
	tg.Fprint(os.Stdout)

	// Forced socket-kill-and-reconnect: node 1 severs every outgoing
	// connection just before its 4th data frame, mid multi-chunk
	// shuffle, under a hostile fault plan on top. The per-chunk resend
	// path must recover over fresh connections with identical bits.
	keys := workload.Keys(cfg.seed+2, rows, 2048)
	ref, err := dist.AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, dist.Config{})
	if err != nil {
		fail("in-process kill reference: %v", err)
	}
	const killProcs = 4
	lk := make([][]uint32, killProcs)
	lv := make([][]float64, killProcs)
	for i := range keys {
		d := i % killProcs
		lk[d] = append(lk[d], keys[i])
		lv[d] = append(lv[d], vals[i])
	}
	dcfg := pcfg()
	dcfg.MaxChunkPayload = 4096
	dcfg.Faults = &dist.FaultPlan{Seed: cfg.seed, DropProb: 0.1, DupProb: 0.1, Reorder: true,
		MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond}
	kopt := opt
	kopt.KillConnNode = 1
	kopt.KillConnAfter = 4
	out, err := proc.AggregateByKey(lk, lv, 2, dcfg, kopt)
	if err != nil {
		fail("socket-kill scenario: %v", err)
	}
	compareGroups(fail, "socket-kill scenario", out, ref)
	fmt.Printf("socket-kill-and-reconnect (%d procs, multi-chunk, faults): recovered, %d groups bit-identical\n\n",
		killProcs, len(out))

	runQ1Procs(cfg, opt, fail)
	fmt.Printf("cross-process matrix: all cells bit-identical to the in-process reference\n\n")
}

// runQ1Procs — the TPC-H Q1 equivalence cell: the full multi-aggregate
// query (4×SUM, 3×AVG, COUNT over five shuffled columns) executed by a
// 4-process cluster, every output column compared bit-for-bit against
// the local single-process engine. This is the end-to-end proof that
// the spec catalog survives the control plane, real sockets, and the
// gather path with the engine's exact bits.
func runQ1Procs(cfg config, opt proc.Options, fail func(string, ...any)) {
	const levels = 2
	tbl := tpch.GenLineitem(0.002, cfg.seed)
	want, _, err := tpch.RunQ1(tbl, engine.GroupByConfig{Kind: engine.SumRepro, Levels: levels})
	if err != nil {
		fail("q1 local engine reference: %v", err)
	}
	keys, cols, err := tpch.Q1Input(tbl)
	if err != nil {
		fail("q1 input: %v", err)
	}
	const q1Procs = 4
	sk, sc := tpch.ShardQ1Input(keys, cols, q1Procs)
	dcfg := dist.Config{ChildDeadline: 200 * time.Millisecond, MaxResend: -1, MaxChunkPayload: 4096}
	var got []tpch.Q1Group
	dur := bench.Measure(func() {
		tuples, err := proc.AggregateTuples(sk, sc, 2, tpch.Q1Specs(levels), dcfg, opt)
		if err != nil {
			fail("q1 cross-process: %v", err)
		}
		got, err = tpch.Q1FromTuples(tuples)
		if err != nil {
			fail("q1 cross-process finalize: %v", err)
		}
	})
	if len(got) != len(want) {
		fail("q1 cross-process: %d group rows, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ReturnFlag != w.ReturnFlag || g.LineStatus != w.LineStatus || g.Count != w.Count {
			fail("q1 cross-process row %d: %c%c/%d, want %c%c/%d",
				i, g.ReturnFlag, g.LineStatus, g.Count, w.ReturnFlag, w.LineStatus, w.Count)
		}
		for c, pair := range [][2]float64{
			{g.SumQty, w.SumQty}, {g.SumBasePrice, w.SumBasePrice},
			{g.SumDiscPrice, w.SumDiscPrice}, {g.SumCharge, w.SumCharge},
			{g.AvgQty, w.AvgQty}, {g.AvgPrice, w.AvgPrice}, {g.AvgDisc, w.AvgDisc},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				fail("q1 cross-process row %c%c column %d: %016x, want %016x — cluster result differs from the local engine",
					g.ReturnFlag, g.LineStatus, c, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
			}
		}
	}
	fmt.Printf("tpch q1 (%d procs, multi-chunk, %d lineitem rows, %d ms): %d group rows, all 8 output columns bit-identical to the local engine\n\n",
		q1Procs, tbl.NumRows(), dur.Milliseconds(), len(got))
}

func compareGroups(fail func(string, ...any), name string, got, want []dist.Group) {
	if len(got) != len(want) {
		fail("%s: %d groups, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || math.Float64bits(got[i].Sum) != math.Float64bits(want[i].Sum) {
			fail("%s: group %d broke bit-reproducibility", name, got[i].Key)
		}
	}
}
