package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/dist"
	"repro/internal/workload"
)

// runDist — transport sweep (extension; not a paper figure): the
// distributed reduction and GROUP BY shuffle over the in-process
// channel transport vs real TCP sockets on loopback, across cluster
// sizes and topologies. Reports throughput per transport and verifies
// that every cell lands on the same bits — including one cell with a
// hostile fault plan injected into the TCP link.
func runDist(cfg config) {
	vals := workload.Values64(cfg.seed, cfg.n, workload.MixedMag)
	nodesSweep := []int{2, 4, 8, 16}
	if cfg.quick {
		nodesSweep = []int{2, 8}
	}

	transports := []struct {
		name    string
		factory dist.TransportFactory
	}{
		{"chan", dist.ChanTransportFactory},
		{"tcp", dist.TCPTransportFactory},
	}

	var ref uint64
	haveRef := false
	mismatches := 0

	t := bench.NewTable("Transport sweep: Reduce, ns/elem (bits identical across all cells)",
		"nodes", "topology", "chan", "tcp", "tcp/chan")
	for _, nodes := range nodesSweep {
		shards := make([][]float64, nodes)
		for i, v := range vals {
			shards[i%nodes] = append(shards[i%nodes], v)
		}
		for _, topo := range []dist.Topology{dist.Binomial, dist.Chain, dist.Star} {
			var ns [2]float64
			for ti, tr := range transports {
				var sum float64
				dur := bench.Measure(func() {
					var err error
					sum, err = dist.ReduceConfig(shards, 2, topo, dist.Config{NewTransport: tr.factory})
					if err != nil {
						fmt.Fprintf(os.Stderr, "reprobench dist: %v\n", err)
						os.Exit(1)
					}
				})
				ns[ti] = bench.NsPerElem(dur, 1, cfg.n)
				bits := math.Float64bits(sum)
				if !haveRef {
					ref, haveRef = bits, true
				} else if bits != ref {
					mismatches++
				}
			}
			t.AddRow(nodes, topo.String(), ns[0], ns[1], bench.Ratio(ns[1]/ns[0]))
		}
	}
	t.Fprint(os.Stdout)

	// One hostile cell: TCP with drops, dups, reordering, and delays.
	plan := &dist.FaultPlan{Seed: cfg.seed, DropProb: 0.2, DupProb: 0.2, Reorder: true,
		MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond}
	shards := make([][]float64, 8)
	for i, v := range vals {
		shards[i%8] = append(shards[i%8], v)
	}
	sum, err := dist.ReduceConfig(shards, 2, dist.Binomial, dist.Config{
		NewTransport: dist.TCPTransportFactory, Faults: plan, ChildDeadline: 5 * time.Millisecond})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprobench dist (faults): %v\n", err)
		os.Exit(1)
	}
	if bits := math.Float64bits(sum); bits != ref {
		mismatches++
	}
	fmt.Printf("tcp+faults (8 nodes, binomial, drop/dup/reorder/delay): %016x\n", math.Float64bits(sum))
	fmt.Printf("bit mismatches across all transport cells: %d\n\n", mismatches)
	if mismatches != 0 {
		fmt.Fprintf(os.Stderr, "reprobench dist: %d transport cells broke bit-reproducibility\n", mismatches)
		os.Exit(1)
	}

	// GROUP BY shuffle across the same transports.
	keys := workload.Keys(cfg.seed+1, cfg.n, 1024)
	tg := bench.NewTable("Transport sweep: AggregateByKey, ns/elem",
		"nodes", "chan", "tcp", "tcp/chan")
	for _, nodes := range nodesSweep {
		lk := make([][]uint32, nodes)
		lv := make([][]float64, nodes)
		for i := range keys {
			d := i % nodes
			lk[d] = append(lk[d], keys[i])
			lv[d] = append(lv[d], vals[i])
		}
		var ns [2]float64
		for ti, tr := range transports {
			dur := bench.Measure(func() {
				if _, err := dist.AggregateByKeyConfig(lk, lv, 2, dist.Config{NewTransport: tr.factory}); err != nil {
					fmt.Fprintf(os.Stderr, "reprobench dist groupby: %v\n", err)
					os.Exit(1)
				}
			})
			ns[ti] = bench.NsPerElem(dur, 1, cfg.n)
		}
		tg.AddRow(nodes, ns[0], ns[1], bench.Ratio(ns[1]/ns[0]))
	}
	tg.Fprint(os.Stdout)
}
