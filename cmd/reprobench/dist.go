package main

import (
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/dist"
	"repro/internal/workload"
)

// runDist — transport sweep (extension; not a paper figure): the
// distributed reduction and GROUP BY shuffle over the in-process
// channel transport vs real TCP sockets on loopback, across cluster
// sizes and topologies. Reports throughput per transport and verifies
// that every cell lands on the same bits — including one cell with a
// hostile fault plan injected into the TCP link.
func runDist(cfg config) {
	vals := workload.Values64(cfg.seed, cfg.n, workload.MixedMag)
	nodesSweep := []int{2, 4, 8, 16}
	if cfg.quick {
		nodesSweep = []int{2, 8}
	}

	transports := []struct {
		name    string
		factory dist.TransportFactory
	}{
		{"chan", dist.ChanTransportFactory},
		{"tcp", dist.TCPTransportFactory},
	}

	var ref uint64
	haveRef := false
	mismatches := 0

	t := bench.NewTable("Transport sweep: Reduce, ns/elem (bits identical across all cells)",
		"nodes", "topology", "chan", "tcp", "tcp/chan")
	for _, nodes := range nodesSweep {
		shards := make([][]float64, nodes)
		for i, v := range vals {
			shards[i%nodes] = append(shards[i%nodes], v)
		}
		for _, topo := range []dist.Topology{dist.Binomial, dist.Chain, dist.Star} {
			var ns [2]float64
			for ti, tr := range transports {
				var sum float64
				dur := bench.Measure(func() {
					var err error
					sum, err = dist.ReduceConfig(shards, 2, topo, dist.Config{NewTransport: tr.factory})
					if err != nil {
						fmt.Fprintf(os.Stderr, "reprobench dist: %v\n", err)
						os.Exit(1)
					}
				})
				ns[ti] = bench.NsPerElem(dur, 1, cfg.n)
				bits := math.Float64bits(sum)
				if !haveRef {
					ref, haveRef = bits, true
				} else if bits != ref {
					mismatches++
				}
			}
			t.AddRow(nodes, topo.String(), ns[0], ns[1], bench.Ratio(ns[1]/ns[0]))
		}
	}
	t.Fprint(os.Stdout)

	// One hostile cell: TCP with drops, dups, reordering, and delays.
	plan := &dist.FaultPlan{Seed: cfg.seed, DropProb: 0.2, DupProb: 0.2, Reorder: true,
		MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond}
	shards := make([][]float64, 8)
	for i, v := range vals {
		shards[i%8] = append(shards[i%8], v)
	}
	sum, err := dist.ReduceConfig(shards, 2, dist.Binomial, dist.Config{
		NewTransport: dist.TCPTransportFactory, Faults: plan, ChildDeadline: 5 * time.Millisecond})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprobench dist (faults): %v\n", err)
		os.Exit(1)
	}
	if bits := math.Float64bits(sum); bits != ref {
		mismatches++
	}
	fmt.Printf("tcp+faults (8 nodes, binomial, drop/dup/reorder/delay): %016x\n", math.Float64bits(sum))
	fmt.Printf("bit mismatches across all transport cells: %d\n\n", mismatches)
	if mismatches != 0 {
		fmt.Fprintf(os.Stderr, "reprobench dist: %d transport cells broke bit-reproducibility\n", mismatches)
		os.Exit(1)
	}

	// GROUP BY shuffle across the same transports.
	keys := workload.Keys(cfg.seed+1, cfg.n, 1024)
	tg := bench.NewTable("Transport sweep: AggregateByKey, ns/elem",
		"nodes", "chan", "tcp", "tcp/chan")
	for _, nodes := range nodesSweep {
		lk := make([][]uint32, nodes)
		lv := make([][]float64, nodes)
		for i := range keys {
			d := i % nodes
			lk[d] = append(lk[d], keys[i])
			lv[d] = append(lv[d], vals[i])
		}
		var ns [2]float64
		for ti, tr := range transports {
			dur := bench.Measure(func() {
				if _, err := dist.AggregateByKeyConfig(lk, lv, 2, dist.Config{NewTransport: tr.factory}); err != nil {
					fmt.Fprintf(os.Stderr, "reprobench dist groupby: %v\n", err)
					os.Exit(1)
				}
			})
			ns[ti] = bench.NsPerElem(dur, 1, cfg.n)
		}
		tg.AddRow(nodes, ns[0], ns[1], bench.Ratio(ns[1]/ns[0]))
	}
	tg.Fprint(os.Stdout)

	runDistChunked(cfg, vals)
}

// chunkObserver decorates a Transport to record the largest chunk count
// any frame declared, so the sweep can prove its cells genuinely went
// multi-chunk (a sweep that silently stayed single-frame would prove
// nothing about reassembly).
type chunkObserver struct {
	dist.Transport
	mu  sync.Mutex
	max uint32
}

func (o *chunkObserver) Send(f dist.Frame) error {
	if f.Kind != dist.KindResend {
		o.mu.Lock()
		if f.Chunks > o.max {
			o.max = f.Chunks
		}
		o.mu.Unlock()
	}
	return o.Transport.Send(f)
}

// peak reads the recorded maximum under the lock: non-root node
// goroutines keep serving resends (and thus calling Send) after
// AggregateByKeyConfig returns, until Close tears the transport down.
func (o *chunkObserver) peak() uint32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.max
}

// runDistChunked — multi-chunk sweep: the shuffle at a cardinality and
// chunk payload that force every (sender, owner) pair to ≥3 wire
// chunks, across transports and a hostile fault plan, asserting the
// group list is bit-identical to the single-node result. Any mismatch
// — or a cell that failed to produce multi-chunk traffic — exits
// non-zero.
func runDistChunked(cfg config, vals []float64) {
	const distinct = 2048
	const chunkPayload = 4096 // ~60 B per ⟨key, state⟩ pair → ≥7 chunks per pair at 4 nodes
	keys := workload.Keys(cfg.seed+2, cfg.n, distinct)

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "reprobench dist (chunked): "+format+"\n", args...)
		os.Exit(1)
	}

	// Single-node reference: same rows, one shard, default transport.
	ref, err := dist.AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, dist.Config{})
	if err != nil {
		fail("reference: %v", err)
	}

	plans := []struct {
		name string
		plan *dist.FaultPlan
	}{
		{"none", nil},
		{"chaos", &dist.FaultPlan{Seed: cfg.seed, DropProb: 0.2, DupProb: 0.2, Reorder: true,
			MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond}},
	}
	transports := []struct {
		name    string
		factory dist.TransportFactory
	}{
		{"chan", dist.ChanTransportFactory},
		{"tcp", dist.TCPTransportFactory},
	}

	t := bench.NewTable("Multi-chunk shuffle sweep: AggregateByKey, ns/elem (bits identical to single-node)",
		"nodes", "faults", "chan", "tcp", "max chunks")
	for _, nodes := range []int{2, 4} {
		lk := make([][]uint32, nodes)
		lv := make([][]float64, nodes)
		for i := range keys {
			d := i % nodes
			lk[d] = append(lk[d], keys[i])
			lv[d] = append(lv[d], vals[i])
		}
		for _, p := range plans {
			var ns [2]float64
			var maxChunks uint32
			for ti, tr := range transports {
				obs := &chunkObserver{}
				factory := func(n int) (dist.Transport, error) {
					inner, err := tr.factory(n)
					if err != nil {
						return nil, err
					}
					obs.Transport = inner
					return obs, nil
				}
				dcfg := dist.Config{NewTransport: factory, Faults: p.plan,
					MaxChunkPayload: chunkPayload, ChildDeadline: 5 * time.Millisecond, MaxResend: -1}
				var out []dist.Group
				dur := bench.Measure(func() {
					var err error
					out, err = dist.AggregateByKeyConfig(lk, lv, 2, dcfg)
					if err != nil {
						fail("%d nodes, %s, %s: %v", nodes, p.name, tr.name, err)
					}
				})
				ns[ti] = bench.NsPerElem(dur, 1, cfg.n)
				if len(out) != len(ref) {
					fail("%d nodes, %s, %s: %d groups, want %d", nodes, p.name, tr.name, len(out), len(ref))
				}
				for i := range out {
					if out[i].Key != ref[i].Key || math.Float64bits(out[i].Sum) != math.Float64bits(ref[i].Sum) {
						fail("%d nodes, %s, %s: group %d broke bit-reproducibility", nodes, p.name, tr.name, out[i].Key)
					}
				}
				peak := obs.peak()
				if peak < 3 {
					fail("%d nodes, %s, %s: peaked at %d chunks per message, want ≥3 — sweep no longer exercises reassembly", nodes, p.name, tr.name, peak)
				}
				if peak > maxChunks {
					maxChunks = peak
				}
			}
			t.AddRow(nodes, p.name, ns[0], ns[1], int(maxChunks))
		}
	}
	t.Fprint(os.Stdout)
	fmt.Printf("multi-chunk sweep: all cells bit-identical to the single-node reference\n\n")
}
