package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/dist"
	"repro/internal/dist/proc"
	"repro/internal/obs"
	"repro/internal/rsum"
	"repro/internal/serve"
	"repro/internal/sqlagg"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// runDist — transport sweep (extension; not a paper figure): the
// distributed reduction and GROUP BY shuffle over the in-process
// channel transport vs real TCP sockets on loopback, across cluster
// sizes and topologies. Reports throughput per transport and verifies
// that every cell lands on the same bits — including one cell with a
// hostile fault plan injected into the TCP link.
//
// With -benchjson the experiment switches to bench-cell mode: only the
// machine-readable benchmark cells run (the correctness sweeps are the
// plain `dist` run's job, and CI executes them in separate jobs — the
// trajectory job should measure only what it uploads). With -procs it
// switches to the cross-process equivalence matrix instead (see
// procs.go), which spawns real reproworker processes.
func runDist(cfg config) {
	if cfg.benchJSON != "" {
		runDistBenchJSON(cfg)
		return
	}
	if cfg.procs {
		runDistProcs(cfg)
		return
	}
	vals := workload.Values64(cfg.seed, cfg.n, workload.MixedMag)
	nodesSweep := []int{2, 4, 8, 16}
	if cfg.quick {
		nodesSweep = []int{2, 8}
	}

	transports := []struct {
		name    string
		factory dist.TransportFactory
	}{
		{"chan", dist.ChanTransportFactory},
		{"tcp", dist.TCPTransportFactory},
	}

	var ref uint64
	haveRef := false
	mismatches := 0

	t := bench.NewTable("Transport sweep: Reduce, ns/elem (bits identical across all cells)",
		"nodes", "topology", "chan", "tcp", "tcp/chan")
	for _, nodes := range nodesSweep {
		shards := make([][]float64, nodes)
		for i, v := range vals {
			shards[i%nodes] = append(shards[i%nodes], v)
		}
		for _, topo := range []dist.Topology{dist.Binomial, dist.Chain, dist.Star} {
			var ns [2]float64
			for ti, tr := range transports {
				var sum float64
				dur := bench.Measure(func() {
					var err error
					sum, err = dist.ReduceConfig(shards, 2, topo, dist.Config{NewTransport: tr.factory})
					if err != nil {
						fmt.Fprintf(os.Stderr, "reprobench dist: %v\n", err)
						os.Exit(1)
					}
				})
				ns[ti] = bench.NsPerElem(dur, 1, cfg.n)
				bits := math.Float64bits(sum)
				if !haveRef {
					ref, haveRef = bits, true
				} else if bits != ref {
					mismatches++
				}
			}
			t.AddRow(nodes, topo.String(), ns[0], ns[1], bench.Ratio(ns[1]/ns[0]))
		}
	}
	t.Fprint(os.Stdout)

	// One hostile cell: TCP with drops, dups, reordering, and delays.
	plan := &dist.FaultPlan{Seed: cfg.seed, DropProb: 0.2, DupProb: 0.2, Reorder: true,
		MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond}
	shards := make([][]float64, 8)
	for i, v := range vals {
		shards[i%8] = append(shards[i%8], v)
	}
	sum, err := dist.ReduceConfig(shards, 2, dist.Binomial, dist.Config{
		NewTransport: dist.TCPTransportFactory, Faults: plan, ChildDeadline: 5 * time.Millisecond})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprobench dist (faults): %v\n", err)
		os.Exit(1)
	}
	if bits := math.Float64bits(sum); bits != ref {
		mismatches++
	}
	fmt.Printf("tcp+faults (8 nodes, binomial, drop/dup/reorder/delay): %016x\n", math.Float64bits(sum))
	fmt.Printf("bit mismatches across all transport cells: %d\n\n", mismatches)
	if mismatches != 0 {
		fmt.Fprintf(os.Stderr, "reprobench dist: %d transport cells broke bit-reproducibility\n", mismatches)
		os.Exit(1)
	}

	// GROUP BY shuffle across the same transports.
	keys := workload.Keys(cfg.seed+1, cfg.n, 1024)
	tg := bench.NewTable("Transport sweep: AggregateByKey, ns/elem",
		"nodes", "chan", "tcp", "tcp/chan")
	for _, nodes := range nodesSweep {
		lk := make([][]uint32, nodes)
		lv := make([][]float64, nodes)
		for i := range keys {
			d := i % nodes
			lk[d] = append(lk[d], keys[i])
			lv[d] = append(lv[d], vals[i])
		}
		var ns [2]float64
		for ti, tr := range transports {
			dur := bench.Measure(func() {
				if _, err := dist.AggregateByKeyConfig(lk, lv, 2, dist.Config{NewTransport: tr.factory}); err != nil {
					fmt.Fprintf(os.Stderr, "reprobench dist groupby: %v\n", err)
					os.Exit(1)
				}
			})
			ns[ti] = bench.NsPerElem(dur, 1, cfg.n)
		}
		tg.AddRow(nodes, ns[0], ns[1], bench.Ratio(ns[1]/ns[0]))
	}
	tg.Fprint(os.Stdout)

	runDistChunked(cfg, vals)
}

// benchCell is one row of the machine-readable benchmark trajectory:
// an operation at a fixed configuration with its throughput and
// allocation profile. Cells are matched by Name across runs (see
// cmd/benchdiff), so names must stay stable.
type benchCell struct {
	Name        string  `json:"name"`
	Transport   string  `json:"transport,omitempty"`
	Chunks      string  `json:"chunks,omitempty"`
	Aggs        string  `json:"aggs,omitempty"`
	Rows        int     `json:"rows,omitempty"`
	RowsPerSec  float64 `json:"rows_per_sec,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Serving-layer cells only (schema 3): sustained queries per second
	// and the cache-hit ratio observed during the measurement.
	QPS           float64 `json:"qps,omitempty"`
	CacheHitRatio float64 `json:"cache_hit,omitempty"`
}

// benchReport is the BENCH_dist.json schema. No timestamps: the file is
// committed as a baseline and should not churn without a measurement
// change. Schema 2 added the multi-aggregate shuffle cells (the
// `groupby/.../q1agg` names and the `aggs` cell field); schema 3 added
// the serving-layer cells (`serve/...` names with the `qps` and
// `cache_hit` fields); schema 4 added the cluster job-dispatch cells
// (`dispatch/rows` vs `dispatch/spec`); schema 5 added the supervisor
// journal replay cell (`recovery/replay`); schema 6 added the metric
// record-path micro cell (`metrics/record`); older-schema files remain
// readable by cmd/benchdiff.
type benchReport struct {
	Schema    int         `json:"schema"`
	Generator string      `json:"generator"`
	Go        string      `json:"go"`
	Rows      int         `json:"rows"`
	Seed      uint64      `json:"seed"`
	Cells     []benchCell `json:"cells"`
}

// runDistBenchJSON measures the dist data plane's benchmark cells —
// the GROUP BY shuffle per transport (chan vs TCP) in single- and
// multi-chunk regimes for both a single-SUM and a TPC-H Q1-shaped
// multi-aggregate catalog, the reduction per transport, and the
// per-key state-encode micro path — and writes them as JSON. B/op and
// allocs/op come from testing.Benchmark, so the committed baseline
// pins the allocation profile of the hot path, not just its speed.
func runDistBenchJSON(cfg config) {
	rows := cfg.n
	if rows > 1<<17 {
		rows = 1 << 17 // bounded: these cells run under testing.Benchmark's ~1s budget each
	}
	report := benchReport{
		Schema:    6,
		Generator: "reprobench dist",
		Go:        runtime.Version(),
		Rows:      rows,
		Seed:      cfg.seed,
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "reprobench dist (benchjson): "+format+"\n", args...)
		os.Exit(1)
	}
	// measure runs op under testing.Benchmark and fails loudly on any
	// error: b.Fatal inside a standalone testing.Benchmark aborts the
	// run silently with a zero result, which would otherwise write
	// all-zero cells into the baseline and pass the nightly diff.
	measure := func(name string, op func() error) testing.BenchmarkResult {
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			fail("%s: %v", name, benchErr)
		}
		if res.N == 0 {
			fail("%s: benchmark did not run", name)
		}
		return res
	}
	add := func(name, transport, chunks, aggs string, cellRows int, res testing.BenchmarkResult) {
		cell := benchCell{
			Name:        name,
			Transport:   transport,
			Chunks:      chunks,
			Aggs:        aggs,
			Rows:        cellRows,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if cellRows > 0 && res.NsPerOp() > 0 {
			cell.RowsPerSec = float64(cellRows) * 1e9 / float64(res.NsPerOp())
		}
		report.Cells = append(report.Cells, cell)
	}

	transports := []struct {
		name    string
		factory dist.TransportFactory
	}{
		{"chan", dist.ChanTransportFactory},
		{"tcp", dist.TCPTransportFactory},
	}
	modes := []struct {
		name         string
		distinct     uint32
		chunkPayload int
	}{
		// single: the default 16 MiB chunk payload keeps every
		// (sender, owner) stream one wire frame; multi: a 4 KiB chunk
		// payload at shuffle-heavy cardinality forces multi-chunk
		// streams through the reassembler.
		{"single", 256, 0},
		{"multi", 2048, 4096},
	}
	const nodes = 4
	vals := workload.Values64(cfg.seed+4, rows, workload.MixedMag)
	// The multi-aggregate cells shuffle TPC-H Q1's catalog shape —
	// 4×SUM, 3×AVG, COUNT over five value columns — so the baseline pins
	// the spec-tagged tuple plane, not just the single-SUM frames.
	q1specs := tpch.Q1Specs(2)
	q1cols := make([][]float64, 5)
	for c := range q1cols {
		q1cols[c] = workload.Values64(cfg.seed+5+uint64(c), rows, workload.MixedMag)
	}
	for _, m := range modes {
		keys := workload.Keys(cfg.seed+3, rows, m.distinct)
		lk := make([][]uint32, nodes)
		lv := make([][]float64, nodes)
		lc := make([][][]float64, nodes)
		for d := range lc {
			lc[d] = make([][]float64, len(q1cols))
		}
		for i := range keys {
			d := i % nodes
			lk[d] = append(lk[d], keys[i])
			lv[d] = append(lv[d], vals[i])
			for c := range q1cols {
				lc[d][c] = append(lc[d][c], q1cols[c][i])
			}
		}
		for _, tr := range transports {
			dcfg := dist.Config{NewTransport: tr.factory, MaxChunkPayload: m.chunkPayload}
			name := "groupby/" + tr.name + "/" + m.name
			res := measure(name, func() error {
				_, err := dist.AggregateByKeyConfig(lk, lv, 2, dcfg)
				return err
			})
			add(name, tr.name, m.name, "sum", rows, res)

			name += "/q1agg"
			res = measure(name, func() error {
				_, err := dist.AggregateTuplesConfig(lk, lc, 2, q1specs, dcfg)
				return err
			})
			add(name, tr.name, m.name, "q1", rows, res)
		}
	}

	shards := make([][]float64, nodes)
	for i, v := range vals {
		shards[i%nodes] = append(shards[i%nodes], v)
	}
	for _, tr := range transports {
		dcfg := dist.Config{NewTransport: tr.factory}
		name := "reduce/" + tr.name + "/binomial"
		res := measure(name, func() error {
			_, err := dist.ReduceConfig(shards, 2, dist.Binomial, dcfg)
			return err
		})
		add(name, tr.name, "single", "", rows, res)
	}

	// Micro: the per-key state encode of the shuffle frame build — the
	// in-place AppendBinary fast path against the allocating
	// MarshalBinary it replaced on the hot path.
	const states = 4096
	encStates := make([]rsum.State64, states)
	for i := range encStates {
		encStates[i] = rsum.NewState64(2)
		encStates[i].Add(float64(i) * 1.5)
	}
	encSize := encStates[0].EncodedSize()
	buf := make([]byte, 0, states*encSize)
	res := measure("state_encode/append", func() error {
		buf = buf[:0]
		for j := range encStates {
			var err error
			buf, err = encStates[j].AppendBinary(buf)
			if err != nil {
				return err
			}
		}
		return nil
	})
	add("state_encode/append", "", "", "", states, res)
	res = measure("state_encode/marshal", func() error {
		buf = buf[:0]
		for j := range encStates {
			enc, err := encStates[j].MarshalBinary()
			if err != nil {
				return err
			}
			buf = append(buf, enc...)
		}
		return nil
	})
	add("state_encode/marshal", "", "", "", states, res)

	// Metric record path (schema 6): the obs hot path that now
	// instruments the shuffle and the serving layer — a counter add, a
	// gauge high-water update, and a histogram observation per record —
	// so the baseline pins its cost and allocation profile (expected
	// zero allocs) alongside the paths it measures.
	mreg := obs.NewRegistry()
	mCnt := mreg.Counter("bench_records_total", "benchmark counter")
	mPeak := mreg.Gauge("bench_peak", "benchmark high-water gauge")
	mLat := mreg.Histogram("bench_latency_seconds", "benchmark histogram", nil)
	const records = 4096
	res = measure("metrics/record", func() error {
		for i := 0; i < records; i++ {
			mCnt.Add(1)
			mPeak.Max(int64(i & 63))
			mLat.Observe(float64(i&1023) * 0.001)
		}
		return nil
	})
	add("metrics/record", "", "", "", records, res)

	// Cluster job dispatch (schema 4): the control-plane bytes the
	// supervisor encodes into one KindJob frame for one node of a
	// 4-node cluster, for the same logical GROUP BY job expressed two
	// ways. A raw-shard job re-deals and encodes every row it ships —
	// O(rows) per dispatch, paid again for every mid-run replacement —
	// while a declarative synthetic source encodes only the generator
	// spec, a few dozen bytes no matter how large the dataset is.
	dspec := workload.Spec{Rows: rows, Groups: 2048, KeySeed: cfg.seed + 3,
		Cols: []workload.ColSpec{{Seed: cfg.seed + 4, Dist: workload.MixedMag}}}
	dkeys, dcols, derr := dspec.Materialize()
	if derr != nil {
		fail("dispatch dataset: %v", derr)
	}
	dsumSpecs := []sqlagg.AggSpec{{Kind: sqlagg.AggSum, Col: 0}}
	rawJob := proc.Job{Workers: 2, Specs: dsumSpecs,
		Source: proc.RowShards([][]uint32{dkeys}, [][][]float64{dcols})}
	specJob := proc.Job{Workers: 2, Specs: dsumSpecs, Source: proc.SyntheticSource(dspec)}
	res = measure("dispatch/rows", func() error {
		_, err := proc.EncodeJobPayload(rawJob, nodes, 0)
		return err
	})
	add("dispatch/rows", "", "", "sum", rows, res)
	res = measure("dispatch/spec", func() error {
		_, err := proc.EncodeJobPayload(specJob, nodes, 0)
		return err
	})
	add("dispatch/spec", "", "", "sum", rows, res)

	// Supervisor recovery (schema 5): replaying a journaled control
	// plane — read, CRC-check, and fold every record back into state —
	// which is the fixed cost a crashed supervisor pays before it can
	// re-bind its address and start re-admitting workers. The cell's
	// rows count is journal records, so rows/sec reads as records/sec.
	jdir, jerr := os.MkdirTemp("", "reprobench-journal-")
	if jerr != nil {
		fail("journal dir: %v", jerr)
	}
	defer os.RemoveAll(jdir)
	const journalRecords = 4096
	if _, err := proc.JournalBenchSetup(jdir, journalRecords); err != nil {
		fail("recovery/replay setup: %v", err)
	}
	res = measure("recovery/replay", func() error {
		n, err := proc.JournalBenchReplay(jdir)
		if err != nil {
			return err
		}
		if n != journalRecords {
			return fmt.Errorf("replayed %d records, want %d", n, journalRecords)
		}
		return nil
	})
	add("recovery/replay", "", "", "", journalRecords, res)

	// Serving layer (schema 3): one GROUP BY answered by a resident
	// query server — cold cache (every op recomputes) vs warm cache
	// (every op a hit) on the local engine, plus a cold cell through the
	// distributed backend. Each cell also records sustained QPS and the
	// observed cache-hit ratio, and every answer across all three cells
	// must be byte-identical.
	sds, sdsErr := serve.SyntheticDataset(cfg.seed+9, rows, 4096, 2, workload.MixedMag, serve.DatasetOptions{})
	if sdsErr != nil {
		fail("serve dataset: %v", sdsErr)
	}
	squery := serve.GroupBy(
		sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 0},
		sqlagg.AggSpec{Kind: sqlagg.AggAvg, Col: 1},
		sqlagg.AggSpec{Kind: sqlagg.AggCount},
	)
	serveCells := []struct {
		name string
		opts serve.Options
		warm bool
	}{
		{"serve/local/cold", serve.Options{CacheEntries: -1}, false},
		{"serve/local/warm", serve.Options{}, true},
		{"serve/cluster/cold", serve.Options{Distributed: true, CacheEntries: -1}, false},
	}
	var serveRef []byte
	for _, sc := range serveCells {
		srv, err := serve.NewServer(sds, sc.opts)
		if err != nil {
			fail("%s: %v", sc.name, err)
		}
		if sc.warm {
			if _, err := srv.Do(squery); err != nil {
				fail("%s: prewarm: %v", sc.name, err)
			}
		}
		res := measure(sc.name, func() error {
			r, err := srv.Do(squery)
			if err != nil {
				return err
			}
			if serveRef == nil {
				serveRef = r.Bytes
			} else if !bytes.Equal(serveRef, r.Bytes) {
				return fmt.Errorf("result bytes diverged from the reference answer")
			}
			return nil
		})
		st := srv.Stats()
		srv.Close()
		add(sc.name, "", "", "", rows, res)
		cell := &report.Cells[len(report.Cells)-1]
		if res.NsPerOp() > 0 {
			cell.QPS = 1e9 / float64(res.NsPerOp())
		}
		if st.CacheHits+st.CacheMisses > 0 {
			cell.CacheHitRatio = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail("encode: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.benchJSON, data, 0o644); err != nil {
		fail("write: %v", err)
	}
	fmt.Printf("benchmark cells written to %s (%d cells)\n\n", cfg.benchJSON, len(report.Cells))
}

// chunkObserver decorates a Transport to record the largest chunk count
// any frame declared, so the sweep can prove its cells genuinely went
// multi-chunk (a sweep that silently stayed single-frame would prove
// nothing about reassembly).
type chunkObserver struct {
	dist.Transport
	mu  sync.Mutex
	max uint32
}

func (o *chunkObserver) Send(f dist.Frame) error {
	if f.Kind != dist.KindResend {
		o.mu.Lock()
		if f.Chunks > o.max {
			o.max = f.Chunks
		}
		o.mu.Unlock()
	}
	return o.Transport.Send(f)
}

// peak reads the recorded maximum under the lock: non-root node
// goroutines keep serving resends (and thus calling Send) after
// AggregateByKeyConfig returns, until Close tears the transport down.
func (o *chunkObserver) peak() uint32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.max
}

// runDistChunked — multi-chunk sweep: the shuffle at a cardinality and
// chunk payload that force every (sender, owner) pair to ≥3 wire
// chunks, across transports and a hostile fault plan, asserting the
// group list is bit-identical to the single-node result. Any mismatch
// — or a cell that failed to produce multi-chunk traffic — exits
// non-zero.
func runDistChunked(cfg config, vals []float64) {
	const distinct = 2048
	const chunkPayload = 4096 // ~60 B per ⟨key, state⟩ pair → ≥7 chunks per pair at 4 nodes
	keys := workload.Keys(cfg.seed+2, cfg.n, distinct)

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "reprobench dist (chunked): "+format+"\n", args...)
		os.Exit(1)
	}

	// Single-node reference: same rows, one shard, default transport.
	ref, err := dist.AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, dist.Config{})
	if err != nil {
		fail("reference: %v", err)
	}

	plans := []struct {
		name string
		plan *dist.FaultPlan
	}{
		{"none", nil},
		{"chaos", &dist.FaultPlan{Seed: cfg.seed, DropProb: 0.2, DupProb: 0.2, Reorder: true,
			MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond}},
	}
	transports := []struct {
		name    string
		factory dist.TransportFactory
	}{
		{"chan", dist.ChanTransportFactory},
		{"tcp", dist.TCPTransportFactory},
	}

	t := bench.NewTable("Multi-chunk shuffle sweep: AggregateByKey, ns/elem (bits identical to single-node)",
		"nodes", "faults", "chan", "tcp", "max chunks")
	for _, nodes := range []int{2, 4} {
		lk := make([][]uint32, nodes)
		lv := make([][]float64, nodes)
		for i := range keys {
			d := i % nodes
			lk[d] = append(lk[d], keys[i])
			lv[d] = append(lv[d], vals[i])
		}
		for _, p := range plans {
			var ns [2]float64
			var maxChunks uint32
			for ti, tr := range transports {
				co := &chunkObserver{}
				factory := func(n int) (dist.Transport, error) {
					inner, err := tr.factory(n)
					if err != nil {
						return nil, err
					}
					co.Transport = inner
					return co, nil
				}
				dcfg := dist.Config{NewTransport: factory, Faults: p.plan,
					MaxChunkPayload: chunkPayload, ChildDeadline: 5 * time.Millisecond, MaxResend: -1}
				var out []dist.Group
				dur := bench.Measure(func() {
					var err error
					out, err = dist.AggregateByKeyConfig(lk, lv, 2, dcfg)
					if err != nil {
						fail("%d nodes, %s, %s: %v", nodes, p.name, tr.name, err)
					}
				})
				ns[ti] = bench.NsPerElem(dur, 1, cfg.n)
				if len(out) != len(ref) {
					fail("%d nodes, %s, %s: %d groups, want %d", nodes, p.name, tr.name, len(out), len(ref))
				}
				for i := range out {
					if out[i].Key != ref[i].Key || math.Float64bits(out[i].Sum) != math.Float64bits(ref[i].Sum) {
						fail("%d nodes, %s, %s: group %d broke bit-reproducibility", nodes, p.name, tr.name, out[i].Key)
					}
				}
				peak := co.peak()
				if peak < 3 {
					fail("%d nodes, %s, %s: peaked at %d chunks per message, want ≥3 — sweep no longer exercises reassembly", nodes, p.name, tr.name, peak)
				}
				if peak > maxChunks {
					maxChunks = peak
				}
			}
			t.AddRow(nodes, p.name, ns[0], ns[1], int(maxChunks))
		}
	}
	t.Fprint(os.Stdout)
	fmt.Printf("multi-chunk sweep: all cells bit-identical to the single-node reference\n\n")
}
