// Command reprobench regenerates every table and figure of the paper's
// evaluation (Section VI) on this machine. Each subcommand prints the
// rows/series of one experiment; EXPERIMENTS.md records the mapping and
// the expected shapes.
//
// Usage:
//
//	reprobench [flags] <experiment>
//
// Experiments: fig4, tab2, fig6, fig7, fig8, fig9, fig10, tab3, tab4,
// fig11, fig12, pagerank, q6, dist (transport sweep), serve (query
// server sweep), all.
//
// Flags:
//
//	-n          input size (default 1<<22; the paper uses 1<<30)
//	-seed       workload seed (default 42)
//	-sf         TPC-H scale factor for tab4 (default 0.05)
//	-quick      reduced sweeps for smoke-testing the harness
//	-benchjson  switch the dist experiment to bench-cell mode: skip the
//	            correctness sweeps, measure the machine-readable
//	            benchmark cells (rows/s, B/op, allocs/op), and write
//	            them to this file; the repo commits a baseline as
//	            BENCH_dist.json and the nightly workflow diffs fresh
//	            runs against it (see cmd/benchdiff)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dist/proc"
)

type config struct {
	n         int
	seed      uint64
	sf        float64
	quick     bool
	benchJSON string
	procs     bool
}

func main() {
	// When a dist -procs sweep re-executes this binary as a cluster
	// worker, become that worker before touching the flags.
	proc.MaybeWorkerMain()

	n := flag.Int("n", 1<<22, "number of input rows")
	seed := flag.Uint64("seed", 42, "workload seed")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor (tab4)")
	quick := flag.Bool("quick", false, "reduced sweeps")
	benchJSON := flag.String("benchjson", "", "dist only: run bench cells instead of the sweeps, write them to this file")
	procs := flag.Bool("procs", false, "dist only: run the cross-process equivalence matrix on spawned reproworker processes")
	flag.Parse()

	cfg := config{n: *n, seed: *seed, sf: *sf, quick: *quick, benchJSON: *benchJSON, procs: *procs}
	if cfg.quick && cfg.n > 1<<18 {
		cfg.n = 1 << 18
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: reprobench [flags] <fig4|tab2|fig6|fig7|fig8|fig9|fig10|tab3|tab4|fig11|fig12|pagerank|q6|dist|serve|all>")
		os.Exit(2)
	}

	fmt.Printf("# reprobench: %s, n=%d, seed=%d\n", bench.MachineInfo(), cfg.n, cfg.seed)

	run := map[string]func(config){
		"fig4":     runFig4,
		"tab2":     runTab2,
		"fig6":     runFig6,
		"fig7":     runFig7,
		"fig8":     runFig8,
		"fig9":     runFig9,
		"fig10":    runFig10,
		"tab3":     runTab3,
		"tab4":     runTab4,
		"fig11":    runFig11,
		"fig12":    runFig12,
		"pagerank": runPageRank,
		"q6":       runQ6,
		"dist":     runDist,
		"serve":    runServe,
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, k := range []string{"fig4", "tab2", "fig6", "fig7", "fig8", "fig9",
			"fig10", "tab3", "tab4", "fig11", "fig12", "pagerank", "q6", "dist", "serve"} {
			run[k](cfg)
		}
		return
	}
	fn, ok := run[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "reprobench: unknown experiment %q\n", name)
		os.Exit(2)
	}
	fn(cfg)
}
