package main

import (
	"runtime"
	"time"

	"repro/internal/agg"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hashagg"
	"repro/internal/workload"
)

// Shared measurement helpers: each runner executes one aggregation over
// a prepared workload and returns the wall time. All runners sink the
// result into a package-level variable so the compiler cannot eliminate
// the work.

var sinkF64 float64
var sinkInt int

func sinkEntries[A any](entries []agg.Entry[A]) {
	sinkInt += len(entries)
}

// datasets bundles the value columns shared by all data types for a
// given key column, so every type aggregates the same logical data
// (float32/int values are derived from the float64 ones).
type datasets struct {
	keys []uint32
	f64  []float64
	f32  []float32
	i32  []int32
	i64  []int64
}

func makeDatasets(seed uint64, n int, ngroups uint32) datasets {
	d := datasets{
		keys: workload.Keys(seed, n, ngroups),
		f64:  workload.Values64(seed+1, n, workload.Uniform12),
	}
	d.f32 = make([]float32, n)
	d.i32 = make([]int32, n)
	d.i64 = make([]int64, n)
	for i, v := range d.f64 {
		d.f32[i] = float32(v)
		d.i64[i] = int64(v * 1e4) // fixed-point with 4 fractional digits
		d.i32[i] = int32(d.i64[i])
	}
	return d
}

func workers() int { return runtime.GOMAXPROCS(0) }

func options(depth, ngroups int) agg.Options {
	return agg.Options{Depth: depth, GroupHint: ngroups, Workers: workers()}
}

// Per-type runners for PARTITIONANDAGGREGATE.

func runF64(d datasets, depth, ngroups int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[float64, agg.F64](
			d.keys, d.f64, func() agg.F64 { return 0 }, options(depth, ngroups)))
	})
}

func runF32(d datasets, depth, ngroups int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[float32, agg.F32](
			d.keys, d.f32, func() agg.F32 { return 0 }, options(depth, ngroups)))
	})
}

func runD9(d datasets, depth, ngroups int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[int32, agg.D9](
			d.keys, d.i32, func() agg.D9 { return 0 }, options(depth, ngroups)))
	})
}

func runD18(d datasets, depth, ngroups int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[int64, agg.D18](
			d.keys, d.i64, func() agg.D18 { return 0 }, options(depth, ngroups)))
	})
}

func runD38(d datasets, depth, ngroups int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[int64, agg.D38](
			d.keys, d.i64, func() agg.D38 { return agg.D38{} }, options(depth, ngroups)))
	})
}

func runSum64(d datasets, levels, depth, ngroups int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[float64, core.Sum64](
			d.keys, d.f64, func() core.Sum64 { return core.NewSum64(levels) },
			options(depth, ngroups)))
	})
}

func runSum32(d datasets, levels, depth, ngroups int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[float32, core.Sum32](
			d.keys, d.f32, func() core.Sum32 { return core.NewSum32(levels) },
			options(depth, ngroups)))
	})
}

func runBuf64(d datasets, levels, depth, ngroups, bsz int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[float64, core.Buffered64](
			d.keys, d.f64, func() core.Buffered64 { return core.NewBuffered64(levels, bsz) },
			options(depth, ngroups)))
	})
}

func runBuf32(d datasets, levels, depth, ngroups, bsz int) time.Duration {
	return bench.Measure(func() {
		sinkEntries(agg.PartitionAndAggregate[float32, core.Buffered32](
			d.keys, d.f32, func() core.Buffered32 { return core.NewBuffered32(levels, bsz) },
			options(depth, ngroups)))
	})
}

// eq4 evaluates the buffer-size model for a sweep point.
func eq4(ngroups, depth, scalarBytes, fanout int) int {
	f := 1
	for i := 0; i < depth; i++ {
		f *= fanout
	}
	return agg.BufferSize(ngroups, f, scalarBytes)
}

// hashAggTime measures plain single-threaded HASHAGGREGATION (Figure 4).
func hashAggTime[V any, A any, PA interface {
	*A
	hashagg.Adder[V]
}](keys []uint32, vals []V, newA func() A, hint int) time.Duration {
	return bench.MeasureBest(2, func() {
		entries := agg.HashAggregate[V, A, PA](keys, vals, newA, hint, hashagg.Identity)
		sinkInt += len(entries)
	})
}
