package main

import "testing"

// Smoke tests: every experiment must run end to end on a tiny
// configuration without panicking. (Output goes to stdout; `go test`
// captures it.)

func tinyConfig() config {
	return config{n: 1 << 12, seed: 1, sf: 0.001, quick: true}
}

func TestExperimentsSmoke(t *testing.T) {
	cfg := tinyConfig()
	experiments := map[string]func(config){
		"fig4":  runFig4,
		"fig8":  runFig8,
		"fig9":  runFig9,
		"fig11": runFig11,
		"fig12": runFig12,
		"q6":    runQ6,
		"dist":  runDist,
	}
	for name, fn := range experiments {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked: %v", name, r)
				}
			}()
			fn(cfg)
		})
	}
}

func TestSweepExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	for name, fn := range map[string]func(config){
		"tab2":     runTab2,
		"fig6":     runFig6,
		"fig7":     runFig7,
		"fig10":    runFig10,
		"tab4":     runTab4,
		"pagerank": runPageRank,
	} {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked: %v", name, r)
				}
			}()
			fn(cfg)
		})
	}
}

func TestEq4Helper(t *testing.T) {
	if eq4(16, 0, 8, 256) <= 0 {
		t.Error("eq4 must be positive")
	}
	// Partitioning divides the per-partition group count.
	if eq4(1<<16, 1, 8, 256) != eq4(1<<8, 0, 8, 256) {
		t.Error("eq4 fan-out accounting wrong")
	}
}

func TestGroupSweepQuickMode(t *testing.T) {
	cfg := tinyConfig()
	s := groupSweep(cfg, 0, 24)
	if len(s) == 0 || len(s) > 6 {
		t.Errorf("quick sweep has %d points", len(s))
	}
	for _, g := range s {
		if g > cfg.n {
			t.Errorf("sweep point %d exceeds n", g)
		}
	}
}

func TestMakeDatasets(t *testing.T) {
	d := makeDatasets(1, 1000, 50)
	if len(d.keys) != 1000 || len(d.f64) != 1000 || len(d.f32) != 1000 ||
		len(d.i32) != 1000 || len(d.i64) != 1000 {
		t.Fatal("dataset lengths wrong")
	}
	for i := range d.f64 {
		if float64(d.f32[i]) < 1 || float64(d.f32[i]) >= 2.01 {
			t.Fatal("f32 derivation wrong")
		}
		if d.i64[i] != int64(d.f64[i]*1e4) {
			t.Fatal("i64 derivation wrong")
		}
	}
}
