package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/pagerank"
	"repro/internal/tpch"
)

// runTab4 — Table IV: CPU time of TPC-H Query 1 (DECIMAL columns
// replaced by DOUBLE) for four SUM implementations, relative to the
// total CPU time on built-in doubles: repro<double,4> without buffers
// (~114% in the paper), with buffers (~102.7%), and sorted input
// (~727%).
func runTab4(cfg config) {
	sf := cfg.sf
	if cfg.quick {
		sf = 0.005
	}
	fmt.Printf("\nGenerating TPC-H lineitem at SF=%.3f ...\n", sf)
	tbl := tpch.GenLineitem(sf, cfg.seed)
	fmt.Printf("lineitem: %d rows\n", tbl.NumRows())

	kernels := []engine.GroupByConfig{
		{Kind: engine.SumPlain},
		{Kind: engine.SumRepro, Levels: 4},
		{Kind: engine.SumReproBuffered, Levels: 4},
		{Kind: engine.SumSorted},
	}
	reps := 3
	type result struct {
		agg, other, total time.Duration
	}
	results := make([]result, len(kernels))
	for i, k := range kernels {
		var best result
		for r := 0; r < reps; r++ {
			rows, prof, err := tpch.RunQ1(tbl, k)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tab4: %v\n", err)
				os.Exit(1)
			}
			if len(rows) == 0 {
				fmt.Fprintln(os.Stderr, "tab4: empty Q1 result")
				os.Exit(1)
			}
			aggT := prof.Get("aggregation")
			total := prof.Total()
			if r == 0 || total < best.total {
				best = result{agg: aggT, other: total - aggT, total: total}
			}
		}
		results[i] = best
	}

	baseTotal := float64(results[0].total)
	t := bench.NewTable("Table IV: TPC-H Q1 CPU time relative to doubles (%)",
		"component", "double", "repro<d,4> unbuffered", "repro<d,4> buffered", "double (sorted)")
	pct := func(d time.Duration) string {
		return fmt.Sprintf("%.1f", 100*float64(d)/baseTotal)
	}
	t.AddRow("Aggregations", pct(results[0].agg), pct(results[1].agg), pct(results[2].agg), pct(results[3].agg))
	t.AddRow("Other", pct(results[0].other), pct(results[1].other), pct(results[2].other), pct(results[3].other))
	t.AddRow("Total", pct(results[0].total), pct(results[1].total), pct(results[2].total), pct(results[3].total))
	t.Fprint(os.Stdout)

	// Show the Q1 result rows once (validates the query itself).
	rows, _, _ := tpch.RunQ1(tbl, engine.GroupByConfig{Kind: engine.SumReproBuffered, Levels: 4})
	fmt.Println("\nQ1 result (repro<double,4> buffered):")
	for _, g := range rows {
		fmt.Println("  " + tpch.FormatQ1(g))
	}
}

// runPageRank — the motivation experiment of Section I: PageRank over
// permutations of a web graph. With float64 sums, pages swap ranks from
// run to run; with reproducible sums the ranks are bit-identical.
func runPageRank(cfg config) {
	nodes, m, iters, perms := 100000, 4, 20, 5
	if cfg.quick {
		nodes, iters, perms = 10000, 10, 3
	}
	fmt.Printf("\nPageRank: %d nodes, scale-free (m=%d), %d iterations, %d permutations\n",
		nodes, m, iters, perms)
	g := pagerank.NewScaleFree(nodes, m, cfg.seed)
	fmt.Printf("graph: %d edges\n", g.NumEdges())

	t := bench.NewTable("PageRank rank stability across edge permutations",
		"permutation", "float64: positions changed", "repro: positions changed", "repro bit-identical")
	baseF := pagerank.Run(g, pagerank.Config{Iterations: iters})
	baseR := pagerank.Run(g, pagerank.Config{Iterations: iters, Reproducible: true})
	orderF := pagerank.RankOrder(baseF)
	orderR := pagerank.RankOrder(baseR)
	for p := 0; p < perms; p++ {
		pg := g.Permute(cfg.seed + 1000 + uint64(p))
		rf := pagerank.Run(pg, pagerank.Config{Iterations: iters})
		rr := pagerank.Run(pg, pagerank.Config{Iterations: iters, Reproducible: true})
		t.AddRow(p+1,
			pagerank.CountOrderChanges(orderF, pagerank.RankOrder(rf)),
			pagerank.CountOrderChanges(orderR, pagerank.RankOrder(rr)),
			fmt.Sprintf("%v", pagerank.BitsEqual(baseR, rr)))
	}
	t.Fprint(os.Stdout)
}

// runQ6 — extension experiment: TPC-H Q6 (a single ungrouped SUM)
// through the engine with each summation routine; the isolated-summation
// counterpart of Table IV.
func runQ6(cfg config) {
	sf := cfg.sf
	if cfg.quick {
		sf = 0.005
	}
	tbl := tpch.GenLineitem(sf, cfg.seed)
	t := bench.NewTable(fmt.Sprintf("TPC-H Q6 (SF=%.3f, %d rows): summation kernels", sf, tbl.NumRows()),
		"kernel", "revenue", "aggregation us", "total us")
	for _, k := range []struct {
		name string
		kind tpch.Q6SumKind
	}{
		{"double (plain)", tpch.Q6Plain},
		{"RSUM scalar L=3", tpch.Q6Scalar},
		{"RSUM SIMD L=3", tpch.Q6Vec},
		{"Neumaier", tpch.Q6Neumaier},
	} {
		var rev float64
		var prof *engine.Profiler
		var err error
		for r := 0; r < 3; r++ {
			rev, prof, err = tpch.RunQ6(tbl, k.kind, 3)
			if err != nil {
				fmt.Fprintf(os.Stderr, "q6: %v\n", err)
				os.Exit(1)
			}
		}
		t.AddRow(k.name, fmt.Sprintf("%.4f", rev),
			prof.Get("aggregation").Microseconds(), prof.Total().Microseconds())
	}
	t.Fprint(os.Stdout)
}
