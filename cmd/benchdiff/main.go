// Command benchdiff compares two machine-readable benchmark reports
// produced by `reprobench dist -benchjson` (see BENCH_dist.json at the
// repo root for the committed baseline). Cells are matched by name;
// for each match it prints throughput and allocation deltas and flags
// regressions beyond the tolerances.
//
// By default benchdiff is warn-only (exit 0 regardless), because
// wall-clock throughput on shared CI runners is noisy; allocs/op is
// deterministic, so treat its regressions seriously. Pass -strict to
// exit 1 on any flagged regression (for local gating), or
// -tolerance <pct> to gate with an explicit throughput headroom: it
// sets the tolerated rows/s regression to pct% and exits non-zero on
// anything beyond it (the nightly bench-trajectory job runs with a
// generous -tolerance, so only an unambiguous regression fails the
// night, not runner noise).
//
// A comparison in which NO cell name matches between the two reports
// gates nothing — which is how a silent schema or cell-name drift turns
// the bench trajectory into an empty gate that "passes" every night.
// Zero overlap is therefore a hard error (exit 1) under -strict or
// -tolerance, and loudly warned about even in warn-only mode.
//
// Usage:
//
//	benchdiff [-rows-tol 0.25] [-allocs-tol 0.10] [-strict] [-tolerance pct] baseline.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

type cell struct {
	Name        string  `json:"name"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Schema int    `json:"schema"`
	Go     string `json:"go"`
	Rows   int    `json:"rows"`
	Cells  []cell `json:"cells"`
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	// Schema 2 added the multi-aggregate groupby cells, schema 3 the
	// serving-layer cells, schema 4 the cluster dispatch cells, schema
	// 5 the supervisor journal replay cell, and schema 6 the metric
	// record-path micro cell; the cell fields benchdiff reads are
	// unchanged, so all schemas diff the same way.
	if r.Schema < 1 || r.Schema > 6 {
		return r, fmt.Errorf("%s: unsupported schema %d", path, r.Schema)
	}
	return r, nil
}

// diff compares cur against base cell by cell, printing the table to w.
// It returns the number of cells flagged as regressed and the number of
// cells matched by name — matched == 0 means the comparison gated
// nothing at all, which callers must treat as a failure of the
// comparison itself, not a pass.
func diff(w io.Writer, base, cur report, rowsTol, allocsTol float64) (regressions, matched int) {
	if base.Rows != cur.Rows {
		fmt.Fprintf(w, "note: row counts differ (baseline %d, new %d); throughput deltas are not comparable\n",
			base.Rows, cur.Rows)
	}
	baseBy := make(map[string]cell, len(base.Cells))
	for _, c := range base.Cells {
		baseBy[c.Name] = c
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8s %10s %10s %8s\n",
		"cell", "base rows/s", "new rows/s", "Δ", "base allocs", "new allocs", "Δ")
	for _, c := range cur.Cells {
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s %s\n", c.Name, "(new cell, no baseline)")
			continue
		}
		matched++
		delete(baseBy, c.Name)
		rowsDelta, allocsDelta := "-", "-"
		flagged := ""
		if b.RowsPerSec > 0 && c.RowsPerSec > 0 {
			d := c.RowsPerSec/b.RowsPerSec - 1
			rowsDelta = fmt.Sprintf("%+.0f%%", d*100)
			if d < -rowsTol {
				flagged = "  << rows/s regression"
			}
		}
		if b.AllocsPerOp > 0 || c.AllocsPerOp > 0 {
			d := float64(c.AllocsPerOp-b.AllocsPerOp) / float64(max(b.AllocsPerOp, 1))
			allocsDelta = fmt.Sprintf("%+.0f%%", d*100)
			// The >1 absolute guard tolerates ±1 jitter on noisy cells,
			// but never on a zero-alloc baseline: 0 → 1 allocs/op is
			// exactly the regression the trajectory exists to catch.
			if d > allocsTol && (b.AllocsPerOp == 0 || c.AllocsPerOp-b.AllocsPerOp > 1) {
				flagged += "  << allocs/op regression"
			}
		}
		if flagged != "" {
			regressions++
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %8s %10d %10d %8s%s\n",
			c.Name, b.RowsPerSec, c.RowsPerSec, rowsDelta, b.AllocsPerOp, c.AllocsPerOp, allocsDelta, flagged)
	}
	for name := range baseBy {
		fmt.Fprintf(w, "%-28s %s\n", name, "(baseline cell missing from new run)")
	}
	return regressions, matched
}

func main() {
	rowsTol := flag.Float64("rows-tol", 0.25, "tolerated fractional rows/s regression")
	allocsTol := flag.Float64("allocs-tol", 0.10, "tolerated fractional allocs/op increase")
	strict := flag.Bool("strict", false, "exit non-zero on flagged regressions (and on zero cell overlap)")
	tolerance := flag.Float64("tolerance", -1, "percent rows/s regression tolerated before gating (sets -rows-tol to pct/100 and implies -strict; 0 gates on any regression)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json new.json")
		os.Exit(2)
	}
	if *tolerance != -1 {
		// Explicitly set: validate and gate — including at 0, which
		// means "no headroom", not "flag absent".
		if *tolerance < 0 || *tolerance >= 100 {
			fmt.Fprintln(os.Stderr, "benchdiff: -tolerance must be a percentage in [0, 100)")
			os.Exit(2)
		}
		*rowsTol = *tolerance / 100
		*strict = true
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regressions, matched := diff(os.Stdout, base, cur, *rowsTol, *allocsTol)

	if matched == 0 {
		// An empty intersection compares nothing: every baseline cell is
		// "missing" and every new cell is "new", so no regression can
		// ever be flagged. Under a gating run that must be a hard error,
		// or a renamed cell set silently retires the whole gate.
		fmt.Fprintf(os.Stderr, "benchdiff: no overlapping cells between %s (%d cells) and %s (%d cells) — nothing was compared\n",
			flag.Arg(0), len(base.Cells), flag.Arg(1), len(cur.Cells))
		if *strict {
			os.Exit(1)
		}
		fmt.Println("warn-only mode: exiting 0 despite zero overlap (pass -strict to gate)")
		return
	}
	if regressions > 0 {
		fmt.Printf("\n%d cell(s) regressed beyond tolerance (rows/s %.0f%%, allocs/op %.0f%%)\n",
			regressions, *rowsTol*100, *allocsTol*100)
		if *strict {
			os.Exit(1)
		}
		fmt.Println("warn-only mode: exiting 0 (pass -strict to gate)")
	}
}
