package main

import (
	"strings"
	"testing"
)

func rep(cells ...cell) report {
	return report{Schema: 3, Go: "go1.24", Rows: 1 << 20, Cells: cells}
}

// TestDiffZeroOverlap: two reports whose cell names are disjoint must
// report matched == 0 — the condition main treats as a hard error under
// -strict — never a silent zero-regression pass.
func TestDiffZeroOverlap(t *testing.T) {
	base := rep(
		cell{Name: "shuffle/chan", RowsPerSec: 1e8},
		cell{Name: "gather/chan", RowsPerSec: 2e8},
	)
	cur := rep(
		cell{Name: "shuffle/tcp", RowsPerSec: 1e7},
		cell{Name: "serve/local", RowsPerSec: 3e7},
	)
	var out strings.Builder
	regressions, matched := diff(&out, base, cur, 0.25, 0.10)
	if matched != 0 {
		t.Fatalf("matched = %d for disjoint cell sets, want 0", matched)
	}
	if regressions != 0 {
		t.Fatalf("regressions = %d with nothing compared, want 0", regressions)
	}
	// The table must still surface both sides of the drift so the error
	// is diagnosable from the log alone.
	if !strings.Contains(out.String(), "(new cell, no baseline)") {
		t.Error("output does not mark the unmatched new cells")
	}
	if !strings.Contains(out.String(), "(baseline cell missing from new run)") {
		t.Error("output does not mark the orphaned baseline cells")
	}
}

// TestDiffOverlapCounts: matched counts exactly the intersection, and a
// throughput collapse beyond tolerance is flagged while an in-tolerance
// wobble is not.
func TestDiffOverlapCounts(t *testing.T) {
	base := rep(
		cell{Name: "shuffle/chan", RowsPerSec: 1e8, AllocsPerOp: 0},
		cell{Name: "gather/chan", RowsPerSec: 2e8, AllocsPerOp: 5},
		cell{Name: "retired/cell", RowsPerSec: 1e8},
	)
	cur := rep(
		cell{Name: "shuffle/chan", RowsPerSec: 4e7, AllocsPerOp: 0}, // -60%: regression
		cell{Name: "gather/chan", RowsPerSec: 1.9e8, AllocsPerOp: 5},
		cell{Name: "brand/new", RowsPerSec: 1e8},
	)
	var out strings.Builder
	regressions, matched := diff(&out, base, cur, 0.25, 0.10)
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (the -60%% shuffle cell)", regressions)
	}
}

// TestDiffAllocRegression: a 0 → 1 allocs/op step is flagged even
// though the absolute delta is 1 — the zero-alloc baseline is exempt
// from the ±1 jitter allowance.
func TestDiffAllocRegression(t *testing.T) {
	base := rep(cell{Name: "shuffle/chan", RowsPerSec: 1e8, AllocsPerOp: 0})
	cur := rep(cell{Name: "shuffle/chan", RowsPerSec: 1e8, AllocsPerOp: 1})
	var out strings.Builder
	regressions, matched := diff(&out, base, cur, 0.25, 0.10)
	if matched != 1 || regressions != 1 {
		t.Fatalf("matched, regressions = %d, %d, want 1, 1", matched, regressions)
	}

	// ...while 5 → 6 on a nonzero baseline stays within the jitter
	// allowance despite exceeding the fractional tolerance.
	base = rep(cell{Name: "gather/chan", RowsPerSec: 1e8, AllocsPerOp: 5})
	cur = rep(cell{Name: "gather/chan", RowsPerSec: 1e8, AllocsPerOp: 6})
	regressions, matched = diff(&out, base, cur, 0.25, 0.10)
	if matched != 1 || regressions != 0 {
		t.Fatalf("matched, regressions = %d, %d, want 1, 0", matched, regressions)
	}
}
