// Package repro provides bit-reproducible floating-point aggregation for
// data management systems, implementing "Reproducible Floating-Point
// Aggregation in RDBMSs" (Müller, Arteaga, Hoefler, Alonso; ICDE 2018).
//
// Floating-point addition is not associative, so the result of SUM and
// GROUPBY SUM in most systems depends on the physical order of the data,
// the number of threads, and the shape of the merge tree. This package
// makes those operations bit-reproducible: any execution over the same
// multiset of ⟨key, value⟩ pairs produces results that are identical in
// every bit, while staying within about 2× of the performance of plain
// floating-point aggregation (and improving accuracy at the same time).
//
// # Quick start
//
//	total := repro.Sum(values)                  // reproducible SUM
//	groups := repro.GroupBySum(keys, values, nil) // reproducible GROUPBY
//
// # Accumulators
//
// Accumulator (float64) and Accumulator32 (float32) are drop-in
// replacements for a running sum: Add values in any order, Merge partial
// accumulators across goroutines in any tree shape, and Value returns
// the same bits every time. BufferedAccumulator adds the paper's
// summation buffer, which batches values per group and aggregates them
// with a vectorized kernel — the configuration that brings GROUPBY
// overhead down to ≈ 2× (and to ≈ 3% of end-to-end query time).
//
// # Precision levels
//
// The Levels parameter L controls accuracy: L = 2 matches the accuracy
// of conventional IEEE summation, L = 3 is far more accurate, at a cost
// growing roughly linearly in L. DefaultLevels is 2.
package repro

import (
	"sort"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hashagg"
	"repro/internal/rsum"
	"repro/internal/sqlagg"
)

// DefaultLevels is the default number of summation levels (L = 2,
// accuracy comparable to conventional IEEE summation).
const DefaultLevels = core.DefaultLevels

// MaxLevels is the largest supported level count.
const MaxLevels = core.MaxLevels

// Accumulator is a bit-reproducible, associative float64 accumulator.
// The zero value is not usable; construct with NewAccumulator.
// Not safe for concurrent use: give each goroutine its own accumulator
// and Merge them (the merged result is independent of the merge order).
type Accumulator = core.Sum64

// NewAccumulator returns an empty accumulator with the given number of
// summation levels (1 ≤ levels ≤ MaxLevels); use DefaultLevels when in
// doubt.
func NewAccumulator(levels int) Accumulator { return core.NewSum64(levels) }

// Accumulator32 is the float32 accumulator.
type Accumulator32 = core.Sum32

// NewAccumulator32 returns an empty float32 accumulator.
func NewAccumulator32(levels int) Accumulator32 { return core.NewSum32(levels) }

// BufferedAccumulator is an accumulator with a summation buffer: values
// are buffered and folded in batches by a vectorized kernel, trading
// memory (bsz float64 slots) for roughly 2–6× faster accumulation.
// It produces exactly the same bits as Accumulator.
type BufferedAccumulator = core.Buffered64

// NewBufferedAccumulator returns an empty buffered accumulator with the
// given level count and buffer size. BufferSizeFor picks a good buffer
// size for a known group count.
func NewBufferedAccumulator(levels, bufferSize int) BufferedAccumulator {
	return core.NewBuffered64(levels, bufferSize)
}

// State is the serializable summation state underlying Accumulator,
// exposed for systems that ship partial aggregates between nodes.
// It implements encoding.BinaryMarshaler / BinaryUnmarshaler with a
// canonical encoding (equal states encode to equal bytes).
type State = rsum.State64

// Sum returns the bit-reproducible sum of values with DefaultLevels:
// every permutation and chunking of the same values yields the same
// bits. NaN and ±Inf inputs are handled deterministically (NaN wins;
// +Inf and −Inf together give NaN).
func Sum(values []float64) float64 { return SumLevels(values, DefaultLevels) }

// SumLevels is Sum with an explicit accuracy level L.
func SumLevels(values []float64, levels int) float64 {
	s := rsum.NewState64(levels)
	s.AddSliceVec(values)
	return s.Value()
}

// Sum32 returns the bit-reproducible float32 sum with DefaultLevels.
func Sum32(values []float32) float32 {
	s := rsum.NewState32(DefaultLevels)
	s.AddSliceVec(values)
	return s.Value()
}

// Group is one row of a GROUPBY result.
type Group struct {
	Key uint32
	Sum float64
}

// GroupByOptions configures GroupBySum.
type GroupByOptions struct {
	// Levels is the accuracy level L (default DefaultLevels).
	Levels int
	// Groups is an estimate of the number of distinct keys; it tunes
	// the partitioning depth and buffer size (Eq. 4 of the paper).
	// 0 means unknown (a conservative default is used).
	Groups int
	// Workers is the number of goroutines (default GOMAXPROCS).
	Workers int
	// Unbuffered disables summation buffers (slower; mainly for
	// benchmarking the drop-in data type of the paper's Section IV).
	Unbuffered bool
}

func (o *GroupByOptions) withDefaults() GroupByOptions {
	var v GroupByOptions
	if o != nil {
		v = *o
	}
	if v.Levels == 0 {
		v.Levels = DefaultLevels
	}
	if v.Groups <= 0 {
		v.Groups = 1 << 12
	}
	return v
}

// GroupBySum aggregates values by key with reproducible SUM: the result
// (as a set of groups) is bit-identical for any permutation of the
// input, any worker count, and any options with the same Levels.
// The returned groups are sorted by key.
func GroupBySum(keys []uint32, values []float64, opts *GroupByOptions) []Group {
	o := opts.withDefaults()
	depth := agg.ThresholdsReproBuffered.Depth(o.Groups)
	options := agg.Options{
		Depth:     depth,
		Workers:   o.Workers,
		GroupHint: o.Groups,
		Hash:      hashagg.Identity,
	}
	var out []Group
	if o.Unbuffered {
		depth = agg.ThresholdsReproUnbuffered.Depth(o.Groups)
		options.Depth = depth
		entries := agg.PartitionAndAggregate[float64, core.Sum64](
			keys, values, func() core.Sum64 { return core.NewSum64(o.Levels) }, options)
		out = make([]Group, len(entries))
		for i := range entries {
			out[i] = Group{Key: entries[i].Key, Sum: entries[i].Agg.Value()}
		}
	} else {
		fanout := 1
		for i := 0; i < depth; i++ {
			fanout *= 256
		}
		bsz := agg.BufferSize(o.Groups, fanout, 8)
		entries := agg.PartitionAndAggregate[float64, core.Buffered64](
			keys, values,
			func() core.Buffered64 { return core.NewBuffered64(o.Levels, bsz) }, options)
		out = make([]Group, len(entries))
		for i := range entries {
			out[i] = Group{Key: entries[i].Key, Sum: entries[i].Agg.Value()}
		}
	}
	sortGroups(out)
	return out
}

func sortGroups(gs []Group) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key < gs[j].Key })
}

// BufferSizeFor evaluates the paper's cache-footprint model (Eq. 4):
// the summation buffer size that fills the per-thread cache budget for
// the given number of groups.
func BufferSizeFor(groups int) int {
	return agg.BufferSize(groups, 1, 8)
}

// ErrorBound returns the worst-case absolute error of a reproducible
// sum of n values with the given levels and maximum magnitude (Eq. 6).
func ErrorBound(n, levels int, maxAbs float64) float64 {
	return exact.RSumBound(n, levels, maxAbs)
}

// DotProduct returns the bit-reproducible dot product Σ x[i]·y[i] with
// DefaultLevels, using error-free product transformation (each product's
// rounding error is recovered with an FMA and folded into the sum), so
// the result is both reproducible and as accurate as summing the exact
// products. Panics if the vectors have different lengths.
func DotProduct(x, y []float64) float64 {
	return sqlagg.DotProductExact(x, y, DefaultLevels)
}
