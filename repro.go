// Package repro provides bit-reproducible floating-point aggregation for
// data management systems, implementing "Reproducible Floating-Point
// Aggregation in RDBMSs" (Müller, Arteaga, Hoefler, Alonso; ICDE 2018).
//
// Floating-point addition is not associative, so the result of SUM and
// GROUPBY SUM in most systems depends on the physical order of the data,
// the number of threads, and the shape of the merge tree. This package
// makes those operations bit-reproducible: any execution over the same
// multiset of ⟨key, value⟩ pairs produces results that are identical in
// every bit, while staying within about 2× of the performance of plain
// floating-point aggregation (and improving accuracy at the same time).
//
// # Quick start
//
//	total := repro.Sum(values)                  // reproducible SUM
//	groups := repro.GroupBySum(keys, values, nil) // reproducible GROUPBY
//
// # Accumulators
//
// Accumulator (float64) and Accumulator32 (float32) are drop-in
// replacements for a running sum: Add values in any order, Merge partial
// accumulators across goroutines in any tree shape, and Value returns
// the same bits every time. BufferedAccumulator adds the paper's
// summation buffer, which batches values per group and aggregates them
// with a vectorized kernel — the configuration that brings GROUPBY
// overhead down to ≈ 2× (and to ≈ 3% of end-to-end query time).
//
// # Precision levels
//
// The Levels parameter L controls accuracy: L = 2 matches the accuracy
// of conventional IEEE summation, L = 3 is far more accurate, at a cost
// growing roughly linearly in L. DefaultLevels is 2.
package repro

import (
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dist/proc"
	"repro/internal/exact"
	"repro/internal/hashagg"
	"repro/internal/rsum"
	"repro/internal/sqlagg"
)

// DefaultLevels is the default number of summation levels (L = 2,
// accuracy comparable to conventional IEEE summation).
const DefaultLevels = core.DefaultLevels

// MaxLevels is the largest supported level count.
const MaxLevels = core.MaxLevels

// Accumulator is a bit-reproducible, associative float64 accumulator.
// The zero value is not usable; construct with NewAccumulator.
// Not safe for concurrent use: give each goroutine its own accumulator
// and Merge them (the merged result is independent of the merge order).
type Accumulator = core.Sum64

// NewAccumulator returns an empty accumulator with the given number of
// summation levels (1 ≤ levels ≤ MaxLevels); use DefaultLevels when in
// doubt.
func NewAccumulator(levels int) Accumulator { return core.NewSum64(levels) }

// Accumulator32 is the float32 accumulator.
type Accumulator32 = core.Sum32

// NewAccumulator32 returns an empty float32 accumulator.
func NewAccumulator32(levels int) Accumulator32 { return core.NewSum32(levels) }

// BufferedAccumulator is an accumulator with a summation buffer: values
// are buffered and folded in batches by a vectorized kernel, trading
// memory (bsz float64 slots) for roughly 2–6× faster accumulation.
// It produces exactly the same bits as Accumulator.
type BufferedAccumulator = core.Buffered64

// NewBufferedAccumulator returns an empty buffered accumulator with the
// given level count and buffer size. BufferSizeFor picks a good buffer
// size for a known group count.
func NewBufferedAccumulator(levels, bufferSize int) BufferedAccumulator {
	return core.NewBuffered64(levels, bufferSize)
}

// State is the serializable summation state underlying Accumulator,
// exposed for systems that ship partial aggregates between nodes.
// It implements encoding.BinaryMarshaler / BinaryUnmarshaler with a
// canonical encoding (equal states encode to equal bytes).
type State = rsum.State64

// Sum returns the bit-reproducible sum of values with DefaultLevels:
// every permutation and chunking of the same values yields the same
// bits. NaN and ±Inf inputs are handled deterministically (NaN wins;
// +Inf and −Inf together give NaN).
func Sum(values []float64) float64 { return SumLevels(values, DefaultLevels) }

// SumLevels is Sum with an explicit accuracy level L.
func SumLevels(values []float64, levels int) float64 {
	s := rsum.NewState64(levels)
	s.AddSliceVec(values)
	return s.Value()
}

// Sum32 returns the bit-reproducible float32 sum with DefaultLevels.
func Sum32(values []float32) float32 {
	s := rsum.NewState32(DefaultLevels)
	s.AddSliceVec(values)
	return s.Value()
}

// Group is one row of a GROUPBY result.
type Group struct {
	Key uint32
	Sum float64
}

// GroupByOptions configures GroupBySum.
type GroupByOptions struct {
	// Levels is the accuracy level L (default DefaultLevels).
	Levels int
	// Groups is an estimate of the number of distinct keys; it tunes
	// the partitioning depth and buffer size (Eq. 4 of the paper).
	// 0 means unknown (a conservative default is used).
	Groups int
	// Workers is the number of goroutines (default GOMAXPROCS).
	Workers int
	// Unbuffered disables summation buffers (slower; mainly for
	// benchmarking the drop-in data type of the paper's Section IV).
	Unbuffered bool
}

func (o *GroupByOptions) withDefaults() GroupByOptions {
	var v GroupByOptions
	if o != nil {
		v = *o
	}
	if v.Levels == 0 {
		v.Levels = DefaultLevels
	}
	if v.Groups <= 0 {
		v.Groups = 1 << 12
	}
	return v
}

// GroupBySum aggregates values by key with reproducible SUM: the result
// (as a set of groups) is bit-identical for any permutation of the
// input, any worker count, and any options with the same Levels.
// The returned groups are sorted by key.
func GroupBySum(keys []uint32, values []float64, opts *GroupByOptions) []Group {
	o := opts.withDefaults()
	depth := agg.ThresholdsReproBuffered.Depth(o.Groups)
	options := agg.Options{
		Depth:     depth,
		Workers:   o.Workers,
		GroupHint: o.Groups,
		Hash:      hashagg.Identity,
	}
	var out []Group
	if o.Unbuffered {
		depth = agg.ThresholdsReproUnbuffered.Depth(o.Groups)
		options.Depth = depth
		entries := agg.PartitionAndAggregate[float64, core.Sum64](
			keys, values, func() core.Sum64 { return core.NewSum64(o.Levels) }, options)
		out = make([]Group, len(entries))
		for i := range entries {
			out[i] = Group{Key: entries[i].Key, Sum: entries[i].Agg.Value()}
		}
	} else {
		fanout := 1
		for i := 0; i < depth; i++ {
			fanout *= 256
		}
		bsz := agg.BufferSize(o.Groups, fanout, 8)
		entries := agg.PartitionAndAggregate[float64, core.Buffered64](
			keys, values,
			func() core.Buffered64 { return core.NewBuffered64(o.Levels, bsz) }, options)
		out = make([]Group, len(entries))
		for i := range entries {
			out[i] = Group{Key: entries[i].Key, Sum: entries[i].Agg.Value()}
		}
	}
	sortGroups(out)
	return out
}

func sortGroups(gs []Group) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key < gs[j].Key })
}

// BufferSizeFor evaluates the paper's cache-footprint model (Eq. 4):
// the summation buffer size that fills the per-thread cache budget for
// the given number of groups.
func BufferSizeFor(groups int) int {
	return agg.BufferSize(groups, 1, 8)
}

// ErrorBound returns the worst-case absolute error of a reproducible
// sum of n values with the given levels and maximum magnitude (Eq. 6).
func ErrorBound(n, levels int, maxAbs float64) float64 {
	return exact.RSumBound(n, levels, maxAbs)
}

// Topology selects the reduction-tree shape for DistributedSum. All
// topologies yield bit-identical results; they differ only in the
// communication pattern of the simulated cluster.
type Topology = dist.Topology

// Reduction topologies for DistributedSum.
const (
	Binomial = dist.Binomial // MPI-style binomial tree, ⌈log2 n⌉ rounds
	Chain    = dist.Chain    // linear pipeline n−1 → … → 0
	Star     = dist.Star     // all partials straight to the root
)

// Sentinel errors of the distributed operators, matchable with
// errors.Is on the (possibly wrapped) errors DistributedSum and
// DistributedGroupBySum return.
var (
	// ErrNoShards: the cluster has zero nodes.
	ErrNoShards = dist.ErrNoShards
	// ErrWorkers: non-positive per-node worker count.
	ErrWorkers = dist.ErrWorkers
	// ErrTopology: unknown Topology value.
	ErrTopology = dist.ErrTopology
	// ErrShardMismatch: key and value shards disagree in shape.
	ErrShardMismatch = dist.ErrShardMismatch
	// ErrStraggler: a node stayed silent through every re-request
	// deadline (see WithStragglerDeadline).
	ErrStraggler = dist.ErrStraggler
	// ErrChunkBudget: buffering incoming message chunks would exceed
	// the reassembly budget (see WithReassemblyBudget).
	ErrChunkBudget = dist.ErrChunkBudget
	// ErrConfig: a DistOption was built with an invalid value (a
	// non-positive chunk payload, reassembly budget, or process
	// count). Reported by the distributed operators before any run
	// starts.
	ErrConfig = dist.ErrConfig
	// ErrHandshake: a worker process's join handshake disagreed with
	// the supervisor on the frame version, rsum level count, or
	// run-config digest (see WithProcessCluster).
	ErrHandshake = dist.ErrHandshake
)

// FaultPlan configures the fault-injection decorator of the distributed
// operators: deterministic (seeded) delivery delay, duplication,
// reordering, and dropped-then-retried frames. Injected faults never
// change the result bits — that is the point.
type FaultPlan = dist.FaultPlan

// DistOption configures the interconnect of DistributedSum and
// DistributedGroupBySum. The default is the in-process channel
// transport with no injected faults.
type DistOption func(*dist.Config)

// WithTCPTransport routes partial aggregates through real TCP sockets
// on loopback — one listener per simulated node, frames length-prefixed
// and CRC-protected — instead of in-process channels. The result bits
// are identical to every other transport.
func WithTCPTransport() DistOption {
	return func(c *dist.Config) { c.NewTransport = dist.TCPTransportFactory }
}

// WithChanTransport selects the in-process channel transport (the
// default), spelled out for symmetry in transport sweeps.
func WithChanTransport() DistOption {
	return func(c *dist.Config) { c.NewTransport = dist.ChanTransportFactory }
}

// WithFaults wraps the selected transport in the fault-injection
// decorator. Use it to demonstrate (or test) that delays, duplication,
// reordering, and dropped-then-retried frames do not change a single
// bit of the result.
func WithFaults(plan FaultPlan) DistOption {
	return func(c *dist.Config) { c.Faults = &plan }
}

// WithStragglerDeadline sets how long a node in the reduction tree
// waits for a child's partial before re-requesting it (straggler
// handling). Spurious re-requests are harmless; frames are
// deduplicated.
func WithStragglerDeadline(d time.Duration) DistOption {
	return func(c *dist.Config) { c.ChildDeadline = d }
}

// poisonNonPositive maps an explicitly non-positive option argument to
// a negative marker, so Config.Validate reports it as ErrConfig at the
// next operation instead of the zero value silently selecting the
// default (a classic way to fail deep inside a run later).
func poisonNonPositive(v int) int {
	if v <= 0 {
		return -1
	}
	return v
}

// WithMaxChunkPayload caps the payload bytes of one wire frame: a
// logical message (a partial state, a shuffle frame of ⟨key, state⟩
// pairs, a gather of finalized groups) larger than this travels as a
// stream of chunk frames that the receiver reassembles — out-of-order,
// duplicated, and individually re-requested chunks included — before
// any protocol code sees the payload. The maximum (and the default,
// when this option is not used) is the 16 MiB frame ceiling, so
// workloads whose messages always fit in one frame produce exactly the
// single-frame traffic they did before chunking existed. Chunking
// never changes result bits; it only decides how many wire frames
// carry the same canonical bytes. bytes must be positive: a
// non-positive value fails the operation immediately with ErrConfig.
func WithMaxChunkPayload(bytes int) DistOption {
	return func(c *dist.Config) { c.MaxChunkPayload = poisonNonPositive(bytes) }
}

// WithReassemblyBudget caps the bytes a node buffers for incomplete
// incoming chunk streams (default 1 GiB). Messages that would exceed
// the budget fail with ErrChunkBudget — on the sender when the size is
// its own doing, on the receiver when a hostile peer tries to declare
// its way past the node's memory. The budget is shared across all
// streams a node is concurrently reassembling, so when lowering it
// allow for fan-in × the largest expected message. bytes must be
// positive: a non-positive value fails the operation immediately with
// ErrConfig.
func WithReassemblyBudget(bytes int) DistOption {
	return func(c *dist.Config) { c.ReassemblyBudget = poisonNonPositive(bytes) }
}

// WithProcessCluster runs the distributed operation across procs
// spawned worker OS processes — a real multi-process cluster speaking
// the v2 frame codec over TCP sockets — instead of in-process
// goroutines. Each worker joins through a handshake (frame version,
// rsum level count, run-config digest; mismatches fail with
// ErrHandshake), executes its node's protocol role, reconnects through
// socket failures via the per-chunk resend path, and exits on
// shutdown. The result bits are identical to every in-process
// transport. When procs differs from the number of input shards, the
// shards are re-dealt round-robin across the procs worker nodes
// (reproducibility makes re-dealing invisible in the bits).
//
// The worker binary is resolved in order: the REPROWORKER_BIN
// environment variable (pointing at a built cmd/reproworker), else the
// current binary re-executed — which requires main (or TestMain) to
// call InitWorkerProcess first. procs must be positive: a non-positive
// value fails the operation immediately with ErrConfig.
func WithProcessCluster(procs int) DistOption {
	return func(c *dist.Config) { c.Procs = poisonNonPositive(procs) }
}

// InitWorkerProcess turns the current process into a cluster worker
// and never returns when it was spawned as one by WithProcessCluster's
// supervisor; otherwise it returns immediately. Call it at the top of
// main (before flag parsing) in any program that uses
// WithProcessCluster without a separate reproworker binary.
func InitWorkerProcess() { proc.MaybeWorkerMain() }

func distConfig(opts []DistOption) dist.Config {
	var cfg dist.Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// DistributedSum computes the reproducible SUM of a sharded input on a
// simulated cluster with one node per shard: every node sums its shard
// locally (with the given per-node worker count), and the partial
// states are reduced over the given topology, traveling between nodes
// as canonical binary encodings (§III-D of the paper: local summation
// per process, then a global reduce). The result carries the same bits
// as Sum over the concatenated shards — for every cluster size,
// topology, worker count, message arrival order, transport
// (WithTCPTransport), and fault plan (WithFaults).
func DistributedSum(shards [][]float64, workers int, topo Topology, opts ...DistOption) (float64, error) {
	cfg := distConfig(opts)
	if cfg.Procs != 0 {
		// proc validates the config, so a poisoned WithProcessCluster
		// argument surfaces as ErrConfig here too.
		return proc.Reduce(shards, workers, topo, cfg, proc.Options{})
	}
	return dist.ReduceConfig(shards, workers, topo, cfg)
}

// DistributedGroupBySum computes a reproducible GROUP BY SUM over rows
// sharded across a simulated cluster: shardKeys[i] and shardVals[i]
// are node i's rows. A hash shuffle routes each key to a unique owner
// node, senders pre-aggregate into per-key partial states, and owners
// merge the shipped states in arrival order. The returned groups are
// sorted by key and bit-identical to GroupBySum over the concatenated
// rows, for every sharding, cluster size, worker count, transport, and
// fault plan.
func DistributedGroupBySum(shardKeys [][]uint32, shardVals [][]float64, workers int, opts ...DistOption) ([]Group, error) {
	cfg := distConfig(opts)
	var gs []dist.Group
	var err error
	if cfg.Procs != 0 {
		gs, err = proc.AggregateByKey(shardKeys, shardVals, workers, cfg, proc.Options{})
	} else {
		gs, err = dist.AggregateByKeyConfig(shardKeys, shardVals, workers, cfg)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Group, len(gs))
	for i, g := range gs {
		out[i] = Group{Key: g.Key, Sum: g.Sum}
	}
	return out, nil
}

// AggKind identifies one aggregate function of the distributed
// multi-aggregate GROUP BY catalog.
type AggKind = sqlagg.AggKind

// The aggregate catalog: every kind an AggSpec can name. The
// floating-point aggregates are built on reproducible summation, so
// each finalized value is bit-identical for every execution of the
// same input multiset.
const (
	AggSum        = sqlagg.AggSum        // SUM(col)
	AggCount      = sqlagg.AggCount      // COUNT(*)
	AggAvg        = sqlagg.AggAvg        // AVG(col)
	AggVarPop     = sqlagg.AggVarPop     // VAR_POP(col)
	AggVarSamp    = sqlagg.AggVarSamp    // VAR_SAMP(col)
	AggStddevPop  = sqlagg.AggStddevPop  // STDDEV_POP(col)
	AggStddevSamp = sqlagg.AggStddevSamp // STDDEV_SAMP(col)
	AggMin        = sqlagg.AggMin        // MIN(col)
	AggMax        = sqlagg.AggMax        // MAX(col)
)

// AggSpec is one aggregate of a multi-aggregate GROUP BY: which
// function (Kind), at which accuracy level (Levels, 0 = DefaultLevels),
// over which input column (Col). The spec list is a run's aggregate
// catalog: it travels inside the digested cluster configuration, so a
// worker process holding a different catalog fails the join handshake
// with ErrHandshake instead of diverging mid-run.
type AggSpec = sqlagg.AggSpec

// TupleGroup is one row of a multi-aggregate GROUP BY result: the key
// and one finalized float64 per spec, in spec order.
type TupleGroup = dist.TupleGroup

// DistributedAggregateByKey computes a reproducible multi-aggregate
// GROUP BY over rows sharded across a cluster: shardKeys[i] holds node
// i's keys and shardCols[i][c] its c-th value column (every column the
// specs read must be present and as long as the keys; shards with no
// rows may omit columns). Each spec contributes one output column, in
// order. Like DistributedGroupBySum, the rows are hash-shuffled to
// unique owner nodes, senders pre-aggregate per-key state tuples, and
// owners merge shipped tuples in arrival order; the returned groups
// are sorted by key and bit-identical for every sharding, cluster
// size, worker count, transport (WithTCPTransport), process cluster
// (WithProcessCluster), and fault plan (WithFaults).
func DistributedAggregateByKey(shardKeys [][]uint32, shardCols [][][]float64, workers int, specs []AggSpec, opts ...DistOption) ([]TupleGroup, error) {
	cfg := distConfig(opts)
	if cfg.Procs != 0 {
		return proc.AggregateTuples(shardKeys, shardCols, workers, specs, cfg, proc.Options{})
	}
	return dist.AggregateTuplesConfig(shardKeys, shardCols, workers, specs, cfg)
}

// DotProduct returns the bit-reproducible dot product Σ x[i]·y[i] with
// DefaultLevels, using error-free product transformation (each product's
// rounding error is recovered with an FMA and folded into the sum), so
// the result is both reproducible and as accurate as summing the exact
// products. Panics if the vectors have different lengths.
func DotProduct(x, y []float64) float64 {
	return sqlagg.DotProductExact(x, y, DefaultLevels)
}
