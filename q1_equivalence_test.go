package repro_test

import (
	"math"
	"testing"
	"time"

	"repro"
	"repro/internal/engine"
	"repro/internal/tpch"
)

// TestQ1EquivalenceMatrix is the acceptance gate of the multi-aggregate
// GROUP BY plane: TPC-H Q1 (4×SUM, 3×AVG, COUNT) produces bit-identical
// rows on the local engine, the in-process channel cluster, the TCP
// cluster, and the multi-process cluster — the cluster runs under an
// injected fault plan and forced multi-chunk shuffle streams, which
// must be invisible in the bits.
func TestQ1EquivalenceMatrix(t *testing.T) {
	tbl := tpch.GenLineitem(0.001, 17)
	const levels = 2
	want, _, err := tpch.RunQ1(tbl, engine.GroupByConfig{Kind: engine.SumRepro, Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	keys, cols, err := tpch.Q1Input(tbl)
	if err != nil {
		t.Fatal(err)
	}
	specs := tpch.Q1Specs(levels)
	shardKeys, shardCols := tpch.ShardQ1Input(keys, cols, 4)

	faults := repro.FaultPlan{
		Seed: 99, DropProb: 0.05, MaxDrops: 40, RetryDelay: time.Millisecond,
		DupProb: 0.05, MaxDelay: time.Millisecond, Reorder: true,
	}
	modes := []struct {
		name string
		opts []repro.DistOption
	}{
		{"chan", []repro.DistOption{repro.WithChanTransport(), repro.WithFaults(faults)}},
		{"tcp", []repro.DistOption{repro.WithTCPTransport(), repro.WithFaults(faults),
			repro.WithMaxChunkPayload(4096)}},
		{"proc", []repro.DistOption{repro.WithProcessCluster(4), repro.WithFaults(faults),
			repro.WithMaxChunkPayload(4096), repro.WithStragglerDeadline(250 * time.Millisecond)}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			tuples, err := repro.DistributedAggregateByKey(shardKeys, shardCols, 2, specs, mode.opts...)
			if err != nil {
				t.Fatalf("DistributedAggregateByKey: %v", err)
			}
			got, err := tpch.Q1FromTuples(tuples)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d groups, want %d", len(got), len(want))
			}
			for i := range got {
				g, w := got[i], want[i]
				if g.ReturnFlag != w.ReturnFlag || g.LineStatus != w.LineStatus || g.Count != w.Count {
					t.Fatalf("group row %d: %c%c/%d, want %c%c/%d",
						i, g.ReturnFlag, g.LineStatus, g.Count, w.ReturnFlag, w.LineStatus, w.Count)
				}
				for c, pair := range [][2]float64{
					{g.SumQty, w.SumQty}, {g.SumBasePrice, w.SumBasePrice},
					{g.SumDiscPrice, w.SumDiscPrice}, {g.SumCharge, w.SumCharge},
					{g.AvgQty, w.AvgQty}, {g.AvgPrice, w.AvgPrice}, {g.AvgDisc, w.AvgDisc},
				} {
					if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
						t.Fatalf("group %c%c output column %d: %016x != %016x",
							g.ReturnFlag, g.LineStatus, c, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
					}
				}
			}
		})
	}
}

// TestDistributedAggregateByKeyCatalog: a quick end-to-end pass over
// every aggregate kind of the catalog on the default transport, checked
// against directly computed per-key references where the math is exact.
func TestDistributedAggregateByKeyCatalog(t *testing.T) {
	keys := []uint32{1, 2, 1, 2, 1}
	col := []float64{2, 10, 4, 30, 6}
	specs := []repro.AggSpec{
		{Kind: repro.AggSum, Col: 0},
		{Kind: repro.AggCount, Col: 0},
		{Kind: repro.AggAvg, Col: 0},
		{Kind: repro.AggMin, Col: 0},
		{Kind: repro.AggMax, Col: 0},
		{Kind: repro.AggVarPop, Col: 0},
		{Kind: repro.AggStddevSamp, Col: 0},
	}
	tuples, err := repro.DistributedAggregateByKey(
		[][]uint32{keys[:3], keys[3:]},
		[][][]float64{{col[:3]}, {col[3:]}},
		1, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 || tuples[0].Key != 1 || tuples[1].Key != 2 {
		t.Fatalf("tuples = %+v", tuples)
	}
	wantRows := [][]float64{
		{12, 3, 4, 2, 6, 8.0 / 3.0, 2},                          // key 1: {2,4,6}
		{40, 2, 20, 10, 30, 100, math.Sqrt(2) * math.Sqrt(100)}, // key 2: {10,30}
	}
	for r, wants := range wantRows {
		for c, w := range wants {
			if got := tuples[r].Aggs[c]; math.Abs(got-w) > 1e-12*math.Max(math.Abs(w), 1) {
				t.Errorf("row %d spec %d: got %v, want %v", r, c, got, w)
			}
		}
	}
}
