package repro_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// TestDistributedSumMatchesSum: the simulated-cluster reduction carries
// exactly the bits of the single-machine Sum, for every topology and
// cluster size.
func TestDistributedSumMatchesSum(t *testing.T) {
	const n = 30000
	vals := workload.Values64(21, n, workload.MixedMag)
	want := math.Float64bits(repro.Sum(vals))

	for _, nodes := range []int{1, 3, 16} {
		shards := make([][]float64, nodes)
		for i, v := range vals {
			shards[i%nodes] = append(shards[i%nodes], v)
		}
		for _, topo := range []repro.Topology{repro.Binomial, repro.Chain, repro.Star} {
			got, err := repro.DistributedSum(shards, 2, topo)
			if err != nil {
				t.Fatalf("DistributedSum(%d nodes, %v): %v", nodes, topo, err)
			}
			if math.Float64bits(got) != want {
				t.Fatalf("DistributedSum(%d nodes, %v) = %016x, want %016x",
					nodes, topo, math.Float64bits(got), want)
			}
		}
	}
}

// TestDistributedGroupBySumMatchesGroupBySum: the distributed GROUP BY
// agrees bit-for-bit with the single-machine operator.
func TestDistributedGroupBySumMatchesGroupBySum(t *testing.T) {
	const n = 30000
	keys := workload.Keys(22, n, 500)
	vals := workload.Values64(23, n, workload.MixedMag)
	want := repro.GroupBySum(keys, vals, &repro.GroupByOptions{Groups: 500})

	for _, nodes := range []int{1, 5} {
		lk := make([][]uint32, nodes)
		lv := make([][]float64, nodes)
		for i := range keys {
			d := i % nodes
			lk[d] = append(lk[d], keys[i])
			lv[d] = append(lv[d], vals[i])
		}
		got, err := repro.DistributedGroupBySum(lk, lv, 2)
		if err != nil {
			t.Fatalf("DistributedGroupBySum(%d nodes): %v", nodes, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d nodes: %d groups, want %d", nodes, len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key ||
				math.Float64bits(got[i].Sum) != math.Float64bits(want[i].Sum) {
				t.Fatalf("%d nodes: group[%d] = {%d, %016x}, want {%d, %016x}",
					nodes, i, got[i].Key, math.Float64bits(got[i].Sum),
					want[i].Key, math.Float64bits(want[i].Sum))
			}
		}
	}
}

// TestDistributedSumTransportOptions: the facade's transport-selecting
// options — TCP sockets, fault injection, straggler deadline — all
// carry exactly the bits of the single-machine Sum.
func TestDistributedSumTransportOptions(t *testing.T) {
	const n = 8000
	vals := workload.Values64(29, n, workload.MixedMag)
	want := math.Float64bits(repro.Sum(vals))

	shards := make([][]float64, 5)
	for i, v := range vals {
		shards[i%5] = append(shards[i%5], v)
	}
	optSets := map[string][]repro.DistOption{
		"chan-explicit": {repro.WithChanTransport()},
		"tcp":           {repro.WithTCPTransport()},
		"tcp+faults": {repro.WithTCPTransport(),
			repro.WithFaults(repro.FaultPlan{Seed: 7, DropProb: 0.3, DupProb: 0.3,
				MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond, Reorder: true}),
			repro.WithStragglerDeadline(10 * time.Millisecond)},
		"chan+faults": {repro.WithFaults(repro.FaultPlan{Seed: 8, DropProb: 0.4,
			RetryDelay: 100 * time.Microsecond}),
			repro.WithStragglerDeadline(10 * time.Millisecond)},
	}
	for name, opts := range optSets {
		t.Run(name, func(t *testing.T) {
			for _, topo := range []repro.Topology{repro.Binomial, repro.Chain, repro.Star} {
				got, err := repro.DistributedSum(shards, 2, topo, opts...)
				if err != nil {
					t.Fatalf("%v: %v", topo, err)
				}
				if math.Float64bits(got) != want {
					t.Fatalf("%v = %016x, want %016x", topo, math.Float64bits(got), want)
				}
			}
		})
	}
}

// TestDistributedGroupBySumOverTCP: the GROUP BY shuffle over real
// sockets with faults matches the single-machine operator bit for bit.
func TestDistributedGroupBySumOverTCP(t *testing.T) {
	const n = 10000
	keys := workload.Keys(31, n, 300)
	vals := workload.Values64(32, n, workload.MixedMag)
	want := repro.GroupBySum(keys, vals, &repro.GroupByOptions{Groups: 300})

	lk := make([][]uint32, 4)
	lv := make([][]float64, 4)
	for i := range keys {
		d := i % 4
		lk[d] = append(lk[d], keys[i])
		lv[d] = append(lv[d], vals[i])
	}
	got, err := repro.DistributedGroupBySum(lk, lv, 2,
		repro.WithTCPTransport(),
		repro.WithFaults(repro.FaultPlan{Seed: 11, DupProb: 0.4, MaxDelay: 200 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || math.Float64bits(got[i].Sum) != math.Float64bits(want[i].Sum) {
			t.Fatalf("group[%d] mismatch over TCP with faults", i)
		}
	}
}

// TestDistributedChunkedOptions: the facade's chunking options — a
// chunk payload small enough that every message travels multi-chunk,
// over TCP with a hostile fault plan — change nothing about the result
// bits, and an undersized reassembly budget surfaces ErrChunkBudget.
func TestDistributedChunkedOptions(t *testing.T) {
	const n = 9000
	keys := workload.Keys(81, n, 700)
	vals := workload.Values64(82, n, workload.MixedMag)
	want := repro.GroupBySum(keys, vals, &repro.GroupByOptions{Groups: 700})

	lk := make([][]uint32, 3)
	lv := make([][]float64, 3)
	for i := range keys {
		d := i % 3
		lk[d] = append(lk[d], keys[i])
		lv[d] = append(lv[d], vals[i])
	}
	got, err := repro.DistributedGroupBySum(lk, lv, 2,
		repro.WithTCPTransport(),
		repro.WithMaxChunkPayload(2048),
		repro.WithFaults(repro.FaultPlan{Seed: 13, DropProb: 0.2, DupProb: 0.2, Reorder: true,
			MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond}),
		repro.WithStragglerDeadline(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || math.Float64bits(got[i].Sum) != math.Float64bits(want[i].Sum) {
			t.Fatalf("group[%d] mismatch under chunked TCP with faults", i)
		}
	}

	// A reassembly budget below the shuffle payload size fails loudly
	// with the matchable sentinel instead of hanging or truncating.
	_, err = repro.DistributedGroupBySum(lk, lv, 2,
		repro.WithMaxChunkPayload(1024),
		repro.WithReassemblyBudget(8<<10))
	if !errors.Is(err, repro.ErrChunkBudget) {
		t.Fatalf("got %v, want ErrChunkBudget", err)
	}
}

// TestDistributedSumErrors: the facade surfaces the dist error paths
// as matchable re-exported sentinels.
func TestDistributedSumErrors(t *testing.T) {
	if _, err := repro.DistributedSum(nil, 1, repro.Binomial); !errors.Is(err, repro.ErrNoShards) {
		t.Errorf("empty cluster: got %v, want ErrNoShards", err)
	}
	if _, err := repro.DistributedSum([][]float64{{1}}, 0, repro.Star); !errors.Is(err, repro.ErrWorkers) {
		t.Errorf("zero workers: got %v, want ErrWorkers", err)
	}
	if _, err := repro.DistributedSum([][]float64{{1}}, 1, repro.Topology(7)); !errors.Is(err, repro.ErrTopology) {
		t.Errorf("bad topology: got %v, want ErrTopology", err)
	}
	if _, err := repro.DistributedGroupBySum([][]uint32{{1}}, [][]float64{{1}, {2}}, 1); !errors.Is(err, repro.ErrShardMismatch) {
		t.Errorf("mismatched shards: got %v, want ErrShardMismatch", err)
	}
}
