package repro_test

import (
	"errors"
	"math"
	"os"
	"testing"
	"time"

	"repro"
	"repro/internal/dist/proc"
	"repro/internal/workload"
)

// TestMain arms the multi-process facade tests: when this test binary
// is re-executed as a spawned cluster worker (WithProcessCluster's
// default spawn mode), it becomes that worker instead of running the
// tests.
func TestMain(m *testing.M) {
	proc.MaybeWorkerMain()
	os.Exit(m.Run())
}

// TestDistributedSumProcessCluster: WithProcessCluster carries exactly
// the bits of the single-machine Sum across real worker processes.
func TestDistributedSumProcessCluster(t *testing.T) {
	const n = 8000
	vals := workload.Values64(37, n, workload.MixedMag)
	want := math.Float64bits(repro.Sum(vals))

	shards := make([][]float64, 3)
	for i, v := range vals {
		shards[i%3] = append(shards[i%3], v)
	}
	got, err := repro.DistributedSum(shards, 2, repro.Binomial,
		repro.WithProcessCluster(3), repro.WithStragglerDeadline(250*time.Millisecond))
	if err != nil {
		t.Fatalf("DistributedSum(WithProcessCluster): %v", err)
	}
	if math.Float64bits(got) != want {
		t.Errorf("process cluster sum = %016x, want %016x", math.Float64bits(got), want)
	}
}

// TestDistributedGroupBySumProcessCluster: the multi-process GROUP BY,
// forced into multi-chunk shuffle streams, matches the single-machine
// GroupBySum bit for bit.
func TestDistributedGroupBySumProcessCluster(t *testing.T) {
	const n = 8000
	vals := workload.Values64(41, n, workload.MixedMag)
	keys := workload.Keys(43, n, 512)
	want := repro.GroupBySum(keys, vals, nil)

	sk := make([][]uint32, 2)
	sv := make([][]float64, 2)
	for i := range keys {
		sk[i%2] = append(sk[i%2], keys[i])
		sv[i%2] = append(sv[i%2], vals[i])
	}
	got, err := repro.DistributedGroupBySum(sk, sv, 2,
		repro.WithProcessCluster(2), repro.WithMaxChunkPayload(2048),
		repro.WithStragglerDeadline(250*time.Millisecond))
	if err != nil {
		t.Fatalf("DistributedGroupBySum(WithProcessCluster): %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || math.Float64bits(got[i].Sum) != math.Float64bits(want[i].Sum) {
			t.Fatalf("group %d: (%d, %016x), want (%d, %016x)",
				i, got[i].Key, math.Float64bits(got[i].Sum), want[i].Key, math.Float64bits(want[i].Sum))
		}
	}
}

// TestDistOptionValidation: non-positive option arguments fail the
// operation immediately with ErrConfig — at the call that made the
// mistake, not deep inside a run.
func TestDistOptionValidation(t *testing.T) {
	shards := [][]float64{{1, 2}, {3}}
	keys := [][]uint32{{1, 2}, {3}}
	cases := []struct {
		name string
		opt  repro.DistOption
	}{
		{"WithMaxChunkPayload(0)", repro.WithMaxChunkPayload(0)},
		{"WithMaxChunkPayload(-4096)", repro.WithMaxChunkPayload(-4096)},
		{"WithReassemblyBudget(0)", repro.WithReassemblyBudget(0)},
		{"WithReassemblyBudget(-1)", repro.WithReassemblyBudget(-1)},
		{"WithProcessCluster(0)", repro.WithProcessCluster(0)},
		{"WithProcessCluster(-2)", repro.WithProcessCluster(-2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := repro.DistributedSum(shards, 1, repro.Binomial, tc.opt); !errors.Is(err, repro.ErrConfig) {
				t.Errorf("DistributedSum: err = %v, want ErrConfig", err)
			}
			if _, err := repro.DistributedGroupBySum(keys, shards, 1, tc.opt); !errors.Is(err, repro.ErrConfig) {
				t.Errorf("DistributedGroupBySum: err = %v, want ErrConfig", err)
			}
		})
	}

	// Worker counts are validated the same way they always were —
	// before anything runs.
	if _, err := repro.DistributedSum(shards, 0, repro.Binomial); !errors.Is(err, repro.ErrWorkers) {
		t.Errorf("workers=0: err = %v, want ErrWorkers", err)
	}
	if _, err := repro.DistributedSum(shards, -1, repro.Binomial, repro.WithProcessCluster(2)); !errors.Is(err, repro.ErrWorkers) {
		t.Errorf("workers=-1 (procs): err = %v, want ErrWorkers", err)
	}
}
