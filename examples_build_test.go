package repro_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesBuild compiles every package under examples/. Example
// binaries are main packages, so nothing else imports them and a broken
// import (like the once-missing repro/internal/dist) would not fail any
// unit test on its own — this smoke test makes such a gap a test
// failure, not just a `go build ./...` failure someone has to remember
// to run.
func TestExamplesBuild(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not in PATH: %v", err)
	}
	list := exec.Command("go", "list", "./examples/...")
	out, err := list.Output()
	if err != nil {
		t.Fatalf("go list ./examples/...: %v", err)
	}
	pkgs := strings.Fields(string(out))
	if len(pkgs) == 0 {
		t.Fatal("no packages found under examples/")
	}
	// -o to a temp dir so example binaries never land in the repo.
	build := exec.Command("go", append([]string{"build", "-o", t.TempDir()}, pkgs...)...)
	if msg, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build %s failed: %v\n%s", strings.Join(pkgs, " "), err, msg)
	}
}
