package repro

import (
	"repro/internal/serve"
	"repro/internal/workload"
)

// The serving layer: a long-lived query server over shared resident
// data. Reproducibility is what makes it work as a serving system —
// every query result is a pure function of (query, data version), so
// the result cache is correct by construction, and the local engine
// and the distributed cluster answer with identical bytes. See
// cmd/reproserve for the HTTP binary on top of this API.

// ServeDataset is an immutable resident table the server answers
// queries over: uint32 group keys plus float64 value columns, held
// simultaneously in row order (window queries), radix-partitioned
// (local GROUP BY engine), and sharded (distributed backend) layouts.
type ServeDataset = serve.Dataset

// ServeDatasetOptions configures resident-data loading: the local
// partition fan-out, the cluster size data is pre-sharded for, and the
// load-time partitioning parallelism.
type ServeDatasetOptions = serve.DatasetOptions

// Server answers concurrent aggregate queries over one ServeDataset
// with admission control (bounded executing queries plus a bounded,
// timeout-guarded wait queue), per-query memory budgets estimated
// before execution, and a result cache keyed by the canonical query
// encoding and the data version.
type Server = serve.Server

// ServerOptions configures a Server: concurrency and queue bounds, the
// per-query memory budget, cache capacity, and backend selection.
type ServerOptions = serve.Options

// ServerStats is a snapshot of a server's admission, cache, and
// concurrency counters.
type ServerStats = serve.Stats

// ServeQuery is one serving-layer query: a multi-aggregate GROUP BY
// over the AggSpec catalog, or a per-row window total.
type ServeQuery = serve.Query

// ServeResult is one answered query: the canonical result bytes (a
// pure function of query and data version, identical for every backend
// and execution) plus decode helpers.
type ServeResult = serve.Result

// Typed errors of the serving layer, matchable with errors.Is.
var (
	// ErrBadQuery: unknown kind, unregistered aggregate, out-of-range
	// column, or invalid level count.
	ErrBadQuery = serve.ErrBadQuery
	// ErrOverBudget: the query's estimated working memory exceeds the
	// server's per-query budget; rejected before execution.
	ErrOverBudget = serve.ErrOverBudget
	// ErrOverloaded: all execution slots busy and the wait queue full.
	ErrOverloaded = serve.ErrOverloaded
	// ErrQueueTimeout: the query waited out the admission queue timeout.
	ErrQueueTimeout = serve.ErrQueueTimeout
	// ErrServerClosed: the server has been closed.
	ErrServerClosed = serve.ErrServerClosed
)

// NewServer starts a query server over ds. Distributed-backend
// interconnect options (WithTCPTransport, WithFaults, …) apply to
// every query the server routes through the in-process tuple plane.
// To serve over real worker processes, set ServerOptions.Cluster to a
// NewCluster handle instead of using WithProcessCluster (which the
// serving layer rejects): GROUP BY queries then run as cluster jobs
// and the served bytes are identical to every other backend's.
func NewServer(ds *ServeDataset, opts ServerOptions, distOpts ...DistOption) (*Server, error) {
	for _, o := range distOpts {
		o(&opts.Dist)
	}
	return serve.NewServer(ds, opts)
}

// NewServeDataset loads keys and value columns as resident serving
// data. The slices are retained and must not be mutated afterwards.
func NewServeDataset(keys []uint32, cols [][]float64, opts ServeDatasetOptions) (*ServeDataset, error) {
	return serve.NewDataset(keys, cols, opts)
}

// NewSyntheticServeDataset loads a deterministic synthetic dataset: n
// rows with keys uniform over [0, ngroups) and ncols mixed-magnitude
// value columns derived from seed.
func NewSyntheticServeDataset(seed uint64, n int, ngroups uint32, ncols int, opts ServeDatasetOptions) (*ServeDataset, error) {
	return serve.SyntheticDataset(seed, n, ngroups, ncols, workload.MixedMag, opts)
}

// NewQ1ServeDataset loads TPC-H lineitem at the given scale factor and
// evaluates Q1's scan side into resident serving data; GroupByQuery
// over tpch.Q1Specs reproduces the eight Q1 aggregates.
func NewQ1ServeDataset(sf float64, seed uint64, opts ServeDatasetOptions) (*ServeDataset, error) {
	return serve.Q1Dataset(sf, seed, opts)
}

// GroupByQuery returns a GROUP BY query over the given aggregates.
func GroupByQuery(specs ...AggSpec) ServeQuery { return serve.GroupBy(specs...) }

// WindowTotalsQuery returns the window aggregate SUM(col) OVER
// (PARTITION BY key): one total per input row, in row order.
func WindowTotalsQuery(col, levels int) ServeQuery { return serve.WindowTotals(col, levels) }
