package repro

import "repro/internal/obs"

// MetricsSnapshot is a point-in-time read of the process-global metric
// registry: sample name → value, Prometheus-style. Counters and gauges
// appear under their registered name; histograms contribute _count and
// _sum samples. Use Sum to total a labelled family by name prefix.
type MetricsSnapshot = obs.Snapshot

// Observe reads every process-global metric at once — the data-plane
// wire counters (repro_dist_*), the cluster control plane
// (repro_proc_*), and anything else instrumented against the default
// registry. The read is lock-free per metric and safe to call at any
// frequency; it sees whatever the atomics hold at that instant.
//
// Serving-layer metrics (serve_*) are per-Server, not global: read
// those from the server's own registry (reproserve exposes the union
// of both on /metrics).
func Observe() MetricsSnapshot {
	return obs.Default.Snapshot()
}
