package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/1000 times", same)
	}
}

func TestUint32nRange(t *testing.T) {
	f := func(seed uint64, nRaw uint32) bool {
		n := nRaw%1000 + 1
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if r.Uint32n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeysUniform(t *testing.T) {
	const n, g = 100000, 16
	ks := Keys(7, n, g)
	var counts [g]int
	for _, k := range ks {
		if k >= g {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	for i, c := range counts {
		if c < n/g*8/10 || c > n/g*12/10 {
			t.Errorf("group %d has %d keys, expected ≈ %d", i, c, n/g)
		}
	}
}

func TestValuesDistributions(t *testing.T) {
	vs := Values64(1, 100000, Uniform12)
	sum := 0.0
	for _, v := range vs {
		if v < 1 || v >= 2 {
			t.Fatalf("U[1,2) value %v out of range", v)
		}
		sum += v
	}
	if mean := sum / float64(len(vs)); math.Abs(mean-1.5) > 0.01 {
		t.Errorf("U[1,2) mean = %v", mean)
	}

	vs = Values64(2, 100000, Exp1)
	sum = 0
	for _, v := range vs {
		if v < 0 {
			t.Fatalf("Exp(1) value %v negative", v)
		}
		sum += v
	}
	if mean := sum / float64(len(vs)); math.Abs(mean-1.0) > 0.02 {
		t.Errorf("Exp(1) mean = %v", mean)
	}

	for _, v := range Values64(3, 1000, MixedMag) {
		if math.Abs(v) > math.Ldexp(1, 12) {
			t.Errorf("MixedMag value %v out of range", v)
		}
	}
}

func TestValues32(t *testing.T) {
	for _, v := range Values32(4, 1000, Uniform12) {
		if v < 1 || v >= 2 {
			t.Fatalf("float32 U[1,2) value %v out of range", v)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i
	}
	Shuffle(9, xs)
	seen := make([]bool, len(xs))
	moved := 0
	for i, x := range xs {
		if seen[x] {
			t.Fatal("duplicate after shuffle")
		}
		seen[x] = true
		if x != i {
			moved++
		}
	}
	if moved < len(xs)/2 {
		t.Errorf("shuffle barely moved anything (%d)", moved)
	}
}

func TestShufflePairsKeepsPairs(t *testing.T) {
	ks := []uint32{1, 2, 3, 4, 5}
	vs := []float64{10, 20, 30, 40, 50}
	ShufflePairs(11, ks, vs)
	for i := range ks {
		if float64(ks[i])*10 != vs[i] {
			t.Fatalf("pair broken at %d: %d/%v", i, ks[i], vs[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	ShufflePairs(1, []uint32{1}, []float64{1, 2})
}

func TestZipfSkewed(t *testing.T) {
	ks := ZipfKeys(13, 100000, 1024, 1.2)
	var count0 int
	for _, k := range ks {
		if k >= 1024 {
			t.Fatalf("zipf key %d out of range", k)
		}
		if k == 0 {
			count0++
		}
	}
	// The hottest key must be far above uniform share (≈ 98).
	if count0 < 1000 {
		t.Errorf("zipf key 0 count %d not skewed", count0)
	}
}

func TestDistinctGroups(t *testing.T) {
	if g := DistinctGroups([]uint32{1, 1, 2, 9, 2}); g != 3 {
		t.Errorf("DistinctGroups = %d", g)
	}
	if g := DistinctGroups(nil); g != 0 {
		t.Errorf("DistinctGroups(nil) = %d", g)
	}
}

func TestIntValues(t *testing.T) {
	for _, v := range IntValues(5, 1000, 100) {
		if v < 1 || v > 100 {
			t.Fatalf("IntValues out of range: %d", v)
		}
	}
}
