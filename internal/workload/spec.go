package workload

import (
	"encoding/binary"
	"fmt"
)

// Spec describes a synthetic dataset declaratively: row count, key
// distribution, and one or more value columns, each fully determined
// by a seed and a ValueDist. A Spec is what travels in a cluster job
// instead of the rows themselves — dispatch cost is the size of this
// struct, independent of Rows — and every receiver that materializes
// the same Spec gets bit-identical data, because the generators are
// pure functions of their seeds.
type Spec struct {
	// Rows is the total dataset size (all nodes together).
	Rows int
	// Groups is the key domain [0, Groups) of the uniform key column;
	// 0 means no key column (a reduction input).
	Groups uint32
	// KeySeed drives key generation (unused when Groups == 0).
	KeySeed uint64
	// Cols describes the value columns, in column order.
	Cols []ColSpec
}

// ColSpec describes one value column of a Spec.
type ColSpec struct {
	Seed uint64
	Dist ValueDist
}

// specVersion versions the canonical Spec encoding.
const specVersion = 1

// maxSpecCols bounds the column count a decoded Spec may declare,
// mirroring the job-payload column cap of the cluster runtime.
const maxSpecCols = 256

// Validate checks the spec's shape.
func (s Spec) Validate() error {
	if s.Rows < 0 {
		return fmt.Errorf("workload: spec declares %d rows", s.Rows)
	}
	if len(s.Cols) < 1 || len(s.Cols) > maxSpecCols {
		return fmt.Errorf("workload: spec declares %d columns, want 1..%d", len(s.Cols), maxSpecCols)
	}
	for i, c := range s.Cols {
		switch c.Dist {
		case Uniform12, Exp1, MixedMag:
		default:
			return fmt.Errorf("workload: spec column %d names unknown distribution %d", i, int(c.Dist))
		}
	}
	return nil
}

// AppendBinary appends the canonical encoding of s to b: equal specs
// encode to equal bytes, so the encoding can ride in digested cluster
// state. Layout (little-endian): version byte, 8B rows, 4B groups,
// 8B key seed, 2B column count, then per column 8B seed + 1B dist.
func (s Spec) AppendBinary(b []byte) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return b, err
	}
	var tmp [8]byte
	b = append(b, specVersion)
	binary.LittleEndian.PutUint64(tmp[:], uint64(int64(s.Rows)))
	b = append(b, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], s.Groups)
	b = append(b, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], s.KeySeed)
	b = append(b, tmp[:]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(s.Cols)))
	b = append(b, tmp[:2]...)
	for _, c := range s.Cols {
		binary.LittleEndian.PutUint64(tmp[:], c.Seed)
		b = append(b, tmp[:]...)
		b = append(b, byte(c.Dist))
	}
	return b, nil
}

// DecodeSpec inverts AppendBinary, consuming exactly len(b) bytes and
// validating the decoded shape against hostile input.
func DecodeSpec(b []byte) (Spec, error) {
	var s Spec
	if len(b) < 23 {
		return s, fmt.Errorf("workload: truncated spec encoding (%d bytes)", len(b))
	}
	if b[0] != specVersion {
		return s, fmt.Errorf("workload: spec encoding version %d, this build speaks %d", b[0], specVersion)
	}
	s.Rows = int(int64(binary.LittleEndian.Uint64(b[1:])))
	s.Groups = binary.LittleEndian.Uint32(b[9:])
	s.KeySeed = binary.LittleEndian.Uint64(b[13:])
	ncols := int(binary.LittleEndian.Uint16(b[21:]))
	b = b[23:]
	if ncols < 1 || ncols > maxSpecCols {
		return s, fmt.Errorf("workload: spec declares %d columns, want 1..%d", ncols, maxSpecCols)
	}
	if len(b) != ncols*9 {
		return s, fmt.Errorf("workload: spec declares %d columns but carries %d trailing bytes", ncols, len(b))
	}
	s.Cols = make([]ColSpec, ncols)
	for i := range s.Cols {
		s.Cols[i].Seed = binary.LittleEndian.Uint64(b[i*9:])
		s.Cols[i].Dist = ValueDist(b[i*9+8])
	}
	return s, s.Validate()
}

// Materialize generates the full dataset the spec describes: the key
// column (nil when Groups == 0) and every value column. Bit-identical
// on every machine and every call.
func (s Spec) Materialize() (keys []uint32, cols [][]float64, err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if s.Groups > 0 {
		keys = Keys(s.KeySeed, s.Rows, s.Groups)
	}
	cols = make([][]float64, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = Values64(c.Seed, s.Rows, c.Dist)
	}
	return keys, cols, nil
}
