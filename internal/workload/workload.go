// Package workload generates the synthetic inputs of the paper's
// evaluation (Section VI-A): ⟨key, value⟩ pairs with uint32 keys drawn
// uniformly at random from [0, ngroups) and floating-point values from
// U[1,2) or Exp(1), plus deterministic permutations, Zipf-skewed keys
// (an extension; the paper cites skew handling as orthogonal), and the
// integer values used by the DECIMAL experiments.
//
// All generators are driven by an explicit 64-bit seed through a
// SplitMix64 PRNG, so every experiment is exactly rerunnable.
package workload

import "math"

// RNG is a SplitMix64 pseudo-random number generator. It is tiny, fast,
// deterministic across platforms, and good enough for workload synthesis
// (it passes BigCrush as the seeding function of xoshiro).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint32n(n uint32) uint32 {
	// Lemire's multiply-shift range reduction.
	return uint32((uint64(uint32(r.Uint64())) * uint64(n)) >> 32)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Keys returns n keys drawn uniformly at random from [0, ngroups).
// As in the paper, when ngroups approaches n the number of *distinct*
// groups in the output is smaller than ngroups.
func Keys(seed uint64, n int, ngroups uint32) []uint32 {
	r := NewRNG(seed)
	ks := make([]uint32, n)
	for i := range ks {
		ks[i] = r.Uint32n(ngroups)
	}
	return ks
}

// ZipfKeys returns n keys over [0, ngroups) with Zipf(s) skew,
// via rejection-inversion (Hörmann). s > 1 required for a proper
// distribution; s in (0,1] uses a simple cutoff approximation adequate
// for benchmarks.
func ZipfKeys(seed uint64, n int, ngroups uint32, s float64) []uint32 {
	r := NewRNG(seed)
	ks := make([]uint32, n)
	// Inverse-CDF sampling over a precomputed harmonic table for small
	// domains; for large domains fall back to a power-law transform.
	if ngroups <= 1<<16 {
		cdf := make([]float64, ngroups)
		acc := 0.0
		for i := uint32(0); i < ngroups; i++ {
			acc += 1 / math.Pow(float64(i+1), s)
			cdf[i] = acc
		}
		total := cdf[ngroups-1]
		for i := range ks {
			u := r.Float64() * total
			lo, hi := 0, int(ngroups)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			ks[i] = uint32(lo)
		}
		return ks
	}
	for i := range ks {
		u := r.Float64()
		// Approximate power-law: k ∝ u^(−1/(s−1)) clipped to the domain.
		x := math.Pow(u, -1/math.Max(s-1, 0.1))
		k := uint64(x) % uint64(ngroups)
		ks[i] = uint32(k)
	}
	return ks
}

// ValueDist selects a distribution for floating-point values.
type ValueDist int

// Value distributions used in the paper's accuracy experiments
// (Table II) and performance experiments.
const (
	// Uniform12 draws from U[1, 2) — every value has exponent 0.
	Uniform12 ValueDist = iota
	// Exp1 draws from Exp(λ=1).
	Exp1
	// MixedMag draws signed values spanning ~24 binades, a stand-in for
	// scientific data with mixed magnitudes.
	MixedMag
)

// String returns the distribution name used in reports.
func (d ValueDist) String() string {
	switch d {
	case Uniform12:
		return "U[1,2)"
	case Exp1:
		return "Exp(1)"
	case MixedMag:
		return "Mixed"
	default:
		return "?"
	}
}

// Values64 returns n float64 values from the given distribution.
func Values64(seed uint64, n int, dist ValueDist) []float64 {
	r := NewRNG(seed)
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = value64(r, dist)
	}
	return vs
}

// Values32 returns n float32 values from the given distribution.
func Values32(seed uint64, n int, dist ValueDist) []float32 {
	r := NewRNG(seed)
	vs := make([]float32, n)
	for i := range vs {
		vs[i] = float32(value64(r, dist))
	}
	return vs
}

func value64(r *RNG, dist ValueDist) float64 {
	switch dist {
	case Uniform12:
		return 1 + r.Float64()
	case Exp1:
		u := r.Float64()
		if u == 0 {
			u = 0x1p-53
		}
		return -math.Log(u)
	case MixedMag:
		return (r.Float64() - 0.5) * math.Ldexp(1, r.Intn(24)-12)
	default:
		panic("workload: unknown distribution")
	}
}

// IntValues returns n integer values in [1, maxVal] for the DECIMAL
// experiments (fixed-point cents and the like).
func IntValues(seed uint64, n int, maxVal int64) []int64 {
	r := NewRNG(seed)
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = 1 + int64(r.Uint64()%uint64(maxVal))
	}
	return vs
}

// Shuffle permutes xs in place with a Fisher–Yates shuffle driven by
// seed. Used to model physical reordering of the storage layer
// (Algorithm 1 of the paper).
func Shuffle[T any](seed uint64, xs []T) {
	r := NewRNG(seed)
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// ShufflePairs permutes keys and values with the same permutation,
// keeping pairs intact.
func ShufflePairs[K, V any](seed uint64, keys []K, vals []V) {
	if len(keys) != len(vals) {
		panic("workload: keys and values must have equal length")
	}
	r := NewRNG(seed)
	for i := len(keys) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		keys[i], keys[j] = keys[j], keys[i]
		vals[i], vals[j] = vals[j], vals[i]
	}
}

// DistinctGroups returns the number of distinct keys in ks.
// For ngroups ≈ n the paper notes the actual group count is below
// ngroups; reports use this to label results.
func DistinctGroups(ks []uint32) int {
	seen := make(map[uint32]struct{}, 1024)
	for _, k := range ks {
		seen[k] = struct{}{}
	}
	return len(seen)
}
