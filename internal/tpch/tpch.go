// Package tpch provides a deterministic, dbgen-like generator for the
// TPC-H lineitem columns needed by Query 1, and the Q1 plan itself on
// the internal column-store engine. Following the paper's modified
// benchmark (Section VI-E), all DECIMAL columns are generated as DOUBLE.
package tpch

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/workload"
)

// Dates are day numbers with day 0 = 1992-01-01 (the earliest TPC-H
// order date). The data spans ~7 years.
const (
	// ShipDateMax is the largest generated ship date (≈ 1998-12-01).
	ShipDateMax = 2526
	// Q1CutoffDate is 1998-12-01 − 90 days, the Q1 predicate constant
	// (the paper runs the standard Q1 predicate DELTA=90).
	Q1CutoffDate = ShipDateMax - 90
	// currentDate is dbgen's 1995-06-17, which splits returnflag and
	// linestatus populations.
	currentDate = 1264
)

// LineitemRowsPerSF is the TPC-H lineitem cardinality per scale factor.
const LineitemRowsPerSF = 6_001_215

// GenLineitem generates a lineitem table with the Q1-relevant columns
// at the given scale factor (rows = sf · 6,001,215, minimum 1000).
// Generation is deterministic in seed.
func GenLineitem(sf float64, seed uint64) *engine.Table {
	n := int(sf * LineitemRowsPerSF)
	if n < 1000 {
		n = 1000
	}
	return GenLineitemRows(n, seed)
}

// GenLineitemRows generates a lineitem table with exactly rows rows —
// the row-count-addressed form the cluster runtime's declarative job
// sources use, so a worker materializing a slice of "rows lineitem
// rows at seed s" reproduces the supervisor's table bit for bit.
func GenLineitemRows(rows int, seed uint64) *engine.Table {
	n := rows
	r := workload.NewRNG(seed)

	quantity := make(engine.Float64Column, n)
	extPrice := make(engine.Float64Column, n)
	discount := make(engine.Float64Column, n)
	tax := make(engine.Float64Column, n)
	returnflag := make(engine.ByteColumn, n)
	linestatus := make(engine.ByteColumn, n)
	shipdate := make(engine.Int32Column, n)

	for i := 0; i < n; i++ {
		q := 1 + int(r.Uint32n(50))
		quantity[i] = float64(q)
		// dbgen: extendedprice = quantity · part-derived unit price;
		// approximate with a unit price in [900, 1941).
		extPrice[i] = float64(q) * (900 + float64(r.Uint32n(104100))/100)
		discount[i] = float64(r.Uint32n(11)) / 100 // 0.00 .. 0.10
		tax[i] = float64(r.Uint32n(9)) / 100       // 0.00 .. 0.08
		sd := int32(r.Uint32n(ShipDateMax + 1))
		shipdate[i] = sd
		if sd <= currentDate {
			if r.Uint32n(2) == 0 {
				returnflag[i] = 'R'
			} else {
				returnflag[i] = 'A'
			}
			linestatus[i] = 'F'
		} else {
			returnflag[i] = 'N'
			if sd > currentDate+30 {
				linestatus[i] = 'O'
			} else if r.Uint32n(2) == 0 {
				linestatus[i] = 'O'
			} else {
				linestatus[i] = 'F'
			}
		}
	}

	t := engine.NewTable("lineitem")
	t.MustAddColumn("l_quantity", quantity)
	t.MustAddColumn("l_extendedprice", extPrice)
	t.MustAddColumn("l_discount", discount)
	t.MustAddColumn("l_tax", tax)
	t.MustAddColumn("l_returnflag", returnflag)
	t.MustAddColumn("l_linestatus", linestatus)
	t.MustAddColumn("l_shipdate", shipdate)
	return t
}

// Q1Group is one output row of Query 1.
type Q1Group struct {
	ReturnFlag   byte
	LineStatus   byte
	SumQty       float64
	SumBasePrice float64
	SumDiscPrice float64
	SumCharge    float64
	AvgQty       float64
	AvgPrice     float64
	AvgDisc      float64
	Count        int64
}

// q1NumGroups is the group-id domain: returnflag ∈ {A,N,R} ×
// linestatus ∈ {F,O}.
const q1NumGroups = 6

func q1GroupID(flag, status byte) uint32 {
	var f uint32
	switch flag {
	case 'A':
		f = 0
	case 'N':
		f = 1
	default: // 'R'
		f = 2
	}
	var s uint32
	if status == 'O' {
		s = 1
	}
	return f*2 + s
}

func q1GroupOf(id uint32) (flag, status byte) {
	flag = [3]byte{'A', 'N', 'R'}[id/2]
	status = [2]byte{'F', 'O'}[id%2]
	return flag, status
}

// RunQ1 executes TPC-H Query 1 against the lineitem table with the
// given SUM kernel configuration. It returns the result groups (ordered
// by returnflag, linestatus) and the per-operator profile.
func RunQ1(t *engine.Table, cfg engine.GroupByConfig) ([]Q1Group, *engine.Profiler, error) {
	prof := engine.NewProfiler()

	shipdate, err := t.Int32("l_shipdate")
	if err != nil {
		return nil, nil, err
	}
	quantityCol, err := t.Float64("l_quantity")
	if err != nil {
		return nil, nil, err
	}
	priceCol, err := t.Float64("l_extendedprice")
	if err != nil {
		return nil, nil, err
	}
	discCol, err := t.Float64("l_discount")
	if err != nil {
		return nil, nil, err
	}
	taxCol, err := t.Float64("l_tax")
	if err != nil {
		return nil, nil, err
	}
	flagCol, err := t.Byte("l_returnflag")
	if err != nil {
		return nil, nil, err
	}
	statusCol, err := t.Byte("l_linestatus")
	if err != nil {
		return nil, nil, err
	}

	// WHERE l_shipdate <= cutoff.
	var sel []int32
	prof.Measure("select", func() {
		sel = engine.SelectInt32LE(shipdate, Q1CutoffDate)
	})

	// Gather the payload columns through the selection vector.
	var qty, price, disc, tax []float64
	var flags, statuses []byte
	prof.Measure("gather", func() {
		qty = engine.GatherFloat64(quantityCol, sel)
		price = engine.GatherFloat64(priceCol, sel)
		disc = engine.GatherFloat64(discCol, sel)
		tax = engine.GatherFloat64(taxCol, sel)
		flags = engine.GatherByte(flagCol, sel)
		statuses = engine.GatherByte(statusCol, sel)
	})

	// Projections: disc_price = price·(1−disc); charge = disc_price·(1+tax).
	discPrice := make([]float64, len(sel))
	charge := make([]float64, len(sel))
	negDisc := make([]float64, len(sel))
	prof.Measure("project", func() {
		engine.Neg(negDisc, disc)
		engine.MulScalarAdd(discPrice, price, negDisc, 1)
		engine.MulScalarAdd(charge, discPrice, tax, 1)
	})

	// Group-id construction (domain-encoded key).
	groups := make([]uint32, len(sel))
	prof.Measure("groupids", func() {
		for i := range groups {
			groups[i] = q1GroupID(flags[i], statuses[i])
		}
	})

	// Aggregations (the operator the paper patches in MonetDB).
	sumQty, err := engine.GroupedSum(groups, q1NumGroups, qty, cfg, prof)
	if err != nil {
		return nil, nil, err
	}
	sumPrice, err := engine.GroupedSum(groups, q1NumGroups, price, cfg, prof)
	if err != nil {
		return nil, nil, err
	}
	sumDiscPrice, err := engine.GroupedSum(groups, q1NumGroups, discPrice, cfg, prof)
	if err != nil {
		return nil, nil, err
	}
	sumCharge, err := engine.GroupedSum(groups, q1NumGroups, charge, cfg, prof)
	if err != nil {
		return nil, nil, err
	}
	sumDisc, err := engine.GroupedSum(groups, q1NumGroups, disc, cfg, prof)
	if err != nil {
		return nil, nil, err
	}
	counts := engine.GroupedCount(groups, q1NumGroups, prof)

	var out []Q1Group
	prof.Measure("result", func() {
		for g := uint32(0); g < q1NumGroups; g++ {
			if counts[g] == 0 {
				continue
			}
			flag, status := q1GroupOf(g)
			n := float64(counts[g])
			out = append(out, Q1Group{
				ReturnFlag:   flag,
				LineStatus:   status,
				SumQty:       sumQty[g],
				SumBasePrice: sumPrice[g],
				SumDiscPrice: sumDiscPrice[g],
				SumCharge:    sumCharge[g],
				AvgQty:       sumQty[g] / n,
				AvgPrice:     sumPrice[g] / n,
				AvgDisc:      sumDisc[g] / n,
				Count:        counts[g],
			})
		}
	})
	return out, prof, nil
}

// FormatQ1 renders a result row like the TPC-H reference output.
func FormatQ1(g Q1Group) string {
	return fmt.Sprintf("%c|%c|%.2f|%.2f|%.2f|%.2f|%.6f|%.6f|%.6f|%d",
		g.ReturnFlag, g.LineStatus, g.SumQty, g.SumBasePrice, g.SumDiscPrice,
		g.SumCharge, g.AvgQty, g.AvgPrice, g.AvgDisc, g.Count)
}
