package tpch

import (
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
)

func genSmall(t *testing.T) *engine.Table {
	t.Helper()
	return GenLineitem(0.002, 1) // ≈ 12k rows
}

func TestGenLineitemShape(t *testing.T) {
	tbl := genSmall(t)
	n := tbl.NumRows()
	if n < 10000 {
		t.Fatalf("rows = %d", n)
	}
	qty, err := tbl.Float64("l_quantity")
	if err != nil {
		t.Fatal(err)
	}
	price, _ := tbl.Float64("l_extendedprice")
	disc, _ := tbl.Float64("l_discount")
	tax, _ := tbl.Float64("l_tax")
	flag, _ := tbl.Byte("l_returnflag")
	status, _ := tbl.Byte("l_linestatus")
	ship, _ := tbl.Int32("l_shipdate")
	for i := 0; i < n; i++ {
		if qty[i] < 1 || qty[i] > 50 {
			t.Fatalf("quantity %v", qty[i])
		}
		if price[i] < 900 || price[i] > 50*2000 {
			t.Fatalf("price %v", price[i])
		}
		if disc[i] < 0 || disc[i] > 0.10 {
			t.Fatalf("discount %v", disc[i])
		}
		if tax[i] < 0 || tax[i] > 0.08 {
			t.Fatalf("tax %v", tax[i])
		}
		if flag[i] != 'A' && flag[i] != 'N' && flag[i] != 'R' {
			t.Fatalf("returnflag %c", flag[i])
		}
		if status[i] != 'O' && status[i] != 'F' {
			t.Fatalf("linestatus %c", status[i])
		}
		if ship[i] < 0 || ship[i] > ShipDateMax {
			t.Fatalf("shipdate %d", ship[i])
		}
		// dbgen invariants: N goes with post-currentdate shipping.
		if flag[i] == 'N' && ship[i] <= 1264 {
			t.Fatalf("N with early shipdate")
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	a := GenLineitem(0.001, 7)
	b := GenLineitem(0.001, 7)
	qa, _ := a.Float64("l_extendedprice")
	qb, _ := b.Float64("l_extendedprice")
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c := GenLineitem(0.001, 8)
	qc, _ := c.Float64("l_extendedprice")
	same := 0
	for i := range qa {
		if qa[i] == qc[i] {
			same++
		}
	}
	if same > len(qa)/100 {
		t.Error("different seeds produce near-identical data")
	}
}

func TestQ1AllKernelsAgree(t *testing.T) {
	tbl := genSmall(t)
	ref, prof, err := RunQ1(tbl, engine.GroupByConfig{Kind: engine.SumPlain})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) < 3 {
		t.Fatalf("Q1 groups = %d", len(ref))
	}
	if prof.Get("aggregation") <= 0 {
		t.Error("aggregation time not recorded")
	}
	total := int64(0)
	for _, g := range ref {
		total += g.Count
	}
	// Selectivity of shipdate <= cutoff ≈ 2437/2527 ≈ 96%.
	if total < int64(tbl.NumRows())*9/10 {
		t.Errorf("Q1 selected %d of %d rows", total, tbl.NumRows())
	}
	for _, kind := range []engine.SumKind{engine.SumRepro, engine.SumReproBuffered, engine.SumSorted} {
		got, _, err := RunQ1(tbl, engine.GroupByConfig{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%v: %d groups vs %d", kind, len(got), len(ref))
		}
		for i := range got {
			g, r := got[i], ref[i]
			if g.ReturnFlag != r.ReturnFlag || g.LineStatus != r.LineStatus || g.Count != r.Count {
				t.Fatalf("%v: group row mismatch", kind)
			}
			for _, pair := range [][2]float64{
				{g.SumQty, r.SumQty}, {g.SumBasePrice, r.SumBasePrice},
				{g.SumDiscPrice, r.SumDiscPrice}, {g.SumCharge, r.SumCharge},
				{g.AvgQty, r.AvgQty}, {g.AvgDisc, r.AvgDisc},
			} {
				if math.Abs(pair[0]-pair[1]) > 1e-6*math.Abs(pair[1])+1e-9 {
					t.Fatalf("%v: aggregate %v vs %v", kind, pair[0], pair[1])
				}
			}
		}
	}
}

func TestQ1ReproKernelPermutationStable(t *testing.T) {
	tbl := GenLineitem(0.001, 3)
	a, _, err := RunQ1(tbl, engine.GroupByConfig{Kind: engine.SumRepro, Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the table with rows in reverse physical order.
	rev := engine.NewTable("lineitem")
	for _, name := range tbl.Columns() {
		c, _ := tbl.Column(name)
		switch col := c.(type) {
		case engine.Float64Column:
			r := make(engine.Float64Column, len(col))
			for i := range col {
				r[len(col)-1-i] = col[i]
			}
			rev.MustAddColumn(name, r)
		case engine.Int32Column:
			r := make(engine.Int32Column, len(col))
			for i := range col {
				r[len(col)-1-i] = col[i]
			}
			rev.MustAddColumn(name, r)
		case engine.ByteColumn:
			r := make(engine.ByteColumn, len(col))
			for i := range col {
				r[len(col)-1-i] = col[i]
			}
			rev.MustAddColumn(name, r)
		}
	}
	b, _, err := RunQ1(rev, engine.GroupByConfig{Kind: engine.SumRepro, Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Float64bits(a[i].SumCharge) != math.Float64bits(b[i].SumCharge) ||
			math.Float64bits(a[i].SumDiscPrice) != math.Float64bits(b[i].SumDiscPrice) {
			t.Fatalf("repro Q1 changed under physical reordering (group %c%c)",
				a[i].ReturnFlag, a[i].LineStatus)
		}
	}
}

func TestQ1SortedSlower(t *testing.T) {
	tbl := genSmall(t)
	_, pPlain, err := RunQ1(tbl, engine.GroupByConfig{Kind: engine.SumPlain})
	if err != nil {
		t.Fatal(err)
	}
	_, pSorted, err := RunQ1(tbl, engine.GroupByConfig{Kind: engine.SumSorted})
	if err != nil {
		t.Fatal(err)
	}
	if pSorted.Total() < pPlain.Total() {
		t.Skip("timing noise: sorted faster than plain on tiny input")
	}
	if pSorted.Get("sort") == 0 {
		t.Error("sorted kernel recorded no sort time")
	}
}

func TestFormatQ1(t *testing.T) {
	s := FormatQ1(Q1Group{ReturnFlag: 'A', LineStatus: 'F', SumQty: 100.5, Count: 3})
	if !strings.HasPrefix(s, "A|F|100.50|") || !strings.HasSuffix(s, "|3") {
		t.Errorf("FormatQ1 = %q", s)
	}
}

func TestQ6KernelsAgreeAndReproduce(t *testing.T) {
	tbl := GenLineitem(0.002, 9)
	plain, prof, err := RunQ6(tbl, Q6Plain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain <= 0 {
		t.Fatalf("Q6 revenue = %v", plain)
	}
	if prof.Get("aggregation") <= 0 || prof.Get("select") <= 0 {
		t.Error("Q6 profile incomplete")
	}
	scalar, _, err := RunQ6(tbl, Q6Scalar, 3)
	if err != nil {
		t.Fatal(err)
	}
	vec, _, err := RunQ6(tbl, Q6Vec, 3)
	if err != nil {
		t.Fatal(err)
	}
	neum, _, err := RunQ6(tbl, Q6Neumaier, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(scalar) != math.Float64bits(vec) {
		t.Error("Q6 scalar and vec kernels disagree")
	}
	for _, v := range []float64{scalar, neum} {
		if math.Abs(v-plain) > 1e-6*plain {
			t.Errorf("Q6 kernel %v vs plain %v", v, plain)
		}
	}
}
