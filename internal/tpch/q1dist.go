package tpch

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/sqlagg"
)

// Distributed Q1: the same query as RunQ1, expressed as a spec list for
// the multi-aggregate GROUP BY plane. Q1Input evaluates the scan side
// (select, gather, project, group ids) into key and value columns,
// Q1Specs names the eight aggregates, and Q1FromTuples finalizes the
// tuples into Q1Group rows. Running the specs on the local engine, the
// goroutine cluster, or the process cluster yields bit-identical rows
// to RunQ1 at the same level count — Q1 is the proving workload of the
// pluggable aggregate catalog.

// Q1's value-column layout, as produced by Q1Input.
const (
	Q1ColQty       = 0 // l_quantity
	Q1ColPrice     = 1 // l_extendedprice
	Q1ColDiscPrice = 2 // price · (1 − discount)
	Q1ColCharge    = 3 // disc_price · (1 + tax)
	Q1ColDisc      = 4 // l_discount
	q1NumCols      = 5
)

// Q1Specs is Q1's aggregate catalog: four SUMs, three AVGs, and the row
// COUNT, in output-column order.
func Q1Specs(levels int) []sqlagg.AggSpec {
	return []sqlagg.AggSpec{
		{Kind: sqlagg.AggSum, Levels: levels, Col: Q1ColQty},
		{Kind: sqlagg.AggSum, Levels: levels, Col: Q1ColPrice},
		{Kind: sqlagg.AggSum, Levels: levels, Col: Q1ColDiscPrice},
		{Kind: sqlagg.AggSum, Levels: levels, Col: Q1ColCharge},
		{Kind: sqlagg.AggAvg, Levels: levels, Col: Q1ColQty},
		{Kind: sqlagg.AggAvg, Levels: levels, Col: Q1ColPrice},
		{Kind: sqlagg.AggAvg, Levels: levels, Col: Q1ColDisc},
		{Kind: sqlagg.AggCount, Levels: levels, Col: 0},
	}
}

// Q1Input evaluates Q1's scan side against the lineitem table: the
// shipdate filter, the disc_price and charge projections, and the
// domain-encoded group ids. It returns the group keys plus the five
// value columns of the Q1 column layout, ready to shard across a
// cluster.
func Q1Input(t *engine.Table) (keys []uint32, cols [][]float64, err error) {
	shipdate, err := t.Int32("l_shipdate")
	if err != nil {
		return nil, nil, err
	}
	quantityCol, err := t.Float64("l_quantity")
	if err != nil {
		return nil, nil, err
	}
	priceCol, err := t.Float64("l_extendedprice")
	if err != nil {
		return nil, nil, err
	}
	discCol, err := t.Float64("l_discount")
	if err != nil {
		return nil, nil, err
	}
	taxCol, err := t.Float64("l_tax")
	if err != nil {
		return nil, nil, err
	}
	flagCol, err := t.Byte("l_returnflag")
	if err != nil {
		return nil, nil, err
	}
	statusCol, err := t.Byte("l_linestatus")
	if err != nil {
		return nil, nil, err
	}

	sel := engine.SelectInt32LE(shipdate, Q1CutoffDate)
	qty := engine.GatherFloat64(quantityCol, sel)
	price := engine.GatherFloat64(priceCol, sel)
	disc := engine.GatherFloat64(discCol, sel)
	tax := engine.GatherFloat64(taxCol, sel)
	flags := engine.GatherByte(flagCol, sel)
	statuses := engine.GatherByte(statusCol, sel)

	discPrice := make([]float64, len(sel))
	charge := make([]float64, len(sel))
	negDisc := make([]float64, len(sel))
	engine.Neg(negDisc, disc)
	engine.MulScalarAdd(discPrice, price, negDisc, 1)
	engine.MulScalarAdd(charge, discPrice, tax, 1)

	keys = make([]uint32, len(sel))
	for i := range keys {
		keys[i] = q1GroupID(flags[i], statuses[i])
	}

	cols = make([][]float64, q1NumCols)
	cols[Q1ColQty] = qty
	cols[Q1ColPrice] = price
	cols[Q1ColDiscPrice] = discPrice
	cols[Q1ColCharge] = charge
	cols[Q1ColDisc] = disc
	return keys, cols, nil
}

// ShardQ1Input deals Q1Input's rows round-robin into n shards, the
// sharding the distributed equivalence tests and benchmarks use.
func ShardQ1Input(keys []uint32, cols [][]float64, n int) (shardKeys [][]uint32, shardCols [][][]float64) {
	shardKeys = make([][]uint32, n)
	shardCols = make([][][]float64, n)
	for s := range shardCols {
		shardCols[s] = make([][]float64, len(cols))
	}
	for i, k := range keys {
		s := i % n
		shardKeys[s] = append(shardKeys[s], k)
		for c := range cols {
			shardCols[s][c] = append(shardCols[s][c], cols[c][i])
		}
	}
	return shardKeys, shardCols
}

// Q1FromTuples finalizes multi-aggregate GROUP BY tuples (produced by a
// run of Q1Specs) into Q1 result rows, ordered by returnflag and
// linestatus like RunQ1.
func Q1FromTuples(tuples []dist.TupleGroup) ([]Q1Group, error) {
	out := make([]Q1Group, 0, len(tuples))
	for _, t := range tuples {
		if len(t.Aggs) != len(Q1Specs(0)) {
			return nil, fmt.Errorf("tpch: Q1 tuple carries %d aggregates, want %d", len(t.Aggs), len(Q1Specs(0)))
		}
		if t.Key >= q1NumGroups {
			return nil, fmt.Errorf("tpch: Q1 tuple key %d outside the group domain", t.Key)
		}
		flag, status := q1GroupOf(t.Key)
		out = append(out, Q1Group{
			ReturnFlag:   flag,
			LineStatus:   status,
			SumQty:       t.Aggs[0],
			SumBasePrice: t.Aggs[1],
			SumDiscPrice: t.Aggs[2],
			SumCharge:    t.Aggs[3],
			AvgQty:       t.Aggs[4],
			AvgPrice:     t.Aggs[5],
			AvgDisc:      t.Aggs[6],
			Count:        int64(t.Aggs[7]),
		})
	}
	return out, nil
}
