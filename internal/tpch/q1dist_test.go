package tpch

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/engine"
)

// q1RowsBitEqual fails the test if two Q1 result sets differ in any bit
// of any of the eight output columns.
func q1RowsBitEqual(t *testing.T, label string, got, want []Q1Group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ReturnFlag != w.ReturnFlag || g.LineStatus != w.LineStatus || g.Count != w.Count {
			t.Fatalf("%s: group row %d is %c%c/%d, want %c%c/%d",
				label, i, g.ReturnFlag, g.LineStatus, g.Count, w.ReturnFlag, w.LineStatus, w.Count)
		}
		for _, pair := range [][2]float64{
			{g.SumQty, w.SumQty}, {g.SumBasePrice, w.SumBasePrice},
			{g.SumDiscPrice, w.SumDiscPrice}, {g.SumCharge, w.SumCharge},
			{g.AvgQty, w.AvgQty}, {g.AvgPrice, w.AvgPrice}, {g.AvgDisc, w.AvgDisc},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("%s: group %c%c: aggregate %v != %v (bit mismatch)",
					label, g.ReturnFlag, g.LineStatus, pair[0], pair[1])
			}
		}
	}
}

// TestQ1DistMatchesEngine: the spec-list formulation of Q1, run through
// the distributed multi-aggregate GROUP BY, is bit-identical to RunQ1
// on the local engine at the same level count — for one shard and for
// a multi-shard round-robin deal.
func TestQ1DistMatchesEngine(t *testing.T) {
	tbl := GenLineitem(0.001, 11)
	const levels = 2
	want, _, err := RunQ1(tbl, engine.GroupByConfig{Kind: engine.SumRepro, Levels: levels})
	if err != nil {
		t.Fatal(err)
	}

	keys, cols, err := Q1Input(tbl)
	if err != nil {
		t.Fatal(err)
	}
	specs := Q1Specs(levels)

	for _, shards := range []int{1, 4} {
		sk, sc := ShardQ1Input(keys, cols, shards)
		tuples, err := dist.AggregateTuples(sk, sc, 2, specs)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, err := Q1FromTuples(tuples)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		q1RowsBitEqual(t, "dist Q1", got, want)
	}
}

// TestQ1FromTuplesRejectsMalformed: tuple rows with the wrong aggregate
// arity or an out-of-domain key error instead of fabricating rows.
func TestQ1FromTuplesRejectsMalformed(t *testing.T) {
	if _, err := Q1FromTuples([]dist.TupleGroup{{Key: 0, Aggs: make([]float64, 3)}}); err == nil {
		t.Error("short tuple accepted")
	}
	if _, err := Q1FromTuples([]dist.TupleGroup{{Key: 99, Aggs: make([]float64, 8)}}); err == nil {
		t.Error("out-of-domain key accepted")
	}
}
