package tpch

import (
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/rsum"
)

// TPC-H Query 6 — the forecasting-revenue-change query:
//
//	SELECT sum(l_extendedprice * l_discount) AS revenue
//	FROM lineitem
//	WHERE l_shipdate >= date '1994-01-01'
//	  AND l_shipdate <  date '1995-01-01'
//	  AND l_discount BETWEEN 0.05 AND 0.07
//	  AND l_quantity < 24;
//
// Q6 is a single ungrouped floating-point SUM — the simplest query that
// is non-reproducible under physical reordering in conventional engines,
// and the natural demonstration of the isolated summation routines of
// the paper's Section III.

// Q6 date range (day numbers; day 0 = 1992-01-01).
const (
	q6DateLo = 731  // 1994-01-01
	q6DateHi = 1096 // 1995-01-01 (exclusive)
)

// Q6SumKind selects the summation routine for Q6.
type Q6SumKind int

// Summation routine choices for RunQ6.
const (
	// Q6Plain uses a conventional float64 loop (order-dependent).
	Q6Plain Q6SumKind = iota
	// Q6Scalar uses RSUM SCALAR (Algorithm 2).
	Q6Scalar
	// Q6Vec uses RSUM SIMD (Algorithm 3).
	Q6Vec
	// Q6Neumaier uses compensated summation (accurate, not reproducible).
	Q6Neumaier
)

// RunQ6 executes Query 6 with the given summation routine and level
// count (ignored for Q6Plain/Q6Neumaier) and returns the revenue plus
// the per-operator profile.
func RunQ6(t *engine.Table, kind Q6SumKind, levels int) (float64, *engine.Profiler, error) {
	prof := engine.NewProfiler()
	shipdate, err := t.Int32("l_shipdate")
	if err != nil {
		return 0, nil, err
	}
	quantity, err := t.Float64("l_quantity")
	if err != nil {
		return 0, nil, err
	}
	price, err := t.Float64("l_extendedprice")
	if err != nil {
		return 0, nil, err
	}
	discount, err := t.Float64("l_discount")
	if err != nil {
		return 0, nil, err
	}

	// Selection: conjunctive predicate over three columns.
	var sel []int32
	prof.Measure("select", func() {
		for i, d := range shipdate {
			if d >= q6DateLo && d < q6DateHi &&
				discount[i] >= 0.05-1e-9 && discount[i] <= 0.07+1e-9 &&
				quantity[i] < 24 {
				sel = append(sel, int32(i))
			}
		}
	})

	// Projection: revenue terms.
	terms := make([]float64, len(sel))
	prof.Measure("project", func() {
		for i, r := range sel {
			terms[i] = price[r] * discount[r]
		}
	})

	var revenue float64
	prof.Measure("aggregation", func() {
		switch kind {
		case Q6Plain:
			revenue = exact.Naive64(terms)
		case Q6Scalar:
			s := rsum.NewState64(levels)
			s.AddSlice(terms)
			revenue = s.Value()
		case Q6Vec:
			s := rsum.NewState64(levels)
			s.AddSliceVec(terms)
			revenue = s.Value()
		case Q6Neumaier:
			revenue = exact.Neumaier64(terms)
		}
	})
	return revenue, prof, nil
}
