// Package pagerank reproduces the paper's motivation experiment
// (Section I): PageRank run on different permutations of a web graph
// produces different enough ranks that pages swap positions from one
// run to the next — unless the per-page summation of incoming
// contributions is reproducible.
//
// The paper uses the SNAP web-Google graph (~900k pages); that dataset
// is not available offline, so a deterministic scale-free synthetic
// graph (preferential attachment) provides the same phenomenon:
// near-ties in rank whose order flips under permutation of the edge
// list (see DESIGN.md §4).
package pagerank

import (
	"sort"

	"repro/internal/core"
	"repro/internal/workload"
)

// Graph is a directed graph as an edge list. Node ids are dense in
// [0, N).
type Graph struct {
	N      int
	Src    []uint32
	Dst    []uint32
	outDeg []uint32
}

// NewScaleFree generates a directed scale-free graph with n nodes and
// roughly m edges per new node, by preferential attachment: new nodes
// link to endpoints of existing edges (which picks targets proportional
// to degree). Deterministic in seed.
func NewScaleFree(n, m int, seed uint64) *Graph {
	if n < 2 || m < 1 {
		panic("pagerank: need n ≥ 2 and m ≥ 1")
	}
	r := workload.NewRNG(seed)
	g := &Graph{N: n}
	// Seed edge.
	g.addEdge(0, 1)
	g.addEdge(1, 0)
	for v := 2; v < n; v++ {
		for e := 0; e < m; e++ {
			var target uint32
			if r.Uint32n(4) == 0 {
				// Uniform attachment keeps the graph connected-ish and
				// adds low-degree targets.
				target = uint32(r.Intn(v))
			} else {
				// Preferential: pick the destination of a random
				// existing edge (degree-proportional).
				target = g.Dst[r.Intn(len(g.Dst))]
			}
			if int(target) == v {
				target = uint32(v - 1)
			}
			g.addEdge(uint32(v), target)
		}
	}
	g.finalize()
	return g
}

func (g *Graph) addEdge(s, d uint32) {
	g.Src = append(g.Src, s)
	g.Dst = append(g.Dst, d)
}

func (g *Graph) finalize() {
	g.outDeg = make([]uint32, g.N)
	for _, s := range g.Src {
		g.outDeg[s]++
	}
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Src) }

// Permute reorders the edge list (keeping pairs intact) — the physical
// reordering whose effect on floating-point PageRank the experiment
// measures.
func (g *Graph) Permute(seed uint64) *Graph {
	p := &Graph{
		N:   g.N,
		Src: append([]uint32(nil), g.Src...),
		Dst: append([]uint32(nil), g.Dst...),
	}
	workload.ShufflePairs(seed, p.Src, p.Dst)
	p.finalize()
	return p
}

// Config holds PageRank parameters.
type Config struct {
	// Damping is the damping factor (default 0.85).
	Damping float64
	// Iterations is the fixed iteration count (default 30).
	Iterations int
	// Reproducible selects reproducible per-node contribution sums.
	Reproducible bool
	// Levels is the repro level count (default 2).
	Levels int
}

func (c Config) withDefaults() Config {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Iterations == 0 {
		c.Iterations = 30
	}
	if c.Levels == 0 {
		c.Levels = 2
	}
	return c
}

// Run computes PageRank over the edge list in its stored order.
// The per-node sum of incoming contributions is a GROUPBY SUM keyed by
// destination node: with Reproducible set it uses repro accumulators
// and the result is independent of edge order; with floats it is not.
func Run(g *Graph, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	n := g.N
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	contrib := make([]float64, n)

	var accs []core.Sum64
	if cfg.Reproducible {
		accs = make([]core.Sum64, n)
	}

	for it := 0; it < cfg.Iterations; it++ {
		// Contribution of each node per outgoing edge.
		for v := 0; v < n; v++ {
			if g.outDeg[v] > 0 {
				contrib[v] = ranks[v] / float64(g.outDeg[v])
			} else {
				contrib[v] = 0
			}
		}
		base := (1 - cfg.Damping) / float64(n)
		if cfg.Reproducible {
			for i := range accs {
				accs[i] = core.NewSum64(cfg.Levels)
			}
			for e := range g.Src {
				accs[g.Dst[e]].Add(contrib[g.Src[e]])
			}
			for v := 0; v < n; v++ {
				ranks[v] = base + cfg.Damping*accs[v].Value()
			}
		} else {
			sums := make([]float64, n)
			for e := range g.Src {
				sums[g.Dst[e]] += contrib[g.Src[e]]
			}
			for v := 0; v < n; v++ {
				ranks[v] = base + cfg.Damping*sums[v]
			}
		}
	}
	return ranks
}

// RankOrder returns node ids sorted by descending rank, ties broken by
// node id (so differences in the order reflect differences in the rank
// values themselves).
func RankOrder(ranks []float64) []uint32 {
	ids := make([]uint32, len(ranks))
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, rb := ranks[ids[a]], ranks[ids[b]]
		if ra != rb {
			return ra > rb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// CountOrderChanges compares two rank orders and returns the number of
// positions holding a different page — the paper's "pages different
// enough to swap ranks with another page".
func CountOrderChanges(a, b []uint32) int {
	if len(a) != len(b) {
		panic("pagerank: comparing orders of different length")
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return diff
}

// BitsEqual reports whether two rank vectors are bit-identical.
func BitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			// NaN-safe: bit compare via inequality of both orders.
			if !(a[i] != a[i] && b[i] != b[i]) {
				return false
			}
		}
	}
	return true
}
