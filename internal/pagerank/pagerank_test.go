package pagerank

import (
	"math"
	"testing"
)

func TestGraphGeneration(t *testing.T) {
	g := NewScaleFree(1000, 3, 1)
	if g.N != 1000 {
		t.Errorf("N = %d", g.N)
	}
	if g.NumEdges() < 2900 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	for i := range g.Src {
		if int(g.Src[i]) >= g.N || int(g.Dst[i]) >= g.N {
			t.Fatal("edge endpoint out of range")
		}
	}
	// Scale-free: maximum in-degree far above the mean.
	indeg := make([]int, g.N)
	for _, d := range g.Dst {
		indeg[d]++
	}
	maxIn := 0
	for _, d := range indeg {
		if d > maxIn {
			maxIn = d
		}
	}
	if maxIn < 10*g.NumEdges()/g.N {
		t.Errorf("max in-degree %d does not look scale-free", maxIn)
	}
}

func TestPermutePreservesGraph(t *testing.T) {
	g := NewScaleFree(500, 2, 2)
	p := g.Permute(42)
	if p.NumEdges() != g.NumEdges() || p.N != g.N {
		t.Fatal("permute changed graph size")
	}
	count := func(gr *Graph) map[uint64]int {
		m := make(map[uint64]int)
		for i := range gr.Src {
			m[uint64(gr.Src[i])<<32|uint64(gr.Dst[i])]++
		}
		return m
	}
	a, b := count(g), count(p)
	if len(a) != len(b) {
		t.Fatal("edge multiset changed")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatal("edge multiset changed")
		}
	}
}

func TestRanksSumToOne(t *testing.T) {
	g := NewScaleFree(2000, 3, 3)
	for _, repro := range []bool{false, true} {
		ranks := Run(g, Config{Reproducible: repro, Iterations: 20})
		sum := 0.0
		for _, r := range ranks {
			if r < 0 {
				t.Fatal("negative rank")
			}
			sum += r
		}
		// Dangling nodes leak a little mass; allow slack.
		if sum < 0.5 || sum > 1.001 {
			t.Errorf("repro=%v: total rank %v", repro, sum)
		}
	}
}

func TestFloatAndReproRanksClose(t *testing.T) {
	g := NewScaleFree(2000, 3, 4)
	fr := Run(g, Config{})
	rr := Run(g, Config{Reproducible: true})
	for i := range fr {
		if math.Abs(fr[i]-rr[i]) > 1e-9*math.Abs(fr[i])+1e-15 {
			t.Fatalf("node %d: float %v vs repro %v", i, fr[i], rr[i])
		}
	}
}

// TestReproducibleRanksStableUnderPermutation is the experiment of the
// paper's introduction: float PageRank drifts across edge permutations,
// reproducible PageRank does not.
func TestReproducibleRanksStableUnderPermutation(t *testing.T) {
	g := NewScaleFree(3000, 4, 5)
	base := Run(g, Config{Reproducible: true, Iterations: 15})
	for seed := uint64(10); seed < 13; seed++ {
		p := g.Permute(seed)
		ranks := Run(p, Config{Reproducible: true, Iterations: 15})
		if !BitsEqual(base, ranks) {
			t.Fatalf("reproducible ranks changed under permutation %d", seed)
		}
	}
}

func TestFloatRanksUsuallyDrift(t *testing.T) {
	g := NewScaleFree(3000, 4, 6)
	base := Run(g, Config{Iterations: 15})
	drifted := false
	for seed := uint64(20); seed < 26 && !drifted; seed++ {
		p := g.Permute(seed)
		if !BitsEqual(base, Run(p, Config{Iterations: 15})) {
			drifted = true
		}
	}
	if !drifted {
		t.Skip("float PageRank happened to be stable on this graph")
	}
}

func TestRankOrderAndChanges(t *testing.T) {
	ranks := []float64{0.1, 0.4, 0.2, 0.4}
	order := RankOrder(ranks)
	// 0.4 tie broken by id: 1 before 3.
	want := []uint32{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	other := []uint32{1, 3, 0, 2}
	if got := CountOrderChanges(order, other); got != 2 {
		t.Errorf("CountOrderChanges = %d", got)
	}
	if CountOrderChanges(order, order) != 0 {
		t.Error("identical orders differ?")
	}
}

func TestBitsEqual(t *testing.T) {
	if !BitsEqual([]float64{1, 2}, []float64{1, 2}) {
		t.Error("equal slices unequal")
	}
	if BitsEqual([]float64{1}, []float64{1, 2}) {
		t.Error("different lengths equal")
	}
	if BitsEqual([]float64{1}, []float64{2}) {
		t.Error("different values equal")
	}
	nan := math.NaN()
	if !BitsEqual([]float64{nan}, []float64{nan}) {
		t.Error("NaN vs NaN should be equal here")
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad graph params did not panic")
		}
	}()
	NewScaleFree(1, 1, 0)
}
