package dist

import (
	"sync"
	"time"

	"repro/internal/workload"
)

// Fault injection. FaultTransport decorates any Transport with the
// misbehaviors of a real lossy interconnect — delivery delay,
// duplication, reordering, and dropped frames that a sender-side retry
// layer retransmits after a timeout. Faults apply per wire frame, so a
// chunked logical message has each of its chunks independently delayed,
// duplicated, reordered, or dropped — chunks of one message genuinely
// arrive out of order and interleaved with other streams, which is
// where reassembly bugs would live. The decorator never loses a frame
// permanently (a drop is always followed by a retry), so it models an
// unreliable link underneath a reliable delivery layer, which is
// exactly the regime the reproducibility claim must survive: the
// protocols reassemble and deduplicate per (from, seq) stream and merge
// order-independently, so every fault plan yields bit-identical
// results.

// FaultPlan configures the injected faults. The zero value injects
// nothing. All randomness is drawn from a deterministic seeded PRNG, so
// a plan replays identically.
type FaultPlan struct {
	// Seed drives the fault PRNG.
	Seed uint64
	// DropProb is the probability that one transmission attempt of a
	// frame is dropped. A dropped frame is retransmitted after
	// RetryDelay (possibly dropped again, up to MaxDrops consecutive
	// drops), modeling a sender-side reliability layer over a lossy
	// link.
	DropProb float64
	// MaxDrops caps consecutive drops of one frame (default 3).
	MaxDrops int
	// RetryDelay is the retransmission timeout after a drop (default
	// 1ms).
	RetryDelay time.Duration
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// MaxDelay adds a uniform random delivery delay in [0, MaxDelay).
	MaxDelay time.Duration
	// Reorder deliberately holds back every second frame per
	// destination long enough that later frames overtake it.
	Reorder bool
}

// active reports whether the plan injects any fault at all.
func (p FaultPlan) active() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.MaxDelay > 0 || p.Reorder
}

func (p FaultPlan) maxDrops() int {
	if p.MaxDrops <= 0 {
		return 3
	}
	return p.MaxDrops
}

func (p FaultPlan) retryDelay() time.Duration {
	if p.RetryDelay <= 0 {
		return time.Millisecond
	}
	return p.RetryDelay
}

// FaultTransport injects the faults of a FaultPlan into an inner
// transport. Sends with pending faults are completed asynchronously;
// Close waits for in-flight deliveries to resolve.
type FaultTransport struct {
	inner Transport
	plan  FaultPlan

	mu       sync.Mutex
	rng      *workload.RNG
	nthTo    map[int]uint64 // frames sent per destination, for Reorder
	closing  bool           // no new async deliveries may start
	inflight sync.WaitGroup
}

// NewFaultTransport wraps inner with the fault plan.
func NewFaultTransport(inner Transport, plan FaultPlan) *FaultTransport {
	return &FaultTransport{
		inner: inner,
		plan:  plan,
		rng:   workload.NewRNG(plan.Seed ^ 0x9E3779B97F4A7C15),
		nthTo: make(map[int]uint64),
	}
}

func (t *FaultTransport) Nodes() int { return t.inner.Nodes() }

// Recv delegates to the inner transport.
func (t *FaultTransport) Recv(id int, timeout time.Duration) (Frame, error) {
	return t.inner.Recv(id, timeout)
}

// Send schedules the delivery of f according to the fault plan. The
// frame is delivered at least once; errors from asynchronous deliveries
// after Close are expected and discarded.
func (t *FaultTransport) Send(f Frame) error {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return ErrClosed
	}
	drops := 0
	for drops < t.plan.maxDrops() && t.rng.Float64() < t.plan.DropProb {
		drops++
	}
	dup := t.rng.Float64() < t.plan.DupProb
	var delay time.Duration
	if t.plan.MaxDelay > 0 {
		delay = time.Duration(t.rng.Float64() * float64(t.plan.MaxDelay))
	}
	if t.plan.Reorder {
		if t.nthTo[f.To]%2 == 1 {
			// Held back: delivered after frames sent later.
			delay += t.plan.retryDelay() + t.plan.MaxDelay
		}
		t.nthTo[f.To]++
	}
	delay += time.Duration(drops) * t.plan.retryDelay()
	async := delay > 0 || dup
	if async {
		// Registered under the lock: Close sets closing before it waits,
		// so no delivery can start once the drain has begun.
		t.inflight.Add(1)
	}
	t.mu.Unlock()

	if !async {
		return t.inner.Send(f)
	}
	go func() {
		defer t.inflight.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		_ = t.inner.Send(f) // post-Close delivery failures are expected
		if dup {
			_ = t.inner.Send(f)
		}
	}()
	return nil
}

// Close waits for in-flight faulty deliveries, then closes the inner
// transport.
func (t *FaultTransport) Close() error {
	t.mu.Lock()
	t.closing = true
	t.mu.Unlock()
	// Closing the inner transport first unblocks sleepy deliveries'
	// Sends immediately after their delay elapses; the wait is bounded
	// by the largest scheduled delay.
	err := t.inner.Close()
	t.inflight.Wait()
	return err
}

var _ Transport = (*FaultTransport)(nil)
