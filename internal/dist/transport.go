package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"
)

// The message layer of the simulated cluster. Reduce and AggregateByKey
// are written against the Transport interface below, so the same
// protocol code runs over in-process channels (ChanTransport, the
// zero-copy path), real TCP sockets on loopback (TCPTransport), and any
// of those wrapped in the fault-injection decorator (FaultTransport).
// Reproducibility never depends on the transport: partial states travel
// as canonical rsum encodings, merging is order-independent, and the
// protocols deduplicate frames, so delays, duplication, reordering, and
// dropped-then-retried frames cannot change the final bits.

// Frame kinds. The kind tags what the payload means to the aggregation
// protocols; the codec treats payloads as opaque bytes.
const (
	// KindPartial carries a canonical rsum.State64 encoding up the
	// reduction tree.
	KindPartial byte = 1 + iota
	// KindGroups carries a shuffle frame of ⟨key, state⟩ pairs to the
	// partition owner.
	KindGroups
	// KindGather carries finalized groups from an owner to the root.
	KindGather
	// KindResend asks the receiver to retransmit its frame (straggler
	// handling: a parent re-requests a child's partial after a
	// deadline).
	KindResend
	// KindError propagates a node failure; the payload is the error
	// text.
	KindError

	// Control-plane kinds of the multi-process cluster runtime
	// (internal/dist/proc). They travel only on the supervisor↔worker
	// control connections, never through the data-plane transports —
	// but they share the frame codec, so the wire validation (and the
	// chunking rules for large job specs and results) is identical.

	// KindHello is the worker → supervisor join handshake: frame
	// version, rsum level count, spec version, and (for workers that
	// already hold the cluster config) the run-config digest. A
	// mismatch is rejected with a KindError carrying ErrHandshake.
	KindHello
	// KindJob carries the job spec (operation, aggregate catalog, and
	// a declarative input source or raw shard) from the supervisor to
	// a joined worker.
	KindJob
	// KindResult carries the root worker's finalized result back to
	// the supervisor.
	KindResult
	// KindShutdown tells a worker the cluster is over: close the data
	// plane and exit.
	KindShutdown
	// KindConf answers a remote joiner's first hello with the
	// assigned node id and the raw cluster config; the joiner digests
	// the bytes into a second, full hello.
	KindConf
	// KindReady is a worker's per-job acknowledgment: it has
	// materialized its input and bound a fresh data-plane listener,
	// whose address rides in the payload.
	KindReady
	// KindPeers broadcasts the per-job data-plane address table; a
	// re-broadcast (higher epoch) re-points peers at a replacement
	// worker's listener mid-run.
	KindPeers
	// KindJobDone tells a worker the current job is over: tear down
	// the job's data plane and await the next KindJob.
	KindJobDone
	// KindPing is the worker → supervisor liveness heartbeat.
	KindPing

	kindMax = KindPing
)

// Frame is one wire message of the interconnect: a typed payload
// traveling from node From to node To. Seq distinguishes logically
// distinct messages between the same pair of nodes (retransmissions of
// the same message reuse the Seq), so receivers can deduplicate
// deliveries per (From, Seq) stream no matter how often the transport
// duplicates or the protocol re-requests.
//
// Since wire version 2 a logical message may travel as several chunk
// frames: Chunk is this frame's index within the logical message and
// Chunks the message's total chunk count (1 for the common single-frame
// case). All chunks of one message share (Kind, From, To, Seq); the
// reassembler on the receive side buffers out-of-order chunks and hands
// the protocols whole logical payloads. A KindResend frame uses the
// chunk fields as the re-request selector instead: Chunks == 0 asks for
// every chunk of the (From→To reversed) stream Seq, Chunks == 1 asks
// for just chunk index Chunk.
type Frame struct {
	Kind    byte
	From    int
	To      int
	Seq     uint32
	Chunk   uint32
	Chunks  uint32
	Payload []byte
}

// Wire format of a frame (little-endian), versioned and length-prefixed
// so stream transports can frame messages and reject foreign or corrupt
// bytes at the trust boundary:
//
//	offset  size  field
//	0       2     magic 0x5250 ("RP")
//	2       1     version (frameVersion)
//	3       1     kind
//	4       4     from
//	8       4     to
//	12      4     seq
//	16      4     chunk index
//	20      4     chunk count (see Frame: 0/1 selector on KindResend)
//	24      4     payload length m
//	28      m     payload
//	28+m    4     CRC-32 (IEEE) of bytes [0, 28+m)
//
// Version 2 added the chunk index/count fields; version-1 frames are
// rejected at the trust boundary (the cluster is always homogeneous).
const (
	frameMagic   = 0x5250
	frameVersion = 2
	frameHdrSize = 2 + 1 + 1 + 4 + 4 + 4 + 4 + 4 + 4
	frameCRCSize = 4

	// MaxFramePayload bounds the payload length a decoder accepts, so a
	// corrupt or adversarial length prefix cannot trigger a huge
	// allocation. Since wire version 2 this caps one chunk, not one
	// logical message: senders split larger payloads into chunk streams
	// (see splitFrame) and receivers reassemble them under
	// Config.ReassemblyBudget.
	MaxFramePayload = 1 << 24

	// MaxChunksPerMessage bounds the chunk count a receiver accepts for
	// one logical message, so a hostile count cannot blow up the
	// reassembler's bookkeeping before the byte budget even engages.
	MaxChunksPerMessage = 1 << 20
)

// Transport and codec errors.
var (
	// ErrClosed is returned by Send/Recv after the transport is closed.
	ErrClosed = errors.New("dist: transport closed")
	// ErrTimeout is returned by Recv when no frame arrived within the
	// timeout.
	ErrTimeout = errors.New("dist: receive timeout")
	// ErrBadFrame is returned when wire bytes do not decode to a valid
	// frame, or when a chunk stream is internally inconsistent.
	ErrBadFrame = errors.New("dist: corrupt or truncated frame")
	// ErrChunkBudget is returned when buffering the partial chunk
	// streams of incoming logical messages would exceed the node's
	// reassembly budget (Config.ReassemblyBudget) — the defense against
	// a peer that declares huge messages to OOM its receiver.
	ErrChunkBudget = errors.New("dist: chunk reassembly budget exceeded")
	// ErrStraggler is returned when a child node stayed silent through
	// every re-request deadline.
	ErrStraggler = errors.New("dist: straggler child unresponsive after re-requests")
	// ErrHandshake is returned when a worker's join handshake
	// (KindHello) disagrees with the supervisor on the frame version,
	// the rsum level count, or the run-config digest. A heterogeneous
	// cluster is rejected at join time, before any data-plane traffic.
	ErrHandshake = errors.New("dist: cluster join handshake rejected")
	// ErrConfig is returned when a Config (or a facade DistOption that
	// builds one) carries an invalid value — validated up front by the
	// distributed operators so a bad knob fails the call immediately
	// instead of deep inside a run.
	ErrConfig = errors.New("dist: invalid configuration")
)

// FrameVersion is the wire-format version of the frame codec, exported
// for the multi-process join handshake: workers announce the version
// they speak in KindHello and the supervisor rejects mismatches.
const FrameVersion = frameVersion

// AppendFrame appends the wire encoding of f to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f Frame) []byte {
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = f.Kind
	binary.LittleEndian.PutUint32(hdr[4:], uint32(f.From))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.To))
	binary.LittleEndian.PutUint32(hdr[12:], f.Seq)
	binary.LittleEndian.PutUint32(hdr[16:], f.Chunk)
	binary.LittleEndian.PutUint32(hdr[20:], f.Chunks)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(f.Payload)))
	start := len(dst)
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	var tail [frameCRCSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...)
}

// EncodeFrame returns the wire encoding of f.
func EncodeFrame(f Frame) []byte {
	return AppendFrame(make([]byte, 0, frameHdrSize+len(f.Payload)+frameCRCSize), f)
}

// DecodeFrame decodes one frame from the start of buf, returning the
// frame and the number of bytes consumed. The returned payload aliases
// buf. Malformed, truncated, or checksum-failing bytes yield ErrBadFrame
// (or a wrapped version error); the decoder never panics and never
// over-allocates on a corrupt length prefix.
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < frameHdrSize {
		return Frame{}, 0, ErrBadFrame
	}
	if binary.LittleEndian.Uint16(buf[0:]) != frameMagic {
		return Frame{}, 0, ErrBadFrame
	}
	if buf[2] != frameVersion {
		return Frame{}, 0, fmt.Errorf("%w: unsupported frame version %d", ErrBadFrame, buf[2])
	}
	kind := buf[3]
	if kind == 0 || kind > kindMax {
		return Frame{}, 0, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, kind)
	}
	chunk := binary.LittleEndian.Uint32(buf[16:])
	chunks := binary.LittleEndian.Uint32(buf[20:])
	if err := validChunkFields(kind, chunk, chunks); err != nil {
		return Frame{}, 0, err
	}
	plen := binary.LittleEndian.Uint32(buf[24:])
	if plen > MaxFramePayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadFrame, plen)
	}
	total := frameHdrSize + int(plen) + frameCRCSize
	if len(buf) < total {
		return Frame{}, 0, ErrBadFrame
	}
	want := binary.LittleEndian.Uint32(buf[total-frameCRCSize:])
	if crc32.ChecksumIEEE(buf[:total-frameCRCSize]) != want {
		return Frame{}, 0, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	f := Frame{
		Kind:   kind,
		From:   int(binary.LittleEndian.Uint32(buf[4:])),
		To:     int(binary.LittleEndian.Uint32(buf[8:])),
		Seq:    binary.LittleEndian.Uint32(buf[12:]),
		Chunk:  chunk,
		Chunks: chunks,
	}
	if plen > 0 {
		f.Payload = buf[frameHdrSize : frameHdrSize+int(plen)]
	}
	return f, total, nil
}

// validChunkFields checks the chunk index/count of a frame header. Data
// kinds must declare 1 ≤ Chunks ≤ MaxChunksPerMessage with Chunk in
// range; a KindResend uses the fields as a re-request selector (Chunks
// 0 = whole stream, 1 = the single chunk index Chunk). The same rules
// are applied at both trust boundaries: here for wire bytes, and in the
// reassembler for frames that arrive by reference through ChanTransport.
func validChunkFields(kind byte, chunk, chunks uint32) error {
	if kind == KindResend {
		if chunks > 1 {
			return fmt.Errorf("%w: resend selector chunk count %d", ErrBadFrame, chunks)
		}
		return nil
	}
	if chunks == 0 || chunks > MaxChunksPerMessage {
		return fmt.Errorf("%w: chunk count %d outside [1, %d]", ErrBadFrame, chunks, MaxChunksPerMessage)
	}
	if chunk >= chunks {
		return fmt.Errorf("%w: chunk index %d of %d", ErrBadFrame, chunk, chunks)
	}
	return nil
}

// frameBufPool recycles the transient buffers frames are encoded into
// on the send path. Ownership rule: a pooled buffer never escapes the
// call that took it — WriteFrame and the TCP batch path encode, write,
// and return the buffer before returning; buffers handed to callers
// (EncodeFrame results, decoded payloads) are never pooled.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// maxPooledFrameBuf caps the capacity of buffers returned to the pool:
// a 16 MiB single-frame encode should not pin 16 MiB of pool memory
// behind every future 100-byte frame.
const maxPooledFrameBuf = 1 << 20

func getFrameBuf() *[]byte { return frameBufPool.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	if cap(*b) <= maxPooledFrameBuf {
		*b = (*b)[:0]
		frameBufPool.Put(b)
	}
}

// WriteFrame writes the wire encoding of f to w as a single Write,
// encoding through a pooled buffer so steady-state sends allocate
// nothing.
func WriteFrame(w io.Writer, f Frame) error {
	bp := getFrameBuf()
	*bp = AppendFrame((*bp)[:0], f)
	_, err := w.Write(*bp)
	if err == nil {
		mFramesOut.Inc()
		mBytesOut.Add(uint64(len(*bp)))
	}
	putFrameBuf(bp)
	return err
}

// ReadFrame reads exactly one frame from r, validating it like
// DecodeFrame. io.EOF is returned unchanged when the stream ends
// cleanly between frames. The frame is read into a fresh buffer every
// call, so the returned payload is owned by the caller and may be
// retained indefinitely.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := ReadFrameBuf(r, nil)
	return f, err
}

// ReadFrameBuf is ReadFrame with a caller-managed read buffer: the
// frame is read into buf (reusing its capacity, growing it only when
// the frame does not fit) and the grown-or-reused buffer is returned
// for the next call. On a steady-state connection this makes frame
// reads allocation-free.
//
// Payload-ownership handoff rule: the returned frame's payload ALIASES
// the returned buffer, so it is valid only until the next ReadFrameBuf
// (or any other write) on that buffer. A component that retains the
// payload past that point — a mailbox queue, a reassembly stash, a
// resend cache — must copy it first (copy-on-retain). The socket read
// loops of TCPTransport and the multi-process runtime enforce this rule
// at the mailbox boundary; TestReadFrameBufOwnership pins it down.
func ReadFrameBuf(r io.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, buf, io.EOF
		}
		return Frame{}, buf, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	plen := binary.LittleEndian.Uint32(hdr[24:])
	if plen > MaxFramePayload {
		return Frame{}, buf, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadFrame, plen)
	}
	total := frameHdrSize + int(plen) + frameCRCSize
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[frameHdrSize:]); err != nil {
		return Frame{}, buf, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	f, _, err := DecodeFrame(buf)
	if err == nil {
		mFramesIn.Inc()
		mBytesIn.Add(uint64(total))
	}
	return f, buf, err
}

// retainPayload returns f with its payload copied into a buffer f owns
// — the copy-on-retain side of the ReadFrameBuf handoff rule, applied
// by the socket read loops immediately before a frame crosses into the
// mailbox (which retains it until the protocol consumes it, long after
// the connection read buffer has been overwritten by the next frame).
func retainPayload(f Frame) Frame {
	if len(f.Payload) > 0 {
		f.Payload = append(make([]byte, 0, len(f.Payload)), f.Payload...)
	}
	return f
}

// Transport is the interconnect of an n-node simulated cluster. A
// transport delivers every sent frame to its destination mailbox at
// least once (decorators may duplicate, delay, or reorder); it never
// reorders the bytes inside a frame. Implementations must be safe for
// concurrent use by all nodes.
type Transport interface {
	// Send delivers f to node f.To's mailbox. It may block briefly on
	// backpressure but must not block indefinitely while the transport
	// is open; after Close it returns ErrClosed.
	Send(f Frame) error
	// Recv returns the next frame addressed to node id. timeout <= 0
	// blocks until a frame arrives or the transport closes; a positive
	// timeout yields ErrTimeout on expiry. After Close, Recv returns
	// ErrClosed.
	Recv(id int, timeout time.Duration) (Frame, error)
	// Nodes returns the cluster size.
	Nodes() int
	// Close tears down the interconnect and unblocks all pending
	// operations. Close is idempotent.
	Close() error
}

// TransportFactory builds the interconnect for an n-node cluster. The
// distributed operators own the returned transport and close it when
// the operation completes.
type TransportFactory func(n int) (Transport, error)

// BatchSender is implemented by transports that can transmit a frame
// list more efficiently than one Send per frame — the TCP transport
// coalesces a batch into buffered writes with a single flush per
// (from, to) run, and the channel transport enqueues a run under one
// mailbox lock. Semantics are identical to calling Send in order;
// sendChunks type-asserts for it, so decorators that must observe every
// frame (fault injection, test counters) simply do not implement it and
// keep receiving per-frame Sends.
type BatchSender interface {
	SendBatch(fs []Frame) error
}

// mailboxes is the shared receive side of the built-in transports: one
// unbounded inbox per node plus a close signal. ChanTransport embeds it
// directly; TCPTransport feeds it from socket reader goroutines.
// Inboxes are unbounded because chunked streams make the worst-case
// fan-in unknowable at transport construction: with any fixed capacity,
// two nodes exchanging chunk floods could each block in Send on the
// other's full inbox and deadlock. Memory stays bounded by what peers
// actually send — the reassembly budget is the defense against a
// hostile peer, not inbox backpressure.
type mailboxes struct {
	boxes  []*inbox
	closed chan struct{}
	once   sync.Once
}

// inbox is one node's unbounded frame queue: appends never block, and a
// 1-slot signal channel wakes the (single) receiver. A stale signal
// costs one spurious queue check; a missed one is impossible because
// the receiver re-checks the queue after every wakeup and the signal is
// set after every append.
type inbox struct {
	mu  sync.Mutex
	q   []Frame
	sig chan struct{}
}

func newMailboxes(n int) *mailboxes {
	m := &mailboxes{
		boxes:  make([]*inbox, n),
		closed: make(chan struct{}),
	}
	for i := range m.boxes {
		m.boxes[i] = &inbox{sig: make(chan struct{}, 1)}
	}
	return m
}

func (m *mailboxes) Nodes() int { return len(m.boxes) }

// deliver enqueues f for node f.To. It never blocks.
func (m *mailboxes) deliver(f Frame) error {
	if f.To < 0 || f.To >= len(m.boxes) {
		return fmt.Errorf("dist: send to node %d of %d-node cluster", f.To, len(m.boxes))
	}
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	b := m.boxes[f.To]
	b.mu.Lock()
	b.q = append(b.q, f)
	b.mu.Unlock()
	select {
	case b.sig <- struct{}{}:
	default:
	}
	mChanFrames.Inc()
	return nil
}

// deliverBatch enqueues a run of frames sharing one destination under a
// single inbox lock and wakes the receiver once. All frames must have
// the same To.
func (m *mailboxes) deliverBatch(fs []Frame) error {
	to := fs[0].To
	if to < 0 || to >= len(m.boxes) {
		return fmt.Errorf("dist: send to node %d of %d-node cluster", to, len(m.boxes))
	}
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	b := m.boxes[to]
	b.mu.Lock()
	b.q = append(b.q, fs...)
	b.mu.Unlock()
	select {
	case b.sig <- struct{}{}:
	default:
	}
	mChanFrames.Add(uint64(len(fs)))
	return nil
}

// Recv returns the next frame addressed to node id.
func (m *mailboxes) Recv(id int, timeout time.Duration) (Frame, error) {
	if id < 0 || id >= len(m.boxes) {
		return Frame{}, fmt.Errorf("dist: recv on node %d of %d-node cluster", id, len(m.boxes))
	}
	b := m.boxes[id]
	var expired <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expired = timer.C
	}
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			f := b.q[0]
			b.q[0] = Frame{} // drop the payload reference
			b.q = b.q[1:]
			if len(b.q) == 0 {
				b.q = nil // let a drained queue's backing array go
			}
			b.mu.Unlock()
			return f, nil
		}
		b.mu.Unlock()
		select {
		case <-b.sig:
		case <-expired:
			return Frame{}, ErrTimeout
		case <-m.closed:
			return Frame{}, ErrClosed
		}
	}
}

// close unblocks all pending receives. Idempotent.
func (m *mailboxes) close() {
	m.once.Do(func() { close(m.closed) })
}

// ChanTransport is the in-process interconnect: one buffered Go channel
// per node. Frames are passed by reference (payloads are not copied or
// encoded), preserving the zero-copy path of the original
// channel-backed implementation.
type ChanTransport struct {
	*mailboxes
}

// NewChanTransport returns an in-process transport for n nodes.
func NewChanTransport(n int) *ChanTransport {
	return &ChanTransport{mailboxes: newMailboxes(n)}
}

// Send delivers f to node f.To. Destinations out of range are rejected.
func (t *ChanTransport) Send(f Frame) error { return t.deliver(f) }

// SendBatch delivers a frame list, taking each destination's inbox lock
// once per run of equal-To frames instead of once per frame.
func (t *ChanTransport) SendBatch(fs []Frame) error {
	var firstErr error
	for start := 0; start < len(fs); {
		end := start + 1
		for end < len(fs) && fs[end].To == fs[start].To {
			end++
		}
		if err := t.deliverBatch(fs[start:end]); err != nil && firstErr == nil {
			firstErr = err
		}
		start = end
	}
	return firstErr
}

// Close unblocks all pending sends and receives.
func (t *ChanTransport) Close() error {
	t.mailboxes.close()
	return nil
}

// ChanTransportFactory is the TransportFactory of NewChanTransport —
// the default interconnect of Reduce and AggregateByKey.
func ChanTransportFactory(n int) (Transport, error) { return NewChanTransport(n), nil }

// KindError payloads carry a 1-byte sentinel code before the error
// text, so the exported sentinels that can genuinely originate on a
// remote node (ErrStraggler, ErrBadFrame) stay matchable with
// errors.Is across the trust boundary. The facade's validation
// sentinels (ErrNoShards etc.) are checked before any node spawns and
// never cross the wire.
const (
	errCodeGeneric byte = iota
	errCodeStraggler
	errCodeBadFrame
	errCodeChunkBudget
	errCodeHandshake
)

// encodeErr flattens an error for a KindError payload.
func encodeErr(err error) []byte {
	code := errCodeGeneric
	switch {
	case errors.Is(err, ErrStraggler):
		code = errCodeStraggler
	case errors.Is(err, ErrBadFrame):
		code = errCodeBadFrame
	case errors.Is(err, ErrChunkBudget):
		code = errCodeChunkBudget
	case errors.Is(err, ErrHandshake):
		code = errCodeHandshake
	}
	return append([]byte{code}, err.Error()...)
}

// remoteError is a peer's failure, reconstructed from a KindError
// payload with its sentinel (if any) re-attached for errors.Is.
type remoteError struct {
	from     int
	text     string
	sentinel error
}

func (e *remoteError) Error() string {
	if e.from < 0 {
		// Control-plane errors of the multi-process runtime: the peer is
		// the supervisor, not a numbered cluster node.
		return fmt.Sprintf("dist: supervisor: %s", e.text)
	}
	return fmt.Sprintf("dist: node %d: %s", e.from, e.text)
}
func (e *remoteError) Unwrap() error { return e.sentinel }

// decodeErr inverts encodeErr for a frame received from a peer.
func decodeErr(from int, payload []byte) error {
	if len(payload) == 0 {
		return &remoteError{from: from, text: "unspecified failure"}
	}
	e := &remoteError{from: from, text: string(payload[1:])}
	switch payload[0] {
	case errCodeStraggler:
		e.sentinel = ErrStraggler
	case errCodeBadFrame:
		e.sentinel = ErrBadFrame
	case errCodeChunkBudget:
		e.sentinel = ErrChunkBudget
	case errCodeHandshake:
		e.sentinel = ErrHandshake
	}
	return e
}

// dedup tracks which (from, seq) streams a node's reassembler has
// already completed, so duplicated deliveries and straggler
// retransmissions of finished messages are swallowed.
type dedup map[uint64]bool

func dedupKey(from int, seq uint32) uint64 {
	return uint64(uint32(from))<<32 | uint64(seq)
}
