package dist

import (
	"errors"
	"math"
	"testing"

	"repro/internal/sqlagg"
	"repro/internal/workload"
)

// Tests of the multi-aggregate (spec-tagged tuple) GROUP BY plane.

// tupleSpecs is the catalog the tuple tests run: a mix of state shapes
// (rsum-backed SUM/AVG/VAR, the 8-byte COUNT, the 9-byte MIN/MAX) over
// two value columns.
func tupleSpecs() []sqlagg.AggSpec {
	return []sqlagg.AggSpec{
		{Kind: sqlagg.AggSum, Levels: levels, Col: 0},
		{Kind: sqlagg.AggAvg, Levels: levels, Col: 1},
		{Kind: sqlagg.AggCount, Levels: levels, Col: 0},
		{Kind: sqlagg.AggVarPop, Levels: levels, Col: 0},
		{Kind: sqlagg.AggMin, Levels: levels, Col: 1},
		{Kind: sqlagg.AggMax, Levels: levels, Col: 0},
	}
}

// dealRowsCols distributes keyed two-column rows round-robin.
func dealRowsCols(keys []uint32, c0, c1 []float64, nodes int) ([][]uint32, [][][]float64) {
	lk := make([][]uint32, nodes)
	lc := make([][][]float64, nodes)
	for i := range lc {
		lc[i] = make([][]float64, 2)
	}
	for i := range keys {
		d := i % nodes
		lk[d] = append(lk[d], keys[i])
		lc[d][0] = append(lc[d][0], c0[i])
		lc[d][1] = append(lc[d][1], c1[i])
	}
	return lk, lc
}

// refTuples computes the ground truth: one sequential state tuple per
// key, in row order, finalized to bits.
func refTuples(t *testing.T, keys []uint32, c0, c1 []float64, specs []sqlagg.AggSpec) map[uint32][]uint64 {
	t.Helper()
	cols := [][]float64{c0, c1}
	states := make(map[uint32][]sqlagg.AggState)
	for i, k := range keys {
		tup, ok := states[k]
		if !ok {
			var err error
			tup, err = sqlagg.NewStates(specs)
			if err != nil {
				t.Fatal(err)
			}
			states[k] = tup
		}
		for s, sp := range specs {
			tup[s].Add(cols[sp.Col][i])
		}
	}
	out := make(map[uint32][]uint64, len(states))
	for k, tup := range states {
		bits := make([]uint64, len(tup))
		for s, st := range tup {
			bits[s] = math.Float64bits(st.Value())
		}
		out[k] = bits
	}
	return out
}

func checkTuples(t *testing.T, out []TupleGroup, want map[uint32][]uint64, label string) {
	t.Helper()
	if len(out) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(out), len(want))
	}
	prev := int64(-1)
	for _, g := range out {
		if int64(g.Key) <= prev {
			t.Fatalf("%s: result not sorted by key at %d", label, g.Key)
		}
		prev = int64(g.Key)
		bits, ok := want[g.Key]
		if !ok {
			t.Fatalf("%s: unexpected key %d", label, g.Key)
		}
		for s, w := range bits {
			if math.Float64bits(g.Aggs[s]) != w {
				t.Fatalf("%s: key %d spec %d: %016x, want %016x",
					label, g.Key, s, math.Float64bits(g.Aggs[s]), w)
			}
		}
	}
}

// TestAggregateTuplesBitReproducible: the multi-aggregate GROUP BY
// matches a sequential per-key reference bit for bit, across cluster
// sizes, worker counts, both transports, forced multi-chunk shuffle
// streams, and an injected fault plan.
func TestAggregateTuplesBitReproducible(t *testing.T) {
	const n = 20000
	keys := workload.Keys(18, n, 300)
	c0 := workload.Values64(19, n, workload.MixedMag)
	c1 := workload.Values64(23, n, workload.MixedMag)
	specs := tupleSpecs()
	want := refTuples(t, keys, c0, c1, specs)

	for _, nodes := range []int{1, 3, 5} {
		lk, lc := dealRowsCols(keys, c0, c1, nodes)
		out, err := AggregateTuples(lk, lc, 2, specs)
		if err != nil {
			t.Fatalf("AggregateTuples(%d nodes): %v", nodes, err)
		}
		checkTuples(t, out, want, "chan")

		cfg := Config{
			NewTransport:    TCPTransportFactory,
			MaxChunkPayload: 4096,
			Faults:          &FaultPlan{Seed: 7, DropProb: 0.05, MaxDrops: 20, DupProb: 0.05, Reorder: true},
		}
		out, err = AggregateTuplesConfig(lk, lc, 3, specs, cfg)
		if err != nil {
			t.Fatalf("AggregateTuplesConfig(tcp, %d nodes): %v", nodes, err)
		}
		checkTuples(t, out, want, "tcp+faults+chunks")
	}
}

// TestAggregateTuplesSingleSumMatchesByKey: a single-SUM catalog is the
// same protocol AggregateByKey runs — identical groups, identical bits.
func TestAggregateTuplesSingleSumMatchesByKey(t *testing.T) {
	const n = 8000
	keys := workload.Keys(31, n, 200)
	vals := workload.Values64(37, n, workload.MixedMag)
	lk, lv := dealRows(keys, vals, 3)
	want, err := AggregateByKey(lk, lv, 2)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([][][]float64, len(lv))
	for i, v := range lv {
		cols[i] = [][]float64{v}
	}
	got, err := AggregateTuples(lk, cols, 2, sumSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key ||
			math.Float64bits(got[i].Aggs[0]) != math.Float64bits(want[i].Sum) {
			t.Fatalf("group %d: (%d, %016x), want (%d, %016x)", i,
				got[i].Key, math.Float64bits(got[i].Aggs[0]),
				want[i].Key, math.Float64bits(want[i].Sum))
		}
	}
}

// TestValidateShardColumns covers the shard-shape contract: every
// column a spec reads must exist and match the key count, except on
// empty shards, which may omit columns entirely.
func TestValidateShardColumns(t *testing.T) {
	specs := []sqlagg.AggSpec{
		{Kind: sqlagg.AggSum, Levels: levels, Col: 0},
		{Kind: sqlagg.AggAvg, Levels: levels, Col: 2},
	}
	ok := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if err := ValidateShardColumns([][]uint32{{1, 2}}, [][][]float64{ok}, specs); err != nil {
		t.Fatalf("valid shard rejected: %v", err)
	}
	// Empty shard with no columns at all is fine.
	if err := ValidateShardColumns([][]uint32{nil}, [][][]float64{nil}, specs); err != nil {
		t.Fatalf("empty shard rejected: %v", err)
	}
	cases := []struct {
		name string
		keys [][]uint32
		cols [][][]float64
		sp   []sqlagg.AggSpec
	}{
		{"no specs", [][]uint32{{1}}, [][][]float64{{{1}}}, nil},
		{"bad spec", [][]uint32{{1}}, [][][]float64{{{1}}},
			[]sqlagg.AggSpec{{Kind: 0, Col: 0}}},
		{"negative col", [][]uint32{{1}}, [][][]float64{{{1}}},
			[]sqlagg.AggSpec{{Kind: sqlagg.AggSum, Col: -1}}},
		{"missing column", [][]uint32{{1, 2}}, [][][]float64{{{1, 2}}}, specs},
		{"short column", [][]uint32{{1, 2}}, [][][]float64{{{1, 2}, {3}, {4, 5}}}, specs},
		{"long column", [][]uint32{{1, 2}}, [][][]float64{{{1, 2}, {3, 4, 9}, {4, 5}}}, specs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateShardColumns(tc.keys, tc.cols, tc.sp); err == nil {
				t.Errorf("accepted")
			}
		})
	}

	// The operator surfaces the same failures as ErrShardMismatch or
	// spec errors before any node spawns.
	if _, err := AggregateTuples([][]uint32{{1, 2}}, [][][]float64{{{1, 2}}}, 1, specs); err == nil {
		t.Error("AggregateTuples accepted a shard missing a bound column")
	}
	if _, err := AggregateTuples(nil, nil, 1, specs); !errors.Is(err, ErrNoShards) {
		t.Errorf("no shards: %v, want ErrNoShards", err)
	}
	if _, err := AggregateTuples([][]uint32{{1}}, nil, 1, specs); !errors.Is(err, ErrShardMismatch) {
		t.Errorf("shard count mismatch: %v, want ErrShardMismatch", err)
	}
	if _, err := AggregateTuples([][]uint32{{1}}, [][][]float64{{{1}, {1}, {1}}}, 0, specs); !errors.Is(err, ErrWorkers) {
		t.Errorf("workers=0: %v, want ErrWorkers", err)
	}
}

// TestTupleGroupsCodec pins the exported gather codec: round trip,
// single-spec byte-compatibility with the Group codec, and strict
// length validation.
func TestTupleGroupsCodec(t *testing.T) {
	gs := []TupleGroup{
		{Key: 3, Aggs: []float64{1.5, -2.25, 8}},
		{Key: 9, Aggs: []float64{math.Inf(1), 0, -0.0}},
	}
	buf := EncodeTupleGroups(gs, 3)
	back, err := DecodeTupleGroups(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Key != 3 || back[1].Key != 9 {
		t.Fatalf("round trip: %+v", back)
	}
	for i := range gs {
		for s := range gs[i].Aggs {
			if math.Float64bits(back[i].Aggs[s]) != math.Float64bits(gs[i].Aggs[s]) {
				t.Fatalf("value %d/%d changed in flight", i, s)
			}
		}
	}
	// Single-spec tuples and plain groups share one wire format.
	single := []TupleGroup{{Key: 7, Aggs: []float64{42.5}}}
	plain := EncodeGroups([]Group{{Key: 7, Sum: 42.5}})
	if got := EncodeTupleGroups(single, 1); string(got) != string(plain) {
		t.Fatalf("single-spec tuple bytes differ from Group bytes")
	}
	if _, err := DecodeTupleGroups(buf[:len(buf)-1], 3); err == nil {
		t.Error("ragged payload accepted")
	}
	if _, err := DecodeTupleGroups(buf, 0); err == nil {
		t.Error("nspecs=0 accepted")
	}
	if _, err := DecodeTupleGroups(buf, 2); err == nil {
		t.Error("wrong spec arity accepted")
	}
}
