package dist

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/hashagg"
	"repro/internal/partition"
	"repro/internal/rsum"
	"repro/internal/sqlagg"
	"repro/internal/workload"
)

// Tests of the zero-allocation shuffle/gather hot path: in-place state
// encoding, the contiguous-buffer reassembler, and batch sends.

// TestShuffleEncodeZeroAlloc pins the shuffle's per-key encode loop to
// zero steady-state allocations: with the frame buffer grown once,
// encoding a whole aggregation table of partial states in place must
// not touch the heap.
func TestShuffleEncodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	table := hashagg.New(512, hashagg.Identity, newPartial)
	for k := uint32(0); k < 500; k++ {
		st := table.Upsert(k * 256)
		st.Add(float64(k) * 1.5)
		st.Add(-0x1p-30 * float64(k+1))
	}
	proto := newPartial()
	frame := make([]byte, 0, table.Len()*(8+proto.EncodedSize()))
	var encErr error
	encode := func() {
		frame = frame[:0]
		table.ForEach(func(key uint32, s *rsum.State64) {
			if encErr != nil {
				return
			}
			frame, encErr = appendPairState(frame, key, s)
		})
	}
	allocs := testing.AllocsPerRun(100, encode)
	if encErr != nil {
		t.Fatal(encErr)
	}
	if len(frame) != table.Len()*(8+proto.EncodedSize()) {
		t.Fatalf("frame is %d bytes, want %d", len(frame), table.Len()*(8+proto.EncodedSize()))
	}
	if allocs != 0 {
		t.Fatalf("shuffle encode loop: %v allocs/op, want 0", allocs)
	}
}

// TestTupleEncodeZeroAlloc extends the zero-allocation pin to the
// multi-aggregate shuffle path: encoding a table of state tuples (a
// Q1-shaped catalog: SUMs, AVGs, COUNT, and a MIN for the fixed-size
// path) into a frame with capacity must not touch the heap.
func TestTupleEncodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	specs := []sqlagg.AggSpec{
		{Kind: sqlagg.AggSum, Levels: levels, Col: 0},
		{Kind: sqlagg.AggSum, Levels: levels, Col: 1},
		{Kind: sqlagg.AggAvg, Levels: levels, Col: 0},
		{Kind: sqlagg.AggCount, Levels: levels, Col: 0},
		{Kind: sqlagg.AggMin, Levels: levels, Col: 1},
	}
	plan, err := newTuplePlan(specs)
	if err != nil {
		t.Fatal(err)
	}
	table := hashagg.New(256, hashagg.Identity, plan.newTuple)
	for k := uint32(0); k < 200; k++ {
		tup := table.Upsert(k * 64)
		for i, sp := range plan.specs {
			tup.states[i].Add(float64(k)*1.5 - float64(sp.Col))
		}
	}
	frame := make([]byte, 0, table.Len()*(8+plan.width))
	var encErr error
	encode := func() {
		frame = frame[:0]
		table.ForEach(func(key uint32, tup *aggTuple) {
			if encErr != nil {
				return
			}
			frame, encErr = appendTuple(frame, key, tup)
		})
	}
	allocs := testing.AllocsPerRun(100, encode)
	if encErr != nil {
		t.Fatal(encErr)
	}
	if len(frame) != table.Len()*(8+plan.width) {
		t.Fatalf("frame is %d bytes, want %d", len(frame), table.Len()*(8+plan.width))
	}
	if allocs != 0 {
		t.Fatalf("tuple encode loop: %v allocs/op, want 0", allocs)
	}
}

// TestReassemblySteadyStateZeroAlloc pins the reassembler's per-chunk
// cost: once a stream's contiguous buffer and arrival bitmap exist,
// accepting further chunks allocates nothing — and chunks of an
// already-completed stream are swallowed allocation-free (the
// chunk-flood path).
func TestReassemblySteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	const chunkSize = 64
	payload := bytes.Repeat([]byte{0xAB}, 400*chunkSize-10)
	chunks := splitFrame(Frame{Kind: KindGroups, From: 1, To: 0, Seq: 5, Payload: payload}, chunkSize)
	if len(chunks) != 400 {
		t.Fatalf("%d chunks, want 400", len(chunks))
	}
	asm := newReassembler(0)
	if _, _, _, err := asm.accept(chunks[0]); err != nil {
		t.Fatal(err)
	}
	i := 1
	allocs := testing.AllocsPerRun(300, func() {
		if _, complete, fresh, err := asm.accept(chunks[i]); err != nil || complete || !fresh {
			t.Fatalf("chunk %d: complete=%v fresh=%v err=%v", i, complete, fresh, err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("mid-stream chunk placement: %v allocs/op, want 0", allocs)
	}

	var final Frame
	completions := 0
	for ; i < len(chunks); i++ {
		msg, complete, _, err := asm.accept(chunks[i])
		if err != nil {
			t.Fatal(err)
		}
		if complete {
			completions++
			final = msg
		}
	}
	if completions != 1 || !bytes.Equal(final.Payload, payload) {
		t.Fatalf("completions=%d, payload %d bytes, want %d", completions, len(final.Payload), len(payload))
	}

	allocs = testing.AllocsPerRun(100, func() {
		if _, complete, fresh, err := asm.accept(chunks[3]); err != nil || complete || fresh {
			t.Fatalf("completed-stream chunk not swallowed: complete=%v fresh=%v err=%v", complete, fresh, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("completed-stream swallow: %v allocs/op, want 0", allocs)
	}
}

// TestReassemblerRejectsInconsistentChunkSizes: splitFrame guarantees
// every non-final chunk has the same size and the final chunk is no
// larger; the reassembler enforces that shape at the trust boundary and
// keeps the stream recoverable after rejecting a malformed chunk.
func TestReassemblerRejectsInconsistentChunkSizes(t *testing.T) {
	mk := func(seq, chunk, chunks uint32, size int) Frame {
		return Frame{Kind: KindGroups, From: 1, To: 0, Seq: seq,
			Chunk: chunk, Chunks: chunks, Payload: bytes.Repeat([]byte{byte(chunk + 1)}, size)}
	}
	asm := newReassembler(0)

	// Non-final chunk that contradicts the learned stride.
	if _, _, _, err := asm.accept(mk(0, 0, 3, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := asm.accept(mk(0, 1, 3, 9)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("mismatched non-final chunk: %v, want ErrBadFrame", err)
	}
	// The stream is still completable with well-shaped chunks.
	if _, complete, _, err := asm.accept(mk(0, 1, 3, 10)); err != nil || complete {
		t.Fatalf("recovery chunk: complete=%v err=%v", complete, err)
	}
	msg, complete, _, err := asm.accept(mk(0, 2, 3, 4))
	if err != nil || !complete || len(msg.Payload) != 24 {
		t.Fatalf("completion after recovery: complete=%v len=%d err=%v", complete, len(msg.Payload), err)
	}

	// Final chunk larger than the stride.
	if _, _, _, err := asm.accept(mk(1, 0, 3, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := asm.accept(mk(1, 2, 3, 11)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized final chunk: %v, want ErrBadFrame", err)
	}

	// Stashed final chunk revealed oversized by a later non-final chunk.
	if _, _, _, err := asm.accept(mk(2, 2, 3, 12)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := asm.accept(mk(2, 0, 3, 10)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("stride under stashed final: %v, want ErrBadFrame", err)
	}

	// A stream whose declared buffer could never fit the budget is
	// rejected on its first non-final chunk, before any allocation.
	small := newReassembler(100)
	if _, _, _, err := small.accept(mk(3, 0, 1000, 10)); !errors.Is(err, ErrChunkBudget) {
		t.Fatalf("declared-impossible stream: %v, want ErrChunkBudget", err)
	}
}

// TestReassemblerBudgetChargesAllocatedBuffers: the budget must bound
// allocated reassembly memory, not just arrived bytes — a peer opening
// many barely-started streams, each declaring a large chunk count,
// must trip the budget once the allocated buffers reach it, even
// though almost no payload has arrived.
func TestReassemblerBudgetChargesAllocatedBuffers(t *testing.T) {
	// Each stream's first chunk allocates a 100-chunk × 10-byte = 1000-
	// byte buffer while delivering only 10 bytes. Budget 2500: two
	// streams fit (2000 charged), the third must be rejected.
	asm := newReassembler(2500)
	for seq := uint32(0); seq < 2; seq++ {
		f := Frame{Kind: KindGroups, From: 1, To: 0, Seq: seq, Chunk: 0, Chunks: 100,
			Payload: bytes.Repeat([]byte{1}, 10)}
		if _, _, _, err := asm.accept(f); err != nil {
			t.Fatalf("stream %d: %v", seq, err)
		}
	}
	f := Frame{Kind: KindGroups, From: 1, To: 0, Seq: 2, Chunk: 0, Chunks: 100,
		Payload: bytes.Repeat([]byte{1}, 10)}
	if _, _, _, err := asm.accept(f); !errors.Is(err, ErrChunkBudget) {
		t.Fatalf("third 1000-byte buffer on a 2500 budget: %v, want ErrChunkBudget", err)
	}
}

// TestReassemblerMissingBeforeStride: when only the final chunk of a
// stream has arrived (stashed, stride unknown), missing() must report
// every other index so the straggler path re-requests exactly those.
func TestReassemblerMissingBeforeStride(t *testing.T) {
	asm := newReassembler(0)
	final := Frame{Kind: KindGroups, From: 2, To: 0, Seq: 0, Chunk: 4, Chunks: 5, Payload: []byte{1, 2, 3}}
	if _, complete, fresh, err := asm.accept(final); err != nil || complete || !fresh {
		t.Fatalf("stashed final: complete=%v fresh=%v err=%v", complete, fresh, err)
	}
	got := asm.missing(2, 0)
	want := []uint32{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missing = %v, want %v", got, want)
		}
	}
	// Duplicate of the stashed final chunk is absorbed silently.
	if _, complete, fresh, err := asm.accept(final); err != nil || complete || fresh {
		t.Fatalf("duplicate stashed final: complete=%v fresh=%v err=%v", complete, fresh, err)
	}
}

// TestCombineShardMatchesLegacyEncoding: the in-place AppendBinary
// shuffle encoder must produce, per destination, exactly the ⟨key,
// state⟩ pairs the legacy MarshalBinary+appendPair path produces, with
// byte-identical per-key state encodings (pair order within a frame is
// a slot-order detail; owners merge per key, so order is immaterial).
func TestCombineShardMatchesLegacyEncoding(t *testing.T) {
	const rows = 3000
	const nodes = 4
	keys := workload.Keys(5, rows, 700)
	vals := workload.Values64(6, rows, workload.MixedMag)

	plan, err := newTuplePlan(sumSpecs())
	if err != nil {
		t.Fatal(err)
	}
	frames, err := combineShard(keys, [][]float64{vals}, plan, nodes, 2, Config{}.maxMessage())
	if err != nil {
		t.Fatal(err)
	}

	// Legacy path: fresh table per partition, MarshalBinary per key.
	out := partition.Do(keys, vals, 0, shuffleFanout, 2)
	legacy := make([]map[uint32][]byte, nodes)
	for d := range legacy {
		legacy[d] = make(map[uint32][]byte)
	}
	for p := 0; p < out.NumPartitions(); p++ {
		pk, pv := out.Partition(p)
		if len(pk) == 0 {
			continue
		}
		table := hashagg.New(len(pk)/8+8, hashagg.Identity, newPartial)
		for i, k := range pk {
			table.Upsert(k).Add(pv[i])
		}
		d := p % nodes
		table.ForEach(func(key uint32, st *rsum.State64) {
			enc, err := st.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			legacy[d][key] = enc
		})
	}

	for d := 0; d < nodes; d++ {
		got := make(map[uint32][]byte)
		if err := walkFrame(frames[d], func(key uint32, enc []byte) error {
			got[key] = append([]byte(nil), enc...)
			return nil
		}); err != nil {
			t.Fatalf("destination %d: %v", d, err)
		}
		if len(got) != len(legacy[d]) {
			t.Fatalf("destination %d: %d keys, legacy has %d", d, len(got), len(legacy[d]))
		}
		for key, enc := range legacy[d] {
			if !bytes.Equal(got[key], enc) {
				t.Fatalf("destination %d key %d: encoding differs from legacy", d, key)
			}
		}
	}
}

// TestSendBatchDelivers: SendBatch must deliver every frame with
// per-pair order preserved, across mixed-destination batches, on both
// built-in transports.
func TestSendBatchDelivers(t *testing.T) {
	for name, factory := range map[string]TransportFactory{
		"chan": ChanTransportFactory,
		"tcp":  TCPTransportFactory,
	} {
		t.Run(name, func(t *testing.T) {
			tr, err := factory(3)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			bs, ok := tr.(BatchSender)
			if !ok {
				t.Fatal("built-in transport does not implement BatchSender")
			}
			var fs []Frame
			for i := 0; i < 5; i++ {
				fs = append(fs, Frame{Kind: KindGroups, From: 0, To: 1, Seq: 0,
					Chunk: uint32(i), Chunks: 5, Payload: bytes.Repeat([]byte{byte(i + 1)}, 8)})
			}
			fs = append(fs,
				Frame{Kind: KindGather, From: 0, To: 2, Seq: 1, Chunks: 1, Payload: []byte("two")},
				Frame{Kind: KindGather, From: 1, To: 2, Seq: 1, Chunks: 1, Payload: []byte("also two")})
			if err := bs.SendBatch(fs); err != nil {
				t.Fatal(err)
			}
			// Node 1: the 5-chunk run, in order (one pair, one connection).
			for i := 0; i < 5; i++ {
				f, err := tr.Recv(1, 2*time.Second)
				if err != nil {
					t.Fatalf("recv chunk %d: %v", i, err)
				}
				if f.Chunk != uint32(i) || len(f.Payload) != 8 || f.Payload[0] != byte(i+1) {
					t.Fatalf("chunk %d arrived as %+v", i, f)
				}
			}
			// Node 2: both gathers, any inter-pair order.
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				f, err := tr.Recv(2, 2*time.Second)
				if err != nil {
					t.Fatalf("recv gather %d: %v", i, err)
				}
				seen[f.From] = true
			}
			if !seen[0] || !seen[1] {
				t.Fatalf("gathers from %v, want nodes 0 and 1", seen)
			}
		})
	}
}

// TestSendBatchEndToEndTCPChunked runs the full GROUP BY over a raw
// (undecorated) TCP transport with a chunk payload that forces
// multi-chunk streams, so sendChunks takes the SendBatch path end to
// end; bits must match the sequential reference.
func TestSendBatchEndToEndTCPChunked(t *testing.T) {
	const rows = 4000
	keys := workload.Keys(81, rows, 900)
	vals := workload.Values64(82, rows, workload.MixedMag)
	want := refGroups(keys, vals)

	cfg := Config{NewTransport: TCPTransportFactory, MaxChunkPayload: 2048}
	for _, nodes := range []int{2, 3} {
		lk, lv := dealRows(keys, vals, nodes)
		out, err := AggregateByKeyConfig(lk, lv, 2, cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", nodes, err)
		}
		checkGroups(t, out, want, nodes, 2)
	}
}
