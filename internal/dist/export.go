package dist

import "time"

// Support surface for external Transport implementations and cluster
// runtimes — concretely internal/dist/proc, which runs the protocols of
// this package across separate OS processes. Everything here is a thin
// exported handle over the battle-tested internals: the multi-process
// runtime reuses the same chunking, reassembly, mailbox, and wire-error
// machinery the in-process transports do, so cross-process runs inherit
// their invariants (uniform chunk stride, per-(from, seq) dedup,
// budget-bounded reassembly, sentinel-preserving wire errors) instead
// of reimplementing them.

// SplitFrame splits one logical frame into its wire chunks: every chunk
// carries at most maxChunk payload bytes, all but the last exactly
// maxChunk (the uniform stride the reassembler enforces). maxChunk <= 0
// or above the frame ceiling selects DefaultChunkPayload. Payloads
// alias f.Payload.
func SplitFrame(f Frame, maxChunk int) []Frame { return splitFrame(f, maxChunk) }

// Reassembler rebuilds logical messages from chunk streams on one
// receive path: out-of-order buffering, per-chunk dedup,
// completed-stream swallowing, and a byte budget across incomplete
// messages (budget <= 0 selects DefaultReassemblyBudget). It is the
// exact reassembler the aggregation protocols use; the multi-process
// runtime runs one per control connection so chunked job specs and
// results obey the same trust-boundary rules as data-plane traffic.
// Not safe for concurrent use.
type Reassembler struct {
	r *reassembler
}

// NewReassembler returns an empty reassembler with the given budget.
func NewReassembler(budget int) *Reassembler {
	return &Reassembler{r: newReassembler(budget)}
}

// Accept consumes one wire frame; see reassembler.accept. When the
// frame completes its logical message, msg carries the full payload and
// complete is true. fresh reports whether the frame contributed new
// bytes (progress, for straggler give-up budgets).
func (a *Reassembler) Accept(f Frame) (msg Frame, complete, fresh bool, err error) {
	return a.r.accept(f)
}

// Missing returns the chunk indexes still absent from the partially
// received message (from, seq), or nil if no chunk of it has arrived
// (re-request the whole stream).
func (a *Reassembler) Missing(from int, seq uint32) []uint32 {
	return a.r.missing(from, seq)
}

// Mailboxes is the shared receive side of the built-in transports — one
// unbounded inbox per node plus a close signal — exported so external
// transports (the multi-process runtime's socket transport) get
// Recv/Close semantics identical to ChanTransport and TCPTransport by
// construction. Inboxes are unbounded on purpose: any fixed capacity is
// a deadlock class under chunk floods; memory defense is the reassembly
// budget, not backpressure.
type Mailboxes struct {
	m *mailboxes
}

// NewMailboxes returns the receive side for an n-node cluster.
func NewMailboxes(n int) *Mailboxes { return &Mailboxes{m: newMailboxes(n)} }

// Deliver enqueues f for node f.To. It never blocks; after Shutdown it
// returns ErrClosed.
func (mb *Mailboxes) Deliver(f Frame) error { return mb.m.deliver(f) }

// DeliverBatch enqueues a run of frames sharing one destination under a
// single inbox lock. All frames must have the same To.
func (mb *Mailboxes) DeliverBatch(fs []Frame) error { return mb.m.deliverBatch(fs) }

// Recv returns the next frame addressed to node id; timeout <= 0 blocks
// until a frame arrives or Shutdown.
func (mb *Mailboxes) Recv(id int, timeout time.Duration) (Frame, error) {
	return mb.m.Recv(id, timeout)
}

// Nodes returns the cluster size.
func (mb *Mailboxes) Nodes() int { return mb.m.Nodes() }

// Shutdown unblocks all pending receives and fails later delivers with
// ErrClosed. Idempotent.
func (mb *Mailboxes) Shutdown() { mb.m.close() }

// Done is closed when Shutdown has been called — for send paths that
// must map post-close failures to ErrClosed the way the built-in
// transports do.
func (mb *Mailboxes) Done() <-chan struct{} { return mb.m.closed }

// RetainPayload returns f with its payload copied into a buffer the
// frame owns — the copy-on-retain side of the ReadFrameBuf handoff
// rule, for external socket read loops (the multi-process runtime's
// data and control planes) that reuse a connection read buffer and hand
// frames to a retaining component such as Mailboxes or a Reassembler.
func RetainPayload(f Frame) Frame { return retainPayload(f) }

// EncodeErr flattens an error into a KindError payload, preserving the
// wire-crossing sentinels (ErrStraggler, ErrBadFrame, ErrChunkBudget,
// ErrHandshake) as a leading code byte so errors.Is survives the trust
// boundary.
func EncodeErr(err error) []byte { return encodeErr(err) }

// DecodeErr inverts EncodeErr for a KindError payload received from
// node from (use a negative from for the supervisor of a multi-process
// run).
func DecodeErr(from int, payload []byte) error { return decodeErr(from, payload) }

// EncodeGroups flattens finalized groups into the gather wire layout
// (4-byte key, 8-byte float64 bits per group) — also the result payload
// of a multi-process GROUP BY.
func EncodeGroups(gs []Group) []byte { return encodeGroups(gs) }

// DecodeGroups inverts EncodeGroups.
func DecodeGroups(buf []byte) []Group { return decodeGroups(buf) }

// EncodeTupleGroups flattens finalized multi-aggregate groups into the
// gather wire layout (4-byte key, then one 8-byte float64 per spec) —
// also the result payload of a multi-process GROUP BY. A single-spec
// list reproduces EncodeGroups's bytes.
func EncodeTupleGroups(gs []TupleGroup, nspecs int) []byte { return encodeTupleGroups(gs, nspecs) }

// DecodeTupleGroups inverts EncodeTupleGroups, rejecting payloads whose
// length is not an exact multiple of the record size.
func DecodeTupleGroups(buf []byte, nspecs int) ([]TupleGroup, error) {
	return decodeTupleGroups(buf, nspecs)
}

// Active reports whether the plan injects any fault at all.
func (p FaultPlan) Active() bool { return p.active() }

// Valid reports whether t is a known topology.
func (t Topology) Valid() bool { return t.valid() }
