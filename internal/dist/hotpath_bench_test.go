package dist

import (
	"bytes"
	"testing"

	"repro/internal/hashagg"
	"repro/internal/rsum"
	"repro/internal/sqlagg"
)

// Hot-path benchmarks of the shuffle data plane. The "legacy" variants
// reproduce the pre-optimization code shape (MarshalBinary-then-copy;
// map-buffered reassembly with a final concatenation) so the
// allocs/op win of the in-place paths is measured, not asserted:
//
//	go test ./internal/dist -bench 'ShuffleEncode|Reassembly' -benchmem

func benchTable(n int) *hashagg.Table[rsum.State64] {
	table := hashagg.New(n, hashagg.Identity, newPartial)
	for k := 0; k < n; k++ {
		st := table.Upsert(uint32(k) * 256)
		st.Add(float64(k)*1.5 + 0.25)
		st.Add(0x1p-40 * float64(k+1))
	}
	return table
}

// BenchmarkShuffleEncode measures encoding one pre-aggregated partition
// table into a shuffle frame: the in-place AppendBinary path versus the
// legacy per-key MarshalBinary allocation.
func BenchmarkShuffleEncode(b *testing.B) {
	const groups = 4096
	table := benchTable(groups)
	proto := newPartial()
	want := groups * (8 + proto.EncodedSize())

	b.Run("append", func(b *testing.B) {
		frame := make([]byte, 0, want)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame = frame[:0]
			var err error
			table.ForEach(func(key uint32, st *rsum.State64) {
				if err == nil {
					frame, err = appendPairState(frame, key, st)
				}
			})
			if err != nil || len(frame) != want {
				b.Fatalf("frame %d bytes, err %v", len(frame), err)
			}
		}
	})
	b.Run("legacy-marshal", func(b *testing.B) {
		frame := make([]byte, 0, want)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame = frame[:0]
			var err error
			table.ForEach(func(key uint32, st *rsum.State64) {
				if err != nil {
					return
				}
				var enc []byte
				enc, err = st.MarshalBinary()
				if err == nil {
					frame = appendPair(frame, key, enc)
				}
			})
			if err != nil || len(frame) != want {
				b.Fatalf("frame %d bytes, err %v", len(frame), err)
			}
		}
	})
}

// benchTuplePlan is a Q1-shaped aggregate catalog for the multi-
// aggregate benchmark cells: two SUMs, an AVG, and the row COUNT over
// two value columns.
func benchTuplePlan(b *testing.B) *tuplePlan {
	b.Helper()
	plan, err := newTuplePlan([]sqlagg.AggSpec{
		{Kind: sqlagg.AggSum, Levels: levels, Col: 0},
		{Kind: sqlagg.AggSum, Levels: levels, Col: 1},
		{Kind: sqlagg.AggAvg, Levels: levels, Col: 0},
		{Kind: sqlagg.AggCount, Levels: levels, Col: 0},
	})
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkTupleEncode measures encoding one pre-aggregated table of
// multi-aggregate state tuples into a shuffle frame — the spec-tagged
// generalization of BenchmarkShuffleEncode's append cell. It must stay
// allocation-free with frame capacity (TestRootMergeAllocBound and
// TestTupleEncodeZeroAlloc pin the exact alloc counts).
func BenchmarkTupleEncode(b *testing.B) {
	const groups = 4096
	plan := benchTuplePlan(b)
	table := hashagg.New(groups, hashagg.Identity, plan.newTuple)
	for k := 0; k < groups; k++ {
		tup := table.Upsert(uint32(k) * 256)
		for i := range tup.states {
			tup.states[i].Add(float64(k)*1.5 + 0.25)
			tup.states[i].Add(0x1p-40 * float64(k+1))
		}
	}
	want := groups * (8 + plan.width)

	frame := make([]byte, 0, want)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame = frame[:0]
		var err error
		table.ForEach(func(key uint32, tup *aggTuple) {
			if err == nil {
				frame, err = appendTuple(frame, key, tup)
			}
		})
		if err != nil || len(frame) != want {
			b.Fatalf("frame %d bytes, err %v", len(frame), err)
		}
	}
}

// TestRootMergeAllocBound pins the root's gather merge: combining the
// per-owner key-sorted runs into the final result is a k-way merge that
// allocates exactly its output slice and the per-run cursor array —
// never a re-sort of every group (the shape this replaced). A
// regression that reintroduces per-group allocation or a global sort
// trips this count.
func TestRootMergeAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	const runsN, perRun = 4, 1000
	runs := make([][]TupleGroup, runsN)
	for r := range runs {
		for i := 0; i < perRun; i++ {
			key := uint32(i*runsN + r) // disjoint, interleaved key sets
			runs[r] = append(runs[r], TupleGroup{Key: key, Aggs: []float64{float64(key)}})
		}
	}
	var out []TupleGroup
	allocs := testing.AllocsPerRun(20, func() {
		out = mergeSortedRuns(runs)
	})
	if len(out) != runsN*perRun {
		t.Fatalf("merged %d groups, want %d", len(out), runsN*perRun)
	}
	for i := range out {
		if out[i].Key != uint32(i) {
			t.Fatalf("merge order broken at %d: key %d", i, out[i].Key)
		}
	}
	if allocs > 2 {
		t.Fatalf("root merge: %v allocs/op, want <= 2 (output slice + cursors)", allocs)
	}
}

// legacyReassemble is the pre-optimization receive path: buffer chunks
// in a per-stream map, concatenate on completion (two copies and
// per-chunk map churn).
func legacyReassemble(chunks []Frame) []byte {
	buffered := make(map[uint32][]byte) // unsized, as the old partialMsg allocated it
	total := 0
	for _, c := range chunks {
		buffered[c.Chunk] = c.Payload
		total += len(c.Payload)
	}
	payload := make([]byte, 0, total)
	for i := uint32(0); i < uint32(len(chunks)); i++ {
		payload = append(payload, buffered[i]...)
	}
	return payload
}

// BenchmarkReassembly measures rebuilding one logical message from its
// chunk stream: the contiguous-buffer reassembler versus the legacy
// map-and-concat shape, plus the single-frame fast path.
func BenchmarkReassembly(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 1<<20)
	chunks := splitFrame(Frame{Kind: KindGroups, From: 1, To: 0, Seq: 0, Payload: payload}, 16<<10)
	single := splitFrame(Frame{Kind: KindGroups, From: 1, To: 0, Seq: 0, Payload: payload[:1024]}, 0)

	b.Run("multi-64chunk", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			asm := newReassembler(0)
			var got []byte
			for _, c := range chunks {
				msg, complete, _, err := asm.accept(c)
				if err != nil {
					b.Fatal(err)
				}
				if complete {
					got = msg.Payload
				}
			}
			if len(got) != len(payload) {
				b.Fatalf("reassembled %d bytes", len(got))
			}
		}
	})
	b.Run("legacy-map-concat", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if got := legacyReassemble(chunks); len(got) != len(payload) {
				b.Fatalf("reassembled %d bytes", len(got))
			}
		}
	})
	b.Run("single-frame", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(single[0].Payload)))
		for i := 0; i < b.N; i++ {
			asm := newReassembler(0)
			msg, complete, _, err := asm.accept(single[0])
			if err != nil || !complete || len(msg.Payload) != 1024 {
				b.Fatalf("complete=%v err=%v", complete, err)
			}
		}
	})
}
