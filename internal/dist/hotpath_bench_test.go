package dist

import (
	"bytes"
	"testing"

	"repro/internal/hashagg"
	"repro/internal/rsum"
)

// Hot-path benchmarks of the shuffle data plane. The "legacy" variants
// reproduce the pre-optimization code shape (MarshalBinary-then-copy;
// map-buffered reassembly with a final concatenation) so the
// allocs/op win of the in-place paths is measured, not asserted:
//
//	go test ./internal/dist -bench 'ShuffleEncode|Reassembly' -benchmem

func benchTable(n int) *hashagg.Table[rsum.State64] {
	table := hashagg.New(n, hashagg.Identity, newPartial)
	for k := 0; k < n; k++ {
		st := table.Upsert(uint32(k) * 256)
		st.Add(float64(k)*1.5 + 0.25)
		st.Add(0x1p-40 * float64(k+1))
	}
	return table
}

// BenchmarkShuffleEncode measures encoding one pre-aggregated partition
// table into a shuffle frame: the in-place AppendBinary path versus the
// legacy per-key MarshalBinary allocation.
func BenchmarkShuffleEncode(b *testing.B) {
	const groups = 4096
	table := benchTable(groups)
	proto := newPartial()
	want := groups * (8 + proto.EncodedSize())

	b.Run("append", func(b *testing.B) {
		frame := make([]byte, 0, want)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame = frame[:0]
			var err error
			table.ForEach(func(key uint32, st *rsum.State64) {
				if err == nil {
					frame, err = appendPairState(frame, key, st)
				}
			})
			if err != nil || len(frame) != want {
				b.Fatalf("frame %d bytes, err %v", len(frame), err)
			}
		}
	})
	b.Run("legacy-marshal", func(b *testing.B) {
		frame := make([]byte, 0, want)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame = frame[:0]
			var err error
			table.ForEach(func(key uint32, st *rsum.State64) {
				if err != nil {
					return
				}
				var enc []byte
				enc, err = st.MarshalBinary()
				if err == nil {
					frame = appendPair(frame, key, enc)
				}
			})
			if err != nil || len(frame) != want {
				b.Fatalf("frame %d bytes, err %v", len(frame), err)
			}
		}
	})
}

// legacyReassemble is the pre-optimization receive path: buffer chunks
// in a per-stream map, concatenate on completion (two copies and
// per-chunk map churn).
func legacyReassemble(chunks []Frame) []byte {
	buffered := make(map[uint32][]byte) // unsized, as the old partialMsg allocated it
	total := 0
	for _, c := range chunks {
		buffered[c.Chunk] = c.Payload
		total += len(c.Payload)
	}
	payload := make([]byte, 0, total)
	for i := uint32(0); i < uint32(len(chunks)); i++ {
		payload = append(payload, buffered[i]...)
	}
	return payload
}

// BenchmarkReassembly measures rebuilding one logical message from its
// chunk stream: the contiguous-buffer reassembler versus the legacy
// map-and-concat shape, plus the single-frame fast path.
func BenchmarkReassembly(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 1<<20)
	chunks := splitFrame(Frame{Kind: KindGroups, From: 1, To: 0, Seq: 0, Payload: payload}, 16<<10)
	single := splitFrame(Frame{Kind: KindGroups, From: 1, To: 0, Seq: 0, Payload: payload[:1024]}, 0)

	b.Run("multi-64chunk", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			asm := newReassembler(0)
			var got []byte
			for _, c := range chunks {
				msg, complete, _, err := asm.accept(c)
				if err != nil {
					b.Fatal(err)
				}
				if complete {
					got = msg.Payload
				}
			}
			if len(got) != len(payload) {
				b.Fatalf("reassembled %d bytes", len(got))
			}
		}
	})
	b.Run("legacy-map-concat", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if got := legacyReassemble(chunks); len(got) != len(payload) {
				b.Fatalf("reassembled %d bytes", len(got))
			}
		}
	})
	b.Run("single-frame", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(single[0].Payload)))
		for i := 0; i < b.N; i++ {
			asm := newReassembler(0)
			msg, complete, _, err := asm.accept(single[0])
			if err != nil || !complete || len(msg.Payload) != 1024 {
				b.Fatalf("complete=%v err=%v", complete, err)
			}
		}
	})
}
