package dist

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/hashagg"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rsum"
	"repro/internal/sqlagg"
)

// newPartial initializes a bare SUM partial state (the payload of the
// single-aggregate fast helpers and the hot-path benchmarks).
func newPartial() rsum.State64 { return rsum.NewState64(levels) }

// sumSpecs is the spec list of the classic GROUP BY SUM: one
// reproducible SUM over column 0, at the distributed plane's level
// count. Its wire tuples are byte-identical to the pre-spec frames.
func sumSpecs() []sqlagg.AggSpec {
	return []sqlagg.AggSpec{{Kind: sqlagg.AggSum, Levels: levels, Col: 0}}
}

// shuffleFanout is the radix fan-out of the hash shuffle. Keys are
// routed by partition.Do on their low byte; partition p is owned by
// node p mod n, so every key has exactly one owner for a given cluster
// size and GROUP BY needs no cross-node post-merge per key.
const shuffleFanout = 256

var errFrame = errors.New("dist: corrupt shuffle frame")

// Stream ids (Frame.Seq) of the GROUP BY protocol. Every node sends
// exactly one logical message per (destination, stream) — as one or
// more chunk frames — so receivers reassemble and deduplicate per
// (from, seq) stream and count distinct senders per stream.
const (
	seqShuffle = 0 // sender → owner: per-key partial states
	seqGather  = 1 // owner → root: finalized groups
)

// TupleGroup is one output row of a multi-aggregate GROUP BY: the group
// key plus one finalized value per aggregate spec, in spec order.
type TupleGroup struct {
	Key  uint32
	Aggs []float64
}

// aggTuple is the per-key payload of the aggregation tables: one
// aggregate state per spec, in spec order. It is Resettable so reused
// hashagg tables recycle the states in place.
type aggTuple struct {
	states []sqlagg.AggState
}

// Reset empties every state, keeping its configuration.
func (t *aggTuple) Reset() {
	for _, st := range t.states {
		st.Reset()
	}
}

// tuplePlan is the precomputed per-spec layout shared by the combine
// and merge sides of one GROUP BY: the column each spec reads, the
// fixed encoded size of each state, and their total (the wire tuple
// width). Specs must be validated before building a plan.
type tuplePlan struct {
	specs []sqlagg.AggSpec
	sizes []int
	width int
}

func newTuplePlan(specs []sqlagg.AggSpec) (*tuplePlan, error) {
	states, err := sqlagg.NewStates(specs)
	if err != nil {
		return nil, err
	}
	p := &tuplePlan{specs: specs, sizes: make([]int, len(states))}
	for i, st := range states {
		p.sizes[i] = st.EncodedSize()
		p.width += p.sizes[i]
	}
	return p, nil
}

// newTuple instantiates an empty tuple for the plan; specs were
// validated when the plan was built, so construction cannot fail.
func (p *tuplePlan) newTuple() aggTuple {
	states := make([]sqlagg.AggState, len(p.specs))
	for i, sp := range p.specs {
		states[i], _ = sp.New()
	}
	return aggTuple{states: states}
}

// maxCol returns the highest column index any spec reads.
func (p *tuplePlan) maxCol() int {
	m := 0
	for _, sp := range p.specs {
		if sp.Col > m {
			m = sp.Col
		}
	}
	return m
}

// appendPair appends one ⟨key, partial state⟩ pair to a shuffle frame:
// 4-byte little-endian key, 4-byte length, then the canonical state
// encoding.
func appendPair(frame []byte, key uint32, state []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], key)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(state)))
	return append(append(frame, hdr[:]...), state...)
}

// appendPairState is appendPair with the state encoded in place: the
// canonical encoding is appended directly to the frame buffer via
// AppendBinary, so the shuffle's per-key encode loop performs no
// allocation once the frame has capacity (appendPair by contrast needs
// a MarshalBinary heap allocation per key). The layouts are
// byte-identical; the pair length is patched in after encoding.
func appendPairState(frame []byte, key uint32, st *rsum.State64) ([]byte, error) {
	start := len(frame)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], key)
	frame = append(frame, hdr[:]...)
	out, err := st.AppendBinary(frame)
	if err != nil {
		return frame, err
	}
	binary.LittleEndian.PutUint32(out[start+4:], uint32(len(out)-start-8))
	return out, nil
}

// appendTuple extends the in-place encode to a tuple of states: the
// spec-ordered state encodings are appended back to back after the pair
// header, and the pair length is patched in afterwards. A single-SUM
// plan reproduces appendPairState's bytes exactly.
func appendTuple(frame []byte, key uint32, tup *aggTuple) ([]byte, error) {
	start := len(frame)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], key)
	frame = append(frame, hdr[:]...)
	var err error
	for _, st := range tup.states {
		if frame, err = st.AppendBinary(frame); err != nil {
			return frame, err
		}
	}
	binary.LittleEndian.PutUint32(frame[start+4:], uint32(len(frame)-start-8))
	return frame, nil
}

// mergeTuple folds one encoded spec-ordered tuple into the owner's
// states, walking the concatenation by the plan's fixed state sizes.
func (p *tuplePlan) mergeTuple(tup *aggTuple, enc []byte) error {
	if len(enc) != p.width {
		return fmt.Errorf("%w: tuple is %d bytes, plan width %d", errFrame, len(enc), p.width)
	}
	off := 0
	for i, sz := range p.sizes {
		if err := tup.states[i].MergeBinary(enc[off : off+sz]); err != nil {
			return err
		}
		off += sz
	}
	return nil
}

// walkFrame decodes a shuffle frame, invoking fn for every pair.
func walkFrame(frame []byte, fn func(key uint32, state []byte) error) error {
	for len(frame) > 0 {
		if len(frame) < 8 {
			return errFrame
		}
		key := binary.LittleEndian.Uint32(frame[0:])
		sz := int(binary.LittleEndian.Uint32(frame[4:]))
		frame = frame[8:]
		if sz < 0 || sz > len(frame) { // sz < 0: uint32 overflowed 32-bit int
			return errFrame
		}
		if err := fn(key, frame[:sz]); err != nil {
			return err
		}
		frame = frame[sz:]
	}
	return nil
}

// AggregateByKey computes a reproducible distributed GROUP BY SUM.
// Node i holds the rows ⟨localKeys[i][j], localVals[i][j]⟩. It is
// AggregateTuples with the single-SUM spec list; see there for the
// protocol.
func AggregateByKey(localKeys [][]uint32, localVals [][]float64, workers int) ([]Group, error) {
	return AggregateByKeyConfig(localKeys, localVals, workers, Config{})
}

// AggregateByKeyConfig is AggregateByKey over an explicitly configured
// interconnect (see Config); the group list carries the same bits for
// every transport and fault plan.
func AggregateByKeyConfig(localKeys [][]uint32, localVals [][]float64, workers int, cfg Config) ([]Group, error) {
	if len(localVals) != len(localKeys) {
		return nil, fmt.Errorf("%w: %d key shards vs %d value shards",
			ErrShardMismatch, len(localKeys), len(localVals))
	}
	cols := make([][][]float64, len(localVals))
	for i, vals := range localVals {
		cols[i] = [][]float64{vals}
	}
	tuples, err := AggregateTuplesConfig(localKeys, cols, workers, sumSpecs(), cfg)
	if err != nil {
		return nil, err
	}
	groups := make([]Group, len(tuples))
	for i, t := range tuples {
		groups[i] = Group{Key: t.Key, Sum: t.Aggs[0]}
	}
	return groups, nil
}

// AggregateTuples computes a reproducible distributed multi-aggregate
// GROUP BY. Node i holds the rows of shard i: localKeys[i] are the
// group keys and localCols[i] the value columns; each spec names one
// aggregate over one column, and each output row carries the finalized
// values in spec order. The result is bit-identical for every
// distribution of the same multiset of rows across any number of
// nodes, every worker count, and every message arrival order.
func AggregateTuples(localKeys [][]uint32, localCols [][][]float64, workers int, specs []sqlagg.AggSpec) ([]TupleGroup, error) {
	return AggregateTuplesConfig(localKeys, localCols, workers, specs, Config{})
}

// AggregateTuplesConfig is AggregateTuples over an explicitly
// configured interconnect (see Config).
func AggregateTuplesConfig(localKeys [][]uint32, localCols [][][]float64, workers int, specs []sqlagg.AggSpec, cfg Config) ([]TupleGroup, error) {
	n := len(localKeys)
	if n == 0 {
		return nil, ErrNoShards
	}
	if len(localCols) != n {
		return nil, fmt.Errorf("%w: %d key shards vs %d column shards",
			ErrShardMismatch, n, len(localCols))
	}
	if err := ValidateShardColumns(localKeys, localCols, specs); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrWorkers, workers)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := cfg.transport(n)
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	rootCh := make(chan tupleResult, 1)
	for id := 0; id < n; id++ {
		go func(id int) {
			groups, err := RunGroupByNode(id, localKeys[id], localCols[id], workers, specs, tr, cfg)
			if id == 0 {
				rootCh <- tupleResult{groups: groups, err: err}
			}
		}(id)
	}
	m := <-rootCh
	if m.err != nil {
		return nil, m.err
	}
	return m.groups, nil
}

type tupleResult struct {
	groups []TupleGroup
	err    error
}

// ValidateShardColumns checks the shard shape of a multi-aggregate
// GROUP BY input: specs must be valid, every column of a shard must be
// as long as its key slice, and every shard with rows must carry every
// column any spec reads. Shards without rows may omit their columns.
func ValidateShardColumns(localKeys [][]uint32, localCols [][][]float64, specs []sqlagg.AggSpec) error {
	if len(specs) == 0 {
		return fmt.Errorf("%w: empty spec list", sqlagg.ErrBadSpec)
	}
	maxCol := 0
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			return err
		}
		if sp.Col > maxCol {
			maxCol = sp.Col
		}
	}
	for i := range localKeys {
		if len(localKeys[i]) == 0 && len(localCols[i]) == 0 {
			continue
		}
		if len(localCols[i]) <= maxCol {
			return fmt.Errorf("%w: shard %d has %d columns but a spec reads column %d",
				ErrShardMismatch, i, len(localCols[i]), maxCol)
		}
		for c, col := range localCols[i] {
			if len(col) != len(localKeys[i]) {
				return fmt.Errorf("%w: shard %d column %d has %d values for %d keys",
					ErrShardMismatch, i, c, len(col), len(localKeys[i]))
			}
		}
	}
	return nil
}

// RunGroupByNode executes node id's role of the distributed GROUP BY
// over an externally owned transport: combine the local shard into
// per-key tuples of aggregate states (one state per spec), ship one
// shuffle message to every owner (chunked when large), merge the
// messages addressed to this node (exactly one per sender, reassembled
// and deduplicated), finalize, and ship the finalized groups to the
// root. The root (node 0) additionally collects every owner's gather
// message and merges the per-owner sorted runs into the global result —
// which it can do as soon as all gathers are in, because a gather
// proves its owner needed no more resends. Every other node keeps
// serving chunk re-requests and returns only after the transport is
// closed underneath it, with the error its role ended in (already
// announced on the wire) — nil for a clean run. Exported for
// multi-process runtimes (internal/dist/proc); AggregateTuplesConfig
// runs the same function on one goroutine per node.
//
// Like the reduction tree, the shuffle has straggler handling: a
// receiver that makes no progress for ChildDeadline re-requests what is
// missing — whole streams it has heard nothing of, individual chunks of
// partially received ones — every node caches its outgoing chunk lists
// and retransmits on demand, and a permanently silent peer surfaces
// ErrStraggler instead of a hang.
func RunGroupByNode(id int, keys []uint32, cols [][]float64, workers int, specs []sqlagg.AggSpec, tr Transport, cfg Config) ([]TupleGroup, error) {
	n := tr.Nodes()
	plan, cerr := newTuplePlan(specs)
	if cerr == nil {
		cerr = ValidateShardColumns([][]uint32{keys}, [][][]float64{cols}, specs)
	}
	var frames [][]byte
	if cerr == nil {
		frames, cerr = combineShard(keys, cols, plan, n, workers, cfg.maxMessage())
	}

	// outShuffle caches the outgoing shuffle chunks per destination —
	// the combiner's frame, or its failure on the same stream. First
	// sends and straggler retransmissions serve from the same cache, so
	// every transmission of a chunk is identical.
	outShuffle := make([][]Frame, n)
	for d := 0; d < n; d++ {
		var f Frame
		if cerr != nil {
			f = Frame{Kind: KindError, From: id, To: d, Seq: seqShuffle, Payload: encodeErr(cerr)}
		} else {
			f = Frame{Kind: KindGroups, From: id, To: d, Seq: seqShuffle, Payload: frames[d]}
		}
		outShuffle[d] = splitFrame(f, cfg.chunkPayload())
	}

	// Shuffle: one message (possibly empty, so owners can count
	// senders) to every owner. A send failure is survivable: the
	// owner's re-request path retries chunk by chunk (over TCP, on a
	// freshly dialed connection), and if the transport is truly gone
	// every node unblocks through Recv failing.
	cfg.gate.wait(id)
	for d := 0; d < n; d++ {
		sendChunks(tr, outShuffle[d])
	}
	cfg.gate.done()

	// Owner role: merge incoming per-key tuples in arrival order. The
	// root interleaves this with collecting gather messages, which may
	// overtake shuffle messages on a reordering transport.
	var states *hashagg.Table[aggTuple]
	if plan != nil {
		states = hashagg.New(64, hashagg.Identity, plan.newTuple)
	}
	var ownErr error
	if cerr != nil {
		// A node that cannot even plan its tuples still walks the full
		// protocol (its failure is already cached on every stream), but
		// must not touch the nil table.
		ownErr = cerr
	}
	var outGather []Frame // cached gather chunks, once built (non-root)
	asm := newReassembler(cfg.reassemblyBudget())
	shuffleHeard := make(map[int]bool, n)
	gatherHeard := make(map[int]bool, n)
	gathers := make([][]byte, 0, n)
	wantGathers := 0
	if id == 0 {
		wantGathers = n - 1 // every other owner's finalized groups
	}
	resends := 0
	// Root-side hop digests for Config.Trace: per-sender payload
	// digests folded order-invariantly (XOR), so a reordering
	// transport reports the same digest for the same bytes.
	var shuffleDigest, gatherDigest uint64
	traceHops := cfg.Trace != nil && id == 0
	for ownErr == nil && (len(shuffleHeard) < n || len(gatherHeard) < wantGathers) {
		f, rerr := tr.Recv(id, cfg.childDeadline())
		switch {
		case errors.Is(rerr, ErrTimeout):
			// Straggler handling: re-request every missing slot —
			// targeted chunk requests for partially received streams.
			if resends >= cfg.maxResend() {
				ownErr = fmt.Errorf("%w (node %d shuffle: %d/%d senders, %d/%d gathers)",
					ErrStraggler, id, len(shuffleHeard), n, len(gatherHeard), wantGathers)
				break
			}
			resends++
			// Re-request send failures are tolerated like all other
			// sends: the next round retries, and a closed transport
			// surfaces through Recv.
			for s := 0; s < n; s++ {
				if !shuffleHeard[s] {
					requestMissing(tr, asm, id, s, seqShuffle)
				}
			}
			for s := 1; s < n && id == 0; s++ {
				if !gatherHeard[s] {
					requestMissing(tr, asm, id, s, seqGather)
				}
			}
		case rerr != nil:
			// Transport closed underneath an unfinished protocol; keep
			// any more specific error already recorded.
			ownErr = rerr
		case f.Kind == KindResend:
			// A peer is missing (part of) one of our slots; retransmit
			// the requested chunks from cache. A gather re-request
			// before our gather is built is answered by the eventual
			// first send.
			if f.Seq == seqShuffle && f.From >= 0 && f.From < n {
				serveResend(tr, outShuffle[f.From], f)
			} else if f.Seq == seqGather && outGather != nil {
				serveResend(tr, outGather, f)
			}
		default:
			msg, complete, fresh, aerr := asm.accept(f)
			if fresh {
				resends = 0 // progress: the give-up budget is for silence, not slowness
			}
			switch {
			case aerr != nil:
				ownErr = fmt.Errorf("dist: node %d reassembling from node %d: %w", id, f.From, aerr)
			case !complete:
				// Chunk buffered (or duplicate absorbed); keep collecting.
			case msg.Seq == seqShuffle && msg.Kind == KindGroups:
				shuffleHeard[msg.From] = true
				if traceHops {
					shuffleDigest ^= obs.FNV64a(msg.Payload)
				}
				ownErr = walkFrame(msg.Payload, func(key uint32, enc []byte) error {
					if e := plan.mergeTuple(states.Upsert(key), enc); e != nil {
						return fmt.Errorf("dist: node %d merging group %d from node %d: %w", id, key, msg.From, e)
					}
					return nil
				})
			case msg.Seq == seqShuffle && msg.Kind == KindError:
				shuffleHeard[msg.From] = true
				ownErr = decodeErr(msg.From, msg.Payload)
			case msg.Seq == seqGather && msg.Kind == KindGather && id == 0:
				gatherHeard[msg.From] = true
				if traceHops {
					gatherDigest ^= obs.FNV64a(msg.Payload)
				}
				gathers = append(gathers, msg.Payload)
			case msg.Seq == seqGather && msg.Kind == KindError && id == 0:
				gatherHeard[msg.From] = true
				ownErr = decodeErr(msg.From, msg.Payload)
			}
		}
	}

	// Finalize this owner's groups (disjoint from every other owner's)
	// into a key-sorted run.
	var local []TupleGroup
	if ownErr == nil {
		local = finalizeTuples(states, len(specs))
	}

	recSize := gatherRecordSize(len(specs))
	if ownErr == nil && id != 0 && len(local)*recSize > cfg.maxMessage() {
		ownErr = fmt.Errorf("%w: gather message from node %d would be %d bytes (max message %d)",
			ErrChunkBudget, id, len(local)*recSize, cfg.maxMessage())
	}

	if id != 0 {
		out := Frame{Kind: KindGather, From: id, To: 0, Seq: seqGather, Payload: encodeTupleGroups(local, len(specs))}
		if ownErr != nil {
			out = Frame{Kind: KindError, From: id, To: 0, Seq: seqGather, Payload: encodeErr(ownErr)}
		}
		outGather = splitFrame(out, cfg.chunkPayload())
		sendChunks(tr, outGather) // on failure the root's re-request path retries

		// Serve straggler re-requests from the cached chunk lists until
		// the caller closes the transport; send failures are left to
		// the next re-request round.
		for {
			f, rerr := tr.Recv(id, 0)
			if rerr != nil {
				return nil, ownErr
			}
			if f.Kind != KindResend {
				continue
			}
			if f.Seq == seqShuffle && f.From >= 0 && f.From < n {
				serveResend(tr, outShuffle[f.From], f)
			} else if f.Seq == seqGather {
				serveResend(tr, outGather, f)
			}
		}
	}

	// Root gather: owners hold disjoint key sets and each gather
	// payload arrives as a key-sorted run, so the global result is a
	// k-way merge of the runs — no global sort (the old concatenate-
	// and-sort re-sorted every group on every query).
	if ownErr != nil {
		return nil, ownErr
	}
	if traceHops {
		cfg.Trace("shuffle", shuffleDigest)
		cfg.Trace("gather", gatherDigest)
	}
	runs := make([][]TupleGroup, 0, len(gathers)+1)
	runs = append(runs, local)
	for _, payload := range gathers {
		run, derr := decodeTupleGroups(payload, len(specs))
		if derr != nil {
			return nil, fmt.Errorf("dist: root decoding gather: %w", derr)
		}
		runs = append(runs, run)
	}
	return mergeSortedRuns(runs), nil
}

// finalizeTuples drains an owner table into a key-sorted group run.
func finalizeTuples(states *hashagg.Table[aggTuple], nspecs int) []TupleGroup {
	local := make([]TupleGroup, 0, states.Len())
	vals := make([]float64, 0, states.Len()*nspecs)
	states.ForEach(func(key uint32, tup *aggTuple) {
		for _, st := range tup.states {
			vals = append(vals, st.Value())
		}
		local = append(local, TupleGroup{Key: key, Aggs: vals[len(vals)-nspecs:]})
	})
	slices.SortFunc(local, func(a, b TupleGroup) int { return cmp.Compare(a.Key, b.Key) })
	return local
}

// mergeSortedRuns merges key-sorted runs over pairwise disjoint key
// sets into one key-sorted result. Runs are small in number (one per
// node), so a linear scan per output group beats heap bookkeeping.
func mergeSortedRuns(runs [][]TupleGroup) []TupleGroup {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]TupleGroup, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		var bestKey uint32
		for r := range runs {
			if heads[r] < len(runs[r]) {
				if k := runs[r][heads[r]].Key; best < 0 || k < bestKey {
					best, bestKey = r, k
				}
			}
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}

// combineShard partitions one node's rows by key and pre-aggregates
// each partition into per-key tuples of partial states, returning one
// encoded logical shuffle payload per destination node. maxMessage is
// the configuration's Config.maxMessage bound.
func combineShard(keys []uint32, cols [][]float64, plan *tuplePlan, n, workers, maxMessage int) ([][]byte, error) {
	// Single-column plans partition the values themselves, so the
	// pre-aggregation pass reads them sequentially; multi-column plans
	// partition row indices and gather from the columns per spec.
	var out partition.Output[float64]
	var idx partition.Output[int32]
	single := len(cols) == 1
	if single {
		out = partition.Do(keys, cols[0], 0, shuffleFanout, workers)
	} else {
		rows := make([]int32, len(keys))
		for i := range rows {
			rows[i] = int32(i)
		}
		idx = partition.Do(keys, rows, 0, shuffleFanout, workers)
	}
	numPartitions := func() int {
		if single {
			return out.NumPartitions()
		}
		return idx.NumPartitions()
	}()
	distinctBound := func(p int) int {
		if single {
			return out.DistinctBound(p, shuffleFanout)
		}
		return idx.DistinctBound(p, shuffleFanout)
	}

	frames := make([][]byte, n)

	// Size the aggregation table once, for the largest distinct-key
	// bound across partitions: DistinctBound never undercounts, so a
	// table hinted at the maximum never rehashes mid-partition (the old
	// fixed len/8 heuristic caused rehash storms on skewed keys where
	// most rows carried distinct keys). The same pass sums the bounds
	// per destination, sizing each frame buffer in one allocation.
	hint := 0
	est := make([]int, n)
	for p := 0; p < numPartitions; p++ {
		b := distinctBound(p)
		if b > hint {
			hint = b
		}
		est[p%n] += b
	}
	if hint == 0 {
		return frames, nil // no rows: every shuffle message is empty
	}

	// One table, reused across partitions: Clear keeps the slot arrays
	// allocated and Reset recycles the tuple states in place, so
	// per-partition pre-aggregation costs no allocation after the first
	// partition.
	table := hashagg.New(hint, hashagg.Identity, plan.newTuple)
	pairSize := 8 + plan.width // key + length prefix + tuple of states
	for d := range frames {
		if est[d] > 0 {
			frames[d] = make([]byte, 0, est[d]*pairSize)
		}
	}
	for p := 0; p < numPartitions; p++ {
		d := p % n
		// Pre-aggregate the partition: one tuple of partial states per
		// distinct key. Slot order fixes the frame layout, but the
		// owner's per-key merges commute, so layout is immaterial to
		// the final bits.
		if single {
			pk, pv := out.Partition(p)
			if len(pk) == 0 {
				continue
			}
			table.Clear()
			for i, k := range pk {
				tup := table.Upsert(k)
				for _, st := range tup.states {
					st.Add(pv[i])
				}
			}
		} else {
			pk, pi := idx.Partition(p)
			if len(pk) == 0 {
				continue
			}
			table.Clear()
			for i, k := range pk {
				tup := table.Upsert(k)
				row := pi[i]
				for si, st := range tup.states {
					st.Add(cols[plan.specs[si].Col][row])
				}
			}
		}
		// Per-key tuples encode directly into the destination frame
		// buffer. Its capacity was pre-sized from the summed
		// distinct-key bounds, which never undercount, so the encode
		// loop is allocation-free; if the bound were ever wrong, append
		// inside appendTuple grows geometrically as usual.
		var encErr error
		table.ForEach(func(key uint32, tup *aggTuple) {
			if encErr != nil {
				return
			}
			frames[d], encErr = appendTuple(frames[d], key, tup)
		})
		if encErr != nil {
			return nil, encErr
		}
	}
	// Chunking lifted the old 16 MiB per-(sender, owner) frame ceiling —
	// a logical shuffle payload now travels as however many wire chunks
	// it needs. The remaining bound is the configuration's maxMessage
	// (reassembly budget, capped by chunk payload × chunk-count limit):
	// a payload no receiver could ever accept is rejected here,
	// identically on every transport, so cross-transport equivalence
	// stays exact and the failure names the knobs to turn.
	for d, frame := range frames {
		if len(frame) > maxMessage {
			return nil, fmt.Errorf("%w: shuffle payload to node %d is %d bytes (max message %d); raise ReassemblyBudget/MaxChunkPayload or use more nodes",
				ErrChunkBudget, d, len(frame), maxMessage)
		}
	}
	return frames, nil
}

// encodeGroups flattens finalized groups for the gather message:
// 4-byte key, 8-byte float64 bits per group.
func encodeGroups(gs []Group) []byte {
	buf := make([]byte, 0, len(gs)*12)
	for _, g := range gs {
		var rec [12]byte
		binary.LittleEndian.PutUint32(rec[0:], g.Key)
		binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(g.Sum))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// decodeGroups inverts encodeGroups.
func decodeGroups(buf []byte) []Group {
	gs := make([]Group, 0, len(buf)/12)
	for len(buf) >= 12 {
		gs = append(gs, Group{
			Key: binary.LittleEndian.Uint32(buf[0:]),
			Sum: math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
		})
		buf = buf[12:]
	}
	return gs
}

// gatherRecordSize is the fixed byte width of one finalized group in a
// gather message: the key plus one float64 per spec.
func gatherRecordSize(nspecs int) int { return 4 + 8*nspecs }

// encodeTupleGroups flattens finalized multi-aggregate groups for the
// gather message: 4-byte key, then 8-byte float64 bits per spec. A
// single-spec list reproduces encodeGroups's bytes.
func encodeTupleGroups(gs []TupleGroup, nspecs int) []byte {
	rec := gatherRecordSize(nspecs)
	buf := make([]byte, 0, len(gs)*rec)
	var scratch [4]byte
	for _, g := range gs {
		binary.LittleEndian.PutUint32(scratch[:], g.Key)
		buf = append(buf, scratch[:]...)
		for _, v := range g.Aggs {
			var vb [8]byte
			binary.LittleEndian.PutUint64(vb[:], math.Float64bits(v))
			buf = append(buf, vb[:]...)
		}
	}
	return buf
}

// decodeTupleGroups inverts encodeTupleGroups. The payload length must
// be an exact multiple of the record size (the payload crosses the
// process boundary in proc clusters). All aggregate values share one
// flat backing array.
func decodeTupleGroups(buf []byte, nspecs int) ([]TupleGroup, error) {
	rec := gatherRecordSize(nspecs)
	if nspecs < 1 || len(buf)%rec != 0 {
		return nil, fmt.Errorf("%w: gather payload of %d bytes for %d specs", errFrame, len(buf), nspecs)
	}
	count := len(buf) / rec
	gs := make([]TupleGroup, count)
	backing := make([]float64, count*nspecs)
	for i := range gs {
		p := buf[i*rec:]
		gs[i].Key = binary.LittleEndian.Uint32(p)
		aggs := backing[i*nspecs : (i+1)*nspecs : (i+1)*nspecs]
		for s := range aggs {
			aggs[s] = math.Float64frombits(binary.LittleEndian.Uint64(p[4+8*s:]))
		}
		gs[i].Aggs = aggs
	}
	return gs, nil
}
