package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/hashagg"
	"repro/internal/partition"
	"repro/internal/rsum"
)

// newPartial initializes the per-key payload of the aggregation tables.
func newPartial() rsum.State64 { return rsum.NewState64(levels) }

// shuffleFanout is the radix fan-out of the hash shuffle. Keys are
// routed by partition.Do on their low byte; partition p is owned by
// node p mod n, so every key has exactly one owner for a given cluster
// size and GROUP BY needs no cross-node post-merge per key.
const shuffleFanout = 256

var errFrame = errors.New("dist: corrupt shuffle frame")

// appendPair appends one ⟨key, partial state⟩ pair to a shuffle frame:
// 4-byte little-endian key, 4-byte length, then the canonical state
// encoding.
func appendPair(frame []byte, key uint32, state []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], key)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(state)))
	return append(append(frame, hdr[:]...), state...)
}

// walkFrame decodes a shuffle frame, invoking fn for every pair.
func walkFrame(frame []byte, fn func(key uint32, state []byte) error) error {
	for len(frame) > 0 {
		if len(frame) < 8 {
			return errFrame
		}
		key := binary.LittleEndian.Uint32(frame[0:])
		sz := int(binary.LittleEndian.Uint32(frame[4:]))
		frame = frame[8:]
		if sz < 0 || sz > len(frame) { // sz < 0: uint32 overflowed 32-bit int
			return errFrame
		}
		if err := fn(key, frame[:sz]); err != nil {
			return err
		}
		frame = frame[sz:]
	}
	return nil
}

// AggregateByKey computes a reproducible distributed GROUP BY SUM.
// Node i holds the rows ⟨localKeys[i][j], localVals[i][j]⟩. Each node
// radix-partitions its rows by key (the hash shuffle), pre-aggregates
// every partition into per-key partial states (a combiner), and ships
// the serialized states to the partition's owner node. Owners merge
// incoming partials in (nondeterministic) arrival order, finalize, and
// the root gathers all groups, sorted by key.
//
// The result is bit-identical for every distribution of the same
// multiset of rows across any number of nodes, every worker count, and
// every message arrival order.
func AggregateByKey(localKeys [][]uint32, localVals [][]float64, workers int) ([]Group, error) {
	return aggregateByKey(localKeys, localVals, workers, nil)
}

// aggregateByKey is AggregateByKey with an optional test gate forcing
// shuffle send order.
func aggregateByKey(localKeys [][]uint32, localVals [][]float64, workers int, gate *sendGate) ([]Group, error) {
	n := len(localKeys)
	if n == 0 {
		return nil, ErrNoShards
	}
	if len(localVals) != n {
		return nil, fmt.Errorf("%w: %d key shards vs %d value shards",
			ErrShardMismatch, n, len(localVals))
	}
	for i := range localKeys {
		if len(localKeys[i]) != len(localVals[i]) {
			return nil, fmt.Errorf("%w: shard %d has %d keys but %d values",
				ErrShardMismatch, i, len(localKeys[i]), len(localVals[i]))
		}
	}
	if workers < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrWorkers, workers)
	}

	// Every sender ships exactly one frame (possibly empty) to every
	// owner, so owners know their fan-in and sends never block.
	inboxes := make([]chan message, n)
	for i := range inboxes {
		inboxes[i] = make(chan message, n)
	}
	gathered := make(chan message, n)

	for id := 0; id < n; id++ {
		go func(id int) {
			frames, err := combineShard(localKeys[id], localVals[id], n, workers)
			gate.wait(id)
			for d := 0; d < n; d++ {
				m := message{from: id, err: err}
				if err == nil {
					m.payload = frames[d]
				}
				inboxes[d] <- m
			}
			gate.done()

			// Owner role: merge incoming per-key partials in arrival
			// order, then finalize and hand the groups to the root.
			states := hashagg.New(64, hashagg.Identity, newPartial)
			var ownErr error
			for i := 0; i < n; i++ {
				m := <-inboxes[id]
				if ownErr != nil {
					continue
				}
				if m.err != nil {
					ownErr = m.err
					continue
				}
				ownErr = walkFrame(m.payload, func(key uint32, enc []byte) error {
					if e := states.Upsert(key).MergeBinary(enc); e != nil {
						return fmt.Errorf("dist: node %d merging group %d from node %d: %w", id, key, m.from, e)
					}
					return nil
				})
			}
			out := message{from: id, err: ownErr}
			if ownErr == nil {
				groups := make([]Group, 0, states.Len())
				states.ForEach(func(key uint32, st *rsum.State64) {
					groups = append(groups, Group{Key: key, Sum: st.Value()})
				})
				sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
				out.payload = encodeGroups(groups)
			}
			gathered <- out
		}(id)
	}

	// Root gather: owners hold disjoint key sets, so the global result
	// is the sorted concatenation of the per-owner group lists.
	var all []Group
	for i := 0; i < n; i++ {
		m := <-gathered
		if m.err != nil {
			// Drain remaining owners before reporting.
			for j := i + 1; j < n; j++ {
				<-gathered
			}
			return nil, m.err
		}
		all = append(all, decodeGroups(m.payload)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	return all, nil
}

// combineShard partitions one node's rows by key and pre-aggregates
// each partition into per-key partial states, returning one encoded
// frame per destination node.
func combineShard(keys []uint32, vals []float64, n, workers int) ([][]byte, error) {
	out := partition.Do(keys, vals, 0, shuffleFanout, workers)
	frames := make([][]byte, n)
	for p := 0; p < out.NumPartitions(); p++ {
		pk, pv := out.Partition(p)
		if len(pk) == 0 {
			continue
		}
		// Pre-aggregate the partition: one partial state per distinct
		// key, in the repo's standard aggregation table. Slot order
		// fixes the frame layout, but the owner's per-key merges
		// commute, so layout is immaterial to the final bits.
		// Modest size hint: the table grows itself if the partition has
		// more distinct keys (State64 payloads are ~100 B each, so
		// hinting the full row count would overshoot badly).
		table := hashagg.New(len(pk)/8+8, hashagg.Identity, newPartial)
		for i, k := range pk {
			table.Upsert(k).Add(pv[i])
		}
		d := p % n
		var encErr error
		table.ForEach(func(key uint32, st *rsum.State64) {
			if encErr != nil {
				return
			}
			enc, err := st.MarshalBinary()
			if err != nil {
				encErr = err
				return
			}
			frames[d] = appendPair(frames[d], key, enc)
		})
		if encErr != nil {
			return nil, encErr
		}
	}
	return frames, nil
}

// encodeGroups flattens finalized groups for the gather message:
// 4-byte key, 8-byte float64 bits per group.
func encodeGroups(gs []Group) []byte {
	buf := make([]byte, 0, len(gs)*12)
	for _, g := range gs {
		var rec [12]byte
		binary.LittleEndian.PutUint32(rec[0:], g.Key)
		binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(g.Sum))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// decodeGroups inverts encodeGroups.
func decodeGroups(buf []byte) []Group {
	gs := make([]Group, 0, len(buf)/12)
	for len(buf) >= 12 {
		gs = append(gs, Group{
			Key: binary.LittleEndian.Uint32(buf[0:]),
			Sum: math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
		})
		buf = buf[12:]
	}
	return gs
}
