package dist

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/hashagg"
	"repro/internal/partition"
	"repro/internal/rsum"
)

// newPartial initializes the per-key payload of the aggregation tables.
func newPartial() rsum.State64 { return rsum.NewState64(levels) }

// shuffleFanout is the radix fan-out of the hash shuffle. Keys are
// routed by partition.Do on their low byte; partition p is owned by
// node p mod n, so every key has exactly one owner for a given cluster
// size and GROUP BY needs no cross-node post-merge per key.
const shuffleFanout = 256

var errFrame = errors.New("dist: corrupt shuffle frame")

// Stream ids (Frame.Seq) of the GROUP BY protocol. Every node sends
// exactly one logical message per (destination, stream) — as one or
// more chunk frames — so receivers reassemble and deduplicate per
// (from, seq) stream and count distinct senders per stream.
const (
	seqShuffle = 0 // sender → owner: per-key partial states
	seqGather  = 1 // owner → root: finalized groups
)

// appendPair appends one ⟨key, partial state⟩ pair to a shuffle frame:
// 4-byte little-endian key, 4-byte length, then the canonical state
// encoding.
func appendPair(frame []byte, key uint32, state []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], key)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(state)))
	return append(append(frame, hdr[:]...), state...)
}

// appendPairState is appendPair with the state encoded in place: the
// canonical encoding is appended directly to the frame buffer via
// AppendBinary, so the shuffle's per-key encode loop performs no
// allocation once the frame has capacity (appendPair by contrast needs
// a MarshalBinary heap allocation per key). The layouts are
// byte-identical; the pair length is patched in after encoding.
func appendPairState(frame []byte, key uint32, st *rsum.State64) ([]byte, error) {
	start := len(frame)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], key)
	frame = append(frame, hdr[:]...)
	out, err := st.AppendBinary(frame)
	if err != nil {
		return frame, err
	}
	binary.LittleEndian.PutUint32(out[start+4:], uint32(len(out)-start-8))
	return out, nil
}

// walkFrame decodes a shuffle frame, invoking fn for every pair.
func walkFrame(frame []byte, fn func(key uint32, state []byte) error) error {
	for len(frame) > 0 {
		if len(frame) < 8 {
			return errFrame
		}
		key := binary.LittleEndian.Uint32(frame[0:])
		sz := int(binary.LittleEndian.Uint32(frame[4:]))
		frame = frame[8:]
		if sz < 0 || sz > len(frame) { // sz < 0: uint32 overflowed 32-bit int
			return errFrame
		}
		if err := fn(key, frame[:sz]); err != nil {
			return err
		}
		frame = frame[sz:]
	}
	return nil
}

// AggregateByKey computes a reproducible distributed GROUP BY SUM.
// Node i holds the rows ⟨localKeys[i][j], localVals[i][j]⟩. Each node
// radix-partitions its rows by key (the hash shuffle), pre-aggregates
// every partition into per-key partial states (a combiner), and ships
// the serialized states to the partition's owner node. Owners merge
// incoming partials in (nondeterministic) arrival order, finalize, and
// the root gathers all groups, sorted by key.
//
// The result is bit-identical for every distribution of the same
// multiset of rows across any number of nodes, every worker count, and
// every message arrival order.
func AggregateByKey(localKeys [][]uint32, localVals [][]float64, workers int) ([]Group, error) {
	return AggregateByKeyConfig(localKeys, localVals, workers, Config{})
}

// AggregateByKeyConfig is AggregateByKey over an explicitly configured
// interconnect (see Config); the group list carries the same bits for
// every transport and fault plan.
func AggregateByKeyConfig(localKeys [][]uint32, localVals [][]float64, workers int, cfg Config) ([]Group, error) {
	n := len(localKeys)
	if n == 0 {
		return nil, ErrNoShards
	}
	if len(localVals) != n {
		return nil, fmt.Errorf("%w: %d key shards vs %d value shards",
			ErrShardMismatch, n, len(localVals))
	}
	for i := range localKeys {
		if len(localKeys[i]) != len(localVals[i]) {
			return nil, fmt.Errorf("%w: shard %d has %d keys but %d values",
				ErrShardMismatch, i, len(localKeys[i]), len(localVals[i]))
		}
	}
	if workers < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrWorkers, workers)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := cfg.transport(n)
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	rootCh := make(chan result, 1)
	for id := 0; id < n; id++ {
		go func(id int) {
			groups, err := RunGroupByNode(id, localKeys[id], localVals[id], workers, tr, cfg)
			if id == 0 {
				rootCh <- result{groups: groups, err: err}
			}
		}(id)
	}
	m := <-rootCh
	if m.err != nil {
		return nil, m.err
	}
	return m.groups, nil
}

// RunGroupByNode executes node id's role of the distributed GROUP BY
// over an externally owned transport: combine the local shard, ship one
// shuffle message to every owner (chunked when large), merge the
// messages addressed to this node (exactly one per sender, reassembled
// and deduplicated), finalize, and ship the finalized groups to the
// root. The root (node 0) additionally collects every owner's gather
// message and returns the sorted global result — which it can do as
// soon as all gathers are in, because a gather proves its owner needed
// no more resends. Every other node keeps serving chunk re-requests and
// returns only after the transport is closed underneath it, with the
// error its role ended in (already announced on the wire) — nil for a
// clean run. Exported for multi-process runtimes (internal/dist/proc);
// AggregateByKeyConfig runs the same function on one goroutine per
// node.
//
// Like the reduction tree, the shuffle has straggler handling: a
// receiver that makes no progress for ChildDeadline re-requests what is
// missing — whole streams it has heard nothing of, individual chunks of
// partially received ones — every node caches its outgoing chunk lists
// and retransmits on demand, and a permanently silent peer surfaces
// ErrStraggler instead of a hang.
func RunGroupByNode(id int, keys []uint32, vals []float64, workers int, tr Transport, cfg Config) ([]Group, error) {
	n := tr.Nodes()
	frames, cerr := combineShard(keys, vals, n, workers, cfg.maxMessage())

	// outShuffle caches the outgoing shuffle chunks per destination —
	// the combiner's frame, or its failure on the same stream. First
	// sends and straggler retransmissions serve from the same cache, so
	// every transmission of a chunk is identical.
	outShuffle := make([][]Frame, n)
	for d := 0; d < n; d++ {
		var f Frame
		if cerr != nil {
			f = Frame{Kind: KindError, From: id, To: d, Seq: seqShuffle, Payload: encodeErr(cerr)}
		} else {
			f = Frame{Kind: KindGroups, From: id, To: d, Seq: seqShuffle, Payload: frames[d]}
		}
		outShuffle[d] = splitFrame(f, cfg.chunkPayload())
	}

	// Shuffle: one message (possibly empty, so owners can count
	// senders) to every owner. A send failure is survivable: the
	// owner's re-request path retries chunk by chunk (over TCP, on a
	// freshly dialed connection), and if the transport is truly gone
	// every node unblocks through Recv failing.
	cfg.gate.wait(id)
	for d := 0; d < n; d++ {
		sendChunks(tr, outShuffle[d])
	}
	cfg.gate.done()

	// Owner role: merge incoming per-key partials in arrival order.
	// The root interleaves this with collecting gather messages, which
	// may overtake shuffle messages on a reordering transport.
	states := hashagg.New(64, hashagg.Identity, newPartial)
	var ownErr error
	var outGather []Frame // cached gather chunks, once built (non-root)
	asm := newReassembler(cfg.reassemblyBudget())
	shuffleHeard := make(map[int]bool, n)
	gatherHeard := make(map[int]bool, n)
	gathers := make([][]byte, 0, n)
	wantGathers := 0
	if id == 0 {
		wantGathers = n - 1 // every other owner's finalized groups
	}
	resends := 0
	for len(shuffleHeard) < n || len(gatherHeard) < wantGathers {
		f, rerr := tr.Recv(id, cfg.childDeadline())
		switch {
		case errors.Is(rerr, ErrTimeout):
			// Straggler handling: re-request every missing slot —
			// targeted chunk requests for partially received streams.
			if resends >= cfg.maxResend() {
				ownErr = fmt.Errorf("%w (node %d shuffle: %d/%d senders, %d/%d gathers)",
					ErrStraggler, id, len(shuffleHeard), n, len(gatherHeard), wantGathers)
				break
			}
			resends++
			// Re-request send failures are tolerated like all other
			// sends: the next round retries, and a closed transport
			// surfaces through Recv.
			for s := 0; s < n; s++ {
				if !shuffleHeard[s] {
					requestMissing(tr, asm, id, s, seqShuffle)
				}
			}
			for s := 1; s < n && id == 0; s++ {
				if !gatherHeard[s] {
					requestMissing(tr, asm, id, s, seqGather)
				}
			}
		case rerr != nil:
			// Transport closed underneath an unfinished protocol; keep
			// any more specific error already recorded.
			if ownErr == nil {
				ownErr = rerr
			}
		case f.Kind == KindResend:
			// A peer is missing (part of) one of our slots; retransmit
			// the requested chunks from cache. A gather re-request
			// before our gather is built is answered by the eventual
			// first send.
			if f.Seq == seqShuffle && f.From >= 0 && f.From < n {
				serveResend(tr, outShuffle[f.From], f)
			} else if f.Seq == seqGather && outGather != nil {
				serveResend(tr, outGather, f)
			}
		default:
			msg, complete, fresh, aerr := asm.accept(f)
			if fresh {
				resends = 0 // progress: the give-up budget is for silence, not slowness
			}
			switch {
			case aerr != nil:
				ownErr = fmt.Errorf("dist: node %d reassembling from node %d: %w", id, f.From, aerr)
			case !complete:
				// Chunk buffered (or duplicate absorbed); keep collecting.
			case msg.Seq == seqShuffle && msg.Kind == KindGroups:
				shuffleHeard[msg.From] = true
				ownErr = walkFrame(msg.Payload, func(key uint32, enc []byte) error {
					if e := states.Upsert(key).MergeBinary(enc); e != nil {
						return fmt.Errorf("dist: node %d merging group %d from node %d: %w", id, key, msg.From, e)
					}
					return nil
				})
			case msg.Seq == seqShuffle && msg.Kind == KindError:
				shuffleHeard[msg.From] = true
				if ownErr == nil {
					ownErr = decodeErr(msg.From, msg.Payload)
				}
			case msg.Seq == seqGather && msg.Kind == KindGather && id == 0:
				gatherHeard[msg.From] = true
				gathers = append(gathers, msg.Payload)
			case msg.Seq == seqGather && msg.Kind == KindError && id == 0:
				gatherHeard[msg.From] = true
				if ownErr == nil {
					ownErr = decodeErr(msg.From, msg.Payload)
				}
			}
		}
		// Any recorded error ends the collection, like reduceNode: the
		// node announces the failure (error gather below) rather than
		// idling through re-request rounds it no longer issues, and the
		// coordinator's Close unblocks everyone else.
		if ownErr != nil {
			break
		}
	}

	// Finalize this owner's groups (disjoint from every other owner's).
	var local []Group
	if ownErr == nil {
		local = make([]Group, 0, states.Len())
		states.ForEach(func(key uint32, st *rsum.State64) {
			local = append(local, Group{Key: key, Sum: st.Value()})
		})
		slices.SortFunc(local, func(a, b Group) int { return cmp.Compare(a.Key, b.Key) })
	}

	if ownErr == nil && id != 0 && len(local)*12 > cfg.maxMessage() {
		ownErr = fmt.Errorf("%w: gather message from node %d would be %d bytes (max message %d)",
			ErrChunkBudget, id, len(local)*12, cfg.maxMessage())
	}

	if id != 0 {
		out := Frame{Kind: KindGather, From: id, To: 0, Seq: seqGather, Payload: encodeGroups(local)}
		if ownErr != nil {
			out = Frame{Kind: KindError, From: id, To: 0, Seq: seqGather, Payload: encodeErr(ownErr)}
		}
		outGather = splitFrame(out, cfg.chunkPayload())
		sendChunks(tr, outGather) // on failure the root's re-request path retries

		// Serve straggler re-requests from the cached chunk lists until
		// the caller closes the transport; send failures are left to
		// the next re-request round.
		for {
			f, rerr := tr.Recv(id, 0)
			if rerr != nil {
				return nil, ownErr
			}
			if f.Kind != KindResend {
				continue
			}
			if f.Seq == seqShuffle && f.From >= 0 && f.From < n {
				serveResend(tr, outShuffle[f.From], f)
			} else if f.Seq == seqGather {
				serveResend(tr, outGather, f)
			}
		}
	}

	// Root gather: owners hold disjoint key sets, so the global result
	// is the sorted concatenation of the per-owner group lists.
	if ownErr != nil {
		return nil, ownErr
	}
	all := local
	for _, payload := range gathers {
		all = append(all, decodeGroups(payload)...)
	}
	slices.SortFunc(all, func(a, b Group) int { return cmp.Compare(a.Key, b.Key) })
	return all, nil
}

// combineShard partitions one node's rows by key and pre-aggregates
// each partition into per-key partial states, returning one encoded
// logical shuffle payload per destination node. maxMessage is the
// configuration's Config.maxMessage bound.
func combineShard(keys []uint32, vals []float64, n, workers, maxMessage int) ([][]byte, error) {
	out := partition.Do(keys, vals, 0, shuffleFanout, workers)
	frames := make([][]byte, n)

	// Size the aggregation table once, for the largest distinct-key
	// bound across partitions: DistinctBound never undercounts, so a
	// table hinted at the maximum never rehashes mid-partition (the old
	// fixed len/8 heuristic caused rehash storms on skewed keys where
	// most rows carried distinct keys). The same pass sums the bounds
	// per destination, sizing each frame buffer in one allocation.
	hint := 0
	est := make([]int, n)
	for p := 0; p < out.NumPartitions(); p++ {
		b := out.DistinctBound(p, shuffleFanout)
		if b > hint {
			hint = b
		}
		est[p%n] += b
	}
	if hint == 0 {
		return frames, nil // no rows: every shuffle message is empty
	}

	// One table, reused across partitions: Clear keeps the slot arrays
	// allocated, so per-partition pre-aggregation costs no allocation
	// after the first partition.
	table := hashagg.New(hint, hashagg.Identity, newPartial)
	proto := newPartial()
	pairSize := 8 + proto.EncodedSize() // key + length prefix + canonical state
	for d := range frames {
		if est[d] > 0 {
			frames[d] = make([]byte, 0, est[d]*pairSize)
		}
	}
	for p := 0; p < out.NumPartitions(); p++ {
		pk, pv := out.Partition(p)
		if len(pk) == 0 {
			continue
		}
		// Pre-aggregate the partition: one partial state per distinct
		// key. Slot order fixes the frame layout, but the owner's
		// per-key merges commute, so layout is immaterial to the final
		// bits.
		table.Clear()
		for i, k := range pk {
			table.Upsert(k).Add(pv[i])
		}
		d := p % n
		// Per-key partial states encode directly into the destination
		// frame buffer. Its capacity was pre-sized from the summed
		// distinct-key bounds, which never undercount, so the encode
		// loop is allocation-free; if the bound were ever wrong, append
		// inside appendPairState grows geometrically as usual.
		var encErr error
		table.ForEach(func(key uint32, st *rsum.State64) {
			if encErr != nil {
				return
			}
			frames[d], encErr = appendPairState(frames[d], key, st)
		})
		if encErr != nil {
			return nil, encErr
		}
	}
	// Chunking lifted the old 16 MiB per-(sender, owner) frame ceiling —
	// a logical shuffle payload now travels as however many wire chunks
	// it needs. The remaining bound is the configuration's maxMessage
	// (reassembly budget, capped by chunk payload × chunk-count limit):
	// a payload no receiver could ever accept is rejected here,
	// identically on every transport, so cross-transport equivalence
	// stays exact and the failure names the knobs to turn.
	for d, frame := range frames {
		if len(frame) > maxMessage {
			return nil, fmt.Errorf("%w: shuffle payload to node %d is %d bytes (max message %d); raise ReassemblyBudget/MaxChunkPayload or use more nodes",
				ErrChunkBudget, d, len(frame), maxMessage)
		}
	}
	return frames, nil
}

// encodeGroups flattens finalized groups for the gather message:
// 4-byte key, 8-byte float64 bits per group.
func encodeGroups(gs []Group) []byte {
	buf := make([]byte, 0, len(gs)*12)
	for _, g := range gs {
		var rec [12]byte
		binary.LittleEndian.PutUint32(rec[0:], g.Key)
		binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(g.Sum))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// decodeGroups inverts encodeGroups.
func decodeGroups(buf []byte) []Group {
	gs := make([]Group, 0, len(buf)/12)
	for len(buf) >= 12 {
		gs = append(gs, Group{
			Key: binary.LittleEndian.Uint32(buf[0:]),
			Sum: math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
		})
		buf = buf[12:]
	}
	return gs
}
