package proc

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// journalTestRecords is one record of every kind, with representative
// payloads — shared by the round-trip test and the fuzz seed corpus.
func journalTestRecords() []journalRecord {
	return []journalRecord{
		{kind: jrEpoch, epoch: 3},
		{kind: jrAddr, addr: "127.0.0.1:43117"},
		{kind: jrAdmit, slot: 2, inc: 5},
		{kind: jrGone, slot: 2},
		{kind: jrPark},
		{kind: jrPromote, slot: 1},
		{kind: jrJobStart, job: 7},
		{kind: jrJobDone, job: 7},
		{kind: jrSnapshot, snap: journalSnap{
			epoch: 4, nextJob: 8, inFlight: -1, addr: "10.0.0.2:9000",
			incs: []int64{3, 1, 6}, members: []bool{true, false, true},
		}},
	}
}

// TestJournalRoundTrip: every record kind encodes and decodes losslessly,
// replay reconstructs the folded state, a reopened journal resumes where
// the last one stopped, a torn tail is truncated away, and compaction
// folds the log into a snapshot that replays to the same state.
func TestJournalRoundTrip(t *testing.T) {
	// Per-record codec round trip, and the byte fixpoint.
	for _, rec := range journalTestRecords() {
		b := appendJournalRecord(nil, rec)
		got, n, err := decodeJournalRecord(b)
		if err != nil {
			t.Fatalf("kind %d: decode: %v", rec.kind, err)
		}
		if n != len(b) {
			t.Fatalf("kind %d: consumed %d of %d bytes", rec.kind, n, len(b))
		}
		if re := appendJournalRecord(nil, got); !bytes.Equal(re, b) {
			t.Fatalf("kind %d: decode→encode is not a fixpoint", rec.kind)
		}
	}

	// A journal written through the file layer replays to the expected
	// state across a close and reopen.
	dir := t.TempDir()
	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	if st.records != 0 {
		t.Fatalf("fresh journal replayed %d records", st.records)
	}
	writes := []journalRecord{
		{kind: jrEpoch, epoch: 1},
		{kind: jrAddr, addr: "127.0.0.1:50000"},
		{kind: jrAdmit, slot: 0, inc: 0},
		{kind: jrAdmit, slot: 1, inc: 0},
		{kind: jrJobStart, job: 0},
		{kind: jrJobDone, job: 0},
		{kind: jrGone, slot: 1},
		{kind: jrAdmit, slot: 1, inc: 1},
		{kind: jrJobStart, job: 1},
	}
	for _, rec := range writes {
		if err := j.append(rec); err != nil {
			t.Fatalf("append kind %d: %v", rec.kind, err)
		}
	}
	if err := j.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := j.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	check := func(t *testing.T, st *journalState, records int) {
		t.Helper()
		if st.epoch != 1 || st.addr != "127.0.0.1:50000" {
			t.Errorf("epoch/addr = %d/%q", st.epoch, st.addr)
		}
		if st.nextJob != 2 || st.inFlight != 1 {
			t.Errorf("nextJob/inFlight = %d/%d, want 2/1", st.nextJob, st.inFlight)
		}
		if len(st.incs) != 2 || st.incs[0] != 1 || st.incs[1] != 2 {
			t.Errorf("incs = %v, want [1 2]", st.incs)
		}
		if !st.members[0] || !st.members[1] {
			t.Errorf("members = %v, want both true", st.members)
		}
		if st.records != records {
			t.Errorf("records = %d, want %d", st.records, records)
		}
	}
	j2, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	check(t, st, len(writes))

	// Compaction folds the same state into one snapshot record.
	snap := journalSnap{
		epoch: st.epoch, nextJob: int64(st.nextJob), inFlight: int64(st.inFlight),
		addr: st.addr, incs: []int64{1, 2}, members: []bool{true, true},
	}
	if err := j2.compact(snap); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := j2.close(); err != nil {
		t.Fatalf("close after compact: %v", err)
	}
	j3, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	check(t, st, 1)

	// Appends after compaction land on the snapshot cleanly.
	if err := j3.append(journalRecord{kind: jrJobDone, job: 1}); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	j3.close()

	// A torn tail — half an append, the kill -9 signature — is tolerated
	// and truncated back to the last record boundary.
	path := filepath.Join(dir, journalFile)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatalf("tear journal: %v", err)
	}
	j4, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("reopen torn journal: %v", err)
	}
	j4.close()
	if st.inFlight != 1 {
		t.Errorf("torn tail replay: inFlight = %d, want 1 (jrJobDone was torn off)", st.inFlight)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(full)-appendedLen(journalRecord{kind: jrJobDone, job: 1})) {
		t.Errorf("torn tail not truncated to record boundary")
	}

	// Corruption before the tail (a flipped byte in a complete record) is
	// a hard error, not a silent partial recovery.
	bad := append([]byte(nil), full...)
	bad[journalHeaderLen+journalRecHeaderLen] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatalf("corrupt journal: %v", err)
	}
	if _, _, err := openJournal(dir); err == nil {
		t.Error("mid-file corruption opened without error")
	}

	// A file that is not a journal at all is rejected by name.
	os.WriteFile(path, []byte("definitely not a journal"), 0o644)
	if _, _, err := openJournal(dir); err == nil {
		t.Error("non-journal file opened without error")
	}
}

func appendedLen(r journalRecord) int {
	return len(appendJournalRecord(nil, r))
}

// FuzzJournalDecode: hostile journal bytes never panic the decoder, and
// every successful decode re-encodes to exactly the bytes consumed.
func FuzzJournalDecode(f *testing.F) {
	for _, rec := range journalTestRecords() {
		f.Add(appendJournalRecord(nil, rec))
	}
	// Structured corruption seeds: truncations, a bit flip, a bogus kind,
	// an oversized length field, and two records back to back.
	base := appendJournalRecord(nil, journalRecord{kind: jrAdmit, slot: 1, inc: 2})
	f.Add(base[:3])
	f.Add(base[:len(base)-1])
	flipped := append([]byte(nil), base...)
	flipped[journalRecHeaderLen] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{jrEpoch, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(appendJournalRecord(appendJournalRecord(nil, journalRecord{kind: jrPark}), journalRecord{kind: jrGone, slot: 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeJournalRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("decode error consumed %d bytes", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if re := appendJournalRecord(nil, rec); !bytes.Equal(re, data[:n]) {
			t.Fatalf("decode→encode not a fixpoint:\n in  %x\n out %x", data[:n], re)
		}
		// The replay layer over the same bytes must also never panic, and
		// must stop cleanly at a torn tail.
		if _, off, err := replayJournal(data); err == nil && off > len(data) {
			t.Fatalf("replay consumed %d of %d bytes", off, len(data))
		}
	})
}

// TestJournalAppendAfterFailure: the first append failure is sticky, so a
// hole in the log can never be followed by records that replay past it.
func TestJournalAppendAfterFailure(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer j.close()
	j.f.Close() // force the next write to fail
	if err := j.append(journalRecord{kind: jrPark}); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if !j.failed {
		t.Fatal("journal not marked failed")
	}
	if err := j.append(journalRecord{kind: jrPark}); err == nil {
		t.Fatal("append after failure succeeded")
	}
	if err := j.sync(); err != nil {
		t.Fatalf("sync after failure should be a no-op, got %v", err)
	}
}

// TestJournalBench exercises the reprobench recovery/replay helpers.
func TestJournalBench(t *testing.T) {
	dir := t.TempDir()
	size, err := JournalBenchSetup(dir, 500)
	if err != nil {
		t.Fatalf("JournalBenchSetup: %v", err)
	}
	if size <= int64(journalHeaderLen) {
		t.Fatalf("journal size = %d", size)
	}
	n, err := JournalBenchReplay(dir)
	if err != nil {
		t.Fatalf("JournalBenchReplay: %v", err)
	}
	if n != 500 {
		t.Fatalf("replayed %d records, want 500", n)
	}
	if _, err := JournalBenchReplay(t.TempDir()); err == nil {
		t.Error("replay of a missing journal succeeded")
	}
}
