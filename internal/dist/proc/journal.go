package proc

// Supervisor write-ahead journal.
//
// The clusterLoop appends one compact binary record at every control-plane
// state transition — membership admit/park/promote, job start/completion,
// epoch bumps, the bound control address — so that a crashed supervisor can
// be restarted against the same directory and re-enter its last consistent
// phase: NewCluster replays the journal, bumps the fencing epoch, re-binds
// the journaled listener address, restores per-slot incarnations, and waits
// for the orphaned workers to re-attach instead of respawning them. Because
// incarnations are restored (not reset), a job that was dispatched but
// unfinished at the crash re-runs at a bumped incarnation, exactly like a
// worker replacement — so seeded fault injections do not re-fire and the
// recovered result is byte-identical to an undisturbed run.
//
// On-disk format (same strictness discipline as the frame codec):
//
//	header:  "RPJL" magic + 1-byte format version
//	record:  [kind 1B][payload len u32 LE][payload][CRC32-IEEE u32 LE]
//
// The CRC covers kind + length + payload. Decoding is hostile-input safe:
// unknown kinds, oversized lengths, wrong per-kind payload sizes, non-canonical
// booleans, and CRC mismatches all error (never panic), and a decoded record
// re-encodes to exactly the bytes consumed (a fixpoint, fuzzed by
// FuzzJournalDecode). A *truncated* trailing record is the expected signature
// of a crash mid-append: replay tolerates it by truncating the file back to
// the last consistent record boundary. Corruption *before* the tail is fatal.
//
// Durability: each append is a single contiguous write; the file is fsynced
// when a new epoch is opened and at compaction, which is sufficient for the
// kill -9 process-crash model this journal defends against (machine-loss
// durability would need per-record fsync and is deliberately out of scope).
// After journalCompactEvery appends the loop folds the live state into one
// snapshot record written to a temp file and renamed over the journal.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// Journal record kinds. Values are part of the on-disk format; append only.
const (
	jrEpoch    byte = 1 // supervisor incarnation opened: payload epoch u64
	jrAddr     byte = 2 // control listener bound: payload u16 len + addr
	jrAdmit    byte = 3 // member admitted: payload slot i64 + incarnation i64
	jrGone     byte = 4 // member lost: payload slot i64
	jrPark     byte = 5 // joiner parked as standby: empty payload
	jrPromote  byte = 6 // standby promoted toward a slot: payload slot i64
	jrJobStart byte = 7 // job dispatched: payload job index i64
	jrJobDone  byte = 8 // job finished (ok or failed): payload job index i64
	jrSnapshot byte = 9 // compaction snapshot of the whole journalState
)

const (
	journalMagic   = "RPJL"
	journalVersion = 1
	journalFile    = "cluster.journal"

	// journalHeaderLen is the fixed file prologue: magic + format version.
	journalHeaderLen = len(journalMagic) + 1

	// journalRecHeaderLen is kind + payload length; journalRecCRCLen trails.
	journalRecHeaderLen = 5
	journalRecCRCLen    = 4

	// maxJournalPayload bounds a single record against hostile or corrupt
	// length fields. Snapshots dominate: 26 fixed bytes + addr + 9 per slot,
	// far under this even for absurd clusters.
	maxJournalPayload = 1 << 20

	// maxJournalSlots bounds slot indices during replay; anything larger is
	// corruption, not a cluster size this package can spawn.
	maxJournalSlots = 1 << 16

	// journalCompactEvery triggers snapshot compaction after this many
	// appends since the last snapshot (or open).
	journalCompactEvery = 1024
)

// errJournalShort marks an incomplete record at the end of the byte stream —
// the torn-write signature replay tolerates. It is never returned for
// corruption inside a complete record.
var errJournalShort = errors.New("proc: journal record truncated")

// journalRecord is one decoded (or to-be-encoded) journal record. Only the
// fields relevant to its kind are meaningful.
type journalRecord struct {
	kind  byte
	epoch uint64      // jrEpoch
	slot  int64       // jrAdmit, jrGone, jrPromote
	inc   int64       // jrAdmit
	job   int64       // jrJobStart, jrJobDone
	addr  string      // jrAddr
	snap  journalSnap // jrSnapshot
}

// journalSnap is the full supervisor state a compaction folds the log into.
type journalSnap struct {
	epoch    uint64
	nextJob  int64
	inFlight int64 // dispatched-but-unfinished job index, -1 if none
	addr     string
	incs     []int64 // next incarnation per slot
	members  []bool  // slot occupied at snapshot time
}

// appendJournalRecord appends the canonical encoding of r to b.
func appendJournalRecord(b []byte, r journalRecord) []byte {
	start := len(b)
	b = append(b, r.kind, 0, 0, 0, 0) // length patched below
	switch r.kind {
	case jrEpoch:
		b = appendU64(b, r.epoch)
	case jrAddr:
		b = appendJournalString(b, r.addr)
	case jrAdmit:
		b = appendI64(b, r.slot)
		b = appendI64(b, r.inc)
	case jrGone, jrPromote:
		b = appendI64(b, r.slot)
	case jrPark:
		// empty payload
	case jrJobStart, jrJobDone:
		b = appendI64(b, r.job)
	case jrSnapshot:
		b = appendU64(b, r.snap.epoch)
		b = appendI64(b, r.snap.nextJob)
		b = appendI64(b, r.snap.inFlight)
		b = appendJournalString(b, r.snap.addr)
		b = appendU16(b, uint16(len(r.snap.incs)))
		for i, inc := range r.snap.incs {
			b = appendI64(b, inc)
			if r.snap.members[i] {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	}
	binary.LittleEndian.PutUint32(b[start+1:], uint32(len(b)-start-journalRecHeaderLen))
	sum := crc32.ChecksumIEEE(b[start:])
	return appendU32(b, sum)
}

func appendJournalString(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// decodeJournalRecord decodes one record from the front of b, returning the
// record and the number of bytes consumed. An incomplete suffix returns
// errJournalShort; everything else malformed returns a hard error. The decode
// is strict enough that re-encoding the result reproduces the consumed bytes.
func decodeJournalRecord(b []byte) (journalRecord, int, error) {
	var r journalRecord
	if len(b) < journalRecHeaderLen {
		return r, 0, errJournalShort
	}
	r.kind = b[0]
	plen := binary.LittleEndian.Uint32(b[1:])
	if plen > maxJournalPayload {
		return r, 0, fmt.Errorf("proc: journal record payload %d exceeds limit %d", plen, maxJournalPayload)
	}
	total := journalRecHeaderLen + int(plen) + journalRecCRCLen
	if len(b) < total {
		return r, 0, errJournalShort
	}
	body := b[:journalRecHeaderLen+int(plen)]
	want := binary.LittleEndian.Uint32(b[journalRecHeaderLen+int(plen):])
	if got := crc32.ChecksumIEEE(body); got != want {
		return r, 0, fmt.Errorf("proc: journal record CRC mismatch: got %08x want %08x", got, want)
	}
	p := body[journalRecHeaderLen:]
	switch r.kind {
	case jrEpoch:
		if len(p) != 8 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		r.epoch = binary.LittleEndian.Uint64(p)
	case jrAddr:
		s, rest, err := cutJournalString(p)
		if err != nil || len(rest) != 0 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		r.addr = s
	case jrAdmit:
		if len(p) != 16 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		r.slot = int64(binary.LittleEndian.Uint64(p))
		r.inc = int64(binary.LittleEndian.Uint64(p[8:]))
	case jrGone, jrPromote:
		if len(p) != 8 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		r.slot = int64(binary.LittleEndian.Uint64(p))
	case jrPark:
		if len(p) != 0 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
	case jrJobStart, jrJobDone:
		if len(p) != 8 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		r.job = int64(binary.LittleEndian.Uint64(p))
	case jrSnapshot:
		if len(p) < 24 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		r.snap.epoch = binary.LittleEndian.Uint64(p)
		r.snap.nextJob = int64(binary.LittleEndian.Uint64(p[8:]))
		r.snap.inFlight = int64(binary.LittleEndian.Uint64(p[16:]))
		s, rest, err := cutJournalString(p[24:])
		if err != nil {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		r.snap.addr = s
		if len(rest) < 2 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		n := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) != n*9 {
			return r, 0, journalSizeErr(r.kind, len(p))
		}
		r.snap.incs = make([]int64, n)
		r.snap.members = make([]bool, n)
		for i := 0; i < n; i++ {
			r.snap.incs[i] = int64(binary.LittleEndian.Uint64(rest))
			switch rest[8] {
			case 0:
				// member flag already false
			case 1:
				r.snap.members[i] = true
			default:
				// Reject non-canonical booleans so decode→encode stays a
				// byte fixpoint.
				return r, 0, fmt.Errorf("proc: journal snapshot member flag %d is not 0 or 1", rest[8])
			}
			rest = rest[9:]
		}
	default:
		return r, 0, fmt.Errorf("proc: unknown journal record kind %d", r.kind)
	}
	return r, total, nil
}

func journalSizeErr(kind byte, n int) error {
	return fmt.Errorf("proc: journal record kind %d has malformed payload (%d bytes)", kind, n)
}

func cutJournalString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, errJournalShort
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+n {
		return "", nil, errJournalShort
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// journalState is the supervisor state reconstructed by replaying a journal.
type journalState struct {
	epoch    uint64
	nextJob  int
	inFlight int // dispatched-but-unfinished job index, -1 if none
	addr     string
	incs     []int // next incarnation per slot (inc > 0 ⇒ slot was admitted)
	members  []bool
	records  int // records replayed
}

func newJournalState() *journalState {
	return &journalState{inFlight: -1}
}

// grow ensures slot is addressable, bounding it against corrupt indices.
func (st *journalState) grow(slot int64) error {
	if slot < 0 || slot >= maxJournalSlots {
		return fmt.Errorf("proc: journal slot %d out of range", slot)
	}
	for int64(len(st.incs)) <= slot {
		st.incs = append(st.incs, 0)
		st.members = append(st.members, false)
	}
	return nil
}

func (st *journalState) apply(r journalRecord) error {
	switch r.kind {
	case jrEpoch:
		// A new supervisor incarnation: every conn of the previous one is
		// dead, so journaled membership is cleared (incarnations persist).
		st.epoch = r.epoch
		for i := range st.members {
			st.members[i] = false
		}
	case jrAddr:
		st.addr = r.addr
	case jrAdmit:
		if err := st.grow(r.slot); err != nil {
			return err
		}
		// The journal records the incarnation the member was admitted at;
		// the *next* admission of this slot must come strictly after it.
		if next := int(r.inc) + 1; next > st.incs[r.slot] {
			st.incs[r.slot] = next
		}
		st.members[r.slot] = true
	case jrGone:
		if err := st.grow(r.slot); err != nil {
			return err
		}
		st.members[r.slot] = false
	case jrPark, jrPromote:
		// Standby lifecycle is informational: parked processes re-join on
		// their own after a crash, so replay carries no standby state.
	case jrJobStart:
		if int(r.job)+1 > st.nextJob {
			st.nextJob = int(r.job) + 1
		}
		st.inFlight = int(r.job)
	case jrJobDone:
		if st.inFlight == int(r.job) {
			st.inFlight = -1
		}
	case jrSnapshot:
		if len(r.snap.incs) > maxJournalSlots {
			return fmt.Errorf("proc: journal snapshot has %d slots", len(r.snap.incs))
		}
		st.epoch = r.snap.epoch
		st.nextJob = int(r.snap.nextJob)
		st.inFlight = int(r.snap.inFlight)
		st.addr = r.snap.addr
		st.incs = make([]int, len(r.snap.incs))
		st.members = make([]bool, len(r.snap.incs))
		for i, inc := range r.snap.incs {
			st.incs[i] = int(inc)
			st.members[i] = r.snap.members[i]
		}
	}
	st.records++
	return nil
}

// replayJournal replays every complete record in data (which excludes the
// file header), returning the reconstructed state and the byte offset of the
// last consistent record boundary. A truncated trailing record stops the
// replay cleanly; corruption before the tail is a hard error.
func replayJournal(data []byte) (*journalState, int, error) {
	st := newJournalState()
	off := 0
	for off < len(data) {
		rec, n, err := decodeJournalRecord(data[off:])
		if errors.Is(err, errJournalShort) {
			// Torn tail from a crash mid-append: recover to here.
			return st, off, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%w (at offset %d)", err, off+journalHeaderLen)
		}
		if err := st.apply(rec); err != nil {
			return nil, 0, err
		}
		off += n
	}
	return st, off, nil
}

// journal is an open supervisor journal. All appends happen on the
// clusterLoop goroutine; no locking is needed.
type journal struct {
	path      string
	f         *os.File
	records   int // records in the file (replayed + appended this session)
	sinceSnap int // appends since the last snapshot (compaction trigger)
	failed    bool
}

// openJournal opens (creating if needed) the journal under dir, replays it,
// truncates any torn tail, and leaves the file positioned for appends. The
// returned state reflects the previous supervisor incarnation; the caller is
// responsible for appending the new jrEpoch.
func openJournal(dir string) (*journal, *journalState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("proc: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("proc: open journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("proc: read journal: %w", err)
	}
	if len(data) == 0 {
		// Fresh journal: write the header.
		if _, err := f.Write(journalHeader()); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("proc: write journal header: %w", err)
		}
		return &journal{path: path, f: f}, newJournalState(), nil
	}
	if len(data) < journalHeaderLen || string(data[:len(journalMagic)]) != journalMagic {
		f.Close()
		return nil, nil, fmt.Errorf("proc: %s is not a supervisor journal", path)
	}
	if v := data[len(journalMagic)]; v != journalVersion {
		f.Close()
		return nil, nil, fmt.Errorf("proc: journal format version %d, this build speaks %d", v, journalVersion)
	}
	st, consistent, err := replayJournal(data[journalHeaderLen:])
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	end := int64(journalHeaderLen + consistent)
	if end < int64(len(data)) {
		// Drop the torn record so the next append lands on a clean boundary.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("proc: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("proc: seek journal: %w", err)
	}
	return &journal{path: path, f: f, records: st.records}, st, nil
}

func journalHeader() []byte {
	return append([]byte(journalMagic), journalVersion)
}

// append writes one record. Failures are sticky: after the first error the
// journal stops accepting appends so a partial write cannot be followed by
// records that would replay against a hole.
func (j *journal) append(r journalRecord) error {
	if j.failed {
		return errors.New("proc: journal failed earlier, appends disabled")
	}
	buf := appendJournalRecord(nil, r)
	if _, err := j.f.Write(buf); err != nil {
		j.failed = true
		return fmt.Errorf("proc: journal append: %w", err)
	}
	j.records++
	j.sinceSnap++
	return nil
}

// sync flushes appended records to stable storage.
func (j *journal) sync() error {
	if j.failed {
		return nil
	}
	return j.f.Sync()
}

// compact folds the log into a single snapshot record, written to a temp
// file and renamed over the journal so a crash mid-compaction leaves either
// the old log or the new snapshot, never a mix.
func (j *journal) compact(snap journalSnap) error {
	if j.failed {
		return errors.New("proc: journal failed earlier, compaction disabled")
	}
	buf := appendJournalRecord(journalHeader(), journalRecord{kind: jrSnapshot, snap: snap})
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		j.failed = true
		return fmt.Errorf("proc: journal compact: %w", err)
	}
	nf, err := os.OpenFile(tmp, os.O_RDWR, 0o644)
	if err != nil {
		j.failed = true
		return fmt.Errorf("proc: journal compact: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		j.failed = true
		return fmt.Errorf("proc: journal compact: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		nf.Close()
		j.failed = true
		return fmt.Errorf("proc: journal compact: %w", err)
	}
	if _, err := nf.Seek(int64(len(buf)), 0); err != nil {
		nf.Close()
		j.failed = true
		return fmt.Errorf("proc: journal compact: %w", err)
	}
	j.f.Close()
	j.f = nf
	j.records = 1
	j.sinceSnap = 0
	return nil
}

func (j *journal) close() error {
	return j.f.Close()
}

// probeJournalDir verifies dir is usable for a journal by creating it (if
// absent) and writing a probe file, so misconfiguration surfaces as a typed
// ErrConfig at Validate time instead of a mid-run journal failure.
func probeJournalDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe := filepath.Join(dir, ".probe")
	f, err := os.Create(probe)
	if err != nil {
		return err
	}
	f.Close()
	return os.Remove(probe)
}

// JournalBenchSetup populates dir with a synthetic supervisor journal of
// records state transitions (a realistic admit/lost/job-cycle mix) and
// returns its on-disk size in bytes. It exists for `reprobench dist`'s
// recovery/replay cell; production journals are written by the clusterLoop.
func JournalBenchSetup(dir string, records int) (int64, error) {
	j, _, err := openJournal(dir)
	if err != nil {
		return 0, err
	}
	defer j.close()
	if err := j.append(journalRecord{kind: jrEpoch, epoch: 1}); err != nil {
		return 0, err
	}
	if err := j.append(journalRecord{kind: jrAddr, addr: "127.0.0.1:43117"}); err != nil {
		return 0, err
	}
	const nodes = 8
	for i := 2; i < records; i++ {
		var rec journalRecord
		switch i % 8 {
		case 0:
			rec = journalRecord{kind: jrGone, slot: int64(i % nodes)}
		case 1:
			rec = journalRecord{kind: jrPromote, slot: int64(i % nodes)}
		case 2:
			rec = journalRecord{kind: jrJobStart, job: int64(i / 8)}
		case 3:
			rec = journalRecord{kind: jrJobDone, job: int64(i / 8)}
		case 4:
			rec = journalRecord{kind: jrPark}
		default:
			rec = journalRecord{kind: jrAdmit, slot: int64(i % nodes), inc: int64(i / nodes)}
		}
		if err := j.append(rec); err != nil {
			return 0, err
		}
	}
	if err := j.sync(); err != nil {
		return 0, err
	}
	fi, err := os.Stat(j.path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// JournalBenchReplay replays the journal under dir through the exact
// recovery path NewCluster runs at crash-restart, returning the number of
// records recovered. The elapsed time of this call is what the
// recovery/replay benchmark cell measures.
func JournalBenchReplay(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		return 0, err
	}
	if len(data) < journalHeaderLen {
		return 0, fmt.Errorf("proc: journal too short")
	}
	st, _, err := replayJournal(data[journalHeaderLen:])
	if err != nil {
		return 0, err
	}
	return st.records, nil
}

// ErrRecovering marks a job failure caused by a recovery window: the cluster
// is waiting for workers to re-attach (or be replaced) and could not fill
// every slot in time. Serving layers map it to backpressure (503 +
// Retry-After) rather than a hard failure — see internal/serve.
var ErrRecovering = errors.New("proc: cluster recovering")

// lastRecoveryClock lets tests observe recovery timestamps deterministically.
var lastRecoveryClock = time.Now
