package proc

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
)

// nodeTransport is one worker process's view of the cluster
// interconnect: it implements dist.Transport for exactly one node id,
// receiving through its own TCP listener (fed into a dist.Mailboxes,
// so Recv/Close semantics match the in-process transports by
// construction) and sending through lazily dialed, cached, per-peer
// connections — re-dialed after any failure, so a severed socket
// mid-stream costs only the frames that were in flight, and the
// protocol's per-chunk KindResend path recovers them over a fresh
// connection without restarting the job.
type nodeTransport struct {
	id    int
	addrs []string // data-plane listen addresses, indexed by node id
	mb    *dist.Mailboxes
	ln    net.Listener
	peers *peerCounters // per-peer frame/byte series, resolved once

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu    sync.Mutex
	pipes map[int]*pipe
	// live tracks every established outgoing connection so Close — and
	// the injected kill-switch — can sever them without taking any
	// pipe's write lock (lock order is always pipe.mu → transport.mu).
	live map[net.Conn]struct{}

	// Injected socket-kill fault: just before the killAfter-th
	// non-resend data frame leaves this node, every outgoing
	// connection is severed once (killAfter <= 0 disables). The count
	// is atomic so exactly one send trips it.
	killAfter int64
	nsent     atomic.Int64

	// Injected process-death fault: just before the dieAfter-th
	// non-resend data frame leaves this node, onDie runs exactly once
	// (the worker's hook exits the whole process mid-stream — the
	// forced scenario of the mid-run replacement tests). dieAfter <= 0
	// disables.
	dieAfter int64
	ndie     atomic.Int64
	onDie    func()
}

// pipe is one cached outgoing connection; writes are serialized so
// concurrent protocol sends cannot interleave frame bytes, and the
// connection is dropped on any write failure so the next send re-dials.
type pipe struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

const (
	sockBufSize = 64 << 10
	dialTimeout = 5 * time.Second
)

// newNodeTransport starts node id's side of the interconnect on the
// already-bound listener ln. The address table must cover the whole
// cluster (including this node's own address, which is bypassed by
// local delivery).
func newNodeTransport(id int, addrs []string, ln net.Listener, killAfter int) (*nodeTransport, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("proc: node id %d outside %d-node address table", id, len(addrs))
	}
	t := &nodeTransport{
		id:        id,
		addrs:     addrs,
		mb:        dist.NewMailboxes(len(addrs)),
		ln:        ln,
		peers:     newPeerCounters(len(addrs)),
		closed:    make(chan struct{}),
		pipes:     make(map[int]*pipe),
		live:      make(map[net.Conn]struct{}),
		killAfter: int64(killAfter),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

func (t *nodeTransport) Nodes() int { return len(t.addrs) }

func (t *nodeTransport) Recv(id int, timeout time.Duration) (dist.Frame, error) {
	return t.mb.Recv(id, timeout)
}

// acceptLoop accepts inbound peer connections and spawns one reader
// per connection.
func (t *nodeTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop decodes frames off one inbound connection into the mailbox.
// A frame that fails validation poisons only its connection; the
// protocol's re-request layer recovers the lost chunks over a fresh
// dial from the sender.
//
// Like TCPTransport, frames are read into one per-connection buffer
// reused across iterations; decoded payloads alias it, so the frame is
// handed to the retaining mailbox only after RetainPayload copies the
// payload out (the ReadFrameBuf ownership rule).
func (t *nodeTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	br := bufio.NewReaderSize(c, sockBufSize)
	var buf []byte // connection read buffer; decoded payloads alias it
	for {
		f, nbuf, err := dist.ReadFrameBuf(br, buf)
		if err != nil {
			return // EOF, peer close, severed socket, or corrupt stream
		}
		buf = nbuf
		if f.To != t.id {
			continue // misrouted frame: drop at the trust boundary
		}
		t.peers.received(f.From, len(f.Payload))
		if t.mb.Deliver(dist.RetainPayload(f)) != nil {
			return // transport closed
		}
	}
}

// Send delivers f: by reference through the local mailbox when the
// destination is this node, through the cached (re-dialed on demand)
// peer connection otherwise. It is a one-frame run — a single send
// path keeps the kill-switch and reset behavior identical everywhere.
func (t *nodeTransport) Send(f dist.Frame) error {
	return t.sendRun([]dist.Frame{f})
}

// SendBatch transmits a frame list, coalescing each run of equal-To
// frames into buffered writes with one flush per peer (local frames
// deliver directly). Equivalent to calling Send in order; the first
// error is reported, later runs are still attempted.
func (t *nodeTransport) SendBatch(fs []dist.Frame) error {
	var firstErr error
	for start := 0; start < len(fs); {
		end := start + 1
		for end < len(fs) && fs[end].To == fs[start].To {
			end++
		}
		if err := t.sendRun(fs[start:end]); err != nil && firstErr == nil {
			firstErr = err
		}
		start = end
	}
	return firstErr
}

// sendRun writes one same-destination run through the peer's buffered
// writer and flushes once.
func (t *nodeTransport) sendRun(fs []dist.Frame) error {
	to := fs[0].To
	if to == t.id {
		return t.mb.DeliverBatch(fs)
	}
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("proc: send to node %d of %d-node cluster", to, len(t.addrs))
	}
	select {
	case <-t.closed:
		return dist.ErrClosed
	default:
	}
	p := t.pipe(to)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := t.dialLocked(p, to); err != nil {
		return err
	}
	for i := range fs {
		t.tripDeath(fs[i])
		if t.tripKill(fs[i]) {
			// The rest of the run is sacrificed with the sockets; the
			// receiver's per-chunk re-requests recover it.
			t.resetLocked(p)
			return fmt.Errorf("proc: node %d: injected socket kill", t.id)
		}
		if err := dist.WriteFrame(p.w, fs[i]); err != nil {
			t.resetLocked(p)
			return t.sendErr(err)
		}
		t.peers.sent(to, len(fs[i].Payload))
	}
	if err := p.w.Flush(); err != nil {
		t.resetLocked(p)
		return t.sendErr(err)
	}
	return nil
}

// tripDeath counts outgoing data frames and, exactly once, runs the
// injected death hook just before the dieAfter-th leaves — in a real
// worker the hook kills the process mid-chunk-stream, the forced
// scenario of mid-run worker replacement. Resend traffic is exempt,
// like tripKill.
func (t *nodeTransport) tripDeath(f dist.Frame) {
	if t.dieAfter <= 0 || t.onDie == nil || f.Kind == dist.KindResend {
		return
	}
	if t.ndie.Add(1) == t.dieAfter {
		t.onDie()
	}
}

// tripKill counts outgoing data frames and, exactly once, severs every
// established outgoing connection just before the killAfter-th leaves —
// the forced mid-stream socket failure of the reconnect scenario.
// Resend traffic is exempt so recovery itself cannot re-trip the fault.
func (t *nodeTransport) tripKill(f dist.Frame) bool {
	if t.killAfter <= 0 || f.Kind == dist.KindResend {
		return false
	}
	if t.nsent.Add(1) != t.killAfter {
		return false
	}
	t.mu.Lock()
	for c := range t.live {
		c.Close() // in-flight writes fail; owners re-dial on next use
	}
	t.mu.Unlock()
	return true
}

// UpdatePeer re-points peer id at a new data-plane address — the
// mid-run replacement path: a substitute worker binds a fresh
// listener, and every surviving peer swaps its table entry and drops
// the cached pipe so the next send (or per-chunk re-request) dials
// the substitute instead of the dead worker's stale address.
func (t *nodeTransport) UpdatePeer(id int, addr string) {
	if id < 0 || id >= len(t.addrs) || id == t.id || addr == "" {
		return
	}
	t.mu.Lock()
	if t.addrs[id] == addr {
		t.mu.Unlock()
		return
	}
	t.addrs[id] = addr
	p := t.pipes[id]
	t.mu.Unlock()
	if p != nil {
		p.mu.Lock()
		t.resetLocked(p)
		p.mu.Unlock()
	}
}

// peerAddr reads the (possibly updated) address of a peer.
func (t *nodeTransport) peerAddr(to int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[to]
}

// dialLocked establishes the pipe's connection if needed; the caller
// must hold p.mu.
func (t *nodeTransport) dialLocked(p *pipe, to int) error {
	if p.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", t.peerAddr(to), dialTimeout)
	if err != nil {
		return t.sendErr(fmt.Errorf("dial node %d: %w", to, err))
	}
	// Registration and the closed check share one critical section:
	// Close closes t.closed before it sweeps t.live, so a connection
	// either registers in time to be swept or observes closed here —
	// never neither.
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		c.Close()
		return dist.ErrClosed
	default:
	}
	t.live[c] = struct{}{}
	t.mu.Unlock()
	p.c, p.w = c, bufio.NewWriterSize(c, sockBufSize)
	return nil
}

// resetLocked drops a pipe's (possibly already severed) connection so
// the next send re-dials; the caller must hold p.mu.
func (t *nodeTransport) resetLocked(p *pipe) {
	if p.c == nil {
		return
	}
	p.c.Close()
	t.mu.Lock()
	delete(t.live, p.c)
	t.mu.Unlock()
	p.c, p.w = nil, nil
}

// sendErr maps write failures after Close to ErrClosed, so protocol
// teardown is not reported as a network failure.
func (t *nodeTransport) sendErr(err error) error {
	select {
	case <-t.closed:
		return dist.ErrClosed
	default:
		return fmt.Errorf("proc: node %d send: %w", t.id, err)
	}
}

// pipe returns the (possibly not yet dialed) pipe for the peer.
func (t *nodeTransport) pipe(to int) *pipe {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.pipes[to]
	if !ok {
		p = &pipe{}
		t.pipes[to] = p
	}
	return p
}

// Close tears down the listener, all connections, and the mailbox, and
// waits for the reader goroutines to drain. Idempotent.
func (t *nodeTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.mb.Shutdown()
		t.ln.Close()
		t.mu.Lock()
		for c := range t.live {
			c.Close()
		}
		t.live = make(map[net.Conn]struct{})
		t.mu.Unlock()
		t.wg.Wait()
	})
	return nil
}

// interface conformance
var (
	_ dist.Transport   = (*nodeTransport)(nil)
	_ dist.BatchSender = (*nodeTransport)(nil)
)
