package proc

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/rsum"
	"repro/internal/sqlagg"
	"repro/internal/workload"
)

// The elastic cluster runtime: a long-lived Cluster handle that forms
// a worker set from spawned processes, remote joiners (reproworker
// -join <addr>), or both; runs a sequence of typed Jobs over it; and
// survives worker death mid-run by admitting a substitute through the
// same handshake, re-shipping the dead worker's job spec, and
// re-pointing the surviving peers — with a final result bit-identical
// to an undisturbed run, because the protocols' partial frames are
// deterministic and merge order-invariantly.
//
// The supervisor is a single event-loop goroutine that owns all
// cluster state. Connections, process exits, job submissions, and
// timers all funnel into one channel; per-connection reader goroutines
// and per-process exit watchers only post events. That actor shape is
// what makes mid-run membership changes safe to reason about: every
// admission, death, dispatch, and re-broadcast is a serialized step.

// ErrClusterClosed is returned by Run on a cluster that has been
// closed (or is closing underneath the call).
var ErrClusterClosed = errors.New("proc: cluster closed")

// ClusterSpec configures a Cluster. The zero value is invalid: Nodes
// is required. Every field is validated at construction with a typed
// dist.ErrConfig naming the field.
type ClusterSpec struct {
	// Nodes is the cluster size: how many workers run each job.
	Nodes int
	// Join is how many of the Nodes slots are left open for remote
	// joiners (reproworker -join) instead of being spawned locally.
	Join int
	// SpawnStandby spawns this many extra local workers in join mode;
	// they park as standbys and are promoted when a member dies.
	SpawnStandby int
	// MaxStandby caps how many joiners may park as standbys beyond the
	// Nodes slots (0 defaults to SpawnStandby). A joiner arriving when
	// the slots and the standby bench are both full is rejected with a
	// typed ErrHandshake.
	MaxStandby int
	// Addr is the control listen address (default "127.0.0.1:0").
	// Bind a routable address to accept joiners from other machines.
	Addr string
	// Journal, when non-empty, names a directory for the supervisor's
	// write-ahead journal: every membership and job transition is
	// recorded so a crashed supervisor can be restarted against the
	// same directory and recover — it re-binds the journaled control
	// address (when Addr is empty), restores slot incarnations and the
	// fencing epoch, and re-admits its workers as they re-attach
	// instead of respawning them. Empty disables journaling.
	Journal string
	// ReplaceDead keeps a run alive through worker death: the lost
	// worker's job spec is re-shipped to a promoted standby (or the
	// next joiner) and the peers re-dial it. False preserves one-shot
	// semantics: any death fails the run and breaks the cluster.
	ReplaceDead bool
	// JoinTimeout bounds formation and each replacement wait
	// (default: Options.JoinTimeout, then 15s).
	JoinTimeout time.Duration
	// Heartbeat is the workers' control-plane ping interval (0 = no
	// heartbeats). Required when Liveness is set.
	Heartbeat time.Duration
	// Liveness declares a member dead after this much control-plane
	// silence (0 = connection errors only). Must leave room for at
	// least two heartbeats.
	Liveness time.Duration
	// DieNode/DieAfter inject the forced worker-death scenario: node
	// DieNode exits its process just before its DieAfter-th data-plane
	// frame, first incarnation only (a replacement must not inherit
	// the suicide). DieAfter == 0 disables.
	DieNode  int
	DieAfter int
	// Config is the data-plane protocol configuration (chunking,
	// deadlines, fault plan). Config.Procs is ignored: Nodes rules.
	Config dist.Config
	// Options configures spawning (worker binary, env, stderr, kill
	// injection).
	Options Options
}

// Validate checks every field, returning a dist.ErrConfig that names
// the offending field.
func (s ClusterSpec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("%w: cluster size must be >= 1 node (ClusterSpec.Nodes, got %d)", dist.ErrConfig, s.Nodes)
	}
	if s.Join < 0 || s.Join > s.Nodes {
		return fmt.Errorf("%w: remote-join slots must be between 0 and Nodes (ClusterSpec.Join, got %d of %d)", dist.ErrConfig, s.Join, s.Nodes)
	}
	if s.SpawnStandby < 0 {
		return fmt.Errorf("%w: spawned standby count must be >= 0 (ClusterSpec.SpawnStandby, got %d)", dist.ErrConfig, s.SpawnStandby)
	}
	if s.MaxStandby < 0 {
		return fmt.Errorf("%w: standby capacity must be >= 0 (ClusterSpec.MaxStandby, got %d)", dist.ErrConfig, s.MaxStandby)
	}
	if s.JoinTimeout < 0 {
		return fmt.Errorf("%w: join timeout must be >= 0 (ClusterSpec.JoinTimeout, got %v)", dist.ErrConfig, s.JoinTimeout)
	}
	if s.Journal != "" {
		if err := probeJournalDir(s.Journal); err != nil {
			return fmt.Errorf("%w: journal directory is not writable (ClusterSpec.Journal): %v", dist.ErrConfig, err)
		}
	}
	if s.Heartbeat < 0 {
		return fmt.Errorf("%w: heartbeat interval must be >= 0 (ClusterSpec.Heartbeat, got %v)", dist.ErrConfig, s.Heartbeat)
	}
	if s.Liveness < 0 {
		return fmt.Errorf("%w: liveness window must be >= 0 (ClusterSpec.Liveness, got %v)", dist.ErrConfig, s.Liveness)
	}
	if s.Liveness > 0 && (s.Heartbeat <= 0 || 2*s.Heartbeat > s.Liveness) {
		return fmt.Errorf("%w: a liveness window needs a heartbeat at most half as long (ClusterSpec.Heartbeat %v vs ClusterSpec.Liveness %v)", dist.ErrConfig, s.Heartbeat, s.Liveness)
	}
	if s.DieAfter < 0 {
		return fmt.Errorf("%w: injected-death frame count must be >= 0 (ClusterSpec.DieAfter, got %d)", dist.ErrConfig, s.DieAfter)
	}
	if s.DieAfter > 0 && (s.DieNode < 0 || s.DieNode >= s.Nodes) {
		return fmt.Errorf("%w: injected death must name a cluster node (ClusterSpec.DieNode, got %d of %d)", dist.ErrConfig, s.DieNode, s.Nodes)
	}
	if s.Options.KillConnAfter < 0 {
		return fmt.Errorf("%w: injected-kill frame count must be >= 0 (Options.KillConnAfter, got %d)", dist.ErrConfig, s.Options.KillConnAfter)
	}
	if s.Options.JoinTimeout < 0 {
		return fmt.Errorf("%w: join timeout must be >= 0 (Options.JoinTimeout, got %v)", dist.ErrConfig, s.Options.JoinTimeout)
	}
	return s.Config.Validate()
}

// withDefaults resolves the defaulted fields.
func (s ClusterSpec) withDefaults() ClusterSpec {
	if s.JoinTimeout == 0 {
		s.JoinTimeout = s.Options.joinTimeout()
	}
	if s.MaxStandby == 0 {
		s.MaxStandby = s.SpawnStandby
	}
	return s
}

// conf assembles the digested cluster-lifetime configuration.
func (s ClusterSpec) conf() clusterConf {
	conf := clusterConf{
		N:                s.Nodes,
		MaxChunkPayload:  s.Config.MaxChunkPayload,
		ReassemblyBudget: s.Config.ReassemblyBudget,
		ChildDeadline:    s.Config.ChildDeadline,
		MaxResend:        s.Config.MaxResend,
		Heartbeat:        s.Heartbeat,
		Liveness:         s.Liveness,
		KillNode:         -1,
		DieNode:          -1,
	}
	if s.Config.Faults != nil {
		conf.Faults = *s.Config.Faults
	}
	if s.Options.KillConnAfter > 0 {
		conf.KillNode = s.Options.KillConnNode
		conf.KillAfter = s.Options.KillConnAfter
	}
	if s.DieAfter > 0 {
		conf.DieNode = s.DieNode
		conf.DieAfter = s.DieAfter
	}
	return conf
}

// Source is a job's input: raw shards shipped in the job payload, or
// a declarative description each worker materializes locally (O(1)
// dispatch regardless of data size). Construct with ValueShards,
// RowShards, SyntheticSource, or TPCHQ1Source.
type Source struct {
	kind  byte
	keys  [][]uint32
	cols  [][][]float64
	synth workload.Spec
	rows  int
	seed  uint64
}

// ValueShards is a raw reduction input: one value slice per shard.
// Shards are re-dealt round-robin when their count differs from the
// cluster size — reproducibility makes any re-dealing invisible in
// the result bits.
func ValueShards(shards [][]float64) Source {
	cols := make([][][]float64, len(shards))
	for i, s := range shards {
		cols[i] = [][]float64{s}
	}
	return Source{kind: srcRaw, cols: cols}
}

// RowShards is a raw group-by input: per-shard keys plus value
// columns (one slice per column the aggregate catalog reads).
func RowShards(keys [][]uint32, cols [][][]float64) Source {
	return Source{kind: srcRaw, keys: keys, cols: cols}
}

// SyntheticSource ships a workload generator spec instead of rows:
// every worker materializes the full dataset from the seeds and keeps
// rows i with i % Nodes == its id. Dispatch cost is the size of the
// spec, independent of Rows.
func SyntheticSource(spec workload.Spec) Source {
	return Source{kind: srcSynth, synth: spec}
}

// TPCHQ1Source ships a TPC-H Q1 input description (lineitem row count
// and generator seed); workers generate and slice locally like
// SyntheticSource.
func TPCHQ1Source(rows int, seed uint64) Source {
	return Source{kind: srcTPCHQ1, rows: rows, seed: seed}
}

// Job is one unit of work submitted to a Cluster.
type Job struct {
	// Topo is the reduction tree shape (reductions only; the group-by
	// shuffle ignores it). Zero value is Binomial.
	Topo dist.Topology
	// Workers is the per-node goroutine count (0 defaults to 1).
	Workers int
	// Specs is the aggregate catalog. Empty means a plain reduction
	// (SUM of a single value column); non-empty means a group-by with
	// one aggregate state per spec.
	Specs []sqlagg.AggSpec
	// Source is the input (required).
	Source Source
}

// EncodeJobPayload returns the control-plane dispatch bytes node id of
// an n-node cluster would receive for job — the payload of the KindJob
// frame shipped at admission (and re-shipped to a mid-run substitute).
// Exposed for measurement: a raw-shard job encodes every row it
// dispatches, a declarative source a fixed few dozen bytes regardless
// of data size.
func EncodeJobPayload(job Job, n, id int) ([]byte, error) {
	if n < 1 || id < 0 || id >= n {
		return nil, fmt.Errorf("%w: EncodeJobPayload needs 0 <= id < n (got id %d, n %d)", dist.ErrConfig, id, n)
	}
	rs, err := newRunState(evRun{job: job}, 0, n)
	if err != nil {
		return nil, err
	}
	return rs.payloadFor(id, 0)
}

// Result is a completed job's outcome.
type Result struct {
	// Payload is the root's canonical result encoding: an rsum state
	// for reductions, encoded tuple groups for group-bys.
	Payload []byte
	// Sum is the decoded reduction result (reductions only).
	Sum float64
	// Groups is the decoded group-by result (group-bys only).
	Groups []dist.TupleGroup
	// Replacements counts workers replaced mid-run during this job.
	Replacements int
}

// ClusterStats is a point-in-time view of cluster membership and
// recovery health.
type ClusterStats struct {
	// Joined counts every admission ever (formation included).
	Joined int
	// Replaced counts slot re-admissions (substitutes for the dead).
	Replaced int
	// Standbys is the current parked-joiner count.
	Standbys int
	// Epoch is the supervisor's fencing epoch: 0 for an unjournaled
	// cluster, and bumped every time a journaled supervisor (re)opens
	// its journal — so epoch > 1 means this cluster has recovered from
	// a supervisor crash at least once.
	Epoch uint64
	// JournalRecords is the current record count of the supervisor
	// journal (0 when journaling is disabled). It shrinks at snapshot
	// compaction.
	JournalRecords int
	// LastRecovery is when the supervisor last replayed a non-empty
	// journal at startup (zero if it never has).
	LastRecovery time.Time
	// Jobs counts jobs dispatched to the cluster.
	Jobs int
	// Heartbeats counts stat-carrying pings received from workers.
	Heartbeats uint64
	// HeartbeatRTT is the most recent worker-measured heartbeat round
	// trip (zero until a worker has completed a ping/pong cycle). The
	// worker measures it against its own clock from the supervisor's
	// echo, so it is immune to clock skew between the machines.
	HeartbeatRTT time.Duration
	// Events is the cluster event log's last sequence number; the log
	// itself is available from Cluster.Events.
	Events uint64
	// Worker aggregates the data-plane wire counters every worker
	// reports in its heartbeat pings (deltas merged supervisor-side, so
	// mid-run replacements don't double-count).
	Worker dist.WireStats
}

// Cluster is a long-lived handle on an elastic worker cluster. Form
// one with NewCluster, submit work with Run (serialized; concurrent
// calls queue), inspect membership with Stats, and always Close it.
type Cluster struct {
	spec   ClusterSpec
	conf   clusterConf
	raw    []byte
	digest uint64
	ln     net.Listener

	events chan event
	done   chan struct{}

	closeOnce sync.Once
	closeErr  error

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	joined       atomic.Int64
	replaced     atomic.Int64
	standbyGauge atomic.Int64

	jnl          *journal
	epochGauge   atomic.Uint64
	journalRecs  atomic.Int64
	lastRecovery atomic.Int64 // unix nanos of the last journal replay
	missingGauge atomic.Int64 // empty node slots (N until formation)
	recovering   atomic.Bool  // journal replayed, membership not yet whole

	// Observability plane: the structured event log (see Events) and
	// the heartbeat-telemetry aggregates Stats folds in. workerWire
	// accumulates the per-ping deltas of every worker's reported wire
	// counters; the supervisor loop writes it, Stats reads it.
	elog        *obs.EventLog
	heartbeats  atomic.Uint64
	lastRTT     atomic.Int64 // nanos, latest worker-measured heartbeat RTT
	jobsStarted atomic.Int64
	wireMu      sync.Mutex
	workerWire  dist.WireStats
}

// Connection lifecycle phases, owned by the supervisor loop.
const (
	phaseNew      = iota // accepted, no valid hello yet
	phaseStandby         // joiner parked on the standby bench
	phaseReserved        // joiner holds a slot, conf sent, awaiting its full hello
	phaseMember          // admitted cluster member
	phaseDead            // deliberately closed by the loop; ignore further events
)

// connState is one control connection's identity and loop-owned
// state. The reader goroutine only touches conn; everything else is
// mutated by the supervisor loop alone.
type connState struct {
	conn     net.Conn
	phase    int
	id       int
	inc      int       // admission incarnation of the slot (0 = first)
	cmd      *exec.Cmd // owning spawned process, nil for remote joiners
	lastSeen time.Time
}

// Supervisor loop events.
type (
	evMsg struct {
		cs  *connState
		msg dist.Frame
	}
	evConnErr struct {
		cs  *connState
		err error
	}
	evExit struct {
		cmd *exec.Cmd
		err error
	}
	evRun struct {
		job   Job
		reply chan runReply
	}
	evClose struct {
		reply chan error
	}
)

type event interface{}

type runReply struct {
	payload      []byte
	replacements int
	err          error
}

const ctlWriteTimeout = 30 * time.Second

// NewCluster forms a cluster: binds the control listener, spawns the
// local workers and standbys, and starts the supervisor loop. It does
// not wait for formation — Run does, bounded by JoinTimeout.
//
// With ClusterSpec.Journal set and a non-empty journal present, this
// is also the crash-restart recovery path: the journal is replayed,
// the fencing epoch is bumped, the journaled control address is
// re-bound, and slots that were admitted before the crash are *not*
// respawned — their orphaned worker processes are expected to
// re-attach through the returning-member handshake (a worker that
// truly died surfaces as a replacement timeout instead).
func NewCluster(spec ClusterSpec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	conf := spec.conf()
	raw := encodeConf(conf)

	var jnl *journal
	var rec *journalState
	if spec.Journal != "" {
		var err error
		jnl, rec, err = openJournal(spec.Journal)
		if err != nil {
			return nil, err
		}
		if len(rec.incs) > conf.N {
			jnl.close()
			return nil, fmt.Errorf("%w: journal describes %d node slots but the spec declares %d (ClusterSpec.Journal)",
				dist.ErrConfig, len(rec.incs), conf.N)
		}
	}
	recovering := rec != nil && rec.records > 0

	addr := spec.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
		if recovering && rec.addr != "" {
			// Re-bind where the orphaned workers are redialing.
			addr = rec.addr
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if jnl != nil {
			jnl.close()
		}
		return nil, fmt.Errorf("proc: control listener: %w", err)
	}

	var epoch uint64
	if jnl != nil {
		// Each journal open is a new supervisor incarnation; the bumped
		// epoch fences every hello against stale counterparts.
		epoch = rec.epoch + 1
		err := jnl.append(journalRecord{kind: jrEpoch, epoch: epoch})
		if err == nil {
			err = jnl.append(journalRecord{kind: jrAddr, addr: ln.Addr().String()})
		}
		if err == nil {
			err = jnl.sync()
		}
		if err != nil {
			ln.Close()
			jnl.close()
			return nil, err
		}
	}

	c := &Cluster{
		spec:   spec,
		conf:   conf,
		raw:    raw,
		digest: confDigest(raw),
		ln:     ln,
		jnl:    jnl,
		events: make(chan event, 256),
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
		elog:   obs.NewEventLog(512),
	}
	c.epochGauge.Store(epoch)
	c.missingGauge.Store(int64(conf.N))
	if jnl != nil {
		c.journalRecs.Store(int64(jnl.records))
		c.elog.Append("epoch", -1, fmt.Sprintf("fencing epoch %d (journal opened)", epoch))
		mEpochBumps.Inc()
	}
	if recovering {
		c.lastRecovery.Store(lastRecoveryClock().UnixNano())
		c.recovering.Store(true)
		c.elog.Append("replay", -1, fmt.Sprintf("journal replayed: %d records, next job %d", rec.records, rec.nextJob))
	}
	l := &clusterLoop{
		c:            c,
		epoch:        epoch,
		members:      make([]*connState, conf.N),
		incs:         make([]int, conf.N),
		spawnPending: make(map[*exec.Cmd]int),
		procs:        make(map[*exec.Cmd]int),
		reserved:     make(map[int]*connState),
		prevWire:     make(map[int]dist.WireStats),
	}
	if recovering {
		// Restore the incarnation counters and job cursor, so any job
		// that was dispatched-but-unfinished at the crash is re-run at a
		// bumped incarnation (first-incarnation fault injections do not
		// re-fire, keeping recovered bytes identical to an undisturbed
		// run), and job stream ids are never reused on a connection.
		copy(l.incs, rec.incs)
		l.nextJob = rec.nextJob
		l.everFormed = true
		for _, inc := range l.incs {
			if inc == 0 {
				l.everFormed = false
				break
			}
		}
	}

	spawnN := spec.Nodes - spec.Join
	if spawnN > 0 || (!recovering && spec.SpawnStandby > 0) {
		path, reexec, err := resolveWorker(spec.Options)
		if err != nil {
			ln.Close()
			return nil, err
		}
		abort := func(err error) (*Cluster, error) {
			ln.Close()
			if jnl != nil {
				jnl.close()
			}
			for cmd := range l.procs {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
			return nil, err
		}
		for id := 0; id < spawnN; id++ {
			if recovering && id < len(rec.incs) && rec.incs[id] > 0 {
				// Admitted before the crash: its process is presumed alive
				// and re-attaching. Respawning would race it for the slot.
				continue
			}
			cmd := spawnCmd(path, reexec, spec.Options,
				"-control", ln.Addr().String(),
				"-id", fmt.Sprint(id),
				"-epoch", fmt.Sprint(epoch),
				"-conf", hex.EncodeToString(raw))
			if err := cmd.Start(); err != nil {
				return abort(fmt.Errorf("proc: spawning worker %d (%s): %w", id, path, err))
			}
			l.spawnPending[cmd] = id
			l.procs[cmd] = id
		}
		if !recovering {
			// A recovered supervisor's standbys are the previous ones:
			// parked joiners redial on their own after the crash.
			for s := 0; s < spec.SpawnStandby; s++ {
				cmd := spawnCmd(path, reexec, spec.Options, "-join", ln.Addr().String())
				if err := cmd.Start(); err != nil {
					return abort(fmt.Errorf("proc: spawning standby worker (%s): %w", path, err))
				}
				l.procs[cmd] = -1
			}
		}
	}
	for cmd := range l.procs {
		go c.watchExit(cmd)
	}
	go c.acceptLoop()
	go l.run()
	return c, nil
}

// spawnCmd builds a worker process command line.
func spawnCmd(path string, reexec bool, opt Options, args ...string) *exec.Cmd {
	cmd := exec.Command(path, args...)
	cmd.Stderr = opt.logWriter()
	cmd.Env = os.Environ()
	if reexec {
		cmd.Env = append(cmd.Env, workerEnv+"=1")
	}
	cmd.Env = append(cmd.Env, opt.Env...)
	return cmd
}

// Addr is the control address workers join at (reproworker -join).
func (c *Cluster) Addr() string { return c.ln.Addr().String() }

// Stats reports cluster membership and recovery counters.
func (c *Cluster) Stats() ClusterStats {
	st := ClusterStats{
		Joined:         int(c.joined.Load()),
		Replaced:       int(c.replaced.Load()),
		Standbys:       int(c.standbyGauge.Load()),
		Epoch:          c.epochGauge.Load(),
		JournalRecords: int(c.journalRecs.Load()),
	}
	if ns := c.lastRecovery.Load(); ns != 0 {
		st.LastRecovery = time.Unix(0, ns)
	}
	st.Jobs = int(c.jobsStarted.Load())
	st.Heartbeats = c.heartbeats.Load()
	st.HeartbeatRTT = time.Duration(c.lastRTT.Load())
	st.Events = c.elog.LastSeq()
	c.wireMu.Lock()
	st.Worker = c.workerWire
	c.wireMu.Unlock()
	return st
}

// Events snapshots the cluster's structured event log: admissions,
// departures, standby promotions, re-attaches, epoch bumps, journal
// replays, and job dispatches, each with a monotonic sequence number —
// the ordered story Stats' counters only summarize.
func (c *Cluster) Events() []obs.Event { return c.elog.Events() }

// Ready reports whether every node slot is filled — false during
// formation and during recovery windows while workers re-attach or
// replacements are admitted. Serving layers use it to shed load with a
// retryable error instead of queueing onto a degraded cluster; it
// flips back to true on its own once the last slot fills.
func (c *Cluster) Ready() bool { return c.missingGauge.Load() == 0 }

// Recovering reports whether the cluster is inside a crash-recovery
// window: a journal was replayed at startup and the previous members
// have not all re-attached yet. Unlike Ready it stays false during
// first-time formation and during ordinary mid-run replacement, so a
// serving layer can shed load only when the cluster is provably
// post-crash — not merely young. It latches false for good once the
// membership is whole again.
func (c *Cluster) Recovering() bool { return c.recovering.Load() }

// Run executes one job on the cluster and blocks until its result.
// Concurrent calls are serialized in submission order.
func (c *Cluster) Run(job Job) (*Result, error) {
	reply := make(chan runReply, 1)
	select {
	case c.events <- evRun{job: job, reply: reply}:
	case <-c.done:
		return nil, ErrClusterClosed
	}
	var r runReply
	select {
	case r = <-reply:
	case <-c.done:
		return nil, ErrClusterClosed
	}
	if r.err != nil {
		return nil, r.err
	}
	res := &Result{Payload: r.payload, Replacements: r.replacements}
	if len(job.Specs) == 0 {
		final := rsum.NewState64(core.DefaultLevels)
		if err := final.UnmarshalBinary(r.payload); err != nil {
			return nil, fmt.Errorf("proc: decoding root result: %w", err)
		}
		res.Sum = final.Value()
	} else {
		gs, err := dist.DecodeTupleGroups(r.payload, len(job.Specs))
		if err != nil {
			return nil, fmt.Errorf("proc: decoding root result: %w", err)
		}
		res.Groups = gs
	}
	return res, nil
}

// Close shuts the cluster down: fails any in-flight job, tells every
// worker to exit, and waits for the spawned processes (escalating to
// kill after a deadline). It returns the first unclean worker exit.
// Idempotent.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		reply := make(chan error, 1)
		select {
		case c.events <- evClose{reply: reply}:
			select {
			case c.closeErr = <-reply:
			case <-c.done:
			}
		case <-c.done:
		}
		c.ln.Close()
		c.connMu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		c.connMu.Unlock()
	})
	return c.closeErr
}

// post delivers an event to the loop, dropping it once the loop has
// exited (so readers and watchers can never wedge on a dead cluster).
func (c *Cluster) post(e event) {
	select {
	case c.events <- e:
	case <-c.done:
	}
}

func (c *Cluster) watchExit(cmd *exec.Cmd) {
	c.post(evExit{cmd: cmd, err: cmd.Wait()})
}

// acceptLoop admits control connections for the cluster's lifetime —
// formation and later joiners use the same door.
func (c *Cluster) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.connMu.Lock()
		c.conns[conn] = struct{}{}
		c.connMu.Unlock()
		// A connection that never completes a handshake dies at this
		// deadline; admission clears it.
		conn.SetReadDeadline(time.Now().Add(c.spec.JoinTimeout))
		cs := &connState{conn: conn, phase: phaseNew, id: -1}
		go c.readConn(cs)
	}
}

// readConn is one connection's reader: frames are reassembled (the
// control plane chunks large messages like the data plane) and posted
// to the loop. One reader lives for the connection's whole life, so a
// joiner's buffered bytes are never lost across a phase change.
func (c *Cluster) readConn(cs *connState) {
	defer func() {
		c.connMu.Lock()
		delete(c.conns, cs.conn)
		c.connMu.Unlock()
	}()
	br := bufio.NewReaderSize(cs.conn, sockBufSize)
	asm := dist.NewReassembler(0)
	for {
		f, err := dist.ReadFrame(br)
		if err != nil {
			c.post(evConnErr{cs: cs, err: err})
			return
		}
		if f.Kind == dist.KindPing {
			// Pings reuse one (from, seq) stream forever; routing them
			// through the reassembler would swallow every ping after the
			// first as a completed-stream duplicate, starving the
			// liveness tracker. They are single-frame by construction.
			c.post(evMsg{cs: cs, msg: f})
			continue
		}
		msg, complete, _, aerr := asm.Accept(f)
		if aerr != nil {
			c.post(evConnErr{cs: cs, err: aerr})
			return
		}
		if !complete {
			continue
		}
		c.post(evMsg{cs: cs, msg: msg})
	}
}

// runState is the in-flight job's supervisor-side state.
type runState struct {
	reply   chan runReply
	jobIdx  int
	op      byte
	topo    dist.Topology
	workers int
	specs   []sqlagg.AggSpec
	src     Source
	perKeys [][]uint32    // srcRaw group-by: re-dealt keys per node
	perCols [][][]float64 // srcRaw: re-dealt columns per node

	addrs        []string
	ready        []bool
	nready       int
	epoch        int
	started      bool
	replacements int
}

// newRunState validates a job against the cluster shape and prepares
// the per-node payloads (re-dealing raw shards round-robin when their
// count differs from the cluster size).
func newRunState(e evRun, jobIdx, n int) (*runState, error) {
	job := e.job
	rs := &runState{
		reply:   e.reply,
		jobIdx:  jobIdx,
		topo:    job.Topo,
		workers: job.Workers,
		specs:   job.Specs,
		src:     job.Source,
		addrs:   make([]string, n),
		ready:   make([]bool, n),
	}
	if rs.workers == 0 {
		rs.workers = 1
	}
	if rs.workers < 0 {
		return nil, fmt.Errorf("%w (got %d)", dist.ErrWorkers, rs.workers)
	}
	if !rs.topo.Valid() {
		return nil, fmt.Errorf("%w (got %d)", dist.ErrTopology, int(rs.topo))
	}
	rs.op = opReduce
	if len(job.Specs) > 0 {
		rs.op = opGroupBy
	}
	switch job.Source.kind {
	case srcRaw:
		return rs, rs.prepareRaw(n)
	case srcSynth:
		if err := job.Source.synth.Validate(); err != nil {
			return nil, err
		}
		if rs.op == opReduce && job.Source.synth.Groups != 0 {
			return nil, fmt.Errorf("%w: a reduction job needs a keyless synthetic source (Job.Source)", dist.ErrConfig)
		}
		if rs.op == opGroupBy && job.Source.synth.Groups == 0 {
			return nil, fmt.Errorf("%w: a group-by job needs a keyed synthetic source (Job.Source)", dist.ErrConfig)
		}
		return rs, nil
	case srcTPCHQ1:
		if job.Source.rows < 1 {
			return nil, fmt.Errorf("%w: a TPC-H source needs >= 1 row (Job.Source)", dist.ErrConfig)
		}
		if rs.op != opGroupBy {
			return nil, fmt.Errorf("%w: a TPC-H source needs a group-by job with the Q1 aggregate catalog (Job.Specs)", dist.ErrConfig)
		}
		return rs, nil
	default:
		return nil, fmt.Errorf("%w: job needs an input source (Job.Source)", dist.ErrConfig)
	}
}

// prepareRaw re-deals raw shards across the cluster's n nodes.
func (rs *runState) prepareRaw(n int) error {
	src := rs.src
	if rs.op == opReduce {
		if len(src.cols) == 0 {
			return dist.ErrNoShards
		}
		shards := make([][]float64, len(src.cols))
		for i, c := range src.cols {
			if len(c) != 1 {
				return fmt.Errorf("%w: reduction shard %d carries %d columns, want 1", dist.ErrShardMismatch, i, len(c))
			}
			shards[i] = c[0]
		}
		perNode := shards
		if n != len(shards) {
			perNode = make([][]float64, n)
			for i, s := range shards {
				perNode[i%n] = append(perNode[i%n], s...)
			}
		}
		rs.perCols = make([][][]float64, n)
		for i := range rs.perCols {
			rs.perCols[i] = [][]float64{perNode[i]}
		}
		return nil
	}
	if len(src.keys) == 0 {
		return dist.ErrNoShards
	}
	if len(src.cols) != len(src.keys) {
		return fmt.Errorf("%w: %d key shards vs %d column shards",
			dist.ErrShardMismatch, len(src.keys), len(src.cols))
	}
	if err := dist.ValidateShardColumns(src.keys, src.cols, rs.specs); err != nil {
		return err
	}
	// Ship exactly the columns the catalog reads; columns past the
	// highest bound one are dead weight on the wire.
	ncols := 0
	for _, s := range rs.specs {
		if s.Col+1 > ncols {
			ncols = s.Col + 1
		}
	}
	rs.perKeys = make([][]uint32, n)
	rs.perCols = make([][][]float64, n)
	for i := range rs.perCols {
		rs.perCols[i] = make([][]float64, ncols)
	}
	for i := range src.keys {
		node := i % n
		rs.perKeys[node] = append(rs.perKeys[node], src.keys[i]...)
		if len(src.keys[i]) == 0 {
			continue // empty shards may omit columns
		}
		for c := 0; c < ncols; c++ {
			rs.perCols[node][c] = append(rs.perCols[node][c], src.cols[i][c]...)
		}
	}
	return nil
}

// payloadFor encodes node id's job spec at the given incarnation.
func (rs *runState) payloadFor(id, inc int) ([]byte, error) {
	js := jobSpec{
		jobIdx:      rs.jobIdx,
		incarnation: inc,
		op:          rs.op,
		topo:        rs.topo,
		workers:     rs.workers,
		specs:       rs.specs,
		source:      rs.src.kind,
	}
	switch rs.src.kind {
	case srcRaw:
		if rs.perKeys != nil {
			js.keys = rs.perKeys[id]
		}
		js.cols = rs.perCols[id]
	case srcSynth:
		js.synth = rs.src.synth
	case srcTPCHQ1:
		js.rows = rs.src.rows
		js.seed = rs.src.seed
	}
	return encodeJobSpec(js)
}

// clusterLoop is the supervisor actor: all fields are owned by run()'s
// goroutine.
type clusterLoop struct {
	c *Cluster

	epoch        uint64                 // supervisor fencing epoch (0 = unjournaled)
	members      []*connState           // admitted, by node id
	incs         []int                  // next admission incarnation per slot
	spawnPending map[*exec.Cmd]int      // spawned, not yet admitted → node id
	procs        map[*exec.Cmd]int      // every live spawned process → id (-1 standby)
	standbys     []*connState           // parked joiners, promotion order
	reserved     map[int]*connState     // slot id → joiner awaiting its full hello
	prevWire     map[int]dist.WireStats // last ping-reported wire counters per slot

	everFormed bool  // all slots were filled at least once
	broken     error // fatal formation error: the cluster cannot run

	closing    bool
	closeReply chan error
	closeErr   error

	cur     *runState
	pendq   []evRun
	nextJob int

	waitT     *time.Timer
	waitArmed bool
}

func (l *clusterLoop) run() {
	defer close(l.c.done)
	if l.c.jnl != nil {
		defer l.c.jnl.close()
	}
	l.waitT = time.NewTimer(time.Hour)
	l.waitT.Stop()
	var tickC <-chan time.Time
	if l.c.spec.Liveness > 0 {
		t := time.NewTicker(l.c.spec.Liveness / 2)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case e := <-l.c.events:
			switch e := e.(type) {
			case evMsg:
				l.handleMsg(e)
			case evConnErr:
				l.handleConnErr(e)
			case evExit:
				l.handleExit(e)
			case evRun:
				l.handleRun(e)
			case evClose:
				l.handleClose(e)
			}
		case <-l.waitT.C:
			l.waitArmed = false
			l.handleTimeout()
		case <-tickC:
			l.checkLiveness()
		}
		if l.closing && len(l.procs) == 0 {
			l.closeReply <- l.closeErr
			return
		}
	}
}

func (l *clusterLoop) armWait(d time.Duration) {
	if l.waitArmed && !l.waitT.Stop() {
		select {
		case <-l.waitT.C:
		default:
		}
	}
	l.waitT.Reset(d)
	l.waitArmed = true
}

func (l *clusterLoop) disarmWait() {
	if !l.waitArmed {
		return
	}
	if !l.waitT.Stop() {
		select {
		case <-l.waitT.C:
		default:
		}
	}
	l.waitArmed = false
}

// checkWait keeps the formation/replacement deadline armed exactly
// while a job is waiting on empty slots.
func (l *clusterLoop) checkWait() {
	if l.closing || l.cur == nil {
		return
	}
	if l.missingCount() == 0 {
		l.disarmWait()
		return
	}
	l.armWait(l.c.spec.JoinTimeout)
}

func (l *clusterLoop) missingCount() int {
	n := 0
	for _, m := range l.members {
		if m == nil {
			n++
		}
	}
	return n
}

func (l *clusterLoop) allPresent() bool { return l.missingCount() == 0 }

// journal appends one record to the supervisor journal (compacting
// when due) and keeps the stats gauge fresh. A journal that stops
// accepting appends breaks the cluster: continuing would leave a hole
// that a later recovery replays as consistent state.
func (l *clusterLoop) journal(rec journalRecord) {
	j := l.c.jnl
	if j == nil || j.failed {
		return
	}
	if err := j.append(rec); err != nil {
		l.fatal(err)
		return
	}
	if j.sinceSnap >= journalCompactEvery {
		if err := j.compact(l.snapshot()); err != nil {
			l.fatal(err)
			return
		}
	}
	l.c.journalRecs.Store(int64(j.records))
}

// snapshot folds the loop's journaled state into one compaction record.
func (l *clusterLoop) snapshot() journalSnap {
	snap := journalSnap{
		epoch:    l.epoch,
		nextJob:  int64(l.nextJob),
		inFlight: -1,
		addr:     l.c.ln.Addr().String(),
		incs:     make([]int64, len(l.incs)),
		members:  make([]bool, len(l.members)),
	}
	if l.cur != nil {
		snap.inFlight = int64(l.cur.jobIdx)
	}
	for i, inc := range l.incs {
		snap.incs[i] = int64(inc)
		snap.members[i] = l.members[i] != nil
	}
	return snap
}

// writeChunked ships one logical control message, chunked like any
// other large message, under a write deadline so a wedged worker
// cannot stall the supervisor loop indefinitely.
func (l *clusterLoop) writeChunked(conn net.Conn, f dist.Frame) error {
	conn.SetWriteDeadline(time.Now().Add(ctlWriteTimeout))
	defer conn.SetWriteDeadline(time.Time{})
	bw := bufio.NewWriterSize(conn, sockBufSize)
	for _, ch := range dist.SplitFrame(f, l.c.conf.MaxChunkPayload) {
		if err := dist.WriteFrame(bw, ch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ---- admission ----

func (l *clusterLoop) handleMsg(e evMsg) {
	switch e.cs.phase {
	case phaseNew:
		l.handleFirstHello(e.cs, e.msg)
	case phaseReserved:
		l.handleSecondHello(e.cs, e.msg)
	case phaseMember:
		l.handleMemberMsg(e.cs, e.msg)
	default:
		// Parked standbys should stay silent; dead conns are history.
	}
}

// reject answers a failed admission with a typed KindError and drops
// the connection. During formation of a non-elastic cluster any such
// failure is fatal, preserving one-shot semantics: the run must fail
// promptly and loudly, not limp to a join timeout.
func (l *clusterLoop) reject(cs *connState, err error, formation bool) {
	_ = l.writeChunked(cs.conn, dist.Frame{
		Kind: dist.KindError, Seq: ctrlSeqHello, Payload: dist.EncodeErr(err),
	})
	cs.phase = phaseDead
	cs.conn.Close()
	if formation && !l.c.spec.ReplaceDead && !l.everFormed {
		l.fatal(err)
	}
}

func (l *clusterLoop) handleFirstHello(cs *connState, msg dist.Frame) {
	if msg.Kind != dist.KindHello {
		l.reject(cs, fmt.Errorf("proc: first control frame is kind %d, want hello", msg.Kind), true)
		return
	}
	h, err := decodeHello(msg.Payload)
	if err != nil {
		l.reject(cs, err, true)
		return
	}
	if h.flags&helloJoin != 0 {
		l.handleJoinHello(cs, h, msg.From)
		return
	}
	from := msg.From
	err = verifyHello(h, l.c.digest)
	if err == nil && h.epoch != l.epoch {
		err = fmt.Errorf("%w: worker is fenced at supervisor epoch %d, this supervisor is epoch %d",
			dist.ErrHandshake, h.epoch, l.epoch)
	}
	if err == nil && (from < 0 || from >= l.c.conf.N) {
		err = fmt.Errorf("%w: node id %d outside the %d-node cluster", dist.ErrHandshake, from, l.c.conf.N)
	}
	if err == nil && l.members[from] != nil {
		err = fmt.Errorf("%w: duplicate join for node id %d", dist.ErrHandshake, from)
	}
	if err == nil && l.reserved[from] != nil {
		err = fmt.Errorf("%w: duplicate join for node id %d (a joiner holds the slot)", dist.ErrHandshake, from)
	}
	if err != nil {
		l.reject(cs, err, true)
		return
	}
	var cmd *exec.Cmd
	for c2, id := range l.spawnPending {
		if id == from {
			cmd = c2
			delete(l.spawnPending, c2)
			break
		}
	}
	l.admit(cs, from, cmd)
}

// handleJoinHello admits, reserves, parks, or rejects a remote
// joiner's first hello — a config-less fresh joiner, or a returning
// member re-attaching after a lost conn (helloJoin|helloHasDigest,
// often against a restarted supervisor). Joiner failures are never
// fatal to the cluster: the control address is a public door.
func (l *clusterLoop) handleJoinHello(cs *connState, h hello, from int) {
	if err := verifyJoinHello(h); err != nil {
		l.reject(cs, err, false)
		return
	}
	if h.epoch > l.epoch {
		// The worker has attached to a newer supervisor incarnation than
		// this one: *we* are the stale side of the fence. Refusing keeps
		// a superseded supervisor from stealing workers back.
		l.reject(cs, fmt.Errorf("%w: worker has seen supervisor epoch %d, this supervisor is epoch %d (stale supervisor)",
			dist.ErrHandshake, h.epoch, l.epoch), false)
		return
	}
	if h.flags&helloHasDigest != 0 {
		// Returning member: it already holds the config, so its digest is
		// checkable now, and a journal-recovered supervisor recognizes its
		// id — hand the recorded slot back when it is still free.
		if err := verifyHello(h, l.c.digest); err != nil {
			l.reject(cs, err, false)
			return
		}
		if from >= 0 && from < l.c.conf.N && l.slotFree(from) {
			l.c.elog.Append("re-attach", from, "returning member reserved its recorded slot")
			l.reserve(cs, from)
			return
		}
	}
	if id := l.freeSlot(); id >= 0 {
		l.reserve(cs, id)
		return
	}
	if len(l.standbys) < l.c.spec.MaxStandby {
		cs.phase = phaseStandby
		cs.conn.SetReadDeadline(time.Time{}) // parked indefinitely
		l.standbys = append(l.standbys, cs)
		l.c.standbyGauge.Store(int64(len(l.standbys)))
		l.c.elog.Append("park", -1, fmt.Sprintf("joiner parked as standby (%d on the bench)", len(l.standbys)))
		l.journal(journalRecord{kind: jrPark})
		return
	}
	l.reject(cs, fmt.Errorf("%w: cluster is full: all %d node slots are taken and %d standbys are parked",
		dist.ErrHandshake, l.c.conf.N, len(l.standbys)), false)
}

// slotFree reports whether node slot id is owned by nobody — no
// member, no reserved joiner, no spawned worker still on its way in.
func (l *clusterLoop) slotFree(id int) bool {
	if l.members[id] != nil || l.reserved[id] != nil {
		return false
	}
	for _, pid := range l.spawnPending {
		if pid == id {
			return false
		}
	}
	return true
}

// freeSlot finds the lowest node id not owned by a member, a reserved
// joiner, or a spawned worker still on its way in.
func (l *clusterLoop) freeSlot() int {
	owned := make(map[int]bool, len(l.spawnPending))
	for _, id := range l.spawnPending {
		owned[id] = true
	}
	for id := range l.members {
		if l.members[id] == nil && l.reserved[id] == nil && !owned[id] {
			return id
		}
	}
	return -1
}

// reserve assigns a slot to a joiner: ship the cluster config and
// await the full (digested) hello on the same connection.
func (l *clusterLoop) reserve(cs *connState, id int) {
	cs.phase = phaseReserved
	cs.id = id
	cs.conn.SetReadDeadline(time.Now().Add(l.c.spec.JoinTimeout))
	err := l.writeChunked(cs.conn, dist.Frame{
		Kind: dist.KindConf, To: id, Seq: ctrlSeqConf, Payload: encodeConfFrame(id, l.epoch, l.c.raw),
	})
	if err != nil {
		cs.phase = phaseDead
		cs.conn.Close()
		l.fillSlot(id)
		return
	}
	l.reserved[id] = cs
}

func (l *clusterLoop) handleSecondHello(cs *connState, msg dist.Frame) {
	var err error
	var h hello
	if msg.Kind != dist.KindHello {
		err = fmt.Errorf("proc: joiner's second control frame is kind %d, want hello", msg.Kind)
	} else if h, err = decodeHello(msg.Payload); err == nil {
		err = verifyHello(h, l.c.digest)
		if err == nil && h.epoch != l.epoch {
			// The full hello must echo the epoch the KindConf carried.
			err = fmt.Errorf("%w: worker is fenced at supervisor epoch %d, this supervisor is epoch %d",
				dist.ErrHandshake, h.epoch, l.epoch)
		}
	}
	delete(l.reserved, cs.id)
	if err != nil {
		id := cs.id
		l.reject(cs, err, false)
		l.fillSlot(id)
		return
	}
	l.admit(cs, cs.id, nil)
}

// fillSlot promotes the next parked standby into an empty slot; with
// the bench empty the slot stays open for a future joiner.
func (l *clusterLoop) fillSlot(id int) {
	for len(l.standbys) > 0 {
		sb := l.standbys[0]
		l.standbys = l.standbys[1:]
		l.c.standbyGauge.Store(int64(len(l.standbys)))
		mPromotions.Inc()
		l.c.elog.Append("promote", id, "standby promoted into empty slot")
		l.journal(journalRecord{kind: jrPromote, slot: int64(id)})
		l.reserve(sb, id)
		return
	}
}

// admit makes a verified connection a cluster member and, mid-run,
// ships it the current job.
func (l *clusterLoop) admit(cs *connState, id int, cmd *exec.Cmd) {
	cs.phase = phaseMember
	cs.id = id
	cs.inc = l.incs[id]
	l.incs[id]++
	cs.cmd = cmd
	cs.lastSeen = time.Now()
	cs.conn.SetReadDeadline(time.Time{})
	l.members[id] = cs
	l.c.joined.Add(1)
	mJoins.Inc()
	l.c.elog.Append("join", id, fmt.Sprintf("incarnation %d admitted", cs.inc))
	l.journal(journalRecord{kind: jrAdmit, slot: int64(id), inc: int64(cs.inc)})
	l.c.missingGauge.Store(int64(l.missingCount()))
	if l.missingCount() == 0 && l.c.recovering.CompareAndSwap(true, false) {
		if ns := l.c.lastRecovery.Load(); ns != 0 {
			d := time.Since(time.Unix(0, ns))
			mRecoverySecs.Observe(d.Seconds())
			l.c.elog.Append("recovered", -1, fmt.Sprintf("membership whole %v after journal replay", d.Round(time.Millisecond)))
		}
	}
	if cs.inc > 0 {
		l.c.replaced.Add(1)
		if l.cur != nil {
			l.cur.replacements++
		}
	}
	if l.allPresent() {
		l.everFormed = true
	}
	if l.cur != nil {
		l.shipJob(cs)
	}
	l.checkWait()
}

// ---- death ----

func (l *clusterLoop) handleConnErr(e evConnErr) {
	cs := e.cs
	switch cs.phase {
	case phaseMember:
		l.memberGone(cs, fmt.Errorf("proc: worker %d control connection lost: %w", cs.id, e.err))
	case phaseStandby:
		cs.phase = phaseDead
		cs.conn.Close()
		for i, sb := range l.standbys {
			if sb == cs {
				l.standbys = append(l.standbys[:i], l.standbys[i+1:]...)
				break
			}
		}
		l.c.standbyGauge.Store(int64(len(l.standbys)))
	case phaseReserved:
		id := cs.id
		cs.phase = phaseDead
		cs.conn.Close()
		delete(l.reserved, id)
		l.fillSlot(id)
	case phaseNew:
		cs.phase = phaseDead
		cs.conn.Close()
		if !l.c.spec.ReplaceDead && !l.everFormed {
			l.fatal(fmt.Errorf("proc: reading handshake: %w", e.err))
		}
	}
}

func (l *clusterLoop) handleExit(e evExit) {
	id, tracked := l.procs[e.cmd]
	if !tracked {
		return
	}
	delete(l.procs, e.cmd)
	if l.closing {
		if e.err != nil && l.closeErr == nil {
			l.closeErr = fmt.Errorf("proc: worker %d exited uncleanly after shutdown: %w", id, e.err)
		}
		return
	}
	if pid, ok := l.spawnPending[e.cmd]; ok {
		delete(l.spawnPending, e.cmd)
		if !l.c.spec.ReplaceDead {
			l.fatal(fmt.Errorf("proc: worker %d exited during join: %w", pid, exitErr(e.err)))
		} else {
			// Not fatal (a joiner can still fill the slot), but not
			// silent either: an operator watching a cluster that never
			// forms needs to see its spawned workers dying.
			fmt.Fprintf(l.c.spec.Options.logWriter(),
				"proc: worker %d exited during join: %v\n", pid, exitErr(e.err))
		}
		return
	}
	for _, m := range l.members {
		if m != nil && m.cmd == e.cmd {
			l.memberGone(m, fmt.Errorf("proc: worker %d exited mid-run: %w", m.id, exitErr(e.err)))
			return
		}
	}
	// A standby process, or a member already replaced: nothing to do.
}

// memberGone removes a dead member. Elastic clusters promote a
// standby (or wait for a joiner) and the current job survives;
// one-shot clusters fail the run and break, preserving the original
// semantics.
func (l *clusterLoop) memberGone(m *connState, cause error) {
	if l.members[m.id] != m {
		return // stale: the slot already moved on
	}
	m.phase = phaseDead
	m.conn.Close()
	l.members[m.id] = nil
	mDeparts.Inc()
	l.c.elog.Append("depart", m.id, cause.Error())
	l.journal(journalRecord{kind: jrGone, slot: int64(m.id)})
	l.c.missingGauge.Store(int64(l.missingCount()))
	if !l.c.spec.ReplaceDead {
		l.fatal(cause)
		return
	}
	if l.cur != nil && l.cur.ready[m.id] {
		l.cur.ready[m.id] = false
		l.cur.addrs[m.id] = ""
		l.cur.nready--
	}
	l.fillSlot(m.id)
	l.checkWait()
}

// fatal breaks the cluster: the current and all queued jobs fail with
// err, and every future Run fails the same way.
func (l *clusterLoop) fatal(err error) {
	if l.broken == nil {
		l.broken = err
	}
	l.failJob(err)
	l.drainPendq()
}

// ---- jobs ----

func (l *clusterLoop) handleRun(e evRun) {
	if l.closing {
		e.reply <- runReply{err: ErrClusterClosed}
		return
	}
	if l.broken != nil {
		e.reply <- runReply{err: l.broken}
		return
	}
	if l.cur != nil {
		l.pendq = append(l.pendq, e)
		return
	}
	l.startRun(e)
}

func (l *clusterLoop) startRun(e evRun) {
	rs, err := newRunState(e, l.nextJob, l.c.conf.N)
	if err != nil {
		e.reply <- runReply{err: err}
		return
	}
	l.nextJob++
	l.cur = rs
	mJobsStarted.Inc()
	l.c.jobsStarted.Add(1)
	l.c.elog.Append("job", -1, fmt.Sprintf("job %d dispatched", rs.jobIdx))
	l.journal(journalRecord{kind: jrJobStart, job: int64(rs.jobIdx)})
	for _, m := range l.members {
		if m != nil {
			l.shipJob(m)
		}
		if l.cur == nil {
			return // a ship failure already failed the job
		}
	}
	l.checkWait()
}

func (l *clusterLoop) shipJob(m *connState) {
	if l.cur == nil {
		return
	}
	payload, err := l.cur.payloadFor(m.id, m.inc)
	if err != nil {
		l.failJob(err)
		return
	}
	err = l.writeChunked(m.conn, dist.Frame{
		Kind: dist.KindJob, To: m.id, Seq: ctrlSeqJob(l.cur.jobIdx), Payload: payload,
	})
	if err != nil {
		l.memberGone(m, fmt.Errorf("proc: sending job to worker %d: %w", m.id, err))
	}
}

func (l *clusterLoop) handleMemberMsg(cs *connState, msg dist.Frame) {
	if l.members[cs.id] != cs {
		return // a zombie the liveness check already replaced
	}
	cs.lastSeen = time.Now()
	switch msg.Kind {
	case dist.KindPing:
		// lastSeen is the message. A spec-5 ping also carries the
		// worker's telemetry: its cumulative wire counters (merged as
		// deltas, keyed by slot, clamped on restart), jobs run, and the
		// RTT it measured from the previous echo. The payload is echoed
		// straight back so the worker times the round trip against its
		// own clock — no cross-machine clock arithmetic. Echo failures
		// are left to the reader: a dead connection surfaces there.
		if p, ok := decodePingStats(msg.Payload); ok {
			mHeartbeats.Inc()
			l.c.heartbeats.Add(1)
			if p.rttNanos > 0 {
				l.c.lastRTT.Store(p.rttNanos)
				mHeartbeatRTT.Observe(float64(p.rttNanos) / 1e9)
			}
			delta := p.wire.Sub(l.prevWire[cs.id])
			l.prevWire[cs.id] = p.wire
			l.c.wireMu.Lock()
			l.c.workerWire.Add(delta)
			l.c.wireMu.Unlock()
			_ = l.writeChunked(cs.conn, dist.Frame{
				Kind: dist.KindPing, To: cs.id, Seq: ctrlSeqPing, Payload: msg.Payload,
			})
		}
	case dist.KindReady:
		jobIdx, addr, err := decodeReady(msg.Payload)
		if err != nil || l.cur == nil || jobIdx != l.cur.jobIdx || l.cur.ready[cs.id] {
			return
		}
		l.cur.ready[cs.id] = true
		l.cur.addrs[cs.id] = addr
		l.cur.nready++
		if l.cur.nready == l.c.conf.N {
			l.broadcastPeers()
		}
	case dist.KindResult:
		if l.cur == nil || msg.Seq != ctrlSeqResult(l.cur.jobIdx) || cs.id != 0 {
			return
		}
		l.finishJob(msg.Payload)
	case dist.KindError:
		if l.cur == nil || msg.Seq != ctrlSeqResult(l.cur.jobIdx) {
			return
		}
		l.failJob(dist.DecodeErr(cs.id, msg.Payload))
	}
}

// broadcastPeers ships the complete data-plane address table to every
// member. Each broadcast gets a fresh epoch (and with it a fresh
// control seq, so the reassembler's duplicate suppression cannot
// swallow a re-broadcast): the first one starts the job, later ones
// re-point the surviving peers at a substitute's fresh listener.
func (l *clusterLoop) broadcastPeers() {
	rs := l.cur
	payload := encodePeers(rs.jobIdx, rs.epoch, rs.addrs)
	seq := ctrlSeqPeers(rs.jobIdx, rs.epoch)
	rs.epoch++
	rs.started = true
	for _, m := range l.members {
		if m == nil {
			continue
		}
		err := l.writeChunked(m.conn, dist.Frame{Kind: dist.KindPeers, To: m.id, Seq: seq, Payload: payload})
		if err != nil {
			l.memberGone(m, fmt.Errorf("proc: sending peers to worker %d: %w", m.id, err))
			if l.cur == nil {
				return
			}
		}
	}
}

func (l *clusterLoop) finishJob(payload []byte) {
	rs := l.cur
	l.cur = nil
	l.disarmWait()
	l.jobDone(rs.jobIdx)
	rs.reply <- runReply{payload: payload, replacements: rs.replacements}
	l.nextPend()
}

func (l *clusterLoop) failJob(err error) {
	if l.cur == nil {
		return
	}
	rs := l.cur
	l.cur = nil
	l.disarmWait()
	l.jobDone(rs.jobIdx)
	rs.reply <- runReply{err: err}
	l.nextPend()
}

// jobDone tells every member to tear down the job's data plane and
// await the next job.
func (l *clusterLoop) jobDone(jobIdx int) {
	l.journal(journalRecord{kind: jrJobDone, job: int64(jobIdx)})
	for _, m := range l.members {
		if m == nil {
			continue
		}
		err := l.writeChunked(m.conn, dist.Frame{Kind: dist.KindJobDone, To: m.id, Seq: ctrlSeqDone(jobIdx)})
		if err != nil {
			l.memberGone(m, fmt.Errorf("proc: finishing job on worker %d: %w", m.id, err))
		}
	}
}

func (l *clusterLoop) nextPend() {
	if l.broken != nil || l.closing {
		l.drainPendq()
		return
	}
	if l.cur == nil && len(l.pendq) > 0 {
		e := l.pendq[0]
		l.pendq = l.pendq[1:]
		l.startRun(e)
	}
}

func (l *clusterLoop) drainPendq() {
	err := l.broken
	if err == nil {
		err = ErrClusterClosed
	}
	for _, r := range l.pendq {
		r.reply <- runReply{err: err}
	}
	l.pendq = nil
}

// ---- timers ----

func (l *clusterLoop) handleTimeout() {
	if l.closing {
		if l.closeErr == nil && len(l.procs) > 0 {
			l.closeErr = errors.New("proc: workers did not exit within the shutdown deadline")
		}
		for cmd := range l.procs {
			_ = cmd.Process.Kill()
		}
		return
	}
	if l.cur == nil {
		return
	}
	missing := l.missingCount()
	if missing == 0 {
		return // stale deadline: the slots filled while the timer fired
	}
	if !l.everFormed {
		l.failJob(fmt.Errorf("proc: join timeout: not all of %d workers completed the handshake within %v",
			l.c.conf.N, l.c.spec.JoinTimeout))
		return
	}
	l.failJob(fmt.Errorf("%w: replacement timeout: %d node slot(s) still empty after %v",
		ErrRecovering, missing, l.c.spec.JoinTimeout))
}

// checkLiveness declares members dead after a full liveness window of
// control-plane silence; the normal death path then replaces them.
func (l *clusterLoop) checkLiveness() {
	now := time.Now()
	for _, m := range l.members {
		if m != nil && now.Sub(m.lastSeen) > l.c.spec.Liveness {
			mLivenessMisses.Inc()
			l.memberGone(m, fmt.Errorf("proc: worker %d missed the liveness window (silent for %v)",
				m.id, now.Sub(m.lastSeen).Round(time.Millisecond)))
		}
	}
}

// ---- shutdown ----

func (l *clusterLoop) handleClose(e evClose) {
	l.closing = true
	l.closeReply = e.reply
	l.failJob(ErrClusterClosed)
	l.drainPendq()
	l.c.ln.Close()
	shutdown := func(cs *connState, id int) {
		_ = l.writeChunked(cs.conn, dist.Frame{Kind: dist.KindShutdown, To: id, Seq: ctrlSeqShutdown})
	}
	for _, m := range l.members {
		if m != nil {
			shutdown(m, m.id)
		}
	}
	for _, sb := range l.standbys {
		shutdown(sb, -1)
	}
	for _, r := range l.reserved {
		shutdown(r, -1)
	}
	l.armWait(10 * time.Second)
}
