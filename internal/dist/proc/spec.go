package proc

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/dist"
	"repro/internal/sqlagg"
	"repro/internal/workload"
)

// Wire encodings of the control plane, spec version 5. The cluster
// config (clusterConf) is everything a long-lived cluster's members
// must agree on before any job exists: size, protocol knobs, fault
// plan, liveness cadence. It is digested into the join handshake, so
// a stale or edited worker is rejected at admission. Per-job state —
// the operation, topology, aggregate catalog, and the input source —
// moved out of the conf and into the KindJob payload (jobSpec), which
// is what lets one cluster run many jobs. Everything is little-endian
// and versioned; decoders validate lengths and never over-allocate on
// a corrupt prefix.

// Operations a worker can execute.
const (
	opReduce byte = 1 + iota
	opGroupBy
)

// Input-source kinds of a job: raw rows shipped in the payload, or a
// declarative generator spec the worker materializes locally (O(1)
// dispatch regardless of data size).
const (
	srcRaw byte = 1 + iota
	srcSynth
	srcTPCHQ1
)

// specVersion versions the control-plane encodings. It is the first
// byte of the conf blob, so a digest mismatch also covers spec-format
// drift between supervisor and worker builds — and it rides in every
// hello, so even a config-less joiner with a stale build is rejected
// before the conf is shipped. Version 2 added the aggregate spec
// catalog; version 3 split the per-job spec (operation, topology,
// catalog, input source) out of the cluster config and added remote
// join, declarative sources, and liveness fields; version 4 added the
// supervisor fencing epoch to the hello and KindConf payloads
// (journaled crash-restart recovery and worker re-attach); version 5
// added the versioned heartbeat payload (worker wire counters, ping
// RTT, jobs run) piggybacked on KindPing frames.
const specVersion = 5

// ControlSpecVersion exposes the control-plane spec version for status
// surfaces (reproserve /stats); the unexported name stays the one the
// codecs use.
const ControlSpecVersion = specVersion

// maxJobCols bounds the column count a job payload may declare; it
// matches the aggregate catalog's spec limit, since a catalog can bind
// at most that many distinct columns.
const maxJobCols = 256

// clusterConf is the cluster-lifetime configuration every member must
// hold an identical copy of. Spawned workers receive its encoding at
// spawn time (-conf hex); remote joiners receive it in KindConf after
// their first hello. Either way the worker digests the raw bytes into
// its (full) KindHello, so a worker holding a different config is
// rejected at join time instead of diverging mid-run.
type clusterConf struct {
	N int // cluster size (worker process count)

	MaxChunkPayload  int
	ReassemblyBudget int
	ChildDeadline    time.Duration
	MaxResend        int

	// Heartbeat is the workers' control-plane ping interval (0 = no
	// heartbeats); Liveness is how long the supervisor lets a member
	// stay silent before declaring it dead (0 = conn errors only).
	Heartbeat time.Duration
	Liveness  time.Duration

	// KillNode/KillAfter inject the forced socket-kill scenario: node
	// KillNode severs its outgoing data-plane connections once, just
	// before its KillAfter-th data frame send. KillAfter == 0 disables.
	KillNode  int
	KillAfter int

	// DieNode/DieAfter inject the forced worker-death scenario: node
	// DieNode exits the whole process just before its DieAfter-th
	// data frame send (first incarnation only — a replacement must
	// not inherit the suicide). DieAfter == 0 disables.
	DieNode  int
	DieAfter int

	Faults dist.FaultPlan
}

// distConfig is the dist.Config a worker derives from the agreed
// cluster config for its node-local protocol runs.
func (c clusterConf) distConfig() dist.Config {
	return dist.Config{
		ChildDeadline:    c.ChildDeadline,
		MaxResend:        c.MaxResend,
		MaxChunkPayload:  c.MaxChunkPayload,
		ReassemblyBudget: c.ReassemblyBudget,
	}
}

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU16(b []byte, v uint16) []byte {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	return append(b, tmp[:]...)
}

// encodeConf flattens the cluster config canonically (field order is
// part of the digest contract).
func encodeConf(c clusterConf) []byte {
	b := make([]byte, 0, 160)
	b = append(b, specVersion)
	b = appendI64(b, int64(c.N))
	b = appendI64(b, int64(c.MaxChunkPayload))
	b = appendI64(b, int64(c.ReassemblyBudget))
	b = appendI64(b, int64(c.ChildDeadline))
	b = appendI64(b, int64(c.MaxResend))
	b = appendI64(b, int64(c.Heartbeat))
	b = appendI64(b, int64(c.Liveness))
	b = appendI64(b, int64(c.KillNode))
	b = appendI64(b, int64(c.KillAfter))
	b = appendI64(b, int64(c.DieNode))
	b = appendI64(b, int64(c.DieAfter))
	b = appendU64(b, c.Faults.Seed)
	b = appendU64(b, math.Float64bits(c.Faults.DropProb))
	b = appendI64(b, int64(c.Faults.MaxDrops))
	b = appendI64(b, int64(c.Faults.RetryDelay))
	b = appendU64(b, math.Float64bits(c.Faults.DupProb))
	b = appendI64(b, int64(c.Faults.MaxDelay))
	if c.Faults.Reorder {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

// confReader walks an encoded conf, remembering the first error.
type confReader struct {
	b   []byte
	err error
}

func (r *confReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = fmt.Errorf("proc: truncated cluster config")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *confReader) i64() int64 { return int64(r.u64()) }

func (r *confReader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = fmt.Errorf("proc: truncated cluster config")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// decodeConf inverts encodeConf, validating the spec version and the
// decoded shape.
func decodeConf(raw []byte) (clusterConf, error) {
	var c clusterConf
	r := &confReader{b: raw}
	if v := r.byteVal(); r.err == nil && v != specVersion {
		return c, fmt.Errorf("proc: cluster config spec version %d, this build speaks %d", v, specVersion)
	}
	c.N = int(r.i64())
	c.MaxChunkPayload = int(r.i64())
	c.ReassemblyBudget = int(r.i64())
	c.ChildDeadline = time.Duration(r.i64())
	c.MaxResend = int(r.i64())
	c.Heartbeat = time.Duration(r.i64())
	c.Liveness = time.Duration(r.i64())
	c.KillNode = int(r.i64())
	c.KillAfter = int(r.i64())
	c.DieNode = int(r.i64())
	c.DieAfter = int(r.i64())
	c.Faults.Seed = r.u64()
	c.Faults.DropProb = math.Float64frombits(r.u64())
	c.Faults.MaxDrops = int(r.i64())
	c.Faults.RetryDelay = time.Duration(r.i64())
	c.Faults.DupProb = math.Float64frombits(r.u64())
	c.Faults.MaxDelay = time.Duration(r.i64())
	c.Faults.Reorder = r.byteVal() == 1
	if r.err != nil {
		return c, r.err
	}
	if len(r.b) != 0 {
		return c, fmt.Errorf("proc: %d trailing bytes after cluster config", len(r.b))
	}
	if c.N < 1 {
		return c, fmt.Errorf("proc: cluster config declares %d nodes", c.N)
	}
	return c, nil
}

// confDigest is the run-config digest of the join handshake: FNV-64a
// over the raw canonical conf encoding. Workers digest the bytes they
// actually parsed, so any drift — a knob, the cluster size, even the
// spec version byte — flips the digest.
func confDigest(raw []byte) uint64 {
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

// Control-plane stream ids (Frame.Seq). The control connection is a
// dedicated reliable TCP stream per worker, but chunked messages reuse
// the data-plane reassembler, which dedups per (from, seq) — distinct
// ids keep logically distinct streams distinct. Cluster-lifetime
// streams get the low ids; each job gets a block of ids (so a
// multi-job cluster never replays a seq on the same connection), and
// each KindPeers epoch its own id within the block (a re-broadcast
// must not be swallowed as a duplicate of the first).
const (
	ctrlSeqHello uint32 = iota
	ctrlSeqConf
	ctrlSeqPing
	ctrlSeqShutdown
	// ctrlSeqRejoin carries a returning member's join hello. It must be
	// a distinct stream from ctrlSeqHello: the full hello that follows
	// it uses the same From id on the same connection, and two messages
	// on one (from, seq) stream would make the reassembler swallow the
	// second as a duplicate. (Fresh joiners dodge this with From=-1.)
	ctrlSeqRejoin

	ctrlSeqJobBase   uint32 = 1 << 16
	ctrlSeqJobStride uint32 = 1 << 8
	ctrlSeqPeersOff  uint32 = 16
)

func ctrlSeqJob(jobIdx int) uint32    { return ctrlSeqJobBase + uint32(jobIdx)*ctrlSeqJobStride }
func ctrlSeqReady(jobIdx int) uint32  { return ctrlSeqJob(jobIdx) + 1 }
func ctrlSeqResult(jobIdx int) uint32 { return ctrlSeqJob(jobIdx) + 2 }
func ctrlSeqDone(jobIdx int) uint32   { return ctrlSeqJob(jobIdx) + 3 }
func ctrlSeqPeers(jobIdx, epoch int) uint32 {
	return ctrlSeqJob(jobIdx) + ctrlSeqPeersOff + uint32(epoch)%(ctrlSeqJobStride-ctrlSeqPeersOff)
}

// Hello flags.
const (
	// helloHasDigest marks a full hello: the worker holds the cluster
	// config and its digest field is meaningful.
	helloHasDigest byte = 1 << iota
	// helloJoin marks a remote joiner's first hello: no config yet,
	// requesting admission (the supervisor answers with KindConf).
	helloJoin
)

// hello is the decoded KindHello payload.
type hello struct {
	version byte   // frame codec version the worker speaks
	levels  byte   // rsum summation level count compiled into the worker
	specver byte   // control-plane spec version the worker speaks
	flags   byte   // helloHasDigest | helloJoin
	digest  uint64 // confDigest of the worker's cluster config (full hello)
	epoch   uint64 // last supervisor epoch the worker attached to (0 = none)
}

// encodeHello flattens the join handshake payload:
//
//	offset  size  field
//	0       1     frame codec version
//	1       1     rsum level count
//	2       1     control-plane spec version
//	3       1     flags (helloHasDigest | helloJoin)
//	4       8     run-config digest (FNV-64a; zero unless helloHasDigest)
//	12      8     supervisor fencing epoch the worker last attached to
func encodeHello(h hello) []byte {
	b := make([]byte, 0, 20)
	b = append(b, h.version, h.levels, h.specver, h.flags)
	b = appendU64(b, h.digest)
	return appendU64(b, h.epoch)
}

// decodeHello inverts encodeHello.
func decodeHello(payload []byte) (hello, error) {
	var h hello
	if len(payload) != 20 {
		return h, fmt.Errorf("proc: hello payload is %d bytes, want 20", len(payload))
	}
	h.version = payload[0]
	h.levels = payload[1]
	h.specver = payload[2]
	h.flags = payload[3]
	h.digest = binary.LittleEndian.Uint64(payload[4:])
	h.epoch = binary.LittleEndian.Uint64(payload[12:])
	if h.flags&(helloHasDigest|helloJoin) == 0 || h.flags&^(helloHasDigest|helloJoin) != 0 {
		return h, fmt.Errorf("proc: hello carries invalid flags %#x", h.flags)
	}
	return h, nil
}

// pingStats is the decoded KindPing payload (spec version 5+). A
// heartbeat doubles as the worker's telemetry report: its data-plane
// wire counters (cumulative since process start), the RTT it measured
// on its previous ping from the supervisor's echo, and the number of
// jobs it has run. An empty ping payload is valid — it is what spec-4
// workers and the supervisor's pong echo's first round send — and
// decodes to ok=false.
type pingStats struct {
	sentNanos int64 // sender's send timestamp (echoed back in the pong)
	rttNanos  int64 // RTT the worker measured from the previous echo (0 = none yet)
	jobsRun   uint64
	wire      dist.WireStats
}

// encodePingStats flattens a heartbeat payload:
//
//	offset  size  field
//	0       1     control-plane spec version
//	1       8     sentNanos
//	9       8     rttNanos
//	17      8     jobsRun
//	25      9×8   WireStats fields, declaration order
func encodePingStats(p pingStats) []byte {
	b := make([]byte, 0, 1+3*8+9*8)
	b = append(b, specVersion)
	b = appendU64(b, uint64(p.sentNanos))
	b = appendU64(b, uint64(p.rttNanos))
	b = appendU64(b, p.jobsRun)
	for _, v := range [...]uint64{
		p.wire.FramesOut, p.wire.FramesIn,
		p.wire.BytesOut, p.wire.BytesIn,
		p.wire.ChanFrames, p.wire.ChunksSplit,
		p.wire.Retransmits, p.wire.ResendRequests,
		p.wire.ReassemblyRejects,
	} {
		b = appendU64(b, v)
	}
	return b
}

// decodePingStats inverts encodePingStats. Empty and unknown-version
// payloads are not errors — liveness must keep working across a spec
// skew — they just carry no stats (ok=false).
func decodePingStats(payload []byte) (pingStats, bool) {
	var p pingStats
	if len(payload) != 1+3*8+9*8 || payload[0] != specVersion {
		return p, false
	}
	u := func(off int) uint64 { return binary.LittleEndian.Uint64(payload[off:]) }
	p.sentNanos = int64(u(1))
	p.rttNanos = int64(u(9))
	p.jobsRun = u(17)
	p.wire = dist.WireStats{
		FramesOut:         u(25),
		FramesIn:          u(33),
		BytesOut:          u(41),
		BytesIn:           u(49),
		ChanFrames:        u(57),
		ChunksSplit:       u(65),
		Retransmits:       u(73),
		ResendRequests:    u(81),
		ReassemblyRejects: u(89),
	}
	return p, true
}

// encodeConfFrame flattens a KindConf payload: the node id the
// supervisor assigned the joiner, the supervisor's fencing epoch, then
// the raw cluster config.
func encodeConfFrame(id int, epoch uint64, raw []byte) []byte {
	b := make([]byte, 0, 12+len(raw))
	b = appendU32(b, uint32(int32(id)))
	b = appendU64(b, epoch)
	return append(b, raw...)
}

// decodeConfFrame inverts encodeConfFrame.
func decodeConfFrame(payload []byte) (id int, epoch uint64, raw []byte, err error) {
	if len(payload) < 12 {
		return 0, 0, nil, fmt.Errorf("proc: truncated conf frame")
	}
	id = int(int32(binary.LittleEndian.Uint32(payload)))
	epoch = binary.LittleEndian.Uint64(payload[4:])
	return id, epoch, payload[12:], nil
}

// encodeReady flattens a KindReady payload: the job index and the
// worker's freshly bound data-plane listen address.
func encodeReady(jobIdx int, addr string) []byte {
	b := make([]byte, 0, 6+len(addr))
	b = appendU32(b, uint32(jobIdx))
	b = appendU16(b, uint16(len(addr)))
	return append(b, addr...)
}

// decodeReady inverts encodeReady.
func decodeReady(payload []byte) (jobIdx int, addr string, err error) {
	if len(payload) < 6 {
		return 0, "", fmt.Errorf("proc: truncated ready payload")
	}
	jobIdx = int(binary.LittleEndian.Uint32(payload))
	alen := int(binary.LittleEndian.Uint16(payload[4:]))
	if alen == 0 || len(payload) != 6+alen {
		return 0, "", fmt.Errorf("proc: ready declares a %d-byte address in a %d-byte payload", alen, len(payload))
	}
	return jobIdx, string(payload[6:]), nil
}

// encodePeers flattens a KindPeers payload: job index, epoch, and the
// cluster's data-plane address table (2B-length-prefixed each).
func encodePeers(jobIdx, epoch int, addrs []string) []byte {
	size := 10
	for _, a := range addrs {
		size += 2 + len(a)
	}
	b := make([]byte, 0, size)
	b = appendU32(b, uint32(jobIdx))
	b = appendU32(b, uint32(epoch))
	b = appendU16(b, uint16(len(addrs)))
	for _, a := range addrs {
		b = appendU16(b, uint16(len(a)))
		b = append(b, a...)
	}
	return b
}

// decodePeers inverts encodePeers.
func decodePeers(payload []byte) (jobIdx, epoch int, addrs []string, err error) {
	if len(payload) < 10 {
		return 0, 0, nil, fmt.Errorf("proc: truncated peers payload")
	}
	jobIdx = int(binary.LittleEndian.Uint32(payload))
	epoch = int(binary.LittleEndian.Uint32(payload[4:]))
	n := int(binary.LittleEndian.Uint16(payload[8:]))
	payload = payload[10:]
	addrs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(payload) < 2 {
			return 0, 0, nil, fmt.Errorf("proc: truncated peers address table")
		}
		alen := int(binary.LittleEndian.Uint16(payload))
		payload = payload[2:]
		if alen == 0 || len(payload) < alen {
			return 0, 0, nil, fmt.Errorf("proc: peers address %d declares %d bytes, %d remain", i, alen, len(payload))
		}
		addrs = append(addrs, string(payload[:alen]))
		payload = payload[alen:]
	}
	if len(payload) != 0 {
		return 0, 0, nil, fmt.Errorf("proc: %d trailing bytes after peers table", len(payload))
	}
	return jobIdx, epoch, addrs, nil
}

// jobSpec is the decoded KindJob payload: which operation to run, its
// shape, and where this worker's input comes from — either raw rows in
// the payload (srcRaw) or a declarative source the worker materializes
// locally and slices round-robin by its node id (srcSynth, srcTPCHQ1).
type jobSpec struct {
	jobIdx      int
	incarnation int // 0 = original dispatch; >0 = re-shipped to a replacement
	op          byte
	topo        dist.Topology
	workers     int
	specs       []sqlagg.AggSpec // groupby only

	source byte
	// srcRaw: this worker's rows.
	keys []uint32
	cols [][]float64
	// srcSynth: the dataset generator.
	synth workload.Spec
	// srcTPCHQ1: lineitem row count and seed.
	rows int
	seed uint64
}

// encodeJobSpec flattens a job:
//
//	4B job index, 4B incarnation, 1B op, 1B topology, 8B workers,
//	[groupby: aggregate catalog (sqlagg.EncodeSpecs, self-delimiting)],
//	1B source kind, then the source body:
//	  srcRaw:    8B rows, 2B ncols, keys (4B each, groupby only),
//	             columns (8B each, column-major)
//	  srcSynth:  workload spec encoding (to end of payload)
//	  srcTPCHQ1: 8B rows, 8B seed
func encodeJobSpec(j jobSpec) ([]byte, error) {
	b := make([]byte, 0, 64)
	b = appendU32(b, uint32(j.jobIdx))
	b = appendU32(b, uint32(j.incarnation))
	b = append(b, j.op, byte(j.topo))
	b = appendI64(b, int64(j.workers))
	if j.op == opGroupBy {
		var err error
		if b, err = sqlagg.EncodeSpecs(b, j.specs); err != nil {
			return nil, err
		}
	}
	b = append(b, j.source)
	switch j.source {
	case srcRaw:
		rows := 0
		if len(j.cols) > 0 {
			rows = len(j.cols[0])
		}
		b = appendI64(b, int64(rows))
		b = appendU16(b, uint16(len(j.cols)))
		if j.op == opGroupBy {
			for _, k := range j.keys {
				b = appendU32(b, k)
			}
		}
		for _, col := range j.cols {
			for _, v := range col {
				b = appendU64(b, math.Float64bits(v))
			}
		}
	case srcSynth:
		var err error
		if b, err = j.synth.AppendBinary(b); err != nil {
			return nil, err
		}
	case srcTPCHQ1:
		b = appendI64(b, int64(j.rows))
		b = appendU64(b, j.seed)
	default:
		return nil, fmt.Errorf("proc: unknown job source kind %d", j.source)
	}
	return b, nil
}

// decodeJobSpec inverts encodeJobSpec, validating every length against
// the remaining bytes.
func decodeJobSpec(payload []byte) (jobSpec, error) {
	var j jobSpec
	if len(payload) < 19 {
		return j, fmt.Errorf("proc: truncated job spec")
	}
	j.jobIdx = int(binary.LittleEndian.Uint32(payload))
	j.incarnation = int(binary.LittleEndian.Uint32(payload[4:]))
	j.op = payload[8]
	j.topo = dist.Topology(payload[9])
	j.workers = int(int64(binary.LittleEndian.Uint64(payload[10:])))
	payload = payload[18:]
	if j.op != opReduce && j.op != opGroupBy {
		return j, fmt.Errorf("proc: unknown operation %d in job spec", j.op)
	}
	if !j.topo.Valid() {
		return j, fmt.Errorf("proc: unknown topology %d in job spec", int(j.topo))
	}
	if j.workers < 1 {
		return j, fmt.Errorf("proc: job spec declares %d worker goroutines", j.workers)
	}
	if j.op == opGroupBy {
		specs, n, err := sqlagg.DecodeSpecsPrefix(payload)
		if err != nil {
			return j, fmt.Errorf("proc: job spec aggregate catalog: %w", err)
		}
		j.specs = specs
		payload = payload[n:]
	}
	if len(payload) < 1 {
		return j, fmt.Errorf("proc: job spec missing input source")
	}
	j.source = payload[0]
	payload = payload[1:]
	switch j.source {
	case srcRaw:
		keys, cols, err := decodeRawRows(j.op, payload)
		if err != nil {
			return j, err
		}
		j.keys, j.cols = keys, cols
	case srcSynth:
		spec, err := workload.DecodeSpec(payload)
		if err != nil {
			return j, fmt.Errorf("proc: job spec source: %w", err)
		}
		if j.op == opReduce && spec.Groups != 0 {
			return j, fmt.Errorf("proc: reduction job spec declares a keyed synthetic source")
		}
		if j.op == opGroupBy && spec.Groups == 0 {
			return j, fmt.Errorf("proc: group-by job spec declares a keyless synthetic source")
		}
		j.synth = spec
	case srcTPCHQ1:
		if len(payload) != 16 {
			return j, fmt.Errorf("proc: tpch source body is %d bytes, want 16", len(payload))
		}
		j.rows = int(int64(binary.LittleEndian.Uint64(payload)))
		j.seed = binary.LittleEndian.Uint64(payload[8:])
		if j.rows < 1 {
			return j, fmt.Errorf("proc: tpch source declares %d rows", j.rows)
		}
		if j.op != opGroupBy {
			return j, fmt.Errorf("proc: tpch source on a non-group-by job")
		}
	default:
		return j, fmt.Errorf("proc: unknown job source kind %d", j.source)
	}
	return j, nil
}

// decodeRawRows decodes a srcRaw source body: [8B row count]
// [2B column count] keys (groupby) then column-major values, with
// overflow-safe validation against hostile counts.
func decodeRawRows(op byte, payload []byte) (keys []uint32, cols [][]float64, err error) {
	if len(payload) < 10 {
		return nil, nil, fmt.Errorf("proc: truncated job row header")
	}
	rows := int(int64(binary.LittleEndian.Uint64(payload)))
	ncols := int(binary.LittleEndian.Uint16(payload[8:]))
	payload = payload[10:]
	if ncols < 1 || ncols > maxJobCols {
		return nil, nil, fmt.Errorf("proc: job declares %d columns", ncols)
	}
	if op == opReduce && ncols != 1 {
		return nil, nil, fmt.Errorf("proc: reduction job declares %d columns, want 1", ncols)
	}
	// Bound the declared count by the bytes actually present before any
	// multiplication or allocation: a hostile 2^61-row count must fail
	// this check, not overflow `rows × width` into a passing comparison
	// and panic in make(). ncols is already capped, so rows × width
	// cannot overflow either.
	width := 8 * ncols
	if op == opGroupBy {
		width += 4
	}
	if rows < 0 || rows > len(payload)/width || len(payload) != rows*width {
		return nil, nil, fmt.Errorf("proc: job declares %d rows × %d columns but carries %d payload bytes", rows, ncols, len(payload))
	}
	if op == opGroupBy {
		keys = make([]uint32, rows)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint32(payload[i*4:])
		}
		payload = payload[rows*4:]
	}
	flat := make([]float64, ncols*rows)
	cols = make([][]float64, ncols)
	for c := range cols {
		col := flat[c*rows : (c+1)*rows : (c+1)*rows]
		for i := range col {
			col[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[(c*rows+i)*8:]))
		}
		cols[c] = col
	}
	return keys, cols, nil
}
