package proc

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/dist"
	"repro/internal/sqlagg"
)

// Wire encodings of the control plane: the cluster config every member
// must agree on (passed to workers at spawn time, digested into the
// join handshake), the KindHello payload, and the KindJob payload
// (peer address table plus the worker's input shard). Everything is
// little-endian and versioned; decoders validate lengths and never
// over-allocate on a corrupt prefix.

// Operations a worker can execute.
const (
	opReduce byte = 1 + iota
	opGroupBy
)

// specVersion versions the clusterConf encoding. It is the first byte
// of the blob, so a digest mismatch also covers spec-format drift
// between supervisor and worker builds. Version 2 added the aggregate
// spec catalog (multi-aggregate GROUP BY) and multi-column jobs.
const specVersion = 2

// maxJobCols bounds the column count a job payload may declare; it
// matches the aggregate catalog's spec limit, since a catalog can bind
// at most that many distinct columns.
const maxJobCols = 256

// clusterConf is the run configuration every cluster member must hold
// an identical copy of: the operation, the cluster shape, and every
// Config knob that changes protocol behavior. The supervisor passes
// its encoding to each worker at spawn time (-conf hex); the worker
// digests the raw bytes into its KindHello, so a worker started with a
// stale or edited config is rejected at join time instead of
// diverging mid-run.
type clusterConf struct {
	Op      byte
	Topo    dist.Topology
	N       int // cluster size (worker process count)
	Workers int // per-node worker goroutines

	MaxChunkPayload  int
	ReassemblyBudget int
	ChildDeadline    time.Duration
	MaxResend        int

	// KillNode/KillAfter inject the forced socket-kill scenario: node
	// KillNode severs its outgoing data-plane connections once, just
	// before its KillAfter-th data frame send. KillAfter == 0 disables.
	KillNode  int
	KillAfter int

	Faults dist.FaultPlan

	// Specs is the aggregate catalog of a GROUP BY run: which aggregate
	// states each node builds per key, in output order. It rides in the
	// canonical conf encoding, so the join-handshake digest rejects a
	// worker whose catalog (kinds, level counts, or column bindings)
	// differs from the supervisor's. Empty for a reduction.
	Specs []sqlagg.AggSpec
}

// distConfig is the dist.Config a worker derives from the agreed
// cluster config for its node-local protocol run.
func (c clusterConf) distConfig() dist.Config {
	return dist.Config{
		ChildDeadline:    c.ChildDeadline,
		MaxResend:        c.MaxResend,
		MaxChunkPayload:  c.MaxChunkPayload,
		ReassemblyBudget: c.ReassemblyBudget,
	}
}

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

// encodeConf flattens the cluster config canonically (field order is
// part of the digest contract).
func encodeConf(c clusterConf) []byte {
	b := make([]byte, 0, 128)
	b = append(b, specVersion, c.Op, byte(c.Topo))
	b = appendI64(b, int64(c.N))
	b = appendI64(b, int64(c.Workers))
	b = appendI64(b, int64(c.MaxChunkPayload))
	b = appendI64(b, int64(c.ReassemblyBudget))
	b = appendI64(b, int64(c.ChildDeadline))
	b = appendI64(b, int64(c.MaxResend))
	b = appendI64(b, int64(c.KillNode))
	b = appendI64(b, int64(c.KillAfter))
	b = appendU64(b, c.Faults.Seed)
	b = appendU64(b, math.Float64bits(c.Faults.DropProb))
	b = appendI64(b, int64(c.Faults.MaxDrops))
	b = appendI64(b, int64(c.Faults.RetryDelay))
	b = appendU64(b, math.Float64bits(c.Faults.DupProb))
	b = appendI64(b, int64(c.Faults.MaxDelay))
	if c.Faults.Reorder {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if c.Op == opGroupBy {
		// The catalog encodes with resolved level counts (EncodeSpecs is
		// canonical), so two supervisors describing the same run produce
		// the same digest regardless of how they spelled the defaults.
		b, _ = sqlagg.EncodeSpecs(b, c.Specs)
	}
	return b
}

// confReader walks an encoded conf, remembering the first error.
type confReader struct {
	b   []byte
	err error
}

func (r *confReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = fmt.Errorf("proc: truncated cluster config")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *confReader) i64() int64 { return int64(r.u64()) }

func (r *confReader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = fmt.Errorf("proc: truncated cluster config")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// decodeConf inverts encodeConf, validating the spec version and the
// decoded shape.
func decodeConf(raw []byte) (clusterConf, error) {
	var c clusterConf
	r := &confReader{b: raw}
	if v := r.byteVal(); r.err == nil && v != specVersion {
		return c, fmt.Errorf("proc: cluster config spec version %d, this build speaks %d", v, specVersion)
	}
	c.Op = r.byteVal()
	c.Topo = dist.Topology(r.byteVal())
	c.N = int(r.i64())
	c.Workers = int(r.i64())
	c.MaxChunkPayload = int(r.i64())
	c.ReassemblyBudget = int(r.i64())
	c.ChildDeadline = time.Duration(r.i64())
	c.MaxResend = int(r.i64())
	c.KillNode = int(r.i64())
	c.KillAfter = int(r.i64())
	c.Faults.Seed = r.u64()
	c.Faults.DropProb = math.Float64frombits(r.u64())
	c.Faults.MaxDrops = int(r.i64())
	c.Faults.RetryDelay = time.Duration(r.i64())
	c.Faults.DupProb = math.Float64frombits(r.u64())
	c.Faults.MaxDelay = time.Duration(r.i64())
	c.Faults.Reorder = r.byteVal() == 1
	if r.err != nil {
		return c, r.err
	}
	if c.Op != opReduce && c.Op != opGroupBy {
		return c, fmt.Errorf("proc: unknown operation %d in cluster config", c.Op)
	}
	if c.Op == opGroupBy {
		specs, err := sqlagg.DecodeSpecs(r.b)
		if err != nil {
			return c, fmt.Errorf("proc: cluster config aggregate catalog: %w", err)
		}
		c.Specs = specs
	} else if len(r.b) != 0 {
		return c, fmt.Errorf("proc: %d trailing bytes after cluster config", len(r.b))
	}
	if !c.Topo.Valid() {
		return c, fmt.Errorf("proc: unknown topology %d in cluster config", int(c.Topo))
	}
	if c.N < 1 || c.Workers < 1 {
		return c, fmt.Errorf("proc: cluster config declares %d nodes × %d workers", c.N, c.Workers)
	}
	return c, nil
}

// confDigest is the run-config digest of the join handshake: FNV-64a
// over the raw canonical conf encoding. Workers digest the bytes they
// actually parsed, so any drift — a knob, the operation, the cluster
// size, even the spec version byte — flips the digest.
func confDigest(raw []byte) uint64 {
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

// Control-plane stream ids (Frame.Seq). The control connection is a
// dedicated reliable TCP stream per worker, but chunked job specs and
// results reuse the data-plane reassembler, which dedups per
// (from, seq) — distinct ids keep those streams distinct.
const (
	ctrlSeqHello uint32 = iota
	ctrlSeqJob
	ctrlSeqResult
	ctrlSeqShutdown
)

// hello is the decoded KindHello payload.
type hello struct {
	version byte   // frame codec version the worker speaks
	levels  byte   // rsum summation level count compiled into the worker
	digest  uint64 // confDigest of the worker's cluster config
	addr    string // worker's data-plane listen address
}

// encodeHello flattens the join handshake payload:
//
//	offset  size  field
//	0       1     frame codec version
//	1       1     rsum level count
//	2       8     run-config digest (FNV-64a of the conf encoding)
//	10      2     data-plane address length m
//	12      m     data-plane listen address
func encodeHello(h hello) []byte {
	b := make([]byte, 0, 12+len(h.addr))
	b = append(b, h.version, h.levels)
	b = appendU64(b, h.digest)
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(h.addr)))
	b = append(b, l[:]...)
	return append(b, h.addr...)
}

// decodeHello inverts encodeHello.
func decodeHello(payload []byte) (hello, error) {
	var h hello
	if len(payload) < 12 {
		return h, fmt.Errorf("proc: hello payload is %d bytes, want >= 12", len(payload))
	}
	h.version = payload[0]
	h.levels = payload[1]
	h.digest = binary.LittleEndian.Uint64(payload[2:])
	alen := int(binary.LittleEndian.Uint16(payload[10:]))
	if len(payload) != 12+alen {
		return h, fmt.Errorf("proc: hello declares a %d-byte address in a %d-byte payload", alen, len(payload))
	}
	if alen == 0 {
		return h, fmt.Errorf("proc: hello carries an empty data-plane address")
	}
	h.addr = string(payload[12:])
	return h, nil
}

// job is the decoded KindJob payload: the cluster's data-plane address
// table plus this worker's input shard. A reduction carries a single
// value column in cols[0] and no keys; a GROUP BY carries keys plus one
// column per distinct input column its aggregate catalog reads.
type job struct {
	addrs []string
	keys  []uint32
	cols  [][]float64
}

// encodeJob flattens a job: [2B addr count] addrs (2B length-prefixed
// each), [8B row count], [2B column count], then for GROUP BY the keys
// (4B each), then each column's values (8B each), column-major.
func encodeJob(op byte, addrs []string, keys []uint32, cols [][]float64) []byte {
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	size := 2
	for _, a := range addrs {
		size += 2 + len(a)
	}
	size += 8 + 2 + len(keys)*4 + len(cols)*rows*8
	b := make([]byte, 0, size)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(addrs)))
	b = append(b, u16[:]...)
	for _, a := range addrs {
		binary.LittleEndian.PutUint16(u16[:], uint16(len(a)))
		b = append(b, u16[:]...)
		b = append(b, a...)
	}
	b = appendI64(b, int64(rows))
	binary.LittleEndian.PutUint16(u16[:], uint16(len(cols)))
	b = append(b, u16[:]...)
	if op == opGroupBy {
		for _, k := range keys {
			var u32 [4]byte
			binary.LittleEndian.PutUint32(u32[:], k)
			b = append(b, u32[:]...)
		}
	}
	for _, col := range cols {
		for _, v := range col {
			b = appendU64(b, math.Float64bits(v))
		}
	}
	return b
}

// decodeJob inverts encodeJob for the given operation, validating every
// length against the remaining bytes.
func decodeJob(op byte, payload []byte) (job, error) {
	var j job
	if len(payload) < 2 {
		return j, fmt.Errorf("proc: truncated job spec")
	}
	n := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	j.addrs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(payload) < 2 {
			return j, fmt.Errorf("proc: truncated job address table")
		}
		alen := int(binary.LittleEndian.Uint16(payload))
		payload = payload[2:]
		if alen == 0 || len(payload) < alen {
			return j, fmt.Errorf("proc: job address %d declares %d bytes, %d remain", i, alen, len(payload))
		}
		j.addrs = append(j.addrs, string(payload[:alen]))
		payload = payload[alen:]
	}
	if len(payload) < 10 {
		return j, fmt.Errorf("proc: truncated job row count")
	}
	rows := int(int64(binary.LittleEndian.Uint64(payload)))
	ncols := int(binary.LittleEndian.Uint16(payload[8:]))
	payload = payload[10:]
	if ncols < 1 || ncols > maxJobCols {
		return j, fmt.Errorf("proc: job declares %d columns", ncols)
	}
	if op == opReduce && ncols != 1 {
		return j, fmt.Errorf("proc: reduction job declares %d columns, want 1", ncols)
	}
	// Bound the declared count by the bytes actually present before any
	// multiplication or allocation: a hostile 2^61-row count must fail
	// this check, not overflow `rows × width` into a passing comparison
	// and panic in make(). ncols is already capped, so rows × width
	// cannot overflow either.
	width := 8 * ncols
	if op == opGroupBy {
		width += 4
	}
	if rows < 0 || rows > len(payload)/width || len(payload) != rows*width {
		return j, fmt.Errorf("proc: job declares %d rows × %d columns but carries %d payload bytes", rows, ncols, len(payload))
	}
	if op == opGroupBy {
		j.keys = make([]uint32, rows)
		for i := range j.keys {
			j.keys[i] = binary.LittleEndian.Uint32(payload[i*4:])
		}
		payload = payload[rows*4:]
	}
	flat := make([]float64, ncols*rows)
	j.cols = make([][]float64, ncols)
	for c := range j.cols {
		col := flat[c*rows : (c+1)*rows : (c+1)*rows]
		for i := range col {
			col[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[(c*rows+i)*8:]))
		}
		j.cols[c] = col
	}
	return j, nil
}
