package proc

import (
	"strconv"

	"repro/internal/obs"
)

// Control-plane counters on the process-global obs.Default registry.
// In a supervisor process these describe the cluster it runs; in a
// worker process (reproworker -metrics-addr) only the per-peer data
// plane series below are active. Handles are package-level so the
// supervisor loop and the transports record through pre-resolved
// atomics.
var (
	mHeartbeats = obs.Default.Counter("repro_proc_heartbeats_total",
		"Stat-carrying heartbeat pings received from workers.")
	mLivenessMisses = obs.Default.Counter("repro_proc_liveness_misses_total",
		"Members declared dead after a full liveness window of silence.")
	mJoins = obs.Default.Counter("repro_proc_joins_total",
		"Admissions into node slots (formation, joiners, replacements).")
	mDeparts = obs.Default.Counter("repro_proc_departs_total",
		"Members lost (connection error, process exit, liveness miss).")
	mPromotions = obs.Default.Counter("repro_proc_promotions_total",
		"Parked standbys promoted into empty node slots.")
	mEpochBumps = obs.Default.Counter("repro_proc_epoch_bumps_total",
		"Supervisor fencing-epoch bumps (journal opens).")
	mJobsStarted = obs.Default.Counter("repro_proc_jobs_total",
		"Jobs dispatched to the cluster.")
	mHeartbeatRTT = obs.Default.Histogram("repro_proc_heartbeat_rtt_seconds",
		"Worker-measured heartbeat round-trip time.", nil)
	mRecoverySecs = obs.Default.Histogram("repro_proc_recovery_seconds",
		"Journal-replay crash-recovery window durations (replay to whole membership).", nil)
)

// peerCounters is a node transport's pre-resolved per-peer data-plane
// series: frames and payload bytes exchanged with each peer id, as
// repro_proc_peer_*_total{peer="N"}. Resolved once at transport
// construction so the send/receive paths touch only atomics.
type peerCounters struct {
	framesOut []*obs.Counter
	bytesOut  []*obs.Counter
	framesIn  []*obs.Counter
	bytesIn   []*obs.Counter
}

func newPeerCounters(n int) *peerCounters {
	pc := &peerCounters{
		framesOut: make([]*obs.Counter, n),
		bytesOut:  make([]*obs.Counter, n),
		framesIn:  make([]*obs.Counter, n),
		bytesIn:   make([]*obs.Counter, n),
	}
	for id := 0; id < n; id++ {
		peer := `{peer="` + strconv.Itoa(id) + `"}`
		pc.framesOut[id] = obs.Default.Counter("repro_proc_peer_frames_out_total"+peer,
			"Data-plane frames sent to each peer id.")
		pc.bytesOut[id] = obs.Default.Counter("repro_proc_peer_payload_bytes_out_total"+peer,
			"Data-plane payload bytes sent to each peer id.")
		pc.framesIn[id] = obs.Default.Counter("repro_proc_peer_frames_in_total"+peer,
			"Data-plane frames received from each peer id.")
		pc.bytesIn[id] = obs.Default.Counter("repro_proc_peer_payload_bytes_in_total"+peer,
			"Data-plane payload bytes received from each peer id.")
	}
	return pc
}

func (pc *peerCounters) sent(to int, payloadLen int) {
	if pc != nil && to >= 0 && to < len(pc.framesOut) {
		pc.framesOut[to].Inc()
		pc.bytesOut[to].Add(uint64(payloadLen))
	}
}

func (pc *peerCounters) received(from int, payloadLen int) {
	if pc != nil && from >= 0 && from < len(pc.framesIn) {
		pc.framesIn[from].Inc()
		pc.bytesIn[from].Add(uint64(payloadLen))
	}
}
