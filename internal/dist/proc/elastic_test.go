package proc

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sqlagg"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// elasticSpec is the base cluster shape of the replacement tests: four
// nodes, one spawned standby parked for promotion, replacement on.
func elasticSpec(cfg dist.Config) ClusterSpec {
	return ClusterSpec{
		Nodes:        4,
		SpawnStandby: 1,
		ReplaceDead:  true,
		JoinTimeout:  30 * time.Second,
		Config:       cfg,
		Options:      quietOpts(),
	}
}

func sumSpecs() []sqlagg.AggSpec {
	return []sqlagg.AggSpec{{Kind: sqlagg.AggSum, Levels: core.DefaultLevels, Col: 0}}
}

// TestWorkerReplacementEquivalence is the acceptance scenario of the
// elastic runtime: a 4-worker cluster loses a worker mid chunk stream
// (injected process death), a parked standby is admitted through the
// control address as a substitute, and the final result is
// byte-identical to the undisturbed in-process reference — for a
// raw-shard job and a declarative spec-ingest job.
func TestWorkerReplacementEquivalence(t *testing.T) {
	const rows = 12000
	synth := workload.Spec{Rows: rows, Groups: 2048, KeySeed: 19,
		Cols: []workload.ColSpec{{Seed: 17, Dist: workload.MixedMag}}}
	keys, cols, err := synth.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	refTuples, err := dist.AggregateTuplesConfig([][]uint32{keys}, [][][]float64{cols}, 2, sumSpecs(), dist.Config{})
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}
	want := dist.EncodeTupleGroups(refTuples, 1)

	cfg := matrixConfig()
	cfg.MaxChunkPayload = 2048
	jobs := []struct {
		name string
		src  Source
	}{
		{"raw-shards", RowShards([][]uint32{keys}, [][][]float64{cols})},
		{"spec-ingest", SyntheticSource(synth)},
	}
	for _, tc := range jobs {
		t.Run(tc.name, func(t *testing.T) {
			spec := elasticSpec(cfg)
			spec.DieNode, spec.DieAfter = 1, 4 // die mid shuffle stream
			c, err := NewCluster(spec)
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			defer c.Close()
			res, err := c.Run(Job{Workers: 2, Specs: sumSpecs(), Source: tc.src})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Replacements < 1 {
				t.Errorf("Replacements = %d, want >= 1 (the injected death must have fired)", res.Replacements)
			}
			if !bytes.Equal(res.Payload, want) {
				t.Errorf("result payload differs from the undisturbed in-process reference — replacement broke bit-reproducibility")
			}
			st := c.Stats()
			if st.Replaced < 1 || st.Joined < 5 {
				t.Errorf("stats = %+v, want >= 1 replacement over >= 5 admissions", st)
			}
			if err := c.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
	}
}

// TestReduceReplacementEquivalence is the reduction-tree counterpart:
// the dying node is a chain interior node that dies before its very
// first partial leaves, so the substitute must re-serve the role from
// scratch while the root re-requests across the gap.
func TestReduceReplacementEquivalence(t *testing.T) {
	const rows = 10000
	vals := workload.Values64(23, rows, workload.MixedMag)
	want, err := dist.ReduceConfig([][]float64{vals}, 2, dist.Binomial, dist.Config{})
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}

	spec := elasticSpec(matrixConfig())
	spec.DieNode, spec.DieAfter = 1, 1
	c, err := NewCluster(spec)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	// Raw shards first, then the same dataset as a declarative keyless
	// spec — two jobs on one cluster, exercising multi-job reuse on the
	// replacement path (the second job runs on the already-replaced
	// membership).
	res, err := c.Run(Job{Topo: dist.Chain, Workers: 2, Source: ValueShards(shardFloats(vals, 4))})
	if err != nil {
		t.Fatalf("raw-shard run: %v", err)
	}
	if res.Replacements < 1 {
		t.Errorf("Replacements = %d, want >= 1", res.Replacements)
	}
	if math.Float64bits(res.Sum) != math.Float64bits(want) {
		t.Errorf("raw: got %016x, want %016x", math.Float64bits(res.Sum), math.Float64bits(want))
	}

	res2, err := c.Run(Job{Topo: dist.Binomial, Workers: 2,
		Source: SyntheticSource(workload.Spec{Rows: rows, Cols: []workload.ColSpec{{Seed: 23, Dist: workload.MixedMag}}})})
	if err != nil {
		t.Fatalf("spec-ingest run: %v", err)
	}
	if res2.Replacements != 0 {
		t.Errorf("second job replacements = %d, want 0 (death injection is first-incarnation only)", res2.Replacements)
	}
	if math.Float64bits(res2.Sum) != math.Float64bits(want) {
		t.Errorf("synth: got %016x, want %016x", math.Float64bits(res2.Sum), math.Float64bits(want))
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestClusterMultiJob runs a mixed sequence of jobs — reduce, group-by,
// TPC-H Q1 by declarative source — over one 3-node cluster and checks
// each against its in-process reference.
func TestClusterMultiJob(t *testing.T) {
	const rows = 8000
	c, err := NewCluster(ClusterSpec{
		Nodes: 3, JoinTimeout: 30 * time.Second,
		Config: matrixConfig(), Options: quietOpts(),
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	vals := workload.Values64(31, rows, workload.MixedMag)
	wantSum, err := dist.ReduceConfig([][]float64{vals}, 2, dist.Binomial, dist.Config{})
	if err != nil {
		t.Fatalf("reduce reference: %v", err)
	}
	res, err := c.Run(Job{Workers: 2, Source: ValueShards(shardFloats(vals, 5))})
	if err != nil {
		t.Fatalf("reduce job: %v", err)
	}
	if math.Float64bits(res.Sum) != math.Float64bits(wantSum) {
		t.Errorf("reduce: got %016x, want %016x", math.Float64bits(res.Sum), math.Float64bits(wantSum))
	}

	keys := workload.Keys(37, rows, 512)
	refTuples, err := dist.AggregateTuplesConfig([][]uint32{keys}, [][][]float64{{vals}}, 2, sumSpecs(), dist.Config{})
	if err != nil {
		t.Fatalf("groupby reference: %v", err)
	}
	ks, vs := shardRows(keys, vals, 3)
	cols := make([][][]float64, 3)
	for i := range vs {
		cols[i] = [][]float64{vs[i]}
	}
	res, err = c.Run(Job{Workers: 2, Specs: sumSpecs(), Source: RowShards(ks, cols)})
	if err != nil {
		t.Fatalf("groupby job: %v", err)
	}
	if !bytes.Equal(res.Payload, dist.EncodeTupleGroups(refTuples, 1)) {
		t.Error("groupby job payload differs from in-process reference")
	}

	const q1Rows, q1Seed = 9000, 7
	qkeys, qcols, err := tpch.Q1Input(tpch.GenLineitemRows(q1Rows, q1Seed))
	if err != nil {
		t.Fatalf("q1 input: %v", err)
	}
	q1Specs := tpch.Q1Specs(core.DefaultLevels)
	refQ1, err := dist.AggregateTuplesConfig([][]uint32{qkeys}, [][][]float64{qcols}, 2, q1Specs, dist.Config{})
	if err != nil {
		t.Fatalf("q1 reference: %v", err)
	}
	res, err = c.Run(Job{Workers: 2, Specs: q1Specs, Source: TPCHQ1Source(q1Rows, q1Seed)})
	if err != nil {
		t.Fatalf("q1 job: %v", err)
	}
	if !bytes.Equal(res.Payload, dist.EncodeTupleGroups(refQ1, len(q1Specs))) {
		t.Error("q1 job payload differs from in-process reference")
	}

	st := c.Stats()
	if st.Joined != 3 || st.Replaced != 0 {
		t.Errorf("stats = %+v, want 3 joins, 0 replacements", st)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := c.Run(Job{Workers: 1, Source: ValueShards([][]float64{{1}})}); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("run on closed cluster: %v, want ErrClusterClosed", err)
	}
}

// TestElasticMatrix is the nightly elastic-matrix sweep: kill one
// worker mid-run at several seeds for each job kind — group-by,
// reduce, and TPC-H Q1 — with a standby joiner, asserting bit-equality
// against the in-process reference every time. The full sweep is
// gated behind REPRO_ELASTIC_MATRIX=1 (CI nightly); a single seed runs
// by default.
func TestElasticMatrix(t *testing.T) {
	seeds := []uint64{101}
	if os.Getenv("REPRO_ELASTIC_MATRIX") == "1" {
		seeds = []uint64{101, 202, 303}
	}
	const rows = 9000
	cfg := matrixConfig()
	cfg.MaxChunkPayload = 2048

	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			newVictim := func(die int) *Cluster {
				spec := elasticSpec(cfg)
				spec.DieNode, spec.DieAfter = 1, die
				c, err := NewCluster(spec)
				if err != nil {
					t.Fatalf("NewCluster: %v", err)
				}
				return c
			}

			// group-by
			synth := workload.Spec{Rows: rows, Groups: 1024, KeySeed: seed + 1,
				Cols: []workload.ColSpec{{Seed: seed, Dist: workload.MixedMag}}}
			keys, cols, _ := synth.Materialize()
			ref, err := dist.AggregateTuplesConfig([][]uint32{keys}, [][][]float64{cols}, 2, sumSpecs(), dist.Config{})
			if err != nil {
				t.Fatalf("groupby reference: %v", err)
			}
			c := newVictim(4)
			res, err := c.Run(Job{Workers: 2, Specs: sumSpecs(), Source: SyntheticSource(synth)})
			if err == nil && !bytes.Equal(res.Payload, dist.EncodeTupleGroups(ref, 1)) {
				err = errors.New("payload differs from in-process reference")
			}
			if err == nil && res.Replacements < 1 {
				err = errors.New("no replacement happened")
			}
			c.Close()
			if err != nil {
				t.Errorf("groupby: %v", err)
			}

			// reduce
			rsynth := workload.Spec{Rows: rows, Cols: []workload.ColSpec{{Seed: seed + 2, Dist: workload.MixedMag}}}
			_, rcols, _ := rsynth.Materialize()
			wantSum, err := dist.ReduceConfig([][]float64{rcols[0]}, 2, dist.Binomial, dist.Config{})
			if err != nil {
				t.Fatalf("reduce reference: %v", err)
			}
			c = newVictim(1)
			res, err = c.Run(Job{Workers: 2, Source: SyntheticSource(rsynth)})
			if err == nil && math.Float64bits(res.Sum) != math.Float64bits(wantSum) {
				err = errors.New("sum bits differ from in-process reference")
			}
			if err == nil && res.Replacements < 1 {
				err = errors.New("no replacement happened")
			}
			c.Close()
			if err != nil {
				t.Errorf("reduce: %v", err)
			}

			// TPC-H Q1
			qkeys, qcols, err := tpch.Q1Input(tpch.GenLineitemRows(rows, seed))
			if err != nil {
				t.Fatalf("q1 input: %v", err)
			}
			q1Specs := tpch.Q1Specs(core.DefaultLevels)
			refQ1, err := dist.AggregateTuplesConfig([][]uint32{qkeys}, [][][]float64{qcols}, 2, q1Specs, dist.Config{})
			if err != nil {
				t.Fatalf("q1 reference: %v", err)
			}
			c = newVictim(4)
			res, err = c.Run(Job{Workers: 2, Specs: q1Specs, Source: TPCHQ1Source(rows, seed)})
			if err == nil && !bytes.Equal(res.Payload, dist.EncodeTupleGroups(refQ1, len(q1Specs))) {
				err = errors.New("payload differs from in-process reference")
			}
			if err == nil && res.Replacements < 1 {
				err = errors.New("no replacement happened")
			}
			c.Close()
			if err != nil {
				t.Errorf("q1: %v", err)
			}
		})
	}
}

// rawJoinConn dials a cluster's control address for a hand-crafted
// handshake exchange.
type rawJoinConn struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawJoinConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial control: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawJoinConn{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (r *rawJoinConn) send(f dist.Frame) {
	r.t.Helper()
	f.Chunks = 1
	if err := dist.WriteFrame(r.conn, f); err != nil {
		r.t.Fatalf("write frame: %v", err)
	}
}

func (r *rawJoinConn) read() dist.Frame {
	r.t.Helper()
	r.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	asm := dist.NewReassembler(0)
	for {
		f, err := dist.ReadFrame(r.br)
		if err != nil {
			r.t.Fatalf("read frame: %v", err)
		}
		msg, complete, _, aerr := asm.Accept(f)
		if aerr != nil {
			r.t.Fatalf("reassemble: %v", aerr)
		}
		if complete {
			return msg
		}
	}
}

// expectRejection asserts the next frame is a typed KindError carrying
// ErrHandshake and naming the reason.
func (r *rawJoinConn) expectRejection(want string) {
	r.t.Helper()
	f := r.read()
	if f.Kind != dist.KindError {
		r.t.Fatalf("got kind %d, want KindError", f.Kind)
	}
	err := dist.DecodeErr(-1, f.Payload)
	if !errors.Is(err, dist.ErrHandshake) {
		r.t.Fatalf("err = %v, want ErrHandshake", err)
	}
	if !strings.Contains(err.Error(), want) {
		r.t.Errorf("err %q does not name the reason (%q)", err, want)
	}
}

func goodHello(digest uint64) hello {
	return hello{version: dist.FrameVersion, levels: byte(core.DefaultLevels),
		specver: specVersion, flags: helloHasDigest, digest: digest}
}

// waitJoined polls until the cluster has admitted n members.
func waitJoined(t *testing.T, c *Cluster, n int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for c.Stats().Joined < n {
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached %d admissions (stats %+v)", n, c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJoinHandshakeRejection drives each join-mode rejection through a
// hand-crafted TCP handshake and asserts the typed KindError answer:
// a stale control-plane spec version, a tampered config digest after
// KindConf, a duplicate node id, and a joiner arriving with the
// cluster full and no standby capacity.
func TestJoinHandshakeRejection(t *testing.T) {
	t.Run("stale spec version", func(t *testing.T) {
		c, err := NewCluster(ClusterSpec{Nodes: 1, Join: 1, ReplaceDead: true,
			JoinTimeout: 30 * time.Second, Options: quietOpts()})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Close()
		r := dialRaw(t, c.Addr())
		h := hello{version: dist.FrameVersion, levels: byte(core.DefaultLevels),
			specver: specVersion - 1, flags: helloJoin}
		r.send(dist.Frame{Kind: dist.KindHello, From: -1, Seq: ctrlSeqHello, Payload: encodeHello(h)})
		r.expectRejection("control-plane spec")
	})

	t.Run("wrong digest after conf", func(t *testing.T) {
		c, err := NewCluster(ClusterSpec{Nodes: 1, Join: 1, ReplaceDead: true,
			JoinTimeout: 30 * time.Second, Options: quietOpts()})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Close()
		r := dialRaw(t, c.Addr())
		join := hello{version: dist.FrameVersion, levels: byte(core.DefaultLevels),
			specver: specVersion, flags: helloJoin}
		r.send(dist.Frame{Kind: dist.KindHello, From: -1, Seq: ctrlSeqHello, Payload: encodeHello(join)})
		conf := r.read()
		if conf.Kind != dist.KindConf {
			t.Fatalf("got kind %d, want KindConf", conf.Kind)
		}
		id, _, raw, err := decodeConfFrame(conf.Payload)
		if err != nil {
			t.Fatalf("decodeConfFrame: %v", err)
		}
		full := goodHello(confDigest(raw) ^ 0xBAD)
		r.send(dist.Frame{Kind: dist.KindHello, From: id, Seq: ctrlSeqHello, Payload: encodeHello(full)})
		r.expectRejection("digest")
	})

	t.Run("duplicate node id", func(t *testing.T) {
		c, err := NewCluster(ClusterSpec{Nodes: 1, ReplaceDead: true,
			JoinTimeout: 30 * time.Second, Options: quietOpts()})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Close()
		waitJoined(t, c, 1)
		r := dialRaw(t, c.Addr())
		r.send(dist.Frame{Kind: dist.KindHello, From: 0, Seq: ctrlSeqHello,
			Payload: encodeHello(goodHello(c.digest))})
		r.expectRejection("duplicate join")
	})

	t.Run("node id outside cluster", func(t *testing.T) {
		c, err := NewCluster(ClusterSpec{Nodes: 1, ReplaceDead: true,
			JoinTimeout: 30 * time.Second, Options: quietOpts()})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Close()
		r := dialRaw(t, c.Addr())
		r.send(dist.Frame{Kind: dist.KindHello, From: 7, Seq: ctrlSeqHello,
			Payload: encodeHello(goodHello(c.digest))})
		r.expectRejection("outside the 1-node cluster")
	})

	t.Run("cluster full", func(t *testing.T) {
		c, err := NewCluster(ClusterSpec{Nodes: 1, ReplaceDead: true,
			JoinTimeout: 30 * time.Second, Options: quietOpts()})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Close()
		waitJoined(t, c, 1)
		r := dialRaw(t, c.Addr())
		join := hello{version: dist.FrameVersion, levels: byte(core.DefaultLevels),
			specver: specVersion, flags: helloJoin}
		r.send(dist.Frame{Kind: dist.KindHello, From: -1, Seq: ctrlSeqHello, Payload: encodeHello(join)})
		r.expectRejection("cluster is full")
	})
}

// TestLivenessReplacement: a member that completes the handshake and
// then falls silent past the liveness window is declared dead and
// replaced by a parked joiner; the job completes with reference bits.
func TestLivenessReplacement(t *testing.T) {
	const rows = 4000
	vals := workload.Values64(41, rows, workload.MixedMag)
	want, err := dist.ReduceConfig([][]float64{vals}, 1, dist.Binomial, dist.Config{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	c, err := NewCluster(ClusterSpec{
		Nodes: 2, Join: 1, MaxStandby: 1, ReplaceDead: true,
		Heartbeat: 50 * time.Millisecond, Liveness: 400 * time.Millisecond,
		JoinTimeout: 30 * time.Second,
		Config:      matrixConfig(), Options: quietOpts(),
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	// A fake member takes the join slot, completes the full handshake,
	// and then never speaks again — no heartbeats, no ready.
	fake := dialRaw(t, c.Addr())
	fake.send(dist.Frame{Kind: dist.KindHello, From: -1, Seq: ctrlSeqHello,
		Payload: encodeHello(hello{version: dist.FrameVersion, levels: byte(core.DefaultLevels),
			specver: specVersion, flags: helloJoin})})
	conf := fake.read()
	if conf.Kind != dist.KindConf {
		t.Fatalf("got kind %d, want KindConf", conf.Kind)
	}
	id, _, raw, err := decodeConfFrame(conf.Payload)
	if err != nil {
		t.Fatalf("decodeConfFrame: %v", err)
	}
	fake.send(dist.Frame{Kind: dist.KindHello, From: id, Seq: ctrlSeqHello,
		Payload: encodeHello(goodHello(confDigest(raw)))})
	waitJoined(t, c, 2)

	// A real joiner arrives with the cluster full and parks as the
	// standby that will replace the silent fake (runJoiner is the exact
	// code path of `reproworker -join`, here run in-process).
	joinErr := make(chan error, 1)
	go func() { joinErr <- runJoiner(c.Addr(), "", 30*time.Second) }()

	res, err := c.Run(Job{Workers: 1, Source: ValueShards(shardFloats(vals, 2))})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Float64bits(res.Sum) != math.Float64bits(want) {
		t.Errorf("got %016x, want %016x", math.Float64bits(res.Sum), math.Float64bits(want))
	}
	if res.Replacements < 1 {
		t.Errorf("Replacements = %d, want >= 1 (liveness must have evicted the silent member)", res.Replacements)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	select {
	case err := <-joinErr:
		if err != nil {
			t.Errorf("joiner exited with: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("joiner did not exit after cluster close")
	}
}

// TestClusterSpecValidation: every invalid ClusterSpec field is
// rejected at construction with a typed ErrConfig naming the field.
func TestClusterSpecValidation(t *testing.T) {
	valid := func() ClusterSpec {
		return ClusterSpec{Nodes: 2, Options: quietOpts()}
	}
	cases := []struct {
		name string
		mut  func(*ClusterSpec)
		want string
	}{
		{"zero nodes", func(s *ClusterSpec) { s.Nodes = 0 }, "ClusterSpec.Nodes"},
		{"negative nodes", func(s *ClusterSpec) { s.Nodes = -1 }, "ClusterSpec.Nodes"},
		{"negative join", func(s *ClusterSpec) { s.Join = -1 }, "ClusterSpec.Join"},
		{"join exceeds nodes", func(s *ClusterSpec) { s.Join = 3 }, "ClusterSpec.Join"},
		{"negative standby", func(s *ClusterSpec) { s.SpawnStandby = -1 }, "ClusterSpec.SpawnStandby"},
		{"negative max standby", func(s *ClusterSpec) { s.MaxStandby = -1 }, "ClusterSpec.MaxStandby"},
		{"negative join timeout", func(s *ClusterSpec) { s.JoinTimeout = -time.Second }, "ClusterSpec.JoinTimeout"},
		{"negative heartbeat", func(s *ClusterSpec) { s.Heartbeat = -time.Second }, "ClusterSpec.Heartbeat"},
		{"negative liveness", func(s *ClusterSpec) { s.Liveness = -time.Second }, "ClusterSpec.Liveness"},
		{"liveness without heartbeat", func(s *ClusterSpec) { s.Liveness = time.Second }, "ClusterSpec.Heartbeat"},
		{"liveness tighter than two heartbeats", func(s *ClusterSpec) {
			s.Heartbeat, s.Liveness = 600*time.Millisecond, time.Second
		}, "ClusterSpec.Liveness"},
		{"negative die frames", func(s *ClusterSpec) { s.DieAfter = -1 }, "ClusterSpec.DieAfter"},
		{"die node outside cluster", func(s *ClusterSpec) { s.DieNode, s.DieAfter = 5, 1 }, "ClusterSpec.DieNode"},
		{"negative kill frames", func(s *ClusterSpec) { s.Options.KillConnAfter = -1 }, "Options.KillConnAfter"},
		{"negative option timeout", func(s *ClusterSpec) { s.Options.JoinTimeout = -time.Second }, "Options.JoinTimeout"},
		{"bad config", func(s *ClusterSpec) { s.Config.MaxChunkPayload = -1 }, "chunk payload"},
		{"unwritable journal dir", func(s *ClusterSpec) { s.Journal = "/dev/null/journal" }, "ClusterSpec.Journal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(&s)
			_, err := NewCluster(s)
			if !errors.Is(err, dist.ErrConfig) {
				t.Fatalf("err = %v, want ErrConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name %q", err, tc.want)
			}
		})
	}

	// Job-level validation surfaces the same sentinel, naming the field.
	c, err := NewCluster(ClusterSpec{Nodes: 1, JoinTimeout: 30 * time.Second, Options: quietOpts()})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	if _, err := c.Run(Job{Workers: 1}); err == nil || !strings.Contains(err.Error(), "Job.Source") {
		t.Errorf("missing source: %v, want an error naming Job.Source", err)
	}
	if _, err := c.Run(Job{Workers: -1, Source: ValueShards([][]float64{{1}})}); !errors.Is(err, dist.ErrWorkers) {
		t.Errorf("negative workers: %v, want ErrWorkers", err)
	}
	if _, err := c.Run(Job{Topo: dist.Topology(99), Source: ValueShards([][]float64{{1}})}); !errors.Is(err, dist.ErrTopology) {
		t.Errorf("bad topology: %v, want ErrTopology", err)
	}
	if _, err := c.Run(Job{Specs: sumSpecs(),
		Source: SyntheticSource(workload.Spec{Rows: 10, Cols: []workload.ColSpec{{Seed: 1, Dist: workload.MixedMag}}})}); err == nil ||
		!strings.Contains(err.Error(), "keyed synthetic source") {
		t.Errorf("keyless synth on group-by: %v, want keyed-source error", err)
	}
}

// TestWorkerUsage pins the reproworker CLI contract: -help exists and
// exits 0, flag misuse exits 2.
func TestWorkerUsage(t *testing.T) {
	// Silence the usage text during the test run.
	old := os.Stderr
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("devnull: %v", err)
	}
	os.Stderr = null
	defer func() { os.Stderr = old; null.Close() }()

	if code := WorkerMain([]string{"-help"}); code != ExitOK {
		t.Errorf("-help exited %d, want %d", code, ExitOK)
	}
	if code := WorkerMain([]string{"-bogus"}); code != ExitUsage {
		t.Errorf("-bogus exited %d, want %d", code, ExitUsage)
	}
	if code := WorkerMain([]string{}); code != ExitUsage {
		t.Errorf("no flags exited %d, want %d", code, ExitUsage)
	}
	if code := WorkerMain([]string{"-join", "addr", "-id", "3"}); code != ExitUsage {
		t.Errorf("-join with -id exited %d, want %d", code, ExitUsage)
	}
}
