package proc

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sqlagg"
	"repro/internal/workload"
)

// TestMain arms the re-execution paths: when the test binary is
// spawned by a supervisor with the worker marker set it becomes a
// cluster worker, and when spawned by the failover test with the
// supervisor marker set it becomes a journaled supervisor, instead of
// running the tests.
func TestMain(m *testing.M) {
	MaybeWorkerMain()
	maybeSupervisorMain()
	os.Exit(m.Run())
}

// quietOpts discards worker stderr: failure paths under test would
// otherwise spray expected error messages into the test log.
func quietOpts() Options {
	return Options{LogWriter: io.Discard, JoinTimeout: 30 * time.Second}
}

// matrixConfig is the protocol configuration of the equivalence tests:
// a short deadline keeps forced-recovery runs fast, and MaxResend < 0
// never gives up — a bounded cap races scheduler slowdown under -race.
func matrixConfig() dist.Config {
	return dist.Config{ChildDeadline: 250 * time.Millisecond, MaxResend: -1}
}

func shardFloats(vals []float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i, v := range vals {
		out[i%n] = append(out[i%n], v)
	}
	return out
}

func shardRows(keys []uint32, vals []float64, n int) ([][]uint32, [][]float64) {
	ks := make([][]uint32, n)
	vs := make([][]float64, n)
	for i := range keys {
		d := i % n
		ks[d] = append(ks[d], keys[i])
		vs[d] = append(vs[d], vals[i])
	}
	return ks, vs
}

// TestProcReduceEquivalenceMatrix: the multi-process reduction carries
// exactly the bits of the in-process engine for every topology and
// cluster size.
func TestProcReduceEquivalenceMatrix(t *testing.T) {
	const rows = 20000
	vals := workload.Values64(7, rows, workload.MixedMag)
	want, err := dist.ReduceConfig([][]float64{vals}, 2, dist.Binomial, dist.Config{})
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}
	wantBits := math.Float64bits(want)

	for _, n := range []int{1, 2, 4} {
		shards := shardFloats(vals, n)
		for _, topo := range []dist.Topology{dist.Binomial, dist.Chain, dist.Star} {
			got, err := Reduce(shards, 2, topo, matrixConfig(), quietOpts())
			if err != nil {
				t.Fatalf("n=%d topo=%v: %v", n, topo, err)
			}
			if math.Float64bits(got) != wantBits {
				t.Errorf("n=%d topo=%v: got %016x, want %016x — cross-process run broke bit-reproducibility",
					n, topo, math.Float64bits(got), wantBits)
			}
		}
	}
}

// TestProcGroupByEquivalenceMatrix: the multi-process GROUP BY shuffle
// matches the in-process engine bit for bit, in the single-frame and
// the forced multi-chunk regime.
func TestProcGroupByEquivalenceMatrix(t *testing.T) {
	const rows = 20000
	vals := workload.Values64(11, rows, workload.MixedMag)

	regimes := []struct {
		name         string
		distinct     uint32
		chunkPayload int
	}{
		{"single", 128, 0},
		{"multi", 2048, 2048}, // ~60 B/pair × hundreds of keys per (sender, owner) ⇒ many chunks
	}
	for _, reg := range regimes {
		keys := workload.Keys(13, rows, reg.distinct)
		ref, err := dist.AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, dist.Config{})
		if err != nil {
			t.Fatalf("%s: in-process reference: %v", reg.name, err)
		}
		for _, n := range []int{2, 4} {
			ks, vs := shardRows(keys, vals, n)
			cfg := matrixConfig()
			cfg.MaxChunkPayload = reg.chunkPayload
			got, err := AggregateByKey(ks, vs, 2, cfg, quietOpts())
			if err != nil {
				t.Fatalf("%s n=%d: %v", reg.name, n, err)
			}
			assertGroupsEqual(t, reg.name, n, got, ref)
		}
	}
}

func assertGroupsEqual(t *testing.T, name string, n int, got, want []dist.Group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s n=%d: %d groups, want %d", name, n, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || math.Float64bits(got[i].Sum) != math.Float64bits(want[i].Sum) {
			t.Fatalf("%s n=%d: group %d = (%d, %016x), want (%d, %016x) — bit mismatch",
				name, n, i, got[i].Key, math.Float64bits(got[i].Sum),
				want[i].Key, math.Float64bits(want[i].Sum))
		}
	}
}

// TestProcKillReconnectEquivalence forces a socket failure mid chunk
// stream — worker 1 severs every outgoing connection just before its
// 4th data frame, under an additionally hostile fault plan — and
// asserts the per-chunk resend path recovers over fresh connections
// with zero effect on the result bits.
func TestProcKillReconnectEquivalence(t *testing.T) {
	const rows = 12000
	vals := workload.Values64(17, rows, workload.MixedMag)
	keys := workload.Keys(19, rows, 2048)
	ref, err := dist.AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, dist.Config{})
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}

	const n = 4
	ks, vs := shardRows(keys, vals, n)
	cfg := matrixConfig()
	cfg.MaxChunkPayload = 2048
	cfg.Faults = &dist.FaultPlan{
		Seed: 23, DropProb: 0.1, DupProb: 0.1, Reorder: true,
		MaxDelay: 200 * time.Microsecond, RetryDelay: 100 * time.Microsecond,
	}
	opt := quietOpts()
	opt.KillConnNode = 1
	opt.KillConnAfter = 4
	got, err := AggregateByKey(ks, vs, 2, cfg, opt)
	if err != nil {
		t.Fatalf("kill-reconnect run: %v", err)
	}
	assertGroupsEqual(t, "kill-reconnect", n, got, ref)

	// The same forced failure against the reduction tree.
	wantSum, err := dist.ReduceConfig([][]float64{vals}, 2, dist.Binomial, dist.Config{})
	if err != nil {
		t.Fatalf("in-process reduce reference: %v", err)
	}
	rcfg := matrixConfig()
	ropt := quietOpts()
	ropt.KillConnNode = 1
	ropt.KillConnAfter = 1 // sever before the very first partial leaves
	gotSum, err := Reduce(shardFloats(vals, n), 2, dist.Chain, rcfg, ropt)
	if err != nil {
		t.Fatalf("kill-reconnect reduce: %v", err)
	}
	if math.Float64bits(gotSum) != math.Float64bits(wantSum) {
		t.Errorf("kill-reconnect reduce: got %016x, want %016x",
			math.Float64bits(gotSum), math.Float64bits(wantSum))
	}
}

// TestHandshakeRejection drives each mismatch through the real spawn
// and join machinery (the env hooks force the worker's hello fields)
// and asserts the run fails with the typed wire error naming the
// disagreement.
func TestHandshakeRejection(t *testing.T) {
	vals := workload.Values64(29, 1000, workload.MixedMag)
	shards := shardFloats(vals, 2)
	cases := []struct {
		name string
		env  []string
		want string
	}{
		{"wrong frame version", []string{envHelloVersion + "=9"}, "frame version"},
		{"wrong level count", []string{envHelloLevels + "=7"}, "rsum levels"},
		{"wrong config digest", []string{envTamperDigest + "=1"}, "digest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := quietOpts()
			opt.Env = tc.env
			_, err := Reduce(shards, 1, dist.Binomial, matrixConfig(), opt)
			if !errors.Is(err, dist.ErrHandshake) {
				t.Fatalf("err = %v, want ErrHandshake", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name the mismatch (%q)", err, tc.want)
			}
		})
	}
}

// TestProcValidation: bad inputs fail before any process is spawned,
// with the same sentinels as the in-process engine.
func TestProcValidation(t *testing.T) {
	opt := quietOpts()
	if _, err := Reduce(nil, 1, dist.Binomial, dist.Config{}, opt); !errors.Is(err, dist.ErrNoShards) {
		t.Errorf("no shards: %v, want ErrNoShards", err)
	}
	if _, err := Reduce([][]float64{{1}}, 0, dist.Binomial, dist.Config{}, opt); !errors.Is(err, dist.ErrWorkers) {
		t.Errorf("0 workers: %v, want ErrWorkers", err)
	}
	if _, err := Reduce([][]float64{{1}}, 1, dist.Topology(99), dist.Config{}, opt); !errors.Is(err, dist.ErrTopology) {
		t.Errorf("bad topology: %v, want ErrTopology", err)
	}
	if _, err := Reduce([][]float64{{1}}, 1, dist.Binomial, dist.Config{ReassemblyBudget: -1}, opt); !errors.Is(err, dist.ErrConfig) {
		t.Errorf("negative budget: %v, want ErrConfig", err)
	}
	if _, err := Reduce([][]float64{{1}}, 1, dist.Binomial, dist.Config{Procs: -1}, opt); !errors.Is(err, dist.ErrConfig) {
		t.Errorf("negative procs: %v, want ErrConfig", err)
	}
	if _, err := AggregateByKey([][]uint32{{1}}, [][]float64{{1}, {2}}, 1, dist.Config{}, opt); !errors.Is(err, dist.ErrShardMismatch) {
		t.Errorf("shard shape: %v, want ErrShardMismatch", err)
	}
	if _, err := AggregateByKey([][]uint32{{1, 2}}, [][]float64{{1}}, 1, dist.Config{}, opt); !errors.Is(err, dist.ErrShardMismatch) {
		t.Errorf("row mismatch: %v, want ErrShardMismatch", err)
	}
	if _, err := AggregateByKey([][]uint32{{1}}, [][]float64{{1}}, 1, dist.Config{MaxChunkPayload: -3}, opt); !errors.Is(err, dist.ErrConfig) {
		t.Errorf("negative chunk payload: %v, want ErrConfig", err)
	}
}

// TestWorkerBinaryMissing: a configured-but-absent worker binary fails
// the spawn cleanly.
func TestWorkerBinaryMissing(t *testing.T) {
	opt := quietOpts()
	opt.WorkerPath = "/nonexistent/reproworker"
	opt.JoinTimeout = 2 * time.Second
	_, err := Reduce([][]float64{{1, 2}}, 1, dist.Binomial, dist.Config{}, opt)
	if err == nil || !strings.Contains(err.Error(), "spawning worker") {
		t.Fatalf("err = %v, want a spawn failure", err)
	}
}

// TestProcsResharding: an explicit process count different from the
// shard count re-deals rows without changing a bit.
func TestProcsResharding(t *testing.T) {
	vals := workload.Values64(31, 5000, workload.MixedMag)
	want, err := dist.ReduceConfig([][]float64{vals}, 2, dist.Binomial, dist.Config{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	cfg := matrixConfig()
	cfg.Procs = 3 // 5 shards dealt across 3 worker processes
	got, err := Reduce(shardFloats(vals, 5), 2, dist.Star, cfg, quietOpts())
	if err != nil {
		t.Fatalf("procs=3 over 5 shards: %v", err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("resharded run: got %016x, want %016x", math.Float64bits(got), math.Float64bits(want))
	}
}

// TestSpecRoundTrip pins the control-plane codecs: conf, job-spec,
// hello, ready, and peers encodings survive a round trip, hostile
// inputs are rejected before any allocation, and the digest is
// sensitive to every conf field.
func TestSpecRoundTrip(t *testing.T) {
	conf := clusterConf{
		N:               5,
		MaxChunkPayload: 4096, ReassemblyBudget: 1 << 20,
		ChildDeadline: 250 * time.Millisecond, MaxResend: -1,
		Heartbeat: 40 * time.Millisecond, Liveness: 300 * time.Millisecond,
		KillNode: 2, KillAfter: 7, DieNode: 1, DieAfter: 3,
		Faults: dist.FaultPlan{Seed: 42, DropProb: 0.25, MaxDrops: 2,
			RetryDelay: time.Millisecond, DupProb: 0.5, MaxDelay: time.Millisecond, Reorder: true},
	}
	raw := encodeConf(conf)
	back, err := decodeConf(raw)
	if err != nil {
		t.Fatalf("decodeConf: %v", err)
	}
	if !reflect.DeepEqual(back, conf) {
		t.Fatalf("conf round trip: got %+v, want %+v", back, conf)
	}
	if _, err := decodeConf(raw[:len(raw)-1]); err == nil {
		t.Error("truncated conf decoded without error")
	}
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)-2]++
	if confDigest(tampered) == confDigest(raw) {
		t.Error("digest ignores a field change")
	}
	stale := append([]byte(nil), raw...)
	stale[0] = specVersion - 1
	if _, err := decodeConf(stale); err == nil {
		t.Error("stale-spec-version conf decoded without error")
	}

	// A raw-shard group-by job spec, the richest shape: catalog, keys,
	// and two value columns.
	specs := []sqlagg.AggSpec{
		{Kind: sqlagg.AggSum, Levels: 2, Col: 0},
		{Kind: sqlagg.AggAvg, Levels: 2, Col: 1},
	}
	jb, err := encodeJobSpec(jobSpec{
		jobIdx: 3, incarnation: 2, op: opGroupBy, topo: dist.Binomial, workers: 4,
		specs: specs, source: srcRaw, keys: []uint32{5, 6, 7},
		cols: [][]float64{{1.5, -2, math.Inf(1)}, {4, 5, 6}},
	})
	if err != nil {
		t.Fatalf("encodeJobSpec: %v", err)
	}
	j, err := decodeJobSpec(jb)
	if err != nil {
		t.Fatalf("decodeJobSpec: %v", err)
	}
	if j.jobIdx != 3 || j.incarnation != 2 || j.workers != 4 || len(j.specs) != 2 ||
		len(j.keys) != 3 || j.keys[2] != 7 ||
		len(j.cols) != 2 || !math.IsInf(j.cols[0][2], 1) || j.cols[1][1] != 5 {
		t.Fatalf("job spec round trip mismatch: %+v", j)
	}
	if _, err := decodeJobSpec(jb[:len(jb)-3]); err == nil {
		t.Error("truncated job spec decoded without error")
	}

	// A declarative synthetic source round trips spec-for-spec and is
	// tiny regardless of how many rows it describes — the O(1) dispatch
	// claim, pinned as a payload-size bound.
	synth := workload.Spec{Rows: 50_000_000, Groups: 64, KeySeed: 9,
		Cols: []workload.ColSpec{{Seed: 1, Dist: workload.MixedMag}, {Seed: 2, Dist: workload.Exp1}}}
	sb, err := encodeJobSpec(jobSpec{op: opGroupBy, topo: dist.Binomial, workers: 1,
		specs: specs, source: srcSynth, synth: synth})
	if err != nil {
		t.Fatalf("encodeJobSpec(synth): %v", err)
	}
	if len(sb) > 256 {
		t.Errorf("50M-row synthetic job spec is %d bytes, want O(spec) not O(rows)", len(sb))
	}
	sj, err := decodeJobSpec(sb)
	if err != nil {
		t.Fatalf("decodeJobSpec(synth): %v", err)
	}
	if !reflect.DeepEqual(sj.synth, synth) {
		t.Fatalf("synth round trip: got %+v, want %+v", sj.synth, synth)
	}
	// Keyed-ness must match the operation.
	if _, err := encodeAndDecode(jobSpec{op: opReduce, topo: dist.Binomial, workers: 1,
		source: srcSynth, synth: synth}); err == nil {
		t.Error("keyed synthetic source on a reduction decoded without error")
	}

	// A TPC-H Q1 source is rows+seed, group-by only.
	tj, err := encodeAndDecode(jobSpec{op: opGroupBy, topo: dist.Binomial, workers: 1,
		specs: specs, source: srcTPCHQ1, rows: 12345, seed: 99})
	if err != nil {
		t.Fatalf("tpch job spec: %v", err)
	}
	if tj.rows != 12345 || tj.seed != 99 {
		t.Fatalf("tpch round trip mismatch: %+v", tj)
	}
	if _, err := encodeAndDecode(jobSpec{op: opReduce, topo: dist.Binomial, workers: 1,
		source: srcTPCHQ1, rows: 10, seed: 1}); err == nil {
		t.Error("tpch source on a reduction decoded without error")
	}

	// A hostile row count must fail validation, not overflow the
	// rows×width length check into a huge (or panicking) allocation.
	reduceHdr, err := encodeJobSpec(jobSpec{op: opReduce, topo: dist.Binomial, workers: 1,
		source: srcRaw, cols: [][]float64{{1}}})
	if err != nil {
		t.Fatalf("encodeJobSpec(reduce): %v", err)
	}
	huge := append([]byte(nil), reduceHdr...)
	binary.LittleEndian.PutUint64(huge[19:], 1<<61) // the srcRaw row count
	if _, err := decodeJobSpec(huge); err == nil {
		t.Error("2^61-row job decoded without error")
	}
	binary.LittleEndian.PutUint64(huge[19:], uint64(1<<63)) // negative int64
	if _, err := decodeJobSpec(huge); err == nil {
		t.Error("negative-row job decoded without error")
	}
	// A reduction job must carry exactly one column.
	if _, err := encodeAndDecode(jobSpec{op: opReduce, topo: dist.Binomial, workers: 1,
		source: srcRaw, cols: [][]float64{{1}, {2}}}); err == nil {
		t.Error("two-column reduction job decoded without error")
	}
	if _, err := encodeAndDecode(jobSpec{op: opGroupBy, topo: dist.Binomial, workers: 1,
		specs: specs, source: srcRaw}); err == nil {
		t.Error("zero-column job decoded without error")
	}

	h := hello{version: 2, levels: 2, specver: specVersion, flags: helloHasDigest, digest: 0xABCDEF}
	hb := encodeHello(h)
	hback, err := decodeHello(hb)
	if err != nil {
		t.Fatalf("decodeHello: %v", err)
	}
	if hback != h {
		t.Fatalf("hello round trip: got %+v, want %+v", hback, h)
	}
	if _, err := decodeHello(hb[:5]); err == nil {
		t.Error("truncated hello decoded without error")
	}
	noFlags := append([]byte(nil), hb...)
	noFlags[3] = 0
	if _, err := decodeHello(noFlags); err == nil {
		t.Error("flag-less hello decoded without error")
	}

	rb := encodeReady(7, "10.1.2.3:4567")
	rIdx, rAddr, err := decodeReady(rb)
	if err != nil || rIdx != 7 || rAddr != "10.1.2.3:4567" {
		t.Fatalf("ready round trip: %d %q %v", rIdx, rAddr, err)
	}
	if _, _, err := decodeReady(rb[:len(rb)-1]); err == nil {
		t.Error("truncated ready decoded without error")
	}

	pb := encodePeers(7, 3, []string{"127.0.0.1:1", "127.0.0.1:22"})
	pIdx, pEpoch, pAddrs, err := decodePeers(pb)
	if err != nil || pIdx != 7 || pEpoch != 3 || len(pAddrs) != 2 || pAddrs[1] != "127.0.0.1:22" {
		t.Fatalf("peers round trip: %d %d %v %v", pIdx, pEpoch, pAddrs, err)
	}
	if _, _, _, err := decodePeers(pb[:len(pb)-1]); err == nil {
		t.Error("truncated peers decoded without error")
	}

	cb := encodeConfFrame(4, 9, raw)
	cid, cepoch, craw, err := decodeConfFrame(cb)
	if err != nil || cid != 4 || cepoch != 9 || !reflect.DeepEqual(craw, raw) {
		t.Fatalf("conf frame round trip: %d %d %v", cid, cepoch, err)
	}
}

// encodeAndDecode round-trips a jobSpec through the wire codec,
// surfacing the first error from either side.
func encodeAndDecode(j jobSpec) (jobSpec, error) {
	b, err := encodeJobSpec(j)
	if err != nil {
		return jobSpec{}, err
	}
	return decodeJobSpec(b)
}
