package proc

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// The supervisor-failover test runs the supervisor in a child process
// so it can be kill -9'd mid-run — the crash model the journal defends
// against — while the workers it spawned (grandchildren, which survive
// the kill) re-attach to a second supervisor child recovering from the
// same journal. The child is this test binary re-executed with
// supervisorEnv set; supervisorMain speaks a tiny line protocol on
// stdout (ADDR, RUN, RESULT <hex>, STATS ...) that the parent drives.
const supervisorEnv = "REPRO_SUPERVISOR_PROCESS"

// Supervisor-child configuration, passed through the environment.
const (
	supEnvJournal = "REPRO_SUP_JOURNAL"
	supEnvKind    = "REPRO_SUP_KIND"
	supEnvSeed    = "REPRO_SUP_SEED"
	supEnvRows    = "REPRO_SUP_ROWS"
	supEnvPhase   = "REPRO_SUP_PHASE"
)

// maybeSupervisorMain turns the process into a failover-test supervisor
// and never returns when spawned as one; see TestMain in proc_test.go.
func maybeSupervisorMain() {
	if os.Getenv(supervisorEnv) == "" {
		return
	}
	os.Exit(supervisorMain())
}

// failoverJob builds the job for one matrix cell. Shared by the
// supervisor child (to run it) and nothing else — the parent computes
// the reference through the in-process engines in failoverWantHex.
func failoverJob(kind string, seed uint64, rows int) Job {
	switch kind {
	case "groupby":
		synth := workload.Spec{Rows: rows, Groups: 1024, KeySeed: seed + 1,
			Cols: []workload.ColSpec{{Seed: seed, Dist: workload.MixedMag}}}
		return Job{Workers: 2, Specs: sumSpecs(), Source: SyntheticSource(synth)}
	case "reduce":
		rsynth := workload.Spec{Rows: rows,
			Cols: []workload.ColSpec{{Seed: seed + 2, Dist: workload.MixedMag}}}
		return Job{Workers: 2, Source: SyntheticSource(rsynth)}
	case "q1":
		return Job{Workers: 2, Specs: tpch.Q1Specs(core.DefaultLevels), Source: TPCHQ1Source(rows, seed)}
	}
	return Job{}
}

func supervisorMain() int {
	dir := os.Getenv(supEnvJournal)
	kind := os.Getenv(supEnvKind)
	seed, _ := strconv.ParseUint(os.Getenv(supEnvSeed), 10, 64)
	rows, _ := strconv.Atoi(os.Getenv(supEnvRows))
	victim := os.Getenv(supEnvPhase) == "1"
	os.Unsetenv(supervisorEnv)

	fail := func(stage string, err error) int {
		fmt.Fprintf(os.Stderr, "supervisor child: %s: %v\n", stage, err)
		return 1
	}
	cfg := matrixConfig()
	cfg.MaxChunkPayload = 2048
	c, err := NewCluster(ClusterSpec{
		Nodes: 3, ReplaceDead: true,
		JoinTimeout: 60 * time.Second,
		Journal:     dir,
		Config:      cfg,
		// Workers inherit this process's stderr fd directly (no pipe a
		// supervisor kill could break mid-test, which would SIGPIPE them).
		Options: Options{LogWriter: os.Stderr, JoinTimeout: 60 * time.Second},
	})
	if err != nil {
		return fail("NewCluster", err)
	}
	defer c.Close()
	fmt.Printf("ADDR %s\n", c.Addr())

	// Wait for formation (first run) or full re-attach (recovery) before
	// announcing RUN: the parent's kill must land after every admission
	// is journaled, so the restarted supervisor respawns nothing.
	for deadline := time.Now().Add(30 * time.Second); !c.Ready(); {
		if time.Now().After(deadline) {
			return fail("formation", fmt.Errorf("cluster not ready"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("RUN")
	res, err := c.Run(failoverJob(kind, seed, rows))
	if victim {
		// The first incarnation exists to be kill -9'd: it must never
		// Close (a clean shutdown would dismiss the workers and defeat
		// the re-attach test), so it parks here until the parent's kill
		// lands — whether that interrupted the run above or not.
		select {}
	}
	if err != nil {
		return fail("Run", err)
	}
	if kind == "reduce" {
		fmt.Printf("RESULT %016x\n", math.Float64bits(res.Sum))
	} else {
		fmt.Printf("RESULT %s\n", hex.EncodeToString(res.Payload))
	}
	st := c.Stats()
	fmt.Printf("STATS epoch=%d joined=%d journal=%d recovered=%t\n",
		st.Epoch, st.Joined, st.JournalRecords, !st.LastRecovery.IsZero())
	if err := c.Close(); err != nil {
		return fail("Close", err)
	}
	return 0
}

// failoverWantHex computes the cell's expected RESULT line through the
// in-process engines — the same reference the elastic matrix pins.
func failoverWantHex(t *testing.T, kind string, seed uint64, rows int) string {
	t.Helper()
	switch kind {
	case "groupby":
		synth := workload.Spec{Rows: rows, Groups: 1024, KeySeed: seed + 1,
			Cols: []workload.ColSpec{{Seed: seed, Dist: workload.MixedMag}}}
		keys, cols, err := synth.Materialize()
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		ref, err := dist.AggregateTuplesConfig([][]uint32{keys}, [][][]float64{cols}, 2, sumSpecs(), dist.Config{})
		if err != nil {
			t.Fatalf("groupby reference: %v", err)
		}
		return hex.EncodeToString(dist.EncodeTupleGroups(ref, 1))
	case "reduce":
		rsynth := workload.Spec{Rows: rows,
			Cols: []workload.ColSpec{{Seed: seed + 2, Dist: workload.MixedMag}}}
		_, rcols, err := rsynth.Materialize()
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		want, err := dist.ReduceConfig([][]float64{rcols[0]}, 2, dist.Binomial, dist.Config{})
		if err != nil {
			t.Fatalf("reduce reference: %v", err)
		}
		return fmt.Sprintf("%016x", math.Float64bits(want))
	case "q1":
		qkeys, qcols, err := tpch.Q1Input(tpch.GenLineitemRows(rows, seed))
		if err != nil {
			t.Fatalf("q1 input: %v", err)
		}
		specs := tpch.Q1Specs(core.DefaultLevels)
		ref, err := dist.AggregateTuplesConfig([][]uint32{qkeys}, [][][]float64{qcols}, 2, specs, dist.Config{})
		if err != nil {
			t.Fatalf("q1 reference: %v", err)
		}
		return hex.EncodeToString(dist.EncodeTupleGroups(ref, len(specs)))
	}
	t.Fatalf("unknown kind %q", kind)
	return ""
}

// supChild is one supervisor child process and its stdout line stream.
type supChild struct {
	cmd *exec.Cmd
	sc  *bufio.Scanner
}

func startSupervisor(t *testing.T, dir, kind string, seed uint64, rows int, phase string) *supChild {
	t.Helper()
	bin, err := os.Executable()
	if err != nil {
		bin = os.Args[0]
	}
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(),
		supervisorEnv+"=1",
		supEnvJournal+"="+dir,
		supEnvKind+"="+kind,
		supEnvSeed+"="+strconv.FormatUint(seed, 10),
		supEnvRows+"="+strconv.Itoa(rows),
		supEnvPhase+"="+phase,
	)
	if testing.Verbose() {
		cmd.Stderr = os.Stderr
	} else {
		// A real file, not a pipe: the workers this child spawns share
		// the fd and must be able to write after the child is killed.
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			t.Fatalf("open %s: %v", os.DevNull, err)
		}
		t.Cleanup(func() { devnull.Close() })
		cmd.Stderr = devnull
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting supervisor child: %v", err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20) // RESULT lines carry whole payloads
	return &supChild{cmd: cmd, sc: sc}
}

// expect scans stdout for the next line with the given tag and returns
// its argument (the remainder after the tag).
func (s *supChild) expect(t *testing.T, tag string) string {
	t.Helper()
	for s.sc.Scan() {
		line := s.sc.Text()
		if line == tag {
			return ""
		}
		if rest, ok := strings.CutPrefix(line, tag+" "); ok {
			return rest
		}
	}
	t.Fatalf("supervisor child exited before printing %s (scan err: %v)", tag, s.sc.Err())
	return ""
}

func (s *supChild) kill(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill supervisor child: %v", err)
	}
	_ = s.cmd.Wait()
}

// TestSupervisorFailover is the tentpole acceptance test: a journaled
// supervisor is kill -9'd mid-run, a second supervisor recovers from
// the same journal directory — re-binding the same control address and
// respawning nothing — the orphaned workers re-attach through the
// backoff + returning-member handshake, and the job's result is
// byte-identical to the in-process reference. One cell runs by
// default; REPRO_FAILOVER_MATRIX=1 (CI nightly) runs the full
// 3 seeds × {groupby, reduce, q1} sweep.
func TestSupervisorFailover(t *testing.T) {
	kinds := []string{"groupby"}
	seeds := []uint64{101}
	if os.Getenv("REPRO_FAILOVER_MATRIX") == "1" {
		kinds = []string{"groupby", "reduce", "q1"}
		seeds = []uint64{101, 202, 303}
	}
	// Enough rows that the 2 KiB-chunk run is still in flight when the
	// kill lands 50 ms after RUN; the victim parks afterwards either way.
	const rows = 200000
	for _, kind := range kinds {
		for _, seed := range seeds {
			kind, seed := kind, seed
			t.Run(fmt.Sprintf("%s/seed=%d", kind, seed), func(t *testing.T) {
				want := failoverWantHex(t, kind, seed, rows)
				dir := t.TempDir()

				// First incarnation: form, start the run, die mid-run.
				c1 := startSupervisor(t, dir, kind, seed, rows, "1")
				addr1 := c1.expect(t, "ADDR")
				c1.expect(t, "RUN")
				time.Sleep(50 * time.Millisecond)
				c1.kill(t)

				// Second incarnation: recover from the journal. Its
				// workers are the first incarnation's orphans; if any of
				// them had died (or failed to re-attach) the run below
				// would fail with a replacement timeout, so a RESULT line
				// is itself proof of re-attach without respawn.
				c2 := startSupervisor(t, dir, kind, seed, rows, "2")
				if addr2 := c2.expect(t, "ADDR"); addr2 != addr1 {
					t.Errorf("recovered control address = %s, want the journaled %s", addr2, addr1)
				}
				c2.expect(t, "RUN")
				if got := c2.expect(t, "RESULT"); got != want {
					t.Errorf("recovered result differs from the in-process reference — supervisor failover broke bit-reproducibility")
				}
				stats := c2.expect(t, "STATS")
				if !strings.Contains(stats, "epoch=2") {
					t.Errorf("stats %q: want epoch=2 (one journal replay after one crash)", stats)
				}
				if !strings.Contains(stats, "joined=3") {
					t.Errorf("stats %q: want joined=3 (every worker re-attached exactly once)", stats)
				}
				if !strings.Contains(stats, "recovered=true") {
					t.Errorf("stats %q: want recovered=true (LastRecovery must be set)", stats)
				}
				if err := c2.cmd.Wait(); err != nil {
					t.Errorf("recovered supervisor exited uncleanly: %v", err)
				}
			})
		}
	}
}
