package proc

import (
	"bufio"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/tpch"
)

// The worker side of the elastic cluster runtime. A worker process is
// either spawned by a supervisor (-control, -id, -conf) or started by
// an operator against an advertised control address (-join), and then:
//
//  1. dials the control address and completes the KindHello handshake
//     (joiners first announce themselves config-less, receive the
//     cluster config in KindConf, and answer with the full digested
//     hello on the same connection),
//  2. waits for KindJob: the operation, its shape, and this node's
//     input — raw rows, or a declarative source the worker
//     materializes locally and slices by its node id,
//  3. binds a fresh data-plane listener per job, announces it with
//     KindReady, and on KindPeers runs its node's role of the
//     aggregation protocol over real sockets — the root also ships the
//     finalized result back as KindResult,
//  4. on a later KindPeers epoch re-points its peer table at a
//     replacement's fresh listener (the reconnect-safe transport
//     re-dials; per-chunk resends recover anything in flight),
//  5. tears the job's data plane down at KindJobDone and waits for the
//     next job, until KindShutdown.

// workerEnv marks a process as a spawned cluster worker when the
// supervisor re-executes the current binary (the default when no
// explicit reproworker binary is configured). MaybeWorkerMain checks
// it; cmd/reproworker needs no marker.
const workerEnv = "REPRO_WORKER_PROCESS"

// Test hooks: REPROWORKER_HELLO_VERSION and REPROWORKER_HELLO_LEVELS
// override the corresponding KindHello fields, and
// REPROWORKER_TAMPER_DIGEST=1 flips the run-config digest — so the
// handshake rejection paths are exercised through the real spawn, dial,
// and reject machinery rather than a mocked frame. They are honored
// only in re-exec-spawned workers (workerEnv set, the mode tests use):
// the standalone reproworker binary must announce what it actually
// speaks, and a hook variable stray in an operator's shell must not
// mysteriously fail (or worse, falsify) production handshakes.
const (
	envHelloVersion = "REPROWORKER_HELLO_VERSION"
	envHelloLevels  = "REPROWORKER_HELLO_LEVELS"
	envTamperDigest = "REPROWORKER_TAMPER_DIGEST"
)

// Worker process exit codes. They are part of cmd/reproworker's
// contract: an operator's init system can tell a rejected join (wrong
// build, wrong config — retrying is pointless) from a runtime failure.
const (
	// ExitOK is a clean exit after KindShutdown.
	ExitOK = 0
	// ExitFailure is any runtime failure (lost supervisor, protocol
	// error, bad flags that parsed but don't make sense).
	ExitFailure = 1
	// ExitUsage is a command-line usage error.
	ExitUsage = 2
	// ExitHandshake means the supervisor rejected the join handshake:
	// the worker build or its cluster config doesn't match the cluster.
	ExitHandshake = 3
	// exitInjectedDeath is the injected-death test hook's exit code,
	// distinguishable from every deliberate exit above.
	exitInjectedDeath = 7
)

// MaybeWorkerMain turns the current process into a cluster worker and
// never returns when it was spawned as one (workerEnv is set);
// otherwise it returns immediately. Programs that use the process
// cluster through re-execution — tests, reprobench, anything calling
// the facade's WithProcessCluster without a separate reproworker
// binary — must call it at the top of main (or TestMain), before flag
// parsing.
func MaybeWorkerMain() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	os.Exit(WorkerMain(os.Args[1:]))
}

const workerUsage = `usage: reproworker -control <addr> -id <n> -conf <hex>
       reproworker -join <addr>

A reproducible-aggregation cluster worker (see internal/dist/proc).

Supervisor-spawned mode (-control/-id/-conf) is what a proc.Cluster
uses for its own workers; the three flags come from the supervisor and
are not meant to be crafted by hand.

Join mode (-join) connects to the control address an operator got from
Cluster.Addr(). The worker announces its build, receives the cluster
configuration, and completes the digested handshake; the supervisor
admits it into a free node slot, parks it as a standby for mid-run
replacement, or rejects it.

exit codes:
  0  clean shutdown
  1  runtime failure
  2  usage error
  3  join handshake rejected (incompatible build or cluster config)
`

// WorkerMain parses worker flags from args, runs the worker loop, and
// returns the process exit code. cmd/reproworker calls it directly.
func WorkerMain(args []string) int {
	fs := flag.NewFlagSet("reproworker", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	control := fs.String("control", "", "supervisor control address (host:port)")
	id := fs.Int("id", -1, "this worker's cluster node id")
	confHex := fs.String("conf", "", "hex-encoded cluster config (from the supervisor)")
	join := fs.String("join", "", "cluster control address to join (from Cluster.Addr())")
	fs.Usage = func() { fmt.Fprint(os.Stderr, workerUsage) }
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return ExitOK
		}
		return ExitUsage
	}
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "reproworker: %v\n", err)
		if errors.Is(err, dist.ErrHandshake) {
			return ExitHandshake
		}
		return ExitFailure
	}
	if *join != "" {
		if *control != "" || *confHex != "" || *id != -1 {
			fmt.Fprintln(os.Stderr, "reproworker: -join excludes -control, -id, and -conf (the cluster assigns them)")
			return ExitUsage
		}
		if err := runJoiner(*join); err != nil {
			return fail(err)
		}
		return ExitOK
	}
	if *control == "" || *confHex == "" {
		fmt.Fprintln(os.Stderr, "reproworker: -control and -conf are required (or -join to join a cluster); see -help")
		return ExitUsage
	}
	raw, err := hex.DecodeString(*confHex)
	if err != nil {
		return fail(fmt.Errorf("decoding -conf: %w", err))
	}
	conf, err := decodeConf(raw)
	if err != nil {
		return fail(err)
	}
	if *id < 0 || *id >= conf.N {
		return fail(fmt.Errorf("node id %d outside the %d-node cluster", *id, conf.N))
	}
	if err := runWorker(*control, *id, conf, raw); err != nil {
		return fail(err)
	}
	return ExitOK
}

// helloFields builds this worker's handshake fields, honoring the test
// hooks that force mismatches.
func helloFields(raw []byte) (version, levels byte, digest uint64) {
	version, levels, digest = dist.FrameVersion, byte(core.DefaultLevels), confDigest(raw)
	if os.Getenv(workerEnv) == "" {
		return version, levels, digest // standalone binary: no hooks
	}
	if v := os.Getenv(envHelloVersion); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			version = byte(n)
		}
	}
	if v := os.Getenv(envHelloLevels); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			levels = byte(n)
		}
	}
	if os.Getenv(envTamperDigest) == "1" {
		digest ^= 0xDEADBEEF
	}
	return version, levels, digest
}

// ctlWriter serializes control-plane sends: the main loop, the
// heartbeat ticker, and a job's protocol goroutine all write through
// it.
type ctlWriter struct {
	mu       sync.Mutex
	conn     net.Conn
	bw       *bufio.Writer
	maxChunk int
}

func (w *ctlWriter) send(f dist.Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, ch := range dist.SplitFrame(f, w.maxChunk) {
		if err := dist.WriteFrame(w.bw, ch); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// runWorker is the supervisor-spawned path: dial, full hello, serve.
func runWorker(control string, id int, conf clusterConf, raw []byte) error {
	cc, err := net.DialTimeout("tcp", control, dialTimeout)
	if err != nil {
		return fmt.Errorf("dialing supervisor %s: %w", control, err)
	}
	defer cc.Close()
	w := &ctlWriter{conn: cc, bw: bufio.NewWriterSize(cc, sockBufSize), maxChunk: conf.MaxChunkPayload}
	if err := sendFullHello(w, id, raw); err != nil {
		return err
	}
	return workerLoop(cc, bufio.NewReaderSize(cc, sockBufSize), w, id, conf)
}

// runJoiner is the operator-started path: announce the build with a
// config-less join hello, receive the assigned node id and cluster
// config in KindConf, then complete the full handshake and serve. The
// supervisor may park the worker as a standby first — then KindConf
// simply arrives later, when a node slot frees up.
func runJoiner(control string) error {
	cc, err := net.DialTimeout("tcp", control, dialTimeout)
	if err != nil {
		return fmt.Errorf("dialing cluster %s: %w", control, err)
	}
	defer cc.Close()

	version, levels, _ := helloFields(nil)
	// No cluster config yet: chunk at the codec default (SplitFrame
	// maps 0 to it) until KindConf establishes the agreed size.
	w := &ctlWriter{conn: cc, bw: bufio.NewWriterSize(cc, sockBufSize), maxChunk: 0}
	err = w.send(dist.Frame{
		Kind: dist.KindHello, From: -1, Seq: ctrlSeqHello,
		Payload: encodeHello(hello{version: version, levels: levels, specver: specVersion, flags: helloJoin}),
	})
	if err != nil {
		return fmt.Errorf("sending join hello: %w", err)
	}

	br := bufio.NewReaderSize(cc, sockBufSize)
	asm := dist.NewReassembler(0)
	for {
		msg, err := readCtl(br, asm)
		if err != nil {
			return fmt.Errorf("awaiting admission: %w", err)
		}
		switch msg.Kind {
		case dist.KindError:
			return dist.DecodeErr(-1, msg.Payload)
		case dist.KindShutdown:
			return nil // the cluster closed while this worker was parked
		case dist.KindConf:
			id, raw, err := decodeConfFrame(msg.Payload)
			if err != nil {
				return err
			}
			conf, err := decodeConf(raw)
			if err != nil {
				return err
			}
			if id < 0 || id >= conf.N {
				return fmt.Errorf("assigned node id %d outside the %d-node cluster", id, conf.N)
			}
			w.maxChunk = conf.MaxChunkPayload
			if err := sendFullHello(w, id, raw); err != nil {
				return err
			}
			// The same reader carries on: nothing buffered is lost
			// across the phase change.
			return workerLoopWith(cc, br, asm, w, id, conf)
		}
	}
}

func sendFullHello(w *ctlWriter, id int, raw []byte) error {
	version, levels, digest := helloFields(raw)
	err := w.send(dist.Frame{
		Kind: dist.KindHello, From: id, Seq: ctrlSeqHello,
		Payload: encodeHello(hello{
			version: version, levels: levels, specver: specVersion,
			flags: helloHasDigest, digest: digest,
		}),
	})
	if err != nil {
		return fmt.Errorf("sending hello: %w", err)
	}
	return nil
}

// readCtl reads one complete (reassembled) control message.
func readCtl(br *bufio.Reader, asm *dist.Reassembler) (dist.Frame, error) {
	for {
		f, err := dist.ReadFrame(br)
		if err != nil {
			return dist.Frame{}, err
		}
		msg, complete, _, aerr := asm.Accept(f)
		if aerr != nil {
			return dist.Frame{}, aerr
		}
		if complete {
			return msg, nil
		}
	}
}

// workerJob is one job's worker-side state.
type workerJob struct {
	spec    jobSpec
	keys    []uint32
	cols    [][]float64
	ln      net.Listener
	tr      *nodeTransport
	started bool
	done    chan struct{} // closed when the protocol goroutine finishes
}

// stop tears the job's data plane down and waits for its protocol
// goroutine: the transport close makes the goroutine's next Recv or
// Send fail with ErrClosed, which it swallows as a deliberate abort.
func (j *workerJob) stop() {
	if j.tr != nil {
		j.tr.Close()
	} else if j.ln != nil {
		j.ln.Close()
	}
	if j.started {
		<-j.done
	}
}

func workerLoop(cc net.Conn, br *bufio.Reader, w *ctlWriter, id int, conf clusterConf) error {
	return workerLoopWith(cc, br, dist.NewReassembler(0), w, id, conf)
}

// workerLoopWith serves jobs until shutdown. It owns the control
// connection's read side; all writes go through w.
func workerLoopWith(cc net.Conn, br *bufio.Reader, asm *dist.Reassembler, w *ctlWriter, id int, conf clusterConf) error {
	if conf.Heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(conf.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// A failed ping is not this goroutine's problem: the
					// read loop sees the connection die and ends the worker.
					_ = w.send(dist.Frame{Kind: dist.KindPing, From: id, Seq: ctrlSeqPing})
				case <-stop:
					return
				}
			}
		}()
	}

	var cur *workerJob
	defer func() {
		if cur != nil {
			cur.stop()
		}
	}()
	for {
		msg, err := readCtl(br, asm)
		if err != nil {
			return fmt.Errorf("control connection lost: %w", err)
		}
		switch msg.Kind {
		case dist.KindError:
			return dist.DecodeErr(-1, msg.Payload)
		case dist.KindShutdown:
			return nil
		case dist.KindJobDone:
			if cur != nil {
				cur.stop()
				cur = nil
			}
		case dist.KindJob:
			if cur != nil {
				// The control stream is ordered, so a new job means the
				// old one is over for the supervisor, however it ended.
				cur.stop()
				cur = nil
			}
			js, err := decodeJobSpec(msg.Payload)
			if err != nil {
				// The payload still carries which job it was in its
				// control seq; answer there so the supervisor can fail
				// the right job instead of hitting a timeout.
				jobIdx := int((msg.Seq - ctrlSeqJobBase) / ctrlSeqJobStride)
				reportErr(w, id, jobIdx, err)
				continue
			}
			job, err := prepareJob(cc, id, conf, js)
			if err != nil {
				reportErr(w, id, js.jobIdx, err)
				continue
			}
			cur = job
			err = w.send(dist.Frame{
				Kind: dist.KindReady, From: id, Seq: ctrlSeqReady(js.jobIdx),
				Payload: encodeReady(js.jobIdx, job.ln.Addr().String()),
			})
			if err != nil {
				return fmt.Errorf("control connection lost: %w", err)
			}
		case dist.KindPeers:
			jobIdx, _, addrs, err := decodePeers(msg.Payload)
			if err != nil || cur == nil || jobIdx != cur.spec.jobIdx || len(addrs) != conf.N {
				continue
			}
			if !cur.started {
				if err := startJob(cur, w, id, conf, addrs); err != nil {
					reportErr(w, id, jobIdx, err)
					cur.stop()
					cur = nil
				}
				continue
			}
			// A later epoch: a replacement took over a slot; re-point
			// the peer table (the transport re-dials lazily).
			for peer, addr := range addrs {
				if peer != id {
					cur.tr.UpdatePeer(peer, addr)
				}
			}
		}
	}
}

// reportErr announces a job-scoped failure to the supervisor on the
// job's result stream. Send failures are ignored: a dead control
// connection surfaces in the read loop.
func reportErr(w *ctlWriter, id, jobIdx int, err error) {
	_ = w.send(dist.Frame{
		Kind: dist.KindError, From: id, Seq: ctrlSeqResult(jobIdx),
		Payload: dist.EncodeErr(err),
	})
}

// prepareJob materializes the job's input for this node and binds the
// job's data-plane listener on the control connection's local
// interface (loopback for a local cluster, the routable interface the
// worker joined over for a remote one).
func prepareJob(cc net.Conn, id int, conf clusterConf, js jobSpec) (*workerJob, error) {
	job := &workerJob{spec: js, done: make(chan struct{})}
	switch js.source {
	case srcRaw:
		job.keys, job.cols = js.keys, js.cols
	case srcSynth:
		keys, cols, err := js.synth.Materialize()
		if err != nil {
			return nil, fmt.Errorf("materializing synthetic source: %w", err)
		}
		job.keys, job.cols = sliceRows(keys, cols, conf.N, id)
	case srcTPCHQ1:
		keys, cols, err := tpch.Q1Input(tpch.GenLineitemRows(js.rows, js.seed))
		if err != nil {
			return nil, fmt.Errorf("materializing tpch source: %w", err)
		}
		job.keys, job.cols = sliceRows(keys, cols, conf.N, id)
	}
	host, _, err := net.SplitHostPort(cc.LocalAddr().String())
	if err != nil {
		host = "127.0.0.1"
	}
	job.ln, err = net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("binding data-plane listener: %w", err)
	}
	return job, nil
}

// sliceRows keeps this node's round-robin slice (row i belongs to node
// i mod n) of a locally materialized dataset. Every node materializes
// the same rows from the same seeds, so the slices partition the
// dataset exactly; order-invariant aggregation makes the partitioning
// invisible in the result bits.
func sliceRows(keys []uint32, cols [][]float64, n, id int) ([]uint32, [][]float64) {
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	cnt := rows / n
	if id < rows%n {
		cnt++
	}
	var outKeys []uint32
	if keys != nil {
		outKeys = make([]uint32, 0, cnt)
		for i := id; i < len(keys); i += n {
			outKeys = append(outKeys, keys[i])
		}
	}
	outCols := make([][]float64, len(cols))
	for c, col := range cols {
		out := make([]float64, 0, cnt)
		for i := id; i < len(col); i += n {
			out = append(out, col[i])
		}
		outCols[c] = out
	}
	return outKeys, outCols
}

// startJob brings the job's data plane up and runs this node's role of
// the protocol in a goroutine.
func startJob(job *workerJob, w *ctlWriter, id int, conf clusterConf, addrs []string) error {
	js := job.spec
	// The injected faults fire only in a slot's first incarnation: a
	// substitute must not inherit the suicide it is substituting for.
	killAfter := 0
	if conf.KillAfter > 0 && conf.KillNode == id && js.incarnation == 0 {
		killAfter = conf.KillAfter
	}
	tr, err := newNodeTransport(id, append([]string(nil), addrs...), job.ln, killAfter)
	if err != nil {
		return err
	}
	if conf.DieAfter > 0 && conf.DieNode == id && js.incarnation == 0 {
		tr.dieAfter = int64(conf.DieAfter)
		tr.onDie = func() { os.Exit(exitInjectedDeath) }
	}
	job.tr = tr
	var ptr dist.Transport = tr
	if conf.Faults.Active() {
		ptr = dist.NewFaultTransport(tr, conf.Faults)
	}
	job.started = true
	cfg := conf.distConfig()
	go func() {
		defer close(job.done)
		var payload []byte
		var err error
		if js.op == opReduce {
			payload, err = dist.RunReduceNode(id, job.cols[0], js.workers, js.topo, ptr, cfg)
		} else {
			var gs []dist.TupleGroup
			gs, err = dist.RunGroupByNode(id, job.keys, job.cols, js.workers, js.specs, ptr, cfg)
			if err == nil && id == 0 {
				payload = dist.EncodeTupleGroups(gs, len(js.specs))
			}
		}
		if errors.Is(err, dist.ErrClosed) {
			return // deliberate teardown (job done, shutdown, next job)
		}
		if err != nil {
			reportErr(w, id, js.jobIdx, err)
			return
		}
		if id == 0 {
			_ = w.send(dist.Frame{
				Kind: dist.KindResult, From: id, Seq: ctrlSeqResult(js.jobIdx),
				Payload: payload,
			})
		}
	}()
	return nil
}
