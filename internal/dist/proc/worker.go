package proc

import (
	"bufio"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/tpch"
)

// The worker side of the elastic cluster runtime. A worker process is
// either spawned by a supervisor (-control, -id, -conf) or started by
// an operator against an advertised control address (-join), and then:
//
//  1. dials the control address and completes the KindHello handshake
//     (joiners first announce themselves config-less, receive the
//     cluster config in KindConf, and answer with the full digested
//     hello on the same connection),
//  2. waits for KindJob: the operation, its shape, and this node's
//     input — raw rows, or a declarative source the worker
//     materializes locally and slices by its node id,
//  3. binds a fresh data-plane listener per job, announces it with
//     KindReady, and on KindPeers runs its node's role of the
//     aggregation protocol over real sockets — the root also ships the
//     finalized result back as KindResult,
//  4. on a later KindPeers epoch re-points its peer table at a
//     replacement's fresh listener (the reconnect-safe transport
//     re-dials; per-chunk resends recover anything in flight),
//  5. tears the job's data plane down at KindJobDone and waits for the
//     next job, until KindShutdown.
//
// A worker that loses the supervisor connection does not exit: it
// tears down the current job, redials with capped exponential backoff
// + jitter, and re-attaches through the full digest handshake (a
// returning-member hello carrying its id and last-known fencing
// epoch) — which is what lets a journaled supervisor be kill -9'd and
// restarted without restarting its workers.

// workerEnv marks a process as a spawned cluster worker when the
// supervisor re-executes the current binary (the default when no
// explicit reproworker binary is configured). MaybeWorkerMain checks
// it; cmd/reproworker needs no marker.
const workerEnv = "REPRO_WORKER_PROCESS"

// Test hooks: REPROWORKER_HELLO_VERSION and REPROWORKER_HELLO_LEVELS
// override the corresponding KindHello fields, and
// REPROWORKER_TAMPER_DIGEST=1 flips the run-config digest — so the
// handshake rejection paths are exercised through the real spawn, dial,
// and reject machinery rather than a mocked frame. They are honored
// only in re-exec-spawned workers (workerEnv set, the mode tests use):
// the standalone reproworker binary must announce what it actually
// speaks, and a hook variable stray in an operator's shell must not
// mysteriously fail (or worse, falsify) production handshakes.
const (
	envHelloVersion = "REPROWORKER_HELLO_VERSION"
	envHelloLevels  = "REPROWORKER_HELLO_LEVELS"
	envTamperDigest = "REPROWORKER_TAMPER_DIGEST"
)

// Worker process exit codes. They are part of cmd/reproworker's
// contract: an operator's init system can tell a rejected join (wrong
// build, wrong config — retrying is pointless) from a runtime failure.
const (
	// ExitOK is a clean exit after KindShutdown.
	ExitOK = 0
	// ExitFailure is any runtime failure (lost supervisor, protocol
	// error, bad flags that parsed but don't make sense).
	ExitFailure = 1
	// ExitUsage is a command-line usage error.
	ExitUsage = 2
	// ExitHandshake means the join failed in a way retrying won't fix:
	// the supervisor rejected the handshake (wrong build or cluster
	// config), or the control address stayed unreachable through the
	// whole -join-timeout retry window.
	ExitHandshake = 3
	// exitInjectedDeath is the injected-death test hook's exit code,
	// distinguishable from every deliberate exit above.
	exitInjectedDeath = 7
)

// MaybeWorkerMain turns the current process into a cluster worker and
// never returns when it was spawned as one (workerEnv is set);
// otherwise it returns immediately. Programs that use the process
// cluster through re-execution — tests, reprobench, anything calling
// the facade's WithProcessCluster without a separate reproworker
// binary — must call it at the top of main (or TestMain), before flag
// parsing.
func MaybeWorkerMain() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	os.Exit(WorkerMain(os.Args[1:]))
}

const workerUsage = `usage: reproworker -control <addr> -id <n> -conf <hex> [-epoch <n>]
       reproworker -join <addr> [-join-timeout <dur>] [-advertise <host[:port]>]
                   [-metrics-addr <addr>]

A reproducible-aggregation cluster worker (see internal/dist/proc).

Supervisor-spawned mode (-control/-id/-conf/-epoch) is what a
proc.Cluster uses for its own workers; the flags come from the
supervisor and are not meant to be crafted by hand.

Join mode (-join) connects to the control address an operator got from
Cluster.Addr(), retrying an unreachable address with capped
exponential backoff + jitter until -join-timeout (default 30s)
elapses. The worker announces its build, receives the cluster
configuration, and completes the digested handshake; the supervisor
admits it into a free node slot, parks it as a standby for mid-run
replacement, or rejects it.

-advertise rewrites the data-plane address this worker announces to
the cluster's peer table, for machines where the bound address is not
what peers should dial: a bare host keeps the per-job bound port
(multi-NIC), host:port additionally binds that fixed data-plane port
(stable NAT or port-forward mappings). Default: the bound address.

A worker that loses its supervisor connection does not exit: it parks,
redials with the same backoff, and re-attaches through the full digest
handshake — so a journaled supervisor (ClusterSpec.Journal) can crash
and restart without its workers being restarted.

-metrics-addr serves this worker's own process metrics (wire frame and
chunk counters, see internal/obs) as Prometheus text on
<addr>/metrics. The same counters also ride each heartbeat ping to the
supervisor, so the flag is for direct scraping, not cluster health.

exit codes:
  0  clean shutdown
  1  runtime failure
  2  usage error
  3  join rejected (incompatible build or cluster config), or the
     control address stayed unreachable for the whole join window
`

// WorkerMain parses worker flags from args, runs the worker loop, and
// returns the process exit code. cmd/reproworker calls it directly.
func WorkerMain(args []string) int {
	fs := flag.NewFlagSet("reproworker", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	control := fs.String("control", "", "supervisor control address (host:port)")
	id := fs.Int("id", -1, "this worker's cluster node id")
	confHex := fs.String("conf", "", "hex-encoded cluster config (from the supervisor)")
	epoch := fs.Uint64("epoch", 0, "supervisor fencing epoch (from the supervisor)")
	join := fs.String("join", "", "cluster control address to join (from Cluster.Addr())")
	joinTimeout := fs.Duration("join-timeout", 30*time.Second, "how long -join keeps retrying an unreachable control address")
	advertise := fs.String("advertise", "", "data-plane address to announce to peers: host or host:port (default: the bound address)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus-text /metrics on this address (default: off)")
	fs.Usage = func() { fmt.Fprint(os.Stderr, workerUsage) }
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return ExitOK
		}
		return ExitUsage
	}
	if *metricsAddr != "" {
		// Best-effort observability sidecar: a worker whose metrics port
		// is taken still does its job, it just says so.
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "reproworker: metrics listener: %v\n", err)
			}
		}()
	}
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "reproworker: %v\n", err)
		if errors.Is(err, dist.ErrHandshake) || errors.Is(err, errJoinExhausted) {
			return ExitHandshake
		}
		return ExitFailure
	}
	if *advertise != "" && strings.Contains(*advertise, ":") {
		if _, p, err := net.SplitHostPort(*advertise); err != nil || p == "" {
			fmt.Fprintln(os.Stderr, "reproworker: -advertise must be a host or host:port (bracket IPv6 hosts)")
			return ExitUsage
		}
	}
	if *join != "" {
		if *control != "" || *confHex != "" || *id != -1 || *epoch != 0 {
			fmt.Fprintln(os.Stderr, "reproworker: -join excludes -control, -id, -conf, and -epoch (the cluster assigns them)")
			return ExitUsage
		}
		if *joinTimeout <= 0 {
			fmt.Fprintln(os.Stderr, "reproworker: -join-timeout must be positive")
			return ExitUsage
		}
		if err := runJoiner(*join, *advertise, *joinTimeout); err != nil {
			return fail(err)
		}
		return ExitOK
	}
	if *control == "" || *confHex == "" {
		fmt.Fprintln(os.Stderr, "reproworker: -control and -conf are required (or -join to join a cluster); see -help")
		return ExitUsage
	}
	raw, err := hex.DecodeString(*confHex)
	if err != nil {
		return fail(fmt.Errorf("decoding -conf: %w", err))
	}
	conf, err := decodeConf(raw)
	if err != nil {
		return fail(err)
	}
	if *id < 0 || *id >= conf.N {
		return fail(fmt.Errorf("node id %d outside the %d-node cluster", *id, conf.N))
	}
	if err := runWorker(*control, *advertise, *id, conf, raw, *epoch); err != nil {
		return fail(err)
	}
	return ExitOK
}

// helloFields builds this worker's handshake fields, honoring the test
// hooks that force mismatches.
func helloFields(raw []byte) (version, levels byte, digest uint64) {
	version, levels, digest = dist.FrameVersion, byte(core.DefaultLevels), confDigest(raw)
	if os.Getenv(workerEnv) == "" {
		return version, levels, digest // standalone binary: no hooks
	}
	if v := os.Getenv(envHelloVersion); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			version = byte(n)
		}
	}
	if v := os.Getenv(envHelloLevels); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			levels = byte(n)
		}
	}
	if os.Getenv(envTamperDigest) == "1" {
		digest ^= 0xDEADBEEF
	}
	return version, levels, digest
}

// ctlWriter serializes control-plane sends: the main loop, the
// heartbeat ticker, and a job's protocol goroutine all write through
// it.
type ctlWriter struct {
	mu       sync.Mutex
	conn     net.Conn
	bw       *bufio.Writer
	maxChunk int
}

func (w *ctlWriter) send(f dist.Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, ch := range dist.SplitFrame(f, w.maxChunk) {
		if err := dist.WriteFrame(w.bw, ch); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// Dial/re-attach backoff tuning: attempts back off exponentially from
// backoffBase to backoffCap with ±25% jitter. A detached worker keeps
// redialing for at most reattachWindow before giving up.
const (
	backoffBase    = 100 * time.Millisecond
	backoffCap     = 2 * time.Second
	reattachWindow = 60 * time.Second
)

// backoffDelay is the capped exponential backoff with jitter for dial
// attempt n (0-based). The jitter keeps a cluster's worth of orphaned
// workers from redialing a restarting supervisor in lockstep.
func backoffDelay(n int) time.Duration {
	d := backoffBase << uint(n)
	if n > 10 || d <= 0 || d > backoffCap {
		d = backoffCap
	}
	return d*3/4 + time.Duration(rand.Int64N(int64(d)/2))
}

// errCtlLost marks a lost supervisor connection — the one failure the
// session layer answers with backoff and re-attach instead of exiting.
var errCtlLost = errors.New("control connection lost")

// errJoinExhausted means the join retry loop ran its whole window
// without ever reaching the control address. WorkerMain maps it to
// ExitHandshake: like a rejection, retrying the same line is pointless.
var errJoinExhausted = errors.New("join window exhausted")

// dialRetry dials addr with the capped-backoff retry loop, bounded by
// window.
func dialRetry(addr string, window time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(window)
	var lastErr error
	for attempt := 0; ; attempt++ {
		cc, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			return cc, nil
		}
		lastErr = err
		d := backoffDelay(attempt)
		if time.Now().Add(d).After(deadline) {
			return nil, fmt.Errorf("%w: %s unreachable for %v: %v", errJoinExhausted, addr, window, lastErr)
		}
		time.Sleep(d)
	}
}

// workerSession is a worker's durable identity across control
// connections: which supervisor it belongs to, the slot and config it
// was admitted with, and the last fencing epoch it attached at.
type workerSession struct {
	control   string // supervisor control address
	advertise string // operator's -advertise override, "" for bound
	id        int
	conf      clusterConf
	raw       []byte
	epoch     uint64

	// Telemetry shipped in heartbeat pings (spec version 5). lastRTT is
	// the round trip the worker measured from the supervisor's last pong
	// echo; jobsRun counts jobs this worker accepted. Atomics: the
	// heartbeat ticker goroutine reads them while the main loop writes.
	lastRTT atomic.Int64
	jobsRun atomic.Uint64
}

// runWorker is the supervisor-spawned path: dial, full hello, serve.
func runWorker(control, advertise string, id int, conf clusterConf, raw []byte, epoch uint64) error {
	cc, err := net.DialTimeout("tcp", control, dialTimeout)
	if err != nil {
		return fmt.Errorf("dialing supervisor %s: %w", control, err)
	}
	s := &workerSession{control: control, advertise: advertise, id: id, conf: conf, raw: raw, epoch: epoch}
	w := &ctlWriter{conn: cc, bw: bufio.NewWriterSize(cc, sockBufSize), maxChunk: conf.MaxChunkPayload}
	if err := sendFullHello(w, id, raw, epoch); err != nil {
		return err
	}
	return s.serve(cc, bufio.NewReaderSize(cc, sockBufSize), dist.NewReassembler(0), w)
}

// runJoiner is the operator-started path: dial (with retries), then
// await admission. A connection lost while parked or mid-handshake is
// redialed with the re-attach backoff — the supervisor may be
// restarting — so a standby survives a supervisor crash too.
func runJoiner(control, advertise string, window time.Duration) error {
	cc, err := dialRetry(control, window)
	if err != nil {
		return err
	}
	for {
		err := awaitAdmission(cc, control, advertise)
		cc.Close()
		if !errors.Is(err, errCtlLost) {
			return err
		}
		fmt.Fprintf(os.Stderr, "reproworker: %v; redialing %s\n", err, control)
		if cc, err = dialRetry(control, reattachWindow); err != nil {
			return err
		}
	}
}

// awaitAdmission announces the build with a config-less join hello,
// receives the assigned node id, fencing epoch, and cluster config in
// KindConf, then completes the full handshake and serves. The
// supervisor may park the worker as a standby first — then KindConf
// simply arrives later, when a node slot frees up.
func awaitAdmission(cc net.Conn, control, advertise string) error {
	version, levels, _ := helloFields(nil)
	// No cluster config yet: chunk at the codec default (SplitFrame
	// maps 0 to it) until KindConf establishes the agreed size.
	w := &ctlWriter{conn: cc, bw: bufio.NewWriterSize(cc, sockBufSize), maxChunk: 0}
	err := w.send(dist.Frame{
		Kind: dist.KindHello, From: -1, Seq: ctrlSeqHello,
		Payload: encodeHello(hello{version: version, levels: levels, specver: specVersion, flags: helloJoin}),
	})
	if err != nil {
		return fmt.Errorf("%w: sending join hello: %v", errCtlLost, err)
	}

	br := bufio.NewReaderSize(cc, sockBufSize)
	asm := dist.NewReassembler(0)
	for {
		msg, err := readCtl(br, asm)
		if err != nil {
			return fmt.Errorf("%w: awaiting admission: %v", errCtlLost, err)
		}
		switch msg.Kind {
		case dist.KindError:
			return dist.DecodeErr(-1, msg.Payload)
		case dist.KindShutdown:
			return nil // the cluster closed while this worker was parked
		case dist.KindConf:
			id, epoch, raw, err := decodeConfFrame(msg.Payload)
			if err != nil {
				return err
			}
			conf, err := decodeConf(raw)
			if err != nil {
				return err
			}
			if id < 0 || id >= conf.N {
				return fmt.Errorf("assigned node id %d outside the %d-node cluster", id, conf.N)
			}
			s := &workerSession{control: control, advertise: advertise, id: id, conf: conf, raw: raw, epoch: epoch}
			w.maxChunk = conf.MaxChunkPayload
			if err := sendFullHello(w, id, raw, epoch); err != nil {
				return fmt.Errorf("%w: %v", errCtlLost, err)
			}
			// The same reader carries on: nothing buffered is lost
			// across the phase change.
			return s.serve(cc, br, asm, w)
		}
	}
}

// serve runs worker loops over the session's control connection,
// re-attaching with backoff whenever the connection is lost, until
// shutdown, a typed rejection, or the re-attach window runs out.
func (s *workerSession) serve(cc net.Conn, br *bufio.Reader, asm *dist.Reassembler, w *ctlWriter) error {
	for {
		err := workerLoopWith(cc, br, asm, w, s)
		cc.Close()
		if !errors.Is(err, errCtlLost) {
			return err
		}
		fmt.Fprintf(os.Stderr, "reproworker: %v; re-attaching to %s\n", err, s.control)
		var shutdown bool
		cc, br, asm, w, shutdown, err = s.reattach()
		if err != nil {
			return err
		}
		if shutdown {
			return nil // the cluster closed while this worker was detached
		}
	}
}

// reattach redials the supervisor with capped exponential backoff +
// jitter and runs the returning-member handshake, for at most
// reattachWindow. A typed rejection (stale epoch, digest mismatch,
// cluster full) ends the retries: the verdict won't change.
func (s *workerSession) reattach() (net.Conn, *bufio.Reader, *dist.Reassembler, *ctlWriter, bool, error) {
	deadline := time.Now().Add(reattachWindow)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			d := backoffDelay(attempt - 1)
			if time.Now().Add(d).After(deadline) {
				return nil, nil, nil, nil, false, fmt.Errorf("supervisor %s unreachable for %v: %v", s.control, reattachWindow, lastErr)
			}
			time.Sleep(d)
		}
		cc, err := net.DialTimeout("tcp", s.control, dialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		br, asm, w, shutdown, err := s.rejoin(cc)
		if err == nil {
			return cc, br, asm, w, shutdown, nil
		}
		cc.Close()
		if !errors.Is(err, errCtlLost) {
			return nil, nil, nil, nil, false, err
		}
		lastErr = err
	}
}

// rejoin runs the returning-member handshake on a fresh connection: a
// join hello carrying this worker's id, digest, and last-known epoch,
// then — once the supervisor hands a slot back in KindConf — the full
// hello at the supervisor's (possibly bumped) epoch. A restarted
// supervisor recognizes the id from its journal and re-admits at the
// recorded slot; if a replacement took the slot meanwhile, whatever
// slot the cluster assigns is adopted. The supervisor may also park
// the worker as a standby first, so the KindConf wait is unbounded.
func (s *workerSession) rejoin(cc net.Conn) (*bufio.Reader, *dist.Reassembler, *ctlWriter, bool, error) {
	version, levels, digest := helloFields(s.raw)
	w := &ctlWriter{conn: cc, bw: bufio.NewWriterSize(cc, sockBufSize), maxChunk: s.conf.MaxChunkPayload}
	err := w.send(dist.Frame{
		Kind: dist.KindHello, From: s.id, Seq: ctrlSeqRejoin,
		Payload: encodeHello(hello{
			version: version, levels: levels, specver: specVersion,
			flags: helloJoin | helloHasDigest, digest: digest, epoch: s.epoch,
		}),
	})
	if err != nil {
		return nil, nil, nil, false, fmt.Errorf("%w: sending re-attach hello: %v", errCtlLost, err)
	}
	br := bufio.NewReaderSize(cc, sockBufSize)
	asm := dist.NewReassembler(0)
	for {
		msg, err := readCtl(br, asm)
		if err != nil {
			return nil, nil, nil, false, fmt.Errorf("%w: awaiting re-admission: %v", errCtlLost, err)
		}
		switch msg.Kind {
		case dist.KindError:
			return nil, nil, nil, false, dist.DecodeErr(-1, msg.Payload)
		case dist.KindShutdown:
			return nil, nil, nil, true, nil
		case dist.KindConf:
			id, epoch, raw, err := decodeConfFrame(msg.Payload)
			if err != nil {
				return nil, nil, nil, false, err
			}
			if epoch < s.epoch {
				// The fence, worker side: a supervisor from an older
				// incarnation must not win this worker back.
				return nil, nil, nil, false, fmt.Errorf("%w: supervisor is at stale epoch %d, this worker has seen %d",
					dist.ErrHandshake, epoch, s.epoch)
			}
			conf, err := decodeConf(raw)
			if err != nil {
				return nil, nil, nil, false, err
			}
			if id < 0 || id >= conf.N {
				return nil, nil, nil, false, fmt.Errorf("assigned node id %d outside the %d-node cluster", id, conf.N)
			}
			s.id, s.epoch, s.conf, s.raw = id, epoch, conf, raw
			w.maxChunk = conf.MaxChunkPayload
			if err := sendFullHello(w, s.id, s.raw, s.epoch); err != nil {
				return nil, nil, nil, false, fmt.Errorf("%w: %v", errCtlLost, err)
			}
			return br, asm, w, false, nil
		}
	}
}

func sendFullHello(w *ctlWriter, id int, raw []byte, epoch uint64) error {
	version, levels, digest := helloFields(raw)
	err := w.send(dist.Frame{
		Kind: dist.KindHello, From: id, Seq: ctrlSeqHello,
		Payload: encodeHello(hello{
			version: version, levels: levels, specver: specVersion,
			flags: helloHasDigest, digest: digest, epoch: epoch,
		}),
	})
	if err != nil {
		return fmt.Errorf("sending hello: %w", err)
	}
	return nil
}

// readCtl reads one complete (reassembled) control message.
func readCtl(br *bufio.Reader, asm *dist.Reassembler) (dist.Frame, error) {
	for {
		f, err := dist.ReadFrame(br)
		if err != nil {
			return dist.Frame{}, err
		}
		if f.Kind == dist.KindPing {
			// Pong echoes reuse one (from, seq) stream forever; the
			// reassembler would swallow every echo after the first as a
			// completed-stream duplicate. They are single-frame by
			// construction (mirrors the supervisor's readConn bypass).
			return f, nil
		}
		msg, complete, _, aerr := asm.Accept(f)
		if aerr != nil {
			return dist.Frame{}, aerr
		}
		if complete {
			return msg, nil
		}
	}
}

// workerJob is one job's worker-side state.
type workerJob struct {
	spec    jobSpec
	keys    []uint32
	cols    [][]float64
	ln      net.Listener
	tr      *nodeTransport
	started bool
	done    chan struct{} // closed when the protocol goroutine finishes
}

// stop tears the job's data plane down and waits for its protocol
// goroutine: the transport close makes the goroutine's next Recv or
// Send fail with ErrClosed, which it swallows as a deliberate abort.
func (j *workerJob) stop() {
	if j.tr != nil {
		j.tr.Close()
	} else if j.ln != nil {
		j.ln.Close()
	}
	if j.started {
		<-j.done
	}
}

// workerLoopWith serves jobs until shutdown. It owns the control
// connection's read side; all writes go through w. A lost connection
// is returned wrapped in errCtlLost, which the session layer answers
// with re-attach instead of exit.
func workerLoopWith(cc net.Conn, br *bufio.Reader, asm *dist.Reassembler, w *ctlWriter, s *workerSession) error {
	id, conf := s.id, s.conf
	if conf.Heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(conf.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// A failed ping is not this goroutine's problem: the
					// read loop sees the connection die and ends the worker.
					// The payload doubles as the worker's telemetry report:
					// wire counters, jobs run, and the RTT measured from the
					// supervisor's previous pong echo.
					_ = w.send(dist.Frame{
						Kind: dist.KindPing, From: id, Seq: ctrlSeqPing,
						Payload: encodePingStats(pingStats{
							sentNanos: time.Now().UnixNano(),
							rttNanos:  s.lastRTT.Load(),
							jobsRun:   s.jobsRun.Load(),
							wire:      dist.ReadWireStats(),
						}),
					})
				case <-stop:
					return
				}
			}
		}()
	}

	var cur *workerJob
	defer func() {
		if cur != nil {
			cur.stop()
		}
	}()
	for {
		msg, err := readCtl(br, asm)
		if err != nil {
			return fmt.Errorf("%w: %v", errCtlLost, err)
		}
		switch msg.Kind {
		case dist.KindError:
			return dist.DecodeErr(-1, msg.Payload)
		case dist.KindShutdown:
			return nil
		case dist.KindPing:
			// The supervisor's pong echoes this worker's ping payload;
			// the echoed send timestamp yields an honest worker-measured
			// RTT, shipped back in the next heartbeat.
			if p, ok := decodePingStats(msg.Payload); ok && p.sentNanos > 0 {
				if rtt := time.Now().UnixNano() - p.sentNanos; rtt > 0 {
					s.lastRTT.Store(rtt)
				}
			}
		case dist.KindJobDone:
			if cur != nil {
				cur.stop()
				cur = nil
			}
		case dist.KindJob:
			if cur != nil {
				// The control stream is ordered, so a new job means the
				// old one is over for the supervisor, however it ended.
				cur.stop()
				cur = nil
			}
			js, err := decodeJobSpec(msg.Payload)
			if err != nil {
				// The payload still carries which job it was in its
				// control seq; answer there so the supervisor can fail
				// the right job instead of hitting a timeout.
				jobIdx := int((msg.Seq - ctrlSeqJobBase) / ctrlSeqJobStride)
				reportErr(w, id, jobIdx, err)
				continue
			}
			job, announce, err := prepareJob(cc, id, conf, js, s.advertise)
			if err != nil {
				reportErr(w, id, js.jobIdx, err)
				continue
			}
			cur = job
			s.jobsRun.Add(1)
			err = w.send(dist.Frame{
				Kind: dist.KindReady, From: id, Seq: ctrlSeqReady(js.jobIdx),
				Payload: encodeReady(js.jobIdx, announce),
			})
			if err != nil {
				return fmt.Errorf("%w: %v", errCtlLost, err)
			}
		case dist.KindPeers:
			jobIdx, _, addrs, err := decodePeers(msg.Payload)
			if err != nil || cur == nil || jobIdx != cur.spec.jobIdx || len(addrs) != conf.N {
				continue
			}
			if !cur.started {
				if err := startJob(cur, w, id, conf, addrs); err != nil {
					reportErr(w, id, jobIdx, err)
					cur.stop()
					cur = nil
				}
				continue
			}
			// A later epoch: a replacement took over a slot; re-point
			// the peer table (the transport re-dials lazily).
			for peer, addr := range addrs {
				if peer != id {
					cur.tr.UpdatePeer(peer, addr)
				}
			}
		}
	}
}

// reportErr announces a job-scoped failure to the supervisor on the
// job's result stream. Send failures are ignored: a dead control
// connection surfaces in the read loop.
func reportErr(w *ctlWriter, id, jobIdx int, err error) {
	_ = w.send(dist.Frame{
		Kind: dist.KindError, From: id, Seq: ctrlSeqResult(jobIdx),
		Payload: dist.EncodeErr(err),
	})
}

// prepareJob materializes the job's input for this node and binds the
// job's data-plane listener on the control connection's local
// interface (loopback for a local cluster, the routable interface the
// worker joined over for a remote one). It returns the address to
// announce to the peer table: the bound address by default, rewritten
// by -advertise for multi-NIC or NAT'd machines — a bare host keeps
// the bound port, host:port also pins the listener to that port.
func prepareJob(cc net.Conn, id int, conf clusterConf, js jobSpec, advertise string) (*workerJob, string, error) {
	job := &workerJob{spec: js, done: make(chan struct{})}
	switch js.source {
	case srcRaw:
		job.keys, job.cols = js.keys, js.cols
	case srcSynth:
		keys, cols, err := js.synth.Materialize()
		if err != nil {
			return nil, "", fmt.Errorf("materializing synthetic source: %w", err)
		}
		job.keys, job.cols = sliceRows(keys, cols, conf.N, id)
	case srcTPCHQ1:
		keys, cols, err := tpch.Q1Input(tpch.GenLineitemRows(js.rows, js.seed))
		if err != nil {
			return nil, "", fmt.Errorf("materializing tpch source: %w", err)
		}
		job.keys, job.cols = sliceRows(keys, cols, conf.N, id)
	}
	host, _, err := net.SplitHostPort(cc.LocalAddr().String())
	if err != nil {
		host = "127.0.0.1"
	}
	bindPort, advHost := "0", ""
	if advertise != "" {
		if h, p, err := net.SplitHostPort(advertise); err == nil {
			advHost, bindPort = h, p
		} else {
			advHost = advertise
		}
	}
	job.ln, err = net.Listen("tcp", net.JoinHostPort(host, bindPort))
	if err != nil {
		return nil, "", fmt.Errorf("binding data-plane listener: %w", err)
	}
	announce := job.ln.Addr().String()
	if advHost != "" {
		_, boundPort, err := net.SplitHostPort(announce)
		if err != nil {
			job.ln.Close()
			return nil, "", fmt.Errorf("binding data-plane listener: %w", err)
		}
		announce = net.JoinHostPort(advHost, boundPort)
	}
	return job, announce, nil
}

// sliceRows keeps this node's round-robin slice (row i belongs to node
// i mod n) of a locally materialized dataset. Every node materializes
// the same rows from the same seeds, so the slices partition the
// dataset exactly; order-invariant aggregation makes the partitioning
// invisible in the result bits.
func sliceRows(keys []uint32, cols [][]float64, n, id int) ([]uint32, [][]float64) {
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	cnt := rows / n
	if id < rows%n {
		cnt++
	}
	var outKeys []uint32
	if keys != nil {
		outKeys = make([]uint32, 0, cnt)
		for i := id; i < len(keys); i += n {
			outKeys = append(outKeys, keys[i])
		}
	}
	outCols := make([][]float64, len(cols))
	for c, col := range cols {
		out := make([]float64, 0, cnt)
		for i := id; i < len(col); i += n {
			out = append(out, col[i])
		}
		outCols[c] = out
	}
	return outKeys, outCols
}

// startJob brings the job's data plane up and runs this node's role of
// the protocol in a goroutine.
func startJob(job *workerJob, w *ctlWriter, id int, conf clusterConf, addrs []string) error {
	js := job.spec
	// The injected faults fire only in a slot's first incarnation: a
	// substitute must not inherit the suicide it is substituting for.
	killAfter := 0
	if conf.KillAfter > 0 && conf.KillNode == id && js.incarnation == 0 {
		killAfter = conf.KillAfter
	}
	tr, err := newNodeTransport(id, append([]string(nil), addrs...), job.ln, killAfter)
	if err != nil {
		return err
	}
	if conf.DieAfter > 0 && conf.DieNode == id && js.incarnation == 0 {
		tr.dieAfter = int64(conf.DieAfter)
		tr.onDie = func() { os.Exit(exitInjectedDeath) }
	}
	job.tr = tr
	var ptr dist.Transport = tr
	if conf.Faults.Active() {
		ptr = dist.NewFaultTransport(tr, conf.Faults)
	}
	job.started = true
	cfg := conf.distConfig()
	go func() {
		defer close(job.done)
		var payload []byte
		var err error
		if js.op == opReduce {
			payload, err = dist.RunReduceNode(id, job.cols[0], js.workers, js.topo, ptr, cfg)
		} else {
			var gs []dist.TupleGroup
			gs, err = dist.RunGroupByNode(id, job.keys, job.cols, js.workers, js.specs, ptr, cfg)
			if err == nil && id == 0 {
				payload = dist.EncodeTupleGroups(gs, len(js.specs))
			}
		}
		if errors.Is(err, dist.ErrClosed) {
			return // deliberate teardown (job done, shutdown, next job)
		}
		if err != nil {
			reportErr(w, id, js.jobIdx, err)
			return
		}
		if id == 0 {
			_ = w.send(dist.Frame{
				Kind: dist.KindResult, From: id, Seq: ctrlSeqResult(js.jobIdx),
				Payload: payload,
			})
		}
	}()
	return nil
}
