package proc

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/dist"
)

// The worker side of the multi-process cluster runtime. A worker
// process is spawned (or started by hand, see cmd/reproworker) with
// three flags — the supervisor's control address, its node id, and the
// hex-encoded cluster config — and then:
//
//  1. binds a data-plane TCP listener on loopback,
//  2. dials the control address and sends KindHello (frame version,
//     rsum level count, run-config digest, data-plane address),
//  3. waits for KindJob (peer address table + its input shard; a
//     KindError instead means the handshake was rejected),
//  4. runs its node's role of the aggregation protocol over real
//     sockets to its peers — the root also ships the finalized result
//     back as KindResult —
//  5. keeps serving per-chunk resend requests until KindShutdown, then
//     closes the data plane and exits.

// workerEnv marks a process as a spawned cluster worker when the
// supervisor re-executes the current binary (the default when no
// explicit reproworker binary is configured). MaybeWorkerMain checks
// it; cmd/reproworker needs no marker.
const workerEnv = "REPRO_WORKER_PROCESS"

// Test hooks: REPROWORKER_HELLO_VERSION and REPROWORKER_HELLO_LEVELS
// override the corresponding KindHello fields, and
// REPROWORKER_TAMPER_DIGEST=1 flips the run-config digest — so the
// handshake rejection paths are exercised through the real spawn, dial,
// and reject machinery rather than a mocked frame. They are honored
// only in re-exec-spawned workers (workerEnv set, the mode tests use):
// the standalone reproworker binary must announce what it actually
// speaks, and a hook variable stray in an operator's shell must not
// mysteriously fail (or worse, falsify) production handshakes.
const (
	envHelloVersion = "REPROWORKER_HELLO_VERSION"
	envHelloLevels  = "REPROWORKER_HELLO_LEVELS"
	envTamperDigest = "REPROWORKER_TAMPER_DIGEST"
)

// MaybeWorkerMain turns the current process into a cluster worker and
// never returns when it was spawned as one (workerEnv is set);
// otherwise it returns immediately. Programs that use the process
// cluster through re-execution — tests, reprobench, anything calling
// the facade's WithProcessCluster without a separate reproworker
// binary — must call it at the top of main (or TestMain), before flag
// parsing.
func MaybeWorkerMain() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	os.Exit(WorkerMain(os.Args[1:]))
}

// WorkerMain parses worker flags from args, runs the worker loop, and
// returns the process exit code. cmd/reproworker calls it directly.
func WorkerMain(args []string) int {
	fs := flag.NewFlagSet("reproworker", flag.ContinueOnError)
	control := fs.String("control", "", "supervisor control address (host:port)")
	id := fs.Int("id", -1, "this worker's cluster node id")
	confHex := fs.String("conf", "", "hex-encoded cluster config (from the supervisor)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "reproworker: node %d: %v\n", *id, err)
		return 1
	}
	if *control == "" || *confHex == "" {
		fmt.Fprintln(os.Stderr, "reproworker: -control and -conf are required (workers are started by a proc.Cluster supervisor)")
		return 2
	}
	raw, err := hex.DecodeString(*confHex)
	if err != nil {
		return fail(fmt.Errorf("decoding -conf: %w", err))
	}
	conf, err := decodeConf(raw)
	if err != nil {
		return fail(err)
	}
	if *id < 0 || *id >= conf.N {
		return fail(fmt.Errorf("node id %d outside the %d-node cluster", *id, conf.N))
	}
	if err := runWorker(*control, *id, conf, raw); err != nil {
		return fail(err)
	}
	return 0
}

// helloFields builds this worker's handshake fields, honoring the test
// hooks that force mismatches.
func helloFields(raw []byte) (version, levels byte, digest uint64) {
	version, levels, digest = dist.FrameVersion, byte(core.DefaultLevels), confDigest(raw)
	if os.Getenv(workerEnv) == "" {
		return version, levels, digest // standalone binary: no hooks
	}
	if v := os.Getenv(envHelloVersion); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			version = byte(n)
		}
	}
	if v := os.Getenv(envHelloLevels); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			levels = byte(n)
		}
	}
	if os.Getenv(envTamperDigest) == "1" {
		digest ^= 0xDEADBEEF
	}
	return version, levels, digest
}

// runWorker is the worker loop described in the package comment.
func runWorker(control string, id int, conf clusterConf, raw []byte) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("binding data-plane listener: %w", err)
	}
	defer ln.Close()

	cc, err := net.DialTimeout("tcp", control, dialTimeout)
	if err != nil {
		return fmt.Errorf("dialing supervisor %s: %w", control, err)
	}
	defer cc.Close()

	version, levels, digest := helloFields(raw)
	helloPayload := encodeHello(hello{
		version: version,
		levels:  levels,
		digest:  digest,
		addr:    ln.Addr().String(),
	})
	err = dist.WriteFrame(cc, dist.Frame{
		Kind: dist.KindHello, From: id, Seq: ctrlSeqHello, Chunks: 1, Payload: helloPayload,
	})
	if err != nil {
		return fmt.Errorf("sending hello: %w", err)
	}

	// Job (or rejection). Large shards arrive as a chunk stream over
	// the control connection, reassembled by the same machinery the
	// data plane uses — but under the default budget, not the run's
	// ReassemblyBudget: that knob is the data plane's defense against
	// hostile peers, while this stream comes from the supervisor that
	// spawned us and must be able to carry a shard of any size the
	// run has (capping it at the shuffle-message budget would reject
	// legitimate jobs, not attackers).
	br := bufio.NewReaderSize(cc, sockBufSize)
	asm := dist.NewReassembler(0)
	var theJob job
	for {
		f, err := dist.ReadFrame(br)
		if err != nil {
			return fmt.Errorf("control connection lost before job arrived: %w", err)
		}
		msg, complete, _, aerr := asm.Accept(f)
		if aerr != nil {
			return fmt.Errorf("reassembling control message: %w", aerr)
		}
		if !complete {
			continue
		}
		if msg.Kind == dist.KindError {
			return dist.DecodeErr(-1, msg.Payload) // handshake rejected
		}
		if msg.Kind != dist.KindJob {
			continue // unknown-but-valid control kinds are ignored
		}
		theJob, err = decodeJob(conf.Op, msg.Payload)
		if err != nil {
			return err
		}
		break
	}
	if len(theJob.addrs) != conf.N {
		return fmt.Errorf("job carries %d addresses for a %d-node cluster", len(theJob.addrs), conf.N)
	}

	killAfter := 0
	if conf.KillAfter > 0 && conf.KillNode == id {
		killAfter = conf.KillAfter
	}
	nt, err := newNodeTransport(id, theJob.addrs, ln, killAfter)
	if err != nil {
		return err
	}
	defer nt.Close()
	var tr dist.Transport = nt
	if conf.Faults.Active() {
		// The fault decorator deliberately does not batch, so injected
		// faults keep applying per chunk — across processes too.
		tr = dist.NewFaultTransport(nt, conf.Faults)
	}
	cfg := conf.distConfig()

	type outcome struct {
		payload []byte
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		switch conf.Op {
		case opReduce:
			payload, err := dist.RunReduceNode(id, theJob.cols[0], conf.Workers, conf.Topo, tr, cfg)
			done <- outcome{payload: payload, err: err}
		default: // opGroupBy (decodeConf rejected everything else)
			groups, err := dist.RunGroupByNode(id, theJob.keys, theJob.cols, conf.Workers, conf.Specs, tr, cfg)
			done <- outcome{payload: dist.EncodeTupleGroups(groups, len(conf.Specs)), err: err}
		}
	}()

	// The root's role ends with a result it must report; everyone
	// else's ends only when the transport closes, so their outcome is
	// drained after shutdown. Node 0 is the root of every built-in
	// topology and of the GROUP BY gather.
	var out outcome
	haveOut := false
	if id == 0 {
		out = <-done
		haveOut = true
		rf := dist.Frame{Kind: dist.KindResult, From: id, Seq: ctrlSeqResult, Payload: out.payload}
		if out.err != nil {
			rf = dist.Frame{Kind: dist.KindError, From: id, Seq: ctrlSeqResult, Payload: dist.EncodeErr(out.err)}
		}
		// Buffered like the supervisor's job dispatch: a chunked result
		// leaves as few large writes, not one syscall per chunk.
		bw := bufio.NewWriterSize(cc, sockBufSize)
		for _, c := range dist.SplitFrame(rf, conf.MaxChunkPayload) {
			if err := dist.WriteFrame(bw, c); err != nil {
				return fmt.Errorf("reporting result: %w", err)
			}
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("reporting result: %w", err)
		}
	}

	// Stay up — serving data-plane resends through the protocol
	// goroutine — until the supervisor says the run is over.
	clean := false
	for {
		f, err := dist.ReadFrame(br)
		if err != nil {
			break // supervisor gone: treat as an unclean shutdown
		}
		if f.Kind == dist.KindShutdown {
			clean = true
			break
		}
	}
	tr.Close() // unblocks the protocol goroutine of non-root nodes
	if !haveOut {
		out = <-done
	}
	if !clean {
		if out.err != nil {
			return fmt.Errorf("control connection lost (node role ended in: %v)", out.err)
		}
		return fmt.Errorf("control connection lost before shutdown")
	}
	return nil
}
