// Package proc is the multi-process cluster runtime of the
// reproducible aggregation engine: it runs the exact protocols of
// internal/dist — the topology-parameterized reduction and the hash
// shuffle GROUP BY, chunked wire format v2, per-chunk resend recovery
// and all — across genuinely separate worker OS processes connected by
// real TCP sockets.
//
// A supervisor (Reduce / AggregateByKey in the parent process) spawns
// one worker process per cluster node, collects a join handshake from
// each (KindHello: frame codec version, rsum level count, and a digest
// of the run configuration — any mismatch is rejected with a typed
// ErrHandshake before a byte of data moves), distributes the peer
// address table and input shards as chunked KindJob frames, waits for
// the root's KindResult, and shuts the cluster down. Workers speak the
// v2 frame codec to each other over per-pair cached connections that
// re-dial after any socket failure; a connection severed mid-chunk
// stream is recovered by the protocols' existing per-chunk KindResend
// path — the receiver re-requests exactly the missing chunks, the
// sender retransmits them from its cache over a fresh connection, and
// the job completes without restarting.
//
// The result is bit-identical to the in-process engine for every
// topology, cluster size, chunk regime, fault plan, and forced
// socket-kill scenario — the paper's reproducibility claim extended to
// its hardest setting, separate processes with nothing shared but the
// wire.
package proc

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rsum"
	"repro/internal/sqlagg"
)

// Options configures the supervisor side of a multi-process run. The
// zero value spawns workers by re-executing the current binary (which
// must call MaybeWorkerMain early in main) and is the configuration
// the facade uses.
type Options struct {
	// WorkerPath is an explicit reproworker binary to spawn. Empty
	// means: the REPROWORKER_BIN environment variable if set, else
	// re-execute the current binary with the worker marker set.
	WorkerPath string
	// Env is appended to each worker's environment (test hook: the
	// handshake-rejection tests force mismatched hellos through it).
	Env []string
	// LogWriter receives the workers' stderr (default os.Stderr).
	LogWriter io.Writer
	// JoinTimeout bounds the whole join phase: spawn through last
	// handshake (default 15s).
	JoinTimeout time.Duration
	// KillConnNode / KillConnAfter force the socket-kill-and-reconnect
	// scenario: node KillConnNode severs all its outgoing data-plane
	// connections once, just before its KillConnAfter-th data frame.
	// KillConnAfter == 0 disables. Recovery must be invisible in the
	// result bits; reprobench's -procs sweep and the proc tests assert
	// exactly that.
	KillConnNode  int
	KillConnAfter int
}

func (o Options) joinTimeout() time.Duration {
	if o.JoinTimeout <= 0 {
		return 15 * time.Second
	}
	return o.JoinTimeout
}

func (o Options) logWriter() io.Writer {
	if o.LogWriter == nil {
		return os.Stderr
	}
	return o.LogWriter
}

// clusterSize resolves the worker-process count: an explicit
// cfg.Procs, else one process per shard.
func clusterSize(cfg dist.Config, shards int) int {
	if cfg.Procs > 0 {
		return cfg.Procs
	}
	return shards
}

// Reduce computes the reproducible global SUM across a cluster of
// spawned worker processes — the multi-process counterpart of
// dist.ReduceConfig, bit-identical to it (and to every in-process
// transport) by construction. When cfg.Procs differs from len(shards),
// the shards are re-dealt round-robin across the cfg.Procs worker
// nodes; reproducibility makes any re-dealing invisible in the bits.
func Reduce(shards [][]float64, workers int, topo dist.Topology, cfg dist.Config, opt Options) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(shards) == 0 {
		return 0, dist.ErrNoShards
	}
	if workers < 1 {
		return 0, fmt.Errorf("%w (got %d)", dist.ErrWorkers, workers)
	}
	if !topo.Valid() {
		return 0, fmt.Errorf("%w (got %d)", dist.ErrTopology, int(topo))
	}
	n := clusterSize(cfg, len(shards))
	// Re-dealing is the identity when the counts already match; only a
	// mismatched explicit Procs pays for copying rows around.
	perNode := shards
	if n != len(shards) {
		perNode = make([][]float64, n)
		for i, s := range shards {
			perNode[i%n] = append(perNode[i%n], s...)
		}
	}
	conf := newConf(opReduce, topo, n, workers, nil, cfg, opt)
	payload, err := runCluster(conf, opt, func(id int, addrs []string) []byte {
		return encodeJob(opReduce, addrs, nil, [][]float64{perNode[id]})
	})
	if err != nil {
		return 0, err
	}
	final := rsum.NewState64(core.DefaultLevels)
	if err := final.UnmarshalBinary(payload); err != nil {
		return 0, fmt.Errorf("proc: decoding root result: %w", err)
	}
	return final.Value(), nil
}

// AggregateByKey computes the reproducible distributed GROUP BY SUM
// across spawned worker processes — the multi-process counterpart of
// dist.AggregateByKeyConfig, bit-identical to it for every sharding,
// topology of arrival, chunk regime, and injected failure. It is the
// single-aggregate special case of AggregateTuples.
func AggregateByKey(shardKeys [][]uint32, shardVals [][]float64, workers int, cfg dist.Config, opt Options) ([]dist.Group, error) {
	if len(shardVals) != len(shardKeys) {
		return nil, fmt.Errorf("%w: %d key shards vs %d value shards",
			dist.ErrShardMismatch, len(shardKeys), len(shardVals))
	}
	shardCols := make([][][]float64, len(shardVals))
	for i, vals := range shardVals {
		shardCols[i] = [][]float64{vals}
	}
	specs := []sqlagg.AggSpec{{Kind: sqlagg.AggSum, Levels: core.DefaultLevels, Col: 0}}
	tuples, err := AggregateTuples(shardKeys, shardCols, workers, specs, cfg, opt)
	if err != nil {
		return nil, err
	}
	groups := make([]dist.Group, len(tuples))
	for i, t := range tuples {
		groups[i] = dist.Group{Key: t.Key, Sum: t.Aggs[0]}
	}
	return groups, nil
}

// AggregateTuples computes a reproducible distributed multi-aggregate
// GROUP BY across spawned worker processes — the multi-process
// counterpart of dist.AggregateTuplesConfig, bit-identical to it for
// every sharding, chunk regime, and injected failure. Each shard
// carries its keys plus one value column per distinct column the
// aggregate catalog reads; the specs travel inside the digested run
// config, so a worker holding a different catalog is rejected at the
// join handshake.
func AggregateTuples(shardKeys [][]uint32, shardCols [][][]float64, workers int, specs []sqlagg.AggSpec, cfg dist.Config, opt Options) ([]dist.TupleGroup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(shardKeys) == 0 {
		return nil, dist.ErrNoShards
	}
	if len(shardCols) != len(shardKeys) {
		return nil, fmt.Errorf("%w: %d key shards vs %d column shards",
			dist.ErrShardMismatch, len(shardKeys), len(shardCols))
	}
	if err := dist.ValidateShardColumns(shardKeys, shardCols, specs); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("%w (got %d)", dist.ErrWorkers, workers)
	}
	// Ship exactly the columns the catalog reads: validation already
	// guaranteed every shard with rows has them, and columns past the
	// highest bound one are dead weight on the wire.
	ncols := 0
	for _, s := range specs {
		if s.Col+1 > ncols {
			ncols = s.Col + 1
		}
	}
	n := clusterSize(cfg, len(shardKeys))
	perKeys := make([][]uint32, n)
	perCols := make([][][]float64, n)
	for i := range perCols {
		perCols[i] = make([][]float64, ncols)
	}
	for i := range shardKeys {
		node := i % n
		perKeys[node] = append(perKeys[node], shardKeys[i]...)
		if len(shardKeys[i]) == 0 {
			continue // empty shards may omit columns
		}
		for c := 0; c < ncols; c++ {
			perCols[node][c] = append(perCols[node][c], shardCols[i][c]...)
		}
	}
	conf := newConf(opGroupBy, dist.Binomial, n, workers, specs, cfg, opt)
	payload, err := runCluster(conf, opt, func(id int, addrs []string) []byte {
		return encodeJob(opGroupBy, addrs, perKeys[id], perCols[id])
	})
	if err != nil {
		return nil, err
	}
	tuples, err := dist.DecodeTupleGroups(payload, len(specs))
	if err != nil {
		return nil, fmt.Errorf("proc: decoding root result: %w", err)
	}
	return tuples, nil
}

// newConf assembles the digested run configuration.
func newConf(op byte, topo dist.Topology, n, workers int, specs []sqlagg.AggSpec, cfg dist.Config, opt Options) clusterConf {
	conf := clusterConf{
		Op:               op,
		Topo:             topo,
		N:                n,
		Workers:          workers,
		MaxChunkPayload:  cfg.MaxChunkPayload,
		ReassemblyBudget: cfg.ReassemblyBudget,
		ChildDeadline:    cfg.ChildDeadline,
		MaxResend:        cfg.MaxResend,
		KillNode:         -1,
		Specs:            specs,
	}
	if cfg.Faults != nil {
		conf.Faults = *cfg.Faults
	}
	if opt.KillConnAfter > 0 {
		conf.KillNode = opt.KillConnNode
		conf.KillAfter = opt.KillConnAfter
	}
	return conf
}

// workerExit is one worker process's termination.
type workerExit struct {
	id  int
	err error
}

// joined is the join phase's outcome: every worker's control
// connection and data-plane address.
type joined struct {
	conns []net.Conn
	addrs []string
	err   error
}

// rootResult is the reassembled KindResult (or KindError) of the root
// worker.
type rootResult struct {
	payload []byte
	err     error
}

// runCluster is the supervisor: spawn, join, dispatch, await, shut
// down. jobPayload builds worker id's KindJob payload once the
// data-plane address table is known.
func runCluster(conf clusterConf, opt Options, jobPayload func(id int, addrs []string) []byte) ([]byte, error) {
	raw := encodeConf(conf)
	wantDigest := confDigest(raw)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("proc: control listener: %w", err)
	}
	defer ln.Close()

	path, reexec, err := resolveWorker(opt)
	if err != nil {
		return nil, err
	}
	cmds := make([]*exec.Cmd, conf.N)
	exitCh := make(chan workerExit, conf.N)
	started, exited := 0, 0
	for id := 0; id < conf.N; id++ {
		cmd := exec.Command(path,
			"-control", ln.Addr().String(),
			"-id", fmt.Sprint(id),
			"-conf", hex.EncodeToString(raw))
		cmd.Stderr = opt.logWriter()
		cmd.Env = os.Environ()
		if reexec {
			cmd.Env = append(cmd.Env, workerEnv+"=1")
		}
		cmd.Env = append(cmd.Env, opt.Env...)
		if err := cmd.Start(); err != nil {
			killAll(cmds)
			drainExits(exitCh, started)
			return nil, fmt.Errorf("proc: spawning worker %d (%s): %w", id, path, err)
		}
		cmds[id] = cmd
		started++
		go func(id int, cmd *exec.Cmd) {
			exitCh <- workerExit{id: id, err: cmd.Wait()}
		}(id, cmd)
	}

	fail := func(err error) ([]byte, error) {
		ln.Close()
		killAll(cmds)
		drainExits(exitCh, started-exited)
		return nil, err
	}

	// Join phase: collect and verify every worker's handshake. On a
	// join failure the accept goroutine is always drained — it sends
	// exactly one joined once the listener closes and the killed
	// workers' connections die — so a racing successful join can never
	// leak its accepted control connections.
	joinCh := make(chan joined, 1)
	go acceptWorkers(ln, conf.N, wantDigest, time.Now().Add(opt.joinTimeout()), joinCh)
	failJoin := func(err error) ([]byte, error) {
		ln.Close()
		killAll(cmds)
		j := <-joinCh
		closeConns(j.conns)
		drainExits(exitCh, started-exited)
		return nil, err
	}
	var j joined
	select {
	case j = <-joinCh:
		if j.err != nil {
			ln.Close()
			killAll(cmds)
			drainExits(exitCh, started-exited)
			return nil, j.err
		}
	case e := <-exitCh:
		// Accept keeps running, but a worker dying before the cluster
		// even forms is fatal now, not at the join timeout.
		exited++
		return failJoin(fmt.Errorf("proc: worker %d exited during join: %w", e.id, exitErr(e.err)))
	case <-time.After(opt.joinTimeout()):
		return failJoin(fmt.Errorf("proc: join timeout: not all of %d workers completed the handshake within %v", conf.N, opt.joinTimeout()))
	}
	defer closeConns(j.conns)

	// Dispatch phase: every worker gets the address table and its
	// shard, chunked like any other large logical message.
	for id, conn := range j.conns {
		f := dist.Frame{Kind: dist.KindJob, To: id, Seq: ctrlSeqJob, Payload: jobPayload(id, j.addrs)}
		bw := bufio.NewWriterSize(conn, sockBufSize)
		for _, c := range dist.SplitFrame(f, conf.MaxChunkPayload) {
			if err := dist.WriteFrame(bw, c); err != nil {
				return fail(fmt.Errorf("proc: sending job to worker %d: %w", id, err))
			}
		}
		if err := bw.Flush(); err != nil {
			return fail(fmt.Errorf("proc: sending job to worker %d: %w", id, err))
		}
	}

	// Await the root's result; any worker exiting first is a failure
	// (workers only exit after the supervisor's shutdown frame).
	resCh := make(chan rootResult, 1)
	go readResult(j.conns[0], resCh)
	var res rootResult
	select {
	case res = <-resCh:
		if res.err != nil {
			return fail(fmt.Errorf("proc: root worker: %w", res.err))
		}
	case e := <-exitCh:
		exited++
		return fail(fmt.Errorf("proc: worker %d exited mid-run: %w", e.id, exitErr(e.err)))
	}

	// Shutdown phase: tell every worker the run is over, then wait for
	// clean exits (escalating to kill on a hang).
	for id, conn := range j.conns {
		_ = dist.WriteFrame(conn, dist.Frame{Kind: dist.KindShutdown, To: id, Seq: ctrlSeqShutdown, Chunks: 1})
	}
	closeConns(j.conns)
	deadline := time.After(10 * time.Second)
	var exitFailure error
	for exited < started {
		select {
		case e := <-exitCh:
			exited++
			if e.err != nil && exitFailure == nil {
				exitFailure = fmt.Errorf("proc: worker %d exited uncleanly after shutdown: %w", e.id, e.err)
			}
		case <-deadline:
			killAll(cmds)
			drainExits(exitCh, started-exited)
			return nil, errors.New("proc: workers did not exit within the shutdown deadline")
		}
	}
	if exitFailure != nil {
		return nil, exitFailure
	}
	return res.payload, nil
}

// resolveWorker picks the worker binary: explicit option, then the
// REPROWORKER_BIN environment variable, then re-executing the current
// binary (whose main must call MaybeWorkerMain).
func resolveWorker(opt Options) (path string, reexec bool, err error) {
	if opt.WorkerPath != "" {
		return opt.WorkerPath, false, nil
	}
	if p := os.Getenv("REPROWORKER_BIN"); p != "" {
		return p, false, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return "", false, fmt.Errorf("proc: no reproworker binary configured and the current executable is unknown: %w", err)
	}
	return exe, true, nil
}

// acceptWorkers runs the join phase: accept control connections until
// every node id has delivered a valid, matching KindHello. Any invalid
// or mismatched handshake — an impostor connection included — fails
// the join; the offender is told why with a KindError before its
// connection drops. Hello reads carry the join deadline, so a
// connection that never speaks cannot pin this goroutine past it.
func acceptWorkers(ln net.Listener, n int, wantDigest uint64, deadline time.Time, out chan<- joined) {
	conns := make([]net.Conn, n)
	addrs := make([]string, n)
	fail := func(err error) {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		out <- joined{err: err}
	}
	for have := 0; have < n; have++ {
		conn, err := ln.Accept()
		if err != nil {
			fail(fmt.Errorf("proc: control accept: %w", err))
			return
		}
		conn.SetReadDeadline(deadline)
		f, err := dist.ReadFrame(conn)
		if err != nil {
			conn.Close()
			fail(fmt.Errorf("proc: reading handshake: %w", err))
			return
		}
		h, err := decodeHello(f.Payload)
		if err == nil && f.Kind != dist.KindHello {
			err = fmt.Errorf("proc: first control frame is kind %d, want hello", f.Kind)
		}
		if err == nil {
			err = verifyHello(h, wantDigest)
		}
		if err == nil && (f.From < 0 || f.From >= n) {
			err = fmt.Errorf("%w: node id %d outside the %d-node cluster", dist.ErrHandshake, f.From, n)
		}
		if err == nil && conns[f.From] != nil {
			err = fmt.Errorf("%w: duplicate join for node id %d", dist.ErrHandshake, f.From)
		}
		if err != nil {
			_ = dist.WriteFrame(conn, dist.Frame{
				Kind: dist.KindError, Seq: ctrlSeqHello, Chunks: 1, Payload: dist.EncodeErr(err),
			})
			conn.Close()
			fail(err)
			return
		}
		conn.SetReadDeadline(time.Time{}) // joined: back to blocking reads
		conns[f.From] = conn
		addrs[f.From] = h.addr
	}
	out <- joined{conns: conns, addrs: addrs}
}

// verifyHello checks a worker's handshake against this supervisor's
// build and run configuration. Every mismatch is an ErrHandshake.
func verifyHello(h hello, wantDigest uint64) error {
	if h.version != dist.FrameVersion {
		return fmt.Errorf("%w: worker speaks frame version %d, supervisor speaks %d",
			dist.ErrHandshake, h.version, dist.FrameVersion)
	}
	if h.levels != core.DefaultLevels {
		return fmt.Errorf("%w: worker compiled with %d rsum levels, supervisor with %d — partial states would not merge",
			dist.ErrHandshake, h.levels, core.DefaultLevels)
	}
	if h.digest != wantDigest {
		return fmt.Errorf("%w: worker run-config digest %016x, supervisor's is %016x — the cluster would not agree on the run",
			dist.ErrHandshake, h.digest, wantDigest)
	}
	return nil
}

// readResult reassembles the root worker's result stream off its
// control connection — under the default reassembly budget, like the
// worker's job stream: the control plane connects trusted spawned
// processes, and a result may legitimately outgrow a tightly tuned
// data-plane budget.
func readResult(conn net.Conn, out chan<- rootResult) {
	br := bufio.NewReaderSize(conn, sockBufSize)
	asm := dist.NewReassembler(0)
	for {
		f, err := dist.ReadFrame(br)
		if err != nil {
			out <- rootResult{err: fmt.Errorf("control connection to root lost: %w", err)}
			return
		}
		msg, complete, _, aerr := asm.Accept(f)
		if aerr != nil {
			out <- rootResult{err: aerr}
			return
		}
		if !complete {
			continue
		}
		switch msg.Kind {
		case dist.KindResult:
			out <- rootResult{payload: msg.Payload}
			return
		case dist.KindError:
			out <- rootResult{err: dist.DecodeErr(0, msg.Payload)}
			return
		}
	}
}

// exitErr folds a nil cmd.Wait error into something printable.
func exitErr(err error) error {
	if err == nil {
		return errors.New("exit status 0")
	}
	return err
}

func killAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}

// drainExits consumes the remaining exit notifications, so no watcher
// goroutine outlives the run.
func drainExits(exitCh <-chan workerExit, remaining int) {
	for i := 0; i < remaining; i++ {
		<-exitCh
	}
}

func closeConns(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}
