// Package proc is the multi-process cluster runtime of the
// reproducible aggregation engine: it runs the exact protocols of
// internal/dist — the topology-parameterized reduction and the hash
// shuffle GROUP BY, chunked wire format v2, per-chunk resend recovery
// and all — across genuinely separate worker OS processes connected by
// real TCP sockets.
//
// The core abstraction is the elastic Cluster (elastic.go): a
// long-lived supervisor that forms its worker set from spawned
// processes, operator-started remote joiners (reproworker -join), or
// both; runs a sequence of typed Jobs whose inputs are raw shards or
// declarative sources the workers materialize locally; and — with
// ReplaceDead — survives worker death mid-run by admitting a
// substitute through the same digested KindHello handshake,
// re-shipping the lost job spec, and re-pointing the surviving peers'
// reconnect-safe transports. The result is bit-identical to the
// in-process engine for every topology, cluster size, chunk regime,
// fault plan, forced socket kill, and mid-run replacement — the
// paper's reproducibility claim extended to its hardest setting:
// separate processes with nothing shared but the wire, some of them
// dying halfway through.
//
// Reduce, AggregateByKey, and AggregateTuples below are the original
// one-shot entry points, kept as thin wrappers: each forms a cluster,
// runs a single raw-shard job, and tears the cluster down, preserving
// the exact validation order and failure surface they always had.
package proc

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sqlagg"
)

// Options configures the supervisor side of a multi-process run. The
// zero value spawns workers by re-executing the current binary (which
// must call MaybeWorkerMain early in main) and is the configuration
// the facade uses.
type Options struct {
	// WorkerPath is an explicit reproworker binary to spawn. Empty
	// means: the REPROWORKER_BIN environment variable if set, else
	// re-execute the current binary with the worker marker set.
	WorkerPath string
	// Env is appended to each worker's environment (test hook: the
	// handshake-rejection tests force mismatched hellos through it).
	Env []string
	// LogWriter receives the workers' stderr (default os.Stderr).
	LogWriter io.Writer
	// JoinTimeout bounds the whole join phase: spawn through last
	// handshake (default 15s).
	JoinTimeout time.Duration
	// KillConnNode / KillConnAfter force the socket-kill-and-reconnect
	// scenario: node KillConnNode severs all its outgoing data-plane
	// connections once, just before its KillConnAfter-th data frame.
	// KillConnAfter == 0 disables. Recovery must be invisible in the
	// result bits; reprobench's -procs sweep and the proc tests assert
	// exactly that.
	KillConnNode  int
	KillConnAfter int
}

func (o Options) joinTimeout() time.Duration {
	if o.JoinTimeout <= 0 {
		return 15 * time.Second
	}
	return o.JoinTimeout
}

func (o Options) logWriter() io.Writer {
	if o.LogWriter == nil {
		return os.Stderr
	}
	return o.LogWriter
}

// clusterSize resolves the worker-process count: an explicit
// cfg.Procs, else one process per shard.
func clusterSize(cfg dist.Config, shards int) int {
	if cfg.Procs > 0 {
		return cfg.Procs
	}
	return shards
}

// runOneShot is the shared tail of the one-shot wrappers: form a
// cluster, run the single job, tear the cluster down. A run error
// outranks a teardown error (the former usually causes the latter).
func runOneShot(n int, cfg dist.Config, opt Options, job Job) (*Result, error) {
	c, err := NewCluster(ClusterSpec{
		Nodes:       n,
		JoinTimeout: opt.joinTimeout(),
		Config:      cfg,
		Options:     opt,
	})
	if err != nil {
		return nil, err
	}
	res, err := c.Run(job)
	cerr := c.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	return res, nil
}

// Reduce computes the reproducible global SUM across a cluster of
// spawned worker processes — the multi-process counterpart of
// dist.ReduceConfig, bit-identical to it (and to every in-process
// transport) by construction. When cfg.Procs differs from len(shards),
// the shards are re-dealt round-robin across the cfg.Procs worker
// nodes; reproducibility makes any re-dealing invisible in the bits.
func Reduce(shards [][]float64, workers int, topo dist.Topology, cfg dist.Config, opt Options) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(shards) == 0 {
		return 0, dist.ErrNoShards
	}
	if workers < 1 {
		return 0, fmt.Errorf("%w (got %d)", dist.ErrWorkers, workers)
	}
	if !topo.Valid() {
		return 0, fmt.Errorf("%w (got %d)", dist.ErrTopology, int(topo))
	}
	res, err := runOneShot(clusterSize(cfg, len(shards)), cfg, opt, Job{
		Topo:    topo,
		Workers: workers,
		Source:  ValueShards(shards),
	})
	if err != nil {
		return 0, err
	}
	return res.Sum, nil
}

// AggregateByKey computes the reproducible distributed GROUP BY SUM
// across spawned worker processes — the multi-process counterpart of
// dist.AggregateByKeyConfig, bit-identical to it for every sharding,
// topology of arrival, chunk regime, and injected failure. It is the
// single-aggregate special case of AggregateTuples.
func AggregateByKey(shardKeys [][]uint32, shardVals [][]float64, workers int, cfg dist.Config, opt Options) ([]dist.Group, error) {
	if len(shardVals) != len(shardKeys) {
		return nil, fmt.Errorf("%w: %d key shards vs %d value shards",
			dist.ErrShardMismatch, len(shardKeys), len(shardVals))
	}
	shardCols := make([][][]float64, len(shardVals))
	for i, vals := range shardVals {
		shardCols[i] = [][]float64{vals}
	}
	specs := []sqlagg.AggSpec{{Kind: sqlagg.AggSum, Levels: core.DefaultLevels, Col: 0}}
	tuples, err := AggregateTuples(shardKeys, shardCols, workers, specs, cfg, opt)
	if err != nil {
		return nil, err
	}
	groups := make([]dist.Group, len(tuples))
	for i, t := range tuples {
		groups[i] = dist.Group{Key: t.Key, Sum: t.Aggs[0]}
	}
	return groups, nil
}

// AggregateTuples computes a reproducible distributed multi-aggregate
// GROUP BY across spawned worker processes — the multi-process
// counterpart of dist.AggregateTuplesConfig, bit-identical to it for
// every sharding, chunk regime, and injected failure. Each shard
// carries its keys plus one value column per distinct column the
// aggregate catalog reads; the catalog travels in the job spec of the
// versioned control plane, and the cluster config is digested into the
// join handshake, so a mismatched worker is rejected at admission.
func AggregateTuples(shardKeys [][]uint32, shardCols [][][]float64, workers int, specs []sqlagg.AggSpec, cfg dist.Config, opt Options) ([]dist.TupleGroup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(shardKeys) == 0 {
		return nil, dist.ErrNoShards
	}
	if len(shardCols) != len(shardKeys) {
		return nil, fmt.Errorf("%w: %d key shards vs %d column shards",
			dist.ErrShardMismatch, len(shardKeys), len(shardCols))
	}
	if err := dist.ValidateShardColumns(shardKeys, shardCols, specs); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("%w (got %d)", dist.ErrWorkers, workers)
	}
	res, err := runOneShot(clusterSize(cfg, len(shardKeys)), cfg, opt, Job{
		Workers: workers,
		Specs:   specs,
		Source:  RowShards(shardKeys, shardCols),
	})
	if err != nil {
		return nil, err
	}
	return res.Groups, nil
}

// resolveWorker picks the worker binary: explicit option, then the
// REPROWORKER_BIN environment variable, then re-executing the current
// binary (whose main must call MaybeWorkerMain).
func resolveWorker(opt Options) (path string, reexec bool, err error) {
	if opt.WorkerPath != "" {
		return opt.WorkerPath, false, nil
	}
	if p := os.Getenv("REPROWORKER_BIN"); p != "" {
		return p, false, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return "", false, fmt.Errorf("proc: no reproworker binary configured and the current executable is unknown: %w", err)
	}
	return exe, true, nil
}

// verifyHello checks a worker's full handshake against this
// supervisor's build and run configuration. Every mismatch is an
// ErrHandshake.
func verifyHello(h hello, wantDigest uint64) error {
	if err := verifyJoinHello(h); err != nil {
		return err
	}
	if h.flags&helloHasDigest == 0 {
		return fmt.Errorf("%w: worker sent a config-less hello where a digested one was due", dist.ErrHandshake)
	}
	if h.digest != wantDigest {
		return fmt.Errorf("%w: worker run-config digest %016x, supervisor's is %016x — the cluster would not agree on the run",
			dist.ErrHandshake, h.digest, wantDigest)
	}
	return nil
}

// verifyJoinHello checks the config-independent half of a handshake —
// all a remote joiner can promise before it is handed the cluster
// config.
func verifyJoinHello(h hello) error {
	if h.version != dist.FrameVersion {
		return fmt.Errorf("%w: worker speaks frame version %d, supervisor speaks %d",
			dist.ErrHandshake, h.version, dist.FrameVersion)
	}
	if h.levels != core.DefaultLevels {
		return fmt.Errorf("%w: worker compiled with %d rsum levels, supervisor with %d — partial states would not merge",
			dist.ErrHandshake, h.levels, core.DefaultLevels)
	}
	if h.specver != specVersion {
		return fmt.Errorf("%w: worker speaks control-plane spec v%d, supervisor speaks v%d",
			dist.ErrHandshake, h.specver, specVersion)
	}
	return nil
}

// exitErr folds a nil cmd.Wait error into something printable.
func exitErr(err error) error {
	if err == nil {
		return errors.New("exit status 0")
	}
	return err
}
