package dist

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/rsum"
	"repro/internal/workload"
)

// seedSweep widens the chunked equivalence matrix to this many workload
// seeds. CI runs the default single seed; the nightly workflow passes
// -dist.seedsweep to sweep a larger family of inputs through the same
// cells.
var seedSweep = flag.Int("dist.seedsweep", 1, "workload seeds for the chunked transport matrix")

// --- splitFrame / reassembler units ---

func TestSplitFrame(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 10)
	base := Frame{Kind: KindGroups, From: 1, To: 2, Seq: seqShuffle, Payload: payload}

	cases := []struct {
		maxChunk int
		want     int
	}{
		{3, 4},  // 3+3+3+1
		{5, 2},  // exact multiple
		{10, 1}, // exact fit
		{64, 1}, // larger than the payload
		{0, 1},  // 0 means the 16 MiB default
	}
	for _, c := range cases {
		chunks := splitFrame(base, c.maxChunk)
		if len(chunks) != c.want {
			t.Fatalf("maxChunk %d: %d chunks, want %d", c.maxChunk, len(chunks), c.want)
		}
		var cat []byte
		for i, ch := range chunks {
			if ch.Kind != base.Kind || ch.From != base.From || ch.To != base.To || ch.Seq != base.Seq {
				t.Fatalf("maxChunk %d: chunk %d lost its routing header", c.maxChunk, i)
			}
			if ch.Chunk != uint32(i) || ch.Chunks != uint32(len(chunks)) {
				t.Fatalf("maxChunk %d: chunk %d numbered %d/%d", c.maxChunk, i, ch.Chunk, ch.Chunks)
			}
			cat = append(cat, ch.Payload...)
		}
		if !bytes.Equal(cat, payload) {
			t.Fatalf("maxChunk %d: chunks do not concatenate to the payload", c.maxChunk)
		}
	}

	// An empty payload still yields exactly one (empty) chunk, so
	// receivers can count senders.
	empty := splitFrame(Frame{Kind: KindGroups, From: 0, To: 0, Seq: seqShuffle}, 4)
	if len(empty) != 1 || empty[0].Chunks != 1 || len(empty[0].Payload) != 0 {
		t.Fatalf("empty payload split to %+v", empty)
	}

	// Chunk payloads alias the logical payload: no copying on the
	// in-process path.
	chunks := splitFrame(base, 4)
	if &chunks[0].Payload[0] != &payload[0] {
		t.Fatal("chunk payload does not alias the logical payload")
	}
}

func TestReassemblerMissing(t *testing.T) {
	asm := newReassembler(1 << 20)
	chunks := splitFrame(Frame{Kind: KindPartial, From: 3, To: 0, Seq: 0, Payload: bytes.Repeat([]byte{1}, 100)}, 10)
	if len(chunks) != 10 {
		t.Fatalf("%d chunks, want 10", len(chunks))
	}

	// Nothing heard yet: missing() reports nil, meaning "ask for the
	// whole stream".
	if idx := asm.missing(3, 0); idx != nil {
		t.Fatalf("missing before any chunk = %v, want nil", idx)
	}
	for _, i := range []int{1, 4, 7} {
		if _, complete, fresh, err := asm.accept(chunks[i]); err != nil || complete || !fresh {
			t.Fatalf("chunk %d: complete=%v fresh=%v err=%v", i, complete, fresh, err)
		}
	}
	want := []uint32{0, 2, 3, 5, 6, 8, 9}
	got := asm.missing(3, 0)
	if len(got) != len(want) {
		t.Fatalf("missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missing = %v, want %v", got, want)
		}
	}

	// Duplicates are absorbed without completing or counting as fresh.
	if _, complete, fresh, err := asm.accept(chunks[4]); err != nil || complete || fresh {
		t.Fatalf("duplicate chunk: complete=%v fresh=%v err=%v", complete, fresh, err)
	}

	// Feed the rest; the last one completes with the exact payload.
	var final Frame
	completions := 0
	for _, i := range []int{0, 2, 3, 5, 6, 8, 9} {
		msg, complete, _, err := asm.accept(chunks[i])
		if err != nil {
			t.Fatal(err)
		}
		if complete {
			completions++
			final = msg
		}
	}
	if completions != 1 || !bytes.Equal(final.Payload, bytes.Repeat([]byte{1}, 100)) {
		t.Fatalf("completions=%d payload=%d bytes", completions, len(final.Payload))
	}

	// Completed: further chunks of the stream are swallowed, and
	// missing() no longer reports a partial.
	if _, complete, fresh, err := asm.accept(chunks[0]); err != nil || complete || fresh {
		t.Fatalf("post-completion chunk: complete=%v fresh=%v err=%v", complete, fresh, err)
	}
	if idx := asm.missing(3, 0); idx != nil {
		t.Fatalf("missing after completion = %v, want nil", idx)
	}
}

func TestReassemblerBudgetReleasedOnCompletion(t *testing.T) {
	// Budget fits one message at a time but not two partials: if
	// completion did not release the buffered bytes, the second message
	// would trip the budget.
	asm := newReassembler(120)
	for seq := uint32(0); seq < 5; seq++ {
		chunks := splitFrame(Frame{Kind: KindGather, From: 1, To: 0, Seq: seq, Payload: bytes.Repeat([]byte{byte(seq)}, 100)}, 30)
		for i := len(chunks) - 1; i >= 0; i-- { // out of order, to force buffering
			if _, _, _, err := asm.accept(chunks[i]); err != nil {
				t.Fatalf("seq %d chunk %d: %v", seq, i, err)
			}
		}
	}

	// A partial stream that would exceed the budget errors instead.
	big := splitFrame(Frame{Kind: KindGather, From: 2, To: 0, Seq: 9, Payload: bytes.Repeat([]byte{9}, 300)}, 30)
	var err error
	for i := len(big) - 1; i >= 0 && err == nil; i-- {
		_, _, _, err = asm.accept(big[i])
	}
	if !errors.Is(err, ErrChunkBudget) {
		t.Fatalf("got %v, want ErrChunkBudget", err)
	}
}

// --- chunk-counting decorator: proves scenarios genuinely go multi-chunk ---

// chunkCounter records, per frame kind, the largest declared chunk
// count and the per-chunk transmission tally, so tests can assert both
// "this really was a ≥3-chunk stream" and "only the lost chunk was
// retransmitted".
type chunkCounter struct {
	Transport
	mu        sync.Mutex
	maxChunks map[byte]uint32
	sends     map[chunkID]int
}

func newChunkCounter(inner Transport) *chunkCounter {
	return &chunkCounter{
		Transport: inner,
		maxChunks: make(map[byte]uint32),
		sends:     make(map[chunkID]int),
	}
}

func (c *chunkCounter) Send(f Frame) error {
	c.mu.Lock()
	if f.Chunks > c.maxChunks[f.Kind] {
		c.maxChunks[f.Kind] = f.Chunks
	}
	if f.Kind != KindResend {
		c.sends[chunkID{f.From, f.To, f.Seq, f.Chunk}]++
	}
	c.mu.Unlock()
	return c.Transport.Send(f)
}

func (c *chunkCounter) max(kind byte) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxChunks[kind]
}

// countingFactory wraps a factory so each built transport is observed
// by a fresh counter, handed to the caller through out.
func countingFactory(inner TransportFactory, out *[]*chunkCounter, mu *sync.Mutex) TransportFactory {
	return func(n int) (Transport, error) {
		tr, err := inner(n)
		if err != nil {
			return nil, err
		}
		c := newChunkCounter(tr)
		mu.Lock()
		*out = append(*out, c)
		mu.Unlock()
		return c, nil
	}
}

// --- the chunked equivalence matrix (the PR's acceptance bar) ---

// TestChunkedReduceTransportMatrix: with a chunk payload small enough
// that every partial state travels as ≥3 chunks, every (topology ×
// cluster size × transport × fault plan) cell must still produce bits
// identical to the single-threaded sequential sum.
func TestChunkedReduceTransportMatrix(t *testing.T) {
	for s := 0; s < *seedSweep; s++ {
		seed := uint64(17 + 1000*s)
		vals := workload.Values64(seed, 4000, workload.MixedMag)
		ref := rsum.NewState64(levels)
		ref.AddSliceVec(vals)
		want := math.Float64bits(ref.Value())

		for tname, factory := range transportFactories() {
			for pname, plan := range faultPlans() {
				plan := plan
				factory := factory
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, tname, pname), func(t *testing.T) {
					t.Parallel()
					for _, nodes := range []int{2, 5} {
						shards := shard(vals, nodes)
						for _, topo := range topologies {
							var counters []*chunkCounter
							var mu sync.Mutex
							cfg := matrixConfig(countingFactory(factory, &counters, &mu), plan)
							// A State64 partial encodes to ~52 bytes at
							// L=2: a 16-byte chunk payload forces ≥4
							// chunks per partial.
							cfg.MaxChunkPayload = 16
							got, err := ReduceConfig(shards, 2, topo, cfg)
							if err != nil {
								t.Fatalf("%v n=%d: %v", topo, nodes, err)
							}
							if bits := math.Float64bits(got); bits != want {
								t.Fatalf("%v n=%d: %016x, want %016x", topo, nodes, bits, want)
							}
							if mc := counters[0].max(KindPartial); mc < 3 {
								t.Fatalf("%v n=%d: partials peaked at %d chunks, want ≥3", topo, nodes, mc)
							}
						}
					}
				})
			}
		}
	}
}

// TestChunkedAggregateByKeyTransportMatrix: a cardinality at which
// every (sender, owner) shuffle payload needs ≥3 chunks — and the
// gather payloads too — must match the sequential per-key reference
// bit for bit under every transport × fault plan.
func TestChunkedAggregateByKeyTransportMatrix(t *testing.T) {
	for s := 0; s < *seedSweep; s++ {
		seed := uint64(37 + 1000*s)
		const rows = 6000
		const distinct = 1200
		keys := workload.Keys(seed, rows, distinct)
		vals := workload.Values64(seed+1, rows, workload.MixedMag)
		want := refGroups(keys, vals)

		for tname, factory := range transportFactories() {
			for pname, plan := range faultPlans() {
				plan := plan
				factory := factory
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, tname, pname), func(t *testing.T) {
					t.Parallel()
					for _, nodes := range []int{2, 3} {
						lk, lv := dealRows(keys, vals, nodes)
						var counters []*chunkCounter
						var mu sync.Mutex
						cfg := matrixConfig(countingFactory(factory, &counters, &mu), plan)
						// ~60 B per ⟨key, state⟩ pair and ≥distinct/n
						// keys per (sender, owner) payload: 2 KiB chunks
						// force well over 3 chunks per pair; the 12 B/key
						// gather payloads go multi-chunk too.
						cfg.MaxChunkPayload = 2048
						out, err := AggregateByKeyConfig(lk, lv, 2, cfg)
						if err != nil {
							t.Fatalf("n=%d: %v", nodes, err)
						}
						checkGroups(t, out, want, nodes, 2)
						if mc := counters[0].max(KindGroups); mc < 3 {
							t.Fatalf("n=%d: shuffle peaked at %d chunks, want ≥3", nodes, mc)
						}
						if nodes > 1 {
							if mc := counters[0].max(KindGather); mc < 3 {
								t.Fatalf("n=%d: gather peaked at %d chunks, want ≥3", nodes, mc)
							}
						}
					}
				})
			}
		}
	}
}

// TestChunkedStragglerRerequest forces the chunk-level re-request path
// on every single chunk: the first transmission of every distinct data
// chunk is swallowed, so receivers only make progress through deadline
// → per-chunk re-request → retransmit-from-cache.
func TestChunkedStragglerRerequest(t *testing.T) {
	const rows = 3000
	keys := workload.Keys(53, rows, 600)
	vals := workload.Values64(54, rows, workload.MixedMag)
	want := refGroups(keys, vals)

	factory := func(n int) (Transport, error) {
		return &firstSendBlackhole{
			Transport: NewChanTransport(n),
			kinds:     map[byte]bool{KindGroups: true, KindGather: true},
			dropped:   make(map[chunkID]bool),
		}, nil
	}
	cfg := Config{NewTransport: factory, ChildDeadline: 2 * time.Millisecond, MaxResend: -1, MaxChunkPayload: 2048}
	for _, nodes := range []int{2, 4} {
		lk, lv := dealRows(keys, vals, nodes)
		out, err := AggregateByKeyConfig(lk, lv, 2, cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", nodes, err)
		}
		checkGroups(t, out, want, nodes, 2)
	}
}

// oneChunkBlackhole swallows the first transmission of exactly one
// chunk (matched by kind, from, to, seq, chunk index).
type oneChunkBlackhole struct {
	Transport
	victim  chunkID
	kind    byte
	mu      sync.Mutex
	dropped bool
}

func (b *oneChunkBlackhole) Send(f Frame) error {
	if f.Kind == b.kind {
		id := chunkID{f.From, f.To, f.Seq, f.Chunk}
		b.mu.Lock()
		first := !b.dropped && id == b.victim
		if first {
			b.dropped = true
		}
		b.mu.Unlock()
		if first {
			return nil
		}
	}
	return b.Transport.Send(f)
}

// TestSingleLostChunkResendsOnlyThatChunk is the point of the
// chunk-aware resend cache: when one chunk of a large shuffle message
// is lost, the receiver re-requests and the sender retransmits exactly
// that chunk — every other chunk of the stream crosses the wire once.
func TestSingleLostChunkResendsOnlyThatChunk(t *testing.T) {
	const rows = 3000
	keys := workload.Keys(61, rows, 800)
	vals := workload.Values64(62, rows, workload.MixedMag)
	want := refGroups(keys, vals)

	victim := chunkID{from: 1, to: 0, seq: seqShuffle, chunk: 2}
	var counters []*chunkCounter
	var mu sync.Mutex
	factory := countingFactory(func(n int) (Transport, error) {
		return &oneChunkBlackhole{Transport: NewChanTransport(n), victim: victim, kind: KindGroups}, nil
	}, &counters, &mu)

	// The generous deadline means the only silence the receiver ever
	// sees is the lost chunk: by the time the re-request round fires,
	// every other stream has long completed, so the round asks for
	// exactly the one missing chunk.
	lk, lv := dealRows(keys, vals, 2)
	cfg := Config{NewTransport: factory, ChildDeadline: 250 * time.Millisecond, MaxResend: -1, MaxChunkPayload: 2048}
	out, err := AggregateByKeyConfig(lk, lv, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGroups(t, out, want, 2, 2)

	c := counters[0]
	c.mu.Lock()
	defer c.mu.Unlock()
	if got := c.sends[victim]; got < 2 {
		t.Fatalf("victim chunk transmitted %d times, want ≥2 (drop + retransmit)", got)
	}
	for id, n := range c.sends {
		if id != victim && n != 1 {
			t.Fatalf("chunk %+v transmitted %d times; only the lost chunk may be retransmitted", id, n)
		}
	}
}

// TestChunkedGatherBeyondSingleFrame: the owner → root gather path also
// chunks: many distinct keys with a tiny chunk payload, gather streams
// reassembled at the root, bits identical to the reference.
func TestChunkedGatherBeyondSingleFrame(t *testing.T) {
	const rows = 4000
	keys := workload.Keys(71, rows, 900)
	vals := workload.Values64(72, rows, workload.MixedMag)
	want := refGroups(keys, vals)

	cfg := Config{MaxChunkPayload: 512}
	for _, nodes := range []int{3, 7} {
		lk, lv := dealRows(keys, vals, nodes)
		out, err := AggregateByKeyConfig(lk, lv, 2, cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", nodes, err)
		}
		checkGroups(t, out, want, nodes, 2)
	}
}
