package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rsum"
)

// levels is the summation accuracy level used by the distributed
// operators. All nodes must agree on L for partial states to merge;
// the canonical encoding carries L, and MergeBinary rejects mismatches.
const levels = core.DefaultLevels

// Config selects the interconnect and failure handling of the
// distributed operators. The zero value reproduces the classic
// configuration: in-process channels, no injected faults, and a patient
// straggler deadline.
type Config struct {
	// NewTransport builds the interconnect for an n-node cluster
	// (default ChanTransportFactory). The operation owns the transport
	// and closes it on completion.
	NewTransport TransportFactory
	// Faults, when non-nil and active, wraps the transport in a
	// fault-injection decorator (see FaultPlan).
	Faults *FaultPlan
	// ChildDeadline is how long a parent in the reduction tree waits
	// for a child's partial before re-requesting it (straggler
	// handling; default 1s). Spurious re-requests are harmless: frames
	// are deduplicated by (from, seq).
	ChildDeadline time.Duration
	// MaxResend caps a node's consecutive silent deadline rounds: after
	// this many Recv timeouts in a row with no frame consumed (each
	// followed by a re-request to every still-missing peer), the
	// operation gives up with ErrStraggler. Any progress resets the
	// budget — it measures silence, not slowness; a chunk of a
	// still-incomplete message counts as progress. 0 means the default
	// of 25; a negative value disables the give-up entirely.
	MaxResend int
	// MaxChunkPayload caps the payload bytes of one wire frame: logical
	// messages larger than this travel as a reassembled chunk stream.
	// 0 means DefaultChunkPayload (the 16 MiB frame ceiling, so every
	// payload that fit in one frame before chunking still travels as
	// exactly one frame); values above MaxFramePayload are clamped to
	// it.
	MaxChunkPayload int
	// ReassemblyBudget caps the bytes a node buffers for incomplete
	// incoming chunk streams before failing with ErrChunkBudget
	// (default DefaultReassemblyBudget). It also bounds the logical
	// message size a sender may produce, since a message over the
	// cluster-wide budget could never be reassembled. The budget is
	// shared across all concurrent incomplete streams on a node: when
	// sizing it explicitly, allow fan-in × the largest expected
	// message, or chunks interleaving from many senders can trip it
	// even though each individual message fits (the sender-side check
	// only rejects single messages that could never fit).
	ReassemblyBudget int
	// Procs, when positive, asks for a multi-process cluster of that
	// many spawned worker OS processes instead of in-process
	// goroutines. The operators in this package ignore it (they are
	// the in-process engine both runtimes share); the repro facade
	// routes a positive Procs to internal/dist/proc. It lives here so
	// one Config describes a run completely — including in the
	// run-config digest of the join handshake.
	Procs int

	// Trace, when non-nil, receives the root node's per-hop digests
	// during a GROUP BY run: "shuffle" (an order-invariant FNV-64a
	// fold over the complete shuffle payloads the root received),
	// then "gather" (the same fold over the gather payloads). The
	// serving layer threads a per-query trace through here, which is
	// what localizes a cross-backend divergence to the first hop
	// whose digest disagrees. Called from the root node's protocol
	// goroutine; implementations must be safe for that. It does not
	// enter the run-config digest (it is host-local observability,
	// not cluster configuration).
	Trace func(hop string, digest uint64)

	gate *sendGate // test hook forcing a global send order
}

// Validate rejects Config values that could only fail later and deeper:
// negative chunk payloads, reassembly budgets, process-cluster sizes,
// and straggler deadlines (zero means "default", negative is always a
// bug — the facade also maps an explicit non-positive option argument
// here), plus fault plans with out-of-range probabilities or negative
// delays. Every rejection is an ErrConfig naming the option, so the
// failure stays at the call that made the mistake instead of inside a
// spawned run.
func (c Config) Validate() error {
	if c.MaxChunkPayload < 0 {
		return fmt.Errorf("%w: max chunk payload must be a positive byte count (WithMaxChunkPayload requires bytes >= 1)", ErrConfig)
	}
	if c.ReassemblyBudget < 0 {
		return fmt.Errorf("%w: reassembly budget must be a positive byte count (WithReassemblyBudget requires bytes >= 1)", ErrConfig)
	}
	if c.Procs < 0 {
		return fmt.Errorf("%w: process cluster size must be >= 1 worker process (WithProcessCluster requires procs >= 1)", ErrConfig)
	}
	if c.ChildDeadline < 0 {
		return fmt.Errorf("%w: straggler deadline must be a positive duration (WithStragglerDeadline requires d > 0, got %v)", ErrConfig, c.ChildDeadline)
	}
	if f := c.Faults; f != nil {
		if f.DropProb < 0 || f.DropProb > 1 || f.DupProb < 0 || f.DupProb > 1 {
			return fmt.Errorf("%w: fault probabilities must be in [0, 1] (WithFaults: DropProb %v, DupProb %v)", ErrConfig, f.DropProb, f.DupProb)
		}
		if f.MaxDelay < 0 || f.RetryDelay < 0 || f.MaxDrops < 0 {
			return fmt.Errorf("%w: fault delays and drop caps must be >= 0 (WithFaults: MaxDelay %v, RetryDelay %v, MaxDrops %d)", ErrConfig, f.MaxDelay, f.RetryDelay, f.MaxDrops)
		}
	}
	return nil
}

func (c Config) childDeadline() time.Duration {
	if c.ChildDeadline <= 0 {
		return time.Second
	}
	return c.ChildDeadline
}

func (c Config) maxResend() int {
	if c.MaxResend < 0 {
		return math.MaxInt // never give up; genuine hangs fall to the caller's deadline
	}
	if c.MaxResend == 0 {
		return 25
	}
	return c.MaxResend
}

func (c Config) chunkPayload() int {
	if c.MaxChunkPayload <= 0 || c.MaxChunkPayload > MaxFramePayload {
		return DefaultChunkPayload
	}
	return c.MaxChunkPayload
}

func (c Config) reassemblyBudget() int {
	if c.ReassemblyBudget <= 0 {
		return DefaultReassemblyBudget
	}
	return c.ReassemblyBudget
}

// maxMessage is the largest logical payload this configuration can
// move: the reassembly budget, or the per-message chunk-count bound
// times the chunk payload, whichever is smaller. Senders check against
// it before transmitting, so a payload no receiver could ever accept
// fails deterministically and identically on every transport (over TCP
// the receiver's decoder would otherwise reject every chunk and the
// re-request loop would spin until ErrStraggler — or forever under
// MaxResend < 0).
func (c Config) maxMessage() int {
	budget := c.reassemblyBudget()
	// The product is computed in int64: on 32-bit platforms the default
	// 16 MiB chunk payload times the 2^20 chunk-count bound overflows
	// int and would wrongly clamp maxMessage to garbage.
	if limit := int64(c.chunkPayload()) * MaxChunksPerMessage; limit < int64(budget) {
		return int(limit)
	}
	return budget
}

// transport builds the configured interconnect, applying the fault
// decorator if requested.
func (c Config) transport(n int) (Transport, error) {
	factory := c.NewTransport
	if factory == nil {
		factory = ChanTransportFactory
	}
	tr, err := factory(n)
	if err != nil {
		return nil, err
	}
	if tr.Nodes() != n {
		tr.Close()
		return nil, fmt.Errorf("dist: transport has %d nodes, cluster needs %d", tr.Nodes(), n)
	}
	if c.Faults != nil && c.Faults.active() {
		return NewFaultTransport(tr, *c.Faults), nil
	}
	return tr, nil
}

// sendGate serializes sends into a prescribed global order. Tests use
// it to force specific message arrival orders; a nil gate lets senders
// race freely (the production configuration). Each node occupies one
// slot in order and may perform all of its sends during that slot.
type sendGate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	order []int
	next  int
}

func newSendGate(order []int) *sendGate {
	g := &sendGate{order: order}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// wait blocks until it is id's turn to send.
func (g *sendGate) wait(id int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	for g.next < len(g.order) && g.order[g.next] != id {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// done releases the next sender in the prescribed order.
func (g *sendGate) done() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.next++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// childrenOf lists the nodes that ship their partial to id — the nodes
// whose parent is id.
func childrenOf(topo Topology, id, n int) []int {
	var kids []int
	for c := 1; c < n; c++ {
		if topo.parent(c, n) == id {
			kids = append(kids, c)
		}
	}
	return kids
}

// result is the local handoff from the root node to the caller.
type result struct {
	payload []byte
	groups  []Group
	err     error
}

// Reduce computes the reproducible global SUM over a sharded input:
// shards[i] is the slice of values held by cluster node i. Each node
// sums its shard locally with the given number of parallel workers,
// then the partials are reduced over the given topology, traveling
// between nodes as canonical binary encodings. The result is
// bit-identical for every shard assignment of the same multiset of
// values, every cluster size, every topology, every worker count, and
// every message arrival order.
func Reduce(shards [][]float64, workers int, topo Topology) (float64, error) {
	return ReduceConfig(shards, workers, topo, Config{})
}

// ReduceConfig is Reduce over an explicitly configured interconnect —
// in-process channels, TCP sockets on loopback, or either wrapped in
// the fault-injection decorator. The returned bits are identical across
// every configuration: reproducibility comes from the canonical state
// algebra, not from transport behavior.
func ReduceConfig(shards [][]float64, workers int, topo Topology, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	n := len(shards)
	if n == 0 {
		return 0, ErrNoShards
	}
	if workers < 1 {
		return 0, fmt.Errorf("%w (got %d)", ErrWorkers, workers)
	}
	if !topo.valid() {
		return 0, fmt.Errorf("%w (got %d)", ErrTopology, int(topo))
	}
	tr, err := cfg.transport(n)
	if err != nil {
		return 0, err
	}
	defer tr.Close()

	root := make(chan result, 1)
	for id := 0; id < n; id++ {
		go func(id int) {
			payload, err := RunReduceNode(id, shards[id], workers, topo, tr, cfg)
			if topo.parent(id, n) < 0 {
				root <- result{payload: payload, err: err}
			}
		}(id)
	}

	m := <-root
	if m.err != nil {
		return 0, m.err
	}
	var final rsum.State64
	if err := final.UnmarshalBinary(m.payload); err != nil {
		return 0, err
	}
	return final.Value(), nil
}

// RunReduceNode executes node id's role of the reduction tree over an
// externally owned transport: sum the local shard, fold children's
// partials in arrival order (reassembled from chunk streams,
// deduplicated, with a straggler deadline per fan-in round), then ship
// the merged partial to the parent — and keep serving retransmission
// requests, chunk by chunk, until the caller closes the transport.
//
// The root returns the final canonical state encoding as soon as every
// child has reported (its role ends there: the root sends nothing, so
// there is nothing for it to retransmit). Every other node returns only
// after the transport is closed underneath it, with the error its role
// ended in (already announced to its parent as a KindError) — nil for a
// clean run. Exported for runtimes that place each node in its own OS
// process (internal/dist/proc); ReduceConfig runs the same function on
// one goroutine per node.
func RunReduceNode(id int, shard []float64, workers int, topo Topology, tr Transport, cfg Config) ([]byte, error) {
	acc := localPartial(shard, workers)
	kids := childrenOf(topo, id, tr.Nodes())

	var nodeErr error
	asm := newReassembler(cfg.reassemblyBudget())
	heard := make(map[int]bool, len(kids))
	resends := 0
	for len(heard) < len(kids) && nodeErr == nil {
		f, err := tr.Recv(id, cfg.childDeadline())
		switch {
		case errors.Is(err, ErrTimeout):
			// Straggler handling: re-request every child not heard from
			// yet — just the missing chunks of a partially received
			// stream, the whole stream otherwise. Duplicates are
			// absorbed by the reassembler, so racing with an in-flight
			// original is safe, and re-request send failures are
			// tolerated (the next round retries, a closed transport
			// surfaces through Recv).
			if resends >= cfg.maxResend() {
				nodeErr = fmt.Errorf("%w (node %d waiting on %d of %d children)",
					ErrStraggler, id, len(kids)-len(heard), len(kids))
				break
			}
			resends++
			for _, c := range kids {
				if !heard[c] {
					requestMissing(tr, asm, id, c, 0)
				}
			}
		case err != nil:
			nodeErr = err // transport closed underneath an unfinished protocol
		case f.Kind == KindResend:
			// Our parent is impatient, but the partial is not ready yet;
			// the eventual first send will satisfy it.
		default:
			msg, complete, fresh, aerr := asm.accept(f)
			if fresh {
				resends = 0 // progress: the give-up budget is for silence, not slowness
			}
			switch {
			case aerr != nil:
				nodeErr = fmt.Errorf("dist: node %d reassembling from node %d: %w", id, f.From, aerr)
			case !complete:
				// Chunk buffered (or duplicate absorbed); keep collecting.
			case msg.Kind == KindError:
				heard[msg.From] = true
				nodeErr = decodeErr(msg.From, msg.Payload)
			case msg.Kind == KindPartial:
				heard[msg.From] = true
				if e := acc.MergeBinary(msg.Payload); e != nil {
					nodeErr = fmt.Errorf("dist: node %d merging partial from node %d: %w", id, msg.From, e)
				}
			default:
				// Unknown-but-valid kinds are ignored for forward compatibility.
			}
		}
	}

	out := Frame{Kind: KindPartial, From: id}
	if nodeErr == nil {
		out.Payload, nodeErr = acc.MarshalBinary()
	}
	if nodeErr == nil && len(out.Payload) > cfg.maxMessage() {
		// Unreachable for real states (a partial is ~52 bytes) but kept
		// for symmetry with the shuffle: no sender may emit a message
		// its receiver could never reassemble.
		nodeErr = fmt.Errorf("%w: partial from node %d is %d bytes (max message %d)",
			ErrChunkBudget, id, len(out.Payload), cfg.maxMessage())
	}
	if nodeErr != nil {
		out = Frame{Kind: KindError, From: id, Payload: encodeErr(nodeErr)}
	}

	p := topo.parent(id, tr.Nodes())
	if p < 0 {
		if nodeErr != nil {
			return nil, nodeErr
		}
		return out.Payload, nil
	}

	out.To = p
	outChunks := splitFrame(out, cfg.chunkPayload())
	cfg.gate.wait(id)
	// A failed send is tolerated, not fatal: the parent's deadline
	// re-requests the missing chunks and the retransmission below
	// retries (over TCP, on a freshly dialed connection).
	sendChunks(tr, outChunks)
	cfg.gate.done()

	// Serve straggler re-requests from the cached chunk list until the
	// coordinator closes the transport — a request for one lost chunk
	// retransmits one chunk, not the whole partial. Send failures are
	// transient by assumption (the next re-request retries); Recv
	// failing means the transport is gone and the node's work is over.
	for {
		f, err := tr.Recv(id, 0)
		if err != nil {
			return nil, nodeErr
		}
		if f.Kind == KindResend && f.From == p {
			serveResend(tr, outChunks, f)
		}
	}
}

// localPartial sums one shard into a partial state using workers
// parallel goroutines. The result is bit-identical for every worker
// count: each worker sums a contiguous chunk (the state is independent
// of chunking) and the per-worker states merge order-independently.
func localPartial(shard []float64, workers int) rsum.State64 {
	acc := rsum.NewState64(levels)
	if workers == 1 || len(shard) < 2*workers {
		acc.AddSliceVec(shard)
		return acc
	}
	parts := make([]rsum.State64, workers)
	var wg sync.WaitGroup
	chunk := (len(shard) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		parts[w] = rsum.NewState64(levels)
		lo, hi := w*chunk, min((w+1)*chunk, len(shard))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w].AddSliceVec(shard[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range parts {
		acc.Merge(&parts[w])
	}
	return acc
}
