package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rsum"
)

// levels is the summation accuracy level used by the distributed
// operators. All nodes must agree on L for partial states to merge;
// the canonical encoding carries L, and MergeBinary rejects mismatches.
const levels = core.DefaultLevels

// Config selects the interconnect and failure handling of the
// distributed operators. The zero value reproduces the classic
// configuration: in-process channels, no injected faults, and a patient
// straggler deadline.
type Config struct {
	// NewTransport builds the interconnect for an n-node cluster
	// (default ChanTransportFactory). The operation owns the transport
	// and closes it on completion.
	NewTransport TransportFactory
	// Faults, when non-nil and active, wraps the transport in a
	// fault-injection decorator (see FaultPlan).
	Faults *FaultPlan
	// ChildDeadline is how long a parent in the reduction tree waits
	// for a child's partial before re-requesting it (straggler
	// handling; default 1s). Spurious re-requests are harmless: frames
	// are deduplicated by (from, seq).
	ChildDeadline time.Duration
	// MaxResend caps a node's consecutive silent deadline rounds: after
	// this many Recv timeouts in a row with no frame consumed (each
	// followed by a re-request to every still-missing peer), the
	// operation gives up with ErrStraggler. Any progress resets the
	// budget — it measures silence, not slowness. 0 means the default
	// of 25; a negative value disables the give-up entirely.
	MaxResend int

	gate *sendGate // test hook forcing a global send order
}

func (c Config) childDeadline() time.Duration {
	if c.ChildDeadline <= 0 {
		return time.Second
	}
	return c.ChildDeadline
}

func (c Config) maxResend() int {
	if c.MaxResend < 0 {
		return math.MaxInt // never give up; genuine hangs fall to the caller's deadline
	}
	if c.MaxResend == 0 {
		return 25
	}
	return c.MaxResend
}

// transport builds the configured interconnect, applying the fault
// decorator if requested.
func (c Config) transport(n int) (Transport, error) {
	factory := c.NewTransport
	if factory == nil {
		factory = ChanTransportFactory
	}
	tr, err := factory(n)
	if err != nil {
		return nil, err
	}
	if tr.Nodes() != n {
		tr.Close()
		return nil, fmt.Errorf("dist: transport has %d nodes, cluster needs %d", tr.Nodes(), n)
	}
	if c.Faults != nil && c.Faults.active() {
		return NewFaultTransport(tr, *c.Faults), nil
	}
	return tr, nil
}

// sendGate serializes sends into a prescribed global order. Tests use
// it to force specific message arrival orders; a nil gate lets senders
// race freely (the production configuration). Each node occupies one
// slot in order and may perform all of its sends during that slot.
type sendGate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	order []int
	next  int
}

func newSendGate(order []int) *sendGate {
	g := &sendGate{order: order}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// wait blocks until it is id's turn to send.
func (g *sendGate) wait(id int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	for g.next < len(g.order) && g.order[g.next] != id {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// done releases the next sender in the prescribed order.
func (g *sendGate) done() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.next++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// childrenOf lists the nodes that ship their partial to id — the nodes
// whose parent is id.
func childrenOf(topo Topology, id, n int) []int {
	var kids []int
	for c := 1; c < n; c++ {
		if topo.parent(c, n) == id {
			kids = append(kids, c)
		}
	}
	return kids
}

// result is the local handoff from the root node to the caller.
type result struct {
	payload []byte
	groups  []Group
	err     error
}

// Reduce computes the reproducible global SUM over a sharded input:
// shards[i] is the slice of values held by cluster node i. Each node
// sums its shard locally with the given number of parallel workers,
// then the partials are reduced over the given topology, traveling
// between nodes as canonical binary encodings. The result is
// bit-identical for every shard assignment of the same multiset of
// values, every cluster size, every topology, every worker count, and
// every message arrival order.
func Reduce(shards [][]float64, workers int, topo Topology) (float64, error) {
	return ReduceConfig(shards, workers, topo, Config{})
}

// ReduceConfig is Reduce over an explicitly configured interconnect —
// in-process channels, TCP sockets on loopback, or either wrapped in
// the fault-injection decorator. The returned bits are identical across
// every configuration: reproducibility comes from the canonical state
// algebra, not from transport behavior.
func ReduceConfig(shards [][]float64, workers int, topo Topology, cfg Config) (float64, error) {
	n := len(shards)
	if n == 0 {
		return 0, ErrNoShards
	}
	if workers < 1 {
		return 0, fmt.Errorf("%w (got %d)", ErrWorkers, workers)
	}
	if !topo.valid() {
		return 0, fmt.Errorf("%w (got %d)", ErrTopology, int(topo))
	}
	tr, err := cfg.transport(n)
	if err != nil {
		return 0, err
	}
	defer tr.Close()

	root := make(chan result, 1)
	for id := 0; id < n; id++ {
		go reduceNode(id, shards[id], workers, topo, tr, cfg, root)
	}

	m := <-root
	if m.err != nil {
		return 0, m.err
	}
	var final rsum.State64
	if err := final.UnmarshalBinary(m.payload); err != nil {
		return 0, err
	}
	return final.Value(), nil
}

// reduceNode is the per-node protocol of the reduction tree: sum the
// local shard, fold children's partials in arrival order (deduplicated,
// with a straggler deadline per fan-in round), then ship the merged
// partial to the parent — and keep serving retransmission requests
// until the coordinator tears the transport down.
func reduceNode(id int, shard []float64, workers int, topo Topology, tr Transport, cfg Config, rootCh chan<- result) {
	acc := localPartial(shard, workers)
	kids := childrenOf(topo, id, tr.Nodes())

	var nodeErr error
	seen := make(dedup)
	heard := make(map[int]bool, len(kids))
	resends := 0
	for len(heard) < len(kids) && nodeErr == nil {
		f, err := tr.Recv(id, cfg.childDeadline())
		switch {
		case errors.Is(err, ErrTimeout):
			// Straggler handling: re-request the partial of every child
			// not heard from yet. Duplicates are filtered by seen, so
			// racing with an in-flight original is safe.
			if resends >= cfg.maxResend() {
				nodeErr = fmt.Errorf("%w (node %d waiting on %d of %d children)",
					ErrStraggler, id, len(kids)-len(heard), len(kids))
				break
			}
			resends++
			for _, c := range kids {
				if !heard[c] {
					// Tolerate re-request send failures: the next
					// deadline round retries, and a closed transport
					// surfaces through Recv.
					_ = tr.Send(Frame{Kind: KindResend, From: id, To: c})
				}
			}
		case err != nil:
			nodeErr = err // transport closed underneath an unfinished protocol
		case f.Kind == KindResend:
			// Our parent is impatient, but the partial is not ready yet;
			// the eventual first send will satisfy it.
		case seen.seen(f):
			// Duplicate delivery or already-answered retransmission.
		case f.Kind == KindError:
			heard[f.From] = true
			resends = 0 // progress: the give-up budget is for silence, not slowness
			nodeErr = decodeErr(f.From, f.Payload)
		case f.Kind == KindPartial:
			heard[f.From] = true
			resends = 0
			if e := acc.MergeBinary(f.Payload); e != nil {
				nodeErr = fmt.Errorf("dist: node %d merging partial from node %d: %w", id, f.From, e)
			}
		default:
			// Unknown-but-valid kinds are ignored for forward compatibility.
		}
	}

	out := Frame{Kind: KindPartial, From: id}
	if nodeErr == nil {
		out.Payload, nodeErr = acc.MarshalBinary()
	}
	if nodeErr != nil {
		out = Frame{Kind: KindError, From: id, Payload: encodeErr(nodeErr)}
	}

	p := topo.parent(id, tr.Nodes())
	if p < 0 {
		if nodeErr != nil {
			rootCh <- result{err: nodeErr}
		} else {
			rootCh <- result{payload: out.Payload}
		}
		return
	}

	out.To = p
	cfg.gate.wait(id)
	// A failed send is tolerated, not fatal: the parent's deadline
	// re-requests the partial and the retransmission below retries
	// (over TCP, on a freshly dialed connection).
	_ = tr.Send(out)
	cfg.gate.done()

	// Serve straggler re-requests with the cached frame until the
	// coordinator closes the transport. Send failures are transient by
	// assumption (the next re-request retries); Recv failing means the
	// transport is gone and the node's work is over.
	for {
		f, err := tr.Recv(id, 0)
		if err != nil {
			return
		}
		if f.Kind == KindResend && f.From == p {
			_ = tr.Send(out)
		}
	}
}

// localPartial sums one shard into a partial state using workers
// parallel goroutines. The result is bit-identical for every worker
// count: each worker sums a contiguous chunk (the state is independent
// of chunking) and the per-worker states merge order-independently.
func localPartial(shard []float64, workers int) rsum.State64 {
	acc := rsum.NewState64(levels)
	if workers == 1 || len(shard) < 2*workers {
		acc.AddSliceVec(shard)
		return acc
	}
	parts := make([]rsum.State64, workers)
	var wg sync.WaitGroup
	chunk := (len(shard) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		parts[w] = rsum.NewState64(levels)
		lo, hi := w*chunk, min((w+1)*chunk, len(shard))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w].AddSliceVec(shard[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range parts {
		acc.Merge(&parts[w])
	}
	return acc
}
