package dist

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/rsum"
)

// levels is the summation accuracy level used by the distributed
// operators. All nodes must agree on L for partial states to merge;
// the canonical encoding carries L, and MergeBinary rejects mismatches.
const levels = core.DefaultLevels

// message is one hop of the simulated interconnect: a serialized
// partial state (or, for the GROUP BY shuffle, a frame of per-key
// states) traveling from one node to another. err propagates a node
// failure downstream so the reduction aborts instead of deadlocking.
type message struct {
	from    int
	payload []byte
	err     error
}

// sendGate serializes sends into a prescribed global order. Tests use
// it to force specific message arrival orders; a nil gate lets senders
// race freely (the production configuration). Each node occupies one
// slot in order and may perform all of its sends during that slot.
type sendGate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	order []int
	next  int
}

func newSendGate(order []int) *sendGate {
	g := &sendGate{order: order}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// wait blocks until it is id's turn to send.
func (g *sendGate) wait(id int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	for g.next < len(g.order) && g.order[g.next] != id {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// done releases the next sender in the prescribed order.
func (g *sendGate) done() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.next++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Reduce computes the reproducible global SUM over a sharded input:
// shards[i] is the slice of values held by cluster node i. Each node
// sums its shard locally with the given number of parallel workers,
// then the partials are reduced over the given topology, traveling
// between nodes as canonical binary encodings. The result is
// bit-identical for every shard assignment of the same multiset of
// values, every cluster size, every topology, every worker count, and
// every message arrival order.
func Reduce(shards [][]float64, workers int, topo Topology) (float64, error) {
	return reduce(shards, workers, topo, nil)
}

// reduce is Reduce with an optional test gate forcing send order.
func reduce(shards [][]float64, workers int, topo Topology, gate *sendGate) (float64, error) {
	n := len(shards)
	if n == 0 {
		return 0, ErrNoShards
	}
	if workers < 1 {
		return 0, fmt.Errorf("%w (got %d)", ErrWorkers, workers)
	}
	if !topo.valid() {
		return 0, fmt.Errorf("%w (got %d)", ErrTopology, int(topo))
	}

	// Inboxes are buffered to each node's expected fan-in, so a send
	// never blocks and any topological send order is admissible.
	inboxes := make([]chan message, n)
	for id := range inboxes {
		inboxes[id] = make(chan message, topo.children(id, n))
	}
	root := make(chan message, 1)

	for id := 0; id < n; id++ {
		go func(id int) {
			acc := localPartial(shards[id], workers)
			var err error
			for i := 0; i < topo.children(id, n); i++ {
				m := <-inboxes[id]
				if err != nil {
					continue // already failed; drain remaining fan-in
				}
				if m.err != nil {
					err = m.err
					continue
				}
				if e := acc.MergeBinary(m.payload); e != nil {
					err = fmt.Errorf("dist: node %d merging partial from node %d: %w", id, m.from, e)
				}
			}
			out := message{from: id, err: err}
			if err == nil {
				out.payload, out.err = acc.MarshalBinary()
			}
			if p := topo.parent(id, n); p >= 0 {
				gate.wait(id)
				inboxes[p] <- out
				gate.done()
			} else {
				root <- out
			}
		}(id)
	}

	m := <-root
	if m.err != nil {
		return 0, m.err
	}
	var final rsum.State64
	if err := final.UnmarshalBinary(m.payload); err != nil {
		return 0, err
	}
	return final.Value(), nil
}

// localPartial sums one shard into a partial state using workers
// parallel goroutines. The result is bit-identical for every worker
// count: each worker sums a contiguous chunk (the state is independent
// of chunking) and the per-worker states merge order-independently.
func localPartial(shard []float64, workers int) rsum.State64 {
	acc := rsum.NewState64(levels)
	if workers == 1 || len(shard) < 2*workers {
		acc.AddSliceVec(shard)
		return acc
	}
	parts := make([]rsum.State64, workers)
	var wg sync.WaitGroup
	chunk := (len(shard) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		parts[w] = rsum.NewState64(levels)
		lo, hi := w*chunk, min((w+1)*chunk, len(shard))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w].AddSliceVec(shard[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range parts {
		acc.Merge(&parts[w])
	}
	return acc
}
