// Package dist implements reproducible aggregation across a simulated
// cluster — the MIMD setting the summation algorithm was designed for
// (paper §III-D: local summation per process, then a global reduce of
// partial states, as in an MPI_Reduce).
//
// The cluster is simulated with one goroutine per node and Go channels
// as the interconnect. Each node computes a local rsum.State64 partial
// over its shard, serializes it with the canonical wire format of
// internal/rsum (MarshalBinary), and ships the bytes to its parent in
// the reduction tree. Receivers fold incoming encodings into their own
// partial strictly in arrival order — which is deliberately
// nondeterministic, since concurrent senders race into the parent's
// inbox. Reproducibility does not come from ordering the network; it
// comes from the algebra: state merging is associative and commutative
// at the bit level, and the encoding is canonical. The finalized result
// is therefore bit-identical for every cluster size, every reduction
// topology (Binomial, Chain, Star), every per-node worker count, and
// every message arrival order.
//
// AggregateByKey extends the same guarantee to distributed GROUP BY: a
// radix hash shuffle (built on internal/partition) routes every key to
// a unique owner node, senders pre-aggregate locally into per-key
// partial states (a combiner), and owners merge the shipped states in
// arrival order before a final gather at the root.
package dist

import (
	"errors"
	"fmt"
)

// Topology selects the shape of the global reduction tree. All
// topologies produce bit-identical results; they differ only in the
// communication pattern (depth and fan-in), exactly as an MPI
// implementation may pick different reduction trees per message size
// and cluster size without affecting the reproducible result.
type Topology int

const (
	// Binomial is the binomial reduction tree used by classic
	// MPI_Reduce implementations: ⌈log2 n⌉ rounds, node i sends to
	// i − 2^k where 2^k is i's lowest set bit.
	Binomial Topology = iota
	// Chain is a linear pipeline: node n−1 → n−2 → … → 0.
	Chain
	// Star ships every partial directly to the root, which merges
	// them in (nondeterministic) arrival order.
	Star
)

// String returns the topology name ("binomial", "chain", "star").
func (t Topology) String() string {
	switch t {
	case Binomial:
		return "binomial"
	case Chain:
		return "chain"
	case Star:
		return "star"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

func (t Topology) valid() bool { return t >= Binomial && t <= Star }

// parent returns the node that id ships its merged partial to, or −1
// for the root (node 0).
func (t Topology) parent(id, n int) int {
	if id == 0 {
		return -1
	}
	switch t {
	case Binomial:
		return id &^ (id & -id) // clear the lowest set bit
	case Chain:
		return id - 1
	default: // Star
		return 0
	}
}

// children returns how many messages node id will receive during the
// reduction. Together with parent this fully defines the tree; nodes
// merge their children's partials in arrival order, not round order,
// so even the Binomial tree has genuinely racy arrivals at each node.
func (t Topology) children(id, n int) int {
	switch t {
	case Binomial:
		c := 0
		for step := 1; step < n; step <<= 1 {
			if id&step != 0 {
				break // bits below id's lowest set bit index its parents, not children
			}
			if id+step < n {
				c++
			}
		}
		return c
	case Chain:
		if id < n-1 {
			return 1
		}
		return 0
	default: // Star
		if id == 0 {
			return n - 1
		}
		return 0
	}
}

// Group is one row of a distributed GROUP BY result.
type Group struct {
	Key uint32
	Sum float64
}

var (
	// ErrNoShards is returned when the cluster has zero nodes.
	ErrNoShards = errors.New("dist: need at least one shard (cluster node)")
	// ErrWorkers is returned for non-positive per-node worker counts.
	ErrWorkers = errors.New("dist: worker count must be ≥ 1")
	// ErrTopology is returned for an unknown Topology value.
	ErrTopology = errors.New("dist: unknown topology")
	// ErrShardMismatch is returned when key and value shards disagree
	// in shape.
	ErrShardMismatch = errors.New("dist: key and value shards must have matching shapes")
)
