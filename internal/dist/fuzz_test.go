package dist

import (
	"bytes"
	"testing"

	"repro/internal/rsum"
)

// FuzzFrameDecode: arbitrary wire bytes must never panic the frame
// decoder, never over-consume the buffer, and anything the decoder
// accepts must re-encode to exactly the consumed bytes (the codec is
// canonical). The seed corpus holds valid frames — including one
// carrying a real marshaled summation state — plus bit-flipped and
// truncated mutations, mirroring line corruption.
func FuzzFrameDecode(f *testing.F) {
	s := rsum.NewState64(2)
	s.AddSlice([]float64{1.5, -2.25, 1e300, -1e300, 0x1p-1060})
	enc, _ := s.MarshalBinary()

	seeds := [][]byte{
		EncodeFrame(Frame{Kind: KindPartial, From: 3, To: 0, Chunks: 1, Payload: enc}),
		EncodeFrame(Frame{Kind: KindGroups, From: 0, To: 1, Seq: seqShuffle, Chunks: 1}),
		EncodeFrame(Frame{Kind: KindGather, From: 2, To: 0, Seq: seqGather, Chunks: 1, Payload: []byte{1, 2, 3}}),
		EncodeFrame(Frame{Kind: KindGroups, From: 2, To: 0, Seq: seqShuffle, Chunk: 1, Chunks: 3, Payload: []byte{9, 9}}),
		EncodeFrame(Frame{Kind: KindResend, From: 1, To: 2}),
		EncodeFrame(Frame{Kind: KindResend, From: 1, To: 2, Chunk: 7, Chunks: 1}),
		EncodeFrame(Frame{Kind: KindError, From: 1, To: 0, Chunks: 1, Payload: []byte("boom")}),
		{},
	}
	for _, sd := range seeds {
		f.Add(sd)
		if len(sd) > 0 {
			for _, bit := range []int{0, 17, 8 * 3, 8*16 + 1, 8*len(sd) - 1} {
				if bit/8 < len(sd) {
					mut := append([]byte(nil), sd...)
					mut[bit/8] ^= 1 << (bit % 8)
					f.Add(mut)
				}
			}
			f.Add(sd[:len(sd)/2])
			f.Add(append(append([]byte(nil), sd...), sd...)) // two frames back to back
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			// Rejected: ReadFrame over the same bytes must also reject.
			if _, rerr := ReadFrame(bytes.NewReader(data)); rerr == nil {
				t.Fatal("DecodeFrame rejected but ReadFrame accepted")
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Canonical: re-encoding reproduces the consumed bytes exactly.
		if !bytes.Equal(EncodeFrame(fr), data[:n]) {
			t.Fatal("accepted frame does not re-encode to its wire bytes")
		}
		// Stream reader must agree with the slice decoder.
		sf, serr := ReadFrame(bytes.NewReader(data))
		if serr != nil {
			t.Fatalf("DecodeFrame accepted but ReadFrame failed: %v", serr)
		}
		if sf.Kind != fr.Kind || sf.From != fr.From || sf.To != fr.To ||
			sf.Seq != fr.Seq || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatal("ReadFrame and DecodeFrame disagree")
		}
		// A payload that claims to be a partial state must never panic
		// or corrupt an accumulator, even if the frame header was valid.
		if fr.Kind == KindPartial {
			acc := rsum.NewState64(2)
			acc.Add(42.5)
			before := acc
			if err := acc.MergeBinary(fr.Payload); err != nil {
				if !acc.Equal(&before) {
					t.Fatal("failed MergeBinary mutated the accumulator")
				}
			} else {
				_ = acc.Value()
			}
		}
	})
}

// FuzzChunkReassembly: arbitrary chunk sequences — malformed,
// duplicated, truncated, reordered, shape-shifting mid-stream — must
// never panic the reassembler, never complete a message twice, and
// never yield a short or wrong payload silently: every completed
// message is checked against an independent first-wins ledger of the
// chunks that were actually fed. The input is a wire byte stream (so
// the corpus composes with FuzzFrameDecode's bit-flip mutations), and
// when the stream ends the same bytes are round-tripped through
// splitFrame under reversal and duplication, which must reassemble to
// exactly the input.
func FuzzChunkReassembly(f *testing.F) {
	s := rsum.NewState64(2)
	s.AddSlice([]float64{1.5, -2.25, 1e300, -1e300, 0x1p-1060})
	enc, _ := s.MarshalBinary()

	stream := func(frames ...Frame) []byte {
		var b []byte
		for _, fr := range frames {
			b = AppendFrame(b, fr)
		}
		return b
	}
	threeChunks := splitFrame(Frame{Kind: KindPartial, From: 2, To: 0, Seq: 0, Payload: enc}, (len(enc)+2)/3)
	seeds := [][]byte{
		stream(threeChunks...),                                 // in order
		stream(threeChunks[2], threeChunks[0], threeChunks[1]), // out of order
		stream(threeChunks[0], threeChunks[0], threeChunks[1]), // duplicated, truncated
		stream(threeChunks[1]),                                 // lone middle chunk
		stream( // stream changes shape mid-flight
			Frame{Kind: KindGroups, From: 1, To: 0, Seq: 0, Chunk: 0, Chunks: 3, Payload: []byte("ab")},
			Frame{Kind: KindGroups, From: 1, To: 0, Seq: 0, Chunk: 1, Chunks: 4, Payload: []byte("cd")},
			Frame{Kind: KindGather, From: 1, To: 0, Seq: 0, Chunk: 1, Chunks: 3, Payload: []byte("ef")}),
		stream( // empty chunk of a multi-chunk message
			Frame{Kind: KindGroups, From: 3, To: 0, Seq: 0, Chunk: 0, Chunks: 2}),
		{},
	}
	for _, sd := range seeds {
		f.Add(sd)
		if len(sd) > 0 {
			for _, bit := range []int{8 * 3, 8 * 16, 8 * 20, 8*24 + 2} {
				if bit/8 < len(sd) {
					mut := append([]byte(nil), sd...)
					mut[bit/8] ^= 1 << (bit % 8)
					f.Add(mut)
				}
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Part 1: feed whatever frames the bytes decode to, checking
		// every completion against an independent ledger. Streams can
		// declare buffers (stride × chunk count) beyond what the fed
		// bytes deliver, so the budget — which charges whole declared
		// buffers at allocation — may reject frames; the ledger mirrors
		// any accept error by simply not recording the frame. Budget
		// behavior has its own tests.
		asm := newReassembler(len(data) + 1)
		type ledger struct {
			kind      byte
			total     uint32
			chunks    map[uint32][]byte
			completed bool
		}
		led := make(map[uint64]*ledger)
		rest := data
		for len(rest) > 0 {
			fr, n, err := DecodeFrame(rest)
			if err != nil {
				break
			}
			rest = rest[n:]
			if fr.Kind == KindResend {
				continue // control frame, never reassembled
			}
			msg, complete, _, aerr := asm.accept(fr)

			// Mirror accept's acceptance rules into the ledger.
			key := dedupKey(fr.From, fr.Seq)
			l := led[key]
			switch {
			case aerr != nil:
				if complete {
					t.Fatal("accept returned both a completion and an error")
				}
				continue
			case l != nil && l.completed:
				if complete {
					t.Fatalf("stream (from %d, seq %d) completed twice", fr.From, fr.Seq)
				}
				continue
			case fr.Chunks == 1:
				if !complete || !bytes.Equal(msg.Payload, fr.Payload) {
					t.Fatal("single-chunk message not handed over verbatim")
				}
				led[key] = &ledger{completed: true}
				continue
			}
			if l == nil {
				l = &ledger{kind: fr.Kind, total: fr.Chunks, chunks: make(map[uint32][]byte)}
				led[key] = l
			}
			if _, dup := l.chunks[fr.Chunk]; !dup {
				l.chunks[fr.Chunk] = fr.Payload
			}
			if complete {
				if len(l.chunks) != int(l.total) {
					t.Fatalf("completed with %d of %d chunks", len(l.chunks), l.total)
				}
				var want []byte
				for i := uint32(0); i < l.total; i++ {
					want = append(want, l.chunks[i]...)
				}
				if !bytes.Equal(msg.Payload, want) {
					t.Fatal("completed payload differs from the chunks that were fed")
				}
				l.completed = true
			}
		}

		// Part 2: the same bytes as a logical payload must round-trip
		// through splitFrame → reassembler under reordering and
		// duplication, bit-exactly.
		maxChunk := 1
		if len(data) > 0 {
			maxChunk = int(data[0])%len(data) + 1
		}
		// Keep the split within the per-message chunk-count bound: an
		// input over MaxChunksPerMessage bytes with a tiny chunk size
		// would be (correctly) rejected by the reassembler, which is
		// not what this round-trip measures.
		if minChunk := (len(data) + MaxChunksPerMessage - 1) / MaxChunksPerMessage; maxChunk < minChunk {
			maxChunk = minChunk
		}
		chunks := splitFrame(Frame{Kind: KindGather, From: 7, To: 0, Seq: 1, Payload: data}, maxChunk)
		rt := newReassembler(0)
		var got []byte
		completions := 0
		for i := len(chunks) - 1; i >= 0; i-- { // reversed, every chunk duplicated
			for pass := 0; pass < 2; pass++ {
				msg, complete, _, err := rt.accept(chunks[i])
				if err != nil {
					t.Fatalf("round-trip chunk %d: %v", i, err)
				}
				if complete {
					completions++
					got = msg.Payload
				}
			}
		}
		if completions != 1 {
			t.Fatalf("round-trip completed %d times, want 1", completions)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round-trip payload: %d bytes, want %d", len(got), len(data))
		}
	})
}
