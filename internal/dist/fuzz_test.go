package dist

import (
	"bytes"
	"testing"

	"repro/internal/rsum"
)

// FuzzFrameDecode: arbitrary wire bytes must never panic the frame
// decoder, never over-consume the buffer, and anything the decoder
// accepts must re-encode to exactly the consumed bytes (the codec is
// canonical). The seed corpus holds valid frames — including one
// carrying a real marshaled summation state — plus bit-flipped and
// truncated mutations, mirroring line corruption.
func FuzzFrameDecode(f *testing.F) {
	s := rsum.NewState64(2)
	s.AddSlice([]float64{1.5, -2.25, 1e300, -1e300, 0x1p-1060})
	enc, _ := s.MarshalBinary()

	seeds := [][]byte{
		EncodeFrame(Frame{Kind: KindPartial, From: 3, To: 0, Payload: enc}),
		EncodeFrame(Frame{Kind: KindGroups, From: 0, To: 1, Seq: seqShuffle}),
		EncodeFrame(Frame{Kind: KindGather, From: 2, To: 0, Seq: seqGather, Payload: []byte{1, 2, 3}}),
		EncodeFrame(Frame{Kind: KindResend, From: 1, To: 2}),
		EncodeFrame(Frame{Kind: KindError, From: 1, To: 0, Payload: []byte("boom")}),
		{},
	}
	for _, sd := range seeds {
		f.Add(sd)
		if len(sd) > 0 {
			for _, bit := range []int{0, 17, 8 * 3, 8*16 + 1, 8*len(sd) - 1} {
				if bit/8 < len(sd) {
					mut := append([]byte(nil), sd...)
					mut[bit/8] ^= 1 << (bit % 8)
					f.Add(mut)
				}
			}
			f.Add(sd[:len(sd)/2])
			f.Add(append(append([]byte(nil), sd...), sd...)) // two frames back to back
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			// Rejected: ReadFrame over the same bytes must also reject.
			if _, rerr := ReadFrame(bytes.NewReader(data)); rerr == nil {
				t.Fatal("DecodeFrame rejected but ReadFrame accepted")
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Canonical: re-encoding reproduces the consumed bytes exactly.
		if !bytes.Equal(EncodeFrame(fr), data[:n]) {
			t.Fatal("accepted frame does not re-encode to its wire bytes")
		}
		// Stream reader must agree with the slice decoder.
		sf, serr := ReadFrame(bytes.NewReader(data))
		if serr != nil {
			t.Fatalf("DecodeFrame accepted but ReadFrame failed: %v", serr)
		}
		if sf.Kind != fr.Kind || sf.From != fr.From || sf.To != fr.To ||
			sf.Seq != fr.Seq || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatal("ReadFrame and DecodeFrame disagree")
		}
		// A payload that claims to be a partial state must never panic
		// or corrupt an accumulator, even if the frame header was valid.
		if fr.Kind == KindPartial {
			acc := rsum.NewState64(2)
			acc.Add(42.5)
			before := acc
			if err := acc.MergeBinary(fr.Payload); err != nil {
				if !acc.Equal(&before) {
					t.Fatal("failed MergeBinary mutated the accumulator")
				}
			} else {
				_ = acc.Value()
			}
		}
	})
}
