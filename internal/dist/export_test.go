package dist

import (
	"errors"
	"math"
	"testing"
	"time"
)

// Tests of the exported support surface (export.go) the multi-process
// runtime builds on, and of Config.Validate. The wrappers must behave
// exactly like the internals they wrap — these tests pin that, and
// keep the surface inside the dist coverage gate.

func TestSplitFrameReassemblerRoundTrip(t *testing.T) {
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	f := Frame{Kind: KindGroups, From: 3, To: 1, Seq: 7, Payload: payload}
	chunks := SplitFrame(f, 1024)
	if len(chunks) != 10 {
		t.Fatalf("10000/1024 split into %d chunks, want 10", len(chunks))
	}

	asm := NewReassembler(1 << 20)
	// Deliver out of order: final first, then evens, then odds.
	order := []int{9, 0, 2, 4, 6, 8, 1, 3, 5}
	for _, i := range order {
		if _, complete, fresh, err := asm.Accept(chunks[i]); err != nil || complete || !fresh {
			t.Fatalf("chunk %d: complete=%v fresh=%v err=%v", i, complete, fresh, err)
		}
	}
	if missing := asm.Missing(3, 7); len(missing) != 1 || missing[0] != 7 {
		t.Fatalf("Missing = %v, want [7]", missing)
	}
	msg, complete, fresh, err := asm.Accept(chunks[7])
	if err != nil || !complete || !fresh {
		t.Fatalf("last chunk: complete=%v fresh=%v err=%v", complete, fresh, err)
	}
	if string(msg.Payload) != string(payload) {
		t.Fatal("reassembled payload differs from the original")
	}
	// A retransmission of the completed stream is swallowed.
	if _, complete, fresh, err := asm.Accept(chunks[0]); err != nil || complete || fresh {
		t.Fatalf("post-completion duplicate: complete=%v fresh=%v err=%v", complete, fresh, err)
	}
}

func TestMailboxesExported(t *testing.T) {
	mb := NewMailboxes(2)
	if mb.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", mb.Nodes())
	}
	if err := mb.Deliver(Frame{Kind: KindPartial, To: 1, Chunks: 1, Payload: []byte{1}}); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	batch := []Frame{
		{Kind: KindPartial, To: 1, Seq: 1, Chunks: 1},
		{Kind: KindPartial, To: 1, Seq: 2, Chunks: 1},
	}
	if err := mb.DeliverBatch(batch); err != nil {
		t.Fatalf("DeliverBatch: %v", err)
	}
	for want := 0; want < 3; want++ {
		if _, err := mb.Recv(1, time.Second); err != nil {
			t.Fatalf("Recv %d: %v", want, err)
		}
	}
	if _, err := mb.Recv(1, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("empty Recv: %v, want ErrTimeout", err)
	}
	select {
	case <-mb.Done():
		t.Fatal("Done closed before Shutdown")
	default:
	}
	mb.Shutdown()
	mb.Shutdown() // idempotent
	select {
	case <-mb.Done():
	default:
		t.Fatal("Done not closed after Shutdown")
	}
	if err := mb.Deliver(Frame{To: 0, Chunks: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Deliver after Shutdown: %v, want ErrClosed", err)
	}
	if _, err := mb.Recv(0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after Shutdown: %v, want ErrClosed", err)
	}
}

func TestWireErrorRoundTrip(t *testing.T) {
	for _, sentinel := range []error{ErrStraggler, ErrBadFrame, ErrChunkBudget, ErrHandshake} {
		wrapped := errors.Join(errors.New("context"), sentinel)
		got := DecodeErr(2, EncodeErr(wrapped))
		if !errors.Is(got, sentinel) {
			t.Errorf("sentinel %v lost across the wire: %v", sentinel, got)
		}
	}
	plain := DecodeErr(1, EncodeErr(errors.New("boom")))
	if plain == nil || errors.Is(plain, ErrStraggler) {
		t.Errorf("generic error decoded as %v", plain)
	}
	// Supervisor-originated errors name the supervisor, not a node.
	sup := DecodeErr(-1, EncodeErr(ErrHandshake))
	if got := sup.Error(); !errors.Is(sup, ErrHandshake) || got != "dist: supervisor: "+ErrHandshake.Error() {
		t.Errorf("supervisor error = %q (Is(ErrHandshake)=%v)", got, errors.Is(sup, ErrHandshake))
	}
}

func TestEncodeGroupsRoundTrip(t *testing.T) {
	in := []Group{{Key: 1, Sum: 1.5}, {Key: 9, Sum: math.Inf(-1)}, {Key: 1 << 30, Sum: -0.0}}
	out := DecodeGroups(EncodeGroups(in))
	if len(out) != len(in) {
		t.Fatalf("%d groups, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || math.Float64bits(out[i].Sum) != math.Float64bits(in[i].Sum) {
			t.Fatalf("group %d: %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestFaultPlanActiveAndTopologyValid(t *testing.T) {
	if (FaultPlan{}).Active() {
		t.Error("zero FaultPlan reports active")
	}
	if !(FaultPlan{DropProb: 0.1}).Active() {
		t.Error("dropping plan reports inactive")
	}
	for _, topo := range []Topology{Binomial, Chain, Star} {
		if !topo.Valid() {
			t.Errorf("%v reports invalid", topo)
		}
	}
	if Topology(42).Valid() {
		t.Error("Topology(42) reports valid")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero Config: %v", err)
	}
	ok := Config{MaxChunkPayload: 4096, ReassemblyBudget: 1 << 20, Procs: 3}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid Config: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative chunk payload", Config{MaxChunkPayload: -1}},
		{"negative budget", Config{ReassemblyBudget: -9}},
		{"negative procs", Config{Procs: -2}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: %v, want ErrConfig", tc.name, err)
		}
	}
	// The operators reject an invalid Config before doing anything.
	if _, err := ReduceConfig([][]float64{{1}}, 1, Binomial, Config{Procs: -1}); !errors.Is(err, ErrConfig) {
		t.Errorf("ReduceConfig: %v, want ErrConfig", err)
	}
	if _, err := AggregateByKeyConfig([][]uint32{{1}}, [][]float64{{1}}, 1, Config{MaxChunkPayload: -1}); !errors.Is(err, ErrConfig) {
		t.Errorf("AggregateByKeyConfig: %v, want ErrConfig", err)
	}
}
