package dist

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rsum"
	"repro/internal/workload"
)

// dealRows distributes rows round-robin across nodes shards.
func dealRows(keys []uint32, vals []float64, nodes int) ([][]uint32, [][]float64) {
	lk := make([][]uint32, nodes)
	lv := make([][]float64, nodes)
	for i := range keys {
		d := i % nodes
		lk[d] = append(lk[d], keys[i])
		lv[d] = append(lv[d], vals[i])
	}
	return lk, lv
}

// refGroups computes the ground-truth groups with one sequential state
// per key, in row order.
func refGroups(keys []uint32, vals []float64) map[uint32]uint64 {
	states := make(map[uint32]*rsum.State64)
	for i, k := range keys {
		st, ok := states[k]
		if !ok {
			s := rsum.NewState64(levels)
			states[k] = &s
			st = &s
		}
		st.Add(vals[i])
	}
	out := make(map[uint32]uint64, len(states))
	for k, st := range states {
		out[k] = math.Float64bits(st.Value())
	}
	return out
}

// TestAggregateByKeyBitReproducible: the full group list carries the
// same bits for every cluster size, worker count, and forced shuffle
// send order, and matches a sequential per-key reference.
func TestAggregateByKeyBitReproducible(t *testing.T) {
	const n = 60000
	const ngroups = 1000
	keys := workload.Keys(8, n, ngroups)
	vals := workload.Values64(7, n, workload.MixedMag)
	want := refGroups(keys, vals)

	rng := workload.NewRNG(99)
	for _, nodes := range clusterSizes {
		lk, lv := dealRows(keys, vals, nodes)
		for _, workers := range workerCounts {
			out, err := AggregateByKey(lk, lv, workers)
			if err != nil {
				t.Fatalf("AggregateByKey(%d nodes, %d workers): %v", nodes, workers, err)
			}
			checkGroups(t, out, want, nodes, workers)
		}
		// Forced random sender orders (senders are independent in the
		// shuffle, so any permutation of node ids is admissible).
		for trial := 0; trial < 3; trial++ {
			order := randPerm(rng, nodes)
			out, err := AggregateByKeyConfig(lk, lv, 2, Config{gate: newSendGate(order)})
			if err != nil {
				t.Fatalf("gated AggregateByKey(%d nodes): %v", nodes, err)
			}
			checkGroups(t, out, want, nodes, 2)
		}
	}
}

func checkGroups(t *testing.T, out []Group, want map[uint32]uint64, nodes, workers int) {
	t.Helper()
	if len(out) != len(want) {
		t.Fatalf("%d nodes, %d workers: %d groups, want %d", nodes, workers, len(out), len(want))
	}
	for i, g := range out {
		if i > 0 && out[i-1].Key >= g.Key {
			t.Fatalf("%d nodes: output not strictly sorted by key at %d", nodes, i)
		}
		wantBits, ok := want[g.Key]
		if !ok {
			t.Fatalf("%d nodes: unexpected group %d", nodes, g.Key)
		}
		if got := math.Float64bits(g.Sum); got != wantBits {
			t.Fatalf("%d nodes, %d workers: group %d = %016x, want %016x",
				nodes, workers, g.Key, got, wantBits)
		}
	}
}

// randPerm returns a Fisher–Yates permutation of [0, n).
func randPerm(rng *workload.RNG, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// TestAggregateByKeyErrors covers the validated error paths.
func TestAggregateByKeyErrors(t *testing.T) {
	if _, err := AggregateByKey(nil, nil, 1); !errors.Is(err, ErrNoShards) {
		t.Errorf("no shards: got %v, want ErrNoShards", err)
	}
	// Shard-count mismatch between keys and values.
	if _, err := AggregateByKey([][]uint32{{1}}, [][]float64{{1}, {2}}, 1); !errors.Is(err, ErrShardMismatch) {
		t.Errorf("shard count mismatch: got %v, want ErrShardMismatch", err)
	}
	// Per-shard length mismatch.
	if _, err := AggregateByKey([][]uint32{{1, 2}}, [][]float64{{1.0}}, 1); !errors.Is(err, ErrShardMismatch) {
		t.Errorf("row count mismatch: got %v, want ErrShardMismatch", err)
	}
	for _, w := range []int{0, -1} {
		if _, err := AggregateByKey([][]uint32{{1}}, [][]float64{{1}}, w); !errors.Is(err, ErrWorkers) {
			t.Errorf("workers=%d: got %v, want ErrWorkers", w, err)
		}
	}
}

// TestAggregateByKeyEmpty: empty shards and the empty cluster row set.
func TestAggregateByKeyEmpty(t *testing.T) {
	out, err := AggregateByKey(make([][]uint32, 4), make([][]float64, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty cluster produced %d groups", len(out))
	}
}

// TestShuffleFrameRoundTrip exercises the ⟨key, state⟩ frame encoding
// used by the shuffle, including corrupt-frame rejection.
func TestShuffleFrameRoundTrip(t *testing.T) {
	s1 := rsum.NewState64(levels)
	s1.Add(1.25)
	s2 := rsum.NewState64(levels)
	s2.AddSliceVec([]float64{3, 4, 5})
	e1, _ := s1.MarshalBinary()
	e2, _ := s2.MarshalBinary()

	frame := appendPair(appendPair(nil, 7, e1), 1000, e2)
	var got []uint32
	err := walkFrame(frame, func(key uint32, enc []byte) error {
		got = append(got, key)
		var st rsum.State64
		if err := st.UnmarshalBinary(enc); err != nil {
			return err
		}
		want := s1
		if key == 1000 {
			want = s2
		}
		if !st.Equal(&want) {
			t.Errorf("key %d: decoded state differs", key)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walkFrame: %v", err)
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 1000 {
		t.Fatalf("walked keys %v, want [7 1000]", got)
	}

	for _, bad := range [][]byte{frame[:5], frame[:len(frame)-1]} {
		if err := walkFrame(bad, func(uint32, []byte) error { return nil }); err == nil {
			t.Error("walkFrame accepted a corrupt frame")
		}
	}
}
