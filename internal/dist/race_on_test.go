//go:build race

package dist

// raceEnabled reports that this build runs under the race detector,
// whose instrumentation changes allocation behavior; allocation-count
// pins are meaningless there and skip themselves.
const raceEnabled = true
