package dist

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rsum"
	"repro/internal/workload"
)

var (
	clusterSizes = []int{1, 2, 4, 16, 61}
	workerCounts = []int{1, 2, 8}
	topologies   = []Topology{Binomial, Chain, Star}
)

// shard deals values round-robin across nodes shards.
func shard(vals []float64, nodes int) [][]float64 {
	out := make([][]float64, nodes)
	for i, v := range vals {
		out[i%nodes] = append(out[i%nodes], v)
	}
	return out
}

// senderOrder returns a random linear extension of the reduction
// tree's send dependencies: every non-root node appears exactly once,
// and no node before any of its children. Feeding it to a sendGate
// forces that exact global message order.
func senderOrder(topo Topology, n int, rng *workload.RNG) []int {
	pending := make([]int, n) // children still to hear from
	childOf := make([][]int, n)
	for id := 1; id < n; id++ {
		p := topo.parent(id, n)
		childOf[p] = append(childOf[p], id)
	}
	var ready []int
	for id := 1; id < n; id++ {
		pending[id] = topo.children(id, n)
		if pending[id] == 0 {
			ready = append(ready, id)
		}
	}
	order := make([]int, 0, n-1)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		id := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, id)
		if p := topo.parent(id, n); p > 0 {
			pending[p]--
			if pending[p] == 0 {
				ready = append(ready, p)
			}
		}
	}
	if len(order) != n-1 {
		panic("senderOrder: not a full linear extension")
	}
	return order
}

// TestReduceBitReproducible is the headline property: the same multiset
// of values produces the same bits for every topology, cluster size,
// worker count, and forced message arrival order.
func TestReduceBitReproducible(t *testing.T) {
	const n = 50000
	vals := workload.Values64(7, n, workload.MixedMag)

	// Ground truth: a single sequential state over all values.
	ref := rsum.NewState64(levels)
	ref.AddSliceVec(vals)
	want := math.Float64bits(ref.Value())

	rng := workload.NewRNG(42)
	for _, nodes := range clusterSizes {
		shards := shard(vals, nodes)
		for _, topo := range topologies {
			for _, workers := range workerCounts {
				// Free-running (scheduler-ordered) arrival.
				sum, err := Reduce(shards, workers, topo)
				if err != nil {
					t.Fatalf("Reduce(%d nodes, %d workers, %v): %v", nodes, workers, topo, err)
				}
				if got := math.Float64bits(sum); got != want {
					t.Fatalf("Reduce(%d nodes, %d workers, %v) = %016x, want %016x",
						nodes, workers, topo, got, want)
				}
				// Three forced random arrival orders.
				for trial := 0; trial < 3; trial++ {
					gate := newSendGate(senderOrder(topo, nodes, rng))
					sum, err := ReduceConfig(shards, workers, topo, Config{gate: gate})
					if err != nil {
						t.Fatalf("reduce gated (%d nodes, %v): %v", nodes, topo, err)
					}
					if got := math.Float64bits(sum); got != want {
						t.Fatalf("gated reduce(%d nodes, %d workers, %v) trial %d = %016x, want %016x",
							nodes, workers, topo, trial, got, want)
					}
				}
			}
		}
	}
}

// TestReduceShardingInvariance checks that how rows are dealt to nodes
// (round-robin vs contiguous blocks) does not change the bits.
func TestReduceShardingInvariance(t *testing.T) {
	const n = 20000
	vals := workload.Values64(11, n, workload.Exp1)

	rr, _ := Reduce(shard(vals, 16), 2, Binomial)
	blocks := make([][]float64, 16)
	chunk := (n + 15) / 16
	for i := range blocks {
		lo, hi := i*chunk, min((i+1)*chunk, n)
		if lo < hi {
			blocks[i] = vals[lo:hi]
		}
	}
	bl, _ := Reduce(blocks, 8, Star)
	if math.Float64bits(rr) != math.Float64bits(bl) {
		t.Fatalf("round-robin %016x != block %016x", math.Float64bits(rr), math.Float64bits(bl))
	}
}

// TestReduceSpecials checks that NaN and ±Inf inputs resolve
// deterministically through the distributed reduction.
func TestReduceSpecials(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want float64
	}{
		{"posinf", []float64{1, math.Inf(1), 2}, math.Inf(1)},
		{"neginf", []float64{1, math.Inf(-1), 2}, math.Inf(-1)},
		{"nan", []float64{1, math.NaN(), 2}, math.NaN()},
		{"infclash", []float64{math.Inf(1), math.Inf(-1)}, math.NaN()},
	}
	for _, tc := range cases {
		for _, topo := range topologies {
			got, err := Reduce(shard(tc.vals, 3), 1, topo)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, topo, err)
			}
			if math.Float64bits(got) != math.Float64bits(tc.want) &&
				!(math.IsNaN(got) && math.IsNaN(tc.want)) {
				t.Errorf("%s/%v = %v, want %v", tc.name, topo, got, tc.want)
			}
		}
	}
}

// TestReduceEmptyShards: nodes with no rows participate in the
// reduction with empty states.
func TestReduceEmptyShards(t *testing.T) {
	shards := make([][]float64, 8)
	shards[3] = []float64{1.5, 2.5}
	for _, topo := range topologies {
		got, err := Reduce(shards, 2, topo)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if got != 4.0 {
			t.Errorf("%v = %v, want 4", topo, got)
		}
	}
	got, err := Reduce([][]float64{nil}, 1, Binomial)
	if err != nil || got != 0 {
		t.Errorf("all-empty cluster = (%v, %v), want (0, nil)", got, err)
	}
}

// TestReduceErrors covers the validated error paths.
func TestReduceErrors(t *testing.T) {
	if _, err := Reduce(nil, 1, Binomial); !errors.Is(err, ErrNoShards) {
		t.Errorf("no shards: got %v, want ErrNoShards", err)
	}
	for _, w := range []int{0, -3} {
		if _, err := Reduce([][]float64{{1}}, w, Chain); !errors.Is(err, ErrWorkers) {
			t.Errorf("workers=%d: got %v, want ErrWorkers", w, err)
		}
	}
	if _, err := Reduce([][]float64{{1}}, 1, Topology(99)); !errors.Is(err, ErrTopology) {
		t.Errorf("bad topology: got %v, want ErrTopology", err)
	}
}

// TestTopologyString pins the names used in example output.
func TestTopologyString(t *testing.T) {
	for topo, want := range map[Topology]string{
		Binomial: "binomial", Chain: "chain", Star: "star", Topology(9): "Topology(9)",
	} {
		if got := topo.String(); got != want {
			t.Errorf("Topology(%d).String() = %q, want %q", int(topo), got, want)
		}
	}
}

// TestTopologyShape sanity-checks the parent/children contract every
// node loop relies on: each non-root node has a valid parent, and
// fan-in counts match the number of nodes claiming each parent.
func TestTopologyShape(t *testing.T) {
	for _, topo := range topologies {
		for _, n := range clusterSizes {
			fanIn := make([]int, n)
			for id := 1; id < n; id++ {
				p := topo.parent(id, n)
				if p < 0 || p >= n || p == id {
					t.Fatalf("%v n=%d: parent(%d) = %d out of range", topo, n, id, p)
				}
				fanIn[p]++
			}
			if topo.parent(0, n) != -1 {
				t.Fatalf("%v n=%d: root must have no parent", topo, n)
			}
			for id := 0; id < n; id++ {
				if got := topo.children(id, n); got != fanIn[id] {
					t.Fatalf("%v n=%d: children(%d) = %d, but %d nodes claim it as parent",
						topo, n, id, got, fanIn[id])
				}
			}
		}
	}
}

// TestPartialStateRoundTrip exercises the wire format the cluster
// ships: marshal on one "node", MergeBinary on another, against a
// directly merged reference.
func TestPartialStateRoundTrip(t *testing.T) {
	a := workload.Values64(3, 5000, workload.MixedMag)
	b := workload.Values64(4, 5000, workload.MixedMag)

	sa := rsum.NewState64(levels)
	sa.AddSliceVec(a)

	wire, err := sa.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	merged := rsum.NewState64(levels)
	merged.AddSliceVec(b)
	if err := merged.MergeBinary(wire); err != nil {
		t.Fatalf("MergeBinary: %v", err)
	}

	direct := rsum.NewState64(levels)
	direct.AddSliceVec(b)
	direct.Merge(&sa)
	if !merged.Equal(&direct) {
		t.Fatal("wire-merged state differs from directly merged state")
	}

	// Level mismatch must error, not panic.
	other := rsum.NewState64(levels + 1)
	enc, _ := other.MarshalBinary()
	if err := merged.MergeBinary(enc); err == nil {
		t.Fatal("MergeBinary accepted mismatched level count")
	}
	// Corrupt bytes must error.
	if err := merged.MergeBinary(wire[:len(wire)-1]); err == nil {
		t.Fatal("MergeBinary accepted truncated encoding")
	}
}
