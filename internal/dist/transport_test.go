package dist

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/rsum"
	"repro/internal/workload"
)

// --- frame codec ---

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: KindPartial, From: 3, To: 0, Seq: 0, Chunks: 1, Payload: []byte("partial-state")},
		{Kind: KindGroups, From: 0, To: 7, Seq: seqShuffle, Chunks: 1, Payload: nil},
		{Kind: KindGather, From: 61, To: 0, Seq: seqGather, Chunks: 1, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Kind: KindGroups, From: 4, To: 2, Seq: seqShuffle, Chunk: 2, Chunks: 5, Payload: []byte("mid-chunk")},
		{Kind: KindResend, From: 0, To: 5},                      // whole-stream re-request
		{Kind: KindResend, From: 0, To: 5, Chunk: 3, Chunks: 1}, // single-chunk re-request
		{Kind: KindError, From: 2, To: 1, Chunks: 1, Payload: []byte("node 2: boom")},
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f)
	}
	// Decode the concatenated stream frame by frame.
	rest := wire
	for i, want := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.From != want.From || got.To != want.To ||
			got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding all frames", len(rest))
	}
	// ReadFrame over the same stream must agree.
	r := bytes.NewReader(wire)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("ReadFrame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestFrameDecodeRejectsCorruption(t *testing.T) {
	good := EncodeFrame(Frame{Kind: KindPartial, From: 1, To: 2, Seq: 9, Chunks: 1, Payload: []byte("hello world")})

	// Every single-bit flip must be rejected (magic, version, kind,
	// routing, length, payload, or CRC damage — the checksum catches
	// whatever the structural checks do not).
	for bit := 0; bit < 8*len(good); bit++ {
		bad := append([]byte(nil), good...)
		bad[bit/8] ^= 1 << (bit % 8)
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", bit)
		}
	}
	// Every truncation must be rejected.
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := DecodeFrame(good[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
		if _, err := ReadFrame(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("ReadFrame truncation to %d bytes accepted", cut)
		}
	}
	// A huge length prefix must be rejected without allocating.
	huge := append([]byte(nil), good...)
	huge[24], huge[25], huge[26], huge[27] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized length: got %v, want ErrBadFrame", err)
	}
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("ReadFrame oversized length: got %v, want ErrBadFrame", err)
	}
	// Invalid chunk headers must be rejected at the trust boundary.
	bad := []Frame{
		{Kind: KindPartial, Chunks: 0},                      // data frame without a chunk count
		{Kind: KindGroups, Chunk: 3, Chunks: 3},             // index out of range
		{Kind: KindGather, Chunks: MaxChunksPerMessage + 1}, // hostile chunk count
		{Kind: KindResend, Chunk: 0, Chunks: 2},             // resend selector beyond 0/1
	}
	for i, f := range bad {
		if _, _, err := DecodeFrame(EncodeFrame(f)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("bad chunk header %d: got %v, want ErrBadFrame", i, err)
		}
	}
}

// --- transports ---

// transports lists the implementations under test by name.
func transportFactories() map[string]TransportFactory {
	return map[string]TransportFactory{
		"chan": ChanTransportFactory,
		"tcp":  TCPTransportFactory,
	}
}

func TestTransportDelivery(t *testing.T) {
	for name, factory := range transportFactories() {
		t.Run(name, func(t *testing.T) {
			tr, err := factory(4)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			if tr.Nodes() != 4 {
				t.Fatalf("Nodes() = %d, want 4", tr.Nodes())
			}
			want := Frame{Kind: KindPartial, From: 2, To: 1, Seq: 7, Chunks: 1, Payload: []byte("payload")}
			if err := tr.Send(want); err != nil {
				t.Fatal(err)
			}
			got, err := tr.Recv(1, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != want.Kind || got.From != 2 || got.Seq != 7 || !bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("got %+v, want %+v", got, want)
			}
			// Self-send must work (the shuffle routes frames to the
			// sender's own partition).
			if err := tr.Send(Frame{Kind: KindGroups, From: 1, To: 1, Chunks: 1}); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Recv(1, time.Second); err != nil {
				t.Fatalf("self-send: %v", err)
			}
			// Timeout on an empty mailbox.
			if _, err := tr.Recv(3, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
				t.Fatalf("empty mailbox: got %v, want ErrTimeout", err)
			}
			// Out-of-range endpoints are rejected.
			if err := tr.Send(Frame{To: 99}); err == nil {
				t.Fatal("send to out-of-range node accepted")
			}
			if _, err := tr.Recv(-1, time.Millisecond); err == nil {
				t.Fatal("recv on out-of-range node accepted")
			}
		})
	}
}

func TestTransportClose(t *testing.T) {
	for name, factory := range transportFactories() {
		t.Run(name, func(t *testing.T) {
			tr, err := factory(2)
			if err != nil {
				t.Fatal(err)
			}
			unblocked := make(chan error, 1)
			go func() {
				_, err := tr.Recv(0, 0)
				unblocked <- err
			}()
			time.Sleep(5 * time.Millisecond)
			if err := tr.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			select {
			case err := <-unblocked:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("blocked Recv: got %v, want ErrClosed", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Close did not unblock Recv")
			}
			if err := tr.Send(Frame{Kind: KindPartial, To: 0, Chunks: 1}); !errors.Is(err, ErrClosed) {
				t.Fatalf("Send after Close: got %v, want ErrClosed", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}

// TestTCPFrameOverWire pins that TCP really moves the canonical state
// encoding through a socket: marshal on one node, MergeBinary on the
// other side, bits preserved.
func TestTCPFrameOverWire(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	s := rsum.NewState64(levels)
	s.AddSliceVec(workload.Values64(5, 1000, workload.MixedMag))
	enc, _ := s.MarshalBinary()
	if err := tr.Send(Frame{Kind: KindPartial, From: 1, To: 0, Chunks: 1, Payload: enc}); err != nil {
		t.Fatal(err)
	}
	f, err := tr.Recv(0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var got rsum.State64
	if err := got.UnmarshalBinary(f.Payload); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&s) {
		t.Fatal("state bits changed crossing the TCP transport")
	}
}

// --- cross-transport equivalence matrix (the PR's acceptance bar) ---

// faultPlans enumerates the fault-injection cells of the matrix. Delays
// are kept small so the full matrix stays fast under -race.
func faultPlans() map[string]*FaultPlan {
	return map[string]*FaultPlan{
		"none":    nil,
		"delay":   {Seed: 1, MaxDelay: 300 * time.Microsecond},
		"dup":     {Seed: 2, DupProb: 0.5},
		"drop":    {Seed: 3, DropProb: 0.4, RetryDelay: 200 * time.Microsecond},
		"reorder": {Seed: 4, Reorder: true, RetryDelay: 200 * time.Microsecond},
		"chaos": {Seed: 5, DropProb: 0.3, DupProb: 0.3, MaxDelay: 200 * time.Microsecond,
			RetryDelay: 100 * time.Microsecond, Reorder: true},
	}
}

// matrixConfig builds the Config for one matrix cell, with a short
// straggler deadline so the re-request path genuinely runs under the
// dropping/delaying plans, and no give-up cap: spurious re-requests
// are harmless, and a bounded cap would race the race detector's
// scheduling slowdown (give-up behavior has its own dedicated tests).
func matrixConfig(factory TransportFactory, plan *FaultPlan) Config {
	return Config{
		NewTransport:  factory,
		Faults:        plan,
		ChildDeadline: 2 * time.Millisecond,
		MaxResend:     -1,
	}
}

// TestReduceTransportMatrix: every (topology × cluster size × transport
// × fault plan) cell must produce bits identical to a single-threaded
// sequential sum of the same values.
func TestReduceTransportMatrix(t *testing.T) {
	const n = 4000
	vals := workload.Values64(17, n, workload.MixedMag)
	ref := rsum.NewState64(levels)
	ref.AddSliceVec(vals)
	want := math.Float64bits(ref.Value())

	sizes := []int{1, 2, 5, 16}
	for tname, factory := range transportFactories() {
		for pname, plan := range faultPlans() {
			t.Run(tname+"/"+pname, func(t *testing.T) {
				t.Parallel()
				for _, nodes := range sizes {
					shards := shard(vals, nodes)
					for _, topo := range topologies {
						got, err := ReduceConfig(shards, 2, topo, matrixConfig(factory, plan))
						if err != nil {
							t.Fatalf("%v n=%d: %v", topo, nodes, err)
						}
						if bits := math.Float64bits(got); bits != want {
							t.Fatalf("%v n=%d: %016x, want %016x", topo, nodes, bits, want)
						}
					}
				}
			})
		}
	}
}

// TestAggregateByKeyTransportMatrix: the GROUP BY shuffle under every
// transport × fault plan matches the sequential per-key reference.
func TestAggregateByKeyTransportMatrix(t *testing.T) {
	const n = 6000
	keys := workload.Keys(18, n, 200)
	vals := workload.Values64(19, n, workload.MixedMag)
	want := refGroups(keys, vals)

	sizes := []int{1, 3, 8}
	for tname, factory := range transportFactories() {
		for pname, plan := range faultPlans() {
			t.Run(tname+"/"+pname, func(t *testing.T) {
				t.Parallel()
				for _, nodes := range sizes {
					lk, lv := dealRows(keys, vals, nodes)
					out, err := AggregateByKeyConfig(lk, lv, 2, matrixConfig(factory, plan))
					if err != nil {
						t.Fatalf("n=%d: %v", nodes, err)
					}
					checkGroups(t, out, want, nodes, 2)
				}
			})
		}
	}
}

// TestStragglerRerequest forces the straggler path deterministically: a
// transport that swallows the first transmission of every partial, so
// parents only make progress through deadline → re-request → retransmit.
func TestStragglerRerequest(t *testing.T) {
	const n = 2000
	vals := workload.Values64(23, n, workload.MixedMag)
	ref := rsum.NewState64(levels)
	ref.AddSliceVec(vals)
	want := math.Float64bits(ref.Value())

	for _, topo := range topologies {
		factory := func(n int) (Transport, error) {
			return &firstSendBlackhole{Transport: NewChanTransport(n), dropped: make(map[chunkID]bool)}, nil
		}
		cfg := Config{NewTransport: factory, ChildDeadline: 2 * time.Millisecond, MaxResend: -1}
		got, err := ReduceConfig(shard(vals, 6), 1, topo, cfg)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if bits := math.Float64bits(got); bits != want {
			t.Fatalf("%v: %016x, want %016x", topo, bits, want)
		}
	}
}

// TestStragglerGivesUp: a child that never answers must surface
// ErrStraggler instead of hanging.
func TestStragglerGivesUp(t *testing.T) {
	factory := func(n int) (Transport, error) {
		return &partialBlackhole{Transport: NewChanTransport(n)}, nil
	}
	cfg := Config{NewTransport: factory, ChildDeadline: time.Millisecond, MaxResend: 3}
	_, err := ReduceConfig([][]float64{{1}, {2}}, 1, Star, cfg)
	if !errors.Is(err, ErrStraggler) {
		t.Fatalf("got %v, want ErrStraggler", err)
	}
}

// TestGroupByStragglerRerequest forces the shuffle's re-request path:
// the first transmission of every shuffle and gather frame is
// swallowed, so owners only make progress through deadline →
// re-request → retransmit-from-cache.
func TestGroupByStragglerRerequest(t *testing.T) {
	const n = 3000
	keys := workload.Keys(41, n, 100)
	vals := workload.Values64(43, n, workload.MixedMag)
	want := refGroups(keys, vals)

	factory := func(n int) (Transport, error) {
		return &firstSendBlackhole{
			Transport: NewChanTransport(n),
			kinds:     map[byte]bool{KindGroups: true, KindGather: true},
			dropped:   make(map[chunkID]bool),
		}, nil
	}
	for _, nodes := range []int{2, 5} {
		lk, lv := dealRows(keys, vals, nodes)
		cfg := Config{NewTransport: factory, ChildDeadline: 2 * time.Millisecond, MaxResend: -1}
		out, err := AggregateByKeyConfig(lk, lv, 2, cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", nodes, err)
		}
		checkGroups(t, out, want, nodes, 2)
	}
}

// TestGroupByStragglerGivesUp: a shuffle whose frames never arrive must
// surface ErrStraggler instead of hanging.
func TestGroupByStragglerGivesUp(t *testing.T) {
	factory := func(n int) (Transport, error) {
		return &kindBlackhole{Transport: NewChanTransport(n), kind: KindGroups}, nil
	}
	cfg := Config{NewTransport: factory, ChildDeadline: time.Millisecond, MaxResend: 3}
	_, err := AggregateByKeyConfig([][]uint32{{1}, {2}}, [][]float64{{1}, {2}}, 1, cfg)
	if !errors.Is(err, ErrStraggler) {
		t.Fatalf("got %v, want ErrStraggler", err)
	}
}

// firstSendBlackhole swallows the first transmission of every distinct
// chunk of the selected kinds (default: partials); retransmissions
// (triggered by chunk-level re-requests) pass.
type firstSendBlackhole struct {
	Transport
	kinds   map[byte]bool // nil means {KindPartial}
	mu      sync.Mutex
	dropped map[chunkID]bool
}

// chunkID identifies one wire chunk: the shuffle sends one message per
// destination on the same stream, and a message has many chunks.
type chunkID struct {
	from, to int
	seq      uint32
	chunk    uint32
}

func (b *firstSendBlackhole) Send(f Frame) error {
	match := f.Kind == KindPartial
	if b.kinds != nil {
		match = b.kinds[f.Kind]
	}
	if match {
		k := chunkID{f.From, f.To, f.Seq, f.Chunk}
		b.mu.Lock()
		first := !b.dropped[k]
		b.dropped[k] = true
		b.mu.Unlock()
		if first {
			return nil // swallowed
		}
	}
	return b.Transport.Send(f)
}

// partialBlackhole swallows every partial, so children look permanently
// unresponsive.
type partialBlackhole struct{ Transport }

func (b *partialBlackhole) Send(f Frame) error {
	if f.Kind == KindPartial {
		return nil
	}
	return b.Transport.Send(f)
}

// kindBlackhole swallows every frame of one kind.
type kindBlackhole struct {
	Transport
	kind byte
}

func (b *kindBlackhole) Send(f Frame) error {
	if f.Kind == b.kind {
		return nil
	}
	return b.Transport.Send(f)
}

// TestShuffleBeyondOldFrameCeiling: a shuffle payload exceeding the old
// 16 MiB per-(sender, owner) frame ceiling — which used to fail fast
// with ErrBadFrame — now travels as a chunk stream and produces the
// correct bits on every transport. This is the scale step the chunking
// refactor exists for.
func TestShuffleBeyondOldFrameCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("moves ~20 MiB per transport")
	}
	// ~300k distinct keys all owned by one node: the logical shuffle
	// payload is ~18 MiB (60 B per ⟨key, state⟩ pair at the default
	// L=2), forcing ≥2 chunks even at the default 16 MiB chunk payload.
	const nkeys = 300_000
	keys := make([]uint32, nkeys)
	vals := make([]float64, nkeys)
	for i := range keys {
		keys[i] = uint32(i)
		vals[i] = float64(i%97) + 0.5
	}
	for name, factory := range transportFactories() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{NewTransport: factory}
			out, err := AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, cfg)
			if err != nil {
				t.Fatalf("chunked shuffle past the old ceiling: %v", err)
			}
			if len(out) != nkeys {
				t.Fatalf("%d groups, want %d", len(out), nkeys)
			}
			for i, g := range out {
				if g.Key != uint32(i) || g.Sum != float64(i%97)+0.5 {
					t.Fatalf("group %d = {%d, %v}", i, g.Key, g.Sum)
				}
			}
		})
	}
}

// TestReassemblyBudgetEnforced: a logical message larger than the
// reassembly budget must fail with ErrChunkBudget — surfaced through
// the facade-visible error chain, not an OOM or a hang.
func TestReassemblyBudgetEnforced(t *testing.T) {
	const nkeys = 2_000 // ~120 KB logical shuffle payload
	keys := make([]uint32, nkeys)
	vals := make([]float64, nkeys)
	for i := range keys {
		keys[i] = uint32(i)
		vals[i] = 1
	}
	cfg := Config{ReassemblyBudget: 32 << 10, MaxChunkPayload: 4 << 10}
	_, err := AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, cfg)
	if !errors.Is(err, ErrChunkBudget) {
		t.Fatalf("got %v, want ErrChunkBudget", err)
	}
}

// TestChunkCountBoundEnforcedSenderSide: a chunk payload so small that
// the message would need more than MaxChunksPerMessage chunks must fail
// deterministically on the sender — no receiver would accept the
// stream, and over TCP the rejected chunks would otherwise spin the
// re-request loop forever under MaxResend < 0.
func TestChunkCountBoundEnforcedSenderSide(t *testing.T) {
	const nkeys = 20_000 // ~1.2 MB logical payload > 1 B × MaxChunksPerMessage
	keys := make([]uint32, nkeys)
	vals := make([]float64, nkeys)
	for i := range keys {
		keys[i] = uint32(i)
		vals[i] = 1
	}
	cfg := Config{MaxChunkPayload: 1, MaxResend: -1, ChildDeadline: time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := AggregateByKeyConfig([][]uint32{keys}, [][]float64{vals}, 2, cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrChunkBudget) {
			t.Fatalf("got %v, want ErrChunkBudget", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("over-chunked message hung instead of failing sender-side")
	}
}

// TestHostileChunksRejected: a peer declaring a hostile chunk stream —
// huge chunk counts, oversized buffering — must yield an error on the
// receive path, never an OOM. Frames are injected directly through a
// ChanTransport (bypassing the wire decoder), so this also pins that
// the reassembler revalidates chunk headers itself.
func TestHostileChunksRejected(t *testing.T) {
	hostile := []Frame{
		// Declares a chunk count past the per-message bound.
		{Kind: KindPartial, From: 1, To: 0, Seq: 0, Chunk: 0, Chunks: MaxChunksPerMessage + 1, Payload: []byte("x")},
		// Index out of declared range.
		{Kind: KindPartial, From: 1, To: 0, Seq: 0, Chunk: 5, Chunks: 2, Payload: []byte("x")},
		// Empty chunk of a multi-chunk message.
		{Kind: KindPartial, From: 1, To: 0, Seq: 0, Chunk: 0, Chunks: 2},
	}
	for i, h := range hostile {
		h := h
		factory := func(n int) (Transport, error) {
			inner := NewChanTransport(n)
			_ = inner.Send(h) // pre-load the hostile frame in node 0's inbox
			return inner, nil
		}
		cfg := Config{NewTransport: factory, ChildDeadline: 50 * time.Millisecond, MaxResend: 2}
		_, err := ReduceConfig([][]float64{{1}, {2}}, 1, Star, cfg)
		if err == nil {
			t.Fatalf("hostile frame %d: reduction succeeded", i)
		}
	}
}

// TestTCPSendRedialsAfterConnFailure: a broken cached connection must
// not poison the (from, to) pair forever — the next Send re-dials, so
// straggler retransmissions can actually recover.
func TestTCPSendRedialsAfterConnFailure(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	f := Frame{Kind: KindPartial, From: 1, To: 0, Chunks: 1, Payload: []byte("partial")}
	if err := tr.Send(f); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Recv(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Break the cached connection behind Send's back.
	p := tr.pipe(1, 0)
	p.mu.Lock()
	p.c.Close()
	p.mu.Unlock()

	// Sends must recover via re-dial: the first attempts may fail while
	// the failure is detected and the pipe dropped, but a fresh frame
	// must get through well within the deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("Send never recovered after the cached conn broke")
		}
		if err := tr.Send(f); err != nil {
			continue
		}
		if _, err := tr.Recv(0, 100*time.Millisecond); err == nil {
			return // delivered over the re-dialed connection
		}
	}
}

// TestConfigRejectsMismatchedTransport: a factory returning the wrong
// cluster size must be rejected, not deadlock.
func TestConfigRejectsMismatchedTransport(t *testing.T) {
	cfg := Config{NewTransport: func(n int) (Transport, error) {
		return NewChanTransport(n + 1), nil
	}}
	if _, err := ReduceConfig([][]float64{{1}, {2}}, 1, Star, cfg); err == nil {
		t.Fatal("mismatched transport accepted")
	}
}
