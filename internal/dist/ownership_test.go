package dist

import (
	"bytes"
	"testing"
	"time"
)

// Tests of the payload-ownership handoff rule of the socket read path:
// ReadFrameBuf payloads alias the caller's read buffer, so anything
// that retains a payload past the next read must copy it first
// (copy-on-retain), and the TCP read loop enforces the rule at the
// mailbox boundary.

// TestReadFrameBufOwnership reads frames through one reused buffer,
// mutates the read buffer after decode, and asserts that (a) the
// decoded payload aliases the buffer — the hazard the rule exists for —
// and (b) a payload retained per the rule (RetainPayload) is unaffected
// by both the mutation and the next read.
func TestReadFrameBufOwnership(t *testing.T) {
	p1 := bytes.Repeat([]byte{0xAA}, 1024)
	p2 := bytes.Repeat([]byte{0x55}, 1024)
	var stream []byte
	stream = AppendFrame(stream, Frame{Kind: KindPartial, From: 0, To: 1, Seq: 7, Chunks: 1, Payload: p1})
	stream = AppendFrame(stream, Frame{Kind: KindPartial, From: 0, To: 1, Seq: 8, Chunks: 1, Payload: p2})
	r := bytes.NewReader(stream)

	f1, buf, err := ReadFrameBuf(r, nil)
	if err != nil {
		t.Fatalf("first ReadFrameBuf: %v", err)
	}
	if !bytes.Equal(f1.Payload, p1) {
		t.Fatal("first frame decoded with wrong payload")
	}
	retained := RetainPayload(f1)

	// Mutate the read buffer after decode: the un-retained payload must
	// follow the buffer (it aliases it)...
	for i := range buf {
		buf[i] ^= 0xFF
	}
	if bytes.Equal(f1.Payload, p1) {
		t.Fatal("decoded payload did not alias the read buffer — the reuse fast path is gone")
	}
	// ...while the retained copy is unaffected.
	if !bytes.Equal(retained.Payload, p1) {
		t.Fatal("retained payload was corrupted by a read-buffer mutation")
	}
	for i := range buf {
		buf[i] ^= 0xFF // restore for the next read's CRC-free reuse
	}

	// The next read overwrites the buffer in place; the retained copy
	// must survive that too.
	f2, buf2, err := ReadFrameBuf(r, buf)
	if err != nil {
		t.Fatalf("second ReadFrameBuf: %v", err)
	}
	if &buf2[0] != &buf[0] {
		t.Fatal("equal-size frame read did not reuse the buffer")
	}
	if !bytes.Equal(f2.Payload, p2) {
		t.Fatal("second frame decoded with wrong payload")
	}
	if !bytes.Equal(retained.Payload, p1) {
		t.Fatal("retained payload was overwritten by the next frame read")
	}

	// Growth path: a larger frame must still round-trip when the buffer
	// is too small for it.
	big := bytes.Repeat([]byte{0x3C}, 4096)
	r2 := bytes.NewReader(EncodeFrame(Frame{Kind: KindGroups, From: 2, To: 3, Seq: 9, Chunks: 1, Payload: big}))
	f3, _, err := ReadFrameBuf(r2, buf2)
	if err != nil {
		t.Fatalf("growing ReadFrameBuf: %v", err)
	}
	if !bytes.Equal(f3.Payload, big) {
		t.Fatal("grown frame decoded with wrong payload")
	}
}

// TestTCPReadPathRetainsPayloads sends a stream of same-size frames
// through one TCP connection pair — so the receiving read loop reuses
// one read buffer for all of them — receives and retains every payload,
// and asserts none was clobbered by a later frame's arrival. Without
// copy-on-retain at the mailbox boundary, frame k+1 overwrites frame
// k's payload bytes in place.
func TestTCPReadPathRetainsPayloads(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatalf("NewTCPTransport: %v", err)
	}
	defer tr.Close()

	const frames = 64
	const size = 512
	want := make([][]byte, frames)
	for i := range want {
		p := bytes.Repeat([]byte{byte(i + 1)}, size)
		want[i] = p
		if err := tr.Send(Frame{Kind: KindGroups, From: 0, To: 1, Seq: uint32(i), Chunks: 1, Payload: p}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	got := make(map[uint32][]byte, frames)
	for len(got) < frames {
		f, err := tr.Recv(1, 5*time.Second)
		if err != nil {
			t.Fatalf("recv after %d frames: %v", len(got), err)
		}
		got[f.Seq] = f.Payload // retained across later arrivals
	}
	for i := 0; i < frames; i++ {
		p, ok := got[uint32(i)]
		if !ok {
			t.Fatalf("frame %d never arrived", i)
		}
		if !bytes.Equal(p, want[i]) {
			t.Fatalf("retained payload of frame %d was clobbered by a later frame (first byte %#x, want %#x)",
				i, p[0], want[i][0])
		}
	}
}

// TestRetainPayloadEmpty: payload-free frames take the copy-free path
// and stay payload-free.
func TestRetainPayloadEmpty(t *testing.T) {
	f := RetainPayload(Frame{Kind: KindResend, From: 1, To: 0, Seq: 3})
	if f.Payload != nil {
		t.Fatalf("RetainPayload invented a payload: %v", f.Payload)
	}
	if f.Kind != KindResend || f.From != 1 || f.To != 0 || f.Seq != 3 {
		t.Fatal("RetainPayload changed frame fields")
	}
}
