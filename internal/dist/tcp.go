package dist

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport is a real network interconnect for the simulated
// cluster: every node owns one TCP listener on a loopback port, frames
// travel length-prefixed and CRC-protected through actual kernel
// sockets, and per-pair connections are dialed lazily and cached. A
// chunked logical message is simply a sequence of independent wire
// frames here — each chunk is framed, checksummed, and validated on
// its own, so one corrupt chunk poisons one connection (and is
// recovered by the receiver's per-chunk re-request over a fresh dial)
// rather than an entire stream. The receive side is the shared
// mailboxes type (fed by socket reader goroutines), so Recv/Close
// semantics are identical to ChanTransport by construction. The
// aggregation protocols run unchanged over it — reproducibility comes
// from the canonical state algebra, not from any ordering the network
// might (fail to) provide.
type TCPTransport struct {
	*mailboxes
	listeners []net.Listener
	addrs     []string
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu    sync.Mutex
	conns map[[2]int]*tcpPipe
}

// tcpPipe is one cached sender-side connection (from, to); writes are
// serialized so concurrent protocol sends cannot interleave frame
// bytes. The connection is dialed lazily under the pipe's own lock (so
// one slow dial never stalls other pairs) and dropped on write failure
// (so the next attempt — typically a straggler retransmission —
// re-dials instead of hammering a dead socket).
type tcpPipe struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

// reset drops a broken connection; the caller must hold p.mu.
func (p *tcpPipe) reset() {
	if p.c != nil {
		p.c.Close()
		p.c, p.w = nil, nil
	}
}

// NewTCPTransport starts an n-node TCP interconnect on loopback.
func NewTCPTransport(n int) (*TCPTransport, error) {
	if n < 1 {
		return nil, ErrNoShards
	}
	t := &TCPTransport{
		mailboxes: newMailboxes(n),
		listeners: make([]net.Listener, n),
		addrs:     make([]string, n),
		conns:     make(map[[2]int]*tcpPipe),
	}
	for id := 0; id < n; id++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("dist: listen for node %d: %w", id, err)
		}
		t.listeners[id] = ln
		t.addrs[id] = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(id, ln)
	}
	return t, nil
}

// acceptLoop accepts inbound connections for node id and spawns one
// reader per connection.
func (t *TCPTransport) acceptLoop(id int, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(id, c)
	}
}

// readLoop decodes frames off one connection and delivers them to node
// id's mailbox. A frame that fails validation poisons only its
// connection: the reader stops, and recovery stays with the protocol's
// re-request layer — which, since chunking, re-requests only the
// chunks that were lost with the connection.
//
// Frames are read into one per-connection buffer reused across
// iterations (ReadFrameBuf), so the steady-state read path allocates
// only what it retains: decoded payloads alias the read buffer and are
// copied exactly once (retainPayload) before the mailbox — which holds
// them until the protocol consumes them — takes the frame. Misrouted
// and payload-free frames never pay the copy.
func (t *TCPTransport) readLoop(id int, c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	br := bufio.NewReaderSize(c, sockBufSize)
	var buf []byte // connection read buffer; every decoded payload aliases it
	for {
		f, nbuf, err := ReadFrameBuf(br, buf)
		if err != nil {
			return // EOF, peer close, or corrupt stream
		}
		buf = nbuf
		if f.To != id {
			continue // misrouted frame: drop at the trust boundary
		}
		if t.deliver(retainPayload(f)) != nil {
			return // transport closed
		}
	}
}

// Send encodes f and writes it to the cached connection for the
// (From, To) pair, dialing on first use (and re-dialing after a write
// failure dropped the pair's connection).
func (t *TCPTransport) Send(f Frame) error {
	if f.To < 0 || f.To >= len(t.addrs) {
		return fmt.Errorf("dist: send to node %d of %d-node cluster", f.To, len(t.addrs))
	}
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	p := t.pipe(f.From, f.To)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := t.dialLocked(p, f.To); err != nil {
		return err
	}
	if err := WriteFrame(p.w, f); err != nil {
		p.reset()
		return t.sendErr(err)
	}
	if err := p.w.Flush(); err != nil {
		p.reset()
		return t.sendErr(err)
	}
	return nil
}

// SendBatch transmits a frame list, coalescing each run of frames
// sharing a (From, To) pair into buffered writes with one flush — a
// multi-chunk stream leaves as a burst of large writes instead of one
// syscall per chunk. Equivalent to calling Send in order (TCP preserves
// byte order per connection); the first error is reported, later runs
// are still attempted, matching the protocol's tolerance for partial
// send failures.
func (t *TCPTransport) SendBatch(fs []Frame) error {
	var firstErr error
	for start := 0; start < len(fs); {
		end := start + 1
		for end < len(fs) && fs[end].From == fs[start].From && fs[end].To == fs[start].To {
			end++
		}
		if err := t.sendRun(fs[start:end]); err != nil && firstErr == nil {
			firstErr = err
		}
		start = end
	}
	return firstErr
}

// sendRun writes one same-pair run through the pair's buffered writer
// and flushes once.
func (t *TCPTransport) sendRun(fs []Frame) error {
	to := fs[0].To
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("dist: send to node %d of %d-node cluster", to, len(t.addrs))
	}
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	p := t.pipe(fs[0].From, to)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := t.dialLocked(p, to); err != nil {
		return err
	}
	for i := range fs {
		if err := WriteFrame(p.w, fs[i]); err != nil {
			p.reset()
			return t.sendErr(err)
		}
	}
	if err := p.w.Flush(); err != nil {
		p.reset()
		return t.sendErr(err)
	}
	return nil
}

// dialLocked establishes the pipe's connection if needed; the caller
// must hold p.mu.
func (t *TCPTransport) dialLocked(p *tcpPipe, to int) error {
	if p.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", t.addrs[to], 5*time.Second)
	if err != nil {
		return t.sendErr(fmt.Errorf("dial node %d: %w", to, err))
	}
	select {
	case <-t.closed:
		c.Close()
		return ErrClosed
	default:
	}
	p.c, p.w = c, bufio.NewWriterSize(c, sockBufSize)
	return nil
}

// sockBufSize sizes the per-connection buffered reader and writer: big
// enough that a default 16 MiB chunk still moves in few syscalls and a
// batch of small frames coalesces, small enough to keep per-pair memory
// modest.
const sockBufSize = 64 << 10

// sendErr maps write failures after Close to ErrClosed, so protocol
// teardown (root done, transport closed, stragglers still flushing) is
// not reported as a network failure.
func (t *TCPTransport) sendErr(err error) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
		return fmt.Errorf("dist: tcp send: %w", err)
	}
}

// pipe returns the (possibly not yet dialed) pipe for the from → to
// pair. Only the map access takes the transport-wide lock; dialing
// happens under the pipe's own lock in Send.
func (t *TCPTransport) pipe(from, to int) *tcpPipe {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.conns[key]
	if !ok {
		p = &tcpPipe{}
		t.conns[key] = p
	}
	return p
}

// Close shuts down all listeners and connections and waits for the
// reader goroutines to drain.
func (t *TCPTransport) Close() error {
	var errs []error
	t.closeOnce.Do(func() {
		t.mailboxes.close()
		for _, ln := range t.listeners {
			if ln != nil {
				if err := ln.Close(); err != nil {
					errs = append(errs, err)
				}
			}
		}
		t.mu.Lock()
		for _, p := range t.conns {
			p.mu.Lock()
			if p.c != nil {
				if err := p.c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
					errs = append(errs, err)
				}
			}
			p.mu.Unlock()
		}
		t.mu.Unlock()
		t.wg.Wait()
	})
	return errors.Join(errs...)
}

// TCPTransportFactory is the TransportFactory of NewTCPTransport.
func TCPTransportFactory(n int) (Transport, error) { return NewTCPTransport(n) }

// interface conformance
var (
	_ Transport   = (*ChanTransport)(nil)
	_ Transport   = (*TCPTransport)(nil)
	_ BatchSender = (*ChanTransport)(nil)
	_ BatchSender = (*TCPTransport)(nil)
)
