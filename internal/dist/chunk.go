package dist

import "fmt"

// Chunked logical messages. A logical message (one partial state, one
// shuffle frame, one gather frame, one error) whose payload exceeds the
// configured chunk payload travels as a stream of wire frames sharing
// (Kind, From, To, Seq) and numbered Chunk 0..Chunks−1. The split is a
// pure transport concern: receivers reassemble the exact payload bytes
// before any protocol code sees them, so merge order per key and every
// other reproducibility property are untouched — chunking only decides
// how many wire frames carry the same canonical bytes.

// DefaultChunkPayload is the chunk payload size used when Config leaves
// MaxChunkPayload zero: the codec's frame ceiling, so every payload
// that fit in one wire frame before chunking existed still travels as
// exactly one frame.
const DefaultChunkPayload = MaxFramePayload

// DefaultReassemblyBudget bounds the bytes a node buffers for
// incomplete incoming messages when Config leaves ReassemblyBudget
// zero (1 GiB).
const DefaultReassemblyBudget = 1 << 30

// splitFrame splits one logical frame into its wire chunks: every chunk
// carries at most maxChunk payload bytes, all but the last exactly
// maxChunk. Payloads alias f.Payload (no copying — the in-process
// transport stays zero-copy). An empty payload yields one empty chunk,
// so receivers can still count senders.
func splitFrame(f Frame, maxChunk int) []Frame {
	if maxChunk <= 0 || maxChunk > MaxFramePayload {
		maxChunk = DefaultChunkPayload
	}
	n := (len(f.Payload) + maxChunk - 1) / maxChunk
	if n == 0 {
		n = 1
	}
	chunks := make([]Frame, n)
	for i := 0; i < n; i++ {
		c := f
		c.Chunk, c.Chunks = uint32(i), uint32(n)
		if len(f.Payload) > 0 {
			c.Payload = f.Payload[i*maxChunk : min((i+1)*maxChunk, len(f.Payload))]
		}
		chunks[i] = c
	}
	mChunksSplit.Add(uint64(n))
	return chunks
}

// sendChunks transmits every chunk of a cached chunk list. A transport
// that can coalesce (BatchSender) gets the whole list in one call, so a
// multi-chunk stream is one syscall burst instead of one write per
// chunk; fault-injection and observer decorators do not implement
// BatchSender, so faults and counters keep applying per chunk. Send
// failures are tolerated protocol-wide: the receiver's re-request path
// retries chunk by chunk, and a closed transport surfaces through Recv.
func sendChunks(tr Transport, chunks []Frame) {
	if bs, ok := tr.(BatchSender); ok && len(chunks) > 1 {
		_ = bs.SendBatch(chunks)
		return
	}
	for _, c := range chunks {
		_ = tr.Send(c)
	}
}

// serveResend answers one KindResend with the requested chunks of a
// cached outgoing chunk list: the whole stream for a Chunks == 0
// selector, the single chunk index req.Chunk for Chunks == 1. An
// out-of-range index is ignored (a hostile or confused peer cannot
// make us send frames we never produced).
func serveResend(tr Transport, chunks []Frame, req Frame) {
	if req.Chunks == 0 {
		mRetransmits.Add(uint64(len(chunks)))
		sendChunks(tr, chunks)
		return
	}
	if int64(req.Chunk) < int64(len(chunks)) {
		mRetransmits.Inc()
		_ = tr.Send(chunks[req.Chunk])
	}
}

// partialMsg is one incoming logical message mid-reassembly. Chunks are
// written in place into one contiguous buffer at chunk-index × stride,
// with an arrival bitmap for dedup — one copy per chunk and no per-chunk
// map churn, versus the old map[uint32][]byte plus a second copy in a
// final concatenation.
//
// The stride is learned from the first non-final chunk to arrive: our
// splitFrame makes every chunk except the last exactly the chunk
// payload, and the reassembler enforces that shape at the trust
// boundary (ChanTransport frames bypass the wire decoder). A final
// chunk arriving before any non-final one is stashed until the stride
// is known.
type partialMsg struct {
	kind    byte
	total   uint32   // declared chunk count (≥ 2; 1-chunk messages take the fast path)
	stride  int      // payload bytes of every non-final chunk; 0 until one arrives
	buf     []byte   // contiguous reassembly buffer, len stride×total, nil until stride known
	last    []byte   // final chunk stashed before the stride is known (aliases the frame)
	lastLen int      // payload bytes of the final chunk; −1 until it arrives
	arrived []uint64 // arrival bitmap by chunk index, nil until stride known
	n       int      // distinct chunks arrived
	bytes   int      // bytes charged against the budget: the stash, then the whole buffer
}

// reassembler rebuilds logical messages from chunk streams on one
// node's receive path. It writes out-of-order chunks in place into one
// contiguous per-message buffer (see partialMsg), deduplicates per
// chunk (a retransmitted or fault-duplicated chunk is absorbed exactly
// once), remembers completed messages so whole-message retransmissions
// are swallowed (this subsumes the pre-chunking per-message dedup), and
// enforces a total byte budget across all incomplete messages so a
// hostile peer cannot OOM the node. The budget bounds ALLOCATED
// reassembly memory, not merely arrived bytes: a stream's whole
// contiguous buffer (stride × declared chunk count) is charged when it
// is allocated, so many barely-started streams with huge declared
// counts cannot allocate past the budget, and the per-stream arrival
// bitmap stays proportional to the budget (chunk count ≤ buffer size).
// It revalidates chunk headers itself: frames arriving by reference
// through ChanTransport never pass the wire decoder.
type reassembler struct {
	budget  int
	used    int
	partial map[uint64]*partialMsg // keyed by dedupKey(From, Seq)
	done    dedup
}

func newReassembler(budget int) *reassembler {
	if budget <= 0 {
		budget = DefaultReassemblyBudget
	}
	return &reassembler{
		budget:  budget,
		partial: make(map[uint64]*partialMsg),
		done:    make(dedup),
	}
}

// accept consumes one wire frame. When the frame completes its logical
// message, accept returns the message with its full payload and
// complete = true; the message is then marked done and all further
// deliveries on its (From, Seq) stream are swallowed. fresh reports
// whether the frame contributed new bytes (the protocols' straggler
// give-up budget measures silence, and a chunk of a still-incomplete
// message is progress). Inconsistent streams — mismatched chunk counts
// or kinds, out-of-range indexes, empty chunks of a multi-chunk
// message, chunk sizes that break the uniform-stride shape splitFrame
// guarantees — and budget exhaustion yield an error; the frame is
// discarded and the reassembler stays usable.
func (r *reassembler) accept(f Frame) (msg Frame, complete, fresh bool, err error) {
	key := dedupKey(f.From, f.Seq)
	if r.done[key] {
		return Frame{}, false, false, nil
	}
	if err := validChunkFields(f.Kind, f.Chunk, f.Chunks); err != nil {
		return Frame{}, false, false, err
	}
	p := r.partial[key]
	if p != nil && (p.total != f.Chunks || p.kind != f.Kind) {
		// Shape change mid-stream — including a single-chunk frame on a
		// key that already buffered a multi-chunk partial, which the
		// fast path below must not silently "complete" over.
		return Frame{}, false, false, fmt.Errorf(
			"%w: chunk stream (from %d, seq %d) changed shape: %d-chunk kind %d vs %d-chunk kind %d",
			ErrBadFrame, f.From, f.Seq, p.total, p.kind, f.Chunks, f.Kind)
	}
	if f.Chunks == 1 {
		// Single-frame fast path: nothing to buffer, the payload is
		// handed over without a copy.
		r.done[key] = true
		return f, true, true, nil
	}
	if len(f.Payload) == 0 {
		// Senders never produce empty chunks of a multi-chunk message
		// (only a lone empty chunk); accepting one would let a short
		// payload masquerade as complete.
		return Frame{}, false, false, fmt.Errorf("%w: empty chunk %d of %d from node %d",
			ErrBadFrame, f.Chunk, f.Chunks, f.From)
	}
	if p == nil {
		p = &partialMsg{kind: f.Kind, total: f.Chunks, lastLen: -1}
		r.partial[key] = p
	}
	final := f.Chunk == f.Chunks-1

	if p.stride == 0 && !final {
		// First non-final chunk: it defines the stride, and with it the
		// full buffer size. Validate the stream shape and the budget
		// before allocating anything, so a rejected frame leaves the
		// partial untouched and the reassembler usable. The budget is
		// charged for the WHOLE buffer at allocation time — the budget
		// bounds allocated reassembly memory, not just arrived bytes, or
		// a peer could open many barely-started streams with huge
		// declared counts and allocate far beyond the budget.
		stride := len(f.Payload)
		if p.lastLen > stride {
			return Frame{}, false, false, fmt.Errorf(
				"%w: final chunk of stream (from %d, seq %d) is %d bytes but non-final chunks are %d",
				ErrBadFrame, f.From, f.Seq, p.lastLen, stride)
		}
		full := int64(stride) * int64(p.total)
		if full > int64(r.budget) {
			mReasmRejects.Inc()
			return Frame{}, false, false, fmt.Errorf(
				"%w: %d-chunk stream of %d-byte chunks from node %d could never fit budget %d",
				ErrChunkBudget, p.total, stride, f.From, r.budget)
		}
		// The stash charge (p.bytes) is refunded: its bytes move into
		// the buffer the full charge covers.
		if r.used-p.bytes+int(full) > r.budget {
			mReasmRejects.Inc()
			return Frame{}, false, false, fmt.Errorf(
				"%w: %d buffered + %d-byte stream buffer from node %d exceeds budget %d",
				ErrChunkBudget, r.used-p.bytes, int(full), f.From, r.budget)
		}
		p.stride = stride
		p.buf = make([]byte, full)
		p.arrived = make([]uint64, (p.total+63)/64)
		r.used += int(full) - p.bytes
		p.bytes = int(full)
		if p.lastLen >= 0 {
			// Migrate the stashed final chunk into its place.
			copy(p.buf[int(p.total-1)*stride:], p.last)
			p.last = nil
			p.arrived[(p.total-1)/64] |= 1 << ((p.total - 1) % 64)
			p.n = 1
		}
	}

	if p.stride == 0 {
		// Only the final chunk has arrived so far; stash it until a
		// non-final chunk reveals the stride.
		if p.lastLen >= 0 {
			return Frame{}, false, false, nil // duplicate final chunk
		}
		if r.used+len(f.Payload) > r.budget {
			mReasmRejects.Inc()
			return Frame{}, false, false, fmt.Errorf(
				"%w: %d buffered + %d-byte chunk from node %d exceeds budget %d",
				ErrChunkBudget, r.used, len(f.Payload), f.From, r.budget)
		}
		p.last, p.lastLen = f.Payload, len(f.Payload)
		p.bytes += len(f.Payload)
		r.used += len(f.Payload)
		return Frame{}, false, true, nil // total ≥ 2: never completes here
	}

	w, bit := f.Chunk/64, uint64(1)<<(f.Chunk%64)
	if p.arrived[w]&bit != 0 {
		return Frame{}, false, false, nil // duplicate chunk absorbed
	}
	if final {
		if len(f.Payload) > p.stride {
			return Frame{}, false, false, fmt.Errorf(
				"%w: final chunk of stream (from %d, seq %d) is %d bytes but non-final chunks are %d",
				ErrBadFrame, f.From, f.Seq, len(f.Payload), p.stride)
		}
	} else if len(f.Payload) != p.stride {
		return Frame{}, false, false, fmt.Errorf(
			"%w: chunk %d of stream (from %d, seq %d) is %d bytes but the stride is %d",
			ErrBadFrame, f.Chunk, f.From, f.Seq, len(f.Payload), p.stride)
	}
	// No budget charge here: the stream's whole buffer was charged when
	// it was allocated, and this chunk fills pre-charged space.
	copy(p.buf[int(f.Chunk)*p.stride:], f.Payload)
	if final {
		p.lastLen = len(f.Payload)
	}
	p.arrived[w] |= bit
	p.n++
	if p.n < int(p.total) {
		return Frame{}, false, true, nil
	}
	// Complete: the payload is the buffer, already in chunk order — no
	// second concatenation copy.
	payload := p.buf[:int(p.total-1)*p.stride+p.lastLen]
	r.used -= p.bytes
	delete(r.partial, key)
	r.done[key] = true
	msg = f
	msg.Chunk, msg.Chunks, msg.Payload = 0, 1, payload
	return msg, true, true, nil
}

// missing returns the chunk indexes still absent from the partially
// received message (from, seq), in ascending order, or nil if no chunk
// of the message has arrived yet (so the caller should re-request the
// whole stream).
func (r *reassembler) missing(from int, seq uint32) []uint32 {
	p := r.partial[dedupKey(from, seq)]
	if p == nil {
		return nil
	}
	idx := make([]uint32, 0, int(p.total)-p.n)
	if p.arrived == nil {
		// Stride not learned yet: at most the stashed final chunk is here.
		for i := uint32(0); i < p.total; i++ {
			if p.lastLen < 0 || i != p.total-1 {
				idx = append(idx, i)
			}
		}
		return idx
	}
	for i := uint32(0); i < p.total; i++ {
		if p.arrived[i/64]&(1<<(i%64)) == 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// maxChunkRequests bounds the targeted re-requests issued for one
// stream per deadline round, so a barely started many-thousand-chunk
// message does not answer every timeout with a request flood (and a
// matching flood of retransmissions racing the still-in-flight
// originals). Any arrival resets the round budget, and later rounds
// ask for whatever is still missing, so convergence is unaffected.
const maxChunkRequests = 64

// requestMissing sends the re-request frames for peer's stream seq:
// targeted KindResends for (up to maxChunkRequests of) the missing
// chunks when part of the message has arrived — so a single lost chunk
// costs one chunk of retransmit, not the whole logical message — or a
// whole-stream request when nothing has.
func requestMissing(tr Transport, r *reassembler, id, peer int, seq uint32) {
	idx := r.missing(peer, seq)
	if idx == nil {
		mResendReqs.Inc()
		_ = tr.Send(Frame{Kind: KindResend, From: id, To: peer, Seq: seq})
		return
	}
	if len(idx) > maxChunkRequests {
		idx = idx[:maxChunkRequests]
	}
	mResendReqs.Add(uint64(len(idx)))
	for _, i := range idx {
		_ = tr.Send(Frame{Kind: KindResend, From: id, To: peer, Seq: seq, Chunk: i, Chunks: 1})
	}
}
