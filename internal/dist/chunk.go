package dist

import "fmt"

// Chunked logical messages. A logical message (one partial state, one
// shuffle frame, one gather frame, one error) whose payload exceeds the
// configured chunk payload travels as a stream of wire frames sharing
// (Kind, From, To, Seq) and numbered Chunk 0..Chunks−1. The split is a
// pure transport concern: receivers reassemble the exact payload bytes
// before any protocol code sees them, so merge order per key and every
// other reproducibility property are untouched — chunking only decides
// how many wire frames carry the same canonical bytes.

// DefaultChunkPayload is the chunk payload size used when Config leaves
// MaxChunkPayload zero: the codec's frame ceiling, so every payload
// that fit in one wire frame before chunking existed still travels as
// exactly one frame.
const DefaultChunkPayload = MaxFramePayload

// DefaultReassemblyBudget bounds the bytes a node buffers for
// incomplete incoming messages when Config leaves ReassemblyBudget
// zero (1 GiB).
const DefaultReassemblyBudget = 1 << 30

// splitFrame splits one logical frame into its wire chunks: every chunk
// carries at most maxChunk payload bytes, all but the last exactly
// maxChunk. Payloads alias f.Payload (no copying — the in-process
// transport stays zero-copy). An empty payload yields one empty chunk,
// so receivers can still count senders.
func splitFrame(f Frame, maxChunk int) []Frame {
	if maxChunk <= 0 || maxChunk > MaxFramePayload {
		maxChunk = DefaultChunkPayload
	}
	n := (len(f.Payload) + maxChunk - 1) / maxChunk
	if n == 0 {
		n = 1
	}
	chunks := make([]Frame, n)
	for i := 0; i < n; i++ {
		c := f
		c.Chunk, c.Chunks = uint32(i), uint32(n)
		if len(f.Payload) > 0 {
			c.Payload = f.Payload[i*maxChunk : min((i+1)*maxChunk, len(f.Payload))]
		}
		chunks[i] = c
	}
	return chunks
}

// sendChunks transmits every chunk of a cached chunk list. Send
// failures are tolerated protocol-wide: the receiver's re-request path
// retries chunk by chunk, and a closed transport surfaces through Recv.
func sendChunks(tr Transport, chunks []Frame) {
	for _, c := range chunks {
		_ = tr.Send(c)
	}
}

// serveResend answers one KindResend with the requested chunks of a
// cached outgoing chunk list: the whole stream for a Chunks == 0
// selector, the single chunk index req.Chunk for Chunks == 1. An
// out-of-range index is ignored (a hostile or confused peer cannot
// make us send frames we never produced).
func serveResend(tr Transport, chunks []Frame, req Frame) {
	if req.Chunks == 0 {
		sendChunks(tr, chunks)
		return
	}
	if int64(req.Chunk) < int64(len(chunks)) {
		_ = tr.Send(chunks[req.Chunk])
	}
}

// partialMsg is one incoming logical message mid-reassembly.
type partialMsg struct {
	kind   byte
	total  uint32            // declared chunk count
	chunks map[uint32][]byte // arrived chunks by index
	bytes  int               // buffered payload bytes
}

// reassembler rebuilds logical messages from chunk streams on one
// node's receive path. It buffers out-of-order chunks, deduplicates per
// chunk (a retransmitted or fault-duplicated chunk is absorbed exactly
// once), remembers completed messages so whole-message retransmissions
// are swallowed (this subsumes the pre-chunking per-message dedup), and
// enforces a total byte budget across all incomplete messages so a
// hostile peer cannot OOM the node. It revalidates chunk headers
// itself: frames arriving by reference through ChanTransport never pass
// the wire decoder.
type reassembler struct {
	budget  int
	used    int
	partial map[uint64]*partialMsg // keyed by dedupKey(From, Seq)
	done    dedup
}

func newReassembler(budget int) *reassembler {
	if budget <= 0 {
		budget = DefaultReassemblyBudget
	}
	return &reassembler{
		budget:  budget,
		partial: make(map[uint64]*partialMsg),
		done:    make(dedup),
	}
}

// accept consumes one wire frame. When the frame completes its logical
// message, accept returns the message with its full payload and
// complete = true; the message is then marked done and all further
// deliveries on its (From, Seq) stream are swallowed. fresh reports
// whether the frame contributed new bytes (the protocols' straggler
// give-up budget measures silence, and a chunk of a still-incomplete
// message is progress). Inconsistent streams — mismatched chunk counts
// or kinds, out-of-range indexes, empty chunks of a multi-chunk
// message — and budget exhaustion yield an error; the frame is
// discarded and the reassembler stays usable.
func (r *reassembler) accept(f Frame) (msg Frame, complete, fresh bool, err error) {
	key := dedupKey(f.From, f.Seq)
	if r.done[key] {
		return Frame{}, false, false, nil
	}
	if err := validChunkFields(f.Kind, f.Chunk, f.Chunks); err != nil {
		return Frame{}, false, false, err
	}
	p := r.partial[key]
	if p != nil && (p.total != f.Chunks || p.kind != f.Kind) {
		// Shape change mid-stream — including a single-chunk frame on a
		// key that already buffered a multi-chunk partial, which the
		// fast path below must not silently "complete" over.
		return Frame{}, false, false, fmt.Errorf(
			"%w: chunk stream (from %d, seq %d) changed shape: %d-chunk kind %d vs %d-chunk kind %d",
			ErrBadFrame, f.From, f.Seq, p.total, p.kind, f.Chunks, f.Kind)
	}
	if f.Chunks == 1 {
		// Single-frame fast path: nothing to buffer, the payload is
		// handed over without a copy.
		r.done[key] = true
		return f, true, true, nil
	}
	if len(f.Payload) == 0 {
		// Senders never produce empty chunks of a multi-chunk message
		// (only a lone empty chunk); accepting one would let a short
		// payload masquerade as complete.
		return Frame{}, false, false, fmt.Errorf("%w: empty chunk %d of %d from node %d",
			ErrBadFrame, f.Chunk, f.Chunks, f.From)
	}
	if p == nil {
		p = &partialMsg{kind: f.Kind, total: f.Chunks, chunks: make(map[uint32][]byte)}
		r.partial[key] = p
	}
	if _, dup := p.chunks[f.Chunk]; dup {
		return Frame{}, false, false, nil
	}
	if r.used+len(f.Payload) > r.budget {
		return Frame{}, false, false, fmt.Errorf(
			"%w: %d buffered + %d-byte chunk from node %d exceeds budget %d",
			ErrChunkBudget, r.used, len(f.Payload), f.From, r.budget)
	}
	p.chunks[f.Chunk] = f.Payload
	p.bytes += len(f.Payload)
	r.used += len(f.Payload)
	if len(p.chunks) < int(p.total) {
		return Frame{}, false, true, nil
	}
	// Complete: concatenate in chunk order.
	payload := make([]byte, 0, p.bytes)
	for i := uint32(0); i < p.total; i++ {
		payload = append(payload, p.chunks[i]...)
	}
	r.used -= p.bytes
	delete(r.partial, key)
	r.done[key] = true
	msg = f
	msg.Chunk, msg.Chunks, msg.Payload = 0, 1, payload
	return msg, true, true, nil
}

// missing returns the chunk indexes still absent from the partially
// received message (from, seq), in ascending order, or nil if no chunk
// of the message has arrived yet (so the caller should re-request the
// whole stream).
func (r *reassembler) missing(from int, seq uint32) []uint32 {
	p := r.partial[dedupKey(from, seq)]
	if p == nil {
		return nil
	}
	idx := make([]uint32, 0, int(p.total)-len(p.chunks))
	for i := uint32(0); i < p.total; i++ {
		if _, ok := p.chunks[i]; !ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// maxChunkRequests bounds the targeted re-requests issued for one
// stream per deadline round, so a barely started many-thousand-chunk
// message does not answer every timeout with a request flood (and a
// matching flood of retransmissions racing the still-in-flight
// originals). Any arrival resets the round budget, and later rounds
// ask for whatever is still missing, so convergence is unaffected.
const maxChunkRequests = 64

// requestMissing sends the re-request frames for peer's stream seq:
// targeted KindResends for (up to maxChunkRequests of) the missing
// chunks when part of the message has arrived — so a single lost chunk
// costs one chunk of retransmit, not the whole logical message — or a
// whole-stream request when nothing has.
func requestMissing(tr Transport, r *reassembler, id, peer int, seq uint32) {
	idx := r.missing(peer, seq)
	if idx == nil {
		_ = tr.Send(Frame{Kind: KindResend, From: id, To: peer, Seq: seq})
		return
	}
	if len(idx) > maxChunkRequests {
		idx = idx[:maxChunkRequests]
	}
	for _, i := range idx {
		_ = tr.Send(Frame{Kind: KindResend, From: id, To: peer, Seq: seq, Chunk: i, Chunks: 1})
	}
}
