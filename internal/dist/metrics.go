package dist

import "repro/internal/obs"

// The data plane's wire counters, registered on the process-global
// obs.Default registry. Handles are package-level so the hot paths
// (frame write/read, chunk split, reassembly) record through a single
// pre-resolved atomic — no map lookup, no allocation — which is what
// keeps the zero-alloc shuffle pins intact with instrumentation on.
// Worker processes read the same counters through WireStats and ship
// them to the supervisor piggybacked on heartbeat pings.
var (
	mFramesOut = obs.Default.Counter("repro_dist_wire_frames_out_total",
		"Wire frames written (every chunk written to a socket counts once).")
	mFramesIn = obs.Default.Counter("repro_dist_wire_frames_in_total",
		"Wire frames read and CRC-validated.")
	mBytesOut = obs.Default.Counter("repro_dist_wire_bytes_out_total",
		"Wire bytes written, headers and checksums included.")
	mBytesIn = obs.Default.Counter("repro_dist_wire_bytes_in_total",
		"Wire bytes read, headers and checksums included.")
	mChanFrames = obs.Default.Counter("repro_dist_chan_frames_total",
		"Frames delivered by reference over the in-process chan transport.")
	mChunksSplit = obs.Default.Counter("repro_dist_chunks_split_total",
		"Chunks produced by splitting logical messages for the wire.")
	mRetransmits = obs.Default.Counter("repro_dist_retransmit_chunks_total",
		"Chunks re-sent from cache in answer to a resend request.")
	mResendReqs = obs.Default.Counter("repro_dist_resend_requests_total",
		"Resend requests issued for missing chunks (straggler recovery).")
	mReasmRejects = obs.Default.Counter("repro_dist_reassembly_rejects_total",
		"Messages rejected by the reassembly memory budget.")
)

// WireStats is a point-in-time read of the process's data-plane wire
// counters. Workers encode one into each heartbeat ping; the
// supervisor folds the deltas into its ClusterStats so a cluster's
// aggregate traffic is visible from one place.
type WireStats struct {
	FramesOut, FramesIn uint64
	BytesOut, BytesIn   uint64
	ChanFrames          uint64
	ChunksSplit         uint64
	Retransmits         uint64
	ResendRequests      uint64
	ReassemblyRejects   uint64
}

// ReadWireStats snapshots the process-global wire counters.
func ReadWireStats() WireStats {
	return WireStats{
		FramesOut:         mFramesOut.Value(),
		FramesIn:          mFramesIn.Value(),
		BytesOut:          mBytesOut.Value(),
		BytesIn:           mBytesIn.Value(),
		ChanFrames:        mChanFrames.Value(),
		ChunksSplit:       mChunksSplit.Value(),
		Retransmits:       mRetransmits.Value(),
		ResendRequests:    mResendReqs.Value(),
		ReassemblyRejects: mReasmRejects.Value(),
	}
}

// Add folds another snapshot (or delta) into s field by field.
func (s *WireStats) Add(d WireStats) {
	s.FramesOut += d.FramesOut
	s.FramesIn += d.FramesIn
	s.BytesOut += d.BytesOut
	s.BytesIn += d.BytesIn
	s.ChanFrames += d.ChanFrames
	s.ChunksSplit += d.ChunksSplit
	s.Retransmits += d.Retransmits
	s.ResendRequests += d.ResendRequests
	s.ReassemblyRejects += d.ReassemblyRejects
}

// Sub returns s - prev with per-field clamping at zero: a counter that
// went backwards means the reporting process restarted (a replacement
// worker re-using a node slot), so its full current value is the delta.
func (s WireStats) Sub(prev WireStats) WireStats {
	d := func(cur, old uint64) uint64 {
		if cur < old {
			return cur
		}
		return cur - old
	}
	return WireStats{
		FramesOut:         d(s.FramesOut, prev.FramesOut),
		FramesIn:          d(s.FramesIn, prev.FramesIn),
		BytesOut:          d(s.BytesOut, prev.BytesOut),
		BytesIn:           d(s.BytesIn, prev.BytesIn),
		ChanFrames:        d(s.ChanFrames, prev.ChanFrames),
		ChunksSplit:       d(s.ChunksSplit, prev.ChunksSplit),
		Retransmits:       d(s.Retransmits, prev.Retransmits),
		ResendRequests:    d(s.ResendRequests, prev.ResendRequests),
		ReassemblyRejects: d(s.ReassemblyRejects, prev.ReassemblyRejects),
	}
}
