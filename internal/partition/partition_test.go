package partition

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestDoBasics(t *testing.T) {
	keys := []uint32{0, 1, 2, 3, 256, 257, 0}
	vals := []float64{10, 11, 12, 13, 14, 15, 16}
	out := Do(keys, vals, 0, 256, 1)
	if out.NumPartitions() != 256 {
		t.Fatalf("partitions = %d", out.NumPartitions())
	}
	pk, pv := out.Partition(0)
	// byte0 == 0: keys 0, 256, 0
	if len(pk) != 3 {
		t.Fatalf("partition 0 has %d keys", len(pk))
	}
	sum := 0.0
	for _, v := range pv {
		sum += v
	}
	if sum != 10+14+16 {
		t.Errorf("partition 0 values wrong: %v", pv)
	}
	pk, _ = out.Partition(1)
	if len(pk) != 2 { // 1 and 257
		t.Errorf("partition 1 has %d keys", len(pk))
	}
}

func TestPartitionIsPermutation(t *testing.T) {
	f := func(seed uint64, workersRaw uint8) bool {
		workers := int(workersRaw)%8 + 1
		keys := workload.Keys(seed, 5000, 10000)
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = uint64(i) // unique tags to verify pairing
		}
		out := Do(keys, vals, 0, 256, workers)
		if len(out.Keys) != len(keys) {
			return false
		}
		seen := make([]bool, len(keys))
		for i, k := range out.Keys {
			tag := out.Vals[i]
			if seen[tag] || keys[tag] != k {
				return false // pair broken or duplicated
			}
			seen[tag] = true
		}
		// Every element within a partition has the right radix byte.
		for p := 0; p < out.NumPartitions(); p++ {
			pk, _ := out.Partition(p)
			for _, k := range pk {
				if int(k&255) != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicForFixedWorkers(t *testing.T) {
	keys := workload.Keys(3, 10000, 4096)
	vals := workload.Values64(4, 10000, workload.Exp1)
	a := Do(keys, vals, 0, 256, 4)
	b := Do(keys, vals, 0, 256, 4)
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || a.Vals[i] != b.Vals[i] {
			t.Fatal("partitioning not deterministic for fixed worker count")
		}
	}
}

func TestStableWithinWorkerChunks(t *testing.T) {
	// With one worker, partitioning is fully stable: relative order of
	// equal-byte keys is preserved.
	keys := []uint32{256, 0, 512, 0, 256}
	vals := []int{1, 2, 3, 4, 5}
	out := Do(keys, vals, 0, 256, 1)
	_, pv := out.Partition(0)
	want := []int{1, 2, 3, 4, 5}
	for i := range pv {
		if pv[i] != want[i] {
			t.Fatalf("order not stable: %v", pv)
		}
	}
}

func TestRecursiveDepths(t *testing.T) {
	keys := workload.Keys(5, 20000, 1<<16)
	vals := workload.Values64(6, 20000, workload.Uniform12)
	for _, depth := range []int{0, 1, 2} {
		out := Recursive(keys, vals, depth, 256, 2)
		wantParts := 1
		for i := 0; i < depth; i++ {
			wantParts *= 256
		}
		if out.NumPartitions() != wantParts {
			t.Fatalf("depth %d: partitions = %d, want %d", depth, out.NumPartitions(), wantParts)
		}
		if len(out.Keys) != len(keys) {
			t.Fatalf("depth %d: lost rows", depth)
		}
		// Depth-2 property: within a partition all keys share their low
		// 16 bits, and the partition index is byte0·256 + byte1.
		if depth == 2 {
			for p := 0; p < out.NumPartitions(); p++ {
				pk, _ := out.Partition(p)
				for _, k := range pk {
					if int(k&255)*256+int((k>>8)&255) != p {
						t.Fatalf("depth-2 partition %d contains key %d", p, k)
					}
				}
			}
		}
		// Multiset preserved.
		got := append([]uint32(nil), out.Keys...)
		want := append([]uint32(nil), keys...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("depth %d: key multiset changed", depth)
			}
		}
	}
}

func TestEmptyAndSmallInputs(t *testing.T) {
	out := Do([]uint32{}, []float64{}, 0, 256, 4)
	if out.NumPartitions() != 256 || len(out.Keys) != 0 {
		t.Error("empty input mishandled")
	}
	out = Do([]uint32{7}, []float64{1}, 0, 256, 8)
	pk, pv := out.Partition(7)
	if len(pk) != 1 || pv[0] != 1 {
		t.Error("single element mishandled")
	}
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() { Do([]uint32{1}, []float64{1, 2}, 0, 256, 1) })
	mustPanic("bad fanout", func() { Do([]uint32{1}, []float64{1}, 0, 100, 1) })
	mustPanic("zero fanout", func() { Do([]uint32{1}, []float64{1}, 0, 0, 1) })
}

func TestDoBufferedMatchesDo(t *testing.T) {
	f := func(seed uint64, workersRaw uint8) bool {
		workers := int(workersRaw)%4 + 1
		keys := workload.Keys(seed, 3000, 1<<14)
		vals := workload.Values64(seed+1, 3000, workload.Exp1)
		a := Do(keys, vals, 0, 256, workers)
		b := DoBuffered(keys, vals, 0, 256, workers)
		if len(a.Keys) != len(b.Keys) {
			return false
		}
		for p := 0; p <= 256; p++ {
			if a.Off[p] != b.Off[p] {
				return false
			}
		}
		// Same multiset per partition (order within a worker segment is
		// stable for both, so outputs are in fact identical).
		for i := range a.Keys {
			if a.Keys[i] != b.Keys[i] || a.Vals[i] != b.Vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDoBufferedLargeFill(t *testing.T) {
	// More than swwcbSize elements per partition forces mid-stream
	// flushes.
	n := 256 * 200
	keys := make([]uint32, n)
	vals := make([]int, n)
	for i := range keys {
		keys[i] = uint32(i % 256)
		vals[i] = i
	}
	out := DoBuffered(keys, vals, 0, 256, 2)
	for p := 0; p < 256; p++ {
		pk, pv := out.Partition(p)
		if len(pk) != 200 {
			t.Fatalf("partition %d: %d elements", p, len(pk))
		}
		for i, k := range pk {
			if int(k) != p || vals[pv[i]%n] != pv[i] {
				t.Fatalf("partition %d corrupted", p)
			}
		}
	}
}

// TestDistinctBound: the bound must never undercount distinct keys (an
// aggregation table sized from it must not rehash), must be tight on
// dense domain-encoded ranges, and must fall back to the partition
// length on sparse keys.
func TestDistinctBound(t *testing.T) {
	const fanout = 256

	// Dense domain: keys 0..4095, each repeated 8 times. Partition p
	// holds 16 distinct keys spanning a range of 15·256, so the bound is
	// exactly 16 while the partition length is 128.
	var keys []uint32
	var vals []float64
	for rep := 0; rep < 8; rep++ {
		for k := uint32(0); k < 4096; k++ {
			keys = append(keys, k)
			vals = append(vals, 1)
		}
	}
	out := Do(keys, vals, 0, fanout, 2)
	for p := 0; p < out.NumPartitions(); p++ {
		pk, _ := out.Partition(p)
		distinct := make(map[uint32]bool)
		for _, k := range pk {
			distinct[k] = true
		}
		b := out.DistinctBound(p, fanout)
		if b < len(distinct) {
			t.Fatalf("partition %d: bound %d undercounts %d distinct keys", p, b, len(distinct))
		}
		if b != 16 {
			t.Fatalf("partition %d: dense bound = %d, want 16 (len %d)", p, b, len(pk))
		}
	}

	// Sparse random keys: the range argument is useless, so the bound
	// must cap at the partition length — and still never undercount.
	rng := workload.NewRNG(99)
	keys = keys[:0]
	vals = vals[:0]
	for i := 0; i < 20000; i++ {
		keys = append(keys, uint32(rng.Uint64()))
		vals = append(vals, 1)
	}
	out = Do(keys, vals, 0, fanout, 2)
	for p := 0; p < out.NumPartitions(); p++ {
		pk, _ := out.Partition(p)
		distinct := make(map[uint32]bool)
		for _, k := range pk {
			distinct[k] = true
		}
		b := out.DistinctBound(p, fanout)
		if b < len(distinct) || b > len(pk) {
			t.Fatalf("partition %d: bound %d outside [distinct %d, len %d]", p, b, len(distinct), len(pk))
		}
	}

	// Empty partition and unknown stride.
	empty := Do(nil, []float64(nil), 0, fanout, 1)
	if b := empty.DistinctBound(3, fanout); b != 0 {
		t.Fatalf("empty partition bound = %d", b)
	}
	single := Do([]uint32{7, 7, 7}, []float64{1, 2, 3}, 0, fanout, 1)
	if b := single.DistinctBound(7, 0); b != 1 {
		t.Fatalf("stride-0 single-key bound = %d, want 1", b)
	}
}
