// Package partition implements the parallel radix partitioning routine
// of Algorithm 4, line 1 (PARALLELPARTITION): ⟨key, value⟩ pairs are
// scattered into F = fanout output partitions by a byte of the key's
// hash (identity hashing, as in the aggregation operator). Larger
// fan-outs are realized recursively with several passes, matching the
// paper's F = f^d for f = 256 and d = 0, 1, 2, …
//
// Parallelization follows the standard two-phase scheme: every worker
// computes a histogram of its input chunk, a prefix sum over all
// (worker, partition) counts yields private write cursors, and the
// scatter phase then proceeds without synchronization. The logical
// output partition p is the concatenation of all workers' segments
// for p, which is deterministic for a fixed worker count — and, when
// the aggregates are reproducible types, the final query result is
// bit-identical for ANY worker count.
package partition

import (
	"runtime"
	"sync"
)

// Output holds partitioned key/value columns: partition p occupies
// Keys[Off[p]:Off[p+1]] and Vals[Off[p]:Off[p+1]].
type Output[V any] struct {
	Keys []uint32
	Vals []V
	Off  []int
}

// NumPartitions returns the partition count.
func (o *Output[V]) NumPartitions() int { return len(o.Off) - 1 }

// Partition returns the key and value slices of partition p.
func (o *Output[V]) Partition(p int) ([]uint32, []V) {
	return o.Keys[o.Off[p]:o.Off[p+1]], o.Vals[o.Off[p]:o.Off[p+1]]
}

// DistinctBound returns an upper bound on the number of distinct keys
// in partition p. stride is the guaranteed minimum gap between two
// distinct keys of the same partition: when Do routed on the low key
// byte (shift == 0), keys in one partition are congruent modulo the
// fan-out, so stride is the fan-out; pass 1 when no such gap is known.
// The bound is min(len(partition), (maxKey−minKey)/stride + 1) — tight
// for the dense domain-encoded key ranges common in column stores, and
// never below the true distinct count, so an aggregation table sized
// from it cannot rehash mid-partition.
func (o *Output[V]) DistinctBound(p int, stride uint32) int {
	pk, _ := o.Partition(p)
	if len(pk) == 0 {
		return 0
	}
	if stride == 0 {
		stride = 1
	}
	minK, maxK := pk[0], pk[0]
	for _, k := range pk[1:] {
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	if b := int((maxK-minK)/stride) + 1; b < len(pk) {
		return b
	}
	return len(pk)
}

// Do scatters the input into fanout partitions on the byte
// (key >> shift) & (fanout−1), using the given number of parallel
// workers (0 means GOMAXPROCS). fanout must be a power of two ≤ 65536.
func Do[V any](keys []uint32, vals []V, shift uint, fanout, workers int) Output[V] {
	if len(keys) != len(vals) {
		panic("partition: keys and values must have equal length")
	}
	if fanout <= 0 || fanout&(fanout-1) != 0 || fanout > 65536 {
		panic("partition: fanout must be a power of two in [1, 65536]")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(keys)
	if workers > n {
		workers = 1
	}
	mask := uint32(fanout - 1)

	out := Output[V]{
		Keys: make([]uint32, n),
		Vals: make([]V, n),
		Off:  make([]int, fanout+1),
	}
	if n == 0 {
		return out
	}

	// Phase 1: per-worker histograms.
	hists := make([][]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			hists[w] = make([]int, fanout)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := make([]int, fanout)
			for _, k := range keys[lo:hi] {
				h[(k>>shift)&mask]++
			}
			hists[w] = h
		}(w, lo, hi)
	}
	wg.Wait()

	// Phase 2: global prefix sums → per-(worker, partition) cursors.
	cursors := make([][]int, workers)
	for w := range cursors {
		cursors[w] = make([]int, fanout)
	}
	pos := 0
	for p := 0; p < fanout; p++ {
		out.Off[p] = pos
		for w := 0; w < workers; w++ {
			cursors[w][p] = pos
			pos += hists[w][p]
		}
	}
	out.Off[fanout] = pos

	// Phase 3: parallel scatter.
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cur := cursors[w]
			for i := lo; i < hi; i++ {
				k := keys[i]
				p := (k >> shift) & mask
				j := cur[p]
				cur[p] = j + 1
				out.Keys[j] = k
				out.Vals[j] = vals[i]
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}

// Recursive applies depth passes of fan-out `fanout` partitioning
// (pass d uses byte d of the key), yielding fanout^depth partitions —
// the paper's recursive PARTITIONING with F = f^d. depth 0 returns the
// input as a single partition without copying.
func Recursive[V any](keys []uint32, vals []V, depth, fanout, workers int) Output[V] {
	if depth == 0 {
		return Output[V]{Keys: keys, Vals: vals, Off: []int{0, len(keys)}}
	}
	radixBits := uint(0)
	for f := fanout; f > 1; f >>= 1 {
		radixBits++
	}
	cur := Do(keys, vals, 0, fanout, workers)
	for d := 1; d < depth; d++ {
		shift := uint(d) * radixBits
		next := Output[V]{
			Keys: make([]uint32, len(cur.Keys)),
			Vals: make([]V, len(cur.Vals)),
			Off:  make([]int, 0, (len(cur.Off)-1)*fanout+1),
		}
		nextPos := 0
		next.Off = append(next.Off, 0)
		for p := 0; p < cur.NumPartitions(); p++ {
			pk, pv := cur.Partition(p)
			sub := Do(pk, pv, shift, fanout, workers)
			copy(next.Keys[nextPos:], sub.Keys)
			copy(next.Vals[nextPos:], sub.Vals)
			for sp := 1; sp <= sub.NumPartitions(); sp++ {
				next.Off = append(next.Off, nextPos+sub.Off[sp])
			}
			nextPos += len(pk)
		}
		cur = next
	}
	return cur
}

// swwcbSize is the per-partition software write-combining buffer size
// (in elements) of DoBuffered. 64 key/value pairs fill several cache
// lines, the sweet spot reported by Schuhknecht et al. ("On the
// Surprising Difficulty of Simple Things: the Case of Radix
// Partitioning"), which the paper cites for its tuned routine.
const swwcbSize = 64

// DoBuffered is Do with software-managed write-combining buffers: each
// worker stages elements per partition in a small local buffer and
// writes them out in bursts, converting the random scatter into mostly
// sequential memory traffic. Same output layout and determinism
// contract as Do for a fixed worker count. Provided as the tuned
// variant the paper's partitioning relies on; BenchmarkAblations
// compares the two.
func DoBuffered[V any](keys []uint32, vals []V, shift uint, fanout, workers int) Output[V] {
	if len(keys) != len(vals) {
		panic("partition: keys and values must have equal length")
	}
	if fanout <= 0 || fanout&(fanout-1) != 0 || fanout > 65536 {
		panic("partition: fanout must be a power of two in [1, 65536]")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(keys)
	if workers > n {
		workers = 1
	}
	mask := uint32(fanout - 1)

	out := Output[V]{
		Keys: make([]uint32, n),
		Vals: make([]V, n),
		Off:  make([]int, fanout+1),
	}
	if n == 0 {
		return out
	}

	hists := make([][]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			hists[w] = make([]int, fanout)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := make([]int, fanout)
			for _, k := range keys[lo:hi] {
				h[(k>>shift)&mask]++
			}
			hists[w] = h
		}(w, lo, hi)
	}
	wg.Wait()

	cursors := make([][]int, workers)
	for w := range cursors {
		cursors[w] = make([]int, fanout)
	}
	pos := 0
	for p := 0; p < fanout; p++ {
		out.Off[p] = pos
		for w := 0; w < workers; w++ {
			cursors[w][p] = pos
			pos += hists[w][p]
		}
	}
	out.Off[fanout] = pos

	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cur := cursors[w]
			bufK := make([]uint32, fanout*swwcbSize)
			bufV := make([]V, fanout*swwcbSize)
			fill := make([]int, fanout)
			flush := func(p uint32) {
				base := int(p) * swwcbSize
				j := cur[p]
				copy(out.Keys[j:], bufK[base:base+fill[p]])
				copy(out.Vals[j:], bufV[base:base+fill[p]])
				cur[p] = j + fill[p]
				fill[p] = 0
			}
			for i := lo; i < hi; i++ {
				k := keys[i]
				p := (k >> shift) & mask
				base := int(p)*swwcbSize + fill[p]
				bufK[base] = k
				bufV[base] = vals[i]
				fill[p]++
				if fill[p] == swwcbSize {
					flush(p)
				}
			}
			for p := 0; p < fanout; p++ {
				if fill[p] > 0 {
					flush(uint32(p))
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}
