package hashagg

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

type sumAcc float64

func (s *sumAcc) Add(v float64)       { *s += sumAcc(v) }
func (s *sumAcc) MergeFrom(o *sumAcc) { *s += *o }

func newSum() sumAcc { return 0 }

func TestUpsertGetBasics(t *testing.T) {
	tb := New[sumAcc](4, Identity, newSum)
	*tb.Upsert(1) += 10
	*tb.Upsert(2) += 20
	*tb.Upsert(1) += 1
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
	if got := *tb.Get(1); got != 11 {
		t.Errorf("Get(1) = %v", got)
	}
	if got := *tb.Get(2); got != 20 {
		t.Errorf("Get(2) = %v", got)
	}
	if tb.Get(3) != nil {
		t.Error("Get(3) should be nil")
	}
}

func TestKeyZeroWorks(t *testing.T) {
	// Key 0 must be a first-class key (no sentinel confusion).
	tb := New[sumAcc](4, Identity, newSum)
	*tb.Upsert(0) += 5
	*tb.Upsert(0) += 5
	if got := *tb.Get(0); got != 10 {
		t.Errorf("key 0 aggregate = %v", got)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestGrowthPreservesAggregates(t *testing.T) {
	tb := New[sumAcc](4, Identity, newSum)
	const n = 10000
	for i := 0; i < n; i++ {
		*tb.Upsert(uint32(i % 1000)) += 1
	}
	if tb.Len() != 1000 {
		t.Fatalf("Len = %d", tb.Len())
	}
	for k := uint32(0); k < 1000; k++ {
		if got := *tb.Get(k); got != n/1000 {
			t.Fatalf("key %d = %v, want %d", k, got, n/1000)
		}
	}
}

func TestMatchesMapReference(t *testing.T) {
	f := func(seed uint64, hashSel bool) bool {
		h := Identity
		if hashSel {
			h = Multiplicative
		}
		keys := workload.Keys(seed, 2000, 97) // non-power-of-two group count
		vals := workload.Values64(seed+1, 2000, workload.Exp1)
		tb := New[sumAcc](8, h, newSum)
		Aggregate[float64, sumAcc](tb, keys, vals)
		ref := make(map[uint32]float64)
		for i, k := range keys {
			ref[k] += vals[i]
		}
		if tb.Len() != len(ref) {
			return false
		}
		okAll := true
		tb.ForEach(func(key uint32, a *sumAcc) {
			if float64(*a) != ref[key] {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAdversarialClusteredKeys(t *testing.T) {
	// Identity hashing with clustered keys forces long probe chains;
	// correctness must not degrade.
	tb := New[sumAcc](4, Identity, newSum)
	for round := 0; round < 3; round++ {
		for k := uint32(0); k < 512; k++ {
			*tb.Upsert(k * 1024) += 1 // all collide to slot 0 in a small table
		}
	}
	if tb.Len() != 512 {
		t.Fatalf("Len = %d", tb.Len())
	}
	for k := uint32(0); k < 512; k++ {
		if got := *tb.Get(k * 1024); got != 3 {
			t.Fatalf("key %d = %v", k*1024, got)
		}
	}
}

func TestMergeTables(t *testing.T) {
	a := New[sumAcc](4, Identity, newSum)
	b := New[sumAcc](4, Identity, newSum)
	*a.Upsert(1) += 1
	*a.Upsert(2) += 2
	*b.Upsert(2) += 20
	*b.Upsert(3) += 30
	MergeTables[sumAcc](a, b)
	if *a.Get(1) != 1 || *a.Get(2) != 22 || *a.Get(3) != 30 {
		t.Errorf("merge result wrong: %v %v %v", *a.Get(1), *a.Get(2), *a.Get(3))
	}
}

func TestAggregateLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	tb := New[sumAcc](4, Identity, newSum)
	Aggregate[float64, sumAcc](tb, []uint32{1}, []float64{1, 2})
}

func TestSizeHint(t *testing.T) {
	if SizeHint(0) != 8 || SizeHint(7) != 8 {
		t.Error("small hints")
	}
	if SizeHint(100) < 100 {
		t.Error("hint too small")
	}
}

func TestHashFunctions(t *testing.T) {
	// Multiplicative must spread consecutive keys; identity must not.
	maskVal := uint32(255)
	slots := make(map[uint32]bool)
	for k := uint32(0); k < 100; k++ {
		slots[Multiplicative.apply(k*256, maskVal)] = true
	}
	if len(slots) < 50 {
		t.Errorf("multiplicative hashing collapsed: %d distinct slots", len(slots))
	}
	if Identity.apply(42, maskVal) != 42 {
		t.Error("identity hash changed the key")
	}
}

type resettableAcc struct {
	sum   float64
	buf   []float64 // stands in for a summation buffer
	reset int
}

func (r *resettableAcc) Add(v float64) { r.sum += v }
func (r *resettableAcc) Reset()        { r.sum = 0; r.reset++ }

func TestClearRecyclesPayloads(t *testing.T) {
	tb := New[resettableAcc](8, Identity, func() resettableAcc {
		return resettableAcc{buf: make([]float64, 4)}
	})
	a := tb.Upsert(3)
	a.Add(5)
	bufBefore := &a.buf[0]
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("Clear did not empty the table")
	}
	// Reinserting the same key must recycle the payload (Reset, keep buf).
	b := tb.Upsert(3)
	if b.sum != 0 || b.reset != 1 {
		t.Errorf("payload not reset: %+v", *b)
	}
	if &b.buf[0] != bufBefore {
		t.Error("buffer was reallocated instead of recycled")
	}
	// A different key hitting a fresh slot gets a new payload.
	c := tb.Upsert(4)
	if c.reset != 0 || c.buf == nil {
		t.Errorf("fresh payload wrong: %+v", *c)
	}
}

func TestClearWithNonResettable(t *testing.T) {
	tb := New[sumAcc](8, Identity, newSum)
	*tb.Upsert(1) += 7
	tb.Clear()
	if got := *tb.Upsert(1); got != 0 {
		t.Errorf("non-resettable payload not reinitialized: %v", got)
	}
}

func TestClearRepeatedPartitions(t *testing.T) {
	// Simulate the worker loop: many partitions through one table.
	tb := New[sumAcc](8, Identity, newSum)
	for part := 0; part < 50; part++ {
		for k := uint32(0); k < 20; k++ {
			*tb.Upsert(k) += 1
		}
		if tb.Len() != 20 {
			t.Fatalf("partition %d: len %d", part, tb.Len())
		}
		tb.ForEach(func(key uint32, a *sumAcc) {
			if *a != 1 {
				t.Fatalf("partition %d key %d: %v", part, key, *a)
			}
		})
		tb.Clear()
	}
}
