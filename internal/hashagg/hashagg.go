// Package hashagg implements the textbook HASHAGGREGATION operator the
// paper builds on: an open-addressing hash table with linear probing,
// power-of-two capacity, and identity hashing of uint32 keys (the paper
// uses identity hashing because dense key ranges are common in column
// stores due to domain encoding; multiplicative hashing is provided for
// the ablation the paper mentions in Section VI-A).
//
// The table is generic over the aggregate payload type A, so the same
// operator runs on built-in floats, DECIMALs, reproducible types, and
// buffered reproducible types — exactly the drop-in property of
// Section IV.
package hashagg

import "math/bits"

// Hash selects the hash function applied to keys.
type Hash int

const (
	// Identity uses the key itself (the paper's IDENTITYHASHING).
	Identity Hash = iota
	// Multiplicative uses Fibonacci hashing (Knuth's multiplicative
	// method); "using a real hash function would make all algorithms
	// slower by the same constant" (Section VI-A).
	Multiplicative
)

func (h Hash) apply(key, mask uint32) uint32 {
	if h == Identity {
		return key & mask
	}
	return (key * 2654435761) >> 7 & mask
}

// Adder is the interface the aggregation loop requires from a pointer
// to an aggregate payload: fold one value in.
type Adder[V any] interface{ Add(V) }

// Merger is required for combining per-thread aggregates.
type Merger[A any] interface{ MergeFrom(*A) }

// Table is an open-addressing aggregation hash table mapping uint32 keys
// to aggregate payloads of type A. Not safe for concurrent writes; the
// partitioned operator gives each goroutine a private table.
type Table[A any] struct {
	keys  []uint32
	used  []bool
	aggs  []A
	mask  uint32
	n     int
	hash  Hash
	newA  func() A
	stale []bool // slots with a recyclable (allocated but cleared) payload
}

// New returns a table pre-sized for about hint entries. newA initializes
// the payload of a freshly inserted key (lazily, on first insert).
func New[A any](hint int, hash Hash, newA func() A) *Table[A] {
	capacity := 16
	for capacity < hint*2 {
		capacity <<= 1
	}
	return &Table[A]{
		keys:  make([]uint32, capacity),
		used:  make([]bool, capacity),
		aggs:  make([]A, capacity),
		stale: make([]bool, capacity),
		mask:  uint32(capacity - 1),
		hash:  hash,
		newA:  newA,
	}
}

// Len returns the number of distinct keys in the table.
func (t *Table[A]) Len() int { return t.n }

// Cap returns the current slot capacity.
func (t *Table[A]) Cap() int { return len(t.keys) }

// Upsert returns the payload slot for key, inserting and initializing
// it if absent. The returned pointer is invalidated by the next Upsert
// (the table may grow).
func (t *Table[A]) Upsert(key uint32) *A {
	i := t.hash.apply(key, t.mask)
	for t.used[i] {
		if t.keys[i] == key {
			return &t.aggs[i]
		}
		i = (i + 1) & t.mask
	}
	if t.n >= len(t.keys)*7/10 {
		t.grow()
		// Re-probe in the grown table.
		i = t.hash.apply(key, t.mask)
		for t.used[i] {
			if t.keys[i] == key {
				return &t.aggs[i]
			}
			i = (i + 1) & t.mask
		}
	}
	t.used[i] = true
	t.keys[i] = key
	if t.stale[i] {
		t.stale[i] = false
		if r, ok := any(&t.aggs[i]).(Resettable); ok {
			r.Reset()
		} else {
			t.aggs[i] = t.newA()
		}
	} else {
		t.aggs[i] = t.newA()
	}
	t.n++
	return &t.aggs[i]
}

// Get returns the payload for key, or nil if absent.
func (t *Table[A]) Get(key uint32) *A {
	i := t.hash.apply(key, t.mask)
	for t.used[i] {
		if t.keys[i] == key {
			return &t.aggs[i]
		}
		i = (i + 1) & t.mask
	}
	return nil
}

func (t *Table[A]) grow() {
	oldKeys, oldUsed, oldAggs := t.keys, t.used, t.aggs
	capacity := len(oldKeys) * 2
	t.keys = make([]uint32, capacity)
	t.used = make([]bool, capacity)
	t.aggs = make([]A, capacity)
	t.stale = make([]bool, capacity)
	t.mask = uint32(capacity - 1)
	for i, u := range oldUsed {
		if !u {
			continue
		}
		j := t.hash.apply(oldKeys[i], t.mask)
		for t.used[j] {
			j = (j + 1) & t.mask
		}
		t.used[j] = true
		t.keys[j] = oldKeys[i]
		t.aggs[j] = oldAggs[i]
	}
}

// ForEach visits every (key, payload) pair in slot order. Slot order
// depends on insertion history; callers needing a canonical order sort
// the keys themselves (GROUPBY output is a set).
func (t *Table[A]) ForEach(fn func(key uint32, a *A)) {
	for i, u := range t.used {
		if u {
			fn(t.keys[i], &t.aggs[i])
		}
	}
}

// Aggregate is the HASHAGGREGATION inner loop: for every ⟨key, value⟩
// pair, look up the group's aggregate and fold the value in. The PA
// constraint statically binds the payload's Add method.
func Aggregate[V any, A any, PA interface {
	*A
	Adder[V]
}](t *Table[A], keys []uint32, vals []V) {
	if len(keys) != len(vals) {
		panic("hashagg: keys and values must have equal length")
	}
	for i, k := range keys {
		PA(t.Upsert(k)).Add(vals[i])
	}
}

// MergeTables folds src into dst group-wise (the transfer to the shared
// table of Algorithm 4, lines 4–6).
func MergeTables[A any, PA interface {
	*A
	Merger[A]
}](dst, src *Table[A]) {
	src.ForEach(func(key uint32, a *A) {
		PA(dst.Upsert(key)).MergeFrom(a)
	})
}

// SizeHint returns a capacity hint that avoids growth for n expected
// groups.
func SizeHint(n int) int {
	if n < 8 {
		return 8
	}
	return 1 << bits.Len(uint(n))
}

// Resettable payloads can be recycled in place when a table is reused
// across partitions — this is what keeps buffered reproducible
// aggregation from reallocating its summation buffers for every
// partition (the paper's implementation reuses the per-thread table
// memory the same way).
type Resettable interface{ Reset() }

// Clear marks every slot unused but keeps slot payloads allocated, so a
// worker can reuse one table (and the buffers inside its payloads) for
// many partitions. Payloads of previously used slots are recycled via
// Resettable when the slot is next inserted; non-Resettable payloads
// are simply overwritten by newA.
func (t *Table[A]) Clear() {
	for i := range t.used {
		if t.used[i] {
			t.used[i] = false
			t.stale[i] = true
		}
	}
	t.n = 0
}
