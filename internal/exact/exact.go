// Package exact provides reference summation algorithms and the error
// bounds of the paper's Section VI-B: an arbitrary-precision exact sum
// (the ground truth for accuracy experiments), the plain left-to-right
// sum (the paper's std::accumulate baseline, "CONV"), Neumaier's
// compensated sum (an accuracy reference that is fast but *not*
// reproducible), and the analytic error bounds of Eq. 5 and Eq. 6.
package exact

import (
	"math"
	"math/big"

	"repro/internal/floatbits"
)

// bigPrec is the working precision for the exact reference sum. 2100
// bits cover the full float64 exponent range (≈ 2·1024 + 52), so adding
// float64 values at this precision is exact until astronomically many
// values are accumulated.
const bigPrec = 2100

// Sum returns the mathematically exact sum of xs as a big.Float.
// NaN or Inf inputs are not supported (big.Float has no NaN); callers
// filter them first.
func Sum(xs []float64) *big.Float {
	acc := new(big.Float).SetPrec(bigPrec)
	t := new(big.Float).SetPrec(bigPrec)
	for _, x := range xs {
		t.SetFloat64(x)
		acc.Add(acc, t)
	}
	return acc
}

// SumFloat64 returns the exact sum correctly rounded to float64.
func SumFloat64(xs []float64) float64 {
	f, _ := Sum(xs).Float64()
	return f
}

// AbsError returns |v − exact(xs)| as a float64.
func AbsError(v float64, exact *big.Float) float64 {
	d := new(big.Float).SetPrec(bigPrec).SetFloat64(v)
	d.Sub(d, exact)
	d.Abs(d)
	f, _ := d.Float64()
	return f
}

// Naive64 is the conventional left-to-right floating-point sum — the
// paper's CONV baseline (std::accumulate). It is order-dependent.
func Naive64(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Naive32 is the float32 conventional sum.
func Naive32(xs []float32) float32 {
	s := float32(0)
	for _, x := range xs {
		s += x
	}
	return s
}

// Neumaier64 is Neumaier's improved Kahan–Babuška compensated sum.
// It is far more accurate than Naive64 at roughly 4 FP ops per element,
// but still order-dependent — included as an accuracy/performance
// reference point, not as a solution to reproducibility.
func Neumaier64(xs []float64) float64 {
	sum, comp := 0.0, 0.0
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Pairwise64 sums by recursive halving — the typical accuracy middle
// ground between naive and compensated summation. Order-dependent.
func Pairwise64(xs []float64) float64 {
	const cutoff = 64
	if len(xs) <= cutoff {
		return Naive64(xs)
	}
	mid := len(xs) / 2
	return Pairwise64(xs[:mid]) + Pairwise64(xs[mid:])
}

// ConvBound returns the error bound of conventional summation (Eq. 5):
// (n−1) · ε · Σ|b_i|, with ε the unit roundoff of float64.
func ConvBound(xs []float64) float64 {
	sumAbs := 0.0
	for _, x := range xs {
		sumAbs += math.Abs(x)
	}
	const eps = 0x1p-53
	return float64(len(xs)-1) * eps * sumAbs
}

// ConvBoundExpected returns the Eq. 5 bound for n values with the given
// expected Σ|b| per element, without materializing the data. Used by
// the Table II harness.
func ConvBoundExpected(n int, meanAbs float64) float64 {
	const eps = 0x1p-53
	return float64(n-1) * eps * float64(n) * meanAbs
}

// RSumBound returns the error bound of reproducible summation (Eq. 6):
// n · 2^((1−L)·W−1) · max|b_i|, for float64 parameters (W = 40).
func RSumBound(n, levels int, maxAbs float64) float64 {
	return float64(n) * math.Ldexp(1, (1-levels)*floatbits.W64-1) * maxAbs
}

// RSumBound32 is the float32 analogue of RSumBound (W = 18).
func RSumBound32(n, levels int, maxAbs float64) float64 {
	return float64(n) * math.Ldexp(1, (1-levels)*floatbits.W32-1) * maxAbs
}
