package exact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestSumMatchesSimpleCases(t *testing.T) {
	if got := SumFloat64([]float64{1, 2, 3}); got != 6 {
		t.Errorf("SumFloat64 = %v", got)
	}
	if got := SumFloat64(nil); got != 0 {
		t.Errorf("SumFloat64(nil) = %v", got)
	}
	// Exact sum sees through catastrophic cancellation.
	if got := SumFloat64([]float64{1e16, 1, -1e16}); got != 1 {
		t.Errorf("cancellation: got %v, want 1", got)
	}
}

func TestNaiveVsExactErrorWithinBound(t *testing.T) {
	xs := workload.Values64(1, 100000, workload.Uniform12)
	e := Sum(xs)
	naive := Naive64(xs)
	if err := AbsError(naive, e); err > ConvBound(xs) {
		t.Errorf("naive error %g exceeds Eq.5 bound %g", err, ConvBound(xs))
	}
}

func TestNeumaierBeatsNaive(t *testing.T) {
	xs := workload.Values64(2, 100000, workload.Exp1)
	e := Sum(xs)
	en := AbsError(Naive64(xs), e)
	ek := AbsError(Neumaier64(xs), e)
	if ek > en+1e-12 {
		t.Errorf("Neumaier error %g worse than naive %g", ek, en)
	}
	// Neumaier on this workload should be essentially exact.
	if ek > 1e-9 {
		t.Errorf("Neumaier error %g unexpectedly large", ek)
	}
}

func TestNeumaierHandlesCancellation(t *testing.T) {
	// The classic case Kahan misses but Neumaier catches.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Neumaier64(xs); got != 2 {
		t.Errorf("Neumaier64 = %v, want 2", got)
	}
}

func TestPairwiseAccuracyBetween(t *testing.T) {
	xs := workload.Values64(3, 1<<16, workload.Uniform12)
	e := Sum(xs)
	ep := AbsError(Pairwise64(xs), e)
	en := AbsError(Naive64(xs), e)
	if ep > en+1e-9 {
		t.Errorf("pairwise error %g worse than naive %g", ep, en)
	}
}

func TestNaive32(t *testing.T) {
	if got := Naive32([]float32{0.5, 0.25, 0.25}); got != 1 {
		t.Errorf("Naive32 = %v", got)
	}
}

func TestBoundsMonotoneInLevels(t *testing.T) {
	f := func(nRaw uint16, maxAbsRaw uint16) bool {
		n := int(nRaw)%100000 + 1
		maxAbs := float64(maxAbsRaw) + 1
		prev := math.Inf(1)
		for l := 1; l <= 4; l++ {
			b := RSumBound(n, l, maxAbs)
			if b > prev {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBoundValuesTableII(t *testing.T) {
	// Table II reports RSUM (L=1) bound ≈ 1.0·10^3 for n=10^3 values in
	// U[1,2): n · 2^(0·W−1)·2 = 10^3. Sanity-check our formula
	// reproduces the table's order of magnitude.
	b := RSumBound(1000, 1, 2)
	if b < 500 || b > 2000 {
		t.Errorf("L=1 bound = %g, want ≈ 1e3", b)
	}
	b = RSumBound(1000, 2, 2)
	if b > 1e-8 || b < 1e-10 {
		t.Errorf("L=2 bound = %g, want ≈ 9e-10", b)
	}
	b = RSumBound(1000, 3, 2)
	if b > 1e-20 || b < 1e-22 {
		t.Errorf("L=3 bound = %g, want ≈ 8e-22", b)
	}
}
