package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/workload"
)

func TestSum64Basics(t *testing.T) {
	s := NewSum64(2)
	s.Add(1.5)
	s.Add(2.5)
	if v := s.Value(); v != 4 {
		t.Errorf("Value = %v", v)
	}
	if s.Levels() != 2 {
		t.Errorf("Levels = %d", s.Levels())
	}
}

func TestSum64Associative(t *testing.T) {
	// The headline property of the data type: (a+b)+c == a+(b+c) at the
	// bit level, for the three values of the paper's Algorithm 1.
	vals := []float64{2.5e-16, 0.999999999999999, 2.5e-16}
	ab := NewSum64(2)
	ab.Add(vals[0])
	ab.Add(vals[1])
	abc1 := ab
	abc1.Add(vals[2])

	bc := NewSum64(2)
	bc.Add(vals[1])
	bc.Add(vals[2])
	abc2 := NewSum64(2)
	abc2.Add(vals[0])
	abc2.MergeFrom(&bc)

	if math.Float64bits(abc1.Value()) != math.Float64bits(abc2.Value()) {
		t.Errorf("(a+b)+c = %v != a+(b+c) = %v", abc1.Value(), abc2.Value())
	}
}

func TestBuffered64MatchesUnbuffered(t *testing.T) {
	// Buffered and unbuffered accumulation of the same multiset must
	// produce identical bits for any buffer size.
	vs := workload.Values64(3, 5000, workload.MixedMag)
	ref := NewSum64(2)
	for _, v := range vs {
		ref.Add(v)
	}
	want := math.Float64bits(ref.Value())
	for _, bsz := range []int{1, 2, 7, 16, 64, 256, 1024, 4096} {
		b := NewBuffered64(2, bsz)
		for _, v := range vs {
			b.Add(v)
		}
		if got := math.Float64bits(b.Value()); got != want {
			t.Errorf("bsz=%d: buffered %x != unbuffered %x", bsz, got, want)
		}
	}
}

func TestBuffered64ValueIdempotent(t *testing.T) {
	b := NewBuffered64(2, 16)
	b.Add(1)
	b.Add(2)
	if b.Value() != 3 || b.Value() != 3 {
		t.Error("Value not idempotent")
	}
	b.Add(4)
	if b.Value() != 7 {
		t.Error("Add after Value broken")
	}
}

func TestBuffered64MergeFrom(t *testing.T) {
	vs := workload.Values64(5, 2000, workload.Exp1)
	ref := NewSum64(3)
	for _, v := range vs {
		ref.Add(v)
	}
	a := NewBuffered64(3, 64)
	b := NewBuffered64(3, 128)
	for i, v := range vs {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.MergeFrom(&b)
	if math.Float64bits(a.Value()) != math.Float64bits(ref.Value()) {
		t.Error("MergeFrom differs from sequential")
	}
}

func TestBuffered64MergeIntoSum(t *testing.T) {
	vs := workload.Values64(7, 1000, workload.Uniform12)
	ref := NewSum64(2)
	for _, v := range vs {
		ref.Add(v)
	}
	b := NewBuffered64(2, 32)
	for _, v := range vs {
		b.Add(v)
	}
	dst := NewSum64(2)
	b.MergeIntoSum(&dst)
	if math.Float64bits(dst.Value()) != math.Float64bits(ref.Value()) {
		t.Error("MergeIntoSum differs")
	}
}

func TestBufferedPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bsz=0 did not panic")
		}
	}()
	NewBuffered64(2, 0)
}

func TestSum64PermutationProperty(t *testing.T) {
	f := func(seed uint64, rot uint16) bool {
		vs := workload.Values64(seed, 300, workload.MixedMag)
		s1 := NewSum64(2)
		for _, v := range vs {
			s1.Add(v)
		}
		k := int(rot) % len(vs)
		s2 := NewSum64(2)
		for i := range vs {
			s2.Add(vs[(i+k)%len(vs)])
		}
		return math.Float64bits(s1.Value()) == math.Float64bits(s2.Value())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSum64AccuracyVsExact(t *testing.T) {
	vs := workload.Values64(11, 100000, workload.Exp1)
	e := exact.Sum(vs)
	s := NewSum64(2)
	s.AddSlice(vs)
	maxAbs := 0.0
	for _, v := range vs {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if err := exact.AbsError(s.Value(), e); err > exact.RSumBound(len(vs), 2, maxAbs) {
		t.Errorf("L=2 error %g exceeds Eq.6 bound", err)
	}
}

func TestSum32AndBuffered32(t *testing.T) {
	vs := workload.Values32(13, 3000, workload.Uniform12)
	ref := NewSum32(2)
	for _, v := range vs {
		ref.Add(v)
	}
	for _, bsz := range []int{1, 3, 16, 256} {
		b := NewBuffered32(2, bsz)
		for _, v := range vs {
			b.Add(v)
		}
		if math.Float32bits(b.Value()) != math.Float32bits(ref.Value()) {
			t.Errorf("bsz=%d: Buffered32 differs", bsz)
		}
	}
	dst := NewSum32(2)
	b := NewBuffered32(2, 64)
	for _, v := range vs {
		b.Add(v)
	}
	b.MergeIntoSum(&dst)
	if math.Float32bits(dst.Value()) != math.Float32bits(ref.Value()) {
		t.Error("Buffered32 MergeIntoSum differs")
	}
}

func TestSum32AddSlice(t *testing.T) {
	vs := workload.Values32(17, 1000, workload.Exp1)
	a := NewSum32(2)
	for _, v := range vs {
		a.Add(v)
	}
	b := NewSum32(2)
	b.AddSlice(vs)
	if math.Float32bits(a.Value()) != math.Float32bits(b.Value()) {
		t.Error("Sum32 AddSlice differs from Add")
	}
}

func TestStateAccessors(t *testing.T) {
	s := NewSum64(2)
	s.Add(5)
	data, err := s.State().MarshalBinary()
	if err != nil || len(data) == 0 {
		t.Fatalf("marshal via State(): %v", err)
	}
	s32 := NewSum32(2)
	s32.Add(5)
	if s32.State() == nil {
		t.Fatal("State() nil")
	}
	b := NewBuffered64(2, 8)
	if b.BufferSize() != 8 {
		t.Error("BufferSize")
	}
	b32 := NewBuffered32(2, 8)
	if b32.BufferSize() != 8 {
		t.Error("BufferSize32")
	}
}
