// Package core packages the paper's primary contribution as data types
// that drop into existing aggregation operators:
//
//   - Sum64 / Sum32 are the repro<double,L> / repro<float,L> types of
//     Section IV: associative, bit-reproducible accumulators whose only
//     arithmetic operation is addition (with scalars and with each
//     other). Using them in place of a float running sum makes any
//     GROUPBY operator bit-reproducible with no structural change — at
//     the 4×–12× cost the paper measures in Figure 4.
//
//   - Buffered64 / Buffered32 add the summation buffer of Section V-A
//     (Figure 5): input values are buffered per group and aggregated in
//     batches with the vectorized summation kernel, which reduces the
//     overhead of reproducibility to roughly 2× (Figure 10, Table III).
//
// All types are plain values (no internal pointers except the buffer
// slice), so they can be stored directly in hash-table payload arrays,
// mirroring the memory layout of Figure 5.
package core

import "repro/internal/rsum"

// DefaultLevels is the default number of summation levels. L = 2
// matches the accuracy of conventional IEEE summation (Section VI-B);
// higher L buys more accuracy at higher cost.
const DefaultLevels = 2

// MaxLevels re-exports the maximum supported level count.
const MaxLevels = rsum.MaxLevels

// Sum64 is a reproducible, associative accumulator for float64 values —
// the repro<double,L> data type. The zero value is unusable; create
// with NewSum64.
type Sum64 struct {
	st rsum.State64
}

// NewSum64 returns an empty accumulator with the given number of levels.
func NewSum64(levels int) Sum64 {
	return Sum64{st: rsum.NewState64(levels)}
}

// Add folds one value into the accumulator (operator+=(double)).
// It follows Algorithm 2 faithfully, including the per-element
// carry-bit propagation — the cost the paper measures for the drop-in
// type in Figures 4 and 7. Batch paths (AddSlice, the buffered type)
// amortize that cost instead.
func (s *Sum64) Add(v float64) { s.st.AddEager(v) }

// AddSlice folds a batch of values using the tiled scalar kernel.
func (s *Sum64) AddSlice(vs []float64) { s.st.AddSlice(vs) }

// MergeFrom folds another accumulator into this one
// (operator+=(repro<double,L>)). Merging is associative and
// order-independent at the bit level.
func (s *Sum64) MergeFrom(o *Sum64) { s.st.Merge(&o.st) }

// Value finalizes and returns the reproducible sum.
func (s *Sum64) Value() float64 { return s.st.Value() }

// Levels returns the configured number of levels.
func (s *Sum64) Levels() int { return s.st.Levels() }

// State exposes the underlying summation state (for serialization).
func (s *Sum64) State() *rsum.State64 { return &s.st }

// Reset empties the accumulator, keeping its level configuration.
func (s *Sum64) Reset() { s.st.Reset(s.st.Levels()) }

// Sum32 is the repro<float,L> accumulator.
type Sum32 struct {
	st rsum.State32
}

// NewSum32 returns an empty accumulator with the given number of levels.
func NewSum32(levels int) Sum32 {
	return Sum32{st: rsum.NewState32(levels)}
}

// Add folds one value into the accumulator; see Sum64.Add.
func (s *Sum32) Add(v float32) { s.st.AddEager(v) }

// AddSlice folds a batch of values.
func (s *Sum32) AddSlice(vs []float32) { s.st.AddSlice(vs) }

// MergeFrom folds another accumulator into this one.
func (s *Sum32) MergeFrom(o *Sum32) { s.st.Merge(&o.st) }

// Value finalizes and returns the reproducible sum.
func (s *Sum32) Value() float32 { return s.st.Value() }

// Levels returns the configured number of levels.
func (s *Sum32) Levels() int { return s.st.Levels() }

// State exposes the underlying summation state (for serialization).
func (s *Sum32) State() *rsum.State32 { return &s.st }

// Reset empties the accumulator, keeping its level configuration.
func (s *Sum32) Reset() { s.st.Reset(s.st.Levels()) }

// Buffered64 is a reproducible float64 accumulator with a summation
// buffer (Section V-A): values are appended to a per-group buffer and
// aggregated with the vectorized kernel only when the buffer fills.
// The layout mirrors Figure 5: ⟨repro state | next | a_0 … a_bsz⟩.
type Buffered64 struct {
	st   rsum.State64
	next int32
	buf  []float64
}

// NewBuffered64 returns an empty buffered accumulator with the given
// level count and buffer size (bsz). Buffer sizes < 1 panic.
func NewBuffered64(levels, bsz int) Buffered64 {
	if bsz < 1 {
		panic("core: buffer size must be ≥ 1")
	}
	return Buffered64{st: rsum.NewState64(levels), buf: make([]float64, bsz)}
}

// Add appends a value to the buffer, flushing it through the vectorized
// summation kernel when full.
func (b *Buffered64) Add(v float64) {
	b.buf[b.next] = v
	b.next++
	if int(b.next) == len(b.buf) {
		b.st.AddSliceVec(b.buf)
		b.next = 0
	}
}

// Flush aggregates any buffered values into the summation state.
func (b *Buffered64) Flush() {
	if b.next > 0 {
		b.st.AddSliceVec(b.buf[:b.next])
		b.next = 0
	}
}

// MergeFrom flushes both accumulators and merges the other's state into
// this one.
func (b *Buffered64) MergeFrom(o *Buffered64) {
	b.Flush()
	o.Flush()
	b.st.Merge(&o.st)
}

// MergeIntoSum flushes and merges this accumulator into an unbuffered
// Sum64 — the shared-table transfer of Algorithm 4 (lines 4–6), which
// stores plain repro values because "the result would consist of
// summation buffers, which take up more space than needed".
func (b *Buffered64) MergeIntoSum(dst *Sum64) {
	b.Flush()
	dst.st.Merge(&b.st)
}

// Value flushes and returns the reproducible sum.
func (b *Buffered64) Value() float64 {
	b.Flush()
	return b.st.Value()
}

// BufferSize returns the configured bsz.
func (b *Buffered64) BufferSize() int { return len(b.buf) }

// Reset empties the accumulator but keeps the buffer allocation — the
// hook that lets aggregation tables recycle payloads across partitions
// instead of reallocating bsz-sized buffers for every partition.
func (b *Buffered64) Reset() {
	b.st.Reset(b.st.Levels())
	b.next = 0
}

// Buffered32 is the float32 buffered accumulator.
type Buffered32 struct {
	st   rsum.State32
	next int32
	buf  []float32
}

// NewBuffered32 returns an empty buffered float32 accumulator.
func NewBuffered32(levels, bsz int) Buffered32 {
	if bsz < 1 {
		panic("core: buffer size must be ≥ 1")
	}
	return Buffered32{st: rsum.NewState32(levels), buf: make([]float32, bsz)}
}

// Add appends a value, flushing the buffer when full.
func (b *Buffered32) Add(v float32) {
	b.buf[b.next] = v
	b.next++
	if int(b.next) == len(b.buf) {
		b.st.AddSliceVec(b.buf)
		b.next = 0
	}
}

// Flush aggregates buffered values into the state.
func (b *Buffered32) Flush() {
	if b.next > 0 {
		b.st.AddSliceVec(b.buf[:b.next])
		b.next = 0
	}
}

// MergeFrom flushes both accumulators and merges.
func (b *Buffered32) MergeFrom(o *Buffered32) {
	b.Flush()
	o.Flush()
	b.st.Merge(&o.st)
}

// MergeIntoSum flushes and merges into an unbuffered Sum32.
func (b *Buffered32) MergeIntoSum(dst *Sum32) {
	b.Flush()
	dst.st.Merge(&b.st)
}

// Value flushes and returns the reproducible sum.
func (b *Buffered32) Value() float32 {
	b.Flush()
	return b.st.Value()
}

// BufferSize returns the configured bsz.
func (b *Buffered32) BufferSize() int { return len(b.buf) }

// Reset empties the accumulator but keeps the buffer allocation.
func (b *Buffered32) Reset() {
	b.st.Reset(b.st.Levels())
	b.next = 0
}
