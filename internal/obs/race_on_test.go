//go:build race

package obs

// raceEnabled reports that this build runs under the race detector,
// whose instrumented allocator makes AllocsPerRun pins meaningless.
const raceEnabled = true
