// Package obs is the repo's dependency-free observability core: a
// registry of atomic counters, gauges, and histograms whose record
// operations are zero-allocation (pinned by AllocsPerRun tests, the
// same discipline as the zero-alloc shuffle path), per-query traces
// whose spans carry result digests so a cross-backend divergence is
// localizable to the first hop that disagrees, and a bounded
// structured event log with monotonic sequence numbers for cluster
// membership transitions.
//
// Hot paths hold pre-registered handles (*Counter, *Gauge,
// *Histogram) and record through lock-free atomics; the registry's
// mutex is only taken at registration and at exposition time
// (Snapshot, WritePrometheus). Metric names follow Prometheus
// conventions and may carry a static label set baked into the name at
// registration ("repro_peer_bytes_out_total{peer=\"3\"}"): labels are
// part of the handle, so recording stays allocation-free.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Max raises the gauge to v if v exceeds the current value — a
// lock-free high-water mark.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric. Bucket bounds are
// chosen at registration; Observe is lock-free and allocation-free
// (a linear scan over the bounds plus three atomic adds).
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefSecondsBuckets is the default latency bucket layout, in seconds:
// 100µs to ~100s, a factor of ~3 apart.
var DefSecondsBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100,
}

// metric is one registered name: exactly one of the three handle
// fields is non-nil.
type metric struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. Registration is idempotent:
// asking for an existing name returns the existing handle (and panics
// if the name is already registered as a different metric type — a
// programming error, not a runtime condition).
type Registry struct {
	mu    sync.Mutex
	order []metric
	index map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Default is the process-global registry: package-level
// instrumentation (the dist wire counters, the proc control plane)
// registers here, and surfaces like reproserve's /metrics and
// repro.Observe() read from here.
var Default = NewRegistry()

func (r *Registry) lookupOrAdd(name, help string, add func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[name]; ok {
		return r.order[i]
	}
	m := add()
	m.name, m.help = name, help
	r.index[name] = len(r.order)
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under name, creating it on
// first use. help documents the metric in the Prometheus exposition;
// the first registration's help wins.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookupOrAdd(name, help, func() metric { return metric{c: &Counter{}} })
	if m.c == nil {
		panic(fmt.Sprintf("obs: %q already registered as a non-counter", name))
	}
	return m.c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookupOrAdd(name, help, func() metric { return metric{g: &Gauge{}} })
	if m.g == nil {
		panic(fmt.Sprintf("obs: %q already registered as a non-gauge", name))
	}
	return m.g
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending bucket upper bounds on first use (nil
// bounds default to DefSecondsBuckets). Later registrations return
// the existing handle regardless of the bounds they pass.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.lookupOrAdd(name, help, func() metric {
		if bounds == nil {
			bounds = DefSecondsBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
			}
		}
		return metric{h: &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}}
	})
	if m.h == nil {
		panic(fmt.Sprintf("obs: %q already registered as a non-histogram", name))
	}
	return m.h
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.order))
	for i, m := range r.order {
		names[i] = m.name
	}
	return names
}

// Value returns the scalar value of a registered counter or gauge.
// Histograms report their sample count. ok is false for unknown names.
func (r *Registry) Value(name string) (v float64, ok bool) {
	r.mu.Lock()
	i, ok := r.index[name]
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	m := r.order[i]
	r.mu.Unlock()
	switch {
	case m.c != nil:
		return float64(m.c.Value()), true
	case m.g != nil:
		return float64(m.g.Value()), true
	default:
		return float64(m.h.Count()), true
	}
}

// Snapshot is a point-in-time read of a registry: sample name →
// value. Counters and gauges appear under their registered name;
// histograms contribute name_count and name_sum samples (labels, when
// present, stay attached: "h{x=\"1\"}" snapshots as "h_count{x=\"1\"}").
type Snapshot map[string]float64

// Snapshot reads every registered metric at once.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	r.mu.Unlock()
	s := make(Snapshot, len(metrics))
	for _, m := range metrics {
		switch {
		case m.c != nil:
			s[m.name] = float64(m.c.Value())
		case m.g != nil:
			s[m.name] = float64(m.g.Value())
		default:
			base, labels := splitName(m.name)
			s[joinName(base+"_count", labels)] = float64(m.h.Count())
			s[joinName(base+"_sum", labels)] = m.h.Sum()
		}
	}
	return s
}

// Sum adds up every sample whose name starts with prefix — convenient
// for label families ("peer_bytes_out_total{peer=...}" summed across
// peers).
func (s Snapshot) Sum(prefix string) float64 {
	var total float64
	for name, v := range s {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			total += v
		}
	}
	return total
}

// splitName splits a registered name into its base and the label body
// (the text inside the braces, "" when unlabelled).
func splitName(name string) (base, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i+1 : len(name)-1]
		}
	}
	return name, ""
}

// joinName re-attaches a label body to a (possibly suffixed) base.
func joinName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// sortedMetrics returns the registry's metrics sorted by name, for
// deterministic exposition.
func (r *Registry) sortedMetrics() []metric {
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	return metrics
}
