package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4), sorted by sample name. Metrics
// sharing a base name (label variants of one family) emit one
// HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastBase string
	for _, m := range r.sortedMetrics() {
		base, labels := splitName(m.name)
		if base != lastBase {
			lastBase = base
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, m.help); err != nil {
					return err
				}
			}
			typ := "counter"
			switch {
			case m.g != nil:
				typ = "gauge"
			case m.h != nil:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		default:
			err = writeHistogram(w, base, labels, m.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count, merging the le label into any static label set.
func writeHistogram(w io.Writer, base, labels string, h *Histogram) error {
	withLE := func(le string) string {
		if labels == "" {
			return base + `_bucket{le="` + le + `"}`
		}
		return base + "_bucket{" + labels + `,le="` + le + `"}`
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s %d\n", withLE(le), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), cum); err != nil {
		return err
	}
	sum := strconv.FormatFloat(h.Sum(), 'g', -1, 64)
	if _, err := fmt.Fprintf(w, "%s %s\n", joinName(base+"_sum", labels), sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", joinName(base+"_count", labels), h.count.Load())
	return err
}

// Handler returns an http.Handler serving the given registries (the
// Default registry when none are passed) as one Prometheus text page —
// the /metrics endpoint of reproserve and reproworker.
func Handler(regs ...*Registry) http.Handler {
	if len(regs) == 0 {
		regs = []*Registry{Default}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		for _, r := range regs {
			if err := r.WritePrometheus(&sb); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		io.WriteString(w, sb.String())
	})
}
