package obs

import (
	"sync"
	"time"
)

// Event is one structured entry of an EventLog: a cluster membership
// transition (join, depart, promote, re-attach, epoch bump, journal
// replay, …) stamped with a monotonic sequence number.
type Event struct {
	// Seq is the log-assigned sequence number, strictly increasing
	// from 1 for the log's lifetime — gaps in a retained window mean
	// older events were evicted, never reordered.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind names the transition ("join", "depart", "promote", …).
	Kind string `json:"kind"`
	// Node is the affected node slot, -1 when no slot applies.
	Node int `json:"node,omitempty"`
	// Detail is free-form context (incarnation, epoch, cause).
	Detail string `json:"detail,omitempty"`
}

// EventLog is a bounded, concurrency-safe ring of Events. Appends are
// cheap (one mutex, no allocation growth past the capacity); readers
// get a snapshot copy.
type EventLog struct {
	mu  sync.Mutex
	cap int
	seq uint64
	buf []Event
}

// NewEventLog returns a log retaining the most recent capacity events
// (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{cap: capacity}
}

// Append records an event and returns its sequence number. A nil log
// discards the event (returns 0), so emitters need no nil checks.
func (l *EventLog) Append(kind string, node int, detail string) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e := Event{Seq: l.seq, Time: time.Now(), Kind: kind, Node: node, Detail: detail}
	if len(l.buf) >= l.cap {
		copy(l.buf, l.buf[1:])
		l.buf[len(l.buf)-1] = e
	} else {
		l.buf = append(l.buf, e)
	}
	return l.seq
}

// Events returns the retained events in sequence order.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.buf...)
}

// LastSeq returns the most recently assigned sequence number (the
// total number of events ever appended).
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
