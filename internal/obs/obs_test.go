package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatal("re-registration returned a different handle")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	g.Max(2) // below current: no-op
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.Max(10)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after Max = %d, want 10", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50, 0.25} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.75 {
		t.Fatalf("histogram sum = %v, want 55.75", h.Sum())
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestSnapshotAndValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Gauge("b", "").Set(-2)
	r.Histogram("lat_seconds", "", []float64{1}).Observe(0.5)
	r.Counter(`peer_bytes_total{peer="0"}`, "").Add(10)
	r.Counter(`peer_bytes_total{peer="1"}`, "").Add(20)

	s := r.Snapshot()
	if s["a_total"] != 3 || s["b"] != -2 {
		t.Fatalf("snapshot scalars wrong: %v", s)
	}
	if s["lat_seconds_count"] != 1 || s["lat_seconds_sum"] != 0.5 {
		t.Fatalf("snapshot histogram wrong: %v", s)
	}
	if got := s.Sum("peer_bytes_total"); got != 30 {
		t.Fatalf("label-family sum = %v, want 30", got)
	}
	if v, ok := r.Value("a_total"); !ok || v != 3 {
		t.Fatalf("Value(a_total) = %v, %v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatal("Value(missing) reported ok")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_q_total", "queries").Add(5)
	r.Gauge("repro_inflight", "in flight").Set(2)
	r.Histogram("repro_lat_seconds", "latency", []float64{0.1, 1}).Observe(0.05)
	r.Counter(`repro_peer_total{peer="1"}`, "per peer").Add(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE repro_q_total counter",
		"repro_q_total 5",
		"# TYPE repro_inflight gauge",
		"repro_inflight 2",
		"# TYPE repro_lat_seconds histogram",
		`repro_lat_seconds_bucket{le="0.1"} 1`,
		`repro_lat_seconds_bucket{le="+Inf"} 1`,
		"repro_lat_seconds_sum 0.05",
		"repro_lat_seconds_count 1",
		`repro_peer_total{peer="1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRecordZeroAlloc pins the zero-allocation contract of the hot
// record operations — the same discipline the shuffle encode path is
// held to. AllocsPerRun is meaningless under the race detector's
// instrumented allocator, so the pin is skipped there.
func TestRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under -race")
	}
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4, 8})
	if allocs := testing.AllocsPerRun(200, func() {
		c.Add(1)
		g.Set(3)
		g.Max(5)
		h.Observe(3.5)
	}); allocs != 0 {
		t.Fatalf("record operations allocated %v times per run, want 0", allocs)
	}
}

// TestRegistryConcurrent hammers registration and recording from many
// goroutines — the -race regression test that replaces the deleted
// engine.Profiler scaffolding (the profiler is now backed by this
// registry).
func TestRegistryConcurrent(t *testing.T) {
	const goroutines, rounds = 16, 200
	r := NewRegistry()
	shared := r.Counter("shared_total", "")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := r.Counter("own_total"+string(rune('a'+g)), "")
			hist := r.Histogram("lat", "", nil)
			for i := 0; i < rounds; i++ {
				shared.Inc()
				own.Inc()
				hist.Observe(0.001)
				_ = r.Snapshot()
				_, _ = r.Value("shared_total")
			}
		}(g)
	}
	wg.Wait()
	if got := shared.Value(); got != goroutines*rounds {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*rounds)
	}
	if got, _ := r.Value("lat"); got != goroutines*rounds {
		t.Fatalf("histogram count = %v, want %d", got, goroutines*rounds)
	}
}

func TestTraceAndFirstDivergence(t *testing.T) {
	s := NewTraceStore(2)
	a := s.NewTrace("q1")
	sp := a.Start("admission")
	sp.End(DigestOf([]byte("enc")), "")
	a.Hop("shuffle", 0x1111)
	a.Hop("gather", 0x2222)
	a.Hop("merge", 0x3333)

	b := s.NewTrace("q1")
	b.Start("admission").End(DigestOf([]byte("enc")), "")
	b.Hop("shuffle", 0x1111)
	b.Hop("gather", 0xBAD)
	b.Hop("merge", 0xBAD2)

	if got := FirstDivergence(a, b); got != "gather" {
		t.Fatalf("first divergence = %q, want gather", got)
	}
	if got := FirstDivergence(a, a); got != "" {
		t.Fatalf("self-divergence = %q, want none", got)
	}

	if s.Get(a.ID) != a || s.Get(b.ID) != b {
		t.Fatal("store lookup failed")
	}
	c := s.NewTrace("q2") // capacity 2: evicts a
	if s.Get(a.ID) != nil {
		t.Fatal("oldest trace not evicted")
	}
	if s.Get(c.ID) != c {
		t.Fatal("newest trace missing")
	}
	if !(a.ID < b.ID && b.ID < c.ID) {
		t.Fatalf("trace IDs not increasing: %d %d %d", a.ID, b.ID, c.ID)
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Append("join", i, "")
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if want := uint64(3 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (monotonic, oldest evicted)", i, e.Seq, want)
		}
	}
	if l.LastSeq() != 5 {
		t.Fatalf("last seq = %d, want 5", l.LastSeq())
	}
	var nilLog *EventLog
	if nilLog.Append("x", 0, "") != 0 || nilLog.Events() != nil || nilLog.LastSeq() != 0 {
		t.Fatal("nil log is not inert")
	}
}

func TestEventLogConcurrentSeqs(t *testing.T) {
	l := NewEventLog(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append("e", -1, "")
			}
		}()
	}
	wg.Wait()
	evs := l.Events()
	if len(evs) != 800 {
		t.Fatalf("got %d events, want 800", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil)
	h.Observe(0.0002)
	h.Observe(200) // beyond the last bound: +Inf bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `lat_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket not cumulative:\n%s", sb.String())
	}
}

func TestSpanTimings(t *testing.T) {
	store := NewTraceStore(1)
	tr := store.NewTrace("q")
	sp := tr.Start("work")
	time.Sleep(time.Millisecond)
	sp.End("", "note")
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Dur < time.Millisecond/2 {
		t.Fatalf("span not recorded with a plausible duration: %+v", spans)
	}
	// A nil trace's handles are inert.
	var nt *Trace
	nt.Hop("x", 1)
	SpanHandle{}.End("", "")
}
