package obs

import (
	"fmt"
	"sync"
	"time"
)

// The trace model: one Trace per served query, one Span per pipeline
// hop (admission, budget pricing, cache lookup, queue wait, backend
// execution, shuffle, gather, merge, cache fill). Spans carry the
// digest of the canonical bytes visible at that hop, which is what
// makes a cross-backend divergence localizable: two traces of the
// same query agree digest-for-digest up to the first hop where the
// executions genuinely diverged, so FirstDivergence names the guilty
// hop instead of leaving a whole pipeline under suspicion.

// Span is one step of a traced query.
type Span struct {
	// Name identifies the hop ("admission", "execute/local",
	// "shuffle", …). Names repeat across traces of different queries
	// but not within one trace's digest-carrying spans.
	Name string `json:"name"`
	// Start is the offset from the trace's Begin; Dur the span's
	// duration. Hop spans reported after the fact (the dist plane's
	// shuffle/gather digests) may carry a zero duration.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Digest fingerprints the canonical bytes this hop observed
	// (FNV-64a, hex), "" for spans with nothing canonical to see.
	Digest string `json:"digest,omitempty"`
	// Note is free-form hop detail ("hit", "est 128 bytes", an error).
	Note string `json:"note,omitempty"`
}

// Trace is one served query's recorded pipeline.
type Trace struct {
	ID      uint64    `json:"id"`
	Name    string    `json:"name"`
	Begin   time.Time `json:"begin"`
	Outcome string    `json:"outcome,omitempty"`

	mu    sync.Mutex
	spans []Span
}

// Add appends a finished span. Safe for concurrent use: the dist
// plane's root node reports hop digests while the serving goroutine
// owns the trace.
func (t *Trace) Add(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Start opens a span; the returned SpanHandle's End records it.
func (t *Trace) Start(name string) SpanHandle {
	return SpanHandle{t: t, name: name, start: time.Now()}
}

// Hop records an instantaneous digest-carrying span — the form the
// dist plane's shuffle/gather/merge hooks use.
func (t *Trace) Hop(name string, digest uint64) {
	if t == nil {
		return
	}
	t.Add(Span{Name: name, Start: time.Since(t.Begin), Digest: HexDigest(digest)})
}

// Spans returns the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SetOutcome records how the query ended ("executed", "hit",
// "rejected_budget", …).
func (t *Trace) SetOutcome(outcome string) {
	t.mu.Lock()
	t.Outcome = outcome
	t.mu.Unlock()
}

// SpanHandle is an open span returned by Trace.Start.
type SpanHandle struct {
	t     *Trace
	name  string
	start time.Time
}

// End records the span with the given digest and note (either may be
// empty). Ending a handle from a nil trace is a no-op, so callers can
// trace unconditionally.
func (h SpanHandle) End(digest, note string) {
	if h.t == nil {
		return
	}
	h.t.Add(Span{
		Name:   h.name,
		Start:  h.start.Sub(h.t.Begin),
		Dur:    time.Since(h.start),
		Digest: digest,
		Note:   note,
	})
}

// FirstDivergence compares two traces of the same query span-by-span
// and returns the name of the first digest-carrying hop present in
// both whose digests differ — the hop where the executions genuinely
// parted ways (every later hop differs only by propagation). It
// returns "" when no shared hop disagrees.
func FirstDivergence(a, b *Trace) string {
	bd := make(map[string]string)
	for _, s := range b.Spans() {
		if s.Digest != "" {
			if _, seen := bd[s.Name]; !seen {
				bd[s.Name] = s.Digest
			}
		}
	}
	for _, s := range a.Spans() {
		if s.Digest == "" {
			continue
		}
		if other, ok := bd[s.Name]; ok && other != s.Digest {
			return s.Name
		}
	}
	return ""
}

// traceView is the JSON shape of a trace (the mutex-guarded spans
// slice needs an explicit copy).
type traceView struct {
	ID      uint64    `json:"id"`
	Name    string    `json:"name"`
	Begin   time.Time `json:"begin"`
	Outcome string    `json:"outcome,omitempty"`
	Spans   []Span    `json:"spans"`
}

// View returns a copyable, JSON-encodable snapshot of the trace.
func (t *Trace) View() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	return traceView{
		ID: t.ID, Name: t.Name, Begin: t.Begin, Outcome: t.Outcome,
		Spans: append([]Span(nil), t.spans...),
	}
}

// TraceStore is a bounded ring of recent traces, keyed by the
// monotonically increasing trace ID it assigns.
type TraceStore struct {
	mu     sync.Mutex
	cap    int
	nextID uint64
	byID   map[uint64]*Trace
	order  []uint64
}

// NewTraceStore returns a store retaining the most recent capacity
// traces (minimum 1).
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceStore{cap: capacity, byID: make(map[uint64]*Trace, capacity)}
}

// NewTrace starts recording a trace under a fresh ID, evicting the
// oldest retained trace when full.
func (s *TraceStore) NewTrace(name string) *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	t := &Trace{ID: s.nextID, Name: name, Begin: time.Now()}
	if len(s.order) >= s.cap {
		delete(s.byID, s.order[0])
		s.order = s.order[1:]
	}
	s.byID[t.ID] = t
	s.order = append(s.order, t.ID)
	return t
}

// Get returns the trace with the given ID, or nil if it was never
// assigned or has been evicted.
func (s *TraceStore) Get(id uint64) *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// FNV64a is the repo's digest function (FNV-64a over the canonical
// bytes) — the same fingerprint reproserve reports per response.
func FNV64a(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// HexDigest formats a digest the way every surface prints it.
func HexDigest(d uint64) string { return fmt.Sprintf("%016x", d) }

// DigestOf fingerprints canonical bytes directly to the printed form.
func DigestOf(b []byte) string { return HexDigest(FNV64a(b)) }
