package bench

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestNsPerElem(t *testing.T) {
	if got := NsPerElem(time.Microsecond, 1, 1000); got != 1 {
		t.Errorf("NsPerElem = %v", got)
	}
	if got := NsPerElem(time.Microsecond, 8, 1000); got != 8 {
		t.Errorf("NsPerElem with P=8 = %v", got)
	}
	if got := NsPerElem(time.Second, 1, 0); got != 0 {
		t.Errorf("NsPerElem n=0 = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("Geomean = %v", got)
	}
	if got := Geomean([]float64{3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("Geomean single = %v", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean empty = %v", got)
	}
	// Non-positive values are ignored.
	if got := Geomean([]float64{-1, 0, 4}); got != 4 {
		t.Errorf("Geomean with junk = %v", got)
	}
}

func TestPow2Sweep(t *testing.T) {
	s := Pow2Sweep(2, 5)
	want := []int{4, 8, 16, 32}
	if len(s) != len(want) {
		t.Fatalf("sweep = %v", s)
	}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("sweep = %v", s)
		}
	}
}

func TestMeasure(t *testing.T) {
	d := Measure(func() { time.Sleep(2 * time.Millisecond) })
	if d < 2*time.Millisecond {
		t.Errorf("Measure = %v", d)
	}
	if MeasureBest(0, func() {}) < 0 {
		t.Error("MeasureBest reps=0")
	}
	fast := MeasureBest(3, func() {})
	if fast > time.Millisecond {
		t.Errorf("MeasureBest of no-op = %v", fast)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("My Title", "col1", "longer column")
	tbl.AddRow("a", 1.5)
	tbl.AddRow("bbbbbbbb", 2)
	tbl.AddRow(float32(0.25), 1e-30)
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"My Title", "col1", "longer column", "bbbbbbbb", "1.500", "2", "1.00e-30", "0.250"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Error("no separator line")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.500",
		-2.25:   "-2.250",
		1e-9:    "1.00e-09",
		1e12:    "1.00e+12",
		99999.9: "99999.900",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRatioAndMachineInfo(t *testing.T) {
	if Ratio(2.5) != "2.50x" {
		t.Errorf("Ratio = %q", Ratio(2.5))
	}
	if !strings.Contains(MachineInfo(), "GOMAXPROCS=") {
		t.Error("MachineInfo missing GOMAXPROCS")
	}
}
