// Package bench is the experiment harness shared by cmd/reprobench and
// the testing.B benchmarks: wall-clock measurement normalized to the
// paper's "CPU time per element" metric, parameter sweeps, aligned
// table printing, and small statistics helpers (geometric mean, ratio
// formatting).
package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"
)

// Measure runs fn once and returns its wall time. A GC cycle runs first
// so allocation debt from setup does not leak into the measurement.
func Measure(fn func()) time.Duration {
	runtime.GC()
	start := time.Now()
	fn()
	return time.Since(start)
}

// MeasureBest runs fn reps times and returns the fastest run — the
// standard way to suppress scheduling noise in micro-benchmarks.
func MeasureBest(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		if d := Measure(fn); d < best {
			best = d
		}
	}
	return best
}

// NsPerElem converts a duration into the paper's "CPU time per element"
// metric: T·P/n nanoseconds, with P the number of processing elements
// (Section VI-A). For single-threaded runs pass procs = 1.
func NsPerElem(d time.Duration, procs, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) * float64(procs) / float64(n)
}

// Geomean returns the geometric mean of xs (ignoring non-positive
// values, which would poison the logarithm).
func Geomean(xs []float64) float64 {
	sum, cnt := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return math.Exp(sum / float64(cnt))
}

// Pow2Sweep returns powers of two from 2^lo to 2^hi inclusive.
func Pow2Sweep(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// Table accumulates rows and prints them with aligned columns — the
// textual stand-in for the paper's figures.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are stringified with %v, floats with %g
// unless they are already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for
// ordinary magnitudes, scientific notation for extremes.
func FormatFloat(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 0.01 && a < 100000:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	b.Reset()
	for i := range t.headers {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	for _, r := range t.rows {
		b.Reset()
		for i, c := range r {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// Ratio formats a slowdown/speedup factor like the paper's annotations
// ("3.73x").
func Ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// MachineInfo returns a one-line description of the benchmark machine.
func MachineInfo() string {
	return fmt.Sprintf("GOMAXPROCS=%d GOOS=%s GOARCH=%s",
		runtime.GOMAXPROCS(0), runtime.GOOS, runtime.GOARCH)
}
