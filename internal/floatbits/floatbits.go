// Package floatbits provides low-level IEEE-754 bit manipulation used by
// the reproducible summation algorithms: unit-in-the-first-place (ufp),
// unit-in-the-last-place (ulp), exponent extraction, exponent grids, and
// the deterministic error-free splitting of a value against a fixed
// extractor constant.
//
// Terminology follows Goldberg ("What Every Computer Scientist Should Know
// About Floating-Point Arithmetic") and the paper: for x = M·2^E with
// M ∈ [1,2), ufp(x) = 2^E is the value of the first mantissa bit and
// ulp(x) = 2^(E−m) the value of the last, where m is the number of
// explicit mantissa bits (52 for float64, 23 for float32).
package floatbits

import (
	"math"
	"math/bits"
)

// Format parameters of the two IEEE-754 binary formats used in the paper.
const (
	// MantBits64 is the number of explicit mantissa bits of float64 (m).
	MantBits64 = 52
	// MantBits32 is the number of explicit mantissa bits of float32 (m).
	MantBits32 = 23

	// W64 is the logarithm of the ratio between two consecutive
	// extractors for double precision. The paper (Sec. III-C) recommends
	// W = 40 for double precision.
	W64 = 40
	// W32 is the extractor ratio exponent for single precision (W = 18).
	W32 = 18

	// NB64 is the tile size between carry-bit propagations for float64.
	// The bound is NB ≤ 2^(m−W−1) = 2^11; with this choice the running
	// sum drifts by at most 0.25·ufp between propagations and therefore
	// never changes its exponent.
	NB64 = 1 << (MantBits64 - W64 - 1) // 2048
	// NB32 is the tile size between carry-bit propagations for float32
	// (2^(23−18−1) = 16).
	NB32 = 1 << (MantBits32 - W32 - 1) // 16

	bias64     = 1023
	bias32     = 127
	expMask64  = 0x7FF
	expMask32  = 0xFF
	mantMask64 = (uint64(1) << MantBits64) - 1
	mantMask32 = (uint32(1) << MantBits32) - 1

	// MaxLevelExp64 is the largest supported level exponent for float64
	// (a multiple of W64). Extractors of the form 1.5·2^e must stay
	// comfortably below the overflow threshold even after the running
	// sum drifts within its binade.
	MaxLevelExp64 = 1000 // = 25·W64
	// MinLevelExp64 is the smallest supported level exponent for float64
	// (a multiple of W64). Below this, ulp(extractor) would enter the
	// subnormal range and the error-free transformation would no longer
	// be exact; contributions that small are deterministically dropped.
	MinLevelExp64 = -960 // = −24·W64

	// MaxLevelExp32 and MinLevelExp32 are the float32 analogues.
	MaxLevelExp32 = 126  // = 7·W32
	MinLevelExp32 = -108 // = −6·W32

	// MaxInputExp64 is the largest unbiased exponent an input value may
	// have and still be representable at the top supported level:
	// the level-shift rule needs e_top ≥ exp(b) + m − W + 2.
	MaxInputExp64 = MaxLevelExp64 - (MantBits64 - W64 + 2) // 986
	// MaxInputExp32 is the float32 analogue.
	MaxInputExp32 = MaxLevelExp32 - (MantBits32 - W32 + 2) // 119
)

// Exponent64 returns the unbiased binary exponent of x, i.e.
// floor(log2 |x|), for finite non-zero x. Subnormals are handled by
// normalizing the mantissa. The result for ±0, ±Inf, and NaN is
// unspecified; callers filter those beforehand.
func Exponent64(x float64) int {
	b := math.Float64bits(x)
	e := int(b>>MantBits64) & expMask64
	if e != 0 { // normal
		return e - bias64
	}
	// Subnormal: exponent of the highest set mantissa bit.
	m := b & mantMask64
	return -bias64 - MantBits64 + bitLen64(m)
}

// Exponent32 is the float32 analogue of Exponent64.
func Exponent32(x float32) int {
	b := math.Float32bits(x)
	e := int(b>>MantBits32) & expMask32
	if e != 0 {
		return e - bias32
	}
	m := b & mantMask32
	return -bias32 - MantBits32 + bitLen32(m)
}

func bitLen64(x uint64) int { return bits.Len64(x) }

func bitLen32(x uint32) int { return bits.Len32(x) }

// Ufp64 returns the unit in the first place of x: 2^Exponent64(x).
// Ufp64(0) = 0.
func Ufp64(x float64) float64 {
	if x == 0 {
		return 0
	}
	return Pow2_64(Exponent64(x))
}

// Ufp32 returns the unit in the first place of x. Ufp32(0) = 0.
func Ufp32(x float32) float32 {
	if x == 0 {
		return 0
	}
	return Pow2_32(Exponent32(x))
}

// Ulp64 returns the unit in the last place of x: 2^(Exponent64(x)−m).
// Ulp64(0) = 0. The exponent is clamped to the subnormal range, so the
// result is never zero for non-zero x.
func Ulp64(x float64) float64 {
	if x == 0 {
		return 0
	}
	e := Exponent64(x) - MantBits64
	if e < -bias64-MantBits64+1 {
		e = -bias64 - MantBits64 + 1
	}
	return Pow2_64(e)
}

// Ulp32 is the float32 analogue of Ulp64.
func Ulp32(x float32) float32 {
	if x == 0 {
		return 0
	}
	e := Exponent32(x) - MantBits32
	if e < -bias32-MantBits32+1 {
		e = -bias32 - MantBits32 + 1
	}
	return Pow2_32(e)
}

// Pow2_64 returns 2^e as a float64 for e in the normal range
// [−1022, 1023]. It panics on out-of-range exponents: levels are clamped
// to [MinLevelExp64, MaxLevelExp64] long before this limit.
func Pow2_64(e int) float64 {
	if e < -bias64+1 || e > bias64 {
		if e >= -bias64-MantBits64+1 && e <= -bias64 {
			// Subnormal powers of two are exactly representable.
			return math.Float64frombits(uint64(1) << (e + bias64 + MantBits64 - 1))
		}
		panic("floatbits: Pow2_64 exponent out of range")
	}
	return math.Float64frombits(uint64(e+bias64) << MantBits64)
}

// Pow2_32 returns 2^e as a float32 for e in the normal range.
func Pow2_32(e int) float32 {
	if e < -bias32+1 || e > bias32 {
		if e >= -bias32-MantBits32+1 && e <= -bias32 {
			return math.Float32frombits(uint32(1) << (e + bias32 + MantBits32 - 1))
		}
		panic("floatbits: Pow2_32 exponent out of range")
	}
	return math.Float32frombits(uint32(e+bias32) << MantBits32)
}

// Extractor64 returns the level extractor constant 1.5·2^e.
// Extractors have a fixed mantissa (only the top bit set), so the
// round-half-even tie-break of Split64 is a pure function of the value
// being split — this is what makes extraction order-independent.
func Extractor64(e int) float64 {
	return math.Float64frombits(uint64(e+bias64)<<MantBits64 | uint64(1)<<(MantBits64-1))
}

// Extractor32 returns 1.5·2^e as a float32.
func Extractor32(e int) float32 {
	return math.Float32frombits(uint32(e+bias32)<<MantBits32 | uint32(1)<<(MantBits32-1))
}

// GridCeil returns the smallest multiple of w that is ≥ e.
func GridCeil(e, w int) int {
	q := e / w
	if e > q*w {
		q++
	}
	return q * w
}

// GridFloor returns the largest multiple of w that is ≤ e.
func GridFloor(e, w int) int {
	q := e / w
	if e < q*w {
		q--
	}
	return q * w
}

// Split64 performs the error-free transformation of b against the fixed
// extractor ext = 1.5·2^e (Ogita, Rump & Oishi): it returns the
// contribution q — b rounded to the nearest integer multiple of
// ulp(ext) — and the remainder r = b − q, such that q + r == b exactly.
//
// Precondition: |b| ≤ 2^(W−1)·ulp(ext) for the relevant W, so that
// b ⊕ ext stays in the extractor's binade and both operations are exact.
func Split64(b, ext float64) (q, r float64) {
	q = (b + ext) - ext
	r = b - q
	return q, r
}

// Split32 is the float32 analogue of Split64.
func Split32(b, ext float32) (q, r float32) {
	q = (b + ext) - ext
	r = b - q
	return q, r
}

// TopLevelExp64 returns the grid-aligned exponent of the first (largest)
// level able to absorb a value with unbiased exponent eb: the smallest
// multiple of W64 that is ≥ eb + m − W + 2, clamped to the supported
// level range.
func TopLevelExp64(eb int) int {
	e := GridCeil(eb+MantBits64-W64+2, W64)
	if e > MaxLevelExp64 {
		e = MaxLevelExp64
	}
	if e < MinLevelExp64 {
		e = MinLevelExp64
	}
	return e
}

// TopLevelExp32 is the float32 analogue of TopLevelExp64.
func TopLevelExp32(eb int) int {
	e := GridCeil(eb+MantBits32-W32+2, W32)
	if e > MaxLevelExp32 {
		e = MaxLevelExp32
	}
	if e < MinLevelExp32 {
		e = MinLevelExp32
	}
	return e
}
