package floatbits

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponent64(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{1.0, 0},
		{1.5, 0},
		{1.9999999, 0},
		{2.0, 1},
		{0.5, -1},
		{0.75, -1},
		{3.0, 1},
		{4.0, 2},
		{-4.0, 2},
		{-0.25, -2},
		{1024.0, 10},
		{math.MaxFloat64, 1023},
		{math.SmallestNonzeroFloat64, -1074},
		{0x1p-1022, -1022},      // smallest normal
		{0x1p-1023, -1023},      // subnormal
		{0x1.8p-1030, -1030},    // subnormal with several bits
		{2.5e-16, -52},          // value from Algorithm 1 in the paper
		{0.999999999999999, -1}, // value from Algorithm 1 in the paper
	}
	for _, c := range cases {
		if got := Exponent64(c.x); got != c.want {
			t.Errorf("Exponent64(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestExponent32(t *testing.T) {
	cases := []struct {
		x    float32
		want int
	}{
		{1.0, 0},
		{2.0, 1},
		{0.5, -1},
		{-3.0, 1},
		{math.MaxFloat32, 127},
		{math.SmallestNonzeroFloat32, -149},
		{0x1p-126, -126},
		{0x1p-127, -127},
	}
	for _, c := range cases {
		if got := Exponent32(c.x); got != c.want {
			t.Errorf("Exponent32(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestExponent64MatchesFrexp(t *testing.T) {
	// Property: Exponent64 agrees with math.Frexp on finite non-zero values.
	f := func(x float64) bool {
		if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		_, e := math.Frexp(x)
		return Exponent64(x) == e-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestUfpUlp64(t *testing.T) {
	cases := []struct {
		x        float64
		ufp, ulp float64
	}{
		{1.0, 1.0, 0x1p-52},
		{1.75, 1.0, 0x1p-52},
		{-1.75, 1.0, 0x1p-52},
		{2.0, 2.0, 0x1p-51},
		{3.5, 2.0, 0x1p-51},
		{0.75, 0.5, 0x1p-53},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := Ufp64(c.x); got != c.ufp {
			t.Errorf("Ufp64(%g) = %g, want %g", c.x, got, c.ufp)
		}
		if got := Ulp64(c.x); got != c.ulp {
			t.Errorf("Ulp64(%g) = %g, want %g", c.x, got, c.ulp)
		}
	}
}

func TestUfpProperties64(t *testing.T) {
	f := func(x float64) bool {
		if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		u := Ufp64(x)
		ax := math.Abs(x)
		// ufp(x) ≤ |x| < 2·ufp(x)
		return u <= ax && ax < 2*u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestUfpProperties32(t *testing.T) {
	f := func(x float32) bool {
		if x == 0 || x != x || math.IsInf(float64(x), 0) {
			return true
		}
		u := Ufp32(x)
		ax := x
		if ax < 0 {
			ax = -ax
		}
		return u <= ax && ax < 2*u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPow2_64(t *testing.T) {
	for e := -1022; e <= 1023; e++ {
		want := math.Ldexp(1, e)
		if got := Pow2_64(e); got != want {
			t.Fatalf("Pow2_64(%d) = %g, want %g", e, got, want)
		}
	}
	// Subnormal powers of two.
	for e := -1074; e <= -1023; e++ {
		want := math.Ldexp(1, e)
		if got := Pow2_64(e); got != want {
			t.Fatalf("Pow2_64(%d) = %g, want %g (subnormal)", e, got, want)
		}
	}
}

func TestPow2_32(t *testing.T) {
	for e := -126; e <= 127; e++ {
		want := float32(math.Ldexp(1, e))
		if got := Pow2_32(e); got != want {
			t.Fatalf("Pow2_32(%d) = %g, want %g", e, got, want)
		}
	}
	for e := -149; e <= -127; e++ {
		want := float32(math.Ldexp(1, e))
		if got := Pow2_32(e); got != want {
			t.Fatalf("Pow2_32(%d) = %g, want %g (subnormal)", e, got, want)
		}
	}
}

func TestPow2PanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow2_64(2000) did not panic")
		}
	}()
	Pow2_64(2000)
}

func TestExtractor64(t *testing.T) {
	for _, e := range []int{-960, -40, 0, 40, 80, 1000} {
		want := 1.5 * math.Ldexp(1, e)
		if got := Extractor64(e); got != want {
			t.Errorf("Extractor64(%d) = %g, want %g", e, got, want)
		}
		if Ufp64(Extractor64(e)) != Pow2_64(e) {
			t.Errorf("ufp(Extractor64(%d)) != 2^%d", e, e)
		}
	}
}

func TestExtractor32(t *testing.T) {
	for _, e := range []int{-108, -18, 0, 18, 126} {
		want := float32(1.5 * math.Ldexp(1, e))
		if got := Extractor32(e); got != want {
			t.Errorf("Extractor32(%d) = %g, want %g", e, got, want)
		}
	}
}

func TestGridCeilFloor(t *testing.T) {
	cases := []struct {
		e, w, ceil, floor int
	}{
		{0, 40, 0, 0},
		{1, 40, 40, 0},
		{39, 40, 40, 0},
		{40, 40, 40, 40},
		{41, 40, 80, 40},
		{-1, 40, 0, -40},
		{-40, 40, -40, -40},
		{-41, 40, -40, -80},
		{-79, 40, -40, -80},
		{17, 18, 18, 0},
		{-17, 18, 0, -18},
	}
	for _, c := range cases {
		if got := GridCeil(c.e, c.w); got != c.ceil {
			t.Errorf("GridCeil(%d,%d) = %d, want %d", c.e, c.w, got, c.ceil)
		}
		if got := GridFloor(c.e, c.w); got != c.floor {
			t.Errorf("GridFloor(%d,%d) = %d, want %d", c.e, c.w, got, c.floor)
		}
	}
}

func TestGridProperties(t *testing.T) {
	f := func(e int16, wsel bool) bool {
		w := W64
		if wsel {
			w = W32
		}
		c := GridCeil(int(e), w)
		fl := GridFloor(int(e), w)
		return c%w == 0 && fl%w == 0 && c >= int(e) && c-int(e) < w &&
			fl <= int(e) && int(e)-fl < w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSplit64Exact checks the defining property of the error-free
// transformation: q + r == b exactly, q is a multiple of ulp(ext), and
// |r| ≤ ulp(ext)/2, for all values within the extraction bound.
func TestSplit64Exact(t *testing.T) {
	f := func(frac uint64, eOff uint8, neg bool) bool {
		e := 0 // extractor exponent
		ext := Extractor64(e)
		// Build b with |b| < 2^(W−1)·ulp(ext) = 2^(W−1−m)·2^e.
		maxExp := e + W64 - 1 - MantBits64 // exclusive bound on exponent of b
		be := maxExp - 1 - int(eOff%60)
		b := math.Ldexp(1+float64(frac%(1<<52))*0x1p-52, be)
		if neg {
			b = -b
		}
		q, r := Split64(b, ext)
		if q+r != b {
			return false
		}
		ulp := Pow2_64(e - MantBits64)
		if q != 0 && math.Mod(q, ulp) != 0 {
			return false
		}
		return math.Abs(r) <= ulp/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestSplit64Deterministic verifies that splitting against a fixed
// extractor is a pure function of the value, by comparing against a
// bit-level reference implementation of round-to-nearest-even
// quantization to multiples of ulp(ext).
func TestSplit64Deterministic(t *testing.T) {
	ext := Extractor64(0)
	ulp := Pow2_64(-MantBits64)
	ref := func(b float64) float64 {
		// round b/ulp to nearest even integer, then scale back
		s := b / ulp // exact: division by power of two
		fl := math.Floor(s)
		diff := s - fl
		switch {
		case diff > 0.5:
			fl++
		case diff == 0.5:
			if math.Mod(fl, 2) != 0 {
				fl++
			}
		}
		return fl * ulp
	}
	vals := []float64{
		0, ulp / 2, -ulp / 2, ulp, 1.5 * ulp, 2.5 * ulp, -2.5 * ulp,
		3.5 * ulp, 0.49999 * ulp, 0.50001 * ulp, 100.25 * ulp,
	}
	for _, b := range vals {
		q, r := Split64(b, ext)
		if want := ref(b); q != want {
			t.Errorf("Split64(%g): q=%g, reference RNE quantization %g", b, q, want)
		}
		if q+r != b {
			t.Errorf("Split64(%g): q+r != b", b)
		}
	}
}

func TestSplit32Exact(t *testing.T) {
	f := func(frac uint32, eOff uint8, neg bool) bool {
		e := 0
		ext := Extractor32(e)
		maxExp := e + W32 - 1 - MantBits32
		be := maxExp - 1 - int(eOff%30)
		b := float32(math.Ldexp(1+float64(frac%(1<<23))*0x1p-23, be))
		if neg {
			b = -b
		}
		q, r := Split32(b, ext)
		if q+r != b {
			return false
		}
		ulp := Pow2_32(e - MantBits32)
		ar := r
		if ar < 0 {
			ar = -ar
		}
		return ar <= ulp/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestTopLevelExp64(t *testing.T) {
	// A value with exponent eb must satisfy |b| < 2^(W−1)·ulp(E_top),
	// i.e. eb + 1 ≤ e_top − m + W − 1.
	for eb := -900; eb <= MaxInputExp64; eb += 7 {
		e := TopLevelExp64(eb)
		if e%W64 != 0 {
			t.Fatalf("TopLevelExp64(%d) = %d not on grid", eb, e)
		}
		if e < MinLevelExp64 || e > MaxLevelExp64 {
			t.Fatalf("TopLevelExp64(%d) = %d out of range", eb, e)
		}
		if eb >= MinLevelExp64-MantBits64 { // not clamped at the bottom
			if eb+1 > e-MantBits64+W64-1 {
				t.Fatalf("TopLevelExp64(%d) = %d cannot absorb the value", eb, e)
			}
		}
	}
}

func TestTopLevelExp32(t *testing.T) {
	for eb := -100; eb <= MaxInputExp32; eb++ {
		e := TopLevelExp32(eb)
		if e%W32 != 0 {
			t.Fatalf("TopLevelExp32(%d) = %d not on grid", eb, e)
		}
		if eb >= MinLevelExp32-MantBits32 {
			if eb+1 > e-MantBits32+W32-1 {
				t.Fatalf("TopLevelExp32(%d) = %d cannot absorb the value", eb, e)
			}
		}
	}
}

func TestNBBounds(t *testing.T) {
	// The tile sizes must respect NB ≤ 2^(m−W−1) so that the running sum
	// drifts by at most 0.25·ufp between carry propagations.
	if NB64 > 1<<(MantBits64-W64-1) {
		t.Errorf("NB64 = %d exceeds bound", NB64)
	}
	if NB32 > 1<<(MantBits32-W32-1) {
		t.Errorf("NB32 = %d exceeds bound", NB32)
	}
}
