package sqlagg

import (
	"bytes"
	"testing"
)

// FuzzAggStateDecode drives arbitrary bytes through every registered
// aggregate decoder. The contract at the trust boundary: malformed
// bytes error, never panic; accepted bytes are in canonical form, so
// re-encoding reproduces them exactly; and MergeBinary accepts exactly
// what UnmarshalBinary accepts (modulo level mismatches).
func FuzzAggStateDecode(f *testing.F) {
	seedSpecs := []AggSpec{
		{Kind: AggSum, Levels: 2},
		{Kind: AggCount},
		{Kind: AggAvg, Levels: 3},
		{Kind: AggVarSamp, Levels: 2},
		{Kind: AggMin},
		{Kind: AggMax},
	}
	for _, sp := range seedSpecs {
		st, err := sp.New()
		if err != nil {
			f.Fatal(err)
		}
		st.Add(1.5)
		st.Add(-2.25)
		enc, err := st.AppendBinary(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 64, 2, 1})

	decodeSpecs := allSpecs(2)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, sp := range decodeSpecs {
			st, err := sp.New()
			if err != nil {
				t.Fatal(err)
			}
			if err := st.UnmarshalBinary(data); err != nil {
				continue
			}
			re, err := st.AppendBinary(nil)
			if err != nil {
				t.Fatalf("%s: re-encode of accepted bytes failed: %v", sp.Kind, err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("%s: accepted non-canonical encoding", sp.Kind)
			}
			fresh, _ := sp.New()
			fresh.Add(0.5)
			// Merging may reject level mismatches but must not panic.
			_ = fresh.MergeBinary(data)
			_ = st.Value()
		}
		// Spec lists cross the same boundary via the job blob.
		if specs, err := DecodeSpecs(data); err == nil {
			re, err := EncodeSpecs(nil, specs)
			if err != nil || !bytes.Equal(re, data) {
				t.Fatal("DecodeSpecs accepted non-canonical spec list")
			}
		}
	})
}
