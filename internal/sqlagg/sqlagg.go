// Package sqlagg implements the SQL aggregate-function library on top of
// reproducible summation. The paper's introduction (footnote 2) observes
// that with a reproducible floating-point SUM, every SQL aggregate that
// needs floating-point arithmetic can be made reproducible, because they
// are all computable from SUMs: AVG, VARIANCE, STDDEV, COVAR, CORR, and
// the regression aggregates. The paper's future work names "operators
// for machine learning and vector manipulation"; DotProduct and Norm2
// cover the corresponding kernels.
//
// Each aggregate keeps one or more reproducible accumulators plus an
// exact row counter, so any permutation of the input and any merge tree
// of partial aggregates yields bit-identical results. Finalization uses
// a fixed sequence of floating-point operations, preserving bit
// reproducibility end to end.
//
// Population/sample variants follow the SQL standard: VAR_POP divides
// by n, VAR_SAMP by n−1 (NULL — here NaN — for n < 2).
package sqlagg

import (
	"math"

	"repro/internal/core"
)

// Avg is the reproducible AVG(x) aggregate.
type Avg struct {
	sum core.Sum64
	n   int64
}

// NewAvg returns an empty AVG accumulator with the given level count.
func NewAvg(levels int) Avg { return Avg{sum: core.NewSum64(levels)} }

// Add folds one row in.
func (a *Avg) Add(x float64) {
	a.sum.Add(x)
	a.n++
}

// MergeFrom combines partial aggregates.
func (a *Avg) MergeFrom(o *Avg) {
	a.sum.MergeFrom(&o.sum)
	a.n += o.n
}

// Count returns the row count.
func (a *Avg) Count() int64 { return a.n }

// Value finalizes: SUM(x)/COUNT(x); NaN for an empty input (SQL NULL).
func (a *Avg) Value() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum.Value() / float64(a.n)
}

// Variance is the reproducible VARIANCE/STDDEV aggregate, computed from
// SUM(x) and SUM(x²) — the textbook decomposition the paper alludes to.
// The squaring x·x is a single deterministic rounding per row, so the
// whole aggregate is a function of the input multiset.
type Variance struct {
	sum   core.Sum64
	sumSq core.Sum64
	n     int64
}

// NewVariance returns an empty variance accumulator.
func NewVariance(levels int) Variance {
	return Variance{sum: core.NewSum64(levels), sumSq: core.NewSum64(levels)}
}

// Add folds one row in.
func (v *Variance) Add(x float64) {
	v.sum.Add(x)
	v.sumSq.Add(x * x)
	v.n++
}

// MergeFrom combines partial aggregates.
func (v *Variance) MergeFrom(o *Variance) {
	v.sum.MergeFrom(&o.sum)
	v.sumSq.MergeFrom(&o.sumSq)
	v.n += o.n
}

// Count returns the row count.
func (v *Variance) Count() int64 { return v.n }

// VarPop finalizes VAR_POP = (Σx² − (Σx)²/n) / n, clamped at 0 against
// tiny negative results from the final (deterministic) roundings.
func (v *Variance) VarPop() float64 {
	if v.n == 0 {
		return math.NaN()
	}
	return v.finalize(float64(v.n))
}

// VarSamp finalizes VAR_SAMP = (Σx² − (Σx)²/n) / (n−1); NaN for n < 2.
func (v *Variance) VarSamp() float64 {
	if v.n < 2 {
		return math.NaN()
	}
	return v.finalize(float64(v.n - 1))
}

func (v *Variance) finalize(den float64) float64 {
	s := v.sum.Value()
	sq := v.sumSq.Value()
	r := (sq - s*s/float64(v.n)) / den
	if r < 0 {
		return 0
	}
	return r
}

// StddevPop finalizes STDDEV_POP.
func (v *Variance) StddevPop() float64 { return math.Sqrt(v.VarPop()) }

// StddevSamp finalizes STDDEV_SAMP.
func (v *Variance) StddevSamp() float64 { return math.Sqrt(v.VarSamp()) }

// Covariance is the reproducible COVAR_POP/COVAR_SAMP/CORR aggregate
// over pairs (x, y), from SUM(x), SUM(y), SUM(x·y), SUM(x²), SUM(y²).
type Covariance struct {
	sumX, sumY, sumXY, sumXX, sumYY core.Sum64
	n                               int64
}

// NewCovariance returns an empty covariance accumulator.
func NewCovariance(levels int) Covariance {
	return Covariance{
		sumX:  core.NewSum64(levels),
		sumY:  core.NewSum64(levels),
		sumXY: core.NewSum64(levels),
		sumXX: core.NewSum64(levels),
		sumYY: core.NewSum64(levels),
	}
}

// Add folds one row in.
func (c *Covariance) Add(x, y float64) {
	c.sumX.Add(x)
	c.sumY.Add(y)
	c.sumXY.Add(x * y)
	c.sumXX.Add(x * x)
	c.sumYY.Add(y * y)
	c.n++
}

// MergeFrom combines partial aggregates.
func (c *Covariance) MergeFrom(o *Covariance) {
	c.sumX.MergeFrom(&o.sumX)
	c.sumY.MergeFrom(&o.sumY)
	c.sumXY.MergeFrom(&o.sumXY)
	c.sumXX.MergeFrom(&o.sumXX)
	c.sumYY.MergeFrom(&o.sumYY)
	c.n += o.n
}

// Count returns the row count.
func (c *Covariance) Count() int64 { return c.n }

// CovarPop finalizes COVAR_POP = (Σxy − ΣxΣy/n) / n.
func (c *Covariance) CovarPop() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	return c.cov() / float64(c.n)
}

// CovarSamp finalizes COVAR_SAMP = (Σxy − ΣxΣy/n) / (n−1).
func (c *Covariance) CovarSamp() float64 {
	if c.n < 2 {
		return math.NaN()
	}
	return c.cov() / float64(c.n-1)
}

func (c *Covariance) cov() float64 {
	return c.sumXY.Value() - c.sumX.Value()*c.sumY.Value()/float64(c.n)
}

// Corr finalizes the Pearson correlation CORR(x, y); NaN when either
// variance is zero.
func (c *Covariance) Corr() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	nf := float64(c.n)
	sx := c.sumXX.Value() - c.sumX.Value()*c.sumX.Value()/nf
	sy := c.sumYY.Value() - c.sumY.Value()*c.sumY.Value()/nf
	if sx <= 0 || sy <= 0 {
		return math.NaN()
	}
	return c.cov() / math.Sqrt(sx*sy)
}

// RegrSlope finalizes REGR_SLOPE(y over x) = covar_pop(x,y)/var_pop(x).
func (c *Covariance) RegrSlope() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	nf := float64(c.n)
	sx := c.sumXX.Value() - c.sumX.Value()*c.sumX.Value()/nf
	if sx == 0 {
		return math.NaN()
	}
	return c.cov() / sx
}

// RegrIntercept finalizes REGR_INTERCEPT(y over x).
func (c *Covariance) RegrIntercept() float64 {
	slope := c.RegrSlope()
	if math.IsNaN(slope) {
		return math.NaN()
	}
	nf := float64(c.n)
	return c.sumY.Value()/nf - slope*c.sumX.Value()/nf
}

// DotProduct returns the reproducible dot product Σ x_i·y_i — the basic
// kernel of the "machine learning and vector manipulation" operators the
// paper's future work names. Each product rounds once deterministically;
// the sum is reproducible, so the result is a function of the value
// multiset (and is bit-identical for chunked/parallel execution via
// DotProductMerge).
func DotProduct(x, y []float64, levels int) float64 {
	if len(x) != len(y) {
		panic("sqlagg: dot product of different-length vectors")
	}
	s := core.NewSum64(levels)
	for i := range x {
		s.Add(x[i] * y[i])
	}
	return s.Value()
}

// Norm2 returns the reproducible squared Euclidean norm Σ x_i².
func Norm2(x []float64, levels int) float64 {
	return DotProduct(x, x, levels)
}

// DotProductExact returns the reproducible dot product with error-free
// products: each product x·y is split into its rounded head p = fl(x·y)
// and exact tail e = fma(x, y, −p) (the TwoProduct transformation of
// Ogita, Rump & Oishi), and BOTH parts are folded into the reproducible
// sum. The result is therefore as accurate as summing the exact
// products — the quality target of reproducible BLAS-1 kernels — and
// bit-reproducible for any order.
func DotProductExact(x, y []float64, levels int) float64 {
	if len(x) != len(y) {
		panic("sqlagg: dot product of different-length vectors")
	}
	s := core.NewSum64(levels)
	for i := range x {
		p := x[i] * y[i]
		e := math.FMA(x[i], y[i], -p) // exact: x·y − fl(x·y)
		s.Add(p)
		s.Add(e)
	}
	return s.Value()
}
