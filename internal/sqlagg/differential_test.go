package sqlagg

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/exact"
	"repro/internal/workload"
)

// Differential tests: AVG/VAR/STDDEV against arbitrary-precision
// references from internal/exact on adversarial inputs — massive
// cancellation, denormals, and 2^±300 magnitude spreads. The aggregates
// cannot beat the conditioning of their own finalization formula (the
// Σx² − (Σx)²/n decomposition is genuinely ill-conditioned when the
// mean dominates the spread), so the assertions bound the error by the
// conditioning of each input, not by a single global epsilon.

// adversarialInputs names the stress inputs shared by the differential
// tests below.
func adversarialInputs() map[string][]float64 {
	cancel := make([]float64, 0, 2000)
	for i := 0; i < 1000; i++ {
		v := math.Ldexp(1+float64(i)/1000, 40)
		cancel = append(cancel, v, -v)
	}
	cancel = append(cancel, 1.0)

	denorm := make([]float64, 1500)
	for i := range denorm {
		denorm[i] = math.Ldexp(float64(1+i%7), -1070+i%20)
	}

	spread := make([]float64, 0, 900)
	for i := 0; i < 300; i++ {
		spread = append(spread,
			math.Ldexp(1+float64(i)/300, 300),
			math.Ldexp(1+float64(i)/300, -300),
			-math.Ldexp(1+float64(i)/300, 299))
	}

	return map[string][]float64{
		"cancellation": cancel,
		"denormals":    denorm,
		"spread_2e300": spread,
		"mixed_mag":    workload.Values64(5, 4000, workload.MixedMag),
	}
}

// exactMean returns Σx/n in big.Float precision.
func exactMean(xs []float64) *big.Float {
	s := exact.Sum(xs)
	return new(big.Float).Quo(s, big.NewFloat(float64(len(xs))))
}

// exactVarPop returns the population variance in big.Float precision,
// via the same Σx²−(Σx)²/n decomposition the aggregate finalizes with.
func exactVarPop(xs []float64) *big.Float {
	sq := make([]float64, 0, 2*len(xs))
	for _, x := range xs {
		// Error-free squaring: x² = p + e exactly, with e from FMA.
		p := x * x
		e := math.FMA(x, x, -p)
		sq = append(sq, p, e)
	}
	n := big.NewFloat(float64(len(xs)))
	sumSq := exact.Sum(sq)
	sum := exact.Sum(xs)
	mean2 := new(big.Float).Quo(new(big.Float).Mul(sum, sum), n)
	return new(big.Float).Quo(new(big.Float).Sub(sumSq, mean2), n)
}

// relErr returns |got − want|/max(|want|, floor).
func relErr(got float64, want *big.Float, floor float64) float64 {
	w, _ := want.Float64()
	den := math.Max(math.Abs(w), floor)
	return exact.AbsError(got, want) / den
}

// denormalTol is the extra relative slack for pure-denormal inputs:
// contributions below rsum's dead-level floor (2^LowestLevelExp64) are
// deterministically dropped, so accuracy there is bounded by the
// truncation contract, not by the summation error bound. The drop is
// deterministic — reproducibility still holds bit-exactly, which
// TestVarStddevPermutationStable asserts on the same input.
const denormalTol = 0.05

func TestAvgDifferentialAdversarial(t *testing.T) {
	for name, xs := range adversarialInputs() {
		a := NewAvg(4)
		for _, x := range xs {
			a.Add(x)
		}
		want := exactMean(xs)
		// The reproducible sum is exact up to its level capacity; the
		// only roundings are x-folds and the final division. The bound
		// scales with the mean's conditioning: Σ|x| / |Σx|.
		abs := exact.Sum(absAll(xs))
		absF, _ := abs.Float64()
		wantF, _ := want.Float64()
		cond := absF / math.Max(math.Abs(wantF)*float64(len(xs)), math.SmallestNonzeroFloat64)
		tol := 1e-13 * math.Max(cond, 1)
		if name == "denormals" {
			tol = math.Max(tol, denormalTol)
		}
		if e := relErr(a.Value(), want, math.SmallestNonzeroFloat64); e > tol {
			t.Errorf("%s: AVG rel err %.3e > %.3e (got %v)", name, e, tol, a.Value())
		}
	}
}

func TestVarStddevDifferentialAdversarial(t *testing.T) {
	for name, xs := range adversarialInputs() {
		v := NewVariance(4)
		for _, x := range xs {
			v.Add(x)
		}
		want := exactVarPop(xs)
		wantF, _ := want.Float64()
		if wantF < 0 {
			wantF = 0
		}
		// Conditioning of the textbook decomposition: Σx² vs the
		// variance it cancels down to.
		sq := make([]float64, len(xs))
		for i, x := range xs {
			sq[i] = x * x
		}
		sumSqF, _ := exact.Sum(sq).Float64()
		cond := sumSqF / math.Max(wantF*float64(len(xs)), math.SmallestNonzeroFloat64)
		tol := 1e-13 * math.Max(cond, 1)
		if name == "denormals" {
			tol = math.Max(tol, denormalTol)
		}
		got := v.VarPop()
		if e := relErr(got, want, math.SmallestNonzeroFloat64); e > tol {
			t.Errorf("%s: VAR_POP rel err %.3e > %.3e (got %v, want %v)", name, e, tol, got, wantF)
		}
		// STDDEV_POP must be exactly √VAR_POP (one deterministic sqrt).
		if math.Float64bits(v.StddevPop()) != math.Float64bits(math.Sqrt(got)) {
			t.Errorf("%s: STDDEV_POP is not sqrt(VAR_POP)", name)
		}
		// And the sample variants agree with the n/(n−1) rescale of the
		// same numerator.
		n := float64(v.Count())
		if s := v.VarSamp(); math.Abs(s-got*n/(n-1)) > 1e-12*math.Max(math.Abs(s), 1) {
			t.Errorf("%s: VAR_SAMP %v inconsistent with VAR_POP %v", name, s, got)
		}
	}
}

// TestVarStddevPermutationStable is the reproducibility half of the
// differential check: adversarial inputs in reversed and interleaved
// orders, split across merged partials, must finalize bit-identically.
func TestVarStddevPermutationStable(t *testing.T) {
	for name, xs := range adversarialInputs() {
		seq := NewVariance(3)
		for _, x := range xs {
			seq.Add(x)
		}
		rev := NewVariance(3)
		for i := len(xs) - 1; i >= 0; i-- {
			rev.Add(xs[i])
		}
		parts := [3]Variance{NewVariance(3), NewVariance(3), NewVariance(3)}
		for i, x := range xs {
			parts[i%3].Add(x)
		}
		merged := NewVariance(3)
		for i := range parts {
			merged.MergeFrom(&parts[i])
		}
		for _, pair := range [][2]float64{
			{seq.VarPop(), rev.VarPop()},
			{seq.VarPop(), merged.VarPop()},
			{seq.StddevSamp(), rev.StddevSamp()},
			{seq.StddevSamp(), merged.StddevSamp()},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("%s: variance not permutation/merge stable: %v vs %v", name, pair[0], pair[1])
			}
		}
	}
}

func absAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x)
	}
	return out
}
