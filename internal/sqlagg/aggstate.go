package sqlagg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/rsum"
)

// This file generalizes the distributed plane over pluggable aggregate
// states. The paper's footnote 2 observes that every floating-point SQL
// aggregate becomes reproducible once SUM is; AggState is the contract
// that lets the shuffle/gather machinery in internal/dist carry any such
// aggregate without knowing its internals:
//
//   - Add/MergeFrom are the in-memory accumulation semantics;
//   - AppendBinary/UnmarshalBinary/MergeBinary are a canonical binary
//     encoding byte-compatible with the in-memory merge semantics (two
//     states representing the same multiset encode identically);
//   - EncodedSize is a pure function of the spec (never of the data),
//     so senders can pre-size frame buffers and receivers can walk a
//     concatenated tuple of states without a length prefix per state.
//
// AggSpec names one aggregate column of a distributed GROUP BY: which
// aggregate (kind), how many summation levels, and which value column it
// reads. A query plan is a []AggSpec; each group's payload on the wire
// is the concatenation of the spec-ordered state encodings.

// AggState is one partial aggregate for one group: a mergeable,
// canonically serializable accumulator.
type AggState interface {
	// Add folds one input value in.
	Add(x float64)
	// MergeFrom folds another partial of the same spec into this one.
	// Kind or level mismatches are errors, never panics.
	MergeFrom(o AggState) error
	// MergeBinary decodes an encoding of the same spec and merges it in.
	MergeBinary(data []byte) error
	// AppendBinary appends the canonical encoding to dst; with enough
	// capacity it does not allocate (encoding.BinaryAppender).
	AppendBinary(dst []byte) ([]byte, error)
	// UnmarshalBinary replaces the state with a decoded encoding,
	// rejecting malformed bytes with an error (never a panic).
	UnmarshalBinary(data []byte) error
	// EncodedSize returns the exact encoding length — a pure function
	// of the spec, independent of the accumulated data.
	EncodedSize() int
	// Value finalizes the aggregate with a fixed, deterministic
	// sequence of floating-point operations.
	Value() float64
	// Reset empties the state, keeping its configuration.
	Reset()
}

// AggKind identifies an aggregate function in the spec catalog.
type AggKind byte

// The built-in aggregate catalog.
const (
	AggSum AggKind = 1 + iota
	AggCount
	AggAvg
	AggVarPop
	AggVarSamp
	AggStddevPop
	AggStddevSamp
	AggMin
	AggMax
)

// String returns the registered name of the kind ("SUM", "AVG", …).
func (k AggKind) String() string {
	if e, ok := registry[k]; ok {
		return e.name
	}
	return fmt.Sprintf("AggKind(%d)", byte(k))
}

// AggSpec describes one aggregate column of a multi-aggregate GROUP BY.
type AggSpec struct {
	// Kind selects the aggregate function from the registered catalog.
	Kind AggKind
	// Levels is the summation level count for reproducible-sum-backed
	// kinds; 0 means core.DefaultLevels. Kinds without a summation
	// state (COUNT, MIN, MAX) ignore it beyond validation.
	Levels int
	// Col is the index of the value column the aggregate reads.
	Col int
}

// maxSpecCol bounds Col so specs fit the 2-byte wire field.
const maxSpecCol = 1<<16 - 1

// maxSpecs bounds a spec list; hostile spec blobs cannot demand
// unbounded tuple sizes.
const maxSpecs = 256

// Sentinel errors for spec and state validation.
var (
	// ErrBadSpec reports an invalid or unregistered aggregate spec.
	ErrBadSpec = errors.New("sqlagg: invalid aggregate spec")
	// ErrBadState reports a malformed aggregate state encoding.
	ErrBadState = errors.New("sqlagg: malformed aggregate state encoding")
	// ErrMergeMismatch reports a merge between incompatible states.
	ErrMergeMismatch = errors.New("sqlagg: cannot merge incompatible aggregate states")
)

// registry maps kinds to their factories. Register during init only;
// the map is read-only afterwards.
type regEntry struct {
	name    string
	factory func(levels int) AggState
}

var registry = map[AggKind]regEntry{}

// Register adds an aggregate kind to the catalog. The factory receives
// the resolved level count (never 0). Registering a kind twice panics;
// call from init functions only.
func Register(kind AggKind, name string, factory func(levels int) AggState) {
	if kind == 0 {
		panic("sqlagg: cannot register AggKind 0")
	}
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("sqlagg: duplicate registration of %s", name))
	}
	registry[kind] = regEntry{name: name, factory: factory}
}

func init() {
	Register(AggSum, "SUM", func(levels int) AggState { return newSumState(levels) })
	Register(AggCount, "COUNT", func(int) AggState { return new(countState) })
	Register(AggAvg, "AVG", func(levels int) AggState { return &avgState{a: NewAvg(levels)} })
	Register(AggVarPop, "VAR_POP", func(levels int) AggState { return newVarState(levels, AggVarPop) })
	Register(AggVarSamp, "VAR_SAMP", func(levels int) AggState { return newVarState(levels, AggVarSamp) })
	Register(AggStddevPop, "STDDEV_POP", func(levels int) AggState { return newVarState(levels, AggStddevPop) })
	Register(AggStddevSamp, "STDDEV_SAMP", func(levels int) AggState { return newVarState(levels, AggStddevSamp) })
	Register(AggMin, "MIN", func(int) AggState { return &minmaxState{isMax: false} })
	Register(AggMax, "MAX", func(int) AggState { return &minmaxState{isMax: true} })
}

// ResolvedLevels returns the effective level count (Levels, or
// core.DefaultLevels when 0).
func (s AggSpec) ResolvedLevels() int {
	if s.Levels == 0 {
		return core.DefaultLevels
	}
	return s.Levels
}

// Validate checks the spec against the catalog and wire limits.
func (s AggSpec) Validate() error {
	if _, ok := registry[s.Kind]; !ok {
		return fmt.Errorf("%w: unregistered kind %d", ErrBadSpec, byte(s.Kind))
	}
	if l := s.ResolvedLevels(); l < 1 || l > core.MaxLevels {
		return fmt.Errorf("%w: levels %d out of range [1, %d]", ErrBadSpec, l, core.MaxLevels)
	}
	if s.Col < 0 || s.Col > maxSpecCol {
		return fmt.Errorf("%w: column %d out of range [0, %d]", ErrBadSpec, s.Col, maxSpecCol)
	}
	return nil
}

// New returns an empty state for the spec.
func (s AggSpec) New() (AggState, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return registry[s.Kind].factory(s.ResolvedLevels()), nil
}

// StateSize returns the encoded size of the spec's state — the pure
// per-spec component of the wire tuple size.
func (s AggSpec) StateSize() (int, error) {
	st, err := s.New()
	if err != nil {
		return 0, err
	}
	return st.EncodedSize(), nil
}

// NewStates instantiates one empty state per spec, in spec order.
func NewStates(specs []AggSpec) ([]AggState, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: empty spec list", ErrBadSpec)
	}
	if len(specs) > maxSpecs {
		return nil, fmt.Errorf("%w: %d specs exceeds limit %d", ErrBadSpec, len(specs), maxSpecs)
	}
	states := make([]AggState, len(specs))
	for i, sp := range specs {
		st, err := sp.New()
		if err != nil {
			return nil, err
		}
		states[i] = st
	}
	return states, nil
}

// TupleSize returns the total encoded size of one spec-ordered tuple of
// states — the fixed per-key payload width of the distributed shuffle.
func TupleSize(specs []AggSpec) (int, error) {
	states, err := NewStates(specs)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, st := range states {
		total += st.EncodedSize()
	}
	return total, nil
}

// Spec list wire format: [2B count LE] then per spec
// [1B kind][1B levels][2B col LE]. Levels are encoded resolved, so a
// spec written with Levels 0 and one written with the explicit default
// produce identical bytes (and identical handshake digests).
const specWireSize = 4

// EncodeSpecs appends the canonical wire form of the spec list to dst.
func EncodeSpecs(dst []byte, specs []AggSpec) ([]byte, error) {
	if len(specs) > maxSpecs {
		return dst, fmt.Errorf("%w: %d specs exceeds limit %d", ErrBadSpec, len(specs), maxSpecs)
	}
	var b [specWireSize]byte
	binary.LittleEndian.PutUint16(b[:2], uint16(len(specs)))
	dst = append(dst, b[0], b[1])
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			return dst, err
		}
		b[0] = byte(sp.Kind)
		b[1] = byte(sp.ResolvedLevels())
		binary.LittleEndian.PutUint16(b[2:], uint16(sp.Col))
		dst = append(dst, b[:]...)
	}
	return dst, nil
}

// DecodeSpecs parses a spec list encoded by EncodeSpecs. The blob must
// be exactly consumed; malformed bytes are errors, never panics.
func DecodeSpecs(data []byte) ([]AggSpec, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: truncated spec list", ErrBadSpec)
	}
	count := int(binary.LittleEndian.Uint16(data))
	if count == 0 || count > maxSpecs {
		return nil, fmt.Errorf("%w: spec count %d", ErrBadSpec, count)
	}
	if len(data) != 2+count*specWireSize {
		return nil, fmt.Errorf("%w: spec list length %d for %d specs", ErrBadSpec, len(data), count)
	}
	specs := make([]AggSpec, count)
	for i := range specs {
		rec := data[2+i*specWireSize:]
		if rec[1] == 0 {
			// The encoder always writes resolved levels; a 0 byte is
			// non-canonical and would break digest equality.
			return nil, fmt.Errorf("%w: unresolved level count on the wire", ErrBadSpec)
		}
		specs[i] = AggSpec{
			Kind:   AggKind(rec[0]),
			Levels: int(rec[1]),
			Col:    int(binary.LittleEndian.Uint16(rec[2:])),
		}
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// DecodeSpecsPrefix parses a spec list from the front of data,
// returning the specs plus the number of bytes the list occupied —
// for callers embedding a spec list inside a larger payload (the
// cluster runtime's job specs do).
func DecodeSpecsPrefix(data []byte) ([]AggSpec, int, error) {
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("%w: truncated spec list", ErrBadSpec)
	}
	count := int(binary.LittleEndian.Uint16(data))
	if count == 0 || count > maxSpecs {
		return nil, 0, fmt.Errorf("%w: spec count %d", ErrBadSpec, count)
	}
	n := 2 + count*specWireSize
	if len(data) < n {
		return nil, 0, fmt.Errorf("%w: spec list carries %d of %d bytes for %d specs", ErrBadSpec, len(data), n, count)
	}
	specs, err := DecodeSpecs(data[:n])
	return specs, n, err
}

// ---------------------------------------------------------------------
// Canonical binary encodings for the composite sqlagg aggregates. The
// encodings embed rsum state encodings (self-describing via their
// header) followed by the exact row count, so they are byte-compatible
// with the in-memory merge semantics: marshal → merge bytes equals
// merge in memory → marshal.

const countSize = 8

func appendCount(dst []byte, n int64) []byte {
	var b [countSize]byte
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	return append(dst, b[:]...)
}

func decodeCount(data []byte) (int64, error) {
	if len(data) != countSize {
		return 0, ErrBadState
	}
	n := int64(binary.LittleEndian.Uint64(data))
	if n < 0 {
		return 0, fmt.Errorf("%w: negative row count", ErrBadState)
	}
	return n, nil
}

// EncodedSize returns the exact byte length of the Avg encoding:
// the summation state followed by the 8-byte row count.
func (a *Avg) EncodedSize() int { return a.sum.State().EncodedSize() + countSize }

// AppendBinary appends the canonical Avg encoding to dst; with enough
// capacity it does not allocate.
func (a *Avg) AppendBinary(dst []byte) ([]byte, error) {
	dst, err := a.sum.State().AppendBinary(dst)
	if err != nil {
		return dst, err
	}
	return appendCount(dst, a.n), nil
}

// UnmarshalBinary decodes an Avg encoding, rejecting malformed bytes.
func (a *Avg) UnmarshalBinary(data []byte) error {
	stLen, err := rsum.EncodedLen64(data)
	if err != nil {
		return err
	}
	if len(data) != stLen+countSize {
		return ErrBadState
	}
	var t Avg
	if err := t.sum.State().UnmarshalBinary(data[:stLen]); err != nil {
		return err
	}
	n, err := decodeCount(data[stLen:])
	if err != nil {
		return err
	}
	t.n = n
	*a = t
	return nil
}

// MergeBinary decodes an Avg encoding and merges it into a, reporting
// level mismatches as errors (the encoding crosses a trust boundary).
func (a *Avg) MergeBinary(data []byte) error {
	var o Avg
	if err := o.UnmarshalBinary(data); err != nil {
		return err
	}
	if o.sum.Levels() != a.sum.Levels() {
		return fmt.Errorf("%w: AVG levels %d vs %d", ErrMergeMismatch, o.sum.Levels(), a.sum.Levels())
	}
	a.MergeFrom(&o)
	return nil
}

// EncodedSize returns the exact byte length of the Variance encoding:
// the Σx and Σx² states followed by the 8-byte row count.
func (v *Variance) EncodedSize() int {
	return v.sum.State().EncodedSize() + v.sumSq.State().EncodedSize() + countSize
}

// AppendBinary appends the canonical Variance encoding to dst; with
// enough capacity it does not allocate.
func (v *Variance) AppendBinary(dst []byte) ([]byte, error) {
	dst, err := v.sum.State().AppendBinary(dst)
	if err != nil {
		return dst, err
	}
	dst, err = v.sumSq.State().AppendBinary(dst)
	if err != nil {
		return dst, err
	}
	return appendCount(dst, v.n), nil
}

// UnmarshalBinary decodes a Variance encoding, rejecting malformed
// bytes (including Σx/Σx² states with mismatched level counts).
func (v *Variance) UnmarshalBinary(data []byte) error {
	sumLen, err := rsum.EncodedLen64(data)
	if err != nil {
		return err
	}
	if len(data) < sumLen {
		return ErrBadState
	}
	sqLen, err := rsum.EncodedLen64(data[sumLen:])
	if err != nil {
		return err
	}
	if sqLen != sumLen || len(data) != sumLen+sqLen+countSize {
		return ErrBadState
	}
	var t Variance
	if err := t.sum.State().UnmarshalBinary(data[:sumLen]); err != nil {
		return err
	}
	if err := t.sumSq.State().UnmarshalBinary(data[sumLen : sumLen+sqLen]); err != nil {
		return err
	}
	n, err := decodeCount(data[sumLen+sqLen:])
	if err != nil {
		return err
	}
	t.n = n
	*v = t
	return nil
}

// MergeBinary decodes a Variance encoding and merges it into v,
// reporting level mismatches as errors.
func (v *Variance) MergeBinary(data []byte) error {
	var o Variance
	if err := o.UnmarshalBinary(data); err != nil {
		return err
	}
	if o.sum.Levels() != v.sum.Levels() {
		return fmt.Errorf("%w: VARIANCE levels %d vs %d", ErrMergeMismatch, o.sum.Levels(), v.sum.Levels())
	}
	v.MergeFrom(&o)
	return nil
}

// ---------------------------------------------------------------------
// AggState implementations.

// sumState is the SUM aggregate: a bare reproducible summation state.
// Its wire form is exactly the rsum.State64 canonical encoding, so a
// single-SUM spec list reproduces the PR 3 shuffle pair bytes.
type sumState struct {
	st rsum.State64
}

func newSumState(levels int) *sumState {
	return &sumState{st: rsum.NewState64(levels)}
}

func (s *sumState) Add(x float64) { s.st.AddEager(x) }

func (s *sumState) MergeFrom(o AggState) error {
	t, ok := o.(*sumState)
	if !ok {
		return fmt.Errorf("%w: SUM vs %T", ErrMergeMismatch, o)
	}
	if t.st.Levels() != s.st.Levels() {
		return fmt.Errorf("%w: SUM levels %d vs %d", ErrMergeMismatch, t.st.Levels(), s.st.Levels())
	}
	s.st.Merge(&t.st)
	return nil
}

func (s *sumState) MergeBinary(data []byte) error           { return s.st.MergeBinary(data) }
func (s *sumState) AppendBinary(dst []byte) ([]byte, error) { return s.st.AppendBinary(dst) }
func (s *sumState) UnmarshalBinary(data []byte) error       { return s.st.UnmarshalBinary(data) }
func (s *sumState) EncodedSize() int                        { return s.st.EncodedSize() }
func (s *sumState) Value() float64                          { return s.st.Value() }
func (s *sumState) Reset()                                  { s.st.Reset(s.st.Levels()) }

// countState is the COUNT aggregate: an exact row counter. Counts stay
// below 2⁵³, so Value() is exact as a float64.
type countState struct {
	n int64
}

func (c *countState) Add(float64) { c.n++ }

func (c *countState) MergeFrom(o AggState) error {
	t, ok := o.(*countState)
	if !ok {
		return fmt.Errorf("%w: COUNT vs %T", ErrMergeMismatch, o)
	}
	c.n += t.n
	return nil
}

func (c *countState) MergeBinary(data []byte) error {
	n, err := decodeCount(data)
	if err != nil {
		return err
	}
	c.n += n
	return nil
}

func (c *countState) AppendBinary(dst []byte) ([]byte, error) {
	return appendCount(dst, c.n), nil
}

func (c *countState) UnmarshalBinary(data []byte) error {
	n, err := decodeCount(data)
	if err != nil {
		return err
	}
	c.n = n
	return nil
}

func (c *countState) EncodedSize() int { return countSize }
func (c *countState) Value() float64   { return float64(c.n) }
func (c *countState) Reset()           { c.n = 0 }

// avgState adapts Avg to the AggState interface.
type avgState struct {
	a Avg
}

func (s *avgState) Add(x float64) { s.a.Add(x) }

func (s *avgState) MergeFrom(o AggState) error {
	t, ok := o.(*avgState)
	if !ok {
		return fmt.Errorf("%w: AVG vs %T", ErrMergeMismatch, o)
	}
	if t.a.sum.Levels() != s.a.sum.Levels() {
		return fmt.Errorf("%w: AVG levels %d vs %d", ErrMergeMismatch, t.a.sum.Levels(), s.a.sum.Levels())
	}
	s.a.MergeFrom(&t.a)
	return nil
}

func (s *avgState) MergeBinary(data []byte) error           { return s.a.MergeBinary(data) }
func (s *avgState) AppendBinary(dst []byte) ([]byte, error) { return s.a.AppendBinary(dst) }
func (s *avgState) UnmarshalBinary(data []byte) error       { return s.a.UnmarshalBinary(data) }
func (s *avgState) EncodedSize() int                        { return s.a.EncodedSize() }
func (s *avgState) Value() float64                          { return s.a.Value() }

func (s *avgState) Reset() { s.a = NewAvg(s.a.sum.Levels()) }

// varState adapts Variance to the AggState interface; kind selects the
// finalizer (VAR_POP/VAR_SAMP/STDDEV_POP/STDDEV_SAMP).
type varState struct {
	v    Variance
	kind AggKind
}

func newVarState(levels int, kind AggKind) *varState {
	return &varState{v: NewVariance(levels), kind: kind}
}

func (s *varState) Add(x float64) { s.v.Add(x) }

func (s *varState) MergeFrom(o AggState) error {
	t, ok := o.(*varState)
	if !ok || t.kind != s.kind {
		return fmt.Errorf("%w: %s vs %T", ErrMergeMismatch, s.kind, o)
	}
	if t.v.sum.Levels() != s.v.sum.Levels() {
		return fmt.Errorf("%w: %s levels %d vs %d", ErrMergeMismatch, s.kind, t.v.sum.Levels(), s.v.sum.Levels())
	}
	s.v.MergeFrom(&t.v)
	return nil
}

func (s *varState) MergeBinary(data []byte) error           { return s.v.MergeBinary(data) }
func (s *varState) AppendBinary(dst []byte) ([]byte, error) { return s.v.AppendBinary(dst) }
func (s *varState) UnmarshalBinary(data []byte) error       { return s.v.UnmarshalBinary(data) }
func (s *varState) EncodedSize() int                        { return s.v.EncodedSize() }

func (s *varState) Value() float64 {
	switch s.kind {
	case AggVarPop:
		return s.v.VarPop()
	case AggVarSamp:
		return s.v.VarSamp()
	case AggStddevPop:
		return s.v.StddevPop()
	default:
		return s.v.StddevSamp()
	}
}

func (s *varState) Reset() { s.v = NewVariance(s.v.sum.Levels()) }

// minmaxState is the MIN/MAX aggregate. float64 min/max is associative
// and commutative (with NaN absorbing and −0 < +0 ties resolved by
// math.Min/math.Max), so no summation state is needed. NaN inputs are
// canonicalized so the encoding stays a function of the multiset.
type minmaxState struct {
	seen  bool
	cur   float64
	isMax bool
}

// canonicalNaN is the single NaN bit pattern allowed in encodings.
var canonicalNaN = math.Float64bits(math.NaN())

func (m *minmaxState) Add(x float64) {
	if math.IsNaN(x) {
		x = math.Float64frombits(canonicalNaN)
	}
	if !m.seen {
		m.seen, m.cur = true, x
		return
	}
	if m.isMax {
		m.cur = math.Max(m.cur, x)
	} else {
		m.cur = math.Min(m.cur, x)
	}
}

func (m *minmaxState) MergeFrom(o AggState) error {
	t, ok := o.(*minmaxState)
	if !ok || t.isMax != m.isMax {
		return fmt.Errorf("%w: MIN/MAX vs %T", ErrMergeMismatch, o)
	}
	if t.seen {
		m.Add(t.cur)
	}
	return nil
}

// minmaxSize is 1 flag byte plus the 8-byte value bits.
const minmaxSize = 1 + 8

func (m *minmaxState) AppendBinary(dst []byte) ([]byte, error) {
	var b [minmaxSize]byte
	if m.seen {
		b[0] = 1
		binary.LittleEndian.PutUint64(b[1:], math.Float64bits(m.cur))
	}
	return append(dst, b[:]...), nil
}

func (m *minmaxState) decode(data []byte) (seen bool, cur float64, err error) {
	if len(data) != minmaxSize || data[0] > 1 {
		return false, 0, ErrBadState
	}
	bits := binary.LittleEndian.Uint64(data[1:])
	if data[0] == 0 {
		if bits != 0 {
			return false, 0, fmt.Errorf("%w: empty MIN/MAX with nonzero value", ErrBadState)
		}
		return false, 0, nil
	}
	v := math.Float64frombits(bits)
	if math.IsNaN(v) && bits != canonicalNaN {
		return false, 0, fmt.Errorf("%w: non-canonical NaN in MIN/MAX", ErrBadState)
	}
	return true, v, nil
}

func (m *minmaxState) MergeBinary(data []byte) error {
	seen, cur, err := m.decode(data)
	if err != nil {
		return err
	}
	if seen {
		m.Add(cur)
	}
	return nil
}

func (m *minmaxState) UnmarshalBinary(data []byte) error {
	seen, cur, err := m.decode(data)
	if err != nil {
		return err
	}
	m.seen, m.cur = seen, cur
	return nil
}

func (m *minmaxState) EncodedSize() int { return minmaxSize }

// Value returns the extremum, or NaN for an empty input (SQL NULL).
func (m *minmaxState) Value() float64 {
	if !m.seen {
		return math.NaN()
	}
	return m.cur
}

func (m *minmaxState) Reset() { m.seen, m.cur = false, 0 }
