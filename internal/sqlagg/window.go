package sqlagg

import "repro/internal/core"

// Window aggregates, per the paper's footnote 4: "window clauses
// without sliding frame can be executed as aggregations with GroupBy"
// — made reproducible here with repro accumulators — and "window
// clauses with ORDER BY clause have a definite order and are therefore
// intrinsically reproducible".

// WindowTotals computes SUM(val) OVER (PARTITION BY key): every row
// receives its partition's total. The totals are reproducible sums, so
// the output is bit-identical for any permutation of the rows (each row
// keeps its own key, of course).
func WindowTotals(keys []uint32, vals []float64, levels int) []float64 {
	if len(keys) != len(vals) {
		panic("sqlagg: window keys and values must have equal length")
	}
	accs := make(map[uint32]*core.Sum64)
	for i, k := range keys {
		a := accs[k]
		if a == nil {
			s := core.NewSum64(levels)
			a = &s
			accs[k] = a
		}
		a.Add(vals[i])
	}
	out := make([]float64, len(keys))
	totals := make(map[uint32]float64, len(accs))
	for k, a := range accs {
		totals[k] = a.Value()
	}
	for i, k := range keys {
		out[i] = totals[k]
	}
	return out
}

// RunningSum computes SUM(val) OVER (ORDER BY <input order>): prefix
// sums in the given (already ordered) sequence. With a defined order,
// plain floating-point prefix sums are intrinsically reproducible; no
// reproducible accumulator is needed.
func RunningSum(vals []float64) []float64 {
	out := make([]float64, len(vals))
	acc := 0.0
	for i, v := range vals {
		acc += v
		out[i] = acc
	}
	return out
}

// RunningSumByKey computes SUM(val) OVER (PARTITION BY key ORDER BY
// <input order>): per-partition prefix sums.
func RunningSumByKey(keys []uint32, vals []float64) []float64 {
	if len(keys) != len(vals) {
		panic("sqlagg: window keys and values must have equal length")
	}
	out := make([]float64, len(vals))
	accs := make(map[uint32]float64)
	for i, k := range keys {
		accs[k] += vals[i]
		out[i] = accs[k]
	}
	return out
}
