package sqlagg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestAvg(t *testing.T) {
	a := NewAvg(2)
	for _, x := range []float64{1, 2, 3, 4} {
		a.Add(x)
	}
	if v := a.Value(); v != 2.5 {
		t.Errorf("AVG = %v", v)
	}
	if a.Count() != 4 {
		t.Errorf("COUNT = %d", a.Count())
	}
	empty := NewAvg(2)
	if !math.IsNaN(empty.Value()) {
		t.Error("AVG of empty should be NaN (SQL NULL)")
	}
}

func TestAvgMerge(t *testing.T) {
	xs := workload.Values64(1, 1000, workload.Exp1)
	whole := NewAvg(2)
	for _, x := range xs {
		whole.Add(x)
	}
	a, b := NewAvg(2), NewAvg(2)
	for i, x := range xs {
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.MergeFrom(&b)
	if math.Float64bits(a.Value()) != math.Float64bits(whole.Value()) {
		t.Error("merged AVG differs from sequential")
	}
}

func TestVarianceKnownValues(t *testing.T) {
	v := NewVariance(3)
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		v.Add(x)
	}
	if got := v.VarPop(); math.Abs(got-4) > 1e-12 {
		t.Errorf("VAR_POP = %v, want 4", got)
	}
	if got := v.StddevPop(); math.Abs(got-2) > 1e-12 {
		t.Errorf("STDDEV_POP = %v, want 2", got)
	}
	if got := v.VarSamp(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("VAR_SAMP = %v, want 32/7", got)
	}
	one := NewVariance(2)
	one.Add(5)
	if !math.IsNaN(one.VarSamp()) {
		t.Error("VAR_SAMP of one row should be NaN")
	}
	if one.VarPop() != 0 {
		t.Error("VAR_POP of one row should be 0")
	}
}

func TestVariancePermutationStable(t *testing.T) {
	xs := workload.Values64(3, 2000, workload.MixedMag)
	ref := NewVariance(2)
	for _, x := range xs {
		ref.Add(x)
	}
	want := math.Float64bits(ref.VarPop())
	for seed := uint64(10); seed < 14; seed++ {
		p := append([]float64(nil), xs...)
		workload.Shuffle(seed, p)
		v := NewVariance(2)
		for _, x := range p {
			v.Add(x)
		}
		if math.Float64bits(v.VarPop()) != want {
			t.Fatalf("VAR_POP changed under permutation %d", seed)
		}
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		xs := workload.Values64(seed, 200, workload.MixedMag)
		v := NewVariance(2)
		for _, x := range xs {
			v.Add(x)
		}
		return v.VarPop() >= 0 && v.VarSamp() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVarianceMergeMatches(t *testing.T) {
	f := func(seed uint64, cut uint8) bool {
		xs := workload.Values64(seed, 300, workload.Exp1)
		k := int(cut) % len(xs)
		whole := NewVariance(2)
		for _, x := range xs {
			whole.Add(x)
		}
		a, b := NewVariance(2), NewVariance(2)
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.MergeFrom(&b)
		return math.Float64bits(a.VarSamp()) == math.Float64bits(whole.VarSamp())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCovarianceAndCorr(t *testing.T) {
	c := NewCovariance(2)
	// Perfectly correlated: y = 2x + 1.
	for _, x := range []float64{1, 2, 3, 4, 5} {
		c.Add(x, 2*x+1)
	}
	if got := c.Corr(); math.Abs(got-1) > 1e-9 {
		t.Errorf("CORR = %v, want 1", got)
	}
	if got := c.RegrSlope(); math.Abs(got-2) > 1e-9 {
		t.Errorf("REGR_SLOPE = %v, want 2", got)
	}
	if got := c.RegrIntercept(); math.Abs(got-1) > 1e-9 {
		t.Errorf("REGR_INTERCEPT = %v, want 1", got)
	}
	// COVAR_POP of x with x equals VAR_POP of x.
	v := NewVariance(2)
	c2 := NewCovariance(2)
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		v.Add(x)
		c2.Add(x, x)
	}
	if math.Abs(c2.CovarPop()-v.VarPop()) > 1e-9 {
		t.Errorf("COVAR_POP(x,x) = %v, VAR_POP = %v", c2.CovarPop(), v.VarPop())
	}
	empty := NewCovariance(2)
	if !math.IsNaN(empty.CovarPop()) || !math.IsNaN(empty.Corr()) {
		t.Error("empty covariance should be NaN")
	}
	constant := NewCovariance(2)
	constant.Add(1, 5)
	constant.Add(1, 7)
	if !math.IsNaN(constant.Corr()) {
		t.Error("CORR with zero x-variance should be NaN")
	}
	if !math.IsNaN(constant.RegrSlope()) {
		t.Error("REGR_SLOPE with zero x-variance should be NaN")
	}
}

func TestCovarianceMergeStable(t *testing.T) {
	xs := workload.Values64(5, 500, workload.Uniform12)
	ys := workload.Values64(6, 500, workload.Exp1)
	whole := NewCovariance(2)
	for i := range xs {
		whole.Add(xs[i], ys[i])
	}
	a, b := NewCovariance(2), NewCovariance(2)
	for i := range xs {
		if i < 200 {
			a.Add(xs[i], ys[i])
		} else {
			b.Add(xs[i], ys[i])
		}
	}
	a.MergeFrom(&b)
	if math.Float64bits(a.Corr()) != math.Float64bits(whole.Corr()) {
		t.Error("merged CORR differs")
	}
	if a.Count() != whole.Count() {
		t.Error("merged count differs")
	}
}

func TestDotProduct(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := DotProduct(x, y, 2); got != 32 {
		t.Errorf("DotProduct = %v", got)
	}
	if got := Norm2([]float64{3, 4}, 2); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	DotProduct([]float64{1}, []float64{1, 2}, 2)
}

func TestDotProductPermutationStable(t *testing.T) {
	xs := workload.Values64(7, 3000, workload.MixedMag)
	ys := workload.Values64(8, 3000, workload.MixedMag)
	want := math.Float64bits(DotProduct(xs, ys, 2))
	px := append([]float64(nil), xs...)
	py := append([]float64(nil), ys...)
	workload.ShufflePairs(9, px, py)
	if math.Float64bits(DotProduct(px, py, 2)) != want {
		t.Error("dot product changed under permutation of pairs")
	}
}

func TestDotProductExactBeatsPlain(t *testing.T) {
	// Ill-conditioned dot product: large terms that cancel, leaving a
	// tiny residual carried entirely by the product tails.
	n := 2000
	x := make([]float64, 2*n)
	y := make([]float64, 2*n)
	r := workload.NewRNG(21)
	for i := 0; i < n; i++ {
		a := 1 + r.Float64()
		b := 1e8 * (1 + r.Float64())
		x[2*i], y[2*i] = a, b
		x[2*i+1], y[2*i+1] = -a, b // exact cancellation of the heads
	}
	// Exact result is 0; the error of each method is its |result|.
	plain := math.Abs(DotProduct(x, y, 3))
	exactDP := math.Abs(DotProductExact(x, y, 3))
	if exactDP > plain {
		t.Errorf("DotProductExact error %g worse than plain %g", exactDP, plain)
	}
	if exactDP != 0 {
		t.Errorf("DotProductExact = %g, want exactly 0 (tails cancel too)", exactDP)
	}
}

func TestDotProductExactPermutationStable(t *testing.T) {
	xs := workload.Values64(22, 2000, workload.MixedMag)
	ys := workload.Values64(23, 2000, workload.MixedMag)
	want := math.Float64bits(DotProductExact(xs, ys, 2))
	px := append([]float64(nil), xs...)
	py := append([]float64(nil), ys...)
	workload.ShufflePairs(24, px, py)
	if math.Float64bits(DotProductExact(px, py, 2)) != want {
		t.Error("exact dot product changed under permutation")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	DotProductExact([]float64{1}, []float64{1, 2}, 2)
}

func TestWindowTotals(t *testing.T) {
	keys := []uint32{1, 2, 1, 2, 3}
	vals := []float64{10, 20, 30, 40, 50}
	out := WindowTotals(keys, vals, 2)
	want := []float64{40, 60, 40, 60, 50}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("WindowTotals = %v, want %v", out, want)
		}
	}
	// Reproducible across row permutations (per-row totals follow keys).
	keys2 := []uint32{3, 2, 1, 2, 1}
	vals2 := []float64{50, 40, 30, 20, 10}
	out2 := WindowTotals(keys2, vals2, 2)
	if math.Float64bits(out2[2]) != math.Float64bits(out[0]) {
		t.Error("partition total changed under permutation")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	WindowTotals([]uint32{1}, []float64{1, 2}, 2)
}

func TestRunningSums(t *testing.T) {
	out := RunningSum([]float64{1, 2, 3})
	if out[0] != 1 || out[1] != 3 || out[2] != 6 {
		t.Errorf("RunningSum = %v", out)
	}
	pk := RunningSumByKey([]uint32{1, 2, 1, 2}, []float64{1, 10, 2, 20})
	want := []float64{1, 10, 3, 30}
	for i := range want {
		if pk[i] != want[i] {
			t.Fatalf("RunningSumByKey = %v", pk)
		}
	}
	if len(RunningSum(nil)) != 0 {
		t.Error("empty running sum")
	}
}
