package sqlagg

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// allSpecs returns one spec of every registered built-in kind.
func allSpecs(levels int) []AggSpec {
	return []AggSpec{
		{Kind: AggSum, Levels: levels},
		{Kind: AggCount, Levels: levels},
		{Kind: AggAvg, Levels: levels},
		{Kind: AggVarPop, Levels: levels},
		{Kind: AggVarSamp, Levels: levels},
		{Kind: AggStddevPop, Levels: levels},
		{Kind: AggStddevSamp, Levels: levels},
		{Kind: AggMin, Levels: levels},
		{Kind: AggMax, Levels: levels},
	}
}

func TestAggSpecValidate(t *testing.T) {
	good := AggSpec{Kind: AggSum, Levels: 3, Col: 7}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []AggSpec{
		{Kind: 0},
		{Kind: 99},
		{Kind: AggSum, Levels: -1},
		{Kind: AggSum, Levels: core.MaxLevels + 1},
		{Kind: AggSum, Col: -1},
		{Kind: AggSum, Col: maxSpecCol + 1},
	} {
		if err := bad.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Validate(%+v) = %v, want ErrBadSpec", bad, err)
		}
	}
	if (AggSpec{Kind: AggAvg}).ResolvedLevels() != core.DefaultLevels {
		t.Error("Levels 0 should resolve to the default")
	}
}

func TestAggKindString(t *testing.T) {
	for k, want := range map[AggKind]string{
		AggSum: "SUM", AggCount: "COUNT", AggAvg: "AVG",
		AggVarPop: "VAR_POP", AggStddevSamp: "STDDEV_SAMP",
		AggMin: "MIN", AggMax: "MAX",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", byte(k), k, want)
		}
	}
	if AggKind(200).String() != "AggKind(200)" {
		t.Errorf("unregistered kind String() = %q", AggKind(200).String())
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	for _, kind := range []AggKind{0, AggSum} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(kind %d) should panic", byte(kind))
				}
			}()
			Register(kind, "DUP", func(int) AggState { return new(countState) })
		}()
	}
}

func TestSpecsWireRoundTrip(t *testing.T) {
	specs := []AggSpec{
		{Kind: AggSum, Levels: 3, Col: 2},
		{Kind: AggCount},
		{Kind: AggAvg, Col: 65535},
	}
	blob, err := EncodeSpecs(nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpecs(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := []AggSpec{
		{Kind: AggSum, Levels: 3, Col: 2},
		{Kind: AggCount, Levels: core.DefaultLevels},
		{Kind: AggAvg, Levels: core.DefaultLevels, Col: 65535},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d specs", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Implicit and explicit default levels must encode identically:
	// the proc handshake digests this blob.
	explicit, err := EncodeSpecs(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, explicit) {
		t.Error("Levels 0 and explicit default encode differently")
	}
}

func TestDecodeSpecsRejectsMalformed(t *testing.T) {
	good, _ := EncodeSpecs(nil, []AggSpec{{Kind: AggSum}})
	for name, blob := range map[string][]byte{
		"empty":      {},
		"short":      {1},
		"zero count": {0, 0},
		"truncated":  good[:len(good)-1],
		"trailing":   append(append([]byte{}, good...), 0),
		"bad kind":   {1, 0, 99, 2, 0, 0},
		"bad levels": {1, 0, byte(AggSum), 7, 0, 0},
		"huge count": {255, 255},
	} {
		if _, err := DecodeSpecs(blob); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: DecodeSpecs = %v, want ErrBadSpec", name, err)
		}
	}
}

// TestAggStateRoundTrip checks, for every kind: encode → decode → Value
// is bit-identical, EncodedSize matches the appended length and is
// data-independent, and AppendBinary is append-only.
func TestAggStateRoundTrip(t *testing.T) {
	xs := workload.Values64(3, 500, workload.MixedMag)
	for _, spec := range allSpecs(3) {
		st, err := spec.New()
		if err != nil {
			t.Fatal(err)
		}
		emptySize := st.EncodedSize()
		for _, x := range xs {
			st.Add(x)
		}
		if st.EncodedSize() != emptySize {
			t.Errorf("%s: EncodedSize depends on data", spec.Kind)
		}
		prefix := []byte{0xAA, 0xBB}
		enc, err := st.AppendBinary(append([]byte{}, prefix...))
		if err != nil {
			t.Fatalf("%s: AppendBinary: %v", spec.Kind, err)
		}
		if !bytes.Equal(enc[:2], prefix) {
			t.Fatalf("%s: AppendBinary clobbered the prefix", spec.Kind)
		}
		body := enc[2:]
		if len(body) != st.EncodedSize() {
			t.Fatalf("%s: encoded %d bytes, EncodedSize %d", spec.Kind, len(body), st.EncodedSize())
		}
		back, _ := spec.New()
		if err := back.UnmarshalBinary(body); err != nil {
			t.Fatalf("%s: UnmarshalBinary: %v", spec.Kind, err)
		}
		if math.Float64bits(back.Value()) != math.Float64bits(st.Value()) {
			t.Errorf("%s: round-trip Value %v vs %v", spec.Kind, back.Value(), st.Value())
		}
		re, err := back.AppendBinary(nil)
		if err != nil || !bytes.Equal(re, body) {
			t.Errorf("%s: re-encoding differs (err=%v)", spec.Kind, err)
		}
	}
}

// TestAggStateSplitMerge checks the distributed contract: splitting the
// input, shipping encoded partials, and merging (both in memory and via
// MergeBinary) is bit-identical to sequential accumulation.
func TestAggStateSplitMerge(t *testing.T) {
	xs := workload.Values64(7, 2000, workload.MixedMag)
	for _, spec := range allSpecs(2) {
		whole, _ := spec.New()
		for _, x := range xs {
			whole.Add(x)
		}
		parts := make([]AggState, 4)
		for i := range parts {
			parts[i], _ = spec.New()
		}
		for i, x := range xs {
			parts[i%4].Add(x)
		}
		// In-memory merge tree.
		mem, _ := spec.New()
		for _, p := range parts {
			if err := mem.MergeFrom(p); err != nil {
				t.Fatalf("%s: MergeFrom: %v", spec.Kind, err)
			}
		}
		// Wire merge, reversed order (merge must be order-independent).
		wire, _ := spec.New()
		for i := len(parts) - 1; i >= 0; i-- {
			enc, err := parts[i].AppendBinary(nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := wire.MergeBinary(enc); err != nil {
				t.Fatalf("%s: MergeBinary: %v", spec.Kind, err)
			}
		}
		wb, sb, mb := math.Float64bits(whole.Value()), math.Float64bits(mem.Value()), math.Float64bits(wire.Value())
		if wb != sb || wb != mb {
			t.Errorf("%s: sequential %x, merged %x, wire %x", spec.Kind, wb, sb, mb)
		}
	}
}

func TestAggStateReset(t *testing.T) {
	for _, spec := range allSpecs(2) {
		st, _ := spec.New()
		st.Add(1)
		st.Add(2)
		st.Reset()
		fresh, _ := spec.New()
		a, _ := st.AppendBinary(nil)
		b, _ := fresh.AppendBinary(nil)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: Reset state encodes differently from fresh", spec.Kind)
		}
	}
}

func TestAggStateMergeMismatch(t *testing.T) {
	sum2, _ := AggSpec{Kind: AggSum, Levels: 2}.New()
	sum3, _ := AggSpec{Kind: AggSum, Levels: 3}.New()
	cnt, _ := AggSpec{Kind: AggCount}.New()
	mn, _ := AggSpec{Kind: AggMin}.New()
	mx, _ := AggSpec{Kind: AggMax}.New()
	vp, _ := AggSpec{Kind: AggVarPop}.New()
	vs, _ := AggSpec{Kind: AggVarSamp}.New()
	avg2, _ := AggSpec{Kind: AggAvg, Levels: 2}.New()
	avg3, _ := AggSpec{Kind: AggAvg, Levels: 3}.New()
	for name, pair := range map[string][2]AggState{
		"sum levels":  {sum2, sum3},
		"sum vs cnt":  {sum2, cnt},
		"cnt vs sum":  {cnt, sum2},
		"min vs max":  {mn, mx},
		"pop vs samp": {vp, vs},
		"avg levels":  {avg2, avg3},
		"avg vs var":  {avg2, vp},
	} {
		if err := pair[0].MergeFrom(pair[1]); !errors.Is(err, ErrMergeMismatch) {
			t.Errorf("%s: MergeFrom = %v, want ErrMergeMismatch", name, err)
		}
	}
	// Level mismatches must also fail across the wire.
	enc, _ := sum3.AppendBinary(nil)
	if err := sum2.MergeBinary(enc); err == nil {
		t.Error("SUM MergeBinary accepted mismatched levels")
	}
	encAvg, _ := avg3.AppendBinary(nil)
	if err := avg2.MergeBinary(encAvg); !errors.Is(err, ErrMergeMismatch) {
		t.Error("AVG MergeBinary accepted mismatched levels")
	}
	vp3, _ := AggSpec{Kind: AggVarPop, Levels: 3}.New()
	ev, _ := vp3.AppendBinary(nil)
	if err := vp.MergeBinary(ev); !errors.Is(err, ErrMergeMismatch) {
		t.Error("VAR MergeBinary accepted mismatched levels")
	}
}

func TestCountStateCountsRows(t *testing.T) {
	st, _ := AggSpec{Kind: AggCount}.New()
	for _, x := range []float64{math.NaN(), math.Inf(1), 0, -5} {
		st.Add(x)
	}
	if st.Value() != 4 {
		t.Errorf("COUNT = %v", st.Value())
	}
	if _, err := (AggSpec{Kind: AggCount}).StateSize(); err != nil {
		t.Fatal(err)
	}
	// Negative counts are rejected at the trust boundary.
	neg := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if err := st.UnmarshalBinary(neg); !errors.Is(err, ErrBadState) {
		t.Errorf("negative count decode = %v", err)
	}
}

func TestMinMaxSemantics(t *testing.T) {
	mn, _ := AggSpec{Kind: AggMin}.New()
	mx, _ := AggSpec{Kind: AggMax}.New()
	if !math.IsNaN(mn.Value()) || !math.IsNaN(mx.Value()) {
		t.Error("empty MIN/MAX should be NaN (SQL NULL)")
	}
	for _, x := range []float64{3, -7, 2} {
		mn.Add(x)
		mx.Add(x)
	}
	if mn.Value() != -7 || mx.Value() != 3 {
		t.Errorf("MIN=%v MAX=%v", mn.Value(), mx.Value())
	}
	// Signed-zero ties are deterministic: MIN picks −0, MAX picks +0.
	zmin, _ := AggSpec{Kind: AggMin}.New()
	zmax, _ := AggSpec{Kind: AggMax}.New()
	for _, x := range []float64{0, math.Copysign(0, -1)} {
		zmin.Add(x)
		zmax.Add(x)
	}
	if !math.Signbit(zmin.Value()) || math.Signbit(zmax.Value()) {
		t.Error("signed-zero tie not canonical")
	}
	// NaN inputs absorb, and any NaN payload encodes canonically.
	nanA, _ := AggSpec{Kind: AggMax}.New()
	nanB, _ := AggSpec{Kind: AggMax}.New()
	nanA.Add(math.NaN())
	nanA.Add(5)
	nanB.Add(math.Float64frombits(0x7FF0000000000042)) // a different NaN payload
	if !math.IsNaN(nanA.Value()) {
		t.Error("NaN did not absorb MAX")
	}
	ea, _ := nanA.AppendBinary(nil)
	eb, _ := nanB.AppendBinary(nil)
	if !bytes.Equal(ea, eb) {
		t.Error("NaN payloads encode non-canonically")
	}
}

func TestMinMaxDecodeRejectsMalformed(t *testing.T) {
	st, _ := AggSpec{Kind: AggMin}.New()
	nonCanonicalNaN := make([]byte, 9)
	nonCanonicalNaN[0] = 1
	for i := 1; i < 9; i++ {
		nonCanonicalNaN[i] = 0xFF
	}
	emptyNonzero := make([]byte, 9)
	emptyNonzero[3] = 1
	for name, blob := range map[string][]byte{
		"short":             {1, 0},
		"long":              make([]byte, 10),
		"bad flag":          append([]byte{2}, make([]byte, 8)...),
		"non-canonical NaN": nonCanonicalNaN,
		"empty nonzero":     emptyNonzero,
	} {
		if err := st.UnmarshalBinary(blob); !errors.Is(err, ErrBadState) {
			t.Errorf("%s: decode = %v, want ErrBadState", name, err)
		}
	}
}

// TestSumStateMatchesCoreSum pins the SUM state to the engine-side
// accumulator: the two stacks must produce bit-identical sums for the
// distributed Q1 equivalence to hold.
func TestSumStateMatchesCoreSum(t *testing.T) {
	xs := workload.Values64(11, 3000, workload.MixedMag)
	st, _ := AggSpec{Kind: AggSum, Levels: 2}.New()
	acc := core.NewSum64(2)
	for _, x := range xs {
		st.Add(x)
		acc.Add(x)
	}
	if math.Float64bits(st.Value()) != math.Float64bits(acc.Value()) {
		t.Fatalf("sumState %v vs core.Sum64 %v", st.Value(), acc.Value())
	}
}

func TestTupleSize(t *testing.T) {
	specs := []AggSpec{{Kind: AggSum, Levels: 2}, {Kind: AggCount}, {Kind: AggAvg, Levels: 2}}
	got, err := TupleSize(specs)
	if err != nil {
		t.Fatal(err)
	}
	// SUM: 20+2·16 = 52; COUNT: 8; AVG: 52+8 = 60.
	if want := 52 + 8 + 60; got != want {
		t.Errorf("TupleSize = %d, want %d", got, want)
	}
	if _, err := TupleSize(nil); !errors.Is(err, ErrBadSpec) {
		t.Error("TupleSize(nil) should fail")
	}
	if _, err := NewStates(make([]AggSpec, maxSpecs+1)); !errors.Is(err, ErrBadSpec) {
		t.Error("NewStates over limit should fail")
	}
}
