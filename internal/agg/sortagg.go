package agg

import "math"

// SORTAGGREGATION: the "deterministic order of operations" baseline of
// Sections II-C and VI-A. The input is brought into a canonical order —
// by key, and by value bit pattern within a key, so the order is
// deterministic for any input permutation — and then summed with plain
// floating-point addition. This makes conventional summation
// reproducible, at the cost the paper measures as ≥ 3–20× slower than
// the hash-based operators (and > 7× end to end in Table IV).

// row pairs a key with the raw bits of its value for radix sorting.
type row struct {
	key  uint32
	bits uint64
}

// SortAggregate64 aggregates by sorting ⟨key, value⟩ pairs into a
// canonical order and summing sequentially with float64 addition.
// The result is reproducible across input permutations.
func SortAggregate64(keys []uint32, vals []float64) []Entry[F64] {
	if len(keys) != len(vals) {
		panic("agg: keys and values must have equal length")
	}
	n := len(keys)
	if n == 0 {
		return nil
	}
	rows := make([]row, n)
	for i := range rows {
		rows[i] = row{key: keys[i], bits: orderedBits(vals[i])}
	}
	sortRows(rows)

	out := make([]Entry[F64], 0, 64)
	curKey := rows[0].key
	acc := 0.0
	for _, r := range rows {
		if r.key != curKey {
			out = append(out, Entry[F64]{Key: curKey, Agg: F64(acc)})
			curKey, acc = r.key, 0
		}
		acc += fromOrderedBits(r.bits)
	}
	out = append(out, Entry[F64]{Key: curKey, Agg: F64(acc)})
	return out
}

// orderedBits maps a float64 to a uint64 whose unsigned order matches
// the IEEE total order (sign-magnitude flip). Any fixed injective map
// would do for determinism; the order-preserving one also makes the
// per-group sum ascending in value, which is the numerically friendly
// order.
func orderedBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

func fromOrderedBits(b uint64) float64 {
	if b&(1<<63) != 0 {
		return math.Float64frombits(b &^ (1 << 63))
	}
	return math.Float64frombits(^b)
}

// sortRows sorts by (key, bits) using LSD radix sort: 8 passes over the
// value bits, then 4 passes over the key — 12 stable counting passes,
// the structure of the highly-tuned radix sorts the paper references
// (Balkesen; Polychroniou & Ross).
func sortRows(rows []row) {
	tmp := make([]row, len(rows))
	src, dst := rows, tmp
	for pass := 0; pass < 8; pass++ {
		shift := uint(pass * 8)
		countingPass(src, dst, func(r row) byte { return byte(r.bits >> shift) })
		src, dst = dst, src
	}
	for pass := 0; pass < 4; pass++ {
		shift := uint(pass * 8)
		countingPass(src, dst, func(r row) byte { return byte(r.key >> shift) })
		src, dst = dst, src
	}
	// 12 passes: src ends up back in rows.
	if &src[0] != &rows[0] {
		copy(rows, src)
	}
}

func countingPass(src, dst []row, b func(row) byte) {
	var counts [256]int
	for _, r := range src {
		counts[b(r)]++
	}
	pos := 0
	var starts [256]int
	for i, c := range counts {
		starts[i] = pos
		pos += c
	}
	for _, r := range src {
		i := b(r)
		dst[starts[i]] = r
		starts[i]++
	}
}
