package agg

import "math/bits"

// Tuning of buffer size and partitioning depth (Section V-C).

// CacheBytesPerThread is the cache budget the working-set model assumes
// per thread. The paper's machine has a 20 MiB LLC shared by 8 cores
// and observes the performance cliff when the modeled working set
// exceeds 1 MiB ≈ half the per-core share; we adopt the same budget.
const CacheBytesPerThread = 1 << 20

// MaxBufferSize is bszmax, the largest summation buffer used
// (the paper sweeps up to 2^10).
const MaxBufferSize = 1024

// BufferSize evaluates Eq. 4: the summation buffers of the groups of
// one partition should together fill the per-thread cache,
//
//	bsz = min{ ceil(|cache| / (ngroups/F · sizeof(ScalarT))), bszmax }.
//
// scalarBytes is sizeof(ScalarT) (8 for float64, 4 for float32); fanout
// is the total partitioning fan-out F = f^d (1 for d = 0). The result
// is rounded down to a power of two (buffers are allocated in cache-
// line-friendly sizes) and clamped to ≥ 1.
func BufferSize(ngroups, fanout, scalarBytes int) int {
	if ngroups < 1 {
		ngroups = 1
	}
	if fanout < 1 {
		fanout = 1
	}
	perPart := ngroups / fanout
	if perPart < 1 {
		perPart = 1
	}
	bsz := CacheBytesPerThread / (perPart * scalarBytes)
	if bsz > MaxBufferSize {
		bsz = MaxBufferSize
	}
	if bsz < 1 {
		return 1
	}
	// Round down to a power of two.
	return 1 << (bits.Len(uint(bsz)) - 1)
}

// DepthThresholds holds the group-count thresholds at which one more
// level of partitioning pays off, as determined by the micro-benchmarks
// of Section VI (Figures 7 and 9): Thresholds[i] is the minimum group
// count for depth i+1.
type DepthThresholds []int

// Depth returns the partitioning depth for a given number of groups.
func (t DepthThresholds) Depth(ngroups int) int {
	d := 0
	for _, th := range t {
		if ngroups >= th {
			d++
		}
	}
	return d
}

// Default depth thresholds per operator configuration, from the paper:
//
// The paper determines these offline per machine (Section V-C: "we
// simply determine the optimal number of levels offline"); the paper's
// own Haswell values were {2^16, 2^25} (built-ins), ≈{2^15, 2^22}
// (unbuffered repro), and {2^10, 2^18} (buffered repro). The defaults
// below were re-derived with `reprobench fig9` on the reference CI
// machine of this reproduction (single core, smaller caches), where
// radix partitioning is relatively more expensive and therefore pays
// off later; rerun fig9 to retune for your hardware.
var (
	// ThresholdsBuiltin: depth crossovers for built-in scalar types.
	ThresholdsBuiltin = DepthThresholds{1 << 18, 1 << 26}
	// ThresholdsReproUnbuffered: crossovers for unbuffered repro types.
	ThresholdsReproUnbuffered = DepthThresholds{1 << 17, 1 << 25}
	// ThresholdsReproBuffered: crossovers for buffered repro types
	// (larger cache footprint, but also a slower baseline to amortize
	// against).
	ThresholdsReproBuffered = DepthThresholds{1 << 17, 1 << 26}
)
