// Package agg implements the paper's aggregation operators:
// PARTITIONANDAGGREGATE (Algorithm 4) with and without summation
// buffers, plain HASHAGGREGATION, the SORTAGGREGATION baseline, and the
// tuning model for buffer size (Eq. 4) and partitioning depth
// (Section V-C). The operators are generic over the aggregate payload,
// so every data type of the evaluation — built-in floats, DECIMAL(p),
// repro<ScalarT,L>, and buffered repro — runs through identical code.
package agg

import (
	"repro/internal/core"
	"repro/internal/decimal"
)

// Scalar accumulators for the baseline data types. Each implements
// Add(V) and MergeFrom(*A), the two operations the operators need.

// F64 is the built-in double accumulator (non-reproducible baseline).
type F64 float64

// Add folds one value in.
func (f *F64) Add(v float64) { *f += F64(v) }

// MergeFrom combines per-thread aggregates.
func (f *F64) MergeFrom(o *F64) { *f += *o }

// Value returns the aggregate.
func (f *F64) Value() float64 { return float64(*f) }

// F32 is the built-in float accumulator (non-reproducible baseline).
type F32 float32

// Add folds one value in.
func (f *F32) Add(v float32) { *f += F32(v) }

// MergeFrom combines per-thread aggregates.
func (f *F32) MergeFrom(o *F32) { *f += *o }

// Value returns the aggregate.
func (f *F32) Value() float32 { return float32(*f) }

// U32 is the uint32 accumulator (the uint32_t reference of Figure 4).
// Addition wraps, which keeps it associative and reproducible.
type U32 uint32

// Add folds one value in.
func (u *U32) Add(v uint32) { *u += U32(v) }

// MergeFrom combines per-thread aggregates.
func (u *U32) MergeFrom(o *U32) { *u += *o }

// D9 is the DECIMAL(9) accumulator: a 32-bit integer with wrapping
// addition (reproducible; overflow is the application's concern, as in
// the paper's "typical" implementation).
type D9 decimal.Dec9

// Add folds one value in.
func (d *D9) Add(v int32) { *d += D9(v) }

// MergeFrom combines per-thread aggregates.
func (d *D9) MergeFrom(o *D9) { *d += *o }

// D18 is the DECIMAL(18) accumulator: a 64-bit integer.
type D18 decimal.Dec18

// Add folds one value in.
func (d *D18) Add(v int64) { *d += D18(v) }

// MergeFrom combines per-thread aggregates.
func (d *D18) MergeFrom(o *D18) { *d += *o }

// D38 is the DECIMAL(38) accumulator: a 128-bit integer fed by 64-bit
// values (the paper's __int128).
type D38 struct{ v decimal.Int128 }

// Add folds one value in.
func (d *D38) Add(v int64) { d.v = d.v.AddInt64(v) }

// MergeFrom combines per-thread aggregates.
func (d *D38) MergeFrom(o *D38) { d.v = d.v.Add(o.v) }

// Value returns the 128-bit aggregate.
func (d *D38) Value() decimal.Int128 { return d.v }

// Compile-time interface checks: every payload used by the experiments
// supports the operator contract.
var (
	_ interface {
		Add(float64)
		MergeFrom(*F64)
	} = (*F64)(nil)
	_ interface {
		Add(float32)
		MergeFrom(*F32)
	} = (*F32)(nil)
	_ interface {
		Add(uint32)
		MergeFrom(*U32)
	} = (*U32)(nil)
	_ interface {
		Add(int32)
		MergeFrom(*D9)
	} = (*D9)(nil)
	_ interface {
		Add(int64)
		MergeFrom(*D18)
	} = (*D18)(nil)
	_ interface {
		Add(int64)
		MergeFrom(*D38)
	} = (*D38)(nil)
	_ interface {
		Add(float64)
		MergeFrom(*core.Sum64)
	} = (*core.Sum64)(nil)
	_ interface {
		Add(float64)
		MergeFrom(*core.Buffered64)
	} = (*core.Buffered64)(nil)
	_ interface {
		Add(float32)
		MergeFrom(*core.Sum32)
	} = (*core.Sum32)(nil)
	_ interface {
		Add(float32)
		MergeFrom(*core.Buffered32)
	} = (*core.Buffered32)(nil)
)
