package agg

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestAdaptiveMatchesReference(t *testing.T) {
	keys := workload.Keys(31, 40000, 5000)
	vals := workload.Values64(32, 40000, workload.Exp1)
	ref := make(map[uint32]float64)
	for i, k := range keys {
		ref[k] += vals[i]
	}
	// Force the adaptive switch with a small table budget.
	entries := AdaptiveAggregate[float64, core.Sum64](keys, vals,
		func() core.Sum64 { return core.NewSum64(2) },
		AdaptiveOptions{MaxTableGroups: 256})
	if len(entries) != len(ref) {
		t.Fatalf("groups = %d, want %d", len(entries), len(ref))
	}
	for i := range entries {
		e := &entries[i]
		if math.Abs(e.Agg.Value()-ref[e.Key]) > 1e-6 {
			t.Fatalf("group %d: %v vs %v", e.Key, e.Agg.Value(), ref[e.Key])
		}
	}
}

func TestAdaptiveNoSwitchPath(t *testing.T) {
	// Few groups: stays in the hash table, never partitions.
	keys := workload.Keys(33, 10000, 16)
	vals := workload.Values64(34, 10000, workload.Uniform12)
	entries := AdaptiveAggregate[float64, F64](keys, vals,
		func() F64 { return 0 }, AdaptiveOptions{})
	if len(entries) != 16 {
		t.Fatalf("groups = %d", len(entries))
	}
}

func TestAdaptiveReproducibleAcrossBudgets(t *testing.T) {
	// The switch point must not affect the bits.
	keys := workload.Keys(35, 30000, 3000)
	vals := workload.Values64(36, 30000, workload.MixedMag)
	collectBits := func(entries []Entry[core.Sum64]) map[uint32]uint64 {
		m := make(map[uint32]uint64, len(entries))
		for i := range entries {
			m[entries[i].Key] = math.Float64bits(entries[i].Agg.Value())
		}
		return m
	}
	newSum := func() core.Sum64 { return core.NewSum64(2) }
	ref := collectBits(AdaptiveAggregate[float64, core.Sum64](keys, vals, newSum,
		AdaptiveOptions{MaxTableGroups: 100}))
	for _, budget := range []int{500, 2999, 1 << 20} {
		got := collectBits(AdaptiveAggregate[float64, core.Sum64](keys, vals, newSum,
			AdaptiveOptions{MaxTableGroups: budget}))
		if len(got) != len(ref) {
			t.Fatalf("budget %d: group count differs", budget)
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("budget %d: group %d bits differ", budget, k)
			}
		}
	}
	// And vs the non-adaptive operator.
	got := collectBits(PartitionAndAggregate[float64, core.Sum64](keys, vals, newSum,
		Options{Depth: 1}))
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("adaptive differs from PartitionAndAggregate at group %d", k)
		}
	}
}

func TestAdaptiveEmptyAndEdge(t *testing.T) {
	if e := AdaptiveAggregate[float64, F64](nil, nil, func() F64 { return 0 }, AdaptiveOptions{}); e != nil {
		t.Error("empty input should return nil")
	}
	// Adversarial: all keys identical (threshold never crossed).
	keys := make([]uint32, 1000)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 1
	}
	e := AdaptiveAggregate[float64, F64](keys, vals, func() F64 { return 0 },
		AdaptiveOptions{MaxTableGroups: 4})
	if len(e) != 1 || float64(e[0].Agg) != 1000 {
		t.Errorf("single group: %+v", e)
	}
}

func TestSharedAggregateMatches(t *testing.T) {
	keys := workload.Keys(37, 30000, 2000)
	vals := workload.Values64(38, 30000, workload.Exp1)
	ref := make(map[uint32]float64)
	for i, k := range keys {
		ref[k] += vals[i]
	}
	for _, workers := range []int{1, 4, 9} {
		entries := SharedAggregate[float64, core.Sum64](keys, vals,
			func() core.Sum64 { return core.NewSum64(2) },
			Options{Workers: workers, GroupHint: 2000})
		if len(entries) != len(ref) {
			t.Fatalf("workers=%d: groups = %d want %d", workers, len(entries), len(ref))
		}
		for i := range entries {
			e := &entries[i]
			if math.Abs(e.Agg.Value()-ref[e.Key]) > 1e-6 {
				t.Fatalf("workers=%d group %d: %v vs %v", workers, e.Key, e.Agg.Value(), ref[e.Key])
			}
		}
	}
}

func TestSharedAggregateReproducibleAcrossWorkers(t *testing.T) {
	keys := workload.Keys(39, 20000, 777)
	vals := workload.Values64(40, 20000, workload.MixedMag)
	newSum := func() core.Sum64 { return core.NewSum64(2) }
	bits := func(entries []Entry[core.Sum64]) map[uint32]uint64 {
		m := make(map[uint32]uint64)
		for i := range entries {
			m[entries[i].Key] = math.Float64bits(entries[i].Agg.Value())
		}
		return m
	}
	ref := bits(SharedAggregate[float64, core.Sum64](keys, vals, newSum, Options{Workers: 1}))
	for _, w := range []int{2, 5, 8} {
		got := bits(SharedAggregate[float64, core.Sum64](keys, vals, newSum, Options{Workers: w}))
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("workers=%d: group %d bits differ", w, k)
			}
		}
	}
}
