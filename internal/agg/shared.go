package agg

import (
	"sync"

	"repro/internal/hashagg"
)

// SHAREDAGGREGATION — the alternative strategy of Cieslewicz & Ross
// ("Adaptive Aggregation on Chip Multiprocessors"), discussed in the
// paper's related work (Section VII): all threads aggregate into one
// shared table. The paper notes it can beat private tables when the
// result is larger than a private cache but smaller than the shared
// cache, in the absence of skew. This implementation stripes the table
// by key ranges, each stripe guarded by its own mutex, which keeps
// contention low for uniform keys.
//
// Reproducibility still holds with reproducible payloads: each group's
// accumulator absorbs the same multiset of values no matter which
// thread folds them in, and lock acquisition order cannot change the
// bits (merging/adding is order-independent).

// sharedStripes is the number of lock stripes.
const sharedStripes = 64

// SharedAggregate aggregates into a single striped shared table using
// the given number of workers.
func SharedAggregate[V any, A any, PA interface {
	*A
	hashagg.Adder[V]
	hashagg.Merger[A]
}](keys []uint32, vals []V, newA func() A, opt Options) []Entry[A] {
	opt = opt.withDefaults(len(keys))
	type stripe struct {
		mu sync.Mutex
		t  *hashagg.Table[A]
	}
	stripes := make([]stripe, sharedStripes)
	hint := opt.GroupHint/sharedStripes + 8
	for i := range stripes {
		stripes[i].t = hashagg.New[A](hint, opt.Hash, newA)
	}

	var wg sync.WaitGroup
	n := len(keys)
	w := opt.Workers
	chunk := (n + w - 1) / w
	for i := 0; i < w; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				k := keys[j]
				s := &stripes[k%sharedStripes]
				s.mu.Lock()
				PA(s.t.Upsert(k)).Add(vals[j])
				s.mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()

	var out []Entry[A]
	for i := range stripes {
		out = append(out, collect(stripes[i].t)...)
	}
	return out
}
