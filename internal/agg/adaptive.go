package agg

import (
	"repro/internal/hashagg"
)

// Adaptive aggregation — the mechanism of Section V-C (following Müller
// et al., "Cache-Efficient Aggregation: Hashing Is Sorting", which the
// paper cites as [26]): since the number of groups is generally unknown
// and hard to estimate, start aggregating into a bounded private hash
// table; if and when the observed group count crosses a threshold,
// switch to partitioning and recurse. The paper determines depths
// offline and calls the adaptive variant "only a matter of
// implementation time" — this is that implementation.
//
// Reproducibility is unaffected by adaptivity: with reproducible
// payloads, the switch point only changes *where* values are folded,
// never the final merged bits.

// AdaptiveOptions configures AdaptiveAggregate.
type AdaptiveOptions struct {
	// MaxTableGroups is the group-count threshold that triggers a
	// partitioning pass (default 1<<17, the tuned crossover of this
	// build; see DepthThresholds).
	MaxTableGroups int
	// Fanout is the per-pass radix fan-out (default 256).
	Fanout int
	// Workers bounds goroutines (default GOMAXPROCS).
	Workers int
	// Hash selects the table hash function.
	Hash hashagg.Hash
	// MaxDepth bounds recursion (default 4 — a fan-out of 256^4 covers
	// the full uint32 key space).
	MaxDepth int
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.MaxTableGroups <= 0 {
		o.MaxTableGroups = 1 << 17
	}
	if o.Fanout == 0 {
		o.Fanout = 256
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 4
	}
	return o
}

// AdaptiveAggregate aggregates without knowing the group count in
// advance. It processes the input into a hash table until the table
// exceeds MaxTableGroups distinct keys; then it abandons the sampling
// run, partitions the remaining (and already seen) input by the next
// key byte, and recurses per partition. The already-built table is
// merged into the result, so no work is wasted.
func AdaptiveAggregate[V any, A any, PA interface {
	*A
	hashagg.Adder[V]
	hashagg.Merger[A]
}](keys []uint32, vals []V, newA func() A, opt AdaptiveOptions) []Entry[A] {
	opt = opt.withDefaults()
	return adaptiveLevel[V, A, PA](keys, vals, newA, opt, 0)
}

func adaptiveLevel[V any, A any, PA interface {
	*A
	hashagg.Adder[V]
	hashagg.Merger[A]
}](keys []uint32, vals []V, newA func() A, opt AdaptiveOptions, level int) []Entry[A] {
	if len(keys) == 0 {
		return nil
	}
	// Phase 1: optimistic hash aggregation with a group budget.
	t := hashagg.New[A](min(opt.MaxTableGroups, 1024), opt.Hash, newA)
	i := 0
	for ; i < len(keys); i++ {
		PA(t.Upsert(keys[i])).Add(vals[i])
		if t.Len() > opt.MaxTableGroups {
			i++
			break
		}
	}
	if i == len(keys) || level >= opt.MaxDepth {
		// Fit in the table (or out of radix bytes): done at this level.
		return collect(t)
	}

	// Phase 2: threshold crossed. Partition the remaining input by the
	// key byte of this level and recurse; the partial table becomes one
	// more "partition" merged at the end (its groups overlap all
	// partitions, so it is merged group-wise).
	radixBits := uint(0)
	for f := opt.Fanout; f > 1; f >>= 1 {
		radixBits++
	}
	shift := uint(level) * radixBits

	type part struct {
		keys []uint32
		vals []V
	}
	parts := make([]part, opt.Fanout)
	mask := uint32(opt.Fanout - 1)
	for j := i; j < len(keys); j++ {
		p := (keys[j] >> shift) & mask
		parts[p].keys = append(parts[p].keys, keys[j])
		parts[p].vals = append(parts[p].vals, vals[j])
	}

	var out []Entry[A]
	for p := range parts {
		out = append(out, adaptiveLevel[V, A, PA](parts[p].keys, parts[p].vals, newA, opt, level+1)...)
	}
	// Merge the sampled prefix group-wise into the partitioned result.
	prefix := collect(t)
	if len(prefix) > 0 {
		merged := hashagg.New[A](len(out)+len(prefix), opt.Hash, newA)
		for i := range out {
			PA(merged.Upsert(out[i].Key)).MergeFrom(&out[i].Agg)
		}
		for i := range prefix {
			PA(merged.Upsert(prefix[i].Key)).MergeFrom(&prefix[i].Agg)
		}
		return collect(merged)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
