package agg

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/hashagg"
	"repro/internal/partition"
)

// Entry is one group of the aggregation result.
type Entry[A any] struct {
	Key uint32
	Agg A
}

// Options configures PartitionAndAggregate.
type Options struct {
	// Depth is the number of partitioning passes d; the effective
	// fan-out is Fanout^Depth. Depth 0 aggregates directly.
	Depth int
	// Fanout is the per-pass fan-out f (default 256; the paper's
	// "modern hardware runs partitioning efficiently only up to a
	// certain fan-out").
	Fanout int
	// Workers is the goroutine count (default GOMAXPROCS).
	Workers int
	// Hash selects the table hash function (default Identity).
	Hash hashagg.Hash
	// GroupHint pre-sizes hash tables (total expected groups; divided
	// by the fan-out for per-partition tables).
	GroupHint int
}

func (o Options) withDefaults(n int) Options {
	if o.Fanout == 0 {
		o.Fanout = 256
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > n && n > 0 {
		o.Workers = 1
	}
	if o.GroupHint <= 0 {
		o.GroupHint = 64
	}
	return o
}

// HashAggregate runs plain HASHAGGREGATION (single thread, no
// partitioning) — the operator of Figure 4.
func HashAggregate[V any, A any, PA interface {
	*A
	hashagg.Adder[V]
}](keys []uint32, vals []V, newA func() A, hint int, hash hashagg.Hash) []Entry[A] {
	t := hashagg.New[A](hint, hash, newA)
	hashagg.Aggregate[V, A, PA](t, keys, vals)
	return collect(t)
}

// PartitionAndAggregate is Algorithm 4: the input is radix-partitioned
// on the (identity) hash of the key with fan-out Fanout^Depth, every
// partition is aggregated into a private hash table, and per-thread
// results are merged without synchronization (partitions are disjoint
// in key space).
//
// With reproducible payloads (core.Sum64, core.Buffered64, …) the
// result is bit-identical for every permutation of the input, every
// Depth, and every worker count. With float payloads it is not — that
// contrast is the paper's motivation.
func PartitionAndAggregate[V any, A any, PA interface {
	*A
	hashagg.Adder[V]
	hashagg.Merger[A]
}](keys []uint32, vals []V, newA func() A, opt Options) []Entry[A] {
	opt = opt.withDefaults(len(keys))
	if opt.Depth == 0 {
		return aggregateUnpartitioned[V, A, PA](keys, vals, newA, opt)
	}

	parts := partition.Recursive(keys, vals, opt.Depth, opt.Fanout, opt.Workers)
	np := parts.NumPartitions()
	perPartHint := opt.GroupHint / np
	if perPartHint < 8 {
		perPartHint = 8
	}

	// Each worker aggregates a contiguous range of partitions into a
	// private table per partition and emits that partition's entries.
	results := make([][]Entry[A], np)
	var wg sync.WaitGroup
	// Hand out contiguous ranges of partitions (not single partitions):
	// with 256^2 partitions, per-partition channel traffic would dominate.
	batch := np / (opt.Workers * 8)
	if batch < 1 {
		batch = 1
	}
	next := make(chan [2]int, np/batch+1)
	for p := 0; p < np; p += batch {
		hi := p + batch
		if hi > np {
			hi = np
		}
		next <- [2]int{p, hi}
	}
	close(next)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One table per worker, cleared (not reallocated) between
			// partitions: payloads implementing hashagg.Resettable — the
			// buffered reproducible accumulators in particular — keep
			// their buffers across partitions, as in the paper's
			// implementation.
			t := hashagg.New[A](perPartHint, opt.Hash, newA)
			for r := range next {
				for p := r[0]; p < r[1]; p++ {
					pk, pv := parts.Partition(p)
					if len(pk) == 0 {
						continue
					}
					hashagg.Aggregate[V, A, PA](t, pk, pv)
					results[p] = collect(t)
					t.Clear()
				}
			}
		}()
	}
	wg.Wait()

	// Concatenate in partition order (deterministic layout).
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]Entry[A], 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// aggregateUnpartitioned implements the Depth = 0 case: workers
// aggregate chunks of the input into private tables, which are then
// merged into a single shared table. The merge order is fixed (worker
// 0, 1, …), and with reproducible payloads the merged result does not
// depend on the chunking at all.
func aggregateUnpartitioned[V any, A any, PA interface {
	*A
	hashagg.Adder[V]
	hashagg.Merger[A]
}](keys []uint32, vals []V, newA func() A, opt Options) []Entry[A] {
	n := len(keys)
	w := opt.Workers
	if w > 1 && n >= 2*w {
		tables := make([]*hashagg.Table[A], w)
		var wg sync.WaitGroup
		chunk := (n + w - 1) / w
		for i := 0; i < w; i++ {
			lo, hi := i*chunk, (i+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				t := hashagg.New[A](opt.GroupHint, opt.Hash, newA)
				hashagg.Aggregate[V, A, PA](t, keys[lo:hi], vals[lo:hi])
				tables[i] = t
			}(i, lo, hi)
		}
		wg.Wait()
		var dst *hashagg.Table[A]
		for _, t := range tables {
			if t == nil {
				continue
			}
			if dst == nil {
				dst = t
				continue
			}
			hashagg.MergeTables[A, PA](dst, t)
		}
		if dst == nil {
			return nil
		}
		return collect(dst)
	}
	t := hashagg.New[A](opt.GroupHint, opt.Hash, newA)
	hashagg.Aggregate[V, A, PA](t, keys, vals)
	return collect(t)
}

// flusher is implemented by buffered payloads that must drain their
// summation buffer before the payload value can be copied out of the
// table (the copy shares the buffer slice, and the table may recycle it
// for the next partition).
type flusher interface{ Flush() }

func collect[A any](t *hashagg.Table[A]) []Entry[A] {
	out := make([]Entry[A], 0, t.Len())
	_, needFlush := any((*A)(nil)).(flusher)
	t.ForEach(func(key uint32, a *A) {
		if needFlush {
			any(a).(flusher).Flush()
		}
		out = append(out, Entry[A]{Key: key, Agg: *a})
	})
	return out
}

// SortByKey orders entries by key, giving results a canonical order for
// comparison (the operator itself returns groups as an unordered set).
func SortByKey[A any](entries []Entry[A]) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
}

// Finalize maps the aggregate payloads of entries through fn, producing
// the user-visible column (e.g. repro state → float64).
func Finalize[A any, R any](entries []Entry[A], fn func(*A) R) []Entry[R] {
	out := make([]Entry[R], len(entries))
	for i := range entries {
		out[i] = Entry[R]{Key: entries[i].Key, Agg: fn(&entries[i].Agg)}
	}
	return out
}
