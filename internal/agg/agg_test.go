package agg

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hashagg"
	"repro/internal/workload"
)

func refGroupSums(keys []uint32, vals []float64) map[uint32]*[]float64 {
	ref := make(map[uint32]*[]float64)
	for i, k := range keys {
		if ref[k] == nil {
			s := []float64{}
			ref[k] = &s
		}
		*ref[k] = append(*ref[k], vals[i])
	}
	return ref
}

func TestHashAggregateFloat(t *testing.T) {
	keys := workload.Keys(1, 10000, 16)
	vals := workload.Values64(2, 10000, workload.Uniform12)
	entries := HashAggregate[float64, F64](keys, vals, func() F64 { return 0 }, 16, hashagg.Identity)
	if len(entries) != 16 {
		t.Fatalf("groups = %d", len(entries))
	}
	ref := make(map[uint32]float64)
	for i, k := range keys {
		ref[k] += vals[i]
	}
	for _, e := range entries {
		if float64(e.Agg) != ref[e.Key] {
			t.Errorf("group %d: %v != %v", e.Key, e.Agg, ref[e.Key])
		}
	}
}

func TestPartitionAndAggregateAllDepths(t *testing.T) {
	keys := workload.Keys(3, 50000, 1<<12)
	vals := workload.Values64(4, 50000, workload.Exp1)
	ref := refGroupSums(keys, vals)
	for _, depth := range []int{0, 1, 2} {
		for _, workers := range []int{1, 4} {
			entries := PartitionAndAggregate[float64, core.Sum64](
				keys, vals,
				func() core.Sum64 { return core.NewSum64(2) },
				Options{Depth: depth, Workers: workers, GroupHint: 1 << 12})
			if len(entries) != len(ref) {
				t.Fatalf("depth=%d w=%d: groups %d want %d", depth, workers, len(entries), len(ref))
			}
			for i := range entries {
				e := &entries[i]
				want := exact.SumFloat64(*ref[e.Key])
				got := e.Agg.Value()
				if math.Abs(got-want) > 1e-6*math.Abs(want)+1e-12 {
					t.Fatalf("depth=%d group %d: %v vs exact %v", depth, e.Key, got, want)
				}
			}
		}
	}
}

// TestReproAcrossEverything is the paper's headline claim: with
// reproducible payloads, the result is bit-identical across input
// permutations, partitioning depths, buffer sizes, and worker counts.
func TestReproAcrossEverything(t *testing.T) {
	const n = 30000
	keys := workload.Keys(5, n, 1000)
	vals := workload.Values64(6, n, workload.MixedMag)

	canonical := map[uint32]uint64{}
	first := true
	check := func(tag string, entries []Entry[core.Sum64]) {
		t.Helper()
		got := map[uint32]uint64{}
		for i := range entries {
			got[entries[i].Key] = math.Float64bits(entries[i].Agg.Value())
		}
		if first {
			canonical = got
			first = false
			return
		}
		if len(got) != len(canonical) {
			t.Fatalf("%s: group count %d != %d", tag, len(got), len(canonical))
		}
		for k, v := range canonical {
			if got[k] != v {
				t.Fatalf("%s: group %d bits %x != %x", tag, k, got[k], v)
			}
		}
	}

	newSum := func() core.Sum64 { return core.NewSum64(2) }
	for _, depth := range []int{0, 1, 2} {
		for _, workers := range []int{1, 2, 7} {
			entries := PartitionAndAggregate[float64, core.Sum64](keys, vals, newSum,
				Options{Depth: depth, Workers: workers})
			check("sum64", entries)
		}
	}
	// Buffered accumulators with various buffer sizes must agree bit-wise.
	for _, bsz := range []int{4, 64, 1024} {
		for _, depth := range []int{0, 1} {
			entries := PartitionAndAggregate[float64, core.Buffered64](keys, vals,
				func() core.Buffered64 { return core.NewBuffered64(2, bsz) },
				Options{Depth: depth, Workers: 3})
			fin := Finalize(entries, func(b *core.Buffered64) core.Sum64 {
				s := core.NewSum64(2)
				b.MergeIntoSum(&s)
				return s
			})
			check("buffered bsz="+itoa(bsz), fin)
		}
	}
	// Permuted input must agree bit-wise.
	pk := append([]uint32(nil), keys...)
	pv := append([]float64(nil), vals...)
	workload.ShufflePairs(99, pk, pv)
	entries := PartitionAndAggregate[float64, core.Sum64](pk, pv, newSum, Options{Depth: 1})
	check("permuted", entries)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestFloatNotReproducible documents the motivation: the float64
// baseline differs across permutations (with high probability on this
// adversarial workload).
func TestFloatNotReproducible(t *testing.T) {
	const n = 100000
	keys := make([]uint32, n)
	vals := make([]float64, n)
	rng := workload.NewRNG(7)
	for i := range vals {
		keys[i] = 0
		vals[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40))
	}
	run := func(k []uint32, v []float64) uint64 {
		entries := PartitionAndAggregate[float64, F64](k, v,
			func() F64 { return 0 }, Options{Depth: 0, Workers: 1})
		return math.Float64bits(float64(entries[0].Agg))
	}
	base := run(keys, vals)
	diff := false
	for trial := uint64(0); trial < 10 && !diff; trial++ {
		pk := append([]uint32(nil), keys...)
		pv := append([]float64(nil), vals...)
		workload.ShufflePairs(trial+100, pk, pv)
		if run(pk, pv) != base {
			diff = true
		}
	}
	if !diff {
		t.Skip("float sum happened to be permutation-stable on this input")
	}
}

func TestSortAggregate(t *testing.T) {
	keys := workload.Keys(11, 20000, 64)
	vals := workload.Values64(12, 20000, workload.MixedMag)
	entries := SortAggregate64(keys, vals)
	SortByKey(entries)
	ref := refGroupSums(keys, vals)
	if len(entries) != len(ref) {
		t.Fatalf("groups = %d want %d", len(entries), len(ref))
	}
	for i := range entries {
		e := &entries[i]
		want := exact.SumFloat64(*ref[e.Key])
		if math.Abs(float64(e.Agg)-want) > 1e-9*math.Abs(want)+1e-12 {
			t.Errorf("group %d: %v vs %v", e.Key, e.Agg, want)
		}
	}
	// Reproducible across permutations (its raison d'être).
	pk := append([]uint32(nil), keys...)
	pv := append([]float64(nil), vals...)
	workload.ShufflePairs(13, pk, pv)
	entries2 := SortAggregate64(pk, pv)
	SortByKey(entries2)
	for i := range entries {
		if math.Float64bits(float64(entries[i].Agg)) != math.Float64bits(float64(entries2[i].Agg)) {
			t.Fatalf("sort aggregation not permutation-stable at group %d", entries[i].Key)
		}
	}
}

func TestSortAggregateEdge(t *testing.T) {
	if SortAggregate64(nil, nil) != nil {
		t.Error("empty input should return nil")
	}
	e := SortAggregate64([]uint32{5}, []float64{2.5})
	if len(e) != 1 || e[0].Key != 5 || e[0].Agg != 2.5 {
		t.Errorf("single row: %+v", e)
	}
	// Negative values and signed zeros survive the bit transform.
	e = SortAggregate64([]uint32{1, 1, 1}, []float64{-1.5, 0, 1.5})
	if len(e) != 1 || e[0].Agg != 0 {
		t.Errorf("mixed signs: %+v", e)
	}
}

func TestOrderedBitsRoundtrip(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1.5, -1.5, math.MaxFloat64, -math.MaxFloat64, 0x1p-1074}
	for _, v := range vals {
		if got := fromOrderedBits(orderedBits(v)); math.Float64bits(got) != math.Float64bits(v) {
			t.Errorf("roundtrip %v → %v", v, got)
		}
	}
	// Order-preservation.
	if orderedBits(-1) >= orderedBits(1) || orderedBits(1) >= orderedBits(2) {
		t.Error("orderedBits not monotone")
	}
}

func TestDecimalAggregation(t *testing.T) {
	keys := workload.Keys(15, 10000, 256)
	vals := workload.IntValues(16, 10000, 1000)
	entries := PartitionAndAggregate[int64, D38](keys, vals,
		func() D38 { return D38{} }, Options{Depth: 1, Workers: 2})
	ref := make(map[uint32]int64)
	for i, k := range keys {
		ref[k] += vals[i]
	}
	for i := range entries {
		e := &entries[i]
		if e.Agg.Value().Float64() != float64(ref[e.Key]) {
			t.Errorf("group %d: %v vs %d", e.Key, e.Agg.Value(), ref[e.Key])
		}
	}
	// 64-bit decimal path.
	e18 := PartitionAndAggregate[int64, D18](keys, vals,
		func() D18 { return 0 }, Options{Depth: 0})
	for i := range e18 {
		if int64(e18[i].Agg) != ref[e18[i].Key] {
			t.Errorf("D18 group %d wrong", e18[i].Key)
		}
	}
}

func TestBufferSizeModel(t *testing.T) {
	// Eq. 4 sanity: 16 groups, no partitioning, float32 → bszmax.
	if got := BufferSize(16, 1, 4); got != MaxBufferSize {
		t.Errorf("16 groups: bsz = %d, want %d", got, MaxBufferSize)
	}
	// More groups → smaller buffers (monotone non-increasing).
	prev := MaxBufferSize + 1
	for g := 16; g <= 1<<24; g *= 4 {
		b := BufferSize(g, 1, 8)
		if b > prev {
			t.Errorf("bsz not monotone at %d groups: %d > %d", g, b, prev)
		}
		if b < 1 {
			t.Errorf("bsz < 1 at %d groups", g)
		}
		prev = b
	}
	// Partitioning with fan-out F divides the groups per partition.
	if BufferSize(1<<16, 256, 8) != BufferSize(1<<8, 1, 8) {
		t.Error("fan-out does not divide group count")
	}
	// Power-of-two outputs.
	for _, g := range []int{100, 1000, 30000} {
		b := BufferSize(g, 1, 8)
		if b&(b-1) != 0 {
			t.Errorf("bsz %d not a power of two", b)
		}
	}
	// The paper's example (Fig. 8): at 1024 groups, double precision,
	// performance drops for buffers > 2^7; the model must not exceed it.
	if b := BufferSize(1024, 1, 8); b > 128 {
		t.Errorf("1024 groups double: bsz = %d, model should cap at 128", b)
	}
}

func TestDepthThresholds(t *testing.T) {
	// The mechanism: depth counts the thresholds at or below ngroups.
	th := DepthThresholds{1 << 10, 1 << 18}
	cases := []struct {
		groups, depth int
	}{
		{1, 0}, {1 << 9, 0}, {1 << 10, 1}, {1 << 17, 1}, {1 << 18, 2}, {1 << 24, 2},
	}
	for _, c := range cases {
		if got := th.Depth(c.groups); got != c.depth {
			t.Errorf("Depth(%d) = %d, want %d", c.groups, got, c.depth)
		}
	}
	// The package defaults are monotone and start at depth 0.
	for _, def := range []DepthThresholds{ThresholdsBuiltin, ThresholdsReproUnbuffered, ThresholdsReproBuffered} {
		if def.Depth(1) != 0 {
			t.Error("default thresholds: depth at 1 group must be 0")
		}
		prev := 0
		for g := 1; g <= 1<<28; g *= 2 {
			d := def.Depth(g)
			if d < prev {
				t.Error("default thresholds not monotone")
			}
			prev = d
		}
	}
}

func TestEmptyInput(t *testing.T) {
	entries := PartitionAndAggregate[float64, F64](nil, nil,
		func() F64 { return 0 }, Options{Depth: 0})
	if len(entries) != 0 {
		t.Errorf("empty input produced %d entries", len(entries))
	}
	entries = PartitionAndAggregate[float64, F64](nil, nil,
		func() F64 { return 0 }, Options{Depth: 1})
	if len(entries) != 0 {
		t.Errorf("empty input depth 1 produced %d entries", len(entries))
	}
}

func TestSpecialValuesThroughOperator(t *testing.T) {
	keys := []uint32{1, 1, 2, 2, 3}
	vals := []float64{1, math.NaN(), math.Inf(1), 5, -2}
	entries := PartitionAndAggregate[float64, core.Sum64](keys, vals,
		func() core.Sum64 { return core.NewSum64(2) }, Options{Depth: 0, Workers: 2})
	SortByKey(entries)
	if len(entries) != 3 {
		t.Fatalf("groups = %d", len(entries))
	}
	if v := entries[0].Agg.Value(); !math.IsNaN(v) {
		t.Errorf("group 1 = %v, want NaN", v)
	}
	if v := entries[1].Agg.Value(); !math.IsInf(v, 1) {
		t.Errorf("group 2 = %v, want +Inf", v)
	}
	if v := entries[2].Agg.Value(); v != -2 {
		t.Errorf("group 3 = %v, want −2", v)
	}
}

func TestFinalizeAndSort(t *testing.T) {
	entries := []Entry[F64]{{Key: 3, Agg: 30}, {Key: 1, Agg: 10}}
	fin := Finalize(entries, func(f *F64) float64 { return float64(*f) })
	SortByKey(fin)
	if fin[0].Key != 1 || fin[0].Agg != 10 || fin[1].Key != 3 {
		t.Errorf("finalize/sort wrong: %+v", fin)
	}
}

func TestSortAggregateSpecialValues(t *testing.T) {
	keys := []uint32{1, 1, 2, 3, 3}
	vals := []float64{1, math.NaN(), math.Inf(1), 5, -5}
	entries := SortAggregate64(keys, vals)
	SortByKey(entries)
	if len(entries) != 3 {
		t.Fatalf("groups = %d", len(entries))
	}
	if v := float64(entries[0].Agg); !math.IsNaN(v) {
		t.Errorf("group 1 = %v, want NaN", v)
	}
	if v := float64(entries[1].Agg); !math.IsInf(v, 1) {
		t.Errorf("group 2 = %v, want +Inf", v)
	}
	if v := float64(entries[2].Agg); v != 0 {
		t.Errorf("group 3 = %v, want 0", v)
	}
	// Still reproducible under permutation.
	pk := []uint32{3, 1, 2, 1, 3}
	pv := []float64{5, math.NaN(), math.Inf(1), 1, -5}
	entries2 := SortAggregate64(pk, pv)
	SortByKey(entries2)
	for i := range entries {
		a, b := float64(entries[i].Agg), float64(entries2[i].Agg)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("group %d: %v vs %v under permutation", entries[i].Key, a, b)
		}
	}
}

// TestSkewedKeysReproducible: the paper treats skew handling as
// orthogonal (Section VI-A cites known techniques); reproducibility
// must hold regardless — heavy-hitter groups just concentrate values
// into fewer accumulators.
func TestSkewedKeysReproducible(t *testing.T) {
	keys := workload.ZipfKeys(41, 30000, 1024, 1.3)
	vals := workload.Values64(42, 30000, workload.MixedMag)
	newSum := func() core.Sum64 { return core.NewSum64(2) }
	bits := func(entries []Entry[core.Sum64]) map[uint32]uint64 {
		m := make(map[uint32]uint64)
		for i := range entries {
			m[entries[i].Key] = math.Float64bits(entries[i].Agg.Value())
		}
		return m
	}
	ref := bits(PartitionAndAggregate[float64, core.Sum64](keys, vals, newSum,
		Options{Depth: 0, Workers: 1}))
	for _, depth := range []int{0, 1} {
		for _, workers := range []int{2, 5} {
			got := bits(PartitionAndAggregate[float64, core.Sum64](keys, vals, newSum,
				Options{Depth: depth, Workers: workers}))
			if len(got) != len(ref) {
				t.Fatalf("depth=%d workers=%d: group count differs", depth, workers)
			}
			for k, v := range ref {
				if got[k] != v {
					t.Fatalf("depth=%d workers=%d: skewed group %d differs", depth, workers, k)
				}
			}
		}
	}
	// Buffered under skew: the hottest group flushes constantly, cold
	// groups never do — bits must still match.
	gotBuf := PartitionAndAggregate[float64, core.Buffered64](keys, vals,
		func() core.Buffered64 { return core.NewBuffered64(2, 64) },
		Options{Depth: 0, Workers: 3})
	fin := Finalize(gotBuf, func(b *core.Buffered64) core.Sum64 {
		s := core.NewSum64(2)
		b.MergeIntoSum(&s)
		return s
	})
	got := bits(fin)
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("buffered skewed group %d differs", k)
		}
	}
}
