// Package engine is a small vectorized column-store execution engine —
// the stand-in for MonetDB in the paper's end-to-end experiment
// (Section VI-E, Table IV). It provides columnar tables, selection
// vectors, vectorized filter/projection primitives, and a group-by
// aggregation operator whose SUM kernel is pluggable: built-in doubles,
// reproducible doubles (with or without summation buffers), or the
// sort-first baseline. Every operator records its CPU time, so queries
// can report the aggregation share versus the rest of the plan exactly
// like Table IV.
package engine

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Column is a typed column of a table.
type Column interface {
	// Len returns the number of rows.
	Len() int
	// kind returns a human-readable type name for catalogs and errors.
	kind() string
}

// Float64Column holds DOUBLE values.
type Float64Column []float64

// Len returns the number of rows.
func (c Float64Column) Len() int { return len(c) }

func (c Float64Column) kind() string { return "DOUBLE" }

// Int32Column holds 32-bit integers (also used for dates as day
// numbers, MonetDB-style).
type Int32Column []int32

// Len returns the number of rows.
func (c Int32Column) Len() int { return len(c) }

func (c Int32Column) kind() string { return "INT" }

// ByteColumn holds dictionary-encoded single-byte values (flags).
type ByteColumn []byte

// Len returns the number of rows.
func (c ByteColumn) Len() int { return len(c) }

func (c ByteColumn) kind() string { return "CHAR(1)" }

// Table is a named collection of equal-length columns.
type Table struct {
	name  string
	nrows int
	names []string
	cols  []Column
	index map[string]int
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{name: name, nrows: -1, index: make(map[string]int)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the row count (0 for a table without columns).
func (t *Table) NumRows() int {
	if t.nrows < 0 {
		return 0
	}
	return t.nrows
}

// AddColumn appends a column; all columns must have the same length.
func (t *Table) AddColumn(name string, c Column) error {
	if _, dup := t.index[name]; dup {
		return fmt.Errorf("engine: table %s already has column %s", t.name, name)
	}
	if t.nrows >= 0 && c.Len() != t.nrows {
		return fmt.Errorf("engine: column %s has %d rows, table %s has %d",
			name, c.Len(), t.name, t.nrows)
	}
	t.nrows = c.Len()
	t.index[name] = len(t.cols)
	t.names = append(t.names, name)
	t.cols = append(t.cols, c)
	return nil
}

// MustAddColumn is AddColumn for table construction code where a
// failure is a programming error.
func (t *Table) MustAddColumn(name string, c Column) {
	if err := t.AddColumn(name, c); err != nil {
		panic(err)
	}
}

// Column returns a column by name.
func (t *Table) Column(name string) (Column, error) {
	i, ok := t.index[name]
	if !ok {
		return nil, fmt.Errorf("engine: table %s has no column %s", t.name, name)
	}
	return t.cols[i], nil
}

// Float64 returns a DOUBLE column by name.
func (t *Table) Float64(name string) (Float64Column, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	f, ok := c.(Float64Column)
	if !ok {
		return nil, fmt.Errorf("engine: column %s is %s, not DOUBLE", name, c.kind())
	}
	return f, nil
}

// Int32 returns an INT column by name.
func (t *Table) Int32(name string) (Int32Column, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	f, ok := c.(Int32Column)
	if !ok {
		return nil, fmt.Errorf("engine: column %s is %s, not INT", name, c.kind())
	}
	return f, nil
}

// Byte returns a CHAR(1) column by name.
func (t *Table) Byte(name string) (ByteColumn, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	f, ok := c.(ByteColumn)
	if !ok {
		return nil, fmt.Errorf("engine: column %s is %s, not CHAR(1)", name, c.kind())
	}
	return f, nil
}

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string {
	return append([]string(nil), t.names...)
}

// Profiler accumulates per-operator CPU time. The paper's Table IV
// splits query time into "Aggregations" and "Other"; operators report
// under a label and the query harness groups them. A Profiler is safe
// for concurrent use: a long-lived query server shares one profiler
// across every in-flight query. It is backed by a private obs.Registry
// of nanosecond counters — a charge to an already-known label is one
// short registry lookup plus an atomic add, and parallel operators
// never serialize on each other's timings.
type Profiler struct {
	reg *obs.Registry
}

// profHelp documents every profiler counter (the registry stores
// nanoseconds; the Profiler API speaks time.Duration).
const profHelp = "Accumulated nanoseconds charged to this operator label."

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{reg: obs.NewRegistry()}
}

// Measure runs fn and charges its wall time to label. (Single-threaded
// operators: wall time == CPU time.)
func (p *Profiler) Measure(label string, fn func()) {
	start := time.Now()
	fn()
	p.Addt(label, time.Since(start))
}

// Addt charges a duration to label.
func (p *Profiler) Addt(label string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.reg.Counter(label, profHelp).Add(uint64(d))
}

// Get returns the accumulated time for label. Asking about a label
// that was never charged returns zero without registering it.
func (p *Profiler) Get(label string) time.Duration {
	if _, ok := p.reg.Value(label); !ok {
		return 0
	}
	return time.Duration(p.reg.Counter(label, profHelp).Value())
}

// Total returns the total accumulated time.
func (p *Profiler) Total() time.Duration {
	var t time.Duration
	for _, label := range p.reg.Names() {
		t += p.Get(label)
	}
	return t
}

// Labels returns the labels in first-use order.
func (p *Profiler) Labels() []string {
	return p.reg.Names()
}
