package engine

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable("t")
	if tb.NumRows() != 0 {
		t.Error("empty table rows")
	}
	if err := tb.AddColumn("a", Float64Column{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn("b", Int32Column{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn("c", ByteColumn{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 || tb.Name() != "t" {
		t.Error("table metadata wrong")
	}
	if err := tb.AddColumn("a", Float64Column{1, 2, 3}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := tb.AddColumn("d", Float64Column{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := tb.Float64("a"); err != nil {
		t.Error(err)
	}
	if _, err := tb.Float64("b"); err == nil {
		t.Error("type confusion accepted")
	}
	if _, err := tb.Int32("b"); err != nil {
		t.Error(err)
	}
	if _, err := tb.Byte("c"); err != nil {
		t.Error(err)
	}
	if _, err := tb.Column("zz"); err == nil {
		t.Error("missing column accepted")
	}
	cols := tb.Columns()
	if len(cols) != 3 || cols[0] != "a" || cols[2] != "c" {
		t.Errorf("Columns() = %v", cols)
	}
}

func TestSelectGather(t *testing.T) {
	dates := Int32Column{5, 10, 15, 20}
	sel := SelectInt32LE(dates, 12)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("sel = %v", sel)
	}
	vals := GatherFloat64(Float64Column{1.5, 2.5, 3.5, 4.5}, sel)
	if vals[0] != 1.5 || vals[1] != 2.5 {
		t.Errorf("gather = %v", vals)
	}
	bs := GatherByte(ByteColumn{'a', 'b', 'c', 'd'}, sel)
	if string(bs) != "ab" {
		t.Errorf("gather bytes = %q", bs)
	}
}

func TestProjections(t *testing.T) {
	a := []float64{10, 20}
	b := []float64{-0.1, -0.2}
	dst := make([]float64, 2)
	MulScalarAdd(dst, a, b, 1) // a·(1+b)
	if dst[0] != 9 || dst[1] != 16 {
		t.Errorf("MulScalarAdd = %v", dst)
	}
	Neg(dst, a)
	if dst[0] != -10 {
		t.Errorf("Neg = %v", dst)
	}
	Mul(dst, a, a)
	if dst[0] != 100 {
		t.Errorf("Mul = %v", dst)
	}
}

func TestGroupedSumKernelsAgree(t *testing.T) {
	const n, g = 50000, 6
	groups := make([]uint32, n)
	kraw := workload.Keys(1, n, g)
	copy(groups, kraw)
	vals := workload.Values64(2, n, workload.Exp1)

	ref, err := GroupedSum(groups, g, vals, GroupByConfig{Kind: SumPlain}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SumKind{SumRepro, SumReproBuffered, SumSorted} {
		got, err := GroupedSum(groups, g, vals, GroupByConfig{Kind: kind}, NewProfiler())
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if math.Abs(got[i]-ref[i]) > 1e-6*math.Abs(ref[i])+1e-9 {
				t.Errorf("%v group %d: %v vs plain %v", kind, i, got[i], ref[i])
			}
		}
	}
}

func TestGroupedSumReproIsPermutationStable(t *testing.T) {
	const n, g = 30000, 4
	groups := workload.Keys(3, n, g)
	vals := workload.Values64(4, n, workload.MixedMag)
	run := func(kind SumKind, gr []uint32, vs []float64) []float64 {
		out, err := GroupedSum(gr, g, vs, GroupByConfig{Kind: kind, Levels: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, kind := range []SumKind{SumRepro, SumReproBuffered, SumSorted} {
		base := run(kind, groups, vals)
		pg := append([]uint32(nil), groups...)
		pv := append([]float64(nil), vals...)
		workload.ShufflePairs(7, pg, pv)
		perm := run(kind, pg, pv)
		for i := range base {
			if math.Float64bits(base[i]) != math.Float64bits(perm[i]) {
				t.Errorf("%v: group %d not permutation-stable", kind, i)
			}
		}
	}
}

func TestGroupedSumErrors(t *testing.T) {
	if _, err := GroupedSum([]uint32{0}, 1, []float64{1, 2}, GroupByConfig{}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := GroupedSum(nil, 0, nil, GroupByConfig{}, nil); err == nil {
		t.Error("ngroups=0 accepted")
	}
	if _, err := GroupedSum([]uint32{0}, 1, []float64{1}, GroupByConfig{Kind: SumKind(99)}, nil); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestGroupedCount(t *testing.T) {
	counts := GroupedCount([]uint32{0, 1, 1, 2, 2, 2}, 3, NewProfiler())
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 3 {
		t.Errorf("counts = %v", counts)
	}
}

func TestProfiler(t *testing.T) {
	p := NewProfiler()
	p.Measure("x", func() {})
	p.Measure("x", func() {})
	p.Measure("y", func() {})
	if p.Get("x") <= 0 || p.Get("y") <= 0 {
		t.Error("times not recorded")
	}
	if p.Get("z") != 0 {
		t.Error("unknown label should be 0")
	}
	if p.Total() < p.Get("x")+p.Get("y") {
		t.Error("total too small")
	}
	labels := p.Labels()
	if len(labels) != 2 || labels[0] != "x" {
		t.Errorf("labels = %v", labels)
	}
}

func TestSumKindString(t *testing.T) {
	names := map[SumKind]string{
		SumPlain: "double", SumRepro: "repro",
		SumReproBuffered: "repro+buffer", SumSorted: "sorted double",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestGroupedMinMax(t *testing.T) {
	groups := []uint32{0, 1, 0, 1, 2}
	vals := []float64{5, -2, 3, 8, 1}
	mins, maxs := GroupedMinMax(groups, 4, vals, NewProfiler())
	if mins[0] != 3 || maxs[0] != 5 || mins[1] != -2 || maxs[1] != 8 || mins[2] != 1 {
		t.Errorf("minmax wrong: %v %v", mins, maxs)
	}
	// Empty group: ±Inf sentinels.
	if !math.IsInf(mins[3], 1) || !math.IsInf(maxs[3], -1) {
		t.Error("empty group sentinels wrong")
	}
}

func TestGroupedAvg(t *testing.T) {
	avg := GroupedAvg([]float64{10, 0}, []int64{4, 0})
	if avg[0] != 2.5 {
		t.Errorf("avg = %v", avg[0])
	}
	if !math.IsNaN(avg[1]) {
		t.Error("empty group avg should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	GroupedAvg([]float64{1}, []int64{1, 2})
}
