package engine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Vectorized operator primitives. All operators work on selection
// vectors (row-id lists), the classic vectorized execution model.

// SelectInt32LE builds a selection vector of the rows where col ≤ max.
func SelectInt32LE(col Int32Column, max int32) []int32 {
	sel := make([]int32, 0, len(col))
	for i, v := range col {
		if v <= max {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// GatherFloat64 materializes col[sel] into a new dense vector.
func GatherFloat64(col Float64Column, sel []int32) []float64 {
	out := make([]float64, len(sel))
	for i, r := range sel {
		out[i] = col[r]
	}
	return out
}

// GatherByte materializes col[sel].
func GatherByte(col ByteColumn, sel []int32) []byte {
	out := make([]byte, len(sel))
	for i, r := range sel {
		out[i] = col[r]
	}
	return out
}

// MulScalarAdd computes dst[i] = a[i] * (s + b[i]) — the shape of
// Q1's disc_price = extendedprice · (1 − discount) with s = 1, b = −disc,
// expressed as one fused vectorized projection.
func MulScalarAdd(dst, a, b []float64, s float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("engine: projection length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * (s + b[i])
	}
}

// Neg computes dst[i] = −a[i].
func Neg(dst, a []float64) {
	for i := range dst {
		dst[i] = -a[i]
	}
}

// Mul computes dst[i] = a[i] · b[i].
func Mul(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("engine: projection length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// SumKind selects the SUM kernel of the group-by operator — the knob
// the paper turns inside MonetDB.
type SumKind int

const (
	// SumPlain is the built-in double sum (non-reproducible baseline).
	SumPlain SumKind = iota
	// SumRepro aggregates into repro<double,L> accumulators per group
	// (Section IV: drop-in, no buffering).
	SumRepro
	// SumReproBuffered uses summation buffers per group (Section V).
	SumReproBuffered
	// SumSorted sorts (group, value-bits) first and then sums doubles —
	// the "deterministic order" baseline of Table IV.
	SumSorted
)

// String names the kernel for reports.
func (k SumKind) String() string {
	switch k {
	case SumPlain:
		return "double"
	case SumRepro:
		return "repro"
	case SumReproBuffered:
		return "repro+buffer"
	case SumSorted:
		return "sorted double"
	default:
		return "?"
	}
}

// GroupByConfig configures the group-by operator.
type GroupByConfig struct {
	// Kind selects the SUM kernel.
	Kind SumKind
	// Levels is the repro level count L (default 4, matching the
	// repro<double,4> configuration of Table IV).
	Levels int
	// BufferSize is bsz for SumReproBuffered (default from Eq. 4).
	BufferSize int
}

func (c GroupByConfig) withDefaults(ngroups int) GroupByConfig {
	if c.Levels == 0 {
		c.Levels = 4
	}
	if c.BufferSize == 0 {
		// Eq. 4 with F = 1 and float64 payloads.
		c.BufferSize = 1 << 20 / (maxInt(ngroups, 1) * 8)
		if c.BufferSize > 1024 {
			c.BufferSize = 1024
		}
		if c.BufferSize < 8 {
			c.BufferSize = 8
		}
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GroupedSum computes, for each group g in [0, ngroups), the sum of
// vals[i] with groups[i] == g, using the configured kernel. MonetDB's
// aggregation operator for dense group ids works the same way: direct
// indexing into an aggregate array, no hash table needed after group-id
// construction. The profiler, when non-nil, is charged under
// "aggregation".
func GroupedSum(groups []uint32, ngroups int, vals []float64, cfg GroupByConfig, prof *Profiler) ([]float64, error) {
	if len(groups) != len(vals) {
		return nil, fmt.Errorf("engine: GroupedSum length mismatch (%d vs %d)", len(groups), len(vals))
	}
	if ngroups <= 0 {
		return nil, fmt.Errorf("engine: GroupedSum needs ngroups > 0")
	}
	cfg = cfg.withDefaults(ngroups)
	out := make([]float64, ngroups)
	run := func(fn func()) {
		if prof != nil {
			prof.Measure("aggregation", fn)
		} else {
			fn()
		}
	}
	switch cfg.Kind {
	case SumPlain:
		run(func() {
			for i, g := range groups {
				out[g] += vals[i]
			}
		})
	case SumRepro:
		run(func() {
			accs := make([]core.Sum64, ngroups)
			for g := range accs {
				accs[g] = core.NewSum64(cfg.Levels)
			}
			for i, g := range groups {
				accs[g].Add(vals[i])
			}
			for g := range accs {
				out[g] = accs[g].Value()
			}
		})
	case SumReproBuffered:
		run(func() {
			accs := make([]core.Buffered64, ngroups)
			for g := range accs {
				accs[g] = core.NewBuffered64(cfg.Levels, cfg.BufferSize)
			}
			for i, g := range groups {
				accs[g].Add(vals[i])
			}
			for g := range accs {
				out[g] = accs[g].Value()
			}
		})
	case SumSorted:
		// Sort row ids by (group, value bits) — deterministic order —
		// then sum sequentially. The sort is charged to "sort" (it is
		// not aggregation work; Table IV reports it under "Other").
		ids := make([]int32, len(groups))
		for i := range ids {
			ids[i] = int32(i)
		}
		sortf := func() {
			sort.Slice(ids, func(a, b int) bool {
				ia, ib := ids[a], ids[b]
				if groups[ia] != groups[ib] {
					return groups[ia] < groups[ib]
				}
				return math.Float64bits(vals[ia]) < math.Float64bits(vals[ib])
			})
		}
		if prof != nil {
			prof.Measure("sort", sortf)
		} else {
			sortf()
		}
		run(func() {
			for _, id := range ids {
				out[groups[id]] += vals[id]
			}
		})
	default:
		return nil, fmt.Errorf("engine: unknown sum kind %d", cfg.Kind)
	}
	return out, nil
}

// GroupedCount counts rows per group.
func GroupedCount(groups []uint32, ngroups int, prof *Profiler) []int64 {
	out := make([]int64, ngroups)
	fn := func() {
		for _, g := range groups {
			out[g]++
		}
	}
	if prof != nil {
		prof.Measure("aggregation", fn)
	} else {
		fn()
	}
	return out
}

// GroupedMinMax computes per-group MIN and MAX. Min/max are intrinsically
// order-independent (the paper's footnote 2: such aggregates need no
// floating-point arithmetic beyond comparison), included so the engine
// covers the full standard aggregate set. Empty groups report
// (+Inf, −Inf).
func GroupedMinMax(groups []uint32, ngroups int, vals []float64, prof *Profiler) (mins, maxs []float64) {
	mins = make([]float64, ngroups)
	maxs = make([]float64, ngroups)
	for g := range mins {
		mins[g] = math.Inf(1)
		maxs[g] = math.Inf(-1)
	}
	fn := func() {
		for i, g := range groups {
			v := vals[i]
			if v < mins[g] {
				mins[g] = v
			}
			if v > maxs[g] {
				maxs[g] = v
			}
		}
	}
	if prof != nil {
		prof.Measure("aggregation", fn)
	} else {
		fn()
	}
	return mins, maxs
}

// GroupedAvg divides per-group sums by counts; NaN for empty groups
// (SQL NULL semantics).
func GroupedAvg(sums []float64, counts []int64) []float64 {
	if len(sums) != len(counts) {
		panic("engine: GroupedAvg length mismatch")
	}
	out := make([]float64, len(sums))
	for g := range out {
		if counts[g] == 0 {
			out[g] = math.NaN()
		} else {
			out[g] = sums[g] / float64(counts[g])
		}
	}
	return out
}
