package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestProfilerConcurrent charges labels from many goroutines at once —
// the access pattern of a query server sharing one profiler across
// concurrent queries. Under -race this is the regression test for the
// formerly unsynchronized Measure/Addt slice and map mutation; in any
// mode it asserts no charge is lost or misfiled.
func TestProfilerConcurrent(t *testing.T) {
	const (
		goroutines = 32
		charges    = 200
		unit       = time.Microsecond
	)
	p := NewProfiler()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Every goroutine charges a shared label (maximal contention
			// on one slot), its own label (map growth under contention),
			// and reads while others write.
			own := fmt.Sprintf("op-%d", g)
			for i := 0; i < charges; i++ {
				p.Addt("aggregation", unit)
				p.Addt(own, unit)
				p.Measure("measured", func() {})
				_ = p.Get("aggregation")
				_ = p.Total()
				_ = p.Labels()
			}
		}(g)
	}
	wg.Wait()

	if got, want := p.Get("aggregation"), goroutines*charges*unit; got != want {
		t.Errorf("shared label accumulated %v, want %v", got, want)
	}
	for g := 0; g < goroutines; g++ {
		label := fmt.Sprintf("op-%d", g)
		if got, want := p.Get(label), time.Duration(charges)*unit; got != want {
			t.Errorf("label %s accumulated %v, want %v", label, got, want)
		}
	}
	// goroutines own labels + "aggregation" + "measured".
	if got := len(p.Labels()); got != goroutines+2 {
		t.Errorf("got %d labels, want %d", got, goroutines+2)
	}
	if p.Total() < goroutines*charges*2*unit {
		t.Errorf("total %v below the deterministic floor %v", p.Total(), goroutines*charges*2*unit)
	}
}
