package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sqlagg"
)

// QueryKind selects a query shape.
type QueryKind byte

// The query catalog.
const (
	// QueryGroupBy: GROUP BY key with the spec list's aggregates; the
	// result is one TupleGroup per distinct key, sorted by key.
	QueryGroupBy QueryKind = 1
	// QueryWindowTotals: the window aggregate SUM(col) OVER (PARTITION
	// BY key) — one total per input row, in row order.
	QueryWindowTotals QueryKind = 2
)

// Query is one serving-layer query. The zero value is invalid;
// construct with GroupBy or WindowTotals, or fill the fields directly.
type Query struct {
	Kind QueryKind
	// Specs is the aggregate list of a QueryGroupBy.
	Specs []sqlagg.AggSpec
	// Col and Levels configure a QueryWindowTotals: the value column to
	// total and the summation level count (0 = DefaultLevels).
	Col    int
	Levels int
}

// GroupBy returns a GROUP BY query over the given aggregate specs.
func GroupBy(specs ...sqlagg.AggSpec) Query {
	return Query{Kind: QueryGroupBy, Specs: specs}
}

// WindowTotals returns a per-row window-total query over column col.
func WindowTotals(col, levels int) Query {
	return Query{Kind: QueryWindowTotals, Col: col, Levels: levels}
}

// validate checks the query against the catalog and a dataset's column
// count. All failures are ErrBadQuery.
func (q Query) validate(ncols int) error {
	switch q.Kind {
	case QueryGroupBy:
		if len(q.Specs) == 0 {
			return fmt.Errorf("%w: GROUP BY with no aggregates", ErrBadQuery)
		}
		for _, sp := range q.Specs {
			if err := sp.Validate(); err != nil {
				return fmt.Errorf("%w: %v", ErrBadQuery, err)
			}
			if sp.Col >= ncols {
				return fmt.Errorf("%w: %s reads column %d of a %d-column dataset",
					ErrBadQuery, sp.Kind, sp.Col, ncols)
			}
		}
		return nil
	case QueryWindowTotals:
		if q.Col < 0 || q.Col >= ncols {
			return fmt.Errorf("%w: window totals over column %d of a %d-column dataset",
				ErrBadQuery, q.Col, ncols)
		}
		if l := resolvedLevels(q.Levels); l < 1 || l > core.MaxLevels {
			return fmt.Errorf("%w: window levels %d out of range [1, %d]", ErrBadQuery, l, core.MaxLevels)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown query kind %d", ErrBadQuery, byte(q.Kind))
	}
}

func resolvedLevels(l int) int {
	if l == 0 {
		return core.DefaultLevels
	}
	return l
}

// Encode returns the query's canonical encoding — the cache key and
// the form a query travels in. Two queries that mean the same thing
// encode identically: level 0 encodes as the resolved default, so
// Levels 0 and an explicit DefaultLevels share one cache entry. The
// layout is [1B kind] followed by the kind's body: the sqlagg spec
// wire form for GROUP BY, [1B levels][2B col LE] for window totals.
func (q Query) Encode() ([]byte, error) {
	switch q.Kind {
	case QueryGroupBy:
		if len(q.Specs) == 0 {
			return nil, fmt.Errorf("%w: GROUP BY with no aggregates", ErrBadQuery)
		}
		dst := make([]byte, 1, 1+2+4*len(q.Specs))
		dst[0] = byte(QueryGroupBy)
		dst, err := sqlagg.EncodeSpecs(dst, q.Specs)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		return dst, nil
	case QueryWindowTotals:
		l := resolvedLevels(q.Levels)
		if l < 1 || l > core.MaxLevels {
			return nil, fmt.Errorf("%w: window levels %d out of range [1, %d]", ErrBadQuery, l, core.MaxLevels)
		}
		if q.Col < 0 || q.Col > math.MaxUint16 {
			return nil, fmt.Errorf("%w: window column %d out of wire range", ErrBadQuery, q.Col)
		}
		var b [4]byte
		b[0] = byte(QueryWindowTotals)
		b[1] = byte(l)
		binary.LittleEndian.PutUint16(b[2:], uint16(q.Col))
		return b[:], nil
	default:
		return nil, fmt.Errorf("%w: unknown query kind %d", ErrBadQuery, byte(q.Kind))
	}
}

// DecodeQuery inverts Encode, rejecting malformed bytes with
// ErrBadQuery (never a panic — encodings cross a trust boundary).
func DecodeQuery(data []byte) (Query, error) {
	if len(data) == 0 {
		return Query{}, fmt.Errorf("%w: empty encoding", ErrBadQuery)
	}
	switch QueryKind(data[0]) {
	case QueryGroupBy:
		specs, err := sqlagg.DecodeSpecs(data[1:])
		if err != nil {
			return Query{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		return Query{Kind: QueryGroupBy, Specs: specs}, nil
	case QueryWindowTotals:
		if len(data) != 4 {
			return Query{}, fmt.Errorf("%w: window encoding length %d", ErrBadQuery, len(data))
		}
		q := Query{
			Kind:   QueryWindowTotals,
			Levels: int(data[1]),
			Col:    int(binary.LittleEndian.Uint16(data[2:])),
		}
		if q.Levels < 1 || q.Levels > core.MaxLevels {
			return Query{}, fmt.Errorf("%w: unresolved or out-of-range level count on the wire", ErrBadQuery)
		}
		return q, nil
	default:
		return Query{}, fmt.Errorf("%w: unknown query kind %d", ErrBadQuery, data[0])
	}
}

// Result is one answered query. Bytes is the canonical result
// encoding — a pure function of (query, data version), identical for
// every backend and execution — and must be treated as read-only (a
// cache hit shares the cached buffer). Decode with Groups or Totals.
type Result struct {
	// Query is the answered query.
	Query Query
	// Version is the dataset digest the result was computed over.
	Version uint64
	// Bytes is the canonical result encoding: dist.EncodeTupleGroups
	// form for a GROUP BY, 8 bytes of little-endian float64 bits per
	// row for window totals.
	Bytes []byte
	// CacheHit reports whether Bytes came from the result cache.
	CacheHit bool
	// TraceID identifies this query's recorded trace (Server.Trace /
	// reproserve /trace/<id>); zero when tracing is disabled.
	TraceID uint64
}

// Groups decodes a GROUP BY result into key-sorted tuple rows.
func (r *Result) Groups() ([]dist.TupleGroup, error) {
	if r.Query.Kind != QueryGroupBy {
		return nil, fmt.Errorf("%w: Groups on a %d-kind result", ErrBadQuery, byte(r.Query.Kind))
	}
	gs, err := dist.DecodeTupleGroups(r.Bytes, len(r.Query.Specs))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return gs, nil
}

// Totals decodes a window-totals result into the per-row totals.
func (r *Result) Totals() ([]float64, error) {
	if r.Query.Kind != QueryWindowTotals {
		return nil, fmt.Errorf("%w: Totals on a %d-kind result", ErrBadQuery, byte(r.Query.Kind))
	}
	if len(r.Bytes)%8 != 0 {
		return nil, fmt.Errorf("%w: totals encoding length %d", ErrBadQuery, len(r.Bytes))
	}
	out := make([]float64, len(r.Bytes)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.Bytes[8*i:]))
	}
	return out, nil
}

// encodeTotals is the canonical window-totals encoding: the exact bit
// pattern of each total, little-endian, in row order.
func encodeTotals(totals []float64) []byte {
	out := make([]byte, 8*len(totals))
	for i, v := range totals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}
